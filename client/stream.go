// Streaming scans: the client side of the V3 SCAN / SCAN-CHUNK / SCAN-ACK
// exchange.  A ScanStream pulls entries chunk by chunk instead of buffering
// the whole result in one Response, so arbitrarily large ranges move in
// bounded memory on both ends.  Flow control is credit-based: the server
// holds at most Window unacknowledged chunks, and the stream returns one
// credit per chunk as it is consumed, so a slow consumer stalls only its
// own stream, never the connection.
package client

import (
	"context"
	"fmt"

	"plp/keys"
	"plp/plan"
	"plp/shard"
	"plp/wire"
)

// ScanStreamOptions tunes a streaming scan.  The zero value is usable:
// server-default limit, no filter, default chunk size and window.
type ScanStreamOptions struct {
	// Limit caps the total number of entries across all chunks; 0 selects
	// the server's streaming default (far larger than the one-reply scan's).
	Limit int
	// Filter is an optional predicate pushed down to the server, evaluated
	// inside partition workers; only matching entries cross the wire.
	Filter *plan.Predicate
	// ChunkEntries bounds entries per chunk; 0 selects the server default.
	ChunkEntries int
	// Window is how many unacknowledged chunks the server may hold in
	// flight; 0 selects the default.
	Window int
}

// ScanStream iterates a streaming scan's entries in key order:
//
//	st, err := c.ScanStream(ctx, "sub", lo, hi, nil)
//	...
//	defer st.Close()
//	for st.Next() {
//	    use(st.Entry())
//	}
//	err = st.Err()
//
// A ScanStream is not safe for concurrent use.
type ScanStream struct {
	c   *Client
	ctx context.Context
	id  uint64
	ch  chan *wire.ScanChunk

	cur    []wire.ScanEntry
	idx    int
	err    error
	done   bool // final chunk received; the server is finished
	closed bool
}

// ScanStream starts a streaming scan of [lo, hi) on table.  A nil hi scans
// to the end; a nil opts uses defaults.  Requires a protocol-v3 session.
func (c *Client) ScanStream(ctx context.Context, table string, lo, hi []byte, opts *ScanStreamOptions) (*ScanStream, error) {
	if c.version < wire.V3 {
		return nil, fmt.Errorf("%w: streaming scans need protocol v3, session is v%d", ErrVersion, c.version)
	}
	var o ScanStreamOptions
	if opts != nil {
		o = *opts
	}
	if o.Filter != nil {
		if err := o.Filter.Validate(); err != nil {
			return nil, fmt.Errorf("client: scan filter: %w", err)
		}
	}
	window := o.Window
	if window <= 0 {
		window = wire.DefaultScanWindow
	} else if window > wire.MaxScanWindow {
		window = wire.MaxScanWindow
	}
	sc := &wire.ScanRequest{Table: table, Lo: lo, Hi: hi, Window: uint32(window), Filter: o.Filter}
	if o.Limit > 0 {
		sc.Limit = uint32(o.Limit)
	}
	if o.ChunkEntries > 0 {
		sc.ChunkEntries = uint32(o.ChunkEntries)
	}
	st := &ScanStream{c: c, ctx: ctx, idx: -1}
	// The channel must absorb the worst case without blocking the reader:
	// Window unacknowledged data chunks, plus a final chunk (which consumes
	// a credit but can land before we consume the others), plus an error
	// final emitted outside the credit loop.
	st.ch = make(chan *wire.ScanChunk, window+2)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	st.id = c.nextID
	c.streams[st.id] = st.ch
	c.mu.Unlock()
	c.enqueue(wire.EncodeScanRequest(st.id, sc))
	return st, nil
}

// Next advances to the next entry, blocking for the next chunk when the
// current one is exhausted.  It returns false at the end of the scan or on
// error; check Err to distinguish.
func (st *ScanStream) Next() bool {
	if st.err != nil || st.closed {
		return false
	}
	st.idx++
	for st.idx >= len(st.cur) {
		if st.done {
			return false
		}
		var chunk *wire.ScanChunk
		select {
		case chunk = <-st.ch:
		case <-st.ctx.Done():
			st.err = st.ctx.Err()
			st.abort()
			return false
		}
		if chunk == nil {
			// fail() closed the channel: the connection died mid-stream.
			st.c.mu.Lock()
			st.err = st.c.broken
			st.c.mu.Unlock()
			if st.err == nil {
				st.err = ErrClosed
			}
			st.done = true
			return false
		}
		if chunk.Err != "" {
			st.err = fmt.Errorf("client: scan: %s", chunk.Err)
			st.done = true
			st.unregister()
			return false
		}
		if chunk.Final {
			st.done = true
			st.unregister()
		} else {
			// Return the chunk's credit as it is consumed, keeping the
			// server's production window full.
			st.c.enqueue(wire.EncodeScanAck(st.id, 1))
		}
		st.cur, st.idx = chunk.Entries, 0
	}
	return true
}

// Entry returns the current entry; valid only after Next returned true and
// until the following Next call.
func (st *ScanStream) Entry() wire.ScanEntry { return st.cur[st.idx] }

// Err returns the first error the stream hit, or nil after a clean end.  A
// parent-context cancellation surfaces as the context's error.
func (st *ScanStream) Err() error { return st.err }

// Close releases the stream.  If the scan is still running on the server it
// is cancelled — the server stops producing chunks.  Close is idempotent
// and safe after the stream is exhausted.
func (st *ScanStream) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	if !st.done {
		st.abort()
	}
	return nil
}

// abort unregisters the stream and tells the server to stop producing.
// The cancel frame is intercepted by the server's connection reader, which
// flips the stream's cancel flag and wakes it even if it is stalled waiting
// for credits.
func (st *ScanStream) abort() {
	st.done = true
	st.unregister()
	st.c.enqueue(wire.EncodeCancelRequest(st.id))
}

func (st *ScanStream) unregister() {
	st.c.mu.Lock()
	delete(st.c.streams, st.id)
	st.c.mu.Unlock()
}

// ShardedScanStream iterates a cross-shard streaming scan.  Shards are
// visited lazily in key order — a shard's stream opens only when the
// previous shard is exhausted — so a scan that meets its limit early never
// contacts the remaining shards.
type ShardedScanStream struct {
	s      *Sharded
	ctx    context.Context
	table  string
	lo, hi []byte
	opts   ScanStreamOptions

	shards []shard.Shard
	si     int
	cur    *ScanStream
	sent   int
	err    error
	closed bool
}

// ScanStream starts a streaming scan of [lo, hi) across every shard whose
// range intersects it.  Entries arrive in global key order and the limit in
// opts applies across all shards.  Same iterator contract as
// Client.ScanStream.
func (s *Sharded) ScanStream(ctx context.Context, table string, lo, hi []byte, opts *ScanStreamOptions) (*ShardedScanStream, error) {
	m := s.Map()
	st := &ShardedScanStream{s: s, ctx: ctx, table: table, lo: lo, hi: hi, shards: m.Shards}
	if opts != nil {
		st.opts = *opts
	}
	return st, nil
}

// Next advances to the next entry, opening the next shard's stream as
// needed.  It returns false at the end of the scan or on error.
func (st *ShardedScanStream) Next() bool {
	if st.err != nil || st.closed {
		return false
	}
	for {
		if st.cur != nil {
			if st.cur.Next() {
				st.sent++
				return true
			}
			if err := st.cur.Err(); err != nil {
				st.err = fmt.Errorf("client: scan shard %d: %w", st.shards[st.si].ID, err)
				return false
			}
			_ = st.cur.Close()
			st.cur = nil
			st.si++
		}
		if st.opts.Limit > 0 && st.sent >= st.opts.Limit {
			return false
		}
		if !st.skipToIntersecting() {
			return false
		}
		sh := st.shards[st.si]
		c, err := st.s.clientFor(st.ctx, sh.Addr)
		if err != nil {
			st.err = fmt.Errorf("client: scan shard %d: %w", sh.ID, err)
			return false
		}
		opts := st.opts
		if opts.Limit > 0 {
			opts.Limit -= st.sent // each shard asks only for what remains
		}
		cur, err := c.ScanStream(st.ctx, st.table, st.lo, st.hi, &opts)
		if err != nil {
			st.err = fmt.Errorf("client: scan shard %d: %w", sh.ID, err)
			return false
		}
		st.cur = cur
	}
}

// skipToIntersecting advances si past shards whose range cannot intersect
// [lo, hi); it returns false when no shard remains.
func (st *ShardedScanStream) skipToIntersecting() bool {
	for st.si < len(st.shards) {
		sh := st.shards[st.si]
		var shardLo []byte
		if st.si > 0 {
			shardLo = st.shards[st.si-1].End
		}
		if len(st.hi) > 0 && shardLo != nil && keys.Compare(st.hi, shardLo) <= 0 {
			return false // this and all later shards lie past the range
		}
		if sh.End != nil && keys.Compare(st.lo, sh.End) >= 0 {
			st.si++ // shard lies wholly before the range
			continue
		}
		return true
	}
	return false
}

// Entry returns the current entry; valid only after Next returned true.
func (st *ShardedScanStream) Entry() wire.ScanEntry { return st.cur.Entry() }

// Err returns the first error the scan hit, or nil after a clean end.
func (st *ShardedScanStream) Err() error { return st.err }

// Close releases the scan, cancelling the open shard stream, if any.
func (st *ShardedScanStream) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	if st.cur != nil {
		_ = st.cur.Close()
		st.cur = nil
	}
	return nil
}
