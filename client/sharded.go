// Client-side shard routing.  A Sharded wraps one Client per plpd process
// and routes each transaction to the shard owning its keys, using a cached
// copy of the cluster's versioned shard map (package shard).  The cache is
// refreshed lazily: a server refusing a request with a wrong-shard error
// attaches its current map to the refusal, so the router adopts it and
// forwards the request in the same call — the cross-process mirror of the
// executor's epoch-checked mis-route forwarding.
//
// Routing picks the owner of the first primary-keyed statement; a
// transaction spanning shards is still sent whole to that owner, which
// coordinates the cross-shard commit server-side.  Scans fan out to every
// shard intersecting the range and concatenate in shard (= key) order.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"plp/keys"
	"plp/shard"
	"plp/wire"
)

// ErrNoShardMap is returned when no seed server answered with a shard map.
var ErrNoShardMap = errors.New("client: no shard map available")

// ShardMap fetches the server's current shard map.  Requires a v3 session;
// a server running unsharded returns an error.
func (c *Client) ShardMap(ctx context.Context) (*shard.Map, error) {
	f := c.submitAsync(ctx, wire.V3, wire.EncodeShardMapRequest)
	resp, err := f.Wait(ctx)
	if err != nil && errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		c.abandon(f)
	}
	if resp == nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("client: shard map: %s", resp.Err)
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("client: malformed shard map response")
	}
	return shard.Parse(resp.Results[0].Value)
}

// Sharded is a routing client over a sharded plpd cluster.
//
// When the map carries replica sets, read-only transactions rotate across a
// shard's primary and followers (replica-aware routing) while writes always
// target the primary.  A write that lands on a demoted ex-primary comes back
// as a follower refusal carrying the refuser's current map; the router
// adopts it and re-routes, so clients follow promotions with no operator
// involvement.
type Sharded struct {
	opts DialOptions

	// rr spreads read-only transactions across a shard's primary and
	// replicas.
	rr atomic.Uint64

	mu    sync.Mutex
	m     *shard.Map
	conns map[string]*Client // by address: survives shard moves between addrs
}

// DialSharded connects to the cluster through the seed addresses: the first
// seed that answers with a shard map wins, and the map names every member.
// opts applies to every per-shard connection the router opens.
func DialSharded(ctx context.Context, seeds []string, opts *DialOptions) (*Sharded, error) {
	s := &Sharded{conns: make(map[string]*Client)}
	if opts != nil {
		s.opts = *opts
	}
	var lastErr error = ErrNoShardMap
	for _, addr := range seeds {
		c, err := DialContext(ctx, addr, &s.opts)
		if err != nil {
			lastErr = err
			continue
		}
		m, err := c.ShardMap(ctx)
		if err != nil {
			lastErr = err
			_ = c.Close()
			continue
		}
		s.m = m
		s.conns[addr] = c
		return s, nil
	}
	return nil, fmt.Errorf("client: dialing sharded cluster: %w", lastErr)
}

// Map returns the router's cached shard map.
func (s *Sharded) Map() *shard.Map {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m
}

// Refresh fetches the shard map again through any reachable member —
// primaries first, then replicas (a dead primary is exactly when the
// replicas' copy matters) — and adopts it if newer.
func (s *Sharded) Refresh(ctx context.Context) error {
	m := s.Map()
	addrs := make([]string, 0, len(m.Shards))
	for _, sh := range m.Shards {
		addrs = append(addrs, sh.Addr)
	}
	for _, sh := range m.Shards {
		for _, r := range sh.Replicas {
			addrs = append(addrs, r.Addr)
		}
	}
	var lastErr error = ErrNoShardMap
	for _, addr := range addrs {
		c, err := s.clientFor(ctx, addr)
		if err != nil {
			lastErr = err
			continue
		}
		nm, err := c.ShardMap(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		s.adopt(nm)
		return nil
	}
	return fmt.Errorf("client: refreshing shard map: %w", lastErr)
}

// adopt installs a map if its version is not older than the cached one.
func (s *Sharded) adopt(m *shard.Map) {
	if m == nil || m.Validate() != nil {
		return
	}
	s.mu.Lock()
	if m.Version >= s.m.Version {
		s.m = m
	}
	s.mu.Unlock()
}

// Close closes every per-shard connection.
func (s *Sharded) Close() error {
	s.mu.Lock()
	conns := s.conns
	s.conns = make(map[string]*Client)
	s.mu.Unlock()
	var first error
	for _, c := range conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clientFor returns (dialing if needed) the connection to addr.
func (s *Sharded) clientFor(ctx context.Context, addr string) (*Client, error) {
	s.mu.Lock()
	c := s.conns[addr]
	s.mu.Unlock()
	if c != nil {
		return c, nil
	}
	c, err := DialContext(ctx, addr, &s.opts)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if prev := s.conns[addr]; prev != nil {
		s.mu.Unlock()
		_ = c.Close()
		return prev, nil
	}
	s.conns[addr] = c
	s.mu.Unlock()
	return c, nil
}

// dropClient discards a (presumably broken) connection so the next call
// redials.
func (s *Sharded) dropClient(addr string, c *Client) {
	s.mu.Lock()
	if s.conns[addr] == c {
		delete(s.conns, addr)
	}
	s.mu.Unlock()
	_ = c.Close()
}

// routeKeyed reports whether the statement routes by its primary key; must
// mirror the server's classification (secondary-index ops are shard-local).
func routeKeyed(op wire.OpType) bool {
	switch op {
	case wire.OpGet, wire.OpInsert, wire.OpUpdate, wire.OpUpsert, wire.OpDelete:
		return true
	default:
		return false
	}
}

// addrFor picks the target shard for a transaction: the owner of the first
// primary-keyed statement (that shard coordinates if others are involved),
// or the first shard when nothing routes by key.
func addrFor(m *shard.Map, t *Txn) string {
	for _, st := range t.statements {
		if routeKeyed(st.Op) {
			return m.AddrOf(m.Owner(st.Key))
		}
	}
	return m.Shards[0].Addr
}

// readOnly reports whether every statement of t reads (no writes, no
// control verbs) — the transactions replica-aware routing may serve from a
// follower.
func (t *Txn) readOnly() bool {
	if len(t.statements) == 0 {
		return false
	}
	for _, st := range t.statements {
		switch st.Op {
		case wire.OpGet, wire.OpGetBySecondary, wire.OpScan, wire.OpPing:
		default:
			return false
		}
	}
	return true
}

// shardFor returns the shard a transaction routes to (see addrFor).
func shardFor(m *shard.Map, t *Txn) shard.Shard {
	for _, st := range t.statements {
		if routeKeyed(st.Op) {
			sh, _ := m.ByID(m.Owner(st.Key))
			return sh
		}
	}
	return m.Shards[0]
}

// readAddrFor rotates a read-only transaction across its shard's primary
// and replicas.  turn selects the rotation slot; callers advance it per
// request (round robin) and per retry (so a dead follower's slot is skipped
// on the next attempt).
func readAddrFor(m *shard.Map, t *Txn, turn uint64) string {
	sh := shardFor(m, t)
	n := uint64(len(sh.Replicas)) + 1
	slot := turn % n
	if slot == 0 {
		return sh.Addr
	}
	return sh.Replicas[slot-1].Addr
}

// maxRouteAttempts bounds the refresh-and-forward loop: each wrong-shard
// refusal or transport error consumes one attempt.
const maxRouteAttempts = 4

// refusalMap extracts the shard map a refusing server attached to its
// response (nil when absent or unparseable).
func refusalMap(resp *wire.Response) *shard.Map {
	if resp == nil {
		return nil
	}
	for _, r := range resp.Results {
		if len(r.Value) == 0 {
			continue
		}
		if m, err := shard.Parse(r.Value); err == nil {
			return m
		}
	}
	return nil
}

// DoContext routes and executes the transaction.  Wrong-shard refusals
// adopt the refusing server's map and forward; transport errors redial.
// Read-only transactions rotate across the owning shard's primary and
// replicas; writes go to the primary, and a follower refusal (the primary
// moved) adopts the refuser's map and follows the promotion.
func (s *Sharded) DoContext(ctx context.Context, t *Txn) (*wire.Response, error) {
	var lastErr error
	readonly := t.readOnly()
	turn := s.rr.Add(1)
	for attempt := 0; attempt < maxRouteAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var addr string
		if readonly {
			// Advancing by attempt walks the rotation past members that just
			// failed, ending back at the primary.
			addr = readAddrFor(s.Map(), t, turn+uint64(attempt))
		} else {
			addr = addrFor(s.Map(), t)
		}
		c, err := s.clientFor(ctx, addr)
		if err != nil {
			// The member is unreachable — possibly a dead primary that has
			// since been failed over.  Best-effort refresh through whoever
			// still answers so the next attempt sees the promotion.
			_ = s.Refresh(ctx)
			lastErr = err
			continue
		}
		resp, err := c.DoContext(ctx, t)
		if err != nil && IsFollowerRefusal(err) {
			if readonly {
				// A follower refused a read — it is mid re-seed and its
				// engine is not yet consistent.  Rotate to the next member;
				// adopt any map the refusal carries in case the topology
				// moved too.
				if nm := refusalMap(resp); nm != nil {
					s.adopt(nm)
				}
				lastErr = err
				continue
			}
			// The write landed on a follower: the primary moved under our
			// map.  The refusal carries the refuser's current map — adopt it
			// and re-route to the new primary.
			if nm := refusalMap(resp); nm != nil {
				s.adopt(nm)
			} else if rerr := s.Refresh(ctx); rerr != nil {
				return resp, fmt.Errorf("%v (map refresh failed: %w)", err, rerr)
			}
			lastErr = err
			continue
		}
		if resp != nil && wire.IsWrongShard(resp.Err) {
			// The refusal carries the server's current map: adopt it and
			// re-route.  A parse failure falls back to an explicit fetch.
			if len(resp.Results) == 1 {
				if nm, perr := shard.Parse(resp.Results[0].Value); perr == nil {
					s.adopt(nm)
					lastErr = err
					continue
				}
			}
			if rerr := s.Refresh(ctx); rerr != nil {
				return resp, fmt.Errorf("%s (map refresh failed: %w)", resp.Err, rerr)
			}
			lastErr = err
			continue
		}
		if err != nil && resp == nil && !errors.Is(err, ctx.Err()) {
			// Transport failure: drop the poisoned connection and retry on a
			// fresh one.  NOTE a request that died mid-flight may have
			// executed; like any network client, the retry is at-least-once
			// for non-idempotent writes.  The peer may also be gone for good
			// (SIGKILLed primary), so refresh the map in case a failover
			// re-homed the shard.
			s.dropClient(addr, c)
			_ = s.Refresh(ctx)
			lastErr = err
			continue
		}
		return resp, err
	}
	return nil, fmt.Errorf("client: routing failed after %d attempts: %w", maxRouteAttempts, lastErr)
}

// Do routes and executes the transaction with no deadline; see DoContext.
func (s *Sharded) Do(t *Txn) (*wire.Response, error) {
	return s.DoContext(context.Background(), t)
}

// Get reads one record from its owning shard; missing keys return
// ErrNotFound.
func (s *Sharded) Get(table string, key []byte) ([]byte, error) {
	return s.GetContext(context.Background(), table, key)
}

// GetContext reads one record under a context.
func (s *Sharded) GetContext(ctx context.Context, table string, key []byte) ([]byte, error) {
	resp, err := s.DoContext(ctx, NewTxn().Get(table, key))
	if err != nil {
		return nil, err
	}
	res := resp.Results[0]
	if !res.Found {
		return nil, fmt.Errorf("%w: %s/%x", ErrNotFound, table, key)
	}
	return res.Value, nil
}

// Insert adds one record on its owning shard.
func (s *Sharded) Insert(table string, key, value []byte) error {
	_, err := s.Do(NewTxn().Insert(table, key, value))
	return err
}

// Update overwrites one record on its owning shard.
func (s *Sharded) Update(table string, key, value []byte) error {
	_, err := s.Do(NewTxn().Update(table, key, value))
	return err
}

// Upsert inserts or overwrites one record on its owning shard.
func (s *Sharded) Upsert(table string, key, value []byte) error {
	_, err := s.Do(NewTxn().Upsert(table, key, value))
	return err
}

// Delete removes one record from its owning shard.
func (s *Sharded) Delete(table string, key []byte) error {
	_, err := s.Do(NewTxn().Delete(table, key))
	return err
}

// Scan runs a bounded range scan of [lo, hi) across every shard whose range
// intersects it, concatenating the per-shard results — shards are ordered
// by key range, so the concatenation is in key order.  A nil hi scans to
// the end; limit 0 selects the server default (applied per shard).
func (s *Sharded) Scan(table string, lo, hi []byte, limit int) ([]wire.ScanEntry, error) {
	return s.ScanContext(context.Background(), table, lo, hi, limit)
}

// ScanContext runs a cross-shard range scan under a context.
func (s *Sharded) ScanContext(ctx context.Context, table string, lo, hi []byte, limit int) ([]wire.ScanEntry, error) {
	m := s.Map()
	var out []wire.ScanEntry
	for i, sh := range m.Shards {
		var shardLo []byte
		if i > 0 {
			shardLo = m.Shards[i-1].End
		}
		if len(hi) > 0 && shardLo != nil && keys.Compare(hi, shardLo) <= 0 {
			break // past the end of the requested range
		}
		if sh.End != nil && keys.Compare(lo, sh.End) >= 0 {
			continue // before the start of the requested range
		}
		c, err := s.clientFor(ctx, sh.Addr)
		if err != nil {
			return nil, fmt.Errorf("client: scan shard %d: %w", sh.ID, err)
		}
		// Ask each shard only for what the global limit still allows:
		// rows beyond it would be fetched, shipped, and then truncated.
		remaining := limit
		if limit > 0 {
			remaining = limit - len(out)
		}
		entries, err := c.ScanContext(ctx, table, lo, hi, remaining)
		if err != nil {
			return nil, fmt.Errorf("client: scan shard %d: %w", sh.ID, err)
		}
		out = append(out, entries...)
		if limit > 0 && len(out) >= limit {
			return out[:limit], nil
		}
	}
	return out, nil
}
