// Package client is the Go client for a PLP server (cmd/plpd).
//
// A Client holds one TCP connection and issues framed wire-protocol
// transactions synchronously; it is safe for concurrent use (calls are
// serialized on the connection).  For parallel load, open one Client per
// worker goroutine — mirroring how the engine expects one Session per
// client thread.
//
//	c, err := client.Dial("localhost:7070")
//	defer c.Close()
//
//	err = c.Insert("accounts", client.Uint64Key(42), []byte("hello"))
//	val, found, err := c.Get("accounts", client.Uint64Key(42))
//
//	// Multi-statement transaction:
//	txn := client.NewTxn().
//		Upsert("accounts", client.Uint64Key(1), []byte("a")).
//		Upsert("accounts", client.Uint64Key(2), []byte("b"))
//	resp, err := c.Do(txn)
package client

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"plp/wire"
)

// Errors returned by the client.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("client: closed")
	// ErrAborted is returned when the server aborted the transaction.
	ErrAborted = errors.New("client: transaction aborted")
	// ErrNotFound is returned by Get-style helpers when the key is missing.
	ErrNotFound = errors.New("client: key not found")
)

// Uint64Key encodes a uint64 as the order-preserving big-endian key format
// used by the engine's key encoder, so client keys sort and partition the
// same way server-side keys do.
func Uint64Key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Txn is a transaction builder.
type Txn struct {
	statements []wire.Statement
}

// NewTxn returns an empty transaction builder.
func NewTxn() *Txn { return &Txn{} }

// Get appends a read of key.
func (t *Txn) Get(table string, key []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpGet, Table: table, Key: key})
	return t
}

// Insert appends an insert.
func (t *Txn) Insert(table string, key, value []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpInsert, Table: table, Key: key, Value: value})
	return t
}

// Update appends an update of an existing record.
func (t *Txn) Update(table string, key, value []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpUpdate, Table: table, Key: key, Value: value})
	return t
}

// Upsert appends an insert-or-update.
func (t *Txn) Upsert(table string, key, value []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpUpsert, Table: table, Key: key, Value: value})
	return t
}

// Delete appends a delete.
func (t *Txn) Delete(table string, key []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpDelete, Table: table, Key: key})
	return t
}

// GetBySecondary appends a read through the named secondary index.
func (t *Txn) GetBySecondary(table, index string, secKey []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpGetBySecondary, Table: table, Index: index, Key: secKey})
	return t
}

// InsertSecondary appends a secondary-index entry insert.
func (t *Txn) InsertSecondary(table, index string, secKey, primaryKey []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpInsertSecondary, Table: table, Index: index, Key: secKey, Value: primaryKey})
	return t
}

// Len returns the number of statements added so far.
func (t *Txn) Len() int { return len(t.statements) }

// Client is a connection to a PLP server.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	nextID uint64
	closed bool
}

// Dial connects to a PLP server.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with an explicit dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close terminates the connection.  It is safe to call more than once.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Do executes the transaction and returns the server's response.  The
// returned error is non-nil for transport failures and for aborted
// transactions (ErrAborted, with the server's message appended).
func (c *Client) Do(t *Txn) (*wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	c.nextID++
	req := &wire.Request{ID: c.nextID, Statements: t.statements}
	if err := wire.WriteFrame(c.conn, wire.EncodeRequest(req)); err != nil {
		return nil, err
	}
	payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("client: response id %d does not match request id %d", resp.ID, req.ID)
	}
	if !resp.Committed {
		return resp, fmt.Errorf("%w: %s", ErrAborted, resp.Err)
	}
	return resp, nil
}

// Ping checks connectivity; the server echoes the payload.
func (c *Client) Ping(payload []byte) error {
	resp, err := c.Do(&Txn{statements: []wire.Statement{{Op: wire.OpPing, Value: payload}}})
	if err != nil {
		return err
	}
	if len(resp.Results) != 1 || string(resp.Results[0].Value) != string(payload) {
		return fmt.Errorf("client: ping echo mismatch")
	}
	return nil
}

// Get reads one record.  A missing key returns ErrNotFound.
func (c *Client) Get(table string, key []byte) ([]byte, error) {
	resp, err := c.Do(NewTxn().Get(table, key))
	if err != nil {
		return nil, err
	}
	res := resp.Results[0]
	if !res.Found {
		return nil, fmt.Errorf("%w: %s/%x", ErrNotFound, table, key)
	}
	return res.Value, nil
}

// GetBySecondary reads one record through a secondary index.
func (c *Client) GetBySecondary(table, index string, secKey []byte) ([]byte, error) {
	resp, err := c.Do(NewTxn().GetBySecondary(table, index, secKey))
	if err != nil {
		return nil, err
	}
	res := resp.Results[0]
	if !res.Found {
		return nil, fmt.Errorf("%w: %s.%s/%x", ErrNotFound, table, index, secKey)
	}
	return res.Value, nil
}

// Insert adds one record.
func (c *Client) Insert(table string, key, value []byte) error {
	_, err := c.Do(NewTxn().Insert(table, key, value))
	return err
}

// Update overwrites one record.
func (c *Client) Update(table string, key, value []byte) error {
	_, err := c.Do(NewTxn().Update(table, key, value))
	return err
}

// Upsert inserts or overwrites one record.
func (c *Client) Upsert(table string, key, value []byte) error {
	_, err := c.Do(NewTxn().Upsert(table, key, value))
	return err
}

// Delete removes one record.
func (c *Client) Delete(table string, key []byte) error {
	_, err := c.Do(NewTxn().Delete(table, key))
	return err
}

// Control executes one administrative command on the server (the plpctl
// "drp" verbs: "status", "trigger", "shares") and returns its text output.
// table is the optional table argument ("" when the command takes none).
func (c *Client) Control(cmd, table string) (string, error) {
	resp, err := c.Do(&Txn{statements: []wire.Statement{{Op: wire.OpControl, Table: table, Key: []byte(cmd)}}})
	if err != nil {
		return "", err
	}
	res := resp.Results[0]
	if res.Err != "" {
		return "", fmt.Errorf("client: control %s: %s", cmd, res.Err)
	}
	return string(res.Value), nil
}
