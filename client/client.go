// Package client is the Go client for a PLP server (cmd/plpd).
//
// A Client holds one TCP connection.  Dial performs the wire-protocol v2
// handshake (version negotiation plus optional token authentication) and
// starts an asynchronous core: a reader goroutine matches response frames
// to in-flight requests by ID, so any number of goroutines can keep
// requests pipelined on the same connection.  DoAsync submits a
// transaction and returns a Future; DoContext (and every *Context helper)
// blocks on the future honouring the context's deadline or cancellation;
// the plain helpers (Get, Insert, Do, ...) are the same calls with
// context.Background(), so existing callers keep working unchanged.
//
//	c, err := client.Dial("localhost:7070")
//	defer c.Close()
//
//	err = c.Insert("accounts", client.Uint64Key(42), []byte("hello"))
//	val, err := c.Get("accounts", client.Uint64Key(42))
//
//	// Multi-statement transaction:
//	txn := client.NewTxn().
//		Upsert("accounts", client.Uint64Key(1), []byte("a")).
//		Upsert("accounts", client.Uint64Key(2), []byte("b"))
//	resp, err := c.Do(txn)
//
//	// Pipelining: keep many transactions in flight on one connection.
//	futures := make([]*client.Future, 0, 64)
//	for i := 0; i < 64; i++ {
//		futures = append(futures, c.DoAsync(ctx, client.NewTxn().
//			Upsert("accounts", client.Uint64Key(uint64(i)), []byte("v"))))
//	}
//	for _, f := range futures {
//		if _, err := f.Wait(ctx); err != nil { ... }
//	}
//
//	// Declarative plan (protocol v3): a dependent multi-phase transaction
//	// — secondary probe feeding a routed update — in ONE round trip.
//	b := client.NewPlan()
//	probe := b.LookupSecondary("subscribers", "sub_nbr", secKey).Ref()
//	b.Then().Update("subscribers", nil, newLocation).KeyFrom(probe)
//	results, err := c.DoPlan(b.MustBuild())
//
// Cancelling a context abandons the in-flight request (its eventual
// response is discarded) but leaves the connection usable; a transport
// error fails every in-flight request and poisons the client.
//
// Against a pre-v2 server the handshake degrades gracefully: the client
// detects the legacy response, marks the session v1 and serializes its
// requests' completions by ID exactly as before.  DialContext with
// DialOptions{Version: 1} skips the handshake entirely and produces a
// legacy v1 session (no pipelining on the server side, no scans).
package client

import (
	"bufio"
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"plp/keys"
	"plp/plan"
	"plp/wire"
)

// Errors returned by the client.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("client: closed")
	// ErrAborted is returned when the server aborted the transaction.
	ErrAborted = errors.New("client: transaction aborted")
	// ErrTransient wraps aborts the server tagged as timing-dependent
	// (deadlock-avoidance lock timeouts): retrying the identical request
	// has a fair chance of succeeding.  Test with IsTransient.
	ErrTransient = errors.New("transient")
	// ErrNotFound is returned by Get-style helpers when the key is missing.
	ErrNotFound = errors.New("client: key not found")
	// ErrAuth is returned by Dial when the server refused the token.
	ErrAuth = errors.New("client: authentication failed")
	// ErrVersion is returned when an operation needs a newer protocol
	// version than the session negotiated (e.g. Scan on a v1 session).
	ErrVersion = errors.New("client: operation not supported by negotiated protocol version")
)

// IsTransient reports whether an error is an abort the server tagged as
// transient (protocol v3 retry hints): the caller may retry the identical
// request.  Aborts without a hint — pre-v3 servers — report false, so
// callers treat them as permanent, the safe default.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// IsFollowerRefusal reports whether an error means the server is a
// replication follower refusing a write, control verb or transaction
// branch.  Reads still work there; a caller holding the primary's address
// should redirect the refused request (or promote the follower if the
// primary is gone).  It understands the wrapped errors this package
// returns — aborts and control failures carry the server's message.
func IsFollowerRefusal(err error) bool {
	return err != nil && strings.Contains(err.Error(), wire.FollowerPrefix+":")
}

// Uint64Key encodes a uint64 in the engine's order-preserving big-endian
// key format.  It is the shared encoding of package keys, so client keys
// sort and partition exactly as server-side keys do.
func Uint64Key(v uint64) []byte { return keys.Uint64(v) }

// Txn is a transaction builder.
type Txn struct {
	statements []wire.Statement
}

// NewTxn returns an empty transaction builder.
func NewTxn() *Txn { return &Txn{} }

// Get appends a read of key.
func (t *Txn) Get(table string, key []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpGet, Table: table, Key: key})
	return t
}

// Insert appends an insert.
func (t *Txn) Insert(table string, key, value []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpInsert, Table: table, Key: key, Value: value})
	return t
}

// Update appends an update of an existing record.
func (t *Txn) Update(table string, key, value []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpUpdate, Table: table, Key: key, Value: value})
	return t
}

// Upsert appends an insert-or-update.
func (t *Txn) Upsert(table string, key, value []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpUpsert, Table: table, Key: key, Value: value})
	return t
}

// Delete appends a delete.
func (t *Txn) Delete(table string, key []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpDelete, Table: table, Key: key})
	return t
}

// GetBySecondary appends a read through the named secondary index.
func (t *Txn) GetBySecondary(table, index string, secKey []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpGetBySecondary, Table: table, Index: index, Key: secKey})
	return t
}

// InsertSecondary appends a secondary-index entry insert.
func (t *Txn) InsertSecondary(table, index string, secKey, primaryKey []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpInsertSecondary, Table: table, Index: index, Key: secKey, Value: primaryKey})
	return t
}

// DeleteSecondary appends a secondary-index entry delete (protocol v2).
func (t *Txn) DeleteSecondary(table, index string, secKey []byte) *Txn {
	t.statements = append(t.statements, wire.Statement{Op: wire.OpDeleteSecondary, Table: table, Index: index, Key: secKey})
	return t
}

// Scan appends a bounded range scan of [lo, hi) — nil hi scans to the end —
// returning at most limit records (0 selects the server default).  A scan
// must be the only statement of its request (protocol v2).
func (t *Txn) Scan(table string, lo, hi []byte, limit int) *Txn {
	t.statements = append(t.statements, wire.Statement{
		Op: wire.OpScan, Table: table, Key: lo, KeyEnd: hi, Limit: uint32(max(limit, 0)),
	})
	return t
}

// Len returns the number of statements added so far.
func (t *Txn) Len() int { return len(t.statements) }

// minVersion returns the protocol version the transaction needs.
func (t *Txn) minVersion() uint32 {
	v := wire.V1
	for _, st := range t.statements {
		if mv := st.Op.MinVersion(); mv > v {
			v = mv
		}
	}
	return v
}

// Future is one in-flight request.  It completes exactly once: with the
// server's response, with a transport error, or with the cancellation
// error of the context that abandoned it.
type Future struct {
	id   uint64
	done chan struct{}
	resp *wire.Response
	err  error
}

// Done returns a channel closed when the future completes.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until the future completes and returns the response.
// Aborted transactions return the response together with ErrAborted.
func (f *Future) Result() (*wire.Response, error) {
	<-f.done
	if f.err != nil {
		return nil, f.err
	}
	if !f.resp.Committed {
		if f.resp.Retry == wire.RetryTransient {
			return f.resp, fmt.Errorf("%w (%w): %s", ErrAborted, ErrTransient, f.resp.Err)
		}
		return f.resp, fmt.Errorf("%w: %s", ErrAborted, f.resp.Err)
	}
	return f.resp, nil
}

// complete resolves the future.  Callers must guarantee exactly-once (the
// client does, by removing the future from its pending map first).
func (f *Future) complete(resp *wire.Response, err error) {
	f.resp, f.err = resp, err
	close(f.done)
}

// DialOptions configures DialContext.
type DialOptions struct {
	// Token is presented during the handshake; the matching server token
	// authenticates the session for OpControl.
	Token string
	// Version caps the protocol version offered in the handshake (0 offers
	// the highest this build speaks).  Version 1 skips the handshake
	// entirely and produces a legacy v1 session.
	Version uint32
	// Timeout bounds the TCP dial and the handshake round trip (0 means
	// 10s).
	Timeout time.Duration
	// TLSConfig, when non-nil, wraps the connection in TLS before the
	// protocol handshake (the server must listen with -tls-cert/-tls-key).
	TLSConfig *tls.Config
	// RetryPolicy, when non-nil, makes DoContext/DoPlanContext transparently
	// retry transactions the server aborted with a transient hint
	// (IsTransient): deadlock-avoidance timeouts that a re-run at a
	// different instant usually dodges.  Only whole-transaction aborts are
	// retried — the failed attempt committed nothing — never transport
	// errors, whose outcome is unknown.
	RetryPolicy *RetryPolicy
}

// RetryPolicy bounds the client's automatic retries of transient aborts.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (values < 2 disable retrying).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 2ms); each
	// further retry doubles it, up to MaxDelay (default 100ms).  The actual
	// sleep is uniformly jittered in [delay/2, delay) so colliding
	// transactions don't re-collide in lockstep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// backoff returns the jittered sleep before retry attempt (1-based).
func (p *RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 100 * time.Millisecond
	}
	d := base << (attempt - 1)
	if d > maxd || d <= 0 {
		d = maxd
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// Client is a connection to a PLP server.
type Client struct {
	conn     net.Conn
	br       *bufio.Reader
	version  uint32
	authed   bool
	readOnly bool
	retry    *RetryPolicy

	// Outgoing frames are handed to a writer goroutine that batches them
	// into one buffered write, flushing when the queue drains — under
	// pipelining many requests leave in a single syscall.
	writeCh    chan []byte
	writerQuit chan struct{}
	quitOnce   sync.Once

	mu      sync.Mutex
	pending map[uint64]*Future
	streams map[uint64]chan *wire.ScanChunk // open streaming scans by ID
	nextID  uint64
	closed  bool
	broken  error // first transport error; poisons the client

	readerDone chan struct{}
}

// Dial connects to a PLP server and negotiates the highest shared protocol
// version.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr, nil)
}

// DialTimeout connects with an explicit dial timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialContext(context.Background(), addr, &DialOptions{Timeout: timeout})
}

// DialContext connects, performs the protocol handshake (unless opts caps
// the version at 1) and starts the client's reader goroutine.  The context
// bounds the whole connection setup.
func DialContext(ctx context.Context, addr string, opts *DialOptions) (*Client, error) {
	var o DialOptions
	if opts != nil {
		o = *opts
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Version == 0 || o.Version > wire.MaxVersion {
		o.Version = wire.MaxVersion
	}
	dctx, cancel := context.WithTimeout(ctx, o.Timeout)
	defer cancel()
	var d net.Dialer
	conn, err := d.DialContext(dctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if o.TLSConfig != nil {
		cfg := o.TLSConfig
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			// Fill the verification name from the dial address so one
			// config serves every member of a cluster.
			if host, _, err := net.SplitHostPort(addr); err == nil {
				cfg = cfg.Clone()
				cfg.ServerName = host
			}
		}
		tconn := tls.Client(conn, cfg)
		if err := tconn.HandshakeContext(dctx); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("client: tls: %w", err)
		}
		conn = tconn
	}
	c := &Client{
		conn:       conn,
		retry:      o.RetryPolicy,
		br:         bufio.NewReaderSize(conn, 64<<10),
		version:    wire.V1,
		writeCh:    make(chan []byte, 256),
		writerQuit: make(chan struct{}),
		pending:    make(map[uint64]*Future),
		streams:    make(map[uint64]chan *wire.ScanChunk),
		readerDone: make(chan struct{}),
	}
	if o.Version >= wire.V2 {
		if err := c.handshake(dctx, &o); err != nil {
			_ = conn.Close()
			return nil, err
		}
	}
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

// handshake sends the HELLO and interprets the server's first frame.  A
// pre-v2 server answers a HELLO with a decode-error response; the client
// detects that and degrades the session to v1.
func (c *Client) handshake(ctx context.Context, o *DialOptions) error {
	if dl, ok := ctx.Deadline(); ok {
		_ = c.conn.SetDeadline(dl)
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	hello := &wire.Hello{MaxVersion: o.Version, Token: []byte(o.Token)}
	if err := wire.WriteFrame(c.conn, wire.EncodeHello(hello)); err != nil {
		return err
	}
	payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	if !wire.IsHelloAck(payload) {
		// A legacy server treated the HELLO as a request and replied with a
		// decode error: stay on v1 and discard that response.
		c.version = wire.V1
		return nil
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	if ack.Err != "" {
		if o.Token != "" {
			return fmt.Errorf("%w: %s", ErrAuth, ack.Err)
		}
		return fmt.Errorf("client: handshake refused: %s", ack.Err)
	}
	c.version = ack.Version
	c.authed = ack.Authenticated
	c.readOnly = ack.ReadOnly
	return nil
}

// Version returns the negotiated protocol version of the session.
func (c *Client) Version() uint32 { return c.version }

// Authenticated reports whether the handshake authenticated the session
// for control commands.  Legacy v1 sessions always report false — the v1
// protocol has no handshake, so the client cannot know whether the server
// requires a token (an open server still accepts their control commands).
func (c *Client) Authenticated() bool { return c.authed }

// ReadOnly reports whether the session is scoped read-only (the token
// presented at the handshake matched the server's read-only token): write
// ops and control verbs will be refused server-side.
func (c *Client) ReadOnly() bool { return c.readOnly }

// writeLoop drains the outgoing queue into a buffered writer, flushing
// whenever the queue is empty: an idle connection sends every frame
// immediately, a pipelining one batches frames into single writes.
func (c *Client) writeLoop() {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	for {
		select {
		case payload := <-c.writeCh:
			for {
				if err := wire.WriteFrame(bw, payload); err != nil {
					c.fail(err)
					return
				}
				// Drain whatever queued meanwhile with cheap non-blocking
				// receives, then flush the whole batch at once.
				select {
				case payload = <-c.writeCh:
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				c.fail(err)
				return
			}
		case <-c.writerQuit:
			return
		}
	}
}

// readLoop matches response frames to pending futures by request ID.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		payload, err := wire.ReadFrame(c.br)
		if err != nil {
			c.fail(err)
			return
		}
		if wire.IsScanChunk(payload) {
			// A streaming-scan chunk: route it to its stream's channel.
			// ReadFrame allocated the payload fresh, so the decoded chunk
			// may alias it.
			chunk, err := wire.DecodeScanChunk(payload)
			if err != nil {
				c.fail(fmt.Errorf("client: bad scan chunk: %w", err))
				return
			}
			c.mu.Lock()
			ch := c.streams[chunk.ID]
			overflow := false
			if ch != nil {
				select {
				case ch <- chunk:
				default:
					overflow = true
				}
			}
			c.mu.Unlock()
			if overflow {
				// The server overran the credit window it agreed to; the
				// stream's framing can no longer be trusted.
				c.fail(fmt.Errorf("client: scan stream %d overran its flow-control window", chunk.ID))
				return
			}
			// A chunk without a stream belongs to an abandoned scan: drop it.
			continue
		}
		resp, err := wire.DecodeResponseV(payload, c.version)
		if err != nil {
			c.fail(fmt.Errorf("client: bad response frame: %w", err))
			return
		}
		c.mu.Lock()
		f := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if f != nil {
			f.complete(resp, nil)
		}
		// An unmatched ID is a response to an abandoned (cancelled) request:
		// drop it.
	}
}

// fail poisons the client with a transport error and completes every
// in-flight future.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.closed {
		err = ErrClosed
	}
	if c.broken == nil {
		c.broken = err
	} else {
		err = c.broken
	}
	pend := c.pending
	c.pending = make(map[uint64]*Future)
	streams := c.streams
	c.streams = make(map[uint64]chan *wire.ScanChunk)
	c.mu.Unlock()
	c.quitOnce.Do(func() { close(c.writerQuit) })
	_ = c.conn.Close()
	for _, f := range pend {
		f.complete(nil, err)
	}
	for _, ch := range streams {
		close(ch) // consumers read the nil chunk as a transport failure
	}
}

// Close terminates the connection, failing any in-flight requests with
// ErrClosed.  It is safe to call more than once.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone // the reader fails remaining futures with ErrClosed
	return err
}

// DoAsync submits the transaction and returns its Future without waiting
// for the response.  The context only gates submission (a context already
// cancelled fails the future immediately); use Future.Wait to bound the
// wait for the response.
func (c *Client) DoAsync(ctx context.Context, t *Txn) *Future {
	return c.submitAsync(ctx, t.minVersion(), func(id uint64) []byte {
		return wire.EncodeRequestV(&wire.Request{ID: id, Statements: t.statements}, c.version)
	})
}

// DoPlanAsync submits a declarative plan (package plan) as one transaction
// in one frame and returns its Future.  Requires a v3 session.
func (c *Client) DoPlanAsync(ctx context.Context, p *plan.Plan) *Future {
	if err := p.Validate(); err != nil {
		f := &Future{done: make(chan struct{})}
		f.complete(nil, err)
		return f
	}
	return c.submitAsync(ctx, wire.V3, func(id uint64) []byte {
		return wire.EncodePlanRequest(id, p)
	})
}

// submitAsync registers a future and enqueues the frame encode(id) builds.
func (c *Client) submitAsync(ctx context.Context, need uint32, encode func(id uint64) []byte) *Future {
	f := &Future{done: make(chan struct{})}
	if err := ctx.Err(); err != nil {
		f.complete(nil, err)
		return f
	}
	if need > c.version {
		f.complete(nil, fmt.Errorf("%w (need v%d, have v%d)", ErrVersion, need, c.version))
		return f
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		f.complete(nil, ErrClosed)
		return f
	}
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		f.complete(nil, err)
		return f
	}
	c.nextID++
	f.id = c.nextID
	c.pending[f.id] = f
	c.mu.Unlock()

	c.enqueue(encode(f.id))
	return f
}

// enqueue hands one frame to the writer goroutine.
func (c *Client) enqueue(payload []byte) {
	select {
	case c.writeCh <- payload: // non-blocking fast path: the queue has room
	default:
		select {
		case c.writeCh <- payload:
		case <-c.writerQuit:
			// The connection failed between registration and submission;
			// fail() has already completed (or will complete) the future.
		}
	}
}

// Wait blocks until the future completes or the context is done.  A context
// cancellation abandons the request — its eventual response is discarded —
// but leaves the connection usable for other requests.
func (f *Future) Wait(ctx context.Context) (*wire.Response, error) {
	if ctx.Done() == nil { // e.g. context.Background(): plain receive, no select
		return f.Result()
	}
	select {
	case <-f.done:
		return f.Result()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// abandon detaches the future after a cancellation so its response slot is
// forgotten.
func (c *Client) abandon(f *Future) {
	c.mu.Lock()
	delete(c.pending, f.id)
	c.mu.Unlock()
}

// cancelInFlight abandons the future and — on a v3 session — sends a
// best-effort cancel frame so the server aborts the request's transaction
// instead of completing it for nobody.
func (c *Client) cancelInFlight(f *Future) {
	c.abandon(f)
	if c.version >= wire.V3 {
		c.enqueue(wire.EncodeCancelRequest(f.id))
	}
}

// DoContext executes the transaction and returns the server's response,
// honouring the context.  The returned error is non-nil for transport
// failures, cancellations, and aborted transactions (ErrAborted, with the
// server's message appended).  On a v3 session a cancellation also sends a
// cancel frame aborting the server-side transaction.  With a RetryPolicy
// installed, transient aborts are retried under jittered backoff before the
// error surfaces.
func (c *Client) DoContext(ctx context.Context, t *Txn) (*wire.Response, error) {
	resp, err := c.doOnce(ctx, t)
	for attempt := 1; c.shouldRetry(ctx, err, attempt); attempt++ {
		if !c.backoffWait(ctx, attempt) {
			break
		}
		resp, err = c.doOnce(ctx, t)
	}
	return resp, err
}

// doOnce is one submit/wait round of DoContext.
func (c *Client) doOnce(ctx context.Context, t *Txn) (*wire.Response, error) {
	f := c.DoAsync(ctx, t)
	resp, err := f.Wait(ctx)
	if err != nil && errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		c.cancelInFlight(f)
	}
	return resp, err
}

// shouldRetry reports whether the retry policy allows re-running a request
// that failed with err on the given attempt (1-based count of completed
// tries).
func (c *Client) shouldRetry(ctx context.Context, err error, attempt int) bool {
	return c.retry != nil && attempt < c.retry.MaxAttempts &&
		IsTransient(err) && ctx.Err() == nil
}

// backoffWait sleeps the policy's jittered backoff, honouring the context.
func (c *Client) backoffWait(ctx context.Context, attempt int) bool {
	timer := time.NewTimer(c.retry.backoff(attempt))
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Do executes the transaction with no deadline; see DoContext.
func (c *Client) Do(t *Txn) (*wire.Response, error) {
	return c.DoContext(context.Background(), t)
}

// NewPlan returns a declarative plan builder (package plan): phases of
// typed ops with bindings, executed server-side as one transaction in one
// round trip.  The same builder drives the in-process ExecutePlan API.
func NewPlan() *plan.Builder { return plan.New() }

// DoPlanContext executes a declarative plan as one transaction in one round
// trip and returns the per-op results, indexed flat in phase order.
// Aborted plans return the results (whose Err fields name the failing ops)
// together with ErrAborted.  Requires a v3 session (ErrVersion otherwise).
func (c *Client) DoPlanContext(ctx context.Context, p *plan.Plan) ([]plan.Result, error) {
	resp, err := c.doPlanOnce(ctx, p)
	for attempt := 1; c.shouldRetry(ctx, err, attempt); attempt++ {
		if !c.backoffWait(ctx, attempt) {
			break
		}
		resp, err = c.doPlanOnce(ctx, p)
	}
	if resp == nil {
		return nil, err
	}
	return planResultsFromWire(resp), err
}

// doPlanOnce is one submit/wait round of DoPlanContext.
func (c *Client) doPlanOnce(ctx context.Context, p *plan.Plan) (*wire.Response, error) {
	f := c.DoPlanAsync(ctx, p)
	resp, err := f.Wait(ctx)
	if err != nil && errors.Is(err, ctx.Err()) && ctx.Err() != nil {
		c.cancelInFlight(f)
	}
	return resp, err
}

// DoPlan executes a declarative plan with no deadline; see DoPlanContext.
func (c *Client) DoPlan(p *plan.Plan) ([]plan.Result, error) {
	return c.DoPlanContext(context.Background(), p)
}

// planResultsFromWire converts a response's statement results back to
// per-op plan results.
func planResultsFromWire(resp *wire.Response) []plan.Result {
	out := make([]plan.Result, len(resp.Results))
	for i, r := range resp.Results {
		pr := plan.Result{Found: r.Found, Value: r.Value, Err: r.Err}
		if len(r.Entries) > 0 {
			pr.Entries = make([]plan.Entry, len(r.Entries))
			for j, e := range r.Entries {
				pr.Entries[j] = plan.Entry{Key: e.Key, Value: e.Value}
			}
		}
		out[i] = pr
	}
	return out
}

// Ping checks connectivity; the server echoes the payload.
func (c *Client) Ping(payload []byte) error { return c.PingContext(context.Background(), payload) }

// PingContext checks connectivity under a context.
func (c *Client) PingContext(ctx context.Context, payload []byte) error {
	resp, err := c.DoContext(ctx, &Txn{statements: []wire.Statement{{Op: wire.OpPing, Value: payload}}})
	if err != nil {
		return err
	}
	if len(resp.Results) != 1 || string(resp.Results[0].Value) != string(payload) {
		return fmt.Errorf("client: ping echo mismatch")
	}
	return nil
}

// Get reads one record.  A missing key returns ErrNotFound.
func (c *Client) Get(table string, key []byte) ([]byte, error) {
	return c.GetContext(context.Background(), table, key)
}

// GetContext reads one record under a context.
func (c *Client) GetContext(ctx context.Context, table string, key []byte) ([]byte, error) {
	resp, err := c.DoContext(ctx, NewTxn().Get(table, key))
	if err != nil {
		return nil, err
	}
	res := resp.Results[0]
	if !res.Found {
		return nil, fmt.Errorf("%w: %s/%x", ErrNotFound, table, key)
	}
	return res.Value, nil
}

// GetBySecondary reads one record through a secondary index.
func (c *Client) GetBySecondary(table, index string, secKey []byte) ([]byte, error) {
	return c.GetBySecondaryContext(context.Background(), table, index, secKey)
}

// GetBySecondaryContext reads through a secondary index under a context.
func (c *Client) GetBySecondaryContext(ctx context.Context, table, index string, secKey []byte) ([]byte, error) {
	resp, err := c.DoContext(ctx, NewTxn().GetBySecondary(table, index, secKey))
	if err != nil {
		return nil, err
	}
	res := resp.Results[0]
	if !res.Found {
		return nil, fmt.Errorf("%w: %s.%s/%x", ErrNotFound, table, index, secKey)
	}
	return res.Value, nil
}

// Insert adds one record.
func (c *Client) Insert(table string, key, value []byte) error {
	_, err := c.Do(NewTxn().Insert(table, key, value))
	return err
}

// InsertContext adds one record under a context.
func (c *Client) InsertContext(ctx context.Context, table string, key, value []byte) error {
	_, err := c.DoContext(ctx, NewTxn().Insert(table, key, value))
	return err
}

// Update overwrites one record.
func (c *Client) Update(table string, key, value []byte) error {
	_, err := c.Do(NewTxn().Update(table, key, value))
	return err
}

// UpdateContext overwrites one record under a context.
func (c *Client) UpdateContext(ctx context.Context, table string, key, value []byte) error {
	_, err := c.DoContext(ctx, NewTxn().Update(table, key, value))
	return err
}

// Upsert inserts or overwrites one record.
func (c *Client) Upsert(table string, key, value []byte) error {
	_, err := c.Do(NewTxn().Upsert(table, key, value))
	return err
}

// UpsertContext inserts or overwrites one record under a context.
func (c *Client) UpsertContext(ctx context.Context, table string, key, value []byte) error {
	_, err := c.DoContext(ctx, NewTxn().Upsert(table, key, value))
	return err
}

// Delete removes one record.
func (c *Client) Delete(table string, key []byte) error {
	_, err := c.Do(NewTxn().Delete(table, key))
	return err
}

// DeleteContext removes one record under a context.
func (c *Client) DeleteContext(ctx context.Context, table string, key []byte) error {
	_, err := c.DoContext(ctx, NewTxn().Delete(table, key))
	return err
}

// DeleteSecondary removes one secondary-index entry (protocol v2).
func (c *Client) DeleteSecondary(table, index string, secKey []byte) error {
	_, err := c.Do(NewTxn().DeleteSecondary(table, index, secKey))
	return err
}

// DeleteSecondaryContext removes one secondary-index entry under a context.
func (c *Client) DeleteSecondaryContext(ctx context.Context, table, index string, secKey []byte) error {
	_, err := c.DoContext(ctx, NewTxn().DeleteSecondary(table, index, secKey))
	return err
}

// Scan returns at most limit records of [lo, hi) in key order (protocol
// v2).  A nil hi scans to the end of the table; limit 0 selects the server
// default.
func (c *Client) Scan(table string, lo, hi []byte, limit int) ([]wire.ScanEntry, error) {
	return c.ScanContext(context.Background(), table, lo, hi, limit)
}

// ScanContext runs a bounded range scan under a context.
func (c *Client) ScanContext(ctx context.Context, table string, lo, hi []byte, limit int) ([]wire.ScanEntry, error) {
	resp, err := c.DoContext(ctx, NewTxn().Scan(table, lo, hi, limit))
	if err != nil {
		return nil, err
	}
	return resp.Results[0].Entries, nil
}

// Control executes one administrative command on the server (the plpctl
// "drp" verbs: "status", "trigger", "shares") and returns its text output.
// table is the optional table argument ("" when the command takes none).
// On a token-protected server control requires the session to have
// authenticated with DialOptions.Token.
func (c *Client) Control(cmd, table string) (string, error) {
	return c.ControlContext(context.Background(), cmd, table)
}

// ControlContext executes one administrative command under a context.
func (c *Client) ControlContext(ctx context.Context, cmd, table string) (string, error) {
	resp, err := c.DoContext(ctx, &Txn{statements: []wire.Statement{{Op: wire.OpControl, Table: table, Key: []byte(cmd)}}})
	if err != nil {
		return "", err
	}
	res := resp.Results[0]
	if res.Err != "" {
		return "", fmt.Errorf("client: control %s: %s", cmd, res.Err)
	}
	return string(res.Value), nil
}
