package client

import (
	"bytes"
	"testing"

	"plp/internal/keyenc"
	"plp/keys"
	"plp/wire"
)

func TestUint64KeyMatchesEngineEncoding(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 32, ^uint64(0)} {
		if !bytes.Equal(Uint64Key(v), keyenc.Uint64Key(v)) {
			t.Fatalf("client key encoding for %d diverges from the engine's", v)
		}
		if !bytes.Equal(Uint64Key(v), keys.Uint64(v)) {
			t.Fatalf("client key encoding for %d diverges from package keys", v)
		}
	}
	// Order preservation.
	if bytes.Compare(Uint64Key(5), Uint64Key(6)) >= 0 {
		t.Fatal("key encoding is not order preserving")
	}
}

func TestTxnBuilder(t *testing.T) {
	txn := NewTxn().
		Get("t", []byte("a")).
		Insert("t", []byte("b"), []byte("1")).
		Update("t", []byte("c"), []byte("2")).
		Upsert("t", []byte("d"), []byte("3")).
		Delete("t", []byte("e")).
		GetBySecondary("t", "idx", []byte("f")).
		InsertSecondary("t", "idx", []byte("g"), []byte("pk"))

	if txn.Len() != 7 {
		t.Fatalf("len %d, want 7", txn.Len())
	}
	wantOps := []wire.OpType{
		wire.OpGet, wire.OpInsert, wire.OpUpdate, wire.OpUpsert,
		wire.OpDelete, wire.OpGetBySecondary, wire.OpInsertSecondary,
	}
	for i, want := range wantOps {
		if txn.statements[i].Op != want {
			t.Fatalf("statement %d op %v, want %v", i, txn.statements[i].Op, want)
		}
	}
	if txn.statements[5].Index != "idx" || txn.statements[6].Index != "idx" {
		t.Fatal("secondary statements lost their index name")
	}
}

func TestTxnBuilderV2Ops(t *testing.T) {
	txn := NewTxn().
		Scan("t", []byte("a"), []byte("z"), 25).
		DeleteSecondary("t", "idx", []byte("sk"))
	if txn.Len() != 2 {
		t.Fatalf("len %d, want 2", txn.Len())
	}
	s := txn.statements[0]
	if s.Op != wire.OpScan || !bytes.Equal(s.Key, []byte("a")) ||
		!bytes.Equal(s.KeyEnd, []byte("z")) || s.Limit != 25 {
		t.Fatalf("scan statement %+v", s)
	}
	if txn.statements[1].Op != wire.OpDeleteSecondary || txn.statements[1].Index != "idx" {
		t.Fatalf("delsec statement %+v", txn.statements[1])
	}
	// A negative limit is clamped, not wrapped into a huge uint32.
	if NewTxn().Scan("t", nil, nil, -1).statements[0].Limit != 0 {
		t.Fatal("negative limit not clamped to 0")
	}
	// Version requirements follow the ops.
	if NewTxn().Get("t", nil).minVersion() != wire.V1 {
		t.Fatal("v1 txn reported a higher version need")
	}
	if txn.minVersion() != wire.V2 {
		t.Fatal("v2 txn did not report the v2 requirement")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialTimeout("127.0.0.1:1", 50_000_000); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}
