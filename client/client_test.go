package client

import (
	"bytes"
	"testing"

	"plp/internal/keyenc"
	"plp/wire"
)

func TestUint64KeyMatchesEngineEncoding(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 32, ^uint64(0)} {
		if !bytes.Equal(Uint64Key(v), keyenc.Uint64Key(v)) {
			t.Fatalf("client key encoding for %d diverges from the engine's", v)
		}
	}
	// Order preservation.
	if bytes.Compare(Uint64Key(5), Uint64Key(6)) >= 0 {
		t.Fatal("key encoding is not order preserving")
	}
}

func TestTxnBuilder(t *testing.T) {
	txn := NewTxn().
		Get("t", []byte("a")).
		Insert("t", []byte("b"), []byte("1")).
		Update("t", []byte("c"), []byte("2")).
		Upsert("t", []byte("d"), []byte("3")).
		Delete("t", []byte("e")).
		GetBySecondary("t", "idx", []byte("f")).
		InsertSecondary("t", "idx", []byte("g"), []byte("pk"))

	if txn.Len() != 7 {
		t.Fatalf("len %d, want 7", txn.Len())
	}
	wantOps := []wire.OpType{
		wire.OpGet, wire.OpInsert, wire.OpUpdate, wire.OpUpsert,
		wire.OpDelete, wire.OpGetBySecondary, wire.OpInsertSecondary,
	}
	for i, want := range wantOps {
		if txn.statements[i].Op != want {
			t.Fatalf("statement %d op %v, want %v", i, txn.statements[i].Op, want)
		}
	}
	if txn.statements[5].Index != "idx" || txn.statements[6].Index != "idx" {
		t.Fatal("secondary statements lost their index name")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := DialTimeout("127.0.0.1:1", 50_000_000); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}
