// Package plp is a from-scratch reproduction of "PLP: Page Latch-free
// Shared-everything OLTP" (Pandis, Tözün, Johnson, Ailamaki — PVLDB 4(10),
// 2011).
//
// The library implements the full storage-manager stack the paper builds
// on (slotted pages, buffer pool with page latching, ARIES-style write-ahead
// logging with an Aether-like consolidated buffer, a hierarchical lock
// manager with Speculative Lock Inheritance, and a latch-crabbing B+Tree),
// the paper's contributions (the multi-rooted B+Tree and physiological
// partitioning), and the five execution designs its evaluation compares:
//
//	Conventional   — shared-everything, centralized locking + page latching
//	Logical        — data-oriented (DORA) logical-only partitioning
//	PLPRegular     — PLP with latch-free index access
//	PLPPartition   — PLP with partition-owned heap pages
//	PLPLeaf        — PLP with leaf-owned heap pages (the paper's favourite)
//
// # Quick start
//
//	eng := plp.New(plp.Options{Design: plp.PLPLeaf, Partitions: 8})
//	defer eng.Close()
//
//	boundaries := [][]byte{plp.Uint64Key(500_000)} // 2 partitions
//	eng.CreateTable(plp.TableDef{Name: "accounts", Boundaries: boundaries})
//
//	sess := eng.NewSession()
//	req := plp.NewRequest(plp.Action{
//		Table: "accounts",
//		Key:   plp.Uint64Key(42),
//		Exec: func(c *plp.Ctx) error {
//			return c.Insert("accounts", plp.Uint64Key(42), []byte("hello"))
//		},
//	})
//	res, err := sess.Execute(req)
//
// # Declarative transactions
//
// Closure Actions are the native escape hatch; the preferred surface is the
// declarative one (package plan): transactions as phases of typed,
// introspectable ops with explicit data dependencies — the programmatic
// form of the paper's Section 3.1 transaction flow graphs.  Because a plan
// carries data instead of code, the identical value executes in-process and
// travels whole over the wire in one protocol-v3 frame, so a networked
// client runs a dependent multi-phase transaction in ONE round trip,
// stored-procedure style.  The TATP UpdateLocation shape — probe a
// non-partition-aligned secondary index, then route the update by whatever
// primary key the probe produced:
//
//	b := plp.NewPlan()
//	probe := b.LookupSecondary("subscribers", "sub_nbr", secKey).Ref()
//	b.Then().Update("subscribers", nil, newLocation).KeyFrom(probe)
//	results, err := sess.ExecutePlan(b.MustBuild())
//
// Server-evaluated read-modify-writes (conditions plus int64-add / append /
// set mutations) cover the TPC-B account/teller/branch updates without a
// read round trip:
//
//	p := plp.NewPlan().
//		AddExisting("accounts", aKey, delta).
//		AddExisting("tellers", tKey, delta).
//		AddExisting("branches", bKey, delta).
//		MustBuild()
//	results, err := sess.ExecutePlan(p)
//
// Plans may mix bounded scans with point reads in one phase (each partition
// scans its own clipped sub-range in parallel, inside the transaction), and
// all five designs execute the compiled plan identically — the differential
// trace proves plan and closure surfaces equivalent, including under
// crash/recovery.  Package client mirrors the API (client.NewPlan,
// Client.DoPlan), and a context cancellation on a v3 session sends a wire
// cancel frame that aborts the server-side transaction.
//
// # Query layer
//
// Scans carry typed predicate trees (package plan: FieldCmp / Int64Cmp /
// KeyPrefix leaves under And/Or/Not) attached with Builder.Where.  The
// engine compiles the tree once per plan into a closure-free instruction
// program and evaluates it INSIDE each partition worker's scan task, so
// filtering happens where the rows live: only passing rows are copied out,
// counted against the limit, and — over the wire — shipped to the client.
// At 1% selectivity the scan_pushdown CI datapoint measures both the
// speedup and the bytes-on-wire reduction against client-side filtering.
//
// Over protocol v3 a scan can stream instead of materializing: the server
// walks the partitions in key order and emits flow-controlled SCAN-CHUNK
// frames (a per-stream credit window caps unacknowledged chunks, so a slow
// consumer exerts backpressure instead of ballooning server memory), and
// client.ScanStream exposes the arriving rows as an iterator whose context
// cancellation sends a wire cancel that aborts the server-side scan
// mid-stream.  The sharded routing client merges per-shard streams in key
// order under one global limit, opening each shard's stream lazily so a
// limit satisfied by early shards never contacts later ones.
//
// A plan op can also fan out over an earlier scan's results (ForEach):
// update-where-style statements execute entirely server-side.  Because
// plans carry data, not code, the server caches compiled plans by
// structural shape — parameters (keys, bounds, deltas, predicate operands)
// are excluded from the fingerprint and rebound per execution — so a
// workload's steady state compiles nothing (the plp_plan_cache_hits /
// plp_plan_compiles expvars and the plan_cache CI datapoint track this).
// Aborted wire transactions carry a retry hint: client.IsTransient
// distinguishes lock-timeout-style aborts worth retrying from permanent
// ones, and the plp_latency expvar publishes sampled latency histograms
// per operation kind (statements, plans, scans, scan-chunk emission).
//
// # Execution fast paths
//
// The paper's partitioned designs replace unscalable critical sections with
// fixed-cost message passing; the executor makes sure that fixed cost is
// paid as few times as possible.  At submit time the partition manager
// analyzes the request's routing keys (they are static for everything but
// KeyFn actions):
//
//   - Single-site fast path: when every action of every phase routes to one
//     partition — the dominant TATP/TPC-B transaction shape — the WHOLE
//     transaction ships to the owning worker as one task.  Phases run
//     serially on the worker (serial execution on one worker IS the phase
//     ordering), so the transaction costs one queue operation and one
//     completion signal instead of a channel round trip per phase, and the
//     per-request scratch (transaction object, execution context, error
//     slots, wait groups) is recycled through pools: a committed
//     single-site read transaction performs only a handful of allocations
//     (TestSingleSiteAllocs gates the budget in CI) and a read-only commit
//     writes no log record at all.
//   - Per-partition batching: when a phase spans partitions, its actions
//     are grouped by owning worker and each group rides one SubmitBatch —
//     k channel operations for a k-partition phase instead of one per
//     action.
//
// Two things disable the fast paths for a request: KeyFn routing (the key
// only exists after an earlier phase ran) and closure Actions with a nil
// routing key; both fall back to the per-phase dispatch path.  Online
// repartitioning composes with batching the same way it composes with
// per-action dispatch: the worker re-checks the routing epoch at dequeue,
// a mis-routed phase batch is split with only the mis-routed actions
// forwarded to their current owner, and a mis-routed single-site batch is
// handed back unexecuted and re-driven phase by phase.  The fast paths are
// an execution strategy, not a semantics change — the differential trace
// passes unchanged across all five designs — and Options.NoFastPath
// restores per-action dispatch as the ablation/benchmark baseline
// (BenchmarkSingleSiteTxn, BenchmarkMultiSitePhase and the
// single_site_fastpath BENCH_JSON datapoint track the gap).
//
// Beyond the core engine the package exposes the operational subsystems a
// deployment needs (see extensions.go): Open for a durable, crash-safe
// engine backed by a disk-based group-commit log, Checkpoint/Recover and
// the background Checkpointer for restart recovery over the shared log,
// AttachRepartitioner for the paper's online dynamic repartitioning (DRP),
// NewBalanceMonitor for simpler one-table rebalancing under skew,
// NewAdvisorTracker for the partition-alignment analysis of Appendix E, and
// NewServer plus the client, wire and keys packages (and cmd/plpd,
// cmd/plpctl) for serving an engine over TCP.
//
// # Durability and crash recovery
//
// plp.New builds a memory-resident engine, matching the paper's
// experimental setup: its log devices (the Aether-style consolidated
// buffer and the single-mutex ablation baseline) simulate the durable
// horizon without touching a disk.  plp.Open instead puts the disk-backed
// segmented log device behind the same Log interface: appends go to an
// in-memory tail and a background flush daemon batches every outstanding
// record into one write+fsync — group commit — before advancing the
// durable LSN.  Commit is split Aether-style: append the commit record,
// release locks early, then wait for the durable horizon to pass the
// record (skipped with Options.LazyCommit), so N concurrent committers
// share ~one fsync and the WaitLog component of the paper's time
// breakdowns measures real flush waits.
//
//	eng, err := plp.Open(plp.Options{Design: plp.PLPLeaf, Partitions: 8,
//		DataDir: "/var/lib/plp"})
//	eng.CreateTable(...)          // same schema as before the crash
//	info, err := eng.Recover()    // snapshot + boundaries + committed tail
//	...
//	eng.Checkpoint()              // bound the tail; Log().Truncate reclaims
//
// Engine.Checkpoint captures a transactionally consistent snapshot of
// every table plus a meta record holding the current partition boundaries
// and the repartitioning controller's histogram state; Engine.Recover
// replays the most recent checkpoint, re-applies the boundary moves, and
// replays the committed log tail, discarding transactions that never
// committed — so a SIGKILLed engine restarts with exactly the acknowledged
// state.  cmd/plpd wires this end to end (-data-dir, -lazy-commit,
// recovery before accepting connections, a token-gated "checkpoint"
// control verb, and a graceful-shutdown flush).
//
// # Network serving
//
// NewServer exposes an engine over TCP speaking wire protocol v2: sessions
// open with a versioned handshake (negotiated down transparently for
// legacy v1 clients) that optionally authenticates a token
// (Server.SetAuthToken / plpd -token) gating the administrative control
// verbs, and v2 connections are pipelined — the server decouples frame
// reading from execution, runs each in-flight request on its own engine
// session through a bounded per-connection executor pool, and returns
// responses out of order matched by request ID, so a single connection can
// keep every partition worker busy.  The wire surface covers transactions
// over the full data-access layer plus bounded range scans (OpScan), which
// execute as Section 3.3 distributed partition scans.  Package client is
// the matching asynchronous Go client (futures, context cancellation,
// synchronous helpers on top), and package keys is the shared
// order-preserving key encoding both sides build keys with.
//
// # Sharding
//
// Cross-process sharding (v1) layers a versioned shard map — package shard,
// a small text file assigning contiguous key ranges to plpd processes —
// over the same order-preserving key encoding that drives in-process
// partitioning, so a key's owner is a pure function of the map computable
// identically by clients, coordinators and participants:
//
//	version 1
//	shard 0 10.0.0.1:7070 500000
//	shard 1 10.0.0.2:7070 -
//
// Each plpd joins with -shard-map/-shard-id (the data directory remembers
// its assignment in a shard.state file and the daemon refuses to start when
// they disagree).  A transaction whose keys are all local takes the
// unchanged single-process fast path; one whose keys all live elsewhere is
// refused with a wrong-shard error carrying the current map — the routing
// client (client.DialSharded) adopts the attached map and forwards in the
// same call, mirroring the executor's epoch-checked mis-route forwarding;
// and one spanning shards commits through a coordinator-logged two-phase
// protocol over wire v3 PREPARE/DECIDE frames: participants vote by forcing
// a prepare record and holding the branch prepared (locks held, undo
// retained), the coordinator's durable decide record is the global commit
// point, and presumed abort plus a janitor that chases lost decisions
// resolve every crash combination — the SIGKILL harness kills the
// coordinator between prepare and decide and proves no acknowledged
// cross-shard commit is lost and no unacknowledged one half-applies.
// Global transaction IDs are stamped with a per-incarnation epoch (the
// shard.state file counts restarts) so a restarted coordinator can never
// reuse a gid whose durable fate belongs to a previous life, and a commit
// decision whose log flush fails is treated as in doubt — branches stay
// prepared and queries answer "decision pending" — rather than aborted,
// since the appended decide record may still reach disk.
// Secondary-index ops, scans and plans stay shard-local in v1, and a map
// version bump moves ownership but not data; "plpctl shards" prints a
// running daemon's map.
//
// # Replication
//
// A durable plpd can ship its write-ahead log to followers: the log IS the
// replication stream, so a follower's log is a byte-identical prefix of
// the primary's, LSNs agree on both sides, resubscription after a dropped
// stream is "start from my durable LSN", and a promoted follower recovers
// through the exact same torn-tail truncation path as a restarted primary.
// A follower (plpd -follow <primary-addr>) subscribes over an ordinary
// wire-v3 session (REPL-SUBSCRIBE / REPL-RECORDS / REPL-ACK frames),
// persists each shipped batch before acking, and applies committed
// transactions through the restart-recovery path — whole transactions
// only, under a partition-worker quiesce, so its reads (gets, secondary
// lookups, scans, read-only plans — writes are refused) are always
// transaction-consistent.  Application never writes the follower's log:
// even the page-split SMO records its own B+Trees would emit are
// suppressed during replay, preserving the byte-identical prefix.
// Retention pins trail each subscriber so checkpoint-driven log truncation
// cannot unlink a segment a lagging follower still needs.
//
// Commit acknowledgement is local-fsync by default; replica-acked mode
// (plpd -ack-mode replica) additionally holds each commit ack until the
// commit record is durable on k distinct followers (plpd -ack-quorum k,
// default 1) — the gate tracks the k-th highest follower ack as a
// monotonic watermark, so an acknowledged write survives losing any k-1
// replicas plus the primary.  A subscriber that cannot catch up from the
// retained log — its start LSN precedes the truncation horizon, or its
// epoch belongs to a fenced lineage — is no longer refused: the primary
// converts the subscription into a snapshot re-seed, streaming a
// transactionally consistent checkpoint image plus the log tail over the
// same wire-v3 session (SEED frames).  The follower resets its data
// directory, installs the image, adopts the primary's epoch and resumes an
// ordinary subscription; seed chunks apply as idempotent upserts, so a
// follower SIGKILLed mid-seed restarts and simply resumes.
//
// Failover can be manual ("plpctl promote" stops the follower's stream,
// discards uncommitted in-flight buffers, bumps the persisted replication
// epoch and the shard incarnation, and starts accepting writes) or
// automatic: plpd -cluster id@addr,... -node-id N runs a lease-based
// monitor on every member.  Followers treat the replication stream's
// heartbeats as a primary lease (-lease, default 3s); when it expires they
// probe the membership, and a deterministic election — highest durable
// LSN, lowest id on ties — picks exactly one candidate to self-promote
// through the same epoch fencing, re-homing the shard map's primary onto
// itself.  A fenced old primary that comes back discovers the
// higher-epoch primary, demotes itself to follower and re-seeds from the
// new lineage, with no operator involvement end to end.  The shard map
// carries per-shard replica sets ("replica <shard> <id> <addr>" lines), so
// client.DialSharded load-balances read-only transactions across live
// followers, routes writes to the primary, and follows promotions by
// adopting the re-homed map attached to refusals (or refreshed after a
// dead peer).  "plpctl repl status" prints either side's progress (epoch,
// durable/applied LSNs, follower lag and seed phase, per-mode ack-wait
// histograms), which also feeds the plp_repl expvar; client and
// replication connections speak TLS with plpd -tls-cert/-tls-key and
// client DialOptions.TLSConfig / plpctl -tls-ca.
//
// # Online dynamic repartitioning
//
// Physiological partitioning only stays latch-free under shifting workloads
// if the system re-partitions continuously.  AttachRepartitioner installs
// the closed-loop DRP controller: every action routed through the
// partition manager feeds an aging per-table access histogram, and each
// control period the controller re-buckets the aged key weights over the
// current partition boundaries, invokes the two-phase load-balancing
// optimizer when the hottest partition exceeds its fair share, and applies
// the planned boundary moves through the engine's Rebalance path — which
// quiesces only the two workers owning the affected ranges, so the rest of
// the system never stops.  Histogram aging makes a hot spot that migrates
// stop looking hot where it used to be, so the controller follows it.
//
//	ctrl, err := plp.AttachRepartitioner(eng, plp.RepartitionConfig{})
//	ctrl.Start()        // background control loop; or call ctrl.Step()
//	defer ctrl.Stop()
//
// A controller attached to a served engine also answers the plpctl "drp"
// verbs (status, trigger, shares) on the running daemon; cmd/plpd -drp
// enables it, and examples/repartitioning demonstrates convergence under a
// Zipfian hot spot that migrates mid-run.
//
// The workload generators used by the paper's evaluation (TATP, TPC-B, a
// reduced TPC-C, and the microbenchmarks), the measurement harness and the
// per-figure experiment drivers live under internal/ and are exercised by
// cmd/plpbench, the examples, and the benchmark suite in bench_test.go.
package plp

import (
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/plan"
)

// Design selects one of the five execution designs of the paper.
type Design = engine.Design

// The five designs.
const (
	Conventional = engine.Conventional
	Logical      = engine.Logical
	PLPRegular   = engine.PLPRegular
	PLPPartition = engine.PLPPartition
	PLPLeaf      = engine.PLPLeaf
)

// Options configures an Engine.
type Options = engine.Options

// Engine is a fully assembled storage manager plus execution design.
type Engine = engine.Engine

// Session is a client handle; each concurrent client goroutine should use
// its own Session.
type Session = engine.Session

// Request is one transaction: phases of routable actions.
type Request = engine.Request

// Action is one per-partition unit of work within a Request.
type Action = engine.Action

// Ctx is the design-aware data-access handle passed to Action bodies.
type Ctx = engine.Ctx

// Result describes a completed request.
type Result = engine.Result

// Plan is a declarative transaction: phases of typed ops with explicit data
// dependencies (see package plan).  Session.ExecutePlan runs one
// in-process; client.Client.DoPlan ships one over the wire in one frame.
type Plan = plan.Plan

// PlanBuilder assembles a Plan fluently.
type PlanBuilder = plan.Builder

// PlanOp is one typed operation of a Plan.
type PlanOp = plan.Op

// PlanResult is the outcome of one plan op.
type PlanResult = plan.Result

// NewPlan returns an empty declarative plan builder.
func NewPlan() *PlanBuilder { return plan.New() }

// Predicate is a typed filter tree attached to plan scans (see package
// plan); the engine pushes it into the partition workers.
type Predicate = plan.Predicate

// CmpOp is a predicate comparison operator (plan.CmpEq, plan.CmpLt, ...).
type CmpOp = plan.CmpOp

// Predicate constructors, re-exported for convenience; the full set
// (ValueCmp, KeyCmp, prefixes, Or, Not) lives in package plan.
func FieldCmpPred(off, length uint32, op CmpOp, arg []byte) *Predicate {
	return plan.FieldCmp(off, length, op, arg)
}

// Int64CmpPred compares the big-endian int64 at off against v.
func Int64CmpPred(off uint32, op CmpOp, v int64) *Predicate { return plan.Int64Cmp(off, op, v) }

// AndPred is the conjunction of the given predicates.
func AndPred(kids ...*Predicate) *Predicate { return plan.And(kids...) }

// TableDef describes a table to create.
type TableDef = catalog.TableDef

// SecondaryDef describes a secondary index of a table.
type SecondaryDef = catalog.SecondaryDef

// New creates an engine with the given options.
func New(opts Options) *Engine { return engine.New(opts) }

// NewRequest builds a single-phase request from the given actions.
func NewRequest(actions ...Action) *Request { return engine.NewRequest(actions...) }

// AllDesigns lists every design in reporting order.
func AllDesigns() []Design { return engine.AllDesigns() }

// Uint64Key encodes a uint64 as an order-preserving index key.
func Uint64Key(v uint64) []byte { return keyenc.Uint64Key(v) }

// CompositeKey encodes a sequence of uint64 components as an
// order-preserving composite key.
func CompositeKey(vs ...uint64) []byte { return keyenc.CompositeUint64(vs...) }

// UniformBoundaries splits the key space [1, max] into n contiguous ranges
// and returns the n-1 internal boundaries, ready to be passed to TableDef.
func UniformBoundaries(max uint64, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, keyenc.Uint64Key(max*uint64(i)/uint64(n)+1))
	}
	return out
}
