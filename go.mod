module plp

go 1.24
