package keys

import (
	"bytes"
	"testing"

	"plp/internal/keyenc"
)

func TestUint64MatchesEngineEncoding(t *testing.T) {
	for _, v := range []uint64{0, 1, 42, 1 << 32, ^uint64(0)} {
		if !bytes.Equal(Uint64(v), keyenc.Uint64Key(v)) {
			t.Fatalf("public key encoding for %d diverges from the engine's", v)
		}
		got, err := DecodeUint64(Uint64(v))
		if err != nil || got != v {
			t.Fatalf("decode(encode(%d)) = %d, %v", v, got, err)
		}
	}
	if Compare(Uint64(5), Uint64(6)) >= 0 {
		t.Fatal("key encoding is not order preserving")
	}
}

func TestCompositeAndRanges(t *testing.T) {
	if !bytes.Equal(CompositeUint64(1, 2), keyenc.CompositeUint64(1, 2)) {
		t.Fatal("composite encoding diverges from the engine's")
	}
	k := Uint64(9)
	if Compare(Successor(k), k) <= 0 {
		t.Fatal("successor is not greater than its key")
	}
	end := PrefixEnd([]byte{0x01, 0xFF})
	if end == nil || Compare(end, []byte{0x01, 0xFF}) <= 0 {
		t.Fatalf("prefix end %x not after the prefix", end)
	}
	if PrefixEnd([]byte{0xFF, 0xFF}) != nil {
		t.Fatal("all-0xFF prefix should have no end")
	}
}
