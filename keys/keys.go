// Package keys is the public face of the engine's order-preserving key
// encoding (internal/keyenc), shared by both sides of the wire protocol.
//
// Every index in the system stores keys as byte strings compared with
// bytes.Compare; the encodings here guarantee that byte-wise order equals
// the numeric (or lexicographic, for composites) order of the source
// values.  The client package and the server-side engine both build keys
// through this package, so the two formats cannot drift.
package keys

import "plp/internal/keyenc"

// Uint64 encodes a uint64 as an 8-byte big-endian, order-preserving key —
// the partitioning key format of every uint64-keyed table.
func Uint64(v uint64) []byte { return keyenc.Uint64Key(v) }

// DecodeUint64 decodes the first 8 bytes of key as a big-endian uint64.
func DecodeUint64(key []byte) (uint64, error) { return keyenc.DecodeUint64(key) }

// CompositeUint64 encodes a sequence of uint64 components as one
// order-preserving composite key.
func CompositeUint64(vs ...uint64) []byte { return keyenc.CompositeUint64(vs...) }

// Compare compares two encoded keys byte-wise.
func Compare(a, b []byte) int { return keyenc.Compare(a, b) }

// Successor returns the smallest key strictly greater than key, without
// modifying its argument.  Useful for turning an inclusive scan bound into
// an exclusive one.
func Successor(key []byte) []byte { return keyenc.Successor(key) }

// PrefixEnd returns the smallest key greater than every key with the given
// prefix (nil when no such key exists), turning a prefix into an exclusive
// range end for scans.
func PrefixEnd(prefix []byte) []byte { return keyenc.PrefixEnd(prefix) }
