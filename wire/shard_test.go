package wire

import (
	"bytes"
	"testing"
)

func TestShardMapFrameRoundTrip(t *testing.T) {
	f, err := DecodeFrameV3(EncodeShardMapRequest(77))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.ID != 77 || f.Kind != FrameShardMap {
		t.Fatalf("got %+v", f)
	}
}

func TestPrepareFrameRoundTrip(t *testing.T) {
	stmts := []Statement{
		{Op: OpUpsert, Table: "kv", Key: []byte{1, 2}, Value: []byte("v")},
		{Op: OpDelete, Table: "kv", Key: []byte{9}},
	}
	payload := EncodePrepareRequest(5, "s0-42", 3, stmts)
	f, err := DecodeFrameV3(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Kind != FramePrepare || f.ID != 5 || f.GID != "s0-42" || f.MapVersion != 3 {
		t.Fatalf("header: %+v", f)
	}
	if f.Req == nil || len(f.Req.Statements) != 2 {
		t.Fatalf("statements: %+v", f.Req)
	}
	s := f.Req.Statements[0]
	if s.Op != OpUpsert || s.Table != "kv" || !bytes.Equal(s.Key, []byte{1, 2}) || !bytes.Equal(s.Value, []byte("v")) {
		t.Errorf("statement 0: %+v", s)
	}
	if f.Req.Statements[1].Op != OpDelete {
		t.Errorf("statement 1: %+v", f.Req.Statements[1])
	}
}

func TestPrepareFrameRejectsEmptyGID(t *testing.T) {
	if _, err := DecodeFrameV3(EncodePrepareRequest(1, "", 1, nil)); err == nil {
		t.Fatal("decoded a prepare without a gid")
	}
}

func TestDecideFrameRoundTrip(t *testing.T) {
	for _, mode := range []DecideMode{DecideAbort, DecideCommit, DecideQuery} {
		f, err := DecodeFrameV3(EncodeDecideRequest(9, "s1-7", mode))
		if err != nil {
			t.Fatalf("decode mode %d: %v", mode, err)
		}
		if f.Kind != FrameDecide || f.GID != "s1-7" || f.DecideMode != mode {
			t.Fatalf("mode %d: %+v", mode, f)
		}
	}
	if _, err := DecodeFrameV3(EncodeDecideRequest(9, "s1-7", DecideMode(9))); err == nil {
		t.Fatal("decoded an unknown decide mode")
	}
}

func TestIsWrongShard(t *testing.T) {
	if !IsWrongShard(WrongShardPrefix + ": key moved") {
		t.Error("prefix not recognized")
	}
	if IsWrongShard("aborted: whatever") {
		t.Error("false positive")
	}
}

func TestShardFramesTruncated(t *testing.T) {
	payload := EncodePrepareRequest(5, "g", 3, []Statement{{Op: OpGet, Table: "kv", Key: []byte{1}}})
	for i := 10; i < len(payload); i += 7 {
		if _, err := DecodeFrameV3(payload[:i]); err == nil {
			t.Fatalf("decoded truncated prepare at %d bytes", i)
		}
	}
}
