// Sharding frames: the V3 frame kinds that carry the cross-process shard
// map and the two-phase commit traffic between plpd processes.
//
// A SHARD-MAP frame asks the server for its current shard map; the reply is
// an ordinary response whose single result Value holds the map in its text
// encoding (package shard).  PREPARE ships one branch of a cross-shard
// transaction to a participant: the statements execute there and the
// participant votes by committing the response (Committed=true is a durable
// yes).  DECIDE delivers the coordinator's verdict for a gid — or, in query
// mode, asks the coordinator whether it durably decided commit, which is
// how a participant stuck in doubt after a crash chases the decision.
//
// Wrong-shard routing errors travel as ordinary transaction errors whose
// message starts with WrongShardPrefix; the server appends its current map
// to the refusing response so one round trip both rejects and refreshes.
package wire

import "fmt"

// The V3 sharding frame kinds (continuing the FrameKind space of wire.go).
const (
	// FrameShardMap requests the server's current shard map.
	FrameShardMap FrameKind = 3
	// FramePrepare executes one branch of a cross-shard transaction and
	// votes on its commit.
	FramePrepare FrameKind = 4
	// FrameDecide delivers (or queries) the coordinator's commit decision.
	FrameDecide FrameKind = 5
)

// DecideMode is the verb of a FrameDecide.
type DecideMode uint8

// Decide modes.
const (
	// DecideAbort tells the participant to roll the prepared branch back.
	DecideAbort DecideMode = 0
	// DecideCommit tells the participant to commit the prepared branch.
	DecideCommit DecideMode = 1
	// DecideQuery asks the receiver, as coordinator, whether it durably
	// decided to commit the gid; the response's Committed reports it.
	DecideQuery DecideMode = 2
)

// WrongShardPrefix starts every routing-refusal error message.  The rest of
// the message is human-readable; the refusing response carries the server's
// current encoded shard map in Results[0].Value so the client can refresh
// and re-route without an extra round trip.
const WrongShardPrefix = "wrong shard"

// IsWrongShard reports whether a transaction error message is a routing
// refusal.
func IsWrongShard(msg string) bool {
	return len(msg) >= len(WrongShardPrefix) && msg[:len(WrongShardPrefix)] == WrongShardPrefix
}

// EncodeShardMapRequest serializes a SHARD-MAP request payload.
func EncodeShardMapRequest(id uint64) []byte {
	out := appendUint64(make([]byte, 0, 9), id)
	return append(out, byte(FrameShardMap))
}

// EncodePrepareRequest serializes a PREPARE payload: the branch's gid, the
// shard-map version the coordinator routed under, and the statements of the
// branch (V2 statement encoding).
func EncodePrepareRequest(id uint64, gid string, mapVersion uint64, stmts []Statement) []byte {
	size := 8 + 1 + 4 + len(gid) + 8 + 4
	for _, s := range stmts {
		size += 1 + 4 + len(s.Table) + 4 + len(s.Index) + 4 + len(s.Key) + 4 + len(s.Value) +
			4 + len(s.KeyEnd) + 4
	}
	out := appendUint64(make([]byte, 0, size), id)
	out = append(out, byte(FramePrepare))
	out = appendString(out, gid)
	out = appendUint64(out, mapVersion)
	out = appendUint32(out, uint32(len(stmts)))
	for _, s := range stmts {
		out = append(out, byte(s.Op))
		out = appendString(out, s.Table)
		out = appendString(out, s.Index)
		out = appendBytes(out, s.Key)
		out = appendBytes(out, s.Value)
		out = appendBytes(out, s.KeyEnd)
		out = appendUint32(out, s.Limit)
	}
	return out
}

// EncodeDecideRequest serializes a DECIDE payload for the given gid.
func EncodeDecideRequest(id uint64, gid string, mode DecideMode) []byte {
	out := appendUint64(make([]byte, 0, 8+1+4+len(gid)+1), id)
	out = append(out, byte(FrameDecide))
	out = appendString(out, gid)
	return append(out, byte(mode))
}

// decodeShardFrame parses the body of a SHARD-MAP, PREPARE or DECIDE frame;
// the reader is positioned just past the kind byte.
func decodeShardFrame(f *Frame, r *reader) (*Frame, error) {
	switch f.Kind {
	case FrameShardMap:
		return f, nil
	case FramePrepare:
		f.GID = r.str()
		f.MapVersion = r.uint64()
		n := r.uint32()
		req := &Request{ID: f.ID}
		if max := uint32(len(r.buf) / 17); n > 0 && r.err == nil {
			req.Statements = make([]Statement, 0, min(n, max))
		}
		for i := uint32(0); i < n && r.err == nil; i++ {
			s := Statement{Op: OpType(r.byteVal())}
			s.Table = r.str()
			s.Index = r.str()
			s.Key = r.bytes()
			s.Value = r.bytes()
			s.KeyEnd = r.bytes()
			s.Limit = r.uint32()
			if r.err == nil && !s.Op.validFor(V3) {
				return nil, fmt.Errorf("%w: %d (prepare)", ErrBadOp, s.Op)
			}
			req.Statements = append(req.Statements, s)
		}
		if r.err != nil {
			return nil, r.err
		}
		if f.GID == "" {
			return nil, fmt.Errorf("%w: prepare without gid", ErrShortPayload)
		}
		f.Req = req
		return f, nil
	case FrameDecide:
		f.GID = r.str()
		f.DecideMode = DecideMode(r.byteVal())
		if r.err != nil {
			return nil, r.err
		}
		if f.GID == "" {
			return nil, fmt.Errorf("%w: decide without gid", ErrShortPayload)
		}
		if f.DecideMode > DecideQuery {
			return nil, fmt.Errorf("%w: decide mode %d", ErrBadOp, f.DecideMode)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("%w: unknown shard frame kind %d", ErrBadOp, f.Kind)
	}
}
