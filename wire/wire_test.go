package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		ID: 42,
		Statements: []Statement{
			{Op: OpGet, Table: "acct", Key: []byte("k1")},
			{Op: OpInsert, Table: "acct", Key: []byte("k2"), Value: []byte("v2")},
			{Op: OpGetBySecondary, Table: "acct", Index: "by_name", Key: []byte("alice")},
			{Op: OpPing, Value: []byte("hello")},
			{Op: OpControl, Table: "acct", Key: []byte("shares")},
			{Op: OpDelete, Table: "acct", Key: nil},
		},
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || len(got.Statements) != len(req.Statements) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range req.Statements {
		w, g := req.Statements[i], got.Statements[i]
		if w.Op != g.Op || w.Table != g.Table || w.Index != g.Index ||
			!bytes.Equal(w.Key, g.Key) || !bytes.Equal(w.Value, g.Value) {
			t.Fatalf("statement %d mismatch: %+v != %+v", i, g, w)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		ID:        7,
		Committed: true,
		Results: []StatementResult{
			{Found: true, Value: []byte("v")},
			{Found: false},
			{Err: "boom"},
		},
	}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, resp)
	}

	aborted := &Response{ID: 8, Committed: false, Err: "duplicate key"}
	got, err = DecodeResponse(EncodeResponse(aborted))
	if err != nil {
		t.Fatal(err)
	}
	if got.Committed || got.Err != "duplicate key" {
		t.Fatalf("aborted response mismatch: %+v", got)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint64, table, index string, key, value []byte, opSeed uint8) bool {
		op := OpType(opSeed%uint8(OpPing)) + 1
		req := &Request{ID: id, Statements: []Statement{{Op: op, Table: table, Index: index, Key: key, Value: value}}}
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			return false
		}
		g := got.Statements[0]
		return got.ID == id && g.Op == op && g.Table == table && g.Index == index &&
			bytes.Equal(g.Key, key) && bytes.Equal(g.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := DecodeResponse([]byte{1}); err == nil {
		t.Fatal("short response accepted")
	}
	// An out-of-range op must be rejected.
	bad := EncodeRequest(&Request{ID: 1, Statements: []Statement{{Op: OpType(200), Table: "t"}}})
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("invalid op accepted")
	}
	// Truncating a valid request at any point must fail cleanly, not panic.
	full := EncodeRequest(&Request{ID: 9, Statements: []Statement{{Op: OpInsert, Table: "t", Key: []byte("k"), Value: []byte("v")}}})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeRequest(full[:i]); err == nil {
			t.Fatalf("truncated request of %d bytes accepted", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{0xAB}, 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d bytes, want %d", len(got), len(want))
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted by writer")
	}
	// A corrupt header claiming a huge frame must be rejected by the reader.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted by reader")
	}
	// A frame cut short mid-payload must fail.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2, 3})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestOpTypeStrings(t *testing.T) {
	ops := []OpType{OpGet, OpInsert, OpUpdate, OpUpsert, OpDelete, OpGetBySecondary, OpInsertSecondary, OpPing, OpControl}
	seen := make(map[string]bool)
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate op label %q", s)
		}
		seen[s] = true
		if !op.valid() {
			t.Fatalf("op %v reported invalid", op)
		}
	}
	if OpType(0).valid() || OpType(99).valid() {
		t.Fatal("invalid ops reported valid")
	}
	if OpType(99).String() == "" {
		t.Fatal("unknown op should still render")
	}
}

func TestManyStatementsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	req := &Request{ID: 1}
	for i := 0; i < 500; i++ {
		key := make([]byte, rng.Intn(40))
		val := make([]byte, rng.Intn(200))
		rng.Read(key)
		rng.Read(val)
		req.Statements = append(req.Statements, Statement{Op: OpUpsert, Table: "bulk", Key: key, Value: val})
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Statements) != 500 {
		t.Fatalf("got %d statements, want 500", len(got.Statements))
	}
}
