package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		ID: 42,
		Statements: []Statement{
			{Op: OpGet, Table: "acct", Key: []byte("k1")},
			{Op: OpInsert, Table: "acct", Key: []byte("k2"), Value: []byte("v2")},
			{Op: OpGetBySecondary, Table: "acct", Index: "by_name", Key: []byte("alice")},
			{Op: OpPing, Value: []byte("hello")},
			{Op: OpControl, Table: "acct", Key: []byte("shares")},
			{Op: OpDelete, Table: "acct", Key: nil},
		},
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != req.ID || len(got.Statements) != len(req.Statements) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range req.Statements {
		w, g := req.Statements[i], got.Statements[i]
		if w.Op != g.Op || w.Table != g.Table || w.Index != g.Index ||
			!bytes.Equal(w.Key, g.Key) || !bytes.Equal(w.Value, g.Value) {
			t.Fatalf("statement %d mismatch: %+v != %+v", i, g, w)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		ID:        7,
		Committed: true,
		Results: []StatementResult{
			{Found: true, Value: []byte("v")},
			{Found: false},
			{Err: "boom"},
		},
	}
	got, err := DecodeResponse(EncodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, resp)
	}

	aborted := &Response{ID: 8, Committed: false, Err: "duplicate key"}
	got, err = DecodeResponse(EncodeResponse(aborted))
	if err != nil {
		t.Fatal(err)
	}
	if got.Committed || got.Err != "duplicate key" {
		t.Fatalf("aborted response mismatch: %+v", got)
	}
}

// TestAppendResponseReusesBuffer proves the append form the server's
// per-connection encode buffer relies on: successive responses encoded into
// the same buffer round-trip correctly, reuse its capacity once grown, and
// match the one-shot encoder byte for byte.
func TestAppendResponseReusesBuffer(t *testing.T) {
	responses := []*Response{
		{ID: 1, Committed: true, Results: []StatementResult{
			{Found: true, Value: []byte("a-long-first-value-to-grow-the-buffer")},
			{Found: true, Entries: []ScanEntry{{Key: []byte("k1"), Value: []byte("v1")}}},
		}},
		{ID: 2, Err: "aborted"},
		{ID: 3, Committed: true, Results: []StatementResult{{Found: false}}},
	}
	var buf []byte
	for _, resp := range responses {
		buf = AppendResponseV(buf[:0], resp, V2)
		if want := EncodeResponseV(resp, V2); !bytes.Equal(buf, want) {
			t.Fatalf("append encoding differs from one-shot encoding for id %d", resp.ID)
		}
		got, err := DecodeResponseV(append([]byte(nil), buf...), V2)
		if err != nil {
			t.Fatal(err)
		}
		if got.ID != resp.ID || got.Committed != resp.Committed || got.Err != resp.Err {
			t.Fatalf("round trip mismatch: %+v != %+v", got, resp)
		}
	}
	grown := cap(buf)
	buf = AppendResponseV(buf[:0], responses[2], V2)
	if cap(buf) != grown {
		t.Fatalf("small response reallocated the buffer: cap %d -> %d", grown, cap(buf))
	}
	// Appending to a non-empty prefix must preserve it.
	prefix := []byte{0xde, 0xad}
	out := AppendResponseV(append([]byte(nil), prefix...), responses[1], V1)
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("append clobbered the existing prefix")
	}
	if want := EncodeResponseV(responses[1], V1); !bytes.Equal(out[2:], want) {
		t.Fatal("appended payload differs from one-shot encoding")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(id uint64, table, index string, key, value []byte, opSeed uint8) bool {
		op := OpType(opSeed%uint8(OpPing)) + 1
		req := &Request{ID: id, Statements: []Statement{{Op: op, Table: table, Index: index, Key: key, Value: value}}}
		got, err := DecodeRequest(EncodeRequest(req))
		if err != nil {
			return false
		}
		g := got.Statements[0]
		return got.ID == id && g.Op == op && g.Table == table && g.Index == index &&
			bytes.Equal(g.Key, key) && bytes.Equal(g.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
	if _, err := DecodeResponse([]byte{1}); err == nil {
		t.Fatal("short response accepted")
	}
	// An out-of-range op must be rejected.
	bad := EncodeRequest(&Request{ID: 1, Statements: []Statement{{Op: OpType(200), Table: "t"}}})
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("invalid op accepted")
	}
	// Truncating a valid request at any point must fail cleanly, not panic.
	full := EncodeRequest(&Request{ID: 9, Statements: []Statement{{Op: OpInsert, Table: "t", Key: []byte("k"), Value: []byte("v")}}})
	for i := 0; i < len(full); i++ {
		if _, err := DecodeRequest(full[:i]); err == nil {
			t.Fatalf("truncated request of %d bytes accepted", i)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte{0xAB}, 10000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: %d bytes, want %d", len(got), len(want))
		}
	}
}

func TestFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, MaxFrameSize+1)); err == nil {
		t.Fatal("oversized frame accepted by writer")
	}
	// A corrupt header claiming a huge frame must be rejected by the reader.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted by reader")
	}
	// A frame cut short mid-payload must fail.
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 10, 1, 2, 3})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestOpTypeStrings(t *testing.T) {
	ops := []OpType{OpGet, OpInsert, OpUpdate, OpUpsert, OpDelete, OpGetBySecondary,
		OpInsertSecondary, OpPing, OpControl, OpScan, OpDeleteSecondary}
	seen := make(map[string]bool)
	for _, op := range ops {
		s := op.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate op label %q", s)
		}
		seen[s] = true
		if !op.validFor(V2) {
			t.Fatalf("op %v reported invalid at v2", op)
		}
	}
	if OpType(0).validFor(V2) || OpType(99).validFor(V2) {
		t.Fatal("invalid ops reported valid")
	}
	if OpType(99).String() == "" {
		t.Fatal("unknown op should still render")
	}
	// The v2 ops are version-gated: a v1 decoder rejects them.
	if OpScan.validFor(V1) || OpDeleteSecondary.validFor(V1) {
		t.Fatal("v2 ops reported valid at v1")
	}
	if OpScan.MinVersion() != V2 || OpGet.MinVersion() != V1 {
		t.Fatal("wrong op minimum versions")
	}
}

func TestV2RequestRoundTrip(t *testing.T) {
	req := &Request{
		ID: 99,
		Statements: []Statement{
			{Op: OpScan, Table: "acct", Key: []byte("a"), KeyEnd: []byte("m"), Limit: 17},
			{Op: OpDeleteSecondary, Table: "acct", Index: "by_name", Key: []byte("alice")},
		},
	}
	got, err := DecodeRequestV(EncodeRequestV(req, V2), V2)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Statements[0]
	if s.Op != OpScan || !bytes.Equal(s.Key, []byte("a")) || !bytes.Equal(s.KeyEnd, []byte("m")) || s.Limit != 17 {
		t.Fatalf("scan statement mismatch: %+v", s)
	}
	if got.Statements[1].Op != OpDeleteSecondary || got.Statements[1].Index != "by_name" {
		t.Fatalf("delsec statement mismatch: %+v", got.Statements[1])
	}
	// The same payload decoded as v1 must fail: the op is out of range there.
	if _, err := DecodeRequestV(EncodeRequestV(req, V2), V1); err == nil {
		t.Fatal("v1 decoder accepted a v2-only op")
	}
}

func TestV2ResponseRoundTrip(t *testing.T) {
	resp := &Response{
		ID: 5, Committed: true,
		Results: []StatementResult{{
			Found: true,
			Entries: []ScanEntry{
				{Key: []byte("k1"), Value: []byte("v1")},
				{Key: []byte("k2"), Value: nil},
			},
		}},
	}
	got, err := DecodeResponseV(EncodeResponseV(resp, V2), V2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results[0].Entries) != 2 ||
		!bytes.Equal(got.Results[0].Entries[0].Key, []byte("k1")) ||
		!bytes.Equal(got.Results[0].Entries[0].Value, []byte("v1")) {
		t.Fatalf("entries mismatch: %+v", got.Results[0].Entries)
	}
	// Truncating the v2 payload anywhere must fail cleanly.
	full := EncodeResponseV(resp, V2)
	for i := 0; i < len(full); i++ {
		if _, err := DecodeResponseV(full[:i], V2); err == nil {
			t.Fatalf("truncated v2 response of %d bytes accepted", i)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{MaxVersion: V2, Token: []byte("sekrit")}
	payload := EncodeHello(h)
	if !IsHello(payload) {
		t.Fatal("hello payload not recognized")
	}
	if IsHelloAck(payload) {
		t.Fatal("hello payload mistaken for an ack")
	}
	got, err := DecodeHello(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxVersion != V2 || string(got.Token) != "sekrit" {
		t.Fatalf("hello mismatch: %+v", got)
	}
	// A plain request payload must never look like a hello.
	req := EncodeRequest(&Request{ID: 1, Statements: []Statement{{Op: OpPing}}})
	if IsHello(req) {
		t.Fatal("request payload recognized as hello")
	}
	// Truncated hellos fail cleanly.
	for i := 8; i < len(payload); i++ {
		if _, err := DecodeHello(payload[:i]); err == nil {
			t.Fatalf("truncated hello of %d bytes accepted", i)
		}
	}
	if _, err := DecodeHello([]byte("short")); err == nil {
		t.Fatal("non-hello accepted")
	}
}

func TestHelloAckRoundTrip(t *testing.T) {
	for _, a := range []*HelloAck{
		{Version: V2, Authenticated: true},
		{Version: V1, Authenticated: false},
		{Version: V2, Err: "authentication failed"},
	} {
		payload := EncodeHelloAck(a)
		if !IsHelloAck(payload) || IsHello(payload) {
			t.Fatal("ack payload misclassified")
		}
		got, err := DecodeHelloAck(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, a) {
			t.Fatalf("ack mismatch: %+v != %+v", got, a)
		}
	}
}

func TestRequestIDPeek(t *testing.T) {
	payload := EncodeRequest(&Request{ID: 0xDEADBEEF, Statements: []Statement{{Op: OpPing}}})
	// Corrupt everything after the ID prefix: the peek must still work.
	for i := 8; i < len(payload); i++ {
		payload[i] ^= 0xA5
	}
	id, ok := RequestID(payload)
	if !ok || id != 0xDEADBEEF {
		t.Fatalf("peeked id %#x ok=%v", id, ok)
	}
	if _, ok := RequestID([]byte{1, 2, 3}); ok {
		t.Fatal("short payload yielded an id")
	}
}

func TestManyStatementsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	req := &Request{ID: 1}
	for i := 0; i < 500; i++ {
		key := make([]byte, rng.Intn(40))
		val := make([]byte, rng.Intn(200))
		rng.Read(key)
		rng.Read(val)
		req.Statements = append(req.Statements, Statement{Op: OpUpsert, Table: "bulk", Key: key, Value: val})
	}
	got, err := DecodeRequest(EncodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Statements) != 500 {
		t.Fatalf("got %d statements, want 500", len(got.Statements))
	}
}
