// Replication frames: the V3 frame kinds that carry the WAL-shipping
// stream between a primary and its followers.
//
// A follower opens an ordinary authenticated V3 connection and sends
// REPL-SUBSCRIBE as its first frame: the LSN it wants the stream to start
// at (its local durable horizon) and the replication epoch it last
// followed (0 for a fresh follower).  The primary replies with an ordinary
// response whose single result Value is the subscribe ack (primary epoch +
// primary durable LSN, EncodeReplSubscribeAck); a refusal is a response
// whose Err starts with ReplRefusedPrefix.  After a successful subscribe
// the connection leaves request/response mode: the primary pushes
// REPL-RECORDS frames (batches of opaque marshaled WAL records) and the
// follower sends REPL-ACK frames carrying its applied and durable LSNs.
//
// The record blobs are opaque to this package on purpose: wire frames the
// stream, the wal package owns the record encoding, and the two only meet
// in internal/repl.
package wire

import "fmt"

// The V3 replication frame kinds (continuing the FrameKind space).
const (
	// FrameReplSubscribe asks the server to start streaming WAL records.
	FrameReplSubscribe FrameKind = 6
	// FrameReplRecords carries a batch of marshaled WAL records
	// (primary → follower).
	FrameReplRecords FrameKind = 7
	// FrameReplAck reports the follower's applied and durable LSNs
	// (follower → primary).
	FrameReplAck FrameKind = 8
)

// The V3 seed/heartbeat frame kinds (9 and 10 belong to the scan stream).
const (
	// FrameReplSeedBegin opens a snapshot re-seed: the stream that follows
	// starts at SeedStart (the oldest retained LSN on the primary) instead
	// of the LSN the follower asked for, and every record up to SeedTarget
	// belongs to the seed phase.  The follower must discard its local state
	// before applying (primary → follower).
	FrameReplSeedBegin FrameKind = 11
	// FrameReplSeedEnd marks the end of the seed phase: the follower's
	// rebuilt state is now a faithful replica and ordinary streaming
	// resumes on the same connection (primary → follower).
	FrameReplSeedEnd FrameKind = 12
	// FrameReplHeartbeat is an empty keep-alive the primary sends when it
	// has nothing to stream, so followers can lease the primary's liveness
	// off the replication connection (primary → follower).
	FrameReplHeartbeat FrameKind = 13
)

// ReplRefusedPrefix starts every subscription-refusal error message (stale
// epoch, truncated start LSN, no replication configured).
const ReplRefusedPrefix = "repl refused"

// IsReplRefused reports whether an error message is a subscription refusal.
func IsReplRefused(msg string) bool {
	return len(msg) >= len(ReplRefusedPrefix) && msg[:len(ReplRefusedPrefix)] == ReplRefusedPrefix
}

// FollowerPrefix starts every "this node is a follower" refusal: writes,
// control verbs and 2PC traffic are redirected to the primary.
const FollowerPrefix = "follower"

// IsFollowerRefusal reports whether an error message is a follower-mode
// write/control refusal.
func IsFollowerRefusal(msg string) bool {
	return len(msg) >= len(FollowerPrefix) && msg[:len(FollowerPrefix)] == FollowerPrefix
}

// EncodeReplSubscribe serializes a REPL-SUBSCRIBE payload: the LSN the
// stream should start at, the follower's last-known replication epoch
// (0 when it has never followed anyone), and the follower's stable node
// identity.  The node string keys the primary's per-node replica-ack
// accounting: a reconnecting follower evicts its own half-open previous
// subscription instead of counting twice toward the quorum.
func EncodeReplSubscribe(id uint64, startLSN, epoch uint64, node string) []byte {
	out := appendUint64(make([]byte, 0, 8+1+8+8+4+len(node)), id)
	out = append(out, byte(FrameReplSubscribe))
	out = appendUint64(out, startLSN)
	out = appendUint64(out, epoch)
	return appendBytes(out, []byte(node))
}

// EncodeReplRecords serializes a REPL-RECORDS payload from marshaled
// record blobs.  id is a stream sequence number (monotonic per
// connection); the follower echoes nothing — acks are by LSN, not by
// frame.
func EncodeReplRecords(id uint64, blobs [][]byte) []byte {
	size := 8 + 1 + 4
	for _, b := range blobs {
		size += 4 + len(b)
	}
	out := appendUint64(make([]byte, 0, size), id)
	out = append(out, byte(FrameReplRecords))
	out = appendUint32(out, uint32(len(blobs)))
	for _, b := range blobs {
		out = appendBytes(out, b)
	}
	return out
}

// EncodeReplAck serializes a REPL-ACK payload: the follower's applied LSN
// (everything below it is visible to reads) and durable LSN (everything
// below it survives a follower crash).
func EncodeReplAck(id uint64, applied, durable uint64) []byte {
	out := appendUint64(make([]byte, 0, 8+1+8+8), id)
	out = append(out, byte(FrameReplAck))
	out = appendUint64(out, applied)
	return appendUint64(out, durable)
}

// EncodeReplSeedBegin serializes a SEED-BEGIN payload: the LSN the seed
// stream starts at (the primary's oldest retained record) and the durable
// horizon captured when the seed was accepted — everything below it arrives
// during the seed phase.
func EncodeReplSeedBegin(id uint64, seedStart, seedTarget uint64) []byte {
	out := appendUint64(make([]byte, 0, 8+1+8+8), id)
	out = append(out, byte(FrameReplSeedBegin))
	out = appendUint64(out, seedStart)
	return appendUint64(out, seedTarget)
}

// EncodeReplSeedEnd serializes a SEED-END payload.
func EncodeReplSeedEnd(id uint64) []byte {
	out := appendUint64(make([]byte, 0, 9), id)
	return append(out, byte(FrameReplSeedEnd))
}

// EncodeReplHeartbeat serializes an empty keep-alive frame.
func EncodeReplHeartbeat(id uint64) []byte {
	out := appendUint64(make([]byte, 0, 9), id)
	return append(out, byte(FrameReplHeartbeat))
}

// EncodeReplSubscribeAck builds the subscribe-ack blob carried in the
// accepting response's first result Value: the primary's replication epoch
// and its current durable LSN.
func EncodeReplSubscribeAck(epoch, durableLSN uint64) []byte {
	out := appendUint64(make([]byte, 0, 16), epoch)
	return appendUint64(out, durableLSN)
}

// EncodeReplSubscribeAckSeed builds a subscribe-ack blob with the seed
// marker set: the primary accepted the subscription but will re-seed the
// follower (first stream frame is SEED-BEGIN).  Old followers ignore the
// trailing byte — DecodeReplSubscribeAck tolerates it — and then fail on
// the unknown SEED-BEGIN frame kind, which is the correct hard stop for a
// mixed-version pair.
func EncodeReplSubscribeAckSeed(epoch, durableLSN uint64) []byte {
	out := appendUint64(make([]byte, 0, 17), epoch)
	out = appendUint64(out, durableLSN)
	return append(out, 1)
}

// ReplSubscribeAckSeeded reports whether a subscribe-ack blob carries the
// seed marker.
func ReplSubscribeAckSeeded(buf []byte) bool {
	return len(buf) > 16 && buf[16] == 1
}

// DecodeReplSubscribeAck parses a subscribe-ack blob.
func DecodeReplSubscribeAck(buf []byte) (epoch, durableLSN uint64, err error) {
	r := &reader{buf: buf}
	epoch = r.uint64()
	durableLSN = r.uint64()
	if r.err != nil {
		return 0, 0, r.err
	}
	return epoch, durableLSN, nil
}

// decodeReplFrame parses the body of a REPL-SUBSCRIBE, REPL-RECORDS or
// REPL-ACK frame; the reader is positioned just past the kind byte.
func decodeReplFrame(f *Frame, r *reader) (*Frame, error) {
	switch f.Kind {
	case FrameReplSubscribe:
		f.StartLSN = r.uint64()
		f.ReplEpoch = r.uint64()
		if r.off < len(r.buf) {
			// The node identity was appended in a later wire revision;
			// frames from pre-node subscribers simply end here.
			f.ReplNode = r.str()
		}
		if r.err != nil {
			return nil, r.err
		}
		return f, nil
	case FrameReplRecords:
		n := r.uint32()
		// Hostile-count guard: every blob costs at least its 4-byte length
		// prefix, so a frame of len(buf) bytes cannot hold more than
		// len(buf)/4 blobs.
		if max := uint32(len(r.buf) / 4); n > max {
			return nil, fmt.Errorf("%w: %d record blobs in a %d-byte frame", ErrShortPayload, n, len(r.buf))
		}
		blobs := make([][]byte, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			blobs = append(blobs, r.bytes())
		}
		if r.err != nil {
			return nil, r.err
		}
		f.ReplRecords = blobs
		return f, nil
	case FrameReplAck:
		f.AppliedLSN = r.uint64()
		f.DurableLSN = r.uint64()
		if r.err != nil {
			return nil, r.err
		}
		return f, nil
	case FrameReplSeedBegin:
		f.SeedStart = r.uint64()
		f.SeedTarget = r.uint64()
		if r.err != nil {
			return nil, r.err
		}
		return f, nil
	case FrameReplSeedEnd, FrameReplHeartbeat:
		return f, nil
	default:
		return nil, fmt.Errorf("%w: unknown repl frame kind %d", ErrBadOp, f.Kind)
	}
}
