package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"plp/plan"
)

func TestScanRequestRoundTrip(t *testing.T) {
	sc := &ScanRequest{
		Table:        "accounts",
		Lo:           []byte("a"),
		Hi:           []byte("q"),
		Limit:        100_000,
		ChunkEntries: 512,
		Window:       16,
		Filter:       plan.And(plan.Int64Cmp(0, plan.CmpGt, 7), plan.KeyPrefix([]byte("a"))),
	}
	buf := EncodeScanRequest(99, sc)
	f, err := DecodeFrameV3(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Kind != FrameScan || f.ID != 99 {
		t.Fatalf("kind=%d id=%d", f.Kind, f.ID)
	}
	got := f.Scan
	if got.Table != sc.Table || !bytes.Equal(got.Lo, sc.Lo) || !bytes.Equal(got.Hi, sc.Hi) ||
		got.Limit != sc.Limit || got.ChunkEntries != sc.ChunkEntries || got.Window != sc.Window {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	if got.Filter == nil || got.Filter.Kind != plan.PredAnd || len(got.Filter.Kids) != 2 {
		t.Fatalf("filter did not survive: %+v", got.Filter)
	}

	// Filterless scan.
	f2, err := DecodeFrameV3(EncodeScanRequest(7, &ScanRequest{Table: "t"}))
	if err != nil {
		t.Fatalf("decode filterless: %v", err)
	}
	if f2.Scan.Filter != nil {
		t.Fatalf("phantom filter: %+v", f2.Scan.Filter)
	}
}

func TestScanAckRoundTrip(t *testing.T) {
	buf := EncodeScanAck(42, 3)
	if !IsScanAckFrame(buf) {
		t.Fatal("IsScanAckFrame false on an ack")
	}
	if IsScanAckFrame(EncodeCancelRequest(42)) {
		t.Fatal("IsScanAckFrame true on a cancel")
	}
	f, err := DecodeFrameV3(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if f.Kind != FrameScanAck || f.ID != 42 || f.Credit != 3 {
		t.Fatalf("kind=%d id=%d credit=%d", f.Kind, f.ID, f.Credit)
	}
}

func TestScanChunkRoundTrip(t *testing.T) {
	c := &ScanChunk{
		ID:    7,
		Final: true,
		Err:   "boom",
		Entries: []ScanEntry{
			{Key: []byte("k1"), Value: []byte("v1")},
			{Key: []byte("k2"), Value: nil},
		},
	}
	buf := AppendScanChunk(nil, c)
	if !IsScanChunk(buf) {
		t.Fatal("IsScanChunk false on a chunk")
	}
	got, err := DecodeScanChunk(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.ID != c.ID || got.Final != c.Final || got.Err != c.Err || len(got.Entries) != 2 {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
	for i := range c.Entries {
		if !bytes.Equal(got.Entries[i].Key, c.Entries[i].Key) ||
			!bytes.Equal(got.Entries[i].Value, c.Entries[i].Value) {
			t.Fatalf("entry %d mismatch: %+v", i, got.Entries[i])
		}
	}
	// A chunk must not be mistaken for a response or handshake.
	if IsHelloAck(buf) || IsHello(buf) {
		t.Fatal("chunk magic collides with handshake magic")
	}
}

func TestScanChunkHostile(t *testing.T) {
	// Entry count far beyond the payload must not allocate or decode.
	c := AppendScanChunk(nil, &ScanChunk{ID: 1, Entries: []ScanEntry{{Key: []byte("k")}}})
	countOff := 8 + 8 + 1 + 4 + 0 // magic, id, flags, empty err
	binary.LittleEndian.PutUint32(c[countOff:], 1<<30)
	if _, err := DecodeScanChunk(c); err == nil {
		t.Fatal("hostile entry count decoded")
	}
	// Truncation at every prefix must error, not panic.
	full := AppendScanChunk(nil, &ScanChunk{ID: 2, Final: true, Entries: []ScanEntry{
		{Key: []byte("key"), Value: []byte("value")},
	}})
	for i := 8; i < len(full); i++ {
		if _, err := DecodeScanChunk(full[:i]); err == nil {
			t.Fatalf("truncated chunk (%d/%d bytes) decoded", i, len(full))
		}
	}
	// Hostile scan-request filter bytes must error cleanly too.
	req := EncodeScanRequest(1, &ScanRequest{Table: "t", Filter: plan.ValueEq([]byte("x"))})
	for i := 9; i < len(req); i++ {
		if _, err := DecodeFrameV3(req[:i]); err == nil {
			t.Fatalf("truncated scan request (%d/%d bytes) decoded", i, len(req))
		}
	}
}

// FuzzDecodeScanChunk is the hostile-input fuzz target for SCAN-CHUNK
// decoding: arbitrary bytes must never panic, and every successfully
// decoded chunk must re-encode to an equivalent chunk.
func FuzzDecodeScanChunk(f *testing.F) {
	f.Add(AppendScanChunk(nil, &ScanChunk{ID: 1}))
	f.Add(AppendScanChunk(nil, &ScanChunk{ID: 2, Final: true, Err: "x"}))
	f.Add(AppendScanChunk(nil, &ScanChunk{ID: 3, Entries: []ScanEntry{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: []byte("2")},
	}}))
	big := make([]byte, 64)
	f.Add(append(append([]byte{}, scanChunkMagic[:]...), big...))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeScanChunk(data)
		if err != nil {
			return
		}
		re, err := DecodeScanChunk(AppendScanChunk(nil, c))
		if err != nil {
			t.Fatalf("re-decode of re-encoded chunk failed: %v", err)
		}
		if re.ID != c.ID || re.Final != c.Final || re.Err != c.Err || len(re.Entries) != len(c.Entries) {
			t.Fatalf("re-encode mismatch: %+v vs %+v", c, re)
		}
	})
}

// FuzzDecodeScanFrame covers the FrameScan/FrameScanAck request bodies,
// including embedded predicate trees.
func FuzzDecodeScanFrame(f *testing.F) {
	f.Add(EncodeScanRequest(1, &ScanRequest{Table: "t", Lo: []byte("a"), Hi: []byte("z")}))
	f.Add(EncodeScanRequest(2, &ScanRequest{Table: "t", Filter: plan.Or(
		plan.ValuePrefix([]byte("p")), plan.Not(plan.Int64Cmp(4, plan.CmpLe, -1)))}))
	f.Add(EncodeScanAck(3, 1))
	f.Fuzz(func(t *testing.T, data []byte) {
		f, err := DecodeFrameV3(data)
		if err != nil {
			return
		}
		if f.Kind == FrameScan && f.Scan != nil && f.Scan.Filter != nil {
			// Whatever decoded must either validate or be rejected —
			// Compile must not panic on it.
			_, _ = f.Scan.Filter.Compile()
		}
	})
}
