// Package wire defines the client/server protocol of the PLP network
// front-end (cmd/plpd and package client).
//
// # Frames
//
// Every message is one frame: a 4-byte big-endian length prefix followed by
// that many payload bytes, capped at MaxFrameSize.  Payloads use a compact
// little-endian binary encoding with length-prefixed byte fields.  Only the
// standard library is used.
//
// # Versions and the handshake
//
// Three protocol versions exist:
//
//   - V1 (legacy): no handshake.  The client's first frame is already a
//     Request; the session is unversioned, unauthenticated, and the server
//     answers every request in the order it was received.
//   - V2: the client's first frame is a HELLO carrying the highest protocol
//     version it speaks plus an optional authentication token.  The server
//     answers with a HELLO-ACK carrying the negotiated version
//     (min(client, server)) and whether the session is authenticated, then
//     both sides switch to that version's request/response encoding.  On a
//     V2 session requests are pipelined: the client may keep many requests
//     in flight and the server completes them out of order, matching
//     responses to requests by the client-chosen request ID.
//   - V3: request frames are kind-tagged.  Besides flat statement requests
//     (unchanged from V2), a frame can carry a whole declarative plan
//     (package plan) — phases of typed ops with bindings, executed
//     server-side as one transaction, one round trip for arbitrarily deep
//     dependency chains — or a CANCEL naming an in-flight request ID, which
//     aborts that request's server-side transaction.  The HELLO-ACK gains a
//     session scope (full or read-only); read-only sessions are refused
//     write ops and control verbs.
//
// A HELLO frame is distinguished from a legacy request by an 8-byte magic
// prefix; a V1 client's first request would need the request ID
// 0x4F4C4548_F7504C50 to collide with it, which sequential-ID clients never
// produce.  A V2 server therefore serves old V1 clients on the same port
// with no configuration.
//
// # V2 payloads
//
// A HELLO is: magic "PLP\xf7HELO", uint32 max version, token bytes, uint32
// reserved flags.  A HELLO-ACK is: magic "PLP\xf7HACK", uint32 negotiated
// version, 1 authenticated byte, error string (non-empty means the server
// refused the session and will close the connection).
//
// A request is: uint64 ID, uint32 statement count, then per statement: op
// byte, table, index, key, value (all length-prefixed); V2 appends the scan
// end-key and a uint32 limit to each statement.  A response is: uint64 ID,
// committed byte, transaction error string, uint32 result count, then per
// result: found byte, value, error string; V2 appends a uint32 entry count
// and that many key/value pairs (the scan results).
//
// # V3 payloads
//
// A V3 request frame is: uint64 ID, kind byte, then the kind's body.
// Kind 0 (statements) is the V2 statement body.  Kind 1 (plan) is a uint32
// phase count, then per phase a uint32 op count and that many ops (kind
// byte; table, index, key, value, key-end, cond-value, mut-arg all
// length-prefixed; uint32 limit; cond and mut bytes; uint32 key-from,
// value-from and each-from bindings; a length-prefixed predicate encoding,
// empty when the op has no filter).  Kind 2 (cancel) has no body: the
// frame's ID is the ID of the request to cancel, and a cancel frame
// receives no response of its own (the canceled request's response reports
// the abort).  Kinds 9 and 10 open and flow-control streaming scans (see
// scanstream.go).  V3 responses use the V2 encoding plus a trailing
// abort-classification byte (transient vs permanent, for client retry
// policy), with one result per plan op in flat phase order.
//
// # Authentication
//
// A server started with a token (plpd -token) treats a session as
// authenticated only if its HELLO presented the matching token: a wrong
// token is refused outright, while a missing token (including every V1
// session) yields an unauthenticated session that may run data transactions
// but is refused OpControl.  A server with no token treats every session as
// authenticated.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"plp/plan"
)

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortPayload  = errors.New("wire: truncated payload")
	ErrBadOp         = errors.New("wire: unknown operation")
	ErrBadHello      = errors.New("wire: malformed handshake frame")
)

// MaxFrameSize bounds a single frame (requests and responses).  16 MiB is
// far above anything the engine's 8 KiB pages can produce in one
// transaction but protects the server from corrupt length prefixes.
const MaxFrameSize = 16 << 20

// Protocol versions.
const (
	// V1 is the legacy protocol: no handshake, serial request execution.
	V1 uint32 = 1
	// V2 adds the authenticated handshake, pipelined out-of-order
	// execution, range scans (OpScan) and secondary-index deletes
	// (OpDeleteSecondary).
	V2 uint32 = 2
	// V3 adds kind-tagged request frames: declarative plan requests
	// (package plan), cancel frames, and the read-only session scope.
	V3 uint32 = 3
	// MaxVersion is the highest version this build speaks.
	MaxVersion = V3
)

// FrameKind tags a V3 request frame's body.
type FrameKind uint8

// The V3 request frame kinds.
const (
	// FrameStatements carries a flat statement transaction (the V2 body).
	FrameStatements FrameKind = 0
	// FramePlan carries a whole declarative plan executed as one
	// transaction.
	FramePlan FrameKind = 1
	// FrameCancel aborts the in-flight request whose ID the frame carries.
	// It receives no response of its own.
	FrameCancel FrameKind = 2
)

// OpType identifies one statement kind.
type OpType uint8

// Statement operations.
const (
	// OpGet reads the record under Key.  A missing key is not an error; the
	// result has Found=false.
	OpGet OpType = iota + 1
	// OpInsert adds a record; a duplicate key aborts the transaction.
	OpInsert
	// OpUpdate overwrites an existing record; a missing key aborts.
	OpUpdate
	// OpUpsert inserts or overwrites.
	OpUpsert
	// OpDelete removes a record; deleting a missing key aborts.
	OpDelete
	// OpGetBySecondary resolves Key through the secondary index named by
	// Index and returns the referenced record.
	OpGetBySecondary
	// OpInsertSecondary adds a secondary-index entry mapping Key to Value
	// (the primary key).
	OpInsertSecondary
	// OpPing is a health check; the server echoes Value.
	OpPing
	// OpControl executes one administrative command on the server (the
	// plpctl "drp" verbs): Key carries the command name ("status",
	// "trigger", "shares"), Table the optional table argument.  The result
	// Value is the command's text output.  Control statements are handled
	// outside any transaction, must be sent alone in a request, and require
	// an authenticated session when the server has a token configured.
	OpControl
	// OpScan (V2) performs a bounded range scan: Key is the inclusive lower
	// bound, KeyEnd the exclusive upper bound (nil means open), Limit the
	// maximum number of records returned.  The engine distributes the scan
	// to the partition-owning workers; results arrive in key order in the
	// result's Entries.  A flat-statement scan must be sent alone in a
	// request, at every protocol version; scans inside V3 plans execute
	// within the transaction and mix freely with other ops.
	OpScan
	// OpDeleteSecondary (V2) removes the secondary-index entry under Key in
	// the index named by Index.  Deleting a missing entry is not an error.
	OpDeleteSecondary
)

// String returns the operation mnemonic.
func (o OpType) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpUpsert:
		return "UPSERT"
	case OpDelete:
		return "DELETE"
	case OpGetBySecondary:
		return "GETSEC"
	case OpInsertSecondary:
		return "INSSEC"
	case OpPing:
		return "PING"
	case OpControl:
		return "CONTROL"
	case OpScan:
		return "SCAN"
	case OpDeleteSecondary:
		return "DELSEC"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// MinVersion returns the lowest protocol version that defines the op.
func (o OpType) MinVersion() uint32 {
	if o >= OpScan {
		return V2
	}
	return V1
}

// validFor reports whether the op is defined at the given protocol version.
func (o OpType) validFor(version uint32) bool {
	if o < OpGet || o > OpDeleteSecondary {
		return false
	}
	return o.MinVersion() <= version
}

// Statement is one operation within a transaction.
type Statement struct {
	// Op selects the operation.
	Op OpType
	// Table names the target table (ignored by OpPing).
	Table string
	// Index names the secondary index for the secondary-index ops.
	Index string
	// Key is the primary key (the secondary key for secondary ops, or the
	// inclusive scan lower bound for OpScan).
	Key []byte
	// Value is the record image for writes (or the primary key for
	// OpInsertSecondary, or the echo payload for OpPing).
	Value []byte
	// KeyEnd is the exclusive upper bound of an OpScan (nil scans to the end
	// of the table).  V2 only.
	KeyEnd []byte
	// Limit caps the number of records an OpScan returns (0 selects the
	// server's default).  V2 only.
	Limit uint32
}

// Request is one transaction submitted by a client.
type Request struct {
	// ID is chosen by the client and echoed in the response.  V2 clients
	// keep many requests in flight and match responses to requests by it.
	ID uint64
	// Statements execute in order as one transaction.
	Statements []Statement
}

// ScanEntry is one record returned by an OpScan.
type ScanEntry struct {
	// Key is the record's primary key.
	Key []byte
	// Value is the record image.
	Value []byte
}

// StatementResult is the outcome of one statement.
type StatementResult struct {
	// Found reports whether a read found its key (for OpScan, whether the
	// scan returned at least one record).
	Found bool
	// Value is the read result (or the ping echo, or control output).
	Value []byte
	// Err is a non-empty statement error message; any statement error aborts
	// the whole transaction.
	Err string
	// Entries holds an OpScan's records in key order.  V2 only.
	Entries []ScanEntry
}

// RetryHint classifies an aborted transaction for the client's retry
// policy, so clients need not string-match error messages.
type RetryHint uint8

// The retry hints.
const (
	// RetryUnknown carries no classification (committed responses, pre-V3
	// servers).
	RetryUnknown RetryHint = 0
	// RetryTransient marks an abort caused by transient contention —
	// deadlock-avoidance lock timeouts, cross-shard prepare conflicts —
	// that a retry of the identical transaction may well commit.
	RetryTransient RetryHint = 1
	// RetryPermanent marks an abort that will repeat deterministically
	// (validation failures, failed RMW conditions, missing tables):
	// retrying the identical transaction is pointless.
	RetryPermanent RetryHint = 2
)

// Response is the server's reply to one Request.
type Response struct {
	// ID echoes the request ID.
	ID uint64
	// Committed reports whether the transaction committed.
	Committed bool
	// Err is the transaction-level error message (empty on commit).
	Err string
	// Retry classifies an abort as transient or permanent (V3; encoded as
	// a trailing byte that pre-V3 decoders never read).
	Retry RetryHint
	// Results holds one entry per statement, in order.
	Results []StatementResult
}

// Hello is the first frame of a V2 session, sent by the client.
type Hello struct {
	// MaxVersion is the highest protocol version the client speaks; the
	// server negotiates the session down to min(MaxVersion, MaxVersion of
	// the server).
	MaxVersion uint32
	// Token is the optional authentication token.  Sessions that present no
	// token to a token-protected server stay unauthenticated (data
	// transactions only); a wrong token is refused outright.
	Token []byte
}

// HelloAck is the server's reply to a Hello.
type HelloAck struct {
	// Version is the negotiated protocol version of the session.
	Version uint32
	// Authenticated reports whether the session may issue OpControl.
	Authenticated bool
	// Err is non-empty when the server refused the session (bad token,
	// malformed hello); the server closes the connection after sending it.
	Err string
	// ReadOnly reports that the session authenticated with a read-only
	// token (V3): write ops and control verbs are refused.  Encoded as a
	// trailing scope byte that pre-V3 clients ignore.
	ReadOnly bool
}

// Handshake frame magics.  The hello magic doubles as the V1/V2 sniff: a V1
// request would need this exact little-endian request ID as its first frame
// to be mistaken for a handshake.
var (
	helloMagic    = [8]byte{'P', 'L', 'P', 0xF7, 'H', 'E', 'L', 'O'}
	helloAckMagic = [8]byte{'P', 'L', 'P', 0xF7, 'H', 'A', 'C', 'K'}
)

// --- binary encoding helpers ---

func appendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte { return appendBytes(dst, []byte(s)) }

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = ErrShortPayload
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.err = ErrShortPayload
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.err = ErrShortPayload
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// bytes returns the next length-prefixed field *aliasing* the payload
// buffer: decoded messages share their frames' memory (frames are allocated
// per message and never reused), which keeps the hot path at one allocation
// per frame instead of one per field.
func (r *reader) bytes() []byte {
	n := r.uint32()
	if r.err != nil {
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.err = ErrShortPayload
		return nil
	}
	if n == 0 {
		return nil
	}
	out := r.buf[r.off : r.off+int(n) : r.off+int(n)]
	r.off += int(n)
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

// --- handshake codec ---

// IsHello reports whether a payload is a handshake HELLO frame.
func IsHello(payload []byte) bool {
	return len(payload) >= 8 && bytes.Equal(payload[:8], helloMagic[:])
}

// IsHelloAck reports whether a payload is a handshake HELLO-ACK frame.
func IsHelloAck(payload []byte) bool {
	return len(payload) >= 8 && bytes.Equal(payload[:8], helloAckMagic[:])
}

// EncodeHello serializes a HELLO payload.
func EncodeHello(h *Hello) []byte {
	out := append([]byte(nil), helloMagic[:]...)
	out = appendUint32(out, h.MaxVersion)
	out = appendBytes(out, h.Token)
	out = appendUint32(out, 0) // reserved flags
	return out
}

// DecodeHello parses a HELLO payload.  Trailing bytes beyond the reserved
// flags are ignored so future versions can extend the frame.
func DecodeHello(payload []byte) (*Hello, error) {
	if !IsHello(payload) {
		return nil, ErrBadHello
	}
	r := &reader{buf: payload, off: 8}
	h := &Hello{MaxVersion: r.uint32()}
	h.Token = r.bytes()
	r.uint32() // reserved flags
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHello, r.err)
	}
	return h, nil
}

// EncodeHelloAck serializes a HELLO-ACK payload.  The scope byte is
// appended last: pre-V3 decoders stop before it and are unaffected.
func EncodeHelloAck(a *HelloAck) []byte {
	out := append([]byte(nil), helloAckMagic[:]...)
	out = appendUint32(out, a.Version)
	authed := byte(0)
	if a.Authenticated {
		authed = 1
	}
	out = append(out, authed)
	out = appendString(out, a.Err)
	scope := byte(0)
	if a.ReadOnly {
		scope = 1
	}
	out = append(out, scope)
	return out
}

// DecodeHelloAck parses a HELLO-ACK payload.  The scope byte is optional so
// acks from pre-V3 servers still decode.
func DecodeHelloAck(payload []byte) (*HelloAck, error) {
	if !IsHelloAck(payload) {
		return nil, ErrBadHello
	}
	r := &reader{buf: payload, off: 8}
	a := &HelloAck{Version: r.uint32()}
	a.Authenticated = r.byteVal() == 1
	a.Err = r.str()
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadHello, r.err)
	}
	if r.off < len(r.buf) {
		a.ReadOnly = r.byteVal() == 1
	}
	return a, nil
}

// --- request/response codec ---

// RequestID best-effort decodes the request-ID prefix of a (possibly
// corrupt) request payload so that error responses can still echo the ID
// and ID-matching clients stay in sync.
func RequestID(payload []byte) (uint64, bool) {
	if len(payload) < 8 {
		return 0, false
	}
	return binary.LittleEndian.Uint64(payload), true
}

// EncodeRequest serializes a request payload at protocol version V1.
func EncodeRequest(req *Request) []byte { return EncodeRequestV(req, V1) }

// EncodeRequestV serializes a request payload at the given protocol version
// (without the frame header).  At V3 the body is tagged FrameStatements.
func EncodeRequestV(req *Request, version uint32) []byte {
	size := 8 + 4
	if version >= V3 {
		size++
	}
	for _, s := range req.Statements {
		size += 1 + 4 + len(s.Table) + 4 + len(s.Index) + 4 + len(s.Key) + 4 + len(s.Value)
		if version >= V2 {
			size += 4 + len(s.KeyEnd) + 4
		}
	}
	out := appendUint64(make([]byte, 0, size), req.ID)
	if version >= V3 {
		out = append(out, byte(FrameStatements))
	}
	out = appendUint32(out, uint32(len(req.Statements)))
	for _, s := range req.Statements {
		out = append(out, byte(s.Op))
		out = appendString(out, s.Table)
		out = appendString(out, s.Index)
		out = appendBytes(out, s.Key)
		out = appendBytes(out, s.Value)
		if version >= V2 {
			out = appendBytes(out, s.KeyEnd)
			out = appendUint32(out, s.Limit)
		}
	}
	return out
}

// DecodeRequest parses a request payload at protocol version V1.
func DecodeRequest(buf []byte) (*Request, error) { return DecodeRequestV(buf, V1) }

// DecodeRequestV parses a request payload at the given protocol version.
// Ops introduced after that version are rejected with ErrBadOp.  At V3 only
// FrameStatements bodies are accepted — use DecodeFrameV3 to dispatch the
// other frame kinds.  The returned request's byte fields alias buf, which
// must not be modified or reused afterwards.
func DecodeRequestV(buf []byte, version uint32) (*Request, error) {
	r := &reader{buf: buf}
	req := &Request{ID: r.uint64()}
	if version >= V3 {
		if k := FrameKind(r.byteVal()); r.err == nil && k != FrameStatements {
			return nil, fmt.Errorf("%w: frame kind %d is not a statement request", ErrBadOp, k)
		}
	}
	n := r.uint32()
	// Presize bounded by what the payload could physically hold (a
	// statement is at least 17 bytes), so a hostile count cannot force a
	// huge allocation.
	if max := uint32(len(buf) / 17); n > 0 && r.err == nil {
		req.Statements = make([]Statement, 0, min(n, max))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		s := Statement{Op: OpType(r.byteVal())}
		s.Table = r.str()
		s.Index = r.str()
		s.Key = r.bytes()
		s.Value = r.bytes()
		if version >= V2 {
			s.KeyEnd = r.bytes()
			s.Limit = r.uint32()
		}
		if r.err == nil && !s.Op.validFor(version) {
			return nil, fmt.Errorf("%w: %d (protocol v%d)", ErrBadOp, s.Op, version)
		}
		req.Statements = append(req.Statements, s)
	}
	if r.err != nil {
		return nil, r.err
	}
	return req, nil
}

// --- V3 frame codec (plans and cancels) ---

// Frame is one decoded V3 request frame.
type Frame struct {
	// ID is the request ID (for FrameCancel, the ID of the request to
	// cancel).
	ID uint64
	// Kind tags which body field is set.
	Kind FrameKind
	// Req is the flat statement transaction (FrameStatements, and the
	// statements of a FramePrepare).
	Req *Request
	// Plan is the declarative plan (FramePlan).
	Plan *plan.Plan
	// GID is the cross-shard global transaction ID (FramePrepare,
	// FrameDecide).
	GID string
	// MapVersion is the shard-map version the coordinator routed under
	// (FramePrepare); the participant re-checks ownership against its own
	// map before voting.
	MapVersion uint64
	// DecideMode is the decide verb (FrameDecide): DecideAbort,
	// DecideCommit or DecideQuery.
	DecideMode DecideMode
	// StartLSN is the requested stream start (FrameReplSubscribe).
	StartLSN uint64
	// ReplEpoch is the follower's last-known replication epoch
	// (FrameReplSubscribe; 0 = never followed).
	ReplEpoch uint64
	// ReplNode is the subscriber's stable node identity
	// (FrameReplSubscribe; "" from pre-node subscribers).  The primary
	// counts replica-ack quorums per node, not per connection, and evicts a
	// node's previous subscription when it resubscribes.
	ReplNode string
	// ReplRecords holds the marshaled WAL record blobs of a
	// FrameReplRecords batch (opaque to this package; aliases the frame
	// buffer).
	ReplRecords [][]byte
	// AppliedLSN and DurableLSN are the follower's progress report
	// (FrameReplAck).
	AppliedLSN uint64
	// DurableLSN is the follower's durable horizon (FrameReplAck).
	DurableLSN uint64
	// SeedStart and SeedTarget bound a snapshot re-seed
	// (FrameReplSeedBegin): the stream restarts at SeedStart and the seed
	// phase covers every record below SeedTarget.
	SeedStart uint64
	// SeedTarget is the durable horizon the seed phase runs to
	// (FrameReplSeedBegin).
	SeedTarget uint64
	// Scan is the streaming-scan request (FrameScan).
	Scan *ScanRequest
	// Credit is the number of chunk credits returned (FrameScanAck).
	Credit uint32
}

// minEncodedOpBytes is the smallest possible encoded plan op; hostile
// phase/op counts are clamped against it so they cannot force allocations
// the payload could not physically hold.
const minEncodedOpBytes = 51

// EncodePlanRequest serializes a plan request payload (without the frame
// header) at protocol version V3.
func EncodePlanRequest(id uint64, p *plan.Plan) []byte {
	size := 8 + 1 + 4
	for _, ph := range p.Phases {
		size += 4
		for i := range ph {
			op := &ph[i]
			size += minEncodedOpBytes + len(op.Table) + len(op.Index) + len(op.Key) +
				len(op.Value) + len(op.KeyEnd) + len(op.CondValue) + len(op.MutArg)
		}
	}
	out := appendUint64(make([]byte, 0, size), id)
	out = append(out, byte(FramePlan))
	out = appendUint32(out, uint32(len(p.Phases)))
	for _, ph := range p.Phases {
		out = appendUint32(out, uint32(len(ph)))
		for i := range ph {
			op := &ph[i]
			out = append(out, byte(op.Kind))
			out = appendString(out, op.Table)
			out = appendString(out, op.Index)
			out = appendBytes(out, op.Key)
			out = appendBytes(out, op.Value)
			out = appendBytes(out, op.KeyEnd)
			out = appendUint32(out, op.Limit)
			out = append(out, byte(op.Cond), byte(op.Mut))
			out = appendBytes(out, op.CondValue)
			out = appendBytes(out, op.MutArg)
			out = appendUint32(out, uint32(op.KeyFrom))
			out = appendUint32(out, uint32(op.ValueFrom))
			out = appendUint32(out, uint32(op.EachFrom))
			if op.Filter != nil {
				out = appendBytes(out, plan.AppendPredicate(nil, op.Filter))
			} else {
				out = appendUint32(out, 0)
			}
		}
	}
	return out
}

// EncodeCancelRequest serializes a cancel frame for the request with the
// given ID.
func EncodeCancelRequest(id uint64) []byte {
	out := appendUint64(make([]byte, 0, 9), id)
	return append(out, byte(FrameCancel))
}

// DecodeFrameV3 parses one V3 request frame, dispatching on its kind.  The
// decoded frame's byte fields alias buf; the plan's structure is *not*
// semantically validated here — the engine's compiler re-validates, so a
// hostile peer gains nothing by skipping the client-side checks.
func DecodeFrameV3(buf []byte) (*Frame, error) {
	r := &reader{buf: buf}
	f := &Frame{ID: r.uint64()}
	f.Kind = FrameKind(r.byteVal())
	if r.err != nil {
		return nil, r.err
	}
	switch f.Kind {
	case FrameStatements:
		req, err := DecodeRequestV(buf, V3)
		if err != nil {
			return nil, err
		}
		f.Req = req
		return f, nil
	case FrameCancel:
		return f, nil
	case FramePlan:
		phases := r.uint32()
		maxOps := uint32(len(buf) / minEncodedOpBytes)
		if phases > maxOps {
			return nil, fmt.Errorf("%w: %d phases in a %d-byte frame", ErrShortPayload, phases, len(buf))
		}
		p := &plan.Plan{Phases: make([][]plan.Op, 0, phases)}
		for i := uint32(0); i < phases && r.err == nil; i++ {
			n := r.uint32()
			if n > maxOps {
				return nil, fmt.Errorf("%w: %d ops in a %d-byte frame", ErrShortPayload, n, len(buf))
			}
			ops := make([]plan.Op, 0, n)
			for j := uint32(0); j < n && r.err == nil; j++ {
				op := plan.Op{Kind: plan.Kind(r.byteVal())}
				op.Table = r.str()
				op.Index = r.str()
				op.Key = r.bytes()
				op.Value = r.bytes()
				op.KeyEnd = r.bytes()
				op.Limit = r.uint32()
				op.Cond = plan.Cond(r.byteVal())
				op.Mut = plan.Mut(r.byteVal())
				op.CondValue = r.bytes()
				op.MutArg = r.bytes()
				op.KeyFrom = int32(r.uint32())
				op.ValueFrom = int32(r.uint32())
				op.EachFrom = int32(r.uint32())
				if fb := r.bytes(); len(fb) > 0 && r.err == nil {
					pred, rest, err := plan.DecodePredicate(fb)
					if err != nil {
						return nil, fmt.Errorf("wire: plan op filter: %w", err)
					}
					if len(rest) != 0 {
						return nil, fmt.Errorf("wire: plan op filter: %d trailing bytes", len(rest))
					}
					op.Filter = pred
				}
				ops = append(ops, op)
			}
			p.Phases = append(p.Phases, ops)
		}
		if r.err != nil {
			return nil, r.err
		}
		f.Plan = p
		return f, nil
	case FrameShardMap, FramePrepare, FrameDecide:
		return decodeShardFrame(f, r)
	case FrameReplSubscribe, FrameReplRecords, FrameReplAck,
		FrameReplSeedBegin, FrameReplSeedEnd, FrameReplHeartbeat:
		return decodeReplFrame(f, r)
	case FrameScan, FrameScanAck:
		return decodeScanFrame(f, r)
	default:
		return nil, fmt.Errorf("%w: unknown frame kind %d", ErrBadOp, f.Kind)
	}
}

// EncodeResponse serializes a response payload at protocol version V1.
func EncodeResponse(resp *Response) []byte { return EncodeResponseV(resp, V1) }

// EncodeResponseV serializes a response payload at the given protocol
// version (without the frame header).
func EncodeResponseV(resp *Response, version uint32) []byte {
	return AppendResponseV(nil, resp, version)
}

// AppendResponseV appends the serialized response to dst and returns the
// extended slice.  Servers reuse one buffer per connection across replies
// (AppendResponseV(buf[:0], ...)) so steady-state response encoding
// allocates nothing once the buffer has grown to the session's working
// size.
func AppendResponseV(dst []byte, resp *Response, version uint32) []byte {
	size := 8 + 1 + 4 + len(resp.Err) + 4 + 1
	for _, res := range resp.Results {
		size += 1 + 4 + len(res.Value) + 4 + len(res.Err)
		if version >= V2 {
			size += 4
			for _, e := range res.Entries {
				size += 4 + len(e.Key) + 4 + len(e.Value)
			}
		}
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	out := appendUint64(dst, resp.ID)
	committed := byte(0)
	if resp.Committed {
		committed = 1
	}
	out = append(out, committed)
	out = appendString(out, resp.Err)
	out = appendUint32(out, uint32(len(resp.Results)))
	for _, res := range resp.Results {
		found := byte(0)
		if res.Found {
			found = 1
		}
		out = append(out, found)
		out = appendBytes(out, res.Value)
		out = appendString(out, res.Err)
		if version >= V2 {
			out = appendUint32(out, uint32(len(res.Entries)))
			for _, e := range res.Entries {
				out = appendBytes(out, e.Key)
				out = appendBytes(out, e.Value)
			}
		}
	}
	// The retry hint trails the body: pre-V3 decoders stop before it.
	if version >= V3 {
		out = append(out, byte(resp.Retry))
	}
	return out
}

// DecodeResponse parses a response payload at protocol version V1.
func DecodeResponse(buf []byte) (*Response, error) { return DecodeResponseV(buf, V1) }

// DecodeResponseV parses a response payload at the given protocol version.
// The returned response's byte fields alias buf, which must not be modified
// or reused afterwards.
func DecodeResponseV(buf []byte, version uint32) (*Response, error) {
	r := &reader{buf: buf}
	resp := &Response{ID: r.uint64()}
	resp.Committed = r.byteVal() == 1
	resp.Err = r.str()
	n := r.uint32()
	// Presize bounded by payload capacity (a result is at least 9 bytes).
	if max := uint32(len(buf) / 9); n > 0 && r.err == nil {
		resp.Results = make([]StatementResult, 0, min(n, max))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		var res StatementResult
		res.Found = r.byteVal() == 1
		res.Value = r.bytes()
		res.Err = r.str()
		if version >= V2 {
			m := r.uint32()
			for j := uint32(0); j < m && r.err == nil; j++ {
				var e ScanEntry
				e.Key = r.bytes()
				e.Value = r.bytes()
				res.Entries = append(res.Entries, e)
			}
		}
		resp.Results = append(resp.Results, res)
	}
	if r.err != nil {
		return nil, r.err
	}
	// The optional trailing retry hint (V3 servers always append it).
	if version >= V3 && r.off < len(r.buf) {
		resp.Retry = RetryHint(r.byteVal())
	}
	return resp, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
