// Package wire defines the client/server protocol of the PLP network
// front-end (cmd/plpd and package client).
//
// The protocol is deliberately small: a client sends one framed Request —
// an ordered list of statements that execute as a single transaction — and
// receives one framed Response with a per-statement result and the
// transaction outcome.  Frames are length-prefixed; payloads use a compact
// little-endian binary encoding with length-prefixed byte fields.  Only the
// standard library is used.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Errors returned by the codec.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	ErrShortPayload  = errors.New("wire: truncated payload")
	ErrBadOp         = errors.New("wire: unknown operation")
)

// MaxFrameSize bounds a single frame (requests and responses).  16 MiB is
// far above anything the engine's 8 KiB pages can produce in one
// transaction but protects the server from corrupt length prefixes.
const MaxFrameSize = 16 << 20

// OpType identifies one statement kind.
type OpType uint8

// Statement operations.
const (
	// OpGet reads the record under Key.  A missing key is not an error; the
	// result has Found=false.
	OpGet OpType = iota + 1
	// OpInsert adds a record; a duplicate key aborts the transaction.
	OpInsert
	// OpUpdate overwrites an existing record; a missing key aborts.
	OpUpdate
	// OpUpsert inserts or overwrites.
	OpUpsert
	// OpDelete removes a record; deleting a missing key aborts.
	OpDelete
	// OpGetBySecondary resolves Key through the secondary index named by
	// Index and returns the referenced record.
	OpGetBySecondary
	// OpInsertSecondary adds a secondary-index entry mapping Key to Value
	// (the primary key).
	OpInsertSecondary
	// OpPing is a health check; the server echoes Value.
	OpPing
	// OpControl executes one administrative command on the server (the
	// plpctl "drp" verbs): Key carries the command name ("status",
	// "trigger", "shares"), Table the optional table argument.  The result
	// Value is the command's text output.  Control statements are handled
	// outside any transaction and must be sent alone in a request.
	OpControl
)

// String returns the operation mnemonic.
func (o OpType) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpUpsert:
		return "UPSERT"
	case OpDelete:
		return "DELETE"
	case OpGetBySecondary:
		return "GETSEC"
	case OpInsertSecondary:
		return "INSSEC"
	case OpPing:
		return "PING"
	case OpControl:
		return "CONTROL"
	default:
		return fmt.Sprintf("OP(%d)", uint8(o))
	}
}

// valid reports whether the op is one the protocol defines.
func (o OpType) valid() bool { return o >= OpGet && o <= OpControl }

// Statement is one operation within a transaction.
type Statement struct {
	// Op selects the operation.
	Op OpType
	// Table names the target table (ignored by OpPing).
	Table string
	// Index names the secondary index for OpGetBySecondary/OpInsertSecondary.
	Index string
	// Key is the primary key (or the secondary key for secondary ops).
	Key []byte
	// Value is the record image for writes (or the primary key for
	// OpInsertSecondary, or the echo payload for OpPing).
	Value []byte
}

// Request is one transaction submitted by a client.
type Request struct {
	// ID is chosen by the client and echoed in the response so responses can
	// be matched to requests by higher-level multiplexing clients.
	ID uint64
	// Statements execute in order as one transaction.
	Statements []Statement
}

// StatementResult is the outcome of one statement.
type StatementResult struct {
	// Found reports whether a read found its key.
	Found bool
	// Value is the read result (or the ping echo).
	Value []byte
	// Err is a non-empty statement error message; any statement error aborts
	// the whole transaction.
	Err string
}

// Response is the server's reply to one Request.
type Response struct {
	// ID echoes the request ID.
	ID uint64
	// Committed reports whether the transaction committed.
	Committed bool
	// Err is the transaction-level error message (empty on commit).
	Err string
	// Results holds one entry per statement, in order.
	Results []StatementResult
}

// --- binary encoding helpers ---

func appendUint64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte { return appendBytes(dst, []byte(s)) }

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.buf) {
		r.err = ErrShortPayload
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *reader) uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.err = ErrShortPayload
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) byteVal() byte {
	if r.err != nil {
		return 0
	}
	if r.off+1 > len(r.buf) {
		r.err = ErrShortPayload
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *reader) bytes() []byte {
	n := r.uint32()
	if r.err != nil {
		return nil
	}
	if r.off+int(n) > len(r.buf) {
		r.err = ErrShortPayload
		return nil
	}
	if n == 0 {
		return nil
	}
	out := append([]byte(nil), r.buf[r.off:r.off+int(n)]...)
	r.off += int(n)
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

// EncodeRequest serializes a request payload (without the frame header).
func EncodeRequest(req *Request) []byte {
	out := appendUint64(nil, req.ID)
	out = appendUint32(out, uint32(len(req.Statements)))
	for _, s := range req.Statements {
		out = append(out, byte(s.Op))
		out = appendString(out, s.Table)
		out = appendString(out, s.Index)
		out = appendBytes(out, s.Key)
		out = appendBytes(out, s.Value)
	}
	return out
}

// DecodeRequest parses a request payload.
func DecodeRequest(buf []byte) (*Request, error) {
	r := &reader{buf: buf}
	req := &Request{ID: r.uint64()}
	n := r.uint32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		s := Statement{Op: OpType(r.byteVal())}
		s.Table = r.str()
		s.Index = r.str()
		s.Key = r.bytes()
		s.Value = r.bytes()
		if r.err == nil && !s.Op.valid() {
			return nil, fmt.Errorf("%w: %d", ErrBadOp, s.Op)
		}
		req.Statements = append(req.Statements, s)
	}
	if r.err != nil {
		return nil, r.err
	}
	return req, nil
}

// EncodeResponse serializes a response payload (without the frame header).
func EncodeResponse(resp *Response) []byte {
	out := appendUint64(nil, resp.ID)
	committed := byte(0)
	if resp.Committed {
		committed = 1
	}
	out = append(out, committed)
	out = appendString(out, resp.Err)
	out = appendUint32(out, uint32(len(resp.Results)))
	for _, res := range resp.Results {
		found := byte(0)
		if res.Found {
			found = 1
		}
		out = append(out, found)
		out = appendBytes(out, res.Value)
		out = appendString(out, res.Err)
	}
	return out
}

// DecodeResponse parses a response payload.
func DecodeResponse(buf []byte) (*Response, error) {
	r := &reader{buf: buf}
	resp := &Response{ID: r.uint64()}
	resp.Committed = r.byteVal() == 1
	resp.Err = r.str()
	n := r.uint32()
	for i := uint32(0); i < n && r.err == nil; i++ {
		var res StatementResult
		res.Found = r.byteVal() == 1
		res.Value = r.bytes()
		res.Err = r.str()
		resp.Results = append(resp.Results, res)
	}
	if r.err != nil {
		return nil, r.err
	}
	return resp, nil
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
