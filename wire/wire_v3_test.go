package wire

import (
	"bytes"
	"testing"

	"plp/plan"
)

// samplePlan builds a representative plan exercising every field of the op
// encoding.
func samplePlan(t *testing.T) *plan.Plan {
	t.Helper()
	b := plan.New()
	probe := b.LookupSecondary("sub", "nbr", []byte("n-42")).Ref()
	b.Scan("sub", []byte("a"), []byte("z"), 17)
	b.Then().Update("sub", nil, []byte("loc")).KeyFrom(probe)
	b.AddExisting("acct", []byte("k1"), -3)
	b.CompareAndSet("cfg", []byte("k2"), []byte("old"), []byte("new"))
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPlanRequestRoundTrip checks the plan frame codec reproduces every op
// field.
func TestPlanRequestRoundTrip(t *testing.T) {
	p := samplePlan(t)
	payload := EncodePlanRequest(99, p)
	f, err := DecodeFrameV3(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FramePlan || f.ID != 99 {
		t.Fatalf("frame %+v, want plan id=99", f)
	}
	if len(f.Plan.Phases) != len(p.Phases) {
		t.Fatalf("%d phases, want %d", len(f.Plan.Phases), len(p.Phases))
	}
	for pi, ph := range p.Phases {
		for oi, want := range ph {
			got := f.Plan.Phases[pi][oi]
			if got.Kind != want.Kind || got.Table != want.Table || got.Index != want.Index ||
				!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) ||
				!bytes.Equal(got.KeyEnd, want.KeyEnd) || got.Limit != want.Limit ||
				got.Cond != want.Cond || got.Mut != want.Mut ||
				!bytes.Equal(got.CondValue, want.CondValue) || !bytes.Equal(got.MutArg, want.MutArg) ||
				got.KeyFrom != want.KeyFrom || got.ValueFrom != want.ValueFrom {
				t.Fatalf("phase %d op %d: %+v != %+v", pi, oi, got, want)
			}
		}
	}
	if err := f.Plan.Validate(); err != nil {
		t.Fatalf("decoded plan fails validation: %v", err)
	}
}

// TestV3StatementFrame checks kind-tagged statement requests round trip and
// dispatch through DecodeFrameV3.
func TestV3StatementFrame(t *testing.T) {
	req := &Request{ID: 7, Statements: []Statement{
		{Op: OpUpsert, Table: "t", Key: []byte("k"), Value: []byte("v")},
		{Op: OpScan, Table: "t", Key: []byte("a"), KeyEnd: []byte("b"), Limit: 3},
	}}
	payload := EncodeRequestV(req, V3)
	f, err := DecodeFrameV3(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameStatements || f.Req == nil || f.Req.ID != 7 || len(f.Req.Statements) != 2 {
		t.Fatalf("frame %+v", f)
	}
	// DecodeRequestV at V3 accepts the same payload directly.
	back, err := DecodeRequestV(payload, V3)
	if err != nil || back.ID != 7 {
		t.Fatalf("DecodeRequestV(V3): %+v, %v", back, err)
	}
	// ...but rejects a plan frame.
	if _, err := DecodeRequestV(EncodePlanRequest(8, samplePlan(t)), V3); err == nil {
		t.Fatal("DecodeRequestV accepted a plan frame")
	}
}

// TestCancelFrame checks the cancel frame encoding.
func TestCancelFrame(t *testing.T) {
	f, err := DecodeFrameV3(EncodeCancelRequest(1234))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != FrameCancel || f.ID != 1234 {
		t.Fatalf("frame %+v, want cancel of 1234", f)
	}
}

// TestHelloAckScopeByte checks the read-only scope survives a round trip
// and that a pre-V3 ack (no scope byte) still decodes.
func TestHelloAckScopeByte(t *testing.T) {
	for _, ro := range []bool{false, true} {
		a, err := DecodeHelloAck(EncodeHelloAck(&HelloAck{Version: V3, Authenticated: !ro, ReadOnly: ro}))
		if err != nil {
			t.Fatal(err)
		}
		if a.ReadOnly != ro {
			t.Fatalf("ReadOnly %v, want %v", a.ReadOnly, ro)
		}
	}
	// A v2-era ack stops after the error string.
	legacy := append([]byte(nil), helloAckMagic[:]...)
	legacy = appendUint32(legacy, V2)
	legacy = append(legacy, 1)
	legacy = appendString(legacy, "")
	a, err := DecodeHelloAck(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if a.ReadOnly || !a.Authenticated || a.Version != V2 {
		t.Fatalf("legacy ack %+v", a)
	}
}

// TestDecodeFrameV3Hostile checks hostile phase/op counts are rejected
// rather than allocated.
func TestDecodeFrameV3Hostile(t *testing.T) {
	payload := appendUint64(nil, 1)
	payload = append(payload, byte(FramePlan))
	payload = appendUint32(payload, 0xFFFFFFFF) // 4 billion phases
	if _, err := DecodeFrameV3(payload); err == nil {
		t.Fatal("hostile phase count accepted")
	}
	payload = appendUint64(nil, 1)
	payload = append(payload, byte(FramePlan))
	payload = appendUint32(payload, 1)
	payload = appendUint32(payload, 0xFFFFFFFF) // 4 billion ops
	if _, err := DecodeFrameV3(payload); err == nil {
		t.Fatal("hostile op count accepted")
	}
	if _, err := DecodeFrameV3([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated frame accepted")
	}
	payload = appendUint64(nil, 1)
	payload = append(payload, 77) // unknown kind
	if _, err := DecodeFrameV3(payload); err == nil {
		t.Fatal("unknown frame kind accepted")
	}
}
