package wire

import (
	"fmt"
	"testing"
)

// benchRequest builds a representative multi-statement transaction.
func benchRequest(statements int) *Request {
	req := &Request{ID: 1}
	for i := 0; i < statements; i++ {
		req.Statements = append(req.Statements, Statement{
			Op:    OpUpsert,
			Table: "accounts",
			Key:   []byte(fmt.Sprintf("key-%08d", i)),
			Value: make([]byte, 100),
		})
	}
	return req
}

func BenchmarkEncodeRequest(b *testing.B) {
	req := benchRequest(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeRequest(req)
	}
}

func BenchmarkDecodeRequest(b *testing.B) {
	payload := EncodeRequest(benchRequest(10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRequest(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDecodeResponse(b *testing.B) {
	resp := &Response{ID: 1, Committed: true}
	for i := 0; i < 10; i++ {
		resp.Results = append(resp.Results, StatementResult{Found: true, Value: make([]byte, 100)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		payload := EncodeResponse(resp)
		if _, err := DecodeResponse(payload); err != nil {
			b.Fatal(err)
		}
	}
}
