// Streaming scans: the V3 SCAN / SCAN-CHUNK / SCAN-ACK frames.
//
// A bounded OpScan returns everything in one reply, which caps how much a
// scan can return by what fits in one frame and buffers the whole result
// server-side.  A streaming scan instead sends one FrameScan request and
// receives the matching rows as a sequence of SCAN-CHUNK frames, each
// carrying a bounded number of entries, until a final chunk closes the
// stream.
//
// Flow control is credit-based per request ID: the server may have at most
// `window` unacknowledged chunks outstanding; the client returns one credit
// per consumed chunk with a FrameScanAck.  A slow client therefore stalls
// only its own scan's production, not the connection (other pipelined
// requests keep flowing).  A FrameCancel naming the scan's request ID stops
// chunk production server-side; the stream then ends with a final chunk
// reporting the cancellation.
//
// Chunk frames travel on a response stream whose frames are otherwise
// untagged, so they carry an 8-byte magic prefix ("PLP\xf7SCNK") the client
// sniffs the same way the handshake sniffs HELLO-ACK: an ordinary response
// would need that exact request ID to collide, which sequential-ID clients
// never produce.
package wire

import (
	"bytes"
	"fmt"

	"plp/plan"
)

// The V3 streaming-scan frame kinds (continuing the FrameKind space).
const (
	// FrameScan opens a streaming scan; the rows arrive as SCAN-CHUNK
	// frames matched to the request ID.
	FrameScan FrameKind = 9
	// FrameScanAck returns flow-control credits for an open scan.  Like
	// FrameCancel it receives no response of its own.
	FrameScanAck FrameKind = 10
)

// scanChunkMagic prefixes every SCAN-CHUNK frame.
var scanChunkMagic = [8]byte{'P', 'L', 'P', 0xF7, 'S', 'C', 'N', 'K'}

// Streaming-scan defaults, applied by the server when a field is 0.
const (
	// DefaultScanChunkEntries is the default per-chunk entry cap.
	DefaultScanChunkEntries = 256
	// MaxScanChunkEntries caps the per-chunk entry count a client may
	// request.
	MaxScanChunkEntries = 4096
	// DefaultScanWindow is the default flow-control window, in chunks.
	DefaultScanWindow = 8
	// MaxScanWindow caps the window a client may request.
	MaxScanWindow = 64
)

// ScanRequest is the body of a FrameScan: a range scan of [Lo, Hi) —
// nil Hi scans to the end — streamed back in chunks.
type ScanRequest struct {
	// Table names the table to scan.
	Table string
	// Lo is the inclusive lower bound.
	Lo []byte
	// Hi is the exclusive upper bound (nil scans to the end).
	Hi []byte
	// Limit caps the total entries returned across all chunks (0 selects
	// the server's streaming default, which is far above the one-reply
	// scan's).
	Limit uint32
	// ChunkEntries caps the entries per chunk (0 selects
	// DefaultScanChunkEntries).
	ChunkEntries uint32
	// Window is the initial flow-control credit in chunks (0 selects
	// DefaultScanWindow).
	Window uint32
	// Filter, when non-nil, is pushed down into the partition workers:
	// only rows passing it are returned (and counted against Limit).
	Filter *plan.Predicate
}

// ScanChunk is one SCAN-CHUNK frame: a bounded slice of a streaming scan's
// result.
type ScanChunk struct {
	// ID echoes the scan's request ID.
	ID uint64
	// Final marks the stream's last chunk.
	Final bool
	// Err is the scan error that ended the stream (final chunks only;
	// empty on success).
	Err string
	// Entries holds this chunk's records in key order.
	Entries []ScanEntry
}

// EncodeScanRequest serializes a FrameScan payload (without the frame
// header).
func EncodeScanRequest(id uint64, sc *ScanRequest) []byte {
	size := 8 + 1 + 4 + len(sc.Table) + 4 + len(sc.Lo) + 4 + len(sc.Hi) + 4 + 4 + 4 + 4
	out := appendUint64(make([]byte, 0, size+64), id)
	out = append(out, byte(FrameScan))
	out = appendString(out, sc.Table)
	out = appendBytes(out, sc.Lo)
	out = appendBytes(out, sc.Hi)
	out = appendUint32(out, sc.Limit)
	out = appendUint32(out, sc.ChunkEntries)
	out = appendUint32(out, sc.Window)
	if sc.Filter != nil {
		out = appendBytes(out, plan.AppendPredicate(nil, sc.Filter))
	} else {
		out = appendUint32(out, 0)
	}
	return out
}

// EncodeScanAck serializes a FrameScanAck payload returning `credit` chunk
// credits to the scan with the given request ID.
func EncodeScanAck(id uint64, credit uint32) []byte {
	out := appendUint64(make([]byte, 0, 13), id)
	out = append(out, byte(FrameScanAck))
	return appendUint32(out, credit)
}

// decodeScanFrame parses the body of a FrameScan or FrameScanAck (the ID
// and kind are already consumed by r).
func decodeScanFrame(f *Frame, r *reader) (*Frame, error) {
	switch f.Kind {
	case FrameScan:
		sc := &ScanRequest{}
		sc.Table = r.str()
		sc.Lo = r.bytes()
		sc.Hi = r.bytes()
		sc.Limit = r.uint32()
		sc.ChunkEntries = r.uint32()
		sc.Window = r.uint32()
		fb := r.bytes()
		if r.err != nil {
			return nil, r.err
		}
		if len(fb) > 0 {
			p, rest, err := plan.DecodePredicate(fb)
			if err != nil {
				return nil, fmt.Errorf("wire: scan filter: %w", err)
			}
			if len(rest) != 0 {
				return nil, fmt.Errorf("wire: scan filter: %d trailing bytes", len(rest))
			}
			sc.Filter = p
		}
		f.Scan = sc
		return f, nil
	case FrameScanAck:
		f.Credit = r.uint32()
		if r.err != nil {
			return nil, r.err
		}
		return f, nil
	default:
		return nil, fmt.Errorf("%w: unknown scan frame kind %d", ErrBadOp, f.Kind)
	}
}

// IsScanChunk reports whether a payload is a SCAN-CHUNK frame.
func IsScanChunk(payload []byte) bool {
	return len(payload) >= 8 && bytes.Equal(payload[:8], scanChunkMagic[:])
}

// IsScanAckFrame reports whether a request payload is a FrameScanAck,
// without a full decode — the server's connection reader intercepts acks
// (like cancels) ahead of the execution queue so credits arrive even while
// every worker is busy.
func IsScanAckFrame(payload []byte) bool {
	return len(payload) >= 9 && FrameKind(payload[8]) == FrameScanAck
}

// AppendScanChunk appends the serialized chunk to dst and returns the
// extended slice.  Unlike responses, every chunk must be encoded into its
// own buffer (the writer goroutine owns it after hand-off).
func AppendScanChunk(dst []byte, c *ScanChunk) []byte {
	size := 8 + 8 + 1 + 4 + len(c.Err) + 4
	for _, e := range c.Entries {
		size += 4 + len(e.Key) + 4 + len(e.Value)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	out := append(dst, scanChunkMagic[:]...)
	out = appendUint64(out, c.ID)
	flags := byte(0)
	if c.Final {
		flags = 1
	}
	out = append(out, flags)
	out = appendString(out, c.Err)
	out = appendUint32(out, uint32(len(c.Entries)))
	for _, e := range c.Entries {
		out = appendBytes(out, e.Key)
		out = appendBytes(out, e.Value)
	}
	return out
}

// DecodeScanChunk parses a SCAN-CHUNK payload.  The returned chunk's byte
// fields alias buf, which must not be modified or reused afterwards.
func DecodeScanChunk(buf []byte) (*ScanChunk, error) {
	if !IsScanChunk(buf) {
		return nil, fmt.Errorf("%w: not a scan chunk", ErrBadOp)
	}
	r := &reader{buf: buf, off: 8}
	c := &ScanChunk{ID: r.uint64()}
	c.Final = r.byteVal()&1 != 0
	c.Err = r.str()
	n := r.uint32()
	// Presize bounded by payload capacity (an entry is at least 8 bytes),
	// so a hostile count cannot force a huge allocation.
	if max := uint32(len(buf) / 8); n > 0 && r.err == nil {
		c.Entries = make([]ScanEntry, 0, min(n, max))
	}
	for i := uint32(0); i < n && r.err == nil; i++ {
		var e ScanEntry
		e.Key = r.bytes()
		e.Value = r.bytes()
		c.Entries = append(c.Entries, e)
	}
	if r.err != nil {
		return nil, r.err
	}
	return c, nil
}
