package wire

import (
	"bytes"
	"testing"
)

func TestReplSubscribeRoundTrip(t *testing.T) {
	payload := EncodeReplSubscribe(7, 12345, 3, "node-a")
	f, err := DecodeFrameV3(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 7 || f.Kind != FrameReplSubscribe || f.StartLSN != 12345 || f.ReplEpoch != 3 || f.ReplNode != "node-a" {
		t.Fatalf("decoded %+v", f)
	}
	// Pre-node subscribe frames (no trailing node field) still decode.
	legacy := payload[:8+1+8+8]
	f, err = DecodeFrameV3(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if f.StartLSN != 12345 || f.ReplEpoch != 3 || f.ReplNode != "" {
		t.Fatalf("legacy decode %+v", f)
	}
}

func TestReplRecordsRoundTrip(t *testing.T) {
	blobs := [][]byte{[]byte("rec-one"), {}, []byte("rec-three")}
	payload := EncodeReplRecords(9, blobs)
	f, err := DecodeFrameV3(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 9 || f.Kind != FrameReplRecords || len(f.ReplRecords) != 3 {
		t.Fatalf("decoded %+v", f)
	}
	for i := range blobs {
		if !bytes.Equal(f.ReplRecords[i], blobs[i]) {
			t.Fatalf("blob %d: %q != %q", i, f.ReplRecords[i], blobs[i])
		}
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	payload := EncodeReplAck(2, 100, 200)
	f, err := DecodeFrameV3(payload)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != 2 || f.Kind != FrameReplAck || f.AppliedLSN != 100 || f.DurableLSN != 200 {
		t.Fatalf("decoded %+v", f)
	}
}

func TestReplSubscribeAckRoundTrip(t *testing.T) {
	blob := EncodeReplSubscribeAck(5, 9876)
	epoch, durable, err := DecodeReplSubscribeAck(blob)
	if err != nil || epoch != 5 || durable != 9876 {
		t.Fatalf("epoch=%d durable=%d err=%v", epoch, durable, err)
	}
	if _, _, err := DecodeReplSubscribeAck(blob[:7]); err == nil {
		t.Fatal("short subscribe ack accepted")
	}
}

func TestReplRecordsHostileCount(t *testing.T) {
	// Frame header (id + kind) then a blob count of ~4 billion.
	payload := append(EncodeReplRecords(1, nil)[:9], 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := DecodeFrameV3(payload); err == nil {
		t.Fatal("hostile record count accepted")
	}
}

func TestReplRefusalPrefixes(t *testing.T) {
	if !IsReplRefused(ReplRefusedPrefix+": stale epoch") || IsReplRefused("nope") {
		t.Fatal("IsReplRefused misclassifies")
	}
	if !IsFollowerRefusal(FollowerPrefix+": writes refused") || IsFollowerRefusal("wrong shard") {
		t.Fatal("IsFollowerRefusal misclassifies")
	}
}

// FuzzDecodeReplFrame feeds hostile replication frames through the V3
// decoder: it must never panic, never over-allocate on hostile counts, and
// whatever it accepts must survive a re-encode/re-decode round trip.
func FuzzDecodeReplFrame(f *testing.F) {
	f.Add(EncodeReplSubscribe(1, 42, 0, ""))
	f.Add(EncodeReplSubscribe(2, 0, 7, "node-2"))
	f.Add(EncodeReplRecords(3, [][]byte{[]byte("abc"), []byte("")}))
	f.Add(EncodeReplAck(4, 10, 20))
	// Hostile blob count.
	f.Add(append(EncodeReplRecords(5, nil)[:9], 0xFF, 0xFF, 0xFF, 0xFF))
	// Truncated subscribe.
	f.Add(EncodeReplSubscribe(6, 1, 1, "n")[:12])
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeFrameV3(payload)
		if err != nil {
			return
		}
		var back *Frame
		switch fr.Kind {
		case FrameReplSubscribe:
			back, err = DecodeFrameV3(EncodeReplSubscribe(fr.ID, fr.StartLSN, fr.ReplEpoch, fr.ReplNode))
		case FrameReplRecords:
			back, err = DecodeFrameV3(EncodeReplRecords(fr.ID, fr.ReplRecords))
		case FrameReplAck:
			back, err = DecodeFrameV3(EncodeReplAck(fr.ID, fr.AppliedLSN, fr.DurableLSN))
		default:
			return // other frame kinds have their own fuzzers
		}
		if err != nil {
			t.Fatalf("re-decode of accepted repl frame failed: %v", err)
		}
		if back.ID != fr.ID || back.Kind != fr.Kind ||
			back.StartLSN != fr.StartLSN || back.ReplEpoch != fr.ReplEpoch ||
			back.ReplNode != fr.ReplNode ||
			back.AppliedLSN != fr.AppliedLSN || back.DurableLSN != fr.DurableLSN ||
			len(back.ReplRecords) != len(fr.ReplRecords) {
			t.Fatalf("round trip changed the frame: %+v != %+v", back, fr)
		}
		for i := range fr.ReplRecords {
			if !bytes.Equal(back.ReplRecords[i], fr.ReplRecords[i]) {
				t.Fatalf("blob %d changed", i)
			}
		}
	})
}
