package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest feeds hostile request payloads (truncated frames, bad
// ops, corrupt length prefixes) through both protocol versions of the
// decoder.  The decoder must never panic, and whatever it accepts must
// re-encode/decode to the same request (the codec is its own oracle).
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{}, uint32(1))
	f.Add(EncodeRequest(&Request{ID: 1, Statements: []Statement{{Op: OpPing, Value: []byte("x")}}}), uint32(1))
	f.Add(EncodeRequestV(&Request{ID: 2, Statements: []Statement{
		{Op: OpUpsert, Table: "t", Key: []byte("k"), Value: []byte("v")},
		{Op: OpScan, Table: "t", Key: []byte("a"), KeyEnd: []byte("z"), Limit: 10},
	}}, V2), uint32(2))
	// Hostile length prefix: a statement count of ~4 billion.
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}, uint32(2))
	f.Fuzz(func(t *testing.T, payload []byte, version uint32) {
		if version != V1 {
			version = V2
		}
		req, err := DecodeRequestV(payload, version)
		if err != nil {
			return
		}
		back, err := DecodeRequestV(EncodeRequestV(req, version), version)
		if err != nil {
			t.Fatalf("re-decode of accepted request failed: %v", err)
		}
		if back.ID != req.ID || len(back.Statements) != len(req.Statements) {
			t.Fatalf("round trip changed the request: %+v != %+v", back, req)
		}
		for i := range req.Statements {
			a, b := req.Statements[i], back.Statements[i]
			if a.Op != b.Op || a.Table != b.Table || a.Index != b.Index ||
				!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Value, b.Value) ||
				!bytes.Equal(a.KeyEnd, b.KeyEnd) || a.Limit != b.Limit {
				t.Fatalf("statement %d changed: %+v != %+v", i, b, a)
			}
		}
	})
}

// FuzzDecodeResponse does the same for response payloads.
func FuzzDecodeResponse(f *testing.F) {
	f.Add([]byte{}, uint32(1))
	f.Add(EncodeResponse(&Response{ID: 1, Committed: true, Results: []StatementResult{{Found: true, Value: []byte("v")}}}), uint32(1))
	f.Add(EncodeResponseV(&Response{ID: 2, Results: []StatementResult{
		{Found: true, Entries: []ScanEntry{{Key: []byte("k"), Value: []byte("v")}}},
	}}, V2), uint32(2))
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF, 0xFF, 0xFF}, uint32(2))
	f.Fuzz(func(t *testing.T, payload []byte, version uint32) {
		if version != V1 {
			version = V2
		}
		resp, err := DecodeResponseV(payload, version)
		if err != nil {
			return
		}
		back, err := DecodeResponseV(EncodeResponseV(resp, version), version)
		if err != nil {
			t.Fatalf("re-decode of accepted response failed: %v", err)
		}
		if back.ID != resp.ID || back.Committed != resp.Committed || back.Err != resp.Err ||
			len(back.Results) != len(resp.Results) {
			t.Fatalf("round trip changed the response: %+v != %+v", back, resp)
		}
		for i := range resp.Results {
			a, b := resp.Results[i], back.Results[i]
			if a.Found != b.Found || a.Err != b.Err || !bytes.Equal(a.Value, b.Value) ||
				len(a.Entries) != len(b.Entries) {
				t.Fatalf("result %d changed: %+v != %+v", i, b, a)
			}
		}
	})
}

// FuzzDecodeFrameV3 feeds hostile V3 frames (plans, cancels, tagged
// statement requests) through the kind dispatcher.  It must never panic,
// and any accepted plan frame must re-encode/decode identically.
func FuzzDecodeFrameV3(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeCancelRequest(42))
	f.Add(EncodeRequestV(&Request{ID: 1, Statements: []Statement{
		{Op: OpUpsert, Table: "t", Key: []byte("k"), Value: []byte("v")},
	}}, V3))
	{
		b := []byte{}
		b = append(b, 9, 0, 0, 0, 0, 0, 0, 0, 1) // ID, FramePlan
		b = append(b, 0xFF, 0xFF, 0xFF, 0xFF)    // hostile phase count
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		fr, err := DecodeFrameV3(payload)
		if err != nil {
			return
		}
		switch fr.Kind {
		case FramePlan:
			back, err := DecodeFrameV3(EncodePlanRequest(fr.ID, fr.Plan))
			if err != nil {
				t.Fatalf("re-decode of accepted plan failed: %v", err)
			}
			if back.ID != fr.ID || len(back.Plan.Phases) != len(fr.Plan.Phases) {
				t.Fatalf("plan round trip changed the frame: %+v != %+v", back, fr)
			}
			for pi := range fr.Plan.Phases {
				if len(back.Plan.Phases[pi]) != len(fr.Plan.Phases[pi]) {
					t.Fatalf("phase %d changed size", pi)
				}
				for oi := range fr.Plan.Phases[pi] {
					a, b := fr.Plan.Phases[pi][oi], back.Plan.Phases[pi][oi]
					if a.Kind != b.Kind || a.Table != b.Table || a.Index != b.Index ||
						!bytes.Equal(a.Key, b.Key) || !bytes.Equal(a.Value, b.Value) ||
						!bytes.Equal(a.KeyEnd, b.KeyEnd) || a.Limit != b.Limit ||
						a.Cond != b.Cond || a.Mut != b.Mut ||
						!bytes.Equal(a.CondValue, b.CondValue) || !bytes.Equal(a.MutArg, b.MutArg) ||
						a.KeyFrom != b.KeyFrom || a.ValueFrom != b.ValueFrom {
						t.Fatalf("phase %d op %d changed: %+v != %+v", pi, oi, b, a)
					}
				}
			}
		case FrameCancel:
			back, err := DecodeFrameV3(EncodeCancelRequest(fr.ID))
			if err != nil || back.ID != fr.ID || back.Kind != FrameCancel {
				t.Fatalf("cancel round trip changed: %+v (%v)", back, err)
			}
		}
	})
}

// FuzzDecodeHello covers the handshake frames.
func FuzzDecodeHello(f *testing.F) {
	f.Add(EncodeHello(&Hello{MaxVersion: V2, Token: []byte("tok")}))
	f.Add(EncodeHelloAck(&HelloAck{Version: V2, Authenticated: true}))
	f.Add([]byte("PLP\xf7HELO"))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if h, err := DecodeHello(payload); err == nil {
			back, err := DecodeHello(EncodeHello(h))
			if err != nil || back.MaxVersion != h.MaxVersion || !bytes.Equal(back.Token, h.Token) {
				t.Fatalf("hello round trip changed: %+v -> %+v (%v)", h, back, err)
			}
		}
		if a, err := DecodeHelloAck(payload); err == nil {
			back, err := DecodeHelloAck(EncodeHelloAck(a))
			if err != nil || *back != *a {
				t.Fatalf("ack round trip changed: %+v -> %+v (%v)", a, back, err)
			}
		}
	})
}
