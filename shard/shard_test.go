package shard

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"plp/keys"
)

func twoShardMap() *Map {
	return &Map{Version: 1, Shards: []Shard{
		{ID: 0, Addr: "127.0.0.1:7070", End: keys.Uint64(500_000)},
		{ID: 1, Addr: "127.0.0.1:7071"},
	}}
}

func TestOwner(t *testing.T) {
	m := twoShardMap()
	cases := []struct {
		key  uint64
		want int
	}{
		{0, 0}, {1, 0}, {499_999, 0}, {500_000, 1}, {500_001, 1}, {^uint64(0), 1},
	}
	for _, c := range cases {
		if got := m.Owner(keys.Uint64(c.key)); got != c.want {
			t.Errorf("Owner(%d) = %d, want %d", c.key, got, c.want)
		}
	}
	single := &Map{Version: 1, Shards: []Shard{{ID: 7, Addr: "x"}}}
	if got := single.Owner(keys.Uint64(123)); got != 7 {
		t.Errorf("single-shard Owner = %d, want 7", got)
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	m := &Map{Version: 42, Shards: []Shard{
		{ID: 0, Addr: "a:1", End: keys.Uint64(1000)},
		{ID: 3, Addr: "b:2", End: []byte{0x01, 0x02, 0xff}},
		{ID: 1, Addr: "c:3"},
	}}
	got, err := Parse(m.Encode())
	if err != nil {
		t.Fatalf("Parse(Encode()): %v", err)
	}
	if got.Version != 42 || len(got.Shards) != 3 {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	for i := range m.Shards {
		if got.Shards[i].ID != m.Shards[i].ID || got.Shards[i].Addr != m.Shards[i].Addr ||
			!bytes.Equal(got.Shards[i].End, m.Shards[i].End) {
			t.Errorf("shard %d: got %+v, want %+v", i, got.Shards[i], m.Shards[i])
		}
	}
}

func TestParseComments(t *testing.T) {
	m, err := Parse([]byte("# cluster\nversion 2\n\nshard 0 h:1 500000\nshard 1 h:2 -\n"))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.Version != 2 || len(m.Shards) != 2 {
		t.Fatalf("got %+v", m)
	}
	if !bytes.Equal(m.Shards[0].End, keys.Uint64(500_000)) {
		t.Errorf("decimal bound not parsed as uint64 key")
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	bad := []string{
		"shard 0 h:1 -\n", // no version
		"version 1\n",     // no shards
		"version 1\nshard 0 h:1 5\nshard 0 h:2 -\n",                // dup id
		"version 1\nshard 0 h:1 9\nshard 1 h:2 5\nshard 2 h:3 -\n", // not ascending
		"version 1\nshard 0 h:1 5\n",                               // last not open
		"version 1\nshard 0 h:1 -\nshard 1 h:2 -\n",                // open mid-map
		"version 1\nshard 0  5\n",                                  // malformed line
		"bogus 1\n",                                                // unknown directive
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRange(t *testing.T) {
	m := twoShardMap()
	lo, hi, ok := m.Range(0)
	if !ok || lo != nil || !bytes.Equal(hi, keys.Uint64(500_000)) {
		t.Errorf("Range(0) = %x, %x, %v", lo, hi, ok)
	}
	lo, hi, ok = m.Range(1)
	if !ok || !bytes.Equal(lo, keys.Uint64(500_000)) || hi != nil {
		t.Errorf("Range(1) = %x, %x, %v", lo, hi, ok)
	}
	if _, _, ok := m.Range(9); ok {
		t.Error("Range(9) found a shard that does not exist")
	}
}

func TestStateRoundTripAndCheck(t *testing.T) {
	dir := t.TempDir()
	m := twoShardMap()

	// Fresh dir: accepted, state derived from the map.
	st, err := CheckState(dir, m, 0)
	if err != nil {
		t.Fatalf("CheckState fresh: %v", err)
	}
	if st.Incarnation != 1 {
		t.Fatalf("fresh incarnation = %d, want 1", st.Incarnation)
	}
	if err := WriteState(dir, st); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	got, found, err := ReadState(dir)
	if err != nil || !found {
		t.Fatalf("ReadState: %v found=%v", err, found)
	}
	if got.ShardID != 0 || got.MapVersion != 1 || got.Lo != nil || !bytes.Equal(got.Hi, keys.Uint64(500_000)) || got.Incarnation != 1 {
		t.Fatalf("state round trip: %+v", got)
	}

	// Same map again: fine, and the incarnation advances — each restart
	// must mint gids no previous incarnation could have used.
	if st, err := CheckState(dir, m, 0); err != nil {
		t.Fatalf("CheckState same map: %v", err)
	} else if st.Incarnation != 2 {
		t.Fatalf("restart incarnation = %d, want 2", st.Incarnation)
	}

	// Wrong shard ID: refused.
	if _, err := CheckState(dir, m, 1); err == nil {
		t.Error("CheckState accepted a data dir belonging to another shard")
	}

	// Same version, different range: refused.
	moved := m.Clone()
	moved.Shards[0].End = keys.Uint64(300_000)
	if _, err := CheckState(dir, moved, 0); err == nil {
		t.Error("CheckState accepted a conflicting range at the same map version")
	}

	// Newer version with a moved range: accepted (controller move).
	moved.Version = 2
	st2, err := CheckState(dir, moved, 0)
	if err != nil {
		t.Fatalf("CheckState newer map: %v", err)
	}
	if st2.MapVersion != 2 || !bytes.Equal(st2.Hi, keys.Uint64(300_000)) || st2.Incarnation != 2 {
		t.Fatalf("CheckState newer map state: %+v", st2)
	}
	if err := WriteState(dir, st2); err != nil {
		t.Fatalf("WriteState v2: %v", err)
	}

	// Older map after serving a newer one: refused.
	if _, err := CheckState(dir, m, 0); err == nil {
		t.Error("CheckState accepted an older map than the dir last served")
	}
}

func TestReadStateMissing(t *testing.T) {
	_, found, err := ReadState(t.TempDir())
	if err != nil || found {
		t.Fatalf("ReadState on empty dir: found=%v err=%v", found, err)
	}
	// A state file that is not there is different from one we cannot parse.
	dir := t.TempDir()
	if err := writeRaw(dir, "lo zz\n"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadState(dir); err == nil {
		t.Error("ReadState accepted a corrupt state file")
	}
}

func writeRaw(dir, body string) error {
	return os.WriteFile(filepath.Join(dir, StateFile), []byte(body), 0o644)
}
