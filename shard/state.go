package shard

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// StateFile is the name of the per-data-dir shard state record.
const StateFile = "shard.state"

// State records which slice of which shard map a data directory was last
// served under.  plpd writes it on startup and refuses to start when the
// stored state disagrees with the map it was handed: a directory that
// recovered WAL state for one key range must not silently serve another.
type State struct {
	// ShardID is the shard this data directory belongs to.
	ShardID int
	// MapVersion is the version of the shard map the directory last served.
	MapVersion uint64
	// Lo, Hi are the key range the shard owned under that map (exclusive
	// upper bound; nil bounds are open).
	Lo, Hi []byte
	// Incarnation counts the times this directory has been started as a
	// shard member; CheckState bumps it on every pass.  The server folds it
	// into the global transaction IDs it coordinates, so a restarted
	// coordinator can never mint a gid a previous incarnation already used
	// (a reused gid could inherit the old transaction's durable fate).
	Incarnation uint64
}

func encodeStateBound(b []byte) string {
	if b == nil {
		return "-"
	}
	return "0x" + hex.EncodeToString(b)
}

func parseStateBound(s string) ([]byte, error) {
	if s == "-" {
		return nil, nil
	}
	rest, ok := strings.CutPrefix(s, "0x")
	if !ok {
		return nil, fmt.Errorf("shard: bad state bound %q", s)
	}
	return hex.DecodeString(rest)
}

// WriteState persists st into dir atomically (write temp + rename).
func WriteState(dir string, st State) error {
	body := fmt.Sprintf("shard %d\nversion %d\nlo %s\nhi %s\nincarnation %d\n",
		st.ShardID, st.MapVersion, encodeStateBound(st.Lo), encodeStateBound(st.Hi), st.Incarnation)
	tmp := filepath.Join(dir, StateFile+".tmp")
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, StateFile))
}

// ReadState loads the state record from dir.  Returns ok=false (no error)
// when the directory has no state file yet.
func ReadState(dir string) (State, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, StateFile))
	if os.IsNotExist(err) {
		return State{}, false, nil
	}
	if err != nil {
		return State{}, false, err
	}
	var st State
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "shard":
			st.ShardID, err = strconv.Atoi(fields[1])
		case "version":
			st.MapVersion, err = strconv.ParseUint(fields[1], 10, 64)
		case "lo":
			st.Lo, err = parseStateBound(fields[1])
		case "hi":
			st.Hi, err = parseStateBound(fields[1])
		case "incarnation":
			st.Incarnation, err = strconv.ParseUint(fields[1], 10, 64)
		}
		if err != nil {
			return State{}, false, fmt.Errorf("shard: corrupt state file: %v", err)
		}
	}
	return st, true, nil
}

// CheckState validates a stored state record against the map and shard ID a
// process was started with.  It returns the state to persist going forward,
// or an error when starting would mis-serve the directory's recovered data:
// the directory belonged to a different shard, was last served under a
// *newer* map than the one provided, or the map claims the same version but
// assigns the shard a different key range.  A newer map version with a
// (possibly) different range is accepted — that is a legitimate controller
// move — and the returned state reflects the new map.
func CheckState(dir string, m *Map, shardID int) (State, error) {
	lo, hi, ok := m.Range(shardID)
	if !ok {
		return State{}, fmt.Errorf("shard: map version %d has no shard %d", m.Version, shardID)
	}
	next := State{ShardID: shardID, MapVersion: m.Version, Lo: lo, Hi: hi, Incarnation: 1}
	prev, found, err := ReadState(dir)
	if err != nil {
		return State{}, err
	}
	if !found {
		return next, nil
	}
	next.Incarnation = prev.Incarnation + 1
	if prev.ShardID != shardID {
		return State{}, fmt.Errorf("shard: data dir %s belongs to shard %d, not shard %d", dir, prev.ShardID, shardID)
	}
	if prev.MapVersion > m.Version {
		return State{}, fmt.Errorf("shard: data dir %s was last served under map version %d, newer than provided version %d", dir, prev.MapVersion, m.Version)
	}
	if prev.MapVersion == m.Version {
		if keysEqual(prev.Lo, lo) && keysEqual(prev.Hi, hi) {
			return next, nil
		}
		return State{}, fmt.Errorf("shard: data dir %s recorded a different key range for shard %d under map version %d", dir, shardID, m.Version)
	}
	return next, nil
}

func keysEqual(a, b []byte) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return string(a) == string(b)
}
