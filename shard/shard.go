// Package shard defines the cross-process shard map: a versioned, static
// assignment of key ranges to plpd processes, layered over the same
// order-preserving key encoding (package keys) that drives in-process
// partitioning.
//
// A Map carries a monotonically increasing version and an ordered list of
// shards.  Each shard owns the contiguous key range [previous shard's End,
// its own End); the last shard's End is nil, meaning the range is open to
// the top of the keyspace.  The same map covers every table — cross-process
// sharding splits the keyspace, not the schema — so a key's owner is a pure
// function of the map and the key bytes, computable identically by clients,
// coordinators and participants.
//
// The map is distributed as a small text file (see Parse/Encode) loaded by
// plpd at startup (-shard-map/-shard-id) and fetched by clients over the
// wire (the shard-map frame).  The version exists so a later controller can
// move ranges: a process or client holding a map with a lower version than
// the one a server answers with must refresh and re-route, mirroring the
// epoch-checked mis-route forwarding the in-process executor already does
// for moved partitions.
package shard

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"plp/keys"
)

// Shard is one plpd process and the key range it owns.
type Shard struct {
	// ID identifies the shard; gids and wrong-shard errors name shards by
	// it.  IDs must be unique but need not be dense.
	ID int
	// Addr is the shard's plpd listen address ("host:port").
	Addr string
	// End is the exclusive upper bound of the shard's key range; nil on the
	// last shard means the range is open-ended.  The lower bound is the
	// previous shard's End (nil on the first shard).
	End []byte
	// Replicas lists the shard's followers.  Addr remains the primary —
	// the only address that accepts writes; replicas serve reads and stand
	// by for promotion.  May be empty (unreplicated shard).
	Replicas []Replica
}

// Replica is one follower of a shard's primary.
type Replica struct {
	// ID identifies the replica within its shard (unique per shard).
	ID int
	// Addr is the follower's plpd listen address ("host:port").
	Addr string
}

// Map is a versioned assignment of the keyspace to shards.
type Map struct {
	// Version increases on every reassignment; higher versions win.
	Version uint64
	// Shards are ordered by key range, ascending.
	Shards []Shard
}

// Validate checks structural invariants: at least one shard, unique IDs,
// non-empty addresses, strictly ascending boundaries, and exactly one
// open-ended (last) shard.
func (m *Map) Validate() error {
	if m == nil || len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	seen := make(map[int]struct{}, len(m.Shards))
	for i, s := range m.Shards {
		if s.Addr == "" {
			return fmt.Errorf("shard: shard %d has no address", s.ID)
		}
		if _, dup := seen[s.ID]; dup {
			return fmt.Errorf("shard: duplicate shard id %d", s.ID)
		}
		seen[s.ID] = struct{}{}
		rseen := make(map[int]struct{}, len(s.Replicas))
		for _, r := range s.Replicas {
			if r.Addr == "" {
				return fmt.Errorf("shard: shard %d replica %d has no address", s.ID, r.ID)
			}
			if _, dup := rseen[r.ID]; dup {
				return fmt.Errorf("shard: shard %d has duplicate replica id %d", s.ID, r.ID)
			}
			rseen[r.ID] = struct{}{}
		}
		last := i == len(m.Shards)-1
		if last {
			if s.End != nil {
				return fmt.Errorf("shard: last shard %d must be open-ended", s.ID)
			}
			continue
		}
		if s.End == nil {
			return fmt.Errorf("shard: non-final shard %d is open-ended", s.ID)
		}
		if i > 0 && keys.Compare(m.Shards[i-1].End, s.End) >= 0 {
			return fmt.Errorf("shard: boundaries not ascending at shard %d", s.ID)
		}
	}
	return nil
}

// Owner returns the ID of the shard owning key.
func (m *Map) Owner(key []byte) int {
	i := sort.Search(len(m.Shards)-1, func(i int) bool {
		return keys.Compare(key, m.Shards[i].End) < 0
	})
	return m.Shards[i].ID
}

// ByID returns the shard with the given ID.
func (m *Map) ByID(id int) (Shard, bool) {
	for _, s := range m.Shards {
		if s.ID == id {
			return s, true
		}
	}
	return Shard{}, false
}

// AddrOf returns the address of the shard with the given ID ("" if absent).
func (m *Map) AddrOf(id int) string {
	s, ok := m.ByID(id)
	if !ok {
		return ""
	}
	return s.Addr
}

// Range returns the key range [lo, hi) owned by the shard with the given
// ID; nil bounds are open.
func (m *Map) Range(id int) (lo, hi []byte, ok bool) {
	for i, s := range m.Shards {
		if s.ID != id {
			continue
		}
		if i > 0 {
			lo = m.Shards[i-1].End
		}
		return lo, s.End, true
	}
	return nil, nil, false
}

// ReplicaAddrs returns the follower addresses of the shard with the given
// ID (nil when the shard is absent or unreplicated).
func (m *Map) ReplicaAddrs(id int) []string {
	s, ok := m.ByID(id)
	if !ok || len(s.Replicas) == 0 {
		return nil
	}
	out := make([]string, len(s.Replicas))
	for i, r := range s.Replicas {
		out[i] = r.Addr
	}
	return out
}

// Promote rewrites the map for a failover in shard shardID: the replica at
// addr becomes the shard's primary, the old primary takes the promoted
// replica's slot (so a revived old primary re-seeds as a follower), and the
// version is bumped so the new map wins everywhere it propagates.  It is a
// no-op error if addr is not one of the shard's replicas.
func (m *Map) Promote(shardID int, addr string) error {
	for i := range m.Shards {
		s := &m.Shards[i]
		if s.ID != shardID {
			continue
		}
		for j := range s.Replicas {
			if s.Replicas[j].Addr != addr {
				continue
			}
			s.Addr, s.Replicas[j].Addr = s.Replicas[j].Addr, s.Addr
			m.Version++
			return nil
		}
		return fmt.Errorf("shard: %s is not a replica of shard %d", addr, shardID)
	}
	return fmt.Errorf("shard: no shard %d", shardID)
}

// Clone returns a deep copy of the map.
func (m *Map) Clone() *Map {
	out := &Map{Version: m.Version, Shards: make([]Shard, len(m.Shards))}
	for i, s := range m.Shards {
		out.Shards[i] = Shard{ID: s.ID, Addr: s.Addr}
		if s.End != nil {
			out.Shards[i].End = append([]byte(nil), s.End...)
		}
		if len(s.Replicas) > 0 {
			out.Shards[i].Replicas = append([]Replica(nil), s.Replicas...)
		}
	}
	return out
}

// encodeBound renders a range bound for the text format: "-" for open,
// a decimal uint64 when the bound is an 8-byte uint64 key, hex otherwise.
func encodeBound(b []byte) string {
	if b == nil {
		return "-"
	}
	if len(b) == 8 {
		if v, err := keys.DecodeUint64(b); err == nil {
			return strconv.FormatUint(v, 10)
		}
	}
	return "0x" + hex.EncodeToString(b)
}

// parseBound parses a range bound: "-" is open, "0x<hex>" is raw key bytes,
// a plain decimal is encoded as a uint64 key.
func parseBound(s string) ([]byte, error) {
	if s == "-" {
		return nil, nil
	}
	if rest, ok := strings.CutPrefix(s, "0x"); ok {
		b, err := hex.DecodeString(rest)
		if err != nil {
			return nil, fmt.Errorf("shard: bad hex bound %q: %v", s, err)
		}
		return b, nil
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("shard: bad bound %q (want '-', 0x<hex> or uint64)", s)
	}
	return keys.Uint64(v), nil
}

// Encode renders the map in its text file format:
//
//	version 1
//	shard 0 127.0.0.1:7070 500000
//	shard 1 127.0.0.1:7071 -
//
// Each shard line is "shard <id> <addr> <end>"; <end> is the exclusive
// upper bound of the shard's range ("-" on the last, open-ended shard;
// plain decimals are uint64 keys, 0x-prefixed hex is raw key bytes).
// A "replica <shard-id> <replica-id> <addr>" line attaches a follower to a
// previously declared shard.
func (m *Map) Encode() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "version %d\n", m.Version)
	for _, s := range m.Shards {
		fmt.Fprintf(&b, "shard %d %s %s\n", s.ID, s.Addr, encodeBound(s.End))
		for _, r := range s.Replicas {
			fmt.Fprintf(&b, "replica %d %d %s\n", s.ID, r.ID, r.Addr)
		}
	}
	return b.Bytes()
}

// Parse reads a map in the Encode text format.  Blank lines and #-comments
// are ignored.  The parsed map is validated.
func Parse(data []byte) (*Map, error) {
	m := &Map{}
	sawVersion := false
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "version":
			if len(fields) != 2 {
				return nil, fmt.Errorf("shard: line %d: want 'version <n>'", line)
			}
			v, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad version: %v", line, err)
			}
			m.Version = v
			sawVersion = true
		case "shard":
			if len(fields) != 4 {
				return nil, fmt.Errorf("shard: line %d: want 'shard <id> <addr> <end>'", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad shard id: %v", line, err)
			}
			end, err := parseBound(fields[3])
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: %v", line, err)
			}
			m.Shards = append(m.Shards, Shard{ID: id, Addr: fields[2], End: end})
		case "replica":
			if len(fields) != 4 {
				return nil, fmt.Errorf("shard: line %d: want 'replica <shard-id> <replica-id> <addr>'", line)
			}
			sid, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad shard id: %v", line, err)
			}
			rid, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("shard: line %d: bad replica id: %v", line, err)
			}
			placed := false
			for i := range m.Shards {
				if m.Shards[i].ID == sid {
					m.Shards[i].Replicas = append(m.Shards[i].Replicas, Replica{ID: rid, Addr: fields[3]})
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("shard: line %d: replica references undeclared shard %d", line, sid)
			}
		default:
			return nil, fmt.Errorf("shard: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawVersion {
		return nil, fmt.Errorf("shard: missing 'version' line")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseFile loads and parses a map file.
func ParseFile(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
