// Command plpbench regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	plpbench -experiment fig1            # one experiment
//	plpbench -experiment all             # everything (several minutes)
//	plpbench -experiment fig5 -clients 1,2,4,8,16 -subscribers 100000
//
// Experiments: fig1 fig2 fig3 table1 table2 fig5 fig6 fig7 fig8 fig9 fig10
// fig11 fig12 ext-autobalance ext-recovery ablations all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"plp/internal/experiments"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment to run (fig1..fig12, table1, table2, ext-autobalance, ext-recovery, ablations, all)")
		subscribers = flag.Int("subscribers", 20000, "TATP scale factor")
		branches    = flag.Int("branches", 2, "TPC-B scale factor")
		warehouses  = flag.Int("warehouses", 2, "TPC-C scale factor")
		partitions  = flag.Int("partitions", 8, "logical partitions / worker goroutines")
		clients     = flag.Int("clients", 8, "default client goroutines")
		clientSweep = flag.String("client-sweep", "1,2,4,8", "client counts for scaling experiments")
		txns        = flag.Int("txns", 2000, "transactions per client per measured point")
		duration    = flag.Duration("duration", 0, "measured duration per point (overrides -txns)")
	)
	flag.Parse()

	scale := experiments.DefaultScale()
	scale.TATPSubscribers = *subscribers
	scale.TPCBBranches = *branches
	scale.TPCCWarehouses = *warehouses
	scale.Partitions = *partitions
	scale.Clients = *clients
	scale.TxnsPerClient = *txns
	scale.Duration = *duration

	sweep, err := parseIntList(*clientSweep)
	if err != nil {
		fatal(err)
	}

	if err := run(*experiment, scale, sweep); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plpbench:", err)
	os.Exit(1)
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad client count %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(name string, scale experiments.Scale, sweep []int) error {
	all := name == "all"
	ran := false
	start := time.Now()
	section := func(id string) bool {
		if all || name == id {
			ran = true
			fmt.Printf("== %s ==\n", id)
			return true
		}
		return false
	}

	if section("fig1") {
		r, err := experiments.Fig1(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig2") {
		r, err := experiments.Fig2(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig3") {
		r, err := experiments.Fig3(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("table1") {
		measured, err := experiments.Table1Measured(scale)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTable1(experiments.Table1Analytical(), measured))
	}
	if section("table2") {
		fmt.Println(experiments.Table2())
	}
	if section("fig5") {
		r, err := experiments.Fig5(scale, sweep)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig6") {
		r, err := experiments.Fig6(scale, sweep)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig7") {
		r, err := experiments.Fig7(scale, sweep)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig8") {
		r, err := experiments.Fig8(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig9") {
		r, err := experiments.Fig9(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig10") {
		r, err := experiments.Fig10(scale, nil)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig11") {
		r, err := experiments.Fig11(scale, nil)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("fig12") {
		r, err := experiments.Fig12(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("ext-autobalance") {
		r, err := experiments.ExtAutoBalance(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("ext-recovery") {
		r, err := experiments.ExtRecovery(scale)
		if err != nil {
			return err
		}
		fmt.Println(r)
	}
	if section("ablations") {
		for _, fn := range []func() (*experiments.AblationResult, error){
			func() (*experiments.AblationResult, error) { return experiments.AblationSLI(scale) },
			func() (*experiments.AblationResult, error) { return experiments.AblationLatchFreeIndex(scale) },
			func() (*experiments.AblationResult, error) { return experiments.AblationLogBuffer(scale) },
			func() (*experiments.AblationResult, error) { return experiments.AblationPartitionCount(scale, nil) },
		} {
			r, err := fn()
			if err != nil {
				return err
			}
			fmt.Println(r)
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", name)
	}
	fmt.Printf("done in %s\n", time.Since(start).Round(time.Millisecond))
	return nil
}
