// Command plpctl is a command-line client for a PLP server (cmd/plpd).
//
// Usage:
//
//	plpctl -addr localhost:7070 ping
//	plpctl -addr localhost:7070 put   <table> <key> <value>
//	plpctl -addr localhost:7070 get   <table> <key>
//	plpctl -addr localhost:7070 del   <table> <key>
//	plpctl -addr localhost:7070 getsec <table> <index> <secondary-key>
//	plpctl -addr localhost:7070 add   <table> <key> <delta>
//	plpctl -addr localhost:7070 probeput <table> <index> <seckey> <value>
//	plpctl -addr localhost:7070 scan  <table> <lo> <hi> [limit]
//	plpctl -addr localhost:7070 bench <table> [-clients N] [-ops M]
//	plpctl -addr localhost:7070 -token secret checkpoint
//
// Keys are uint64 by default (encoded exactly as the engine's key encoder
// does); pass -raw to use the key bytes verbatim.  Against a daemon started
// with -token, pass the matching -token to authenticate the session for the
// drp control verbs.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plp/client"
	"plp/keys"
	"plp/plan"
)

// usage prints the command summary and exits.
func usage() {
	fmt.Fprintf(os.Stderr, `plpctl — command-line client for plpd

usage: plpctl [-addr host:port] [-raw] <command> [args]

commands:
  ping                               check connectivity
  get    <table> <key>               read a record
  put    <table> <key> <value>       insert or overwrite a record
  insert <table> <key> <value>       insert (fails on duplicate)
  update <table> <key> <value>       overwrite (fails if missing)
  del    <table> <key>               delete a record
  add    <table> <key> <delta>       server-side fetch-add on an int64 record
  append <table> <key> <suffix>      server-side append to a record
  getsec <table> <index> <seckey>    read through a secondary index
  delsec <table> <index> <seckey>    delete a secondary-index entry
  probeput <table> <index> <seckey> <value>
                                     secondary probe feeding a routed update,
                                     as ONE declarative plan / round trip
  scan   <table> <lo> <hi> [limit]   range scan [lo, hi) ("-" scans open-ended)
  scanstream <table> <lo> <hi> [limit]
                                     streaming scan: rows arrive in flow-controlled
                                     chunks (-chunk rows per chunk; -eq N pushes an
                                     int64-at-offset-0 equality filter to the server)
  bench  <table>                     run a small upsert/get load (-clients, -ops)
  shards                             print the server's shard map (sharded daemons)
  checkpoint                         take a checkpoint now (durable daemons)
  drp status                         show the repartitioning controller's state
  drp trigger                        run one control period now
  drp shares <table>                 per-partition load shares of one table
  repl status                        show this node's replication role and progress
  promote                            promote a follower to primary (failover)

flags: -addr host:port, -raw (byte keys), -token <secret> (authenticate;
       a read-only token scopes the session to reads),
       -tls-ca <pem> / -tls-skip-verify (dial a TLS-serving plpd)
`)
	os.Exit(2)
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:7070", "server address")
		raw     = flag.Bool("raw", false, "treat keys as raw bytes instead of uint64")
		token   = flag.String("token", "", "authentication token (matches plpd -token)")
		clients = flag.Int("clients", 4, "bench: concurrent connections")
		ops     = flag.Int("ops", 10000, "bench: operations per connection")
		chunk   = flag.Int("chunk", 0, "scanstream: rows per chunk (0 = server default)")
		filtEq  = flag.String("eq", "", "scanstream: push down int64-at-offset-0 == N")
		tlsCA   = flag.String("tls-ca", "", "PEM CA bundle to verify a TLS-serving plpd")
		tlsSkip = flag.Bool("tls-skip-verify", false, "dial TLS without verifying the server certificate (testing only)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	key := func(s string) []byte {
		if *raw {
			return []byte(s)
		}
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fatalf("key %q is not a uint64 (use -raw for byte keys): %v", s, err)
		}
		return client.Uint64Key(v)
	}

	var dialTLS *tls.Config
	if *tlsCA != "" || *tlsSkip {
		dialTLS = &tls.Config{InsecureSkipVerify: *tlsSkip}
		if *tlsCA != "" {
			pem, err := os.ReadFile(*tlsCA)
			if err != nil {
				fatalf("reading -tls-ca: %v", err)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				fatalf("-tls-ca %s holds no usable certificates", *tlsCA)
			}
			dialTLS.RootCAs = pool
		}
	}
	opts := &client.DialOptions{Token: *token, TLSConfig: dialTLS}

	c, err := client.DialContext(context.Background(), *addr, opts)
	if err != nil {
		fatalf("dial %s: %v", *addr, err)
	}
	defer c.Close()

	cmd := args[0]
	args = args[1:]
	switch cmd {
	case "ping":
		start := time.Now()
		if err := c.Ping([]byte("plpctl")); err != nil {
			fatalf("ping: %v", err)
		}
		fmt.Printf("pong (%s)\n", time.Since(start).Round(time.Microsecond))
	case "get":
		need(args, 2)
		val, err := c.Get(args[0], key(args[1]))
		if err != nil {
			fatalf("get: %v", err)
		}
		fmt.Printf("%s\n", val)
	case "getsec":
		need(args, 3)
		val, err := c.GetBySecondary(args[0], args[1], []byte(args[2]))
		if err != nil {
			fatalf("getsec: %v", err)
		}
		fmt.Printf("%s\n", val)
	case "delsec":
		need(args, 3)
		if err := c.DeleteSecondary(args[0], args[1], []byte(args[2])); err != nil {
			fatalf("delsec: %v", err)
		}
		fmt.Println("OK")
	case "scan":
		if len(args) != 3 && len(args) != 4 {
			usage()
		}
		bound := func(s string) []byte {
			if s == "-" {
				return nil
			}
			return key(s)
		}
		limit := 0
		if len(args) == 4 {
			n, err := strconv.Atoi(args[3])
			if err != nil || n < 0 {
				fatalf("limit %q is not a non-negative integer", args[3])
			}
			limit = n
		}
		entries, err := c.Scan(args[0], bound(args[1]), bound(args[2]), limit)
		if err != nil {
			fatalf("scan: %v", err)
		}
		for _, e := range entries {
			if *raw {
				fmt.Printf("%x\t%s\n", e.Key, e.Value)
			} else if k, err := keys.DecodeUint64(e.Key); err == nil {
				fmt.Printf("%d\t%s\n", k, e.Value)
			} else {
				fmt.Printf("%x\t%s\n", e.Key, e.Value)
			}
		}
		fmt.Printf("(%d records)\n", len(entries))
	case "scanstream":
		if len(args) != 3 && len(args) != 4 {
			usage()
		}
		bound := func(s string) []byte {
			if s == "-" {
				return nil
			}
			return key(s)
		}
		opts := &client.ScanStreamOptions{ChunkEntries: *chunk}
		if len(args) == 4 {
			n, err := strconv.Atoi(args[3])
			if err != nil || n < 0 {
				fatalf("limit %q is not a non-negative integer", args[3])
			}
			opts.Limit = n
		}
		if *filtEq != "" {
			v, err := strconv.ParseInt(*filtEq, 10, 64)
			if err != nil {
				fatalf("-eq %q is not an int64", *filtEq)
			}
			opts.Filter = plan.Int64Cmp(0, plan.CmpEq, v)
		}
		st, err := c.ScanStream(context.Background(), args[0], bound(args[1]), bound(args[2]), opts)
		if err != nil {
			fatalf("scanstream: %v", err)
		}
		defer st.Close()
		n := 0
		for st.Next() {
			e := st.Entry()
			if *raw {
				fmt.Printf("%x\t%s\n", e.Key, e.Value)
			} else if k, err := keys.DecodeUint64(e.Key); err == nil {
				fmt.Printf("%d\t%s\n", k, e.Value)
			} else {
				fmt.Printf("%x\t%s\n", e.Key, e.Value)
			}
			n++
		}
		if err := st.Err(); err != nil {
			fatalf("scanstream: %v", err)
		}
		fmt.Printf("(%d records)\n", n)
	case "put":
		need(args, 3)
		if err := c.Upsert(args[0], key(args[1]), []byte(args[2])); err != nil {
			fatalf("put: %v", err)
		}
		fmt.Println("OK")
	case "insert":
		need(args, 3)
		if err := c.Insert(args[0], key(args[1]), []byte(args[2])); err != nil {
			fatalf("insert: %v", err)
		}
		fmt.Println("OK")
	case "update":
		need(args, 3)
		if err := c.Update(args[0], key(args[1]), []byte(args[2])); err != nil {
			fatalf("update: %v", err)
		}
		fmt.Println("OK")
	case "del":
		need(args, 2)
		if err := c.Delete(args[0], key(args[1])); err != nil {
			fatalf("del: %v", err)
		}
		fmt.Println("OK")
	case "add":
		need(args, 3)
		delta, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			fatalf("delta %q is not an int64", args[2])
		}
		res, err := c.DoPlan(client.NewPlan().Add(args[0], key(args[1]), delta).MustBuild())
		if err != nil {
			fatalf("add: %v", err)
		}
		v, err := plan.DecodeInt64(res[0].Value)
		if err != nil {
			fatalf("add: %v", err)
		}
		fmt.Println(v)
	case "append":
		need(args, 3)
		res, err := c.DoPlan(client.NewPlan().AppendBytes(args[0], key(args[1]), []byte(args[2])).MustBuild())
		if err != nil {
			fatalf("append: %v", err)
		}
		fmt.Printf("%s\n", res[0].Value)
	case "probeput":
		need(args, 4)
		b := client.NewPlan()
		probe := b.LookupSecondary(args[0], args[1], []byte(args[2])).Ref()
		b.Then().Update(args[0], nil, []byte(args[3])).KeyFrom(probe)
		res, err := c.DoPlan(b.MustBuild())
		if err != nil {
			fatalf("probeput: %v", err)
		}
		if !res[0].Found {
			fatalf("probeput: no entry under %q in %s.%s", args[2], args[0], args[1])
		}
		fmt.Println("OK")
	case "bench":
		need(args, 1)
		bench(*addr, args[0], *clients, *ops, opts)
	case "shards":
		need(args, 0)
		m, err := c.ShardMap(context.Background())
		if err != nil {
			fatalf("shards: %v", err)
		}
		fmt.Print(string(m.Encode()))
	case "checkpoint":
		need(args, 0)
		out, err := c.Control("checkpoint", "")
		if err != nil {
			fatalf("checkpoint: %v", err)
		}
		fmt.Print(out)
	case "promote":
		need(args, 0)
		out, err := c.Control("promote", "")
		if err != nil {
			fatalf("promote: %v", err)
		}
		fmt.Print(out)
	case "repl":
		need(args, 1)
		if args[0] != "status" {
			usage()
		}
		out, err := c.Control("repl status", "")
		if err != nil {
			fatalf("repl status: %v", err)
		}
		fmt.Print(out)
	case "drp":
		if len(args) == 0 {
			usage()
		}
		sub := args[0]
		table := ""
		switch sub {
		case "status", "trigger":
			need(args, 1)
		case "shares":
			need(args, 2)
			table = args[1]
		default:
			usage()
		}
		out, err := c.Control(sub, table)
		if err != nil {
			fatalf("drp %s: %v", sub, err)
		}
		fmt.Print(out)
	default:
		usage()
	}
}

// need checks the argument count.
func need(args []string, n int) {
	if len(args) != n {
		usage()
	}
}

// fatalf prints an error and exits non-zero.
func fatalf(format string, a ...any) {
	fmt.Fprintf(os.Stderr, "plpctl: "+format+"\n", a...)
	os.Exit(1)
}

// bench runs a simple upsert+get load against the server and reports
// throughput and mean latency.
func bench(addr, table string, clients, ops int, opts *client.DialOptions) {
	var committed, failed atomic.Uint64
	var totalLatency atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := client.DialContext(context.Background(), addr, opts)
			if err != nil {
				failed.Add(uint64(ops))
				return
			}
			defer c.Close()
			base := uint64(g) * uint64(ops)
			for i := 0; i < ops; i++ {
				k := client.Uint64Key(base + uint64(i) + 1)
				opStart := time.Now()
				var err error
				if i%2 == 0 {
					err = c.Upsert(table, k, []byte("plpctl-bench"))
				} else {
					_, err = c.Get(table, client.Uint64Key(base+uint64(i)))
				}
				totalLatency.Add(int64(time.Since(opStart)))
				if err != nil {
					failed.Add(1)
					continue
				}
				committed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := committed.Load()
	fmt.Printf("bench: %d ops in %s (%.0f ops/s, %d failed)\n",
		done, elapsed.Round(time.Millisecond), float64(done)/elapsed.Seconds(), failed.Load())
	if done > 0 {
		fmt.Printf("mean latency: %s\n", (time.Duration(totalLatency.Load()) / time.Duration(done)).Round(time.Microsecond))
	}
}
