// Command plpd serves a PLP engine over TCP using the wire protocol.
//
// It creates a database with one or more key/value tables partitioned over
// a uint64 key space, optionally starts the automatic load-balance monitor
// and a background checkpointer, and serves client transactions (see
// package client).
//
// With -data-dir the engine is durable: the write-ahead log lives in
// segmented files under the directory, commits are made durable by a
// group-commit flusher before they are acknowledged (unless -lazy-commit),
// and on startup the daemon replays the log — checkpoint snapshot, restored
// partition boundaries, committed tail — before accepting connections, so
// a kill -9 loses nothing that was acknowledged.  The "plpctl checkpoint"
// verb (token-gated like all control verbs) takes a checkpoint on demand.
//
// -token gates the control verbs behind a shared secret; -ro-token adds a
// second, read-only credential whose sessions may run reads (gets, scans,
// read-only plans) but are refused every write op and control verb.
//
// -pprof serves net/http/pprof and expvar on a second listen address so
// hot-path regressions are diagnosable on a live daemon: CPU and heap
// profiles under /debug/pprof/, and /debug/vars carries plp_worker_queues
// (per-partition input-queue depths) plus plp_server_stats (connection and
// transaction counters).  Example:
//
//	plpd -pprof localhost:6060 &
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//	curl http://localhost:6060/debug/vars
//
// Example:
//
//	plpd -addr :7070 -design plp-leaf -partitions 8 \
//	     -tables accounts,orders -keyspace 1000000 \
//	     -data-dir /var/lib/plp -checkpoint-ms 5000 -checkpoint-truncate
package main

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"plp/internal/balance"
	"plp/internal/catalog"
	"plp/internal/cluster"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/internal/recovery"
	"plp/internal/repartition"
	"plp/internal/repl"
	"plp/internal/server"
	"plp/internal/txn"
	"plp/shard"
)

// parseMembers parses the -cluster membership spec: comma-separated id@addr.
func parseMembers(spec string) ([]cluster.Member, error) {
	var out []cluster.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		idStr, addr, ok := strings.Cut(part, "@")
		if !ok || addr == "" {
			return nil, fmt.Errorf("bad -cluster entry %q (want id@addr)", part)
		}
		id, err := strconv.Atoi(idStr)
		if err != nil {
			return nil, fmt.Errorf("bad -cluster member ID %q: %v", idStr, err)
		}
		out = append(out, cluster.Member{ID: id, Addr: addr})
	}
	return out, nil
}

// parseDesign maps a CLI name to an engine design.
func parseDesign(name string) (engine.Design, error) {
	switch strings.ToLower(name) {
	case "conventional", "conv":
		return engine.Conventional, nil
	case "logical", "dora":
		return engine.Logical, nil
	case "plp", "plp-regular":
		return engine.PLPRegular, nil
	case "plp-partition":
		return engine.PLPPartition, nil
	case "plp-leaf":
		return engine.PLPLeaf, nil
	default:
		return 0, fmt.Errorf("unknown design %q (want conventional, logical, plp-regular, plp-partition or plp-leaf)", name)
	}
}

func main() {
	var (
		addr         = flag.String("addr", ":7070", "listen address")
		designName   = flag.String("design", "plp-leaf", "execution design: conventional, logical, plp-regular, plp-partition, plp-leaf")
		partitions   = flag.Int("partitions", 8, "number of logical partitions / worker goroutines")
		tables       = flag.String("tables", "kv", "comma-separated table names to create")
		keyspace     = flag.Uint64("keyspace", 1_000_000, "uint64 key space upper bound used to compute partition boundaries")
		autoBalance  = flag.Bool("autobalance", false, "enable the automatic load-balance monitor on every table")
		dataDir      = flag.String("data-dir", "", "durable data directory; empty runs fully in memory (no crash recovery)")
		lazyCommit   = flag.Bool("lazy-commit", false, "acknowledge commits before their log records are durable (trades a crash-loss window for latency)")
		drp          = flag.Bool("drp", false, "enable the online dynamic-repartitioning controller (plpctl drp ... inspects it)")
		token        = flag.String("token", "", "authentication token; when set, only sessions presenting it may issue control commands")
		roToken      = flag.String("ro-token", "", "read-only authorization token; sessions presenting it may read but are refused write ops and control commands")
		drpPeriod    = flag.Duration("drp-period", 100*time.Millisecond, "control period of the repartitioning controller")
		checkpointMs = flag.Int("checkpoint-ms", 0, "background checkpoint interval in milliseconds (0 disables)")
		truncateLog  = flag.Bool("checkpoint-truncate", false, "truncate the log prefix after each successful checkpoint")
		statsEvery   = flag.Duration("stats", 10*time.Second, "how often to print server statistics (0 disables)")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof and expvar (worker queue depths, server counters) on this address, e.g. localhost:6060 (empty disables)")
		shardMapPath = flag.String("shard-map", "", "shard map file; this process serves the shard named by -shard-id and coordinates cross-shard transactions (empty runs unsharded)")
		shardID      = flag.Int("shard-id", 0, "this process's shard ID in the -shard-map file")
		follow       = flag.String("follow", "", "run as a replication follower of this primary address: serve reads from replicated state, refuse writes until promoted (requires -data-dir)")
		ackMode      = flag.String("ack-mode", "local", "commit acknowledgement mode: local (fsynced on this node) or replica (additionally on ≥1 follower's disk)")
		ackTimeout   = flag.Duration("ack-timeout", 0, "replica-acked commit wait bound (0 uses the default; the commit is always durable locally when the wait times out)")
		ackQuorum    = flag.Int("ack-quorum", 1, "with -ack-mode replica, how many distinct followers must hold a commit durably before it is acknowledged")
		tlsCert      = flag.String("tls-cert", "", "PEM certificate chain for serving TLS on every listener (requires -tls-key)")
		tlsKey       = flag.String("tls-key", "", "PEM private key for -tls-cert")
		tlsCA        = flag.String("tls-ca", "", "PEM CA bundle used to verify the TLS servers this process dials (shard peers, replication primary, cluster probes)")
		tlsInsecure  = flag.Bool("tls-skip-verify", false, "dial TLS without verifying the server certificate (testing only)")
		peerTimeout  = flag.Duration("peer-timeout", 0, "shard-to-shard peer call deadline (0 uses the 3s default)")
		janitorEvery = flag.Duration("janitor-every", 0, "in-doubt transaction janitor pass interval on sharded daemons (0 uses the 250ms default)")
		clusterSpec  = flag.String("cluster", "", "replication group membership for lease-based auto-failover, as comma-separated id@addr entries (e.g. 1@db1:7070,2@db2:7070,3@db3:7070)")
		nodeID       = flag.Int("node-id", 0, "this process's member ID within -cluster")
		leaseTimeout = flag.Duration("lease", 0, "how long a clustered follower tolerates a silent primary before probing for failover (0 uses the 3s default)")
		advertise    = flag.String("advertise", "", "address peers and clients reach this process at (defaults to the -cluster entry for -node-id); a promoted primary installs it in the shard map")
	)
	flag.Parse()

	switch *ackMode {
	case "local", "replica":
	default:
		fmt.Fprintf(os.Stderr, "unknown -ack-mode %q (want local or replica)\n", *ackMode)
		os.Exit(2)
	}
	if *ackMode == "replica" && (*dataDir == "" || *lazyCommit) {
		fmt.Fprintln(os.Stderr, "-ack-mode replica requires durable commits (-data-dir, without -lazy-commit)")
		os.Exit(2)
	}
	if *ackQuorum < 1 {
		fmt.Fprintln(os.Stderr, "-ack-quorum must be at least 1")
		os.Exit(2)
	}

	// TLS: -tls-cert/-tls-key terminate TLS on the listener; -tls-ca (or
	// -tls-skip-verify) builds the client-side config used wherever this
	// process dials a peer daemon.
	var serverTLS, dialTLS *tls.Config
	if (*tlsCert == "") != (*tlsKey == "") {
		fmt.Fprintln(os.Stderr, "-tls-cert and -tls-key must be set together")
		os.Exit(2)
	}
	if *tlsCert != "" {
		cert, err := tls.LoadX509KeyPair(*tlsCert, *tlsKey)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading TLS key pair: %v\n", err)
			os.Exit(2)
		}
		serverTLS = &tls.Config{Certificates: []tls.Certificate{cert}}
	}
	if *tlsCA != "" || *tlsInsecure {
		dialTLS = &tls.Config{InsecureSkipVerify: *tlsInsecure}
		if *tlsCA != "" {
			pem, err := os.ReadFile(*tlsCA)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reading -tls-ca: %v\n", err)
				os.Exit(2)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				fmt.Fprintf(os.Stderr, "-tls-ca %s holds no usable certificates\n", *tlsCA)
				os.Exit(2)
			}
			dialTLS.RootCAs = pool
		}
	}

	var members []cluster.Member
	if *clusterSpec != "" {
		var err error
		if members, err = parseMembers(*clusterSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "-cluster requires -data-dir (failover needs a durable log)")
			os.Exit(2)
		}
		found := false
		for _, m := range members {
			if m.ID == *nodeID {
				found = true
				if *advertise == "" {
					*advertise = m.Addr
				}
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "-cluster has no entry for -node-id %d\n", *nodeID)
			os.Exit(2)
		}
	}
	if *follow != "" {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "-follow requires -data-dir (the shipped log must persist)")
			os.Exit(2)
		}
		// A follower's log must stay a byte-identical prefix of the
		// primary's: anything that appends locally is disabled until
		// promotion.
		if *checkpointMs > 0 || *drp || *autoBalance {
			fmt.Println("plpd: follower mode disables -checkpoint-ms, -drp and -autobalance (restart after promotion to re-enable)")
			*checkpointMs, *drp, *autoBalance = 0, false, false
		}
	}

	var shardMap *shard.Map
	if *shardMapPath != "" {
		var err error
		shardMap, err = shard.ParseFile(*shardMapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "shard map %s: %v\n", *shardMapPath, err)
			os.Exit(2)
		}
		if _, ok := shardMap.ByID(*shardID); !ok {
			fmt.Fprintf(os.Stderr, "shard map %s has no shard %d (set -shard-id)\n", *shardMapPath, *shardID)
			os.Exit(2)
		}
	}

	design, err := parseDesign(*designName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	e, err := engine.Open(engine.Options{
		Design:     design,
		Partitions: *partitions,
		SLI:        design == engine.Conventional,
		DataDir:    *dataDir,
		LazyCommit: *lazyCommit,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "open engine: %v\n", err)
		os.Exit(1)
	}
	defer e.Close()

	boundaries := uniformBoundaries(*keyspace, *partitions)
	var monitors []*balance.Monitor
	for _, name := range strings.Split(*tables, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := e.CreateTable(catalog.TableDef{Name: name, Boundaries: boundaries}); err != nil {
			fmt.Fprintf(os.Stderr, "create table %s: %v\n", name, err)
			os.Exit(1)
		}
		if *autoBalance && *partitions > 1 {
			m, err := balance.NewMonitor(e, balance.Config{Table: name})
			if err != nil {
				fmt.Fprintf(os.Stderr, "balance monitor for %s: %v\n", name, err)
				os.Exit(1)
			}
			m.Start()
			monitors = append(monitors, m)
			defer m.Stop()
		}
	}

	// Recovery runs after the schema exists and before any connection is
	// accepted: a restarted durable daemon replays the checkpoint snapshot,
	// the restored partition boundaries and the committed log tail, so the
	// first client sees exactly the acknowledged pre-crash state.
	var shardEpoch uint64 // persisted incarnation; 0 (no data dir) derives one from the clock
	if *dataDir != "" {
		// A sharded durable daemon must not replay a data directory written
		// under a different shard assignment: silently serving another
		// shard's keys (or a stale range) would corrupt routing invariants.
		// The shard.state file records what the directory holds; refuse to
		// start on any disagreement.
		var shardSt shard.State
		if shardMap != nil {
			var err error
			if shardSt, err = shard.CheckState(*dataDir, shardMap, *shardID); err != nil {
				fmt.Fprintf(os.Stderr, "refusing to start: %v\n", err)
				os.Exit(1)
			}
		}
		info, err := e.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "recover %s: %v\n", *dataDir, err)
			os.Exit(1)
		}
		fmt.Printf("plpd: recovered %s: %d snapshot entries, %d ops replayed, %d winners, %d losers, %d boundary moves\n",
			*dataDir, info.Replay.SnapshotEntries, info.Replay.Applied, info.Winners, info.Losers, info.BoundariesRestored)
		if info.InDoubt > 0 {
			fmt.Printf("plpd: %d cross-shard branches in doubt; resolving from their coordinators\n", info.InDoubt)
		}
		if shardMap != nil {
			// Persist the bumped incarnation BEFORE any gid is minted with
			// it: a crash after coordinating would otherwise let the next
			// start reuse this incarnation's gids.
			if err := shard.WriteState(*dataDir, shardSt); err != nil {
				fmt.Fprintf(os.Stderr, "writing shard state: %v\n", err)
				os.Exit(1)
			}
			shardEpoch = shardSt.Incarnation
		}
	}

	if *checkpointMs > 0 {
		cp := recovery.NewCheckpointer(e, time.Duration(*checkpointMs)*time.Millisecond)
		cp.SetTruncate(*truncateLog)
		cp.Start()
		defer cp.Stop()
	}

	srv := server.New(e)
	srv.SetAuthToken(*token)
	srv.SetReadOnlyToken(*roToken)
	srv.TLSConfig = serverTLS
	srv.PeerTLSConfig = dialTLS
	srv.PeerCallTimeout = *peerTimeout
	srv.JanitorPeriod = *janitorEvery

	// Replication role.  Every durable daemon is a primary lineage — it
	// accepts follower subscriptions whether or not one ever connects —
	// unless -follow makes it a read-only follower of another primary.  The
	// role is dynamic: `plpctl promote` (or the failover monitor) turns a
	// follower into the primary, and a fenced ex-primary demotes back into a
	// follower, re-seeding over the stream if its log diverged.
	var (
		roleMu      sync.Mutex // serializes promote/demote transitions
		curPrimary  atomic.Pointer[repl.Primary]
		curFollower atomic.Pointer[repl.Follower]
		clusterNode *cluster.Node
		promote     func() (string, error)
		demote      func(primaryAddr string) error
	)
	var replSnapshot func() any
	if *dataDir != "" {
		installPrimary := func(epoch uint64) *repl.Primary {
			p := repl.NewPrimary(e.DurableLog(), epoch)
			if *ackTimeout > 0 {
				p.SetAckTimeout(*ackTimeout)
			}
			curPrimary.Store(p)
			srv.SetReplPrimary(p)
			if *ackMode == "replica" {
				p.SetAckQuorum(*ackQuorum)
				e.SetCommitAckWaiter(p.WaitReplicated)
			}
			return p
		}
		// A follower's Stop is terminal, so every stint as a follower gets a
		// fresh instance; construction re-analyzes the local log, which is
		// exactly what a demoted ex-primary needs before subscribing.
		newFollower := func(primaryAddr string) (*repl.Follower, error) {
			return repl.NewFollower(repl.FollowerOptions{
				Primary:   primaryAddr,
				Token:     *token,
				Dir:       *dataDir,
				Log:       e.DurableLog(),
				Apply:     e.ApplyReplicated,
				Reseed:    e.ResetForSeed,
				TLSConfig: dialTLS,
				Logf:      func(format string, args ...any) { fmt.Printf("plpd: "+format+"\n", args...) },
			})
		}
		promote = func() (string, error) {
			roleMu.Lock()
			defer roleMu.Unlock()
			f := curFollower.Load()
			if f == nil {
				return "", errors.New("promote: not a follower")
			}
			epoch, err := f.Promote()
			if err != nil {
				return "", err
			}
			curFollower.Store(nil)
			// Fence the old lineage at the shard layer too: a stale
			// primary restarting on its own data dir keeps its old
			// incarnation, and peers refuse its gids.
			if st, ok, rerr := shard.ReadState(*dataDir); rerr == nil && ok {
				st.Incarnation++
				if werr := shard.WriteState(*dataDir, st); werr != nil {
					return "", fmt.Errorf("promote: bumping shard incarnation: %w", werr)
				}
			}
			installPrimary(epoch)
			srv.SetFollowerMode(false)
			// Re-home the shard onto this process so routers (and writers
			// bounced by the demoted ex-primary) follow the promotion.
			if m := srv.ShardMap(); m != nil && *advertise != "" {
				nm := m.Clone()
				if perr := nm.Promote(*shardID, *advertise); perr == nil {
					if uerr := srv.UpdateShardMap(nm); uerr != nil {
						fmt.Printf("plpd: promote: shard map update: %v\n", uerr)
					}
				}
			}
			fmt.Printf("plpd: promoted to primary at replication epoch %d\n", epoch)
			return fmt.Sprintf("promoted: replication epoch %d, accepting writes\n", epoch), nil
		}
		demote = func(primaryAddr string) error {
			roleMu.Lock()
			defer roleMu.Unlock()
			if curFollower.Load() != nil {
				return nil // already a follower
			}
			// Stop accepting writes first: anything committed after the
			// fence would be lost when the follower re-seeds.
			srv.SetFollowerMode(true)
			e.SetCommitAckWaiter(nil)
			srv.SetReplPrimary(nil)
			curPrimary.Store(nil)
			f, err := newFollower(primaryAddr)
			if err != nil {
				return fmt.Errorf("demote: %w", err)
			}
			curFollower.Store(f)
			f.Start()
			fmt.Printf("plpd: demoted to follower of %s\n", primaryAddr)
			return nil
		}
		if *follow == "" {
			epoch, ok, err := repl.ReadEpoch(*dataDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reading replication epoch: %v\n", err)
				os.Exit(1)
			}
			if !ok {
				epoch = 1
				if err := repl.WriteEpoch(*dataDir, epoch); err != nil {
					fmt.Fprintf(os.Stderr, "writing replication epoch: %v\n", err)
					os.Exit(1)
				}
			}
			installPrimary(epoch)
		} else {
			f, err := newFollower(*follow)
			if err != nil {
				fmt.Fprintf(os.Stderr, "follower: %v\n", err)
				os.Exit(1)
			}
			curFollower.Store(f)
			srv.SetFollowerMode(true)
			f.Start()
		}
		srv.SetPromoteHandler(promote)
		srv.SetSeedingFunc(func() bool {
			f := curFollower.Load()
			return f != nil && f.Seeding()
		})
		defer func() {
			if f := curFollower.Load(); f != nil {
				f.Stop()
			}
		}()
		replSnapshot = func() any {
			st := struct {
				Role           string
				AckMode        string
				AckQuorum      int                      `json:",omitempty"`
				Primary        *repl.PrimaryStatus      `json:",omitempty"`
				Follower       *repl.FollowerNodeStatus `json:",omitempty"`
				Cluster        *cluster.NodeStatus      `json:",omitempty"`
				LocalAckWait   *txn.AckWaitHist         `json:",omitempty"`
				ReplicaAckWait *txn.AckWaitHist         `json:",omitempty"`
			}{Role: "primary", AckMode: *ackMode}
			if f := curFollower.Load(); srv.FollowerMode() && f != nil {
				st.Role = "follower"
				fs := f.Status()
				st.Follower = &fs
			} else if p := curPrimary.Load(); p != nil {
				ps := p.Status()
				st.Primary = &ps
				st.AckQuorum = p.AckQuorum()
			}
			if local, replica := e.AckWaitHistograms(); local.Count > 0 || replica.Count > 0 {
				if local.Count > 0 {
					st.LocalAckWait = &local
				}
				if replica.Count > 0 {
					st.ReplicaAckWait = &replica
				}
			}
			if clusterNode != nil {
				cs := clusterNode.Status()
				st.Cluster = &cs
			}
			return st
		}
		srv.SetReplStatusHandler(func() (string, error) {
			buf, err := json.MarshalIndent(replSnapshot(), "", "  ")
			if err != nil {
				return "", err
			}
			return string(buf) + "\n", nil
		})
	}
	if shardMap != nil {
		if err := srv.SetShardConfig(shardMap, *shardID, *token, shardEpoch); err != nil {
			fmt.Fprintf(os.Stderr, "shard config: %v\n", err)
			os.Exit(1)
		}
	}
	if len(members) > 0 {
		// Lease-based auto-failover: the monitor watches the primary through
		// the replication stream's implicit lease and drives the same
		// promote/demote transitions an operator would.
		cn, err := cluster.New(cluster.Config{
			Self:         *nodeID,
			Members:      members,
			Token:        *token,
			TLS:          dialTLS,
			LeaseTimeout: *leaseTimeout,
			Logf:         func(format string, args ...any) { fmt.Printf("plpd: "+format+"\n", args...) },
			IsPrimary:    func() bool { return !srv.FollowerMode() },
			Epoch: func() uint64 {
				if f := curFollower.Load(); f != nil {
					return f.Epoch()
				}
				if p := curPrimary.Load(); p != nil {
					return p.Epoch()
				}
				return 0
			},
			DurableLSN: func() uint64 { return uint64(e.DurableLog().DurableLSN()) },
			SinceContact: func() time.Duration {
				if f := curFollower.Load(); f != nil {
					return f.SinceContact()
				}
				return 0
			},
			Promote: func() error { _, err := promote(); return err },
			Repoint: func(addr string) {
				if f := curFollower.Load(); f != nil {
					f.SetPrimary(addr)
				}
			},
			Demote: demote,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cluster: %v\n", err)
			os.Exit(1)
		}
		clusterNode = cn
		cn.Start()
		defer cn.Stop()
	}
	srv.SetCheckpointHandler(func() (string, error) {
		// Checkpoints need a transactionally quiet instant; on a busy
		// server ActiveTxns is almost always briefly non-zero, so retry in
		// the gaps between pipelined requests instead of failing the verb
		// on the first in-flight transaction.
		var st recovery.CheckpointStats
		var err error
		deadline := time.Now().Add(3 * time.Second)
		for {
			st, err = e.Checkpoint()
			if !errors.Is(err, recovery.ErrActiveTxns) || time.Now().After(deadline) {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if err != nil {
			return "", err
		}
		dropped := 0
		if *truncateLog {
			dropped = e.Log().Truncate(st.BeginLSN)
		}
		return fmt.Sprintf("checkpoint: %d tables, %d entries, %d chunks, LSN %d..%d, %v quiesced, %d log records reclaimed\n",
			st.Tables, st.Entries, st.Chunks, st.BeginLSN, st.EndLSN, st.Duration.Round(time.Microsecond), dropped), nil
	})
	if *drp {
		ctrl, err := repartition.Attach(e, repartition.Config{Period: *drpPeriod})
		if err != nil {
			fmt.Fprintf(os.Stderr, "repartitioning controller: %v\n", err)
			os.Exit(1)
		}
		ctrl.Start()
		defer ctrl.Stop()
		defer ctrl.Detach()
		srv.SetControlHandler(ctrl)
	}
	if *pprofAddr != "" {
		// Diagnostics endpoint: pprof profiles plus expvar gauges for the
		// partition workers' queue depths and the server counters, so a
		// hot-path regression on a live daemon can be profiled in situ.
		expvar.Publish("plp_worker_queues", expvar.Func(func() any {
			return e.WorkerQueueDepths()
		}))
		expvar.Publish("plp_server_stats", expvar.Func(func() any {
			return srv.Stats()
		}))
		if replSnapshot != nil {
			expvar.Publish("plp_repl", expvar.Func(replSnapshot))
		}
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof listener: %v\n", err)
			}
		}()
		fmt.Printf("plpd: pprof/expvar diagnostics on http://%s/debug/pprof/\n", *pprofAddr)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	durability := "in-memory (no durability)"
	if *dataDir != "" {
		durability = "durable in " + *dataDir
		if *lazyCommit {
			durability += " (lazy commit)"
		}
		if *follow != "" {
			durability += ", following " + *follow
		} else if *ackMode == "replica" {
			durability += fmt.Sprintf(", replica-acked commits (quorum %d)", *ackQuorum)
		}
		if len(members) > 0 {
			durability += fmt.Sprintf(", failover cluster of %d (member %d)", len(members), *nodeID)
		}
	}
	if serverTLS != nil {
		durability += ", TLS"
	}
	if shardMap != nil {
		durability += fmt.Sprintf(", shard %d of map version %d", *shardID, shardMap.Version)
	}
	fmt.Printf("plpd: %s engine with %d partitions serving %q on %s, %s\n", design, *partitions, *tables, bound, durability)

	// Periodic stats reporting and signal handling.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ticker *time.Ticker
		var tick <-chan time.Time
		if *statsEvery > 0 {
			ticker = time.NewTicker(*statsEvery)
			defer ticker.Stop()
			tick = ticker.C
		}
		for {
			select {
			case <-stop:
				fmt.Println("plpd: shutting down")
				_ = srv.Close()
				return
			case <-tick:
				st := srv.Stats()
				fmt.Printf("plpd: conns=%d txns=%d committed=%d aborted=%d\n",
					st.Connections, st.Requests, st.Committed, st.Aborted)
				for _, m := range monitors {
					for _, d := range m.Decisions() {
						fmt.Printf("plpd: rebalanced %s\n", d)
					}
				}
			}
		}
	}()

	if err := srv.Serve(); err != nil && err != server.ErrClosed {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	}
	<-done
}

// uniformBoundaries splits [1, max] into n equal key ranges.
func uniformBoundaries(max uint64, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		out = append(out, keyenc.Uint64Key(max*uint64(i)/uint64(n)+1))
	}
	return out
}
