package main

// Two-process replication smoke test: builds the real plpd and plpctl
// binaries, starts a replica-acked primary and a follower on their own data
// directories, and drives the whole failover story — replica-acked writes
// on the primary, reads served from the follower after the ack, refused
// writes on the follower, `plpctl repl status` on both roles, then SIGKILL
// of the primary, `plpctl promote`, and writes on the promoted node with
// every acked commit intact.
//
//	go test ./cmd/plpd -run TestTwoProcessReplSmoke -v

import (
	"bytes"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"plp/client"
)

func TestTwoProcessReplSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process smoke test in short mode")
	}
	dir := t.TempDir()
	plpd := buildBinary(t, dir, "./cmd/plpd", "plpd")
	plpctl := buildBinary(t, dir, "./cmd/plpctl", "plpctl")

	paddr, faddr := freeAddr(t), freeAddr(t)
	pdir, fdir := filepath.Join(dir, "primary"), filepath.Join(dir, "follower")

	p := startPlpd(t, plpd,
		"-addr", paddr, "-data-dir", pdir, "-partitions", "4",
		"-tables", "kv", "-stats", "0",
		"-ack-mode", "replica", "-ack-timeout", "20s")
	startPlpd(t, plpd,
		"-addr", faddr, "-data-dir", fdir, "-partitions", "4",
		"-tables", "kv", "-stats", "0",
		"-follow", paddr)
	waitReady(t, paddr)
	waitReady(t, faddr)

	// Replica-acked writes: each acknowledgement means the commit record is
	// fsynced on the follower (the first one also waits out the follower's
	// initial subscription).
	pc, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	val := func(i uint64) []byte { return []byte(fmt.Sprintf("v%d", i)) }
	const rows = 30
	for i := uint64(1); i <= rows; i++ {
		if err := pc.Upsert("kv", client.Uint64Key(i), val(i)); err != nil {
			t.Fatalf("replica-acked upsert %d: %v\nprimary output:\n%s", i, err, p.out)
		}
	}

	// The follower applies each batch before acking it, so every acked row
	// is already readable there.
	fc, err := client.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= rows; i++ {
		got, err := fc.Get("kv", client.Uint64Key(i))
		if err != nil {
			t.Fatalf("follower read %d: %v", i, err)
		}
		if !bytes.Equal(got, val(i)) {
			t.Fatalf("follower read %d: %q, want %q", i, got, val(i))
		}
	}

	// Writes are refused on the follower with the redirect marker.
	if err := fc.Upsert("kv", client.Uint64Key(9999), []byte("x")); !client.IsFollowerRefusal(err) {
		t.Fatalf("follower write: %v", err)
	}

	// plpctl repl status reports each node's role.
	out, err := exec.Command(plpctl, "-addr", paddr, "repl", "status").CombinedOutput()
	if err != nil || !strings.Contains(string(out), `"Role": "primary"`) {
		t.Fatalf("plpctl repl status on primary: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), `"Followers"`) {
		t.Fatalf("primary status has no follower entry:\n%s", out)
	}
	out, err = exec.Command(plpctl, "-addr", faddr, "repl", "status").CombinedOutput()
	if err != nil || !strings.Contains(string(out), `"Role": "follower"`) {
		t.Fatalf("plpctl repl status on follower: %v\n%s", err, out)
	}

	// Failover: SIGKILL the primary, promote the follower, keep serving.
	_ = pc.Close()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = p.cmd.Wait()
	out, err = exec.Command(plpctl, "-addr", faddr, "promote").CombinedOutput()
	if err != nil || !strings.Contains(string(out), "promoted") {
		t.Fatalf("plpctl promote: %v\n%s", err, out)
	}

	// Every replica-acked commit survived, and the promoted node accepts
	// writes (its ack mode is local unless configured otherwise).
	for i := uint64(1); i <= rows; i++ {
		got, err := fc.Get("kv", client.Uint64Key(i))
		if err != nil || !bytes.Equal(got, val(i)) {
			t.Fatalf("acked row %d after failover: %q, %v", i, got, err)
		}
	}
	if err := fc.Upsert("kv", client.Uint64Key(10_000), []byte("post-promote")); err != nil {
		t.Fatalf("write on promoted node: %v", err)
	}
	got, err := fc.Get("kv", client.Uint64Key(10_000))
	if err != nil || string(got) != "post-promote" {
		t.Fatalf("read-back on promoted node: %q, %v", got, err)
	}
	out, err = exec.Command(plpctl, "-addr", faddr, "repl", "status").CombinedOutput()
	if err != nil || !strings.Contains(string(out), `"Role": "primary"`) {
		t.Fatalf("promoted node still reports follower role: %v\n%s", err, out)
	}
}
