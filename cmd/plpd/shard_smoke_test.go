package main

// Two-process sharding smoke test: builds the real plpd and plpctl
// binaries, starts two daemons splitting the keyspace with a shard-map
// file, and drives a split workload — routed single-shard writes on both
// sides, a cross-shard two-phase commit, a fan-out scan — through the
// routing client.  Then both daemons are restarted on their data
// directories to prove the shard.state handshake accepts a matching
// assignment and recovery preserves the data, and one is started with the
// wrong -shard-id to prove the mismatch is refused.
//
// This is the same coverage the CI smoke job needs, packaged as a test so
// it runs identically in CI and locally:
//
//	go test ./cmd/plpd -run TestTwoProcessShardSmoke -v

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"plp/client"
)

// buildBinary compiles the named command into dir and returns its path.
func buildBinary(t *testing.T, dir, pkg, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = filepath.Join("..", "..") // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// freeAddr reserves a loopback port and returns it for a daemon to reuse.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

// plpdProc is one running daemon with its captured output.
type plpdProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

// startPlpd launches a daemon and waits until it accepts connections.
func startPlpd(t *testing.T, bin string, args ...string) *plpdProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out := &bytes.Buffer{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &plpdProc{cmd: cmd, out: out}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			_ = p.cmd.Wait()
		}
	})
	return p
}

// waitReady polls the daemon's listen address until a client can dial it.
func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		c, err := client.DialContext(ctx, addr, nil)
		cancel()
		if err == nil {
			_ = c.Close()
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon on %s never became ready", addr)
}

// stopPlpd sends SIGTERM and waits for a graceful exit.
func stopPlpd(t *testing.T, p *plpdProc) {
	t.Helper()
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = p.cmd.Process.Kill()
		t.Fatalf("daemon did not exit on SIGTERM; output:\n%s", p.out)
	}
}

func TestTwoProcessShardSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping process smoke test in short mode")
	}
	dir := t.TempDir()
	plpd := buildBinary(t, dir, "./cmd/plpd", "plpd")
	plpctl := buildBinary(t, dir, "./cmd/plpctl", "plpctl")

	addr0, addr1 := freeAddr(t), freeAddr(t)
	mapPath := filepath.Join(dir, "shards.map")
	mapText := fmt.Sprintf("version 1\nshard 0 %s 500000\nshard 1 %s -\n", addr0, addr1)
	if err := os.WriteFile(mapPath, []byte(mapText), 0o644); err != nil {
		t.Fatal(err)
	}
	dir0, dir1 := filepath.Join(dir, "d0"), filepath.Join(dir, "d1")

	start := func(addr, dataDir string, id int) *plpdProc {
		return startPlpd(t, plpd,
			"-addr", addr, "-data-dir", dataDir, "-partitions", "4",
			"-tables", "kv", "-stats", "0",
			"-shard-map", mapPath, "-shard-id", fmt.Sprint(id))
	}
	p0 := start(addr0, dir0, 0)
	p1 := start(addr1, dir1, 1)
	waitReady(t, addr0)
	waitReady(t, addr1)

	// Load a split keyspace through the routing client: keys on both sides
	// of the 500000 boundary, routed from a single seed.
	ctx := context.Background()
	sc, err := client.DialSharded(ctx, []string{addr0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	val := func(i uint64) []byte { return []byte(fmt.Sprintf("v%d", i)) }
	keysLoaded := []uint64{}
	for i := uint64(0); i < 20; i++ {
		for _, k := range []uint64{1000 + i, 600_000 + i} {
			if err := sc.Upsert("kv", client.Uint64Key(k), val(k)); err != nil {
				t.Fatalf("upsert %d: %v", k, err)
			}
			keysLoaded = append(keysLoaded, k)
		}
	}
	// One cross-shard transaction committed by the two-phase protocol.
	if _, err := sc.DoContext(ctx, client.NewTxn().
		Upsert("kv", client.Uint64Key(42), val(42)).
		Upsert("kv", client.Uint64Key(999_000), val(999_000))); err != nil {
		t.Fatalf("cross-shard commit: %v", err)
	}
	keysLoaded = append(keysLoaded, 42, 999_000)
	for _, k := range keysLoaded {
		got, err := sc.Get("kv", client.Uint64Key(k))
		if err != nil {
			t.Fatalf("get %d: %v", k, err)
		}
		if !bytes.Equal(got, val(k)) {
			t.Fatalf("get %d: %q, want %q", k, got, val(k))
		}
	}
	// A scan spanning the boundary fans out to both daemons and comes back
	// in key order.
	entries, err := sc.Scan("kv", client.Uint64Key(0), client.Uint64Key(1_000_000), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(keysLoaded) {
		t.Fatalf("spanning scan returned %d records, want %d", len(entries), len(keysLoaded))
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}

	// plpctl's shards verb reports the cluster map from either daemon.
	out, err := exec.Command(plpctl, "-addr", addr1, "shards").CombinedOutput()
	if err != nil {
		t.Fatalf("plpctl shards: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "version 1") || !strings.Contains(string(out), addr0) {
		t.Fatalf("plpctl shards output missing map contents:\n%s", out)
	}

	// Restart both daemons on their data directories: the shard.state
	// handshake must accept the matching assignment and recovery must
	// preserve every acknowledged write, including the 2PC one.
	stopPlpd(t, p0)
	stopPlpd(t, p1)
	p0 = start(addr0, dir0, 0)
	p1 = start(addr1, dir1, 1)
	waitReady(t, addr0)
	waitReady(t, addr1)
	sc, err = client.DialSharded(ctx, []string{addr1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keysLoaded {
		got, err := sc.Get("kv", client.Uint64Key(k))
		if err != nil {
			t.Fatalf("get %d after restart: %v", k, err)
		}
		if !bytes.Equal(got, val(k)) {
			t.Fatalf("get %d after restart: %q, want %q", k, got, val(k))
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	stopPlpd(t, p0)
	stopPlpd(t, p1)

	// A daemon handed shard 0's directory but shard 1's identity must
	// refuse to start rather than serve the wrong range.
	wrong := exec.Command(plpd,
		"-addr", freeAddr(t), "-data-dir", dir0, "-partitions", "4",
		"-tables", "kv", "-stats", "0",
		"-shard-map", mapPath, "-shard-id", "1")
	wrongOut, err := wrong.CombinedOutput()
	if err == nil {
		t.Fatalf("plpd started shard 1 on shard 0's data dir:\n%s", wrongOut)
	}
	if !strings.Contains(string(wrongOut), "refusing to start") {
		t.Fatalf("mismatch refusal missing from output:\n%s", wrongOut)
	}
}
