// Command plpload loads one of the benchmark databases into an engine of
// the chosen design and prints storage statistics: index heights, page
// counts, heap occupancy and fragmentation.  It is a quick way to inspect
// how the heap-placement policies of the PLP variants shape the physical
// database (the effect behind Figures 11 and 12).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"plp/internal/engine"
	"plp/internal/workload/tatp"
	"plp/internal/workload/tpcb"
	"plp/internal/workload/tpcc"
)

func main() {
	var (
		workload    = flag.String("workload", "tatp", "tatp, tpcb or tpcc")
		designName  = flag.String("design", "plp-leaf", "conventional, logical, plp-regular, plp-partition or plp-leaf")
		partitions  = flag.Int("partitions", 8, "logical partitions")
		subscribers = flag.Int("subscribers", 20000, "TATP scale factor")
		branches    = flag.Int("branches", 2, "TPC-B scale factor")
		warehouses  = flag.Int("warehouses", 2, "TPC-C scale factor")
	)
	flag.Parse()

	design, ok := map[string]engine.Design{
		"conventional":  engine.Conventional,
		"logical":       engine.Logical,
		"plp-regular":   engine.PLPRegular,
		"plp-partition": engine.PLPPartition,
		"plp-leaf":      engine.PLPLeaf,
	}[*designName]
	if !ok {
		fmt.Fprintf(os.Stderr, "plpload: unknown design %q\n", *designName)
		os.Exit(2)
	}

	e := engine.New(engine.Options{Design: design, Partitions: *partitions, SLI: design == engine.Conventional})
	defer e.Close()

	start := time.Now()
	var err error
	switch *workload {
	case "tatp":
		err = tatp.New(tatp.Config{Subscribers: *subscribers, Partitions: *partitions}).Setup(e)
	case "tpcb":
		err = tpcb.New(tpcb.Config{Branches: *branches, Partitions: *partitions}).Setup(e)
	case "tpcc":
		err = tpcc.New(tpcc.Config{Warehouses: *warehouses, Partitions: *partitions}).Setup(e)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	loadTime := time.Since(start)

	fmt.Printf("workload=%s design=%s partitions=%d loaded in %s\n\n",
		*workload, design, *partitions, loadTime.Round(time.Millisecond))
	fmt.Printf("%-26s %6s %10s %10s %10s %12s %12s\n",
		"table", "height", "idx leaf", "idx inner", "entries", "heap pages", "heap recs")
	for _, tbl := range e.Catalog().Tables() {
		st, err := tbl.Primary.Stats()
		if err != nil {
			log.Fatal(err)
		}
		heapPages, heapRecs := 0, 0
		if tbl.Heap != nil {
			hs := tbl.Heap.Stats()
			heapPages, heapRecs = hs.Pages, hs.Records
		}
		fmt.Printf("%-26s %6d %10d %10d %10d %12d %12d\n",
			tbl.Def.Name, st.Height, st.LeafPages, st.InteriorPages, st.Entries, heapPages, heapRecs)
	}
	bp := e.BufferPool().Stats()
	fmt.Printf("\nbuffer pool: %d resident pages, %d fixes, %d misses\n", bp.Resident, bp.Fixes, bp.Misses)
}
