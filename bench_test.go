// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation studies called out in DESIGN.md.
//
// Each benchmark executes the corresponding experiment end to end (build
// engines, load, run the measured interval) once per iteration and reports
// the figure's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result at benchmark scale.  cmd/plpbench runs the same
// experiments at larger scale with tabular output.
package plp

import (
	"testing"
	"time"

	"plp/internal/cs"
	"plp/internal/experiments"
	"plp/internal/latch"
)

// benchScale returns the scale used by the benchmark suite: large enough to
// show the contention effects, small enough to keep the full suite in the
// minutes range.
func benchScale() experiments.Scale {
	s := experiments.DefaultScale()
	s.TATPSubscribers = 10000
	s.TPCBBranches = 1
	s.TPCBAccountsPerBranch = 5000
	s.TPCCWarehouses = 1
	s.Partitions = 4
	s.Clients = 4
	s.TxnsPerClient = 1000
	s.Warmup = 100
	return s
}

// metricLabel turns a human-readable row label into a benchmark metric unit
// (testing.B rejects units containing whitespace).
func metricLabel(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t', ',', '(', ')':
			if len(out) > 0 && out[len(out)-1] == '-' {
				continue
			}
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}

// BenchmarkFig1CriticalSections reproduces Figure 1: critical sections per
// transaction, by component, for the baseline, SLI, Logical and PLP systems.
func BenchmarkFig1CriticalSections(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(s)
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		b.ReportMetric(first.PerTxn.Total, "cs/txn-baseline")
		b.ReportMetric(last.PerTxn.Total, "cs/txn-plp-leaf")
		b.ReportMetric(first.PerTxn.TotalContended, "contended/txn-baseline")
		b.ReportMetric(last.PerTxn.TotalContended, "contended/txn-plp-leaf")
	}
}

// BenchmarkFig2LatchBreakdown reproduces Figure 2: page latches by page type
// for TATP, TPC-B and TPC-C on the conventional system.
func BenchmarkFig2LatchBreakdown(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			total := row.LatchesPerTxn[latch.KindIndex] + row.LatchesPerTxn[latch.KindHeap] + row.LatchesPerTxn[latch.KindCatalog]
			if total > 0 {
				b.ReportMetric(100*row.LatchesPerTxn[latch.KindIndex]/total, "idx%-"+row.Workload)
			}
		}
	}
}

// BenchmarkFig3LatchByDesign reproduces Figure 3: page latches acquired per
// transaction by each design on TATP.
func BenchmarkFig3LatchByDesign(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Total, "latches/txn-"+row.System)
		}
	}
}

// BenchmarkTable1RepartitionCost reproduces Table 1: the cost of splitting a
// partition in half, measured on loaded databases of each PLP variant.
func BenchmarkTable1RepartitionCost(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1Measured(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range rows {
			b.ReportMetric(float64(row.EntriesMoved), "entries-"+row.System)
			b.ReportMetric(float64(row.RecordsMoved), "records-"+row.System)
		}
	}
}

// BenchmarkFig5Throughput reproduces Figure 5: GetSubscriberData throughput
// scaling for the conventional, logical and PLP designs.
func BenchmarkFig5Throughput(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(s, []int{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Clients == 8 {
				b.ReportMetric(p.TPS, "tps8-"+p.System)
			}
		}
	}
}

// BenchmarkFig6InsertDelete reproduces Figure 6: the per-transaction time
// breakdown of the insert/delete-heavy workload (index latch contention).
func BenchmarkFig6InsertDelete(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(s, []int{s.Clients})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.WaitPerTxn[1])/1e3, "heapwait-us-"+row.System)
			b.ReportMetric(float64(row.WaitPerTxn[0])/1e3, "idxwait-us-"+row.System)
			b.ReportMetric(row.TPS, "tps-"+row.System)
		}
	}
}

// BenchmarkFig7FalseSharing reproduces Figure 7: TPC-B with heap-page false
// sharing.
func BenchmarkFig7FalseSharing(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(s, []int{s.Clients})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.WaitPerTxn[1])/1e3, "heapwait-us-"+row.System)
			b.ReportMetric(row.TPS, "tps-"+row.System)
		}
	}
}

// BenchmarkFig8Repartitioning reproduces Figure 8: throughput while the
// workload skew changes and the engines repartition.
func BenchmarkFig8Repartitioning(b *testing.B) {
	s := benchScale()
	s.Duration = 250 * time.Millisecond // shrink the timeline for benchmarking
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, series := range r.Series {
			min := -1.0
			for _, p := range series.Points {
				if p.T <= r.EventAt {
					continue
				}
				if min < 0 || p.TPS < min {
					min = p.TPS
				}
			}
			if min >= 0 {
				b.ReportMetric(min, "min-tps-after-event-"+series.System)
			}
			b.ReportMetric(float64(series.Rebalance.RecordsMoved), "records-moved-"+series.System)
		}
	}
}

// BenchmarkFig9MRBTreeConventional reproduces Figure 9: the benefit of
// MRBTree indexes inside the conventional and logical designs.
func BenchmarkFig9MRBTreeConventional(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			label := row.System + "-normal"
			if row.MRBTree {
				label = row.System + "-mrbt"
			}
			b.ReportMetric(row.TPS, "tps-"+label)
		}
	}
}

// BenchmarkFig10ParallelSMO reproduces Figure 10: time spent blocked on
// structure modifications as the insert ratio grows, with and without
// MRBTrees.
func BenchmarkFig10ParallelSMO(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(s, []int{0, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.InsertPercent != 100 {
				continue
			}
			label := "normal"
			if row.MRBTree {
				label = "mrbt"
			}
			b.ReportMetric(float64(row.SMOWait)/1e3, "smowait-us-"+label)
			b.ReportMetric(row.TPS, "tps-"+label)
		}
	}
}

// BenchmarkFig11Fragmentation reproduces Figure 11: the heap-space overhead
// of the PLP variations.
func BenchmarkFig11Fragmentation(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(s, []int{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.RecordSize == 100 {
				b.ReportMetric(row.Normalized, "pages-norm-"+row.System)
			}
		}
	}
}

// BenchmarkFig12ScanOverhead reproduces Figure 12: normalized heap scan
// time.
func BenchmarkFig12ScanOverhead(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Normalized, "scan-norm-"+row.System)
		}
	}
}

// BenchmarkAblationSLI measures the effect of Speculative Lock Inheritance
// in the conventional design.
func BenchmarkAblationSLI(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSLI(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.TPS, "tps-"+metricLabel(row.Label))
		}
	}
}

// BenchmarkAblationLatchFreeIndex measures the effect of latch-free index
// access inside PLP.
func BenchmarkAblationLatchFreeIndex(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLatchFreeIndex(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.LatchesPerTxn, "latches/txn-"+metricLabel(row.Label))
			b.ReportMetric(row.TPS, "tps-"+metricLabel(row.Label))
		}
	}
}

// BenchmarkAblationLogBuffer compares the consolidated (Aether-style) log
// buffer against a single-mutex buffer.
func BenchmarkAblationLogBuffer(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLogBuffer(s)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.TPS, "tps-"+metricLabel(row.Label))
		}
	}
}

// BenchmarkAblationPartitions sweeps the MRBTree partition count.
func BenchmarkAblationPartitions(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPartitionCount(s, []int{1, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.TPS, "tps-"+metricLabel(row.Label))
		}
	}
}

// BenchmarkExtAutoBalance measures the automatic load-balance monitor
// (EXT-1): the Figure 8 skew scenario handled by the monitor instead of a
// manual Rebalance call.
func BenchmarkExtAutoBalance(b *testing.B) {
	s := benchScale()
	s.Duration = 300 * time.Millisecond
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtAutoBalance(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Series[0].PostSkewTPS, "tps-post-skew-static")
		b.ReportMetric(r.Series[1].PostSkewTPS, "tps-post-skew-auto")
		b.ReportMetric(100*r.Series[0].HotShare, "hot-worker-%-static")
		b.ReportMetric(100*r.Series[1].HotShare, "hot-worker-%-auto")
		b.ReportMetric(float64(r.Series[1].Decisions), "rebalances")
	}
}

// BenchmarkExtRecovery measures checkpointing plus logical restart recovery
// of a TATP database (EXT-2).
func BenchmarkExtRecovery(b *testing.B) {
	s := benchScale()
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtRecovery(s)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Verified {
			b.Fatal("recovered database failed verification")
		}
		b.ReportMetric(r.CheckpointDuration.Seconds()*1000, "checkpoint-ms")
		b.ReportMetric(r.RecoveryDuration.Seconds()*1000, "recovery-ms")
		b.ReportMetric(float64(r.ReplayApplied), "ops-replayed")
		b.ReportMetric(float64(r.CheckpointEntries), "snapshot-entries")
	}
}

// TestPublicAPISmoke exercises the package-level public API end to end so
// the root package has test coverage beyond the benchmarks.
func TestPublicAPISmoke(t *testing.T) {
	for _, design := range AllDesigns() {
		eng := New(Options{Design: design, Partitions: 2})
		if _, err := eng.CreateTable(TableDef{Name: "t", Boundaries: UniformBoundaries(1000, 2)}); err != nil {
			t.Fatal(err)
		}
		sess := eng.NewSession()
		key := Uint64Key(7)
		req := NewRequest(Action{Table: "t", Key: key, Exec: func(c *Ctx) error {
			return c.Insert("t", key, []byte("v"))
		}})
		if _, err := sess.Execute(req); err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		var got []byte
		read := NewRequest(Action{Table: "t", Key: key, Exec: func(c *Ctx) error {
			v, err := c.Read("t", key)
			got = v
			return err
		}})
		if _, err := sess.Execute(read); err != nil {
			t.Fatalf("%v: %v", design, err)
		}
		if string(got) != "v" {
			t.Fatalf("%v: got %q", design, got)
		}
		sess.Close()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// The critical-section categories used in reports must round-trip.
	if cs.LockMgr.String() == "" {
		t.Fatal("category label missing")
	}
}
