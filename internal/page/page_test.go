package page

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPageEmpty(t *testing.T) {
	p := New(1, KindHeap)
	if p.ID() != 1 || p.Kind() != KindHeap {
		t.Fatalf("header mismatch: %+v", p.Header())
	}
	if p.NumRecords() != 0 || p.NumSlots() != 0 {
		t.Fatal("new page not empty")
	}
	if p.FreeSpace() <= 0 || p.FreeSpace() > Size {
		t.Fatalf("weird free space %d", p.FreeSpace())
	}
}

func TestStableSlotAddGetDelete(t *testing.T) {
	p := New(1, KindHeap)
	var slots []uint16
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%02d", i))
		slot, err := p.Add(rec)
		if err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
		slots = append(slots, slot)
	}
	for i, slot := range slots {
		rec, err := p.Get(slot)
		if err != nil {
			t.Fatalf("Get %d: %v", slot, err)
		}
		if want := fmt.Sprintf("record-%02d", i); string(rec) != want {
			t.Fatalf("slot %d: got %q want %q", slot, rec, want)
		}
	}
	// Delete even slots; odd slots must keep their numbers and contents.
	for i := 0; i < 50; i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 50; i += 2 {
		rec, err := p.Get(slots[i])
		if err != nil {
			t.Fatalf("odd slot %d unreadable after deletes: %v", slots[i], err)
		}
		if want := fmt.Sprintf("record-%02d", i); string(rec) != want {
			t.Fatalf("slot %d corrupted: %q", slots[i], rec)
		}
	}
	if _, err := p.Get(slots[0]); err == nil {
		t.Fatal("deleted slot still readable")
	}
	if err := p.Delete(slots[0]); err == nil {
		t.Fatal("double delete not detected")
	}
	// Adding reuses tombstoned slots.
	slot, err := p.Add([]byte("reused"))
	if err != nil {
		t.Fatal(err)
	}
	if int(slot) >= 50 {
		t.Fatalf("expected tombstone reuse, got fresh slot %d", slot)
	}
}

func TestSetGrowAndShrink(t *testing.T) {
	p := New(1, KindHeap)
	slot, err := p.Add([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Set(slot, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	rec, _ := p.Get(slot)
	if string(rec) != "bb" {
		t.Fatalf("got %q", rec)
	}
	if err := p.Set(slot, bytes.Repeat([]byte("c"), 500)); err != nil {
		t.Fatal(err)
	}
	rec, _ = p.Get(slot)
	if len(rec) != 500 || rec[0] != 'c' {
		t.Fatalf("grow failed: len=%d", len(rec))
	}
}

func TestPageFull(t *testing.T) {
	p := New(1, KindHeap)
	rec := make([]byte, 1000)
	added := 0
	for {
		if _, err := p.Add(rec); err != nil {
			break
		}
		added++
	}
	if added < 7 || added > 8 {
		t.Fatalf("expected 7-8 1000-byte records on an 8KiB page, got %d", added)
	}
	if _, err := p.Add(make([]byte, MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// After deleting one record the space is reusable (via compaction).
	if err := p.Delete(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Add(rec); err != nil {
		t.Fatalf("re-add after delete: %v", err)
	}
}

func TestPositionalInsertShifts(t *testing.T) {
	p := New(1, KindIndexLeaf)
	// Insert in reverse order at position 0 each time; the page should end
	// up sorted ascending.
	for i := 9; i >= 0; i-- {
		if err := p.InsertAt(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		rec, err := p.GetAt(i)
		if err != nil || rec[0] != byte(i) {
			t.Fatalf("pos %d: rec=%v err=%v", i, rec, err)
		}
	}
	// Remove the middle and verify the shift.
	if err := p.RemoveAt(5); err != nil {
		t.Fatal(err)
	}
	rec, _ := p.GetAt(5)
	if rec[0] != 6 {
		t.Fatalf("after RemoveAt, pos 5 = %d", rec[0])
	}
	if p.NumSlots() != 9 {
		t.Fatalf("NumSlots=%d", p.NumSlots())
	}
	if err := p.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 3 {
		t.Fatalf("after Truncate NumSlots=%d", p.NumSlots())
	}
}

func TestSetAtAndBounds(t *testing.T) {
	p := New(1, KindIndexLeaf)
	if err := p.InsertAt(1, []byte("x")); err == nil {
		t.Fatal("insert past end accepted")
	}
	if err := p.InsertAt(0, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := p.SetAt(0, []byte("defghij")); err != nil {
		t.Fatal(err)
	}
	rec, _ := p.GetAt(0)
	if string(rec) != "defghij" {
		t.Fatalf("got %q", rec)
	}
	if _, err := p.GetAt(5); err == nil {
		t.Fatal("out-of-range GetAt accepted")
	}
	if err := p.RemoveAt(5); err == nil {
		t.Fatal("out-of-range RemoveAt accepted")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := New(77, KindHeap)
	p.SetNext(78)
	p.SetPrev(76)
	p.SetOwner(5)
	p.SetExtra(9)
	p.SetLSN(1234)
	var slots []uint16
	for i := 0; i < 20; i++ {
		s, err := p.Add([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	_ = p.Delete(slots[3])

	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.ID() != 77 || q.Kind() != KindHeap || q.Next() != 78 || q.Prev() != 76 ||
		q.Owner() != 5 || q.Extra() != 9 || q.LSN() != 1234 {
		t.Fatalf("header mismatch after round trip: %+v", q.Header())
	}
	if q.NumRecords() != p.NumRecords() {
		t.Fatalf("record count mismatch: %d vs %d", q.NumRecords(), p.NumRecords())
	}
	for _, s := range slots {
		want, werr := p.Get(s)
		got, gerr := q.Get(s)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("slot %d: err mismatch %v vs %v", s, werr, gerr)
		}
		if werr == nil && !bytes.Equal(want, got) {
			t.Fatalf("slot %d: %q vs %q", s, want, got)
		}
	}
	if _, err := Unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short unmarshal accepted")
	}
}

func TestRIDEncoding(t *testing.T) {
	r := RID{Page: 123456, Slot: 789}
	dec, err := DecodeRID(EncodeRID(r))
	if err != nil || dec != r {
		t.Fatalf("round trip failed: %v %v", dec, err)
	}
	if !r.Valid() || (RID{}).Valid() {
		t.Fatal("validity check broken")
	}
	if _, err := DecodeRID([]byte{1, 2, 3}); err == nil {
		t.Fatal("short RID accepted")
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindIndexLeaf.IsIndex() || !KindIndexInterior.IsIndex() || !KindRouting.IsIndex() {
		t.Fatal("index kinds misclassified")
	}
	if KindHeap.IsIndex() || KindCatalog.IsIndex() {
		t.Fatal("non-index kinds misclassified")
	}
	for k := KindFree; k <= KindMetadata; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty label", k)
		}
	}
}

// TestPropertyStableSlots drives random Add/Delete/Set sequences against a
// map model.
func TestPropertyStableSlots(t *testing.T) {
	f := func(seed int64, opCount uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(1, KindHeap)
		model := map[uint16][]byte{}
		for i := 0; i < int(opCount); i++ {
			switch rng.Intn(3) {
			case 0:
				rec := make([]byte, 1+rng.Intn(64))
				rng.Read(rec)
				slot, err := p.Add(rec)
				if err != nil {
					continue
				}
				if _, exists := model[slot]; exists {
					return false // reused a live slot
				}
				model[slot] = append([]byte(nil), rec...)
			case 1:
				for slot := range model {
					if err := p.Delete(slot); err != nil {
						return false
					}
					delete(model, slot)
					break
				}
			case 2:
				for slot := range model {
					rec := make([]byte, 1+rng.Intn(64))
					rng.Read(rec)
					if err := p.Set(slot, rec); err != nil {
						break
					}
					model[slot] = append([]byte(nil), rec...)
					break
				}
			}
		}
		if p.NumRecords() != len(model) {
			return false
		}
		for slot, want := range model {
			got, err := p.Get(slot)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMarshalRoundTrip checks that Marshal/Unmarshal preserve an
// arbitrary page produced by random operations.
func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(ID(rng.Uint64()|1), KindIndexLeaf)
		for i := 0; i < 30; i++ {
			rec := make([]byte, 1+rng.Intn(100))
			rng.Read(rec)
			pos := 0
			if p.NumSlots() > 0 {
				pos = rng.Intn(p.NumSlots() + 1)
			}
			if err := p.InsertAt(pos, rec); err != nil {
				return false
			}
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		if q.NumSlots() != p.NumSlots() {
			return false
		}
		for i := 0; i < p.NumSlots(); i++ {
			a, _ := p.GetAt(i)
			b, _ := q.GetAt(i)
			if !bytes.Equal(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
