// Package page implements the fixed-size slotted database page that every
// storage structure in the system (heap files, B+Tree nodes, catalog pages,
// and the MRBTree routing page) is built from.
//
// Pages are 8 KiB, matching the configuration used in the PLP paper.  A page
// contains a header, a slot directory that grows forward from the header,
// and record data that grows backward from the end of the page.  Two slot
// disciplines are supported:
//
//   - Stable slots (Add/Delete/Get/Set): a record keeps its slot number for
//     its whole life, so record IDs (RIDs) that reference it stay valid.
//     Heap pages use this discipline.
//   - Positional slots (InsertAt/RemoveAt/GetAt/SetAt): the slot directory is
//     an ordered sequence and insertions shift later entries.  B+Tree nodes
//     use this discipline to keep their entries sorted.
//
// A page never mixes the two disciplines.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the size of every database page in bytes (8 KiB, as in the paper).
const Size = 8192

// headerSize is the number of bytes reserved at the start of each page for
// the page header.
const headerSize = 64

// slotSize is the size of one slot directory entry: 2 bytes offset +
// 2 bytes length.
const slotSize = 4

// tombstoneOffset marks a deleted stable slot.
const tombstoneOffset = 0xFFFF

// ID identifies a page within the database file.
type ID uint64

// InvalidID is the zero, never-allocated page ID.
const InvalidID ID = 0

// String formats a page ID.
func (id ID) String() string { return fmt.Sprintf("page(%d)", uint64(id)) }

// Kind classifies pages for latch accounting and consistency checks.
type Kind uint8

// Page kinds.
const (
	KindFree Kind = iota
	KindHeap
	KindIndexLeaf
	KindIndexInterior
	KindRouting // MRBTree partition (routing) page
	KindCatalog
	KindMetadata
)

// String returns a short label for the kind.
func (k Kind) String() string {
	switch k {
	case KindFree:
		return "free"
	case KindHeap:
		return "heap"
	case KindIndexLeaf:
		return "leaf"
	case KindIndexInterior:
		return "interior"
	case KindRouting:
		return "routing"
	case KindCatalog:
		return "catalog"
	case KindMetadata:
		return "metadata"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsIndex reports whether the kind is an index page kind.
func (k Kind) IsIndex() bool {
	return k == KindIndexLeaf || k == KindIndexInterior || k == KindRouting
}

// RID is a record identifier: the page holding the record plus its stable
// slot within that page.
type RID struct {
	Page ID
	Slot uint16
}

// InvalidRID is the zero RID.
var InvalidRID = RID{}

// Valid reports whether the RID references an allocated page.
func (r RID) Valid() bool { return r.Page != InvalidID }

// String formats a RID.
func (r RID) String() string { return fmt.Sprintf("rid(%d,%d)", uint64(r.Page), r.Slot) }

// EncodeRID encodes a RID into a fixed 10-byte representation.
func EncodeRID(r RID) []byte {
	var buf [10]byte
	binary.BigEndian.PutUint64(buf[0:8], uint64(r.Page))
	binary.BigEndian.PutUint16(buf[8:10], r.Slot)
	return buf[:]
}

// DecodeRID decodes a RID previously encoded with EncodeRID.
func DecodeRID(b []byte) (RID, error) {
	if len(b) < 10 {
		return RID{}, fmt.Errorf("page: short RID encoding (%d bytes)", len(b))
	}
	return RID{
		Page: ID(binary.BigEndian.Uint64(b[0:8])),
		Slot: binary.BigEndian.Uint16(b[8:10]),
	}, nil
}

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrNoSuchSlot  = errors.New("page: no such slot")
	ErrSlotDeleted = errors.New("page: slot is deleted")
	ErrTooLarge    = errors.New("page: record larger than a page")
)

// MaxRecordSize is the largest record that fits on an empty page.
const MaxRecordSize = Size - headerSize - slotSize

// Header holds the page metadata.  It lives at the front of the page buffer
// and is serialized into the first headerSize bytes.
type Header struct {
	ID    ID
	Kind  Kind
	LSN   uint64 // page LSN: LSN of the last log record that modified the page
	Prev  ID     // previous sibling (B+Tree leaf chains, heap page chains)
	Next  ID     // next sibling
	Owner uint64 // logical owner: partition id for PLP heap pages, index id for index pages
	Extra uint64 // kind-specific field (e.g. leftmost child of an interior node, tree level)
}

// Page is an in-memory 8 KiB slotted page.
type Page struct {
	hdr      Header
	nslots   uint16 // number of slot directory entries (including tombstones)
	nrecords uint16 // number of live records
	dataLow  uint16 // lowest byte offset used by record data (records grow down)
	garbage  uint16 // bytes occupied by deleted record data (reclaimable by compaction)
	buf      [Size]byte
}

// New returns an initialized page of the given kind and id.
func New(id ID, kind Kind) *Page {
	p := &Page{}
	p.Reset(id, kind)
	return p
}

// Reset reinitializes the page in place, discarding all records.
func (p *Page) Reset(id ID, kind Kind) {
	p.hdr = Header{ID: id, Kind: kind}
	p.nslots = 0
	p.nrecords = 0
	p.dataLow = Size
	p.garbage = 0
}

// Header returns a copy of the page header.
func (p *Page) Header() Header { return p.hdr }

// ID returns the page's ID.
func (p *Page) ID() ID { return p.hdr.ID }

// Kind returns the page's kind.
func (p *Page) Kind() Kind { return p.hdr.Kind }

// SetKind changes the page's kind (used when a free page is allocated for a
// specific structure).
func (p *Page) SetKind(k Kind) { p.hdr.Kind = k }

// LSN returns the page LSN.
func (p *Page) LSN() uint64 { return p.hdr.LSN }

// SetLSN updates the page LSN.
func (p *Page) SetLSN(lsn uint64) {
	if lsn > p.hdr.LSN {
		p.hdr.LSN = lsn
	}
}

// Prev returns the previous sibling page ID.
func (p *Page) Prev() ID { return p.hdr.Prev }

// Next returns the next sibling page ID.
func (p *Page) Next() ID { return p.hdr.Next }

// SetPrev sets the previous sibling page ID.
func (p *Page) SetPrev(id ID) { p.hdr.Prev = id }

// SetNext sets the next sibling page ID.
func (p *Page) SetNext(id ID) { p.hdr.Next = id }

// Owner returns the logical owner tag of the page.
func (p *Page) Owner() uint64 { return p.hdr.Owner }

// SetOwner sets the logical owner tag of the page.
func (p *Page) SetOwner(o uint64) { p.hdr.Owner = o }

// Extra returns the kind-specific extra header field.
func (p *Page) Extra() uint64 { return p.hdr.Extra }

// SetExtra sets the kind-specific extra header field.
func (p *Page) SetExtra(v uint64) { p.hdr.Extra = v }

// NumSlots returns the number of slot directory entries, including
// tombstones left behind by stable-slot deletions.
func (p *Page) NumSlots() int { return int(p.nslots) }

// NumRecords returns the number of live records on the page.
func (p *Page) NumRecords() int { return int(p.nrecords) }

// slotRef returns the offset/length pair stored in slot i.
func (p *Page) slotRef(i int) (off, length uint16) {
	base := headerSize + i*slotSize
	off = binary.LittleEndian.Uint16(p.buf[base:])
	length = binary.LittleEndian.Uint16(p.buf[base+2:])
	return off, length
}

// setSlotRef stores the offset/length pair into slot i.
func (p *Page) setSlotRef(i int, off, length uint16) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p.buf[base:], off)
	binary.LittleEndian.PutUint16(p.buf[base+2:], length)
}

// slotDirEnd returns the byte offset just past the slot directory.
func (p *Page) slotDirEnd() int { return headerSize + int(p.nslots)*slotSize }

// ContiguousFreeSpace returns the number of bytes available between the slot
// directory and the record data without compaction, accounting for the slot
// entry a new record would need.
func (p *Page) ContiguousFreeSpace() int {
	free := int(p.dataLow) - p.slotDirEnd() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// FreeSpace returns the number of bytes that would be available for a new
// record after compaction (including the garbage left by deleted records).
func (p *Page) FreeSpace() int {
	return p.ContiguousFreeSpace() + int(p.garbage)
}

// HasRoomFor reports whether a record of n bytes fits on the page (possibly
// after compaction).
func (p *Page) HasRoomFor(n int) bool {
	if n > MaxRecordSize {
		return false
	}
	return p.FreeSpace() >= n
}

// writeRecordData copies rec into the record data area and returns its
// offset.  The caller must have ensured there is room (compacting first if
// needed).
func (p *Page) writeRecordData(rec []byte) uint16 {
	off := int(p.dataLow) - len(rec)
	copy(p.buf[off:], rec)
	p.dataLow = uint16(off)
	return uint16(off)
}

// ensureRoom makes sure a record of n bytes plus one slot entry fits
// contiguously, compacting the page if necessary.  It returns ErrPageFull if
// even compaction cannot make room.
func (p *Page) ensureRoom(n int) error {
	if n > MaxRecordSize {
		return ErrTooLarge
	}
	if p.ContiguousFreeSpace() >= n {
		return nil
	}
	if p.FreeSpace() < n {
		return ErrPageFull
	}
	p.compact()
	if p.ContiguousFreeSpace() < n {
		return ErrPageFull
	}
	return nil
}

// compact rewrites the record data area to squeeze out garbage left by
// deleted or shrunk records.  Slot numbers are preserved.
func (p *Page) compact() {
	var scratch [Size]byte
	writePos := Size
	for i := 0; i < int(p.nslots); i++ {
		off, length := p.slotRef(i)
		if off == tombstoneOffset || length == 0 && off == 0 {
			continue
		}
		writePos -= int(length)
		copy(scratch[writePos:], p.buf[off:off+length])
		p.setSlotRef(i, uint16(writePos), length)
	}
	copy(p.buf[writePos:], scratch[writePos:])
	p.dataLow = uint16(writePos)
	p.garbage = 0
}

//
// Stable-slot discipline (heap pages).
//

// Add stores rec in the first free stable slot (reusing tombstones) and
// returns the slot number.
func (p *Page) Add(rec []byte) (uint16, error) {
	if err := p.ensureRoom(len(rec)); err != nil {
		return 0, err
	}
	// Reuse a tombstone slot if one exists.
	slot := -1
	for i := 0; i < int(p.nslots); i++ {
		if off, _ := p.slotRef(i); off == tombstoneOffset {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = int(p.nslots)
		p.nslots++
	}
	off := p.writeRecordData(rec)
	p.setSlotRef(slot, off, uint16(len(rec)))
	p.nrecords++
	return uint16(slot), nil
}

// Get returns the record stored in the stable slot.  The returned slice
// aliases the page buffer and must not be modified or retained after the
// page latch is released.
func (p *Page) Get(slot uint16) ([]byte, error) {
	if int(slot) >= int(p.nslots) {
		return nil, ErrNoSuchSlot
	}
	off, length := p.slotRef(int(slot))
	if off == tombstoneOffset {
		return nil, ErrSlotDeleted
	}
	return p.buf[off : off+length], nil
}

// Set replaces the record in the stable slot with rec, keeping the slot
// number stable.
func (p *Page) Set(slot uint16, rec []byte) error {
	if int(slot) >= int(p.nslots) {
		return ErrNoSuchSlot
	}
	off, length := p.slotRef(int(slot))
	if off == tombstoneOffset {
		return ErrSlotDeleted
	}
	if int(length) >= len(rec) {
		// Overwrite in place; excess bytes become garbage.
		copy(p.buf[off:], rec)
		p.setSlotRef(int(slot), off, uint16(len(rec)))
		p.garbage += length - uint16(len(rec))
		return nil
	}
	// Need to relocate within the page.
	p.garbage += length
	p.setSlotRef(int(slot), tombstoneOffset, 0)
	p.nrecords--
	if err := p.ensureRoom(len(rec)); err != nil {
		// Roll back the tombstone so the caller still sees the old record.
		p.garbage -= length
		p.setSlotRef(int(slot), off, length)
		p.nrecords++
		return err
	}
	// ensureRoom may have compacted; the old data is gone but the slot is a
	// tombstone so compaction skipped it correctly.
	newOff := p.writeRecordData(rec)
	p.setSlotRef(int(slot), newOff, uint16(len(rec)))
	p.nrecords++
	return nil
}

// Delete tombstones the stable slot.  The slot number is not reused until a
// later Add, and never renumbered, so other RIDs remain valid.
func (p *Page) Delete(slot uint16) error {
	if int(slot) >= int(p.nslots) {
		return ErrNoSuchSlot
	}
	off, length := p.slotRef(int(slot))
	if off == tombstoneOffset {
		return ErrSlotDeleted
	}
	p.setSlotRef(int(slot), tombstoneOffset, 0)
	p.garbage += length
	p.nrecords--
	return nil
}

// LiveSlots returns the slot numbers of all live records, in slot order.
func (p *Page) LiveSlots() []uint16 {
	out := make([]uint16, 0, p.nrecords)
	for i := 0; i < int(p.nslots); i++ {
		if off, _ := p.slotRef(i); off != tombstoneOffset {
			out = append(out, uint16(i))
		}
	}
	return out
}

//
// Positional-slot discipline (B+Tree nodes, routing pages).
//

// InsertAt inserts rec at position pos, shifting later slots up by one.
// pos may equal NumSlots to append.
func (p *Page) InsertAt(pos int, rec []byte) error {
	if pos < 0 || pos > int(p.nslots) {
		return ErrNoSuchSlot
	}
	if err := p.ensureRoom(len(rec)); err != nil {
		return err
	}
	// Shift slot entries [pos, nslots) up by one.
	end := p.slotDirEnd()
	base := headerSize + pos*slotSize
	copy(p.buf[base+slotSize:end+slotSize], p.buf[base:end])
	off := p.writeRecordData(rec)
	p.nslots++
	p.setSlotRef(pos, off, uint16(len(rec)))
	p.nrecords++
	return nil
}

// RemoveAt removes the record at position pos, shifting later slots down.
func (p *Page) RemoveAt(pos int) error {
	if pos < 0 || pos >= int(p.nslots) {
		return ErrNoSuchSlot
	}
	_, length := p.slotRef(pos)
	p.garbage += length
	base := headerSize + pos*slotSize
	end := p.slotDirEnd()
	copy(p.buf[base:], p.buf[base+slotSize:end])
	p.nslots--
	p.nrecords--
	return nil
}

// GetAt returns the record at position pos.  The returned slice aliases the
// page buffer.
func (p *Page) GetAt(pos int) ([]byte, error) {
	if pos < 0 || pos >= int(p.nslots) {
		return nil, ErrNoSuchSlot
	}
	off, length := p.slotRef(pos)
	if off == tombstoneOffset {
		return nil, ErrSlotDeleted
	}
	return p.buf[off : off+length], nil
}

// SetAt replaces the record at position pos.
func (p *Page) SetAt(pos int, rec []byte) error {
	if pos < 0 || pos >= int(p.nslots) {
		return ErrNoSuchSlot
	}
	off, length := p.slotRef(pos)
	if int(length) >= len(rec) {
		copy(p.buf[off:], rec)
		p.setSlotRef(pos, off, uint16(len(rec)))
		p.garbage += length - uint16(len(rec))
		return nil
	}
	p.garbage += length
	p.setSlotRef(pos, 0, 0)
	if err := p.ensureRoom(len(rec)); err != nil {
		p.garbage -= length
		p.setSlotRef(pos, off, length)
		return err
	}
	newOff := p.writeRecordData(rec)
	p.setSlotRef(pos, newOff, uint16(len(rec)))
	return nil
}

// Truncate removes all slots at positions >= pos (used when splitting
// B+Tree nodes).
func (p *Page) Truncate(pos int) error {
	if pos < 0 || pos > int(p.nslots) {
		return ErrNoSuchSlot
	}
	for i := pos; i < int(p.nslots); i++ {
		_, length := p.slotRef(i)
		p.garbage += length
	}
	removed := int(p.nslots) - pos
	p.nslots = uint16(pos)
	p.nrecords -= uint16(removed)
	return nil
}

// UsedBytes returns the number of payload bytes occupied by live records.
func (p *Page) UsedBytes() int {
	var used int
	for i := 0; i < int(p.nslots); i++ {
		off, length := p.slotRef(i)
		if off != tombstoneOffset {
			used += int(length)
		}
	}
	return used
}

//
// Serialization.  Pages are serialized to a flat byte slice when written to
// the (in-memory) backing store, and deserialized when fixed back into the
// buffer pool.  The record data and slot directory are already stored in the
// page buffer; only the header and bookkeeping fields need to be encoded.
//

// Marshal serializes the page into a newly allocated Size-byte slice.
func (p *Page) Marshal() []byte {
	out := make([]byte, Size)
	copy(out, p.buf[:])
	binary.LittleEndian.PutUint64(out[0:], uint64(p.hdr.ID))
	out[8] = byte(p.hdr.Kind)
	binary.LittleEndian.PutUint64(out[9:], p.hdr.LSN)
	binary.LittleEndian.PutUint64(out[17:], uint64(p.hdr.Prev))
	binary.LittleEndian.PutUint64(out[25:], uint64(p.hdr.Next))
	binary.LittleEndian.PutUint64(out[33:], p.hdr.Owner)
	binary.LittleEndian.PutUint64(out[41:], p.hdr.Extra)
	binary.LittleEndian.PutUint16(out[49:], p.nslots)
	binary.LittleEndian.PutUint16(out[51:], p.nrecords)
	binary.LittleEndian.PutUint16(out[53:], p.dataLow)
	binary.LittleEndian.PutUint16(out[55:], p.garbage)
	return out
}

// Unmarshal deserializes a page previously produced by Marshal.
func Unmarshal(data []byte) (*Page, error) {
	if len(data) != Size {
		return nil, fmt.Errorf("page: unmarshal needs %d bytes, got %d", Size, len(data))
	}
	p := &Page{}
	copy(p.buf[:], data)
	p.hdr.ID = ID(binary.LittleEndian.Uint64(data[0:]))
	p.hdr.Kind = Kind(data[8])
	p.hdr.LSN = binary.LittleEndian.Uint64(data[9:])
	p.hdr.Prev = ID(binary.LittleEndian.Uint64(data[17:]))
	p.hdr.Next = ID(binary.LittleEndian.Uint64(data[25:]))
	p.hdr.Owner = binary.LittleEndian.Uint64(data[33:])
	p.hdr.Extra = binary.LittleEndian.Uint64(data[41:])
	p.nslots = binary.LittleEndian.Uint16(data[49:])
	p.nrecords = binary.LittleEndian.Uint16(data[51:])
	p.dataLow = binary.LittleEndian.Uint16(data[53:])
	p.garbage = binary.LittleEndian.Uint16(data[55:])
	return p, nil
}
