package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// buildSegmentBytes encodes records exactly as the group-commit flusher
// writes them (Marshal body + CRC32 trailer), assigning contiguous LSNs
// starting at first.
func buildSegmentBytes(first LSN, payloads [][]byte) []byte {
	var out []byte
	lsn := first
	for i, p := range payloads {
		r := Record{LSN: lsn, Txn: uint64(i + 1), Type: RecUpdate, Payload: p}
		body := r.Marshal()
		var crc [recordTrailerSize]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
		out = append(out, body...)
		out = append(out, crc[:]...)
		lsn += LSN(r.encodedSize())
	}
	return out
}

// fuzzPayloads is the fixed record set the corruption fuzzer mutates.
func fuzzPayloads() [][]byte {
	return [][]byte{
		[]byte("alpha"),
		bytes.Repeat([]byte{0xAB}, 100),
		nil,
		[]byte("delta-record-with-a-longer-payload"),
		[]byte{0, 1, 2, 3, 4, 5, 6, 7},
	}
}

// FuzzSegmentReaderCorruption attacks the durable WAL segment reader with
// arbitrary mid-file corruption: any byte of a valid segment is overwritten
// with any value, and arbitrary junk may be appended.  The reader must
// never panic, must never regress past the framing invariants
// (validLen <= fileLen, prefix re-reads identically), and whatever it
// salvages must be a strict prefix of the original records — bit rot after
// the corruption point must not resurrect later records (the CRC catches
// tearing; LSN continuity catches resurrection).  OpenDurable on the same
// file must also survive, truncate the damage away and accept new appends.
func FuzzSegmentReaderCorruption(f *testing.F) {
	f.Add(uint32(0), byte(0xFF), []byte{})
	f.Add(uint32(40), byte(0x01), []byte{})       // header of record 0
	f.Add(uint32(60), byte(0x80), []byte("junk")) // payload of record 1
	f.Add(uint32(1<<31), byte(0), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, pos uint32, bite byte, tail []byte) {
		valid := buildSegmentBytes(1, fuzzPayloads())
		origRecs, origLen, origFile, err := readSegmentFromBytes(t, valid)
		if err != nil || origLen != origFile || len(origRecs) != len(fuzzPayloads()) {
			t.Fatalf("pristine segment misread: %d recs, %d/%d bytes, %v", len(origRecs), origLen, origFile, err)
		}

		corrupt := append([]byte(nil), valid...)
		idx := int(pos) % len(corrupt)
		corrupt[idx] ^= bite
		corrupt = append(corrupt, tail...)

		recs, validLen, fileLen, err := readSegmentFromBytes(t, corrupt)
		if err != nil {
			t.Fatalf("readSegment must not fail on corrupt contents: %v", err)
		}
		if fileLen != int64(len(corrupt)) || validLen > fileLen {
			t.Fatalf("lengths: valid %d, file %d, want file %d", validLen, fileLen, len(corrupt))
		}
		if len(recs) > len(origRecs) {
			t.Fatalf("corruption grew the log: %d recs from %d", len(recs), len(origRecs))
		}
		for i, rec := range recs {
			// Everything before the corrupted byte must survive intact; a
			// record overlapping or following it either fails its CRC or —
			// if the flip happens to keep the CRC valid (it cannot, for a
			// single-byte flip) — must equal the original anyway.
			want := origRecs[i]
			if rec.LSN != want.LSN || rec.Txn != want.Txn || !bytes.Equal(rec.Payload, want.Payload) {
				t.Fatalf("record %d mutated silently: %+v != %+v", i, rec, want)
			}
		}
		if bite != 0 {
			frameEnd := int64(0)
			for i, rec := range origRecs {
				next := frameEnd + int64(rec.encodedSize()) + recordTrailerSize
				if int64(idx) < next {
					if len(recs) > i {
						t.Fatalf("record %d survived a flipped byte inside its frame", i)
					}
					break
				}
				frameEnd = next
			}
		}

		// The full device must open over the damaged file, truncate the
		// tail and keep accepting appends.
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDurable(dir, DurableOptions{})
		if err != nil {
			t.Fatalf("OpenDurable on corrupt segment: %v", err)
		}
		if got := len(d.Records()); got != len(recs) {
			t.Fatalf("device salvaged %d records, reader salvaged %d", got, len(recs))
		}
		lsn := d.Append(&Record{Txn: 99, Type: RecCommit})
		if d.WaitDurable(lsn) <= lsn {
			t.Fatal("append after corruption recovery did not become durable")
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		// And reopen once more: the post-corruption append must be there.
		d2, err := OpenDurable(dir, DurableOptions{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer d2.Close()
		all := d2.Records()
		if len(all) != len(recs)+1 || all[len(all)-1].Txn != 99 {
			t.Fatalf("post-corruption append lost: %d records", len(all))
		}
	})
}

// readSegmentFromBytes writes contents to a scratch segment file and runs
// the segment reader over it.
func readSegmentFromBytes(t *testing.T, contents []byte) ([]Record, int64, int64, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), segmentName(1))
	if err := os.WriteFile(path, contents, 0o644); err != nil {
		t.Fatal(err)
	}
	return readSegment(path)
}

// FuzzSegmentReaderArbitrary feeds entirely arbitrary bytes as a segment
// file: the reader must never panic and must uphold validLen <= fileLen,
// and the device must open and stay usable.
func FuzzSegmentReaderArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildSegmentBytes(1, fuzzPayloads()))
	f.Add(bytes.Repeat([]byte{0xFF}, 200))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, fileLen, err := readSegmentFromBytes(t, data)
		if err != nil {
			t.Fatalf("readSegment errored on arbitrary bytes: %v", err)
		}
		if validLen > fileLen || fileLen != int64(len(data)) {
			t.Fatalf("lengths: valid %d, file %d, data %d", validLen, fileLen, len(data))
		}
		// Whatever was accepted must re-read identically from its own
		// valid prefix (the reader is its own oracle).
		again, againLen, _, err := readSegmentFromBytes(t, data[:validLen])
		if err != nil || againLen != validLen || len(again) != len(recs) {
			t.Fatalf("valid prefix unstable: %d/%d recs, %d/%d bytes, %v",
				len(again), len(recs), againLen, validLen, err)
		}
	})
}
