// Replication support on the durable log device: reading the stream a
// primary ships to followers, appending a shipped stream on a follower, and
// the retention machinery that keeps truncation from deleting a slow
// reader's segments out from under it.
//
// The log IS the replication stream: a follower's log is a byte-identical
// prefix of its primary's, so LSNs agree on both sides, resubscription is
// "start from my durable LSN", and a promoted follower recovers with the
// exact same torn-tail truncation code path as a restarted primary.
package wal

import (
	"errors"
	"fmt"
	"os"
	"sort"
)

// ErrLogTruncated is returned by ReadDurable when the requested start LSN
// precedes the oldest retained record: the prefix a subscriber needs has
// been truncated away, so it must be re-seeded (fresh copy) instead of
// streamed to.
var ErrLogTruncated = errors.New("wal: requested LSN already truncated")

// OldestLSN returns the LSN of the oldest record still retained (equal to
// CurrentLSN when the log is empty or fully truncated).  A subscriber whose
// start LSN precedes this cannot be served by streaming.
func (d *Durable) OldestLSN() LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.mem) > 0 {
		return d.mem[0].LSN
	}
	return d.next
}

// ReadDurable returns durable records starting exactly at from, bounded by
// maxBytes of encoded record size (always at least one record).  A nil
// result with a nil error means the reader is caught up: from is the
// durable horizon.  from must be a record boundary — a follower's durable
// LSN always is, because durability only ever advances whole records.
func (d *Durable) ReadDurable(from LSN, maxBytes int) ([]Record, error) {
	durable := LSN(d.durable.Load())
	if from >= durable {
		return nil, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.mem) == 0 || from < d.mem[0].LSN {
		return nil, fmt.Errorf("%w: want %d, oldest retained %d", ErrLogTruncated, from, d.OldestLSNLocked())
	}
	i := sort.Search(len(d.mem), func(i int) bool { return d.mem[i].LSN >= from })
	if i == len(d.mem) || d.mem[i].LSN != from {
		return nil, fmt.Errorf("wal: LSN %d is not a record boundary", from)
	}
	var out []Record
	bytes := 0
	for ; i < len(d.mem); i++ {
		r := d.mem[i]
		if r.LSN >= durable {
			break
		}
		if len(out) > 0 && bytes+r.encodedSize() > maxBytes {
			break
		}
		out = append(out, r)
		bytes += r.encodedSize()
	}
	return out, nil
}

// RecordsBetween counts retained records with from <= LSN < to (lag
// reporting for replication status).
func (d *Durable) RecordsBetween(from, to LSN) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	i := sort.Search(len(d.mem), func(i int) bool { return d.mem[i].LSN >= from })
	j := sort.Search(len(d.mem), func(i int) bool { return d.mem[i].LSN >= to })
	return j - i
}

// OldestLSNLocked is OldestLSN for callers already holding mu.
func (d *Durable) OldestLSNLocked() LSN {
	if len(d.mem) > 0 {
		return d.mem[0].LSN
	}
	return d.next
}

// AppendShipped appends records shipped from a primary, keeping their
// pre-assigned LSNs.  The batch must start exactly at the local append
// horizon and be internally contiguous — a follower's log is a prefix of
// its primary's, byte for byte, or it is corrupt.  The records become
// durable through the same group-commit flush as local appends; the caller
// flushes (or waits) before acknowledging its durable LSN upstream.
func (d *Durable) AppendShipped(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var total uint64
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("wal: log closed")
	}
	want := d.next
	for i := range recs {
		if recs[i].LSN != want {
			d.mu.Unlock()
			return fmt.Errorf("wal: shipped record %d has LSN %d, want %d (stream not contiguous)", i, recs[i].LSN, want)
		}
		size := LSN(recs[i].encodedSize())
		want += size
		total += uint64(size)
	}
	d.tail = append(d.tail, recs...)
	d.mem = append(d.mem, recs...)
	d.next = want
	d.mu.Unlock()

	d.appends.Add(uint64(len(recs)))
	d.bytes.Add(total)
	d.kick()
	return nil
}

// ResetForSeed discards the entire local log — memory cache, unflushed
// tail, and every on-disk segment — and restarts the append horizon at
// start, the first LSN of an incoming seed stream.  A follower too far
// behind (or on a diverged lineage) calls this before applying SEED
// frames: its history is being replaced wholesale, so nothing local is
// worth keeping.  The caller must have quiesced its own appenders and hold
// no WaitDurable parkers above start (the repl follower flushes
// synchronously before acking, so its durable horizon equals its append
// horizon whenever a re-seed begins).
func (d *Durable) ResetForSeed(start LSN) error {
	d.ioMu.Lock()
	defer d.ioMu.Unlock()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return errors.New("wal: log closed")
	}
	d.tail = nil
	d.mem = nil
	d.next = start
	d.mu.Unlock()

	if d.seg != nil {
		_ = d.seg.Close()
		_ = os.Remove(d.segPath)
		d.seg = nil
	}
	for _, s := range d.closedSegs {
		_ = os.Remove(s.path)
	}
	d.closedSegs = nil
	if err := d.openSegment(start); err != nil {
		return err
	}
	d.durable.Store(uint64(start))
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
	return nil
}

// Pin registers a retention safe point at lsn: Truncate will not discard
// any record at or above the lowest pinned LSN.  Returns a pin id for
// UpdatePin/Unpin.  The replication streamer pins each subscriber's
// position so a checkpoint-driven truncation cannot unlink a segment a
// slow follower still needs.
func (d *Durable) Pin(lsn LSN) int {
	d.pinMu.Lock()
	defer d.pinMu.Unlock()
	if d.pins == nil {
		d.pins = make(map[int]LSN)
	}
	d.pinSeq++
	id := d.pinSeq
	d.pins[id] = lsn
	return id
}

// UpdatePin advances (or moves) an existing pin to lsn.
func (d *Durable) UpdatePin(id int, lsn LSN) {
	d.pinMu.Lock()
	if _, ok := d.pins[id]; ok {
		d.pins[id] = lsn
	}
	d.pinMu.Unlock()
}

// Unpin releases a retention pin.
func (d *Durable) Unpin(id int) {
	d.pinMu.Lock()
	delete(d.pins, id)
	d.pinMu.Unlock()
}

// retentionFloor returns the lowest pinned LSN, or max if nothing is
// pinned.
func (d *Durable) retentionFloor(max LSN) LSN {
	d.pinMu.Lock()
	defer d.pinMu.Unlock()
	floor := max
	for _, lsn := range d.pins {
		if lsn < floor {
			floor = lsn
		}
	}
	return floor
}

// SetRotateHook installs a hook called whenever the active segment rotates:
// the closed segment's path and its [first, last) LSN range.  The hook runs
// on the flush path with the log's I/O lock held, so it must be quick and
// must not call back into the log — copy the path elsewhere (log archival,
// PITR) and return.  Pass nil to clear.
func (d *Durable) SetRotateHook(fn func(path string, first, last LSN)) {
	if fn == nil {
		d.rotateHook.Store(nil)
		return
	}
	d.rotateHook.Store(&fn)
}
