// Durable: the disk-backed, segmented log device with group commit.
//
// The in-memory devices (Consolidated, Naive) simulate durability by
// advancing an atomic — right for the paper's memory-resident experiments,
// disqualifying for a system that must survive kill -9.  Durable puts a real
// log file behind the same Log interface:
//
//   - Appends go to an in-memory tail under a short mutex (the record also
//     stays cached in memory so Records()/recovery analysis never re-read
//     the disk).
//   - A background flush daemon drains the tail, writes the batch to the
//     active segment file in ONE write, fsyncs ONCE, and then advances the
//     durable LSN and wakes every committer waiting at or below it.  That
//     is group commit in the Aether style: the fsync cost is amortized over
//     every transaction that joined the batch while the previous fsync was
//     in flight.
//   - WaitDurable(lsn) is the commit-side half: kick the daemon, then sleep
//     until the durable horizon passes lsn.  N concurrent committers pay
//     ~1 fsync, not N.
//   - SyncEveryCommit mode disables the daemon and makes every WaitDurable
//     perform its own write+fsync — the naive per-transaction-fsync
//     baseline the group-commit benchmark pair compares against.
//
// The log is segmented: the active segment rotates at SegmentBytes, and
// Truncate (driven by checkpointing) unlinks whole segments whose records
// all precede the truncation horizon.  On open, segments are replayed
// sequentially with a per-record CRC; a torn tail record (the crash hit
// mid-write) is cut off at the last valid prefix, which is exactly the
// prefix the flusher had acknowledged.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"plp/internal/cs"
)

// Durable device defaults.
const (
	// DefaultSegmentBytes is the rotation threshold for log segments.
	DefaultSegmentBytes = 16 << 20
	// segmentSuffix names log segment files; the prefix is the first LSN in
	// the segment, in fixed-width hex so lexical order is LSN order.
	segmentSuffix = ".seg"
	// recordHeaderSize is the fixed Marshal header preceding the payload.
	recordHeaderSize = 37
	// recordTrailerSize is the CRC32 trailer framing each on-disk record.
	recordTrailerSize = 4
)

// DurableOptions tunes the disk-backed device.
type DurableOptions struct {
	// SegmentBytes is the segment rotation threshold (default 16 MiB).
	SegmentBytes int64
	// SyncEveryCommit disables the group-commit daemon: every WaitDurable
	// performs its own write+fsync.  This is the ablation baseline for the
	// group-commit benchmark; production configurations leave it false.
	SyncEveryCommit bool
	// CSStats, when set, receives log-manager critical-section reports.
	CSStats *cs.Stats
}

// segmentInfo describes one closed (no longer written) segment.
type segmentInfo struct {
	path  string
	first LSN // LSN of the first record in the segment
	last  LSN // LSN one past the last record's bytes (exclusive end)
}

// Durable is the disk-backed segmented log device.
type Durable struct {
	dir  string
	opts DurableOptions

	// mu guards the append state: LSN assignment, the unflushed tail, the
	// in-memory record cache, and the condition variable committers sleep
	// on.  It is never held across disk I/O.
	mu     sync.Mutex
	cond   *sync.Cond // broadcast whenever the durable horizon advances
	next   LSN        // next LSN to assign
	tail   []Record   // appended but not yet handed to a flush
	mem    []Record   // every live record, LSN order (Records/recovery)
	closed bool

	// ioMu serializes everything that touches the filesystem: batch writes,
	// fsyncs, segment rotation and truncation.  Truncate holds it for its
	// whole critical section so a truncation can never interleave with an
	// in-flight group flush (see Truncate).
	ioMu       sync.Mutex
	seg        *os.File
	segPath    string
	segFirst   LSN
	segSize    int64
	closedSegs []segmentInfo

	durable atomic.Uint64

	// pinMu guards the retention pins (see Pin in repl.go).  A separate
	// mutex so ack-driven pin updates never contend with the append path.
	pinMu  sync.Mutex
	pins   map[int]LSN
	pinSeq int

	// rotateHook, when set, is called with each closed segment (see
	// SetRotateHook in repl.go).
	rotateHook atomic.Pointer[func(path string, first, last LSN)]

	flushReq chan struct{}
	stop     chan struct{}
	done     chan struct{}

	appends   atomic.Uint64
	flushes   atomic.Uint64
	bytes     atomic.Uint64
	truncated atomic.Uint64
}

// NewDurable opens (or creates) a disk-backed log in dir with default
// options and starts its group-commit flush daemon.
func NewDurable(dir string) (*Durable, error) {
	return OpenDurable(dir, DurableOptions{})
}

// OpenDurable opens (or creates) a disk-backed log in dir.  Existing
// segments are scanned sequentially: every CRC-valid record is loaded into
// the in-memory cache and counted durable, and a torn tail (a crash in the
// middle of a batch write) is truncated away.  Unless SyncEveryCommit is
// set, the group-commit flush daemon is started.
func OpenDurable(dir string, opts DurableOptions) (*Durable, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create log dir: %w", err)
	}
	d := &Durable{
		dir:      dir,
		opts:     opts,
		next:     1, // LSN 0 is InvalidLSN
		flushReq: make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	if err := d.load(); err != nil {
		return nil, err
	}
	if !opts.SyncEveryCommit {
		go d.flushLoop()
	} else {
		close(d.done) // no daemon to wait for on Close
	}
	return d, nil
}

// segmentName returns the file name of the segment starting at lsn.
func segmentName(lsn LSN) string {
	return fmt.Sprintf("%016x%s", uint64(lsn), segmentSuffix)
}

// load scans the existing segments, rebuilds the in-memory cache, truncates
// a torn tail and opens the active segment for appending.
func (d *Durable) load() error {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("wal: read log dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // fixed-width hex prefix: lexical order is LSN order

	torn := false
	for _, name := range names {
		path := filepath.Join(d.dir, name)
		if torn {
			// LSN continuity is already broken at an earlier torn tail; a
			// later segment can only hold records the system never
			// acknowledged.  Drop it.
			_ = os.Remove(path)
			continue
		}
		recs, validLen, fileLen, err := readSegment(path)
		if err != nil {
			return err
		}
		if validLen < fileLen {
			// Torn tail: cut the file back to its valid prefix.
			if err := os.Truncate(path, validLen); err != nil {
				return fmt.Errorf("wal: truncate torn segment %s: %w", name, err)
			}
			torn = true
		}
		if len(recs) == 0 && validLen == 0 {
			_ = os.Remove(path)
			continue
		}
		d.mem = append(d.mem, recs...)
	}
	if n := len(d.mem); n > 0 {
		last := d.mem[n-1]
		d.next = last.LSN + LSN(last.encodedSize())
	}
	d.durable.Store(uint64(d.next)) // everything on disk is durable

	// Rebuild the closed-segment index and reopen the last segment for
	// appending (or start fresh).
	names = nil
	entries, err = os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("wal: reread log dir: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segmentSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return d.openSegment(d.next)
	}
	for i, name := range names {
		path := filepath.Join(d.dir, name)
		var first uint64
		if _, err := fmt.Sscanf(name, "%016x", &first); err != nil {
			return fmt.Errorf("wal: malformed segment name %q", name)
		}
		if i == len(names)-1 {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("wal: reopen segment: %w", err)
			}
			st, err := f.Stat()
			if err != nil {
				_ = f.Close()
				return err
			}
			d.seg, d.segPath, d.segFirst, d.segSize = f, path, LSN(first), st.Size()
			continue
		}
		// A closed segment's exclusive end is the next segment's first LSN.
		var nextFirst uint64
		if _, err := fmt.Sscanf(names[i+1], "%016x", &nextFirst); err != nil {
			return fmt.Errorf("wal: malformed segment name %q", names[i+1])
		}
		d.closedSegs = append(d.closedSegs, segmentInfo{path: path, first: LSN(first), last: LSN(nextFirst)})
	}
	return nil
}

// readSegment sequentially decodes one segment file.  It returns the valid
// records, the byte length of the valid prefix, and the file's total length;
// validLen < fileLen means the tail is torn or corrupt.
func readSegment(path string) (recs []Record, validLen, fileLen int64, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	fileLen = int64(len(buf))
	off := int64(0)
	for {
		rest := buf[off:]
		if len(rest) < recordHeaderSize+recordTrailerSize {
			break
		}
		payloadLen := int64(binary.LittleEndian.Uint32(rest[33:]))
		frame := int64(recordHeaderSize) + payloadLen + recordTrailerSize
		if int64(len(rest)) < frame {
			break
		}
		body := rest[:frame-recordTrailerSize]
		want := binary.LittleEndian.Uint32(rest[frame-recordTrailerSize:])
		if crc32.ChecksumIEEE(body) != want {
			break
		}
		rec, derr := UnmarshalRecord(body)
		if derr != nil {
			break
		}
		if n := len(recs); n > 0 {
			prev := recs[n-1]
			if rec.LSN != prev.LSN+LSN(prev.encodedSize()) {
				break // continuity violation: treat as corruption
			}
		}
		recs = append(recs, rec)
		off += frame
	}
	return recs, off, fileLen, nil
}

// openSegment creates a fresh segment whose first record will be at lsn and
// makes it the active segment.  Caller must hold ioMu (or be single-threaded
// during open).
func (d *Durable) openSegment(lsn LSN) error {
	path := filepath.Join(d.dir, segmentName(lsn))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	// fsync the directory so the new segment's name survives a crash.
	if dirf, derr := os.Open(d.dir); derr == nil {
		_ = dirf.Sync()
		_ = dirf.Close()
	}
	d.seg, d.segPath, d.segFirst, d.segSize = f, path, lsn, 0
	return nil
}

// Append implements Log.  The record is assigned its LSN and parked on the
// in-memory tail; the flush daemon is kicked so durability proceeds in the
// background even for committers that never wait (LazyCommit).
func (d *Durable) Append(r *Record) LSN {
	size := LSN(r.encodedSize())
	contended := !d.mu.TryLock()
	if contended {
		d.mu.Lock()
	}
	r.LSN = d.next
	d.next += size
	d.tail = append(d.tail, *r)
	d.mem = append(d.mem, *r)
	d.mu.Unlock()

	d.opts.CSStats.RecordClass(cs.LogMgr, cs.Fixed, contended)
	d.appends.Add(1)
	d.bytes.Add(uint64(size))
	d.kick()
	return r.LSN
}

// kick wakes the flush daemon without blocking.
func (d *Durable) kick() {
	if d.opts.SyncEveryCommit {
		return
	}
	select {
	case d.flushReq <- struct{}{}:
	default:
	}
}

// flushLoop is the group-commit daemon: each iteration drains everything
// appended so far into one write+fsync.  While an fsync is in flight new
// appends pile up on the tail, so the next iteration flushes them as one
// batch — the batch size adapts to the fsync latency by construction.
func (d *Durable) flushLoop() {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			d.flushOnce(false) // final drain so Close loses nothing
			return
		case <-d.flushReq:
			d.flushOnce(false)
		}
	}
}

// flushOnce writes every outstanding tail record to the active segment,
// fsyncs, advances the durable horizon and wakes waiting committers.  It is
// called by the daemon (group mode) or inline by WaitDurable/Flush
// (SyncEveryCommit mode), always serialized on ioMu.
//
// forceSync makes an empty-batch call fsync anyway: the SyncEveryCommit
// baseline must pay one fsync per commit even when a racing committer's
// flush already wrote this commit's bytes — otherwise the "per-transaction
// fsync" ablation would itself batch, and the group-commit comparison
// would measure nothing.
func (d *Durable) flushOnce(forceSync bool) {
	d.ioMu.Lock()
	defer d.ioMu.Unlock()

	if d.seg == nil {
		return // closed: appends past the final drain are not durable
	}

	d.mu.Lock()
	batch := d.tail
	d.tail = nil
	target := d.next // tail covered [durable, next): target is exact
	d.mu.Unlock()

	if len(batch) == 0 {
		if forceSync {
			if err := d.seg.Sync(); err != nil {
				d.fail(err)
			}
			d.flushes.Add(1)
		}
		return
	}

	// Encode the whole batch into one buffer, splitting at segment
	// rotation points.
	var buf []byte
	for i := range batch {
		r := &batch[i]
		if d.segSize > 0 && d.segSize+int64(len(buf)) >= d.opts.SegmentBytes {
			// Rotate: flush what we have into the old segment first.
			if err := d.writeAndSync(buf); err != nil {
				d.fail(err)
				return
			}
			buf = buf[:0]
			d.closedSegs = append(d.closedSegs, segmentInfo{path: d.segPath, first: d.segFirst, last: r.LSN})
			_ = d.seg.Close()
			if hook := d.rotateHook.Load(); hook != nil {
				(*hook)(d.segPath, d.segFirst, r.LSN)
			}
			if err := d.openSegment(r.LSN); err != nil {
				d.fail(err)
				return
			}
		}
		body := r.Marshal()
		var crc [recordTrailerSize]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
		buf = append(buf, body...)
		buf = append(buf, crc[:]...)
	}
	if err := d.writeAndSync(buf); err != nil {
		d.fail(err)
		return
	}
	d.flushes.Add(1)

	d.advanceDurable(target)
}

// writeAndSync appends buf to the active segment and fsyncs it.
func (d *Durable) writeAndSync(buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	if _, err := d.seg.Write(buf); err != nil {
		return err
	}
	if err := d.seg.Sync(); err != nil {
		return err
	}
	d.segSize += int64(len(buf))
	return nil
}

// advanceDurable moves the durable horizon monotonically forward to target
// and wakes every waiting committer.
func (d *Durable) advanceDurable(target LSN) {
	for {
		cur := d.durable.Load()
		if uint64(target) <= cur {
			break
		}
		if d.durable.CompareAndSwap(cur, uint64(target)) {
			break
		}
	}
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()
}

// fail marks a disk failure.  There is no good recovery from a log device
// that cannot write: the invariant "acknowledged means durable" can no
// longer be kept, so the device panics rather than acknowledge silently
// lost commits.
func (d *Durable) fail(err error) {
	panic(fmt.Sprintf("wal: durable log write failed: %v", err))
}

// WaitDurable implements Log: block until the record appended at lsn is
// durable.  In group mode this is the committer half of group commit — kick
// the daemon, sleep, and wake together with every other committer the same
// fsync covered.  In SyncEveryCommit mode each caller performs its own
// write+fsync (the ablation baseline).
func (d *Durable) WaitDurable(lsn LSN) LSN {
	if d.opts.SyncEveryCommit {
		// No fast path: the per-transaction-fsync baseline pays its own
		// fsync for every commit, covered or not.
		d.flushOnce(true)
		return LSN(d.durable.Load())
	}
	if LSN(d.durable.Load()) > lsn {
		return LSN(d.durable.Load())
	}
	d.kick()
	d.mu.Lock()
	for LSN(d.durable.Load()) <= lsn && !d.closed {
		d.cond.Wait()
	}
	d.mu.Unlock()
	return LSN(d.durable.Load())
}

// Flush implements Log: make everything appended so far durable.  upto is a
// lower bound; the disk device always flushes the full tail, which covers
// it.
func (d *Durable) Flush(upto LSN) LSN {
	d.mu.Lock()
	target := d.next
	closed := d.closed
	d.mu.Unlock()
	if closed || LSN(d.durable.Load()) >= target {
		return LSN(d.durable.Load())
	}
	if d.opts.SyncEveryCommit {
		d.flushOnce(false)
		return LSN(d.durable.Load())
	}
	d.kick()
	d.mu.Lock()
	for LSN(d.durable.Load()) < target && !d.closed {
		d.cond.Wait()
	}
	d.mu.Unlock()
	return LSN(d.durable.Load())
}

// DurableLSN implements Log.
func (d *Durable) DurableLSN() LSN { return LSN(d.durable.Load()) }

// CurrentLSN implements Log.
func (d *Durable) CurrentLSN() LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.next
}

// Records implements Log.
func (d *Durable) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Record(nil), d.mem...)
}

// Truncate implements Log.  Only whole closed segments strictly below the
// (durable-clamped) horizon are unlinked; the in-memory cache drops the
// matching prefix.  Holding ioMu for the whole operation means a truncation
// can never interleave with an in-flight group flush: the flusher's
// write → fsync → advance-durable sequence and the truncation's
// clamp → unlink sequence are atomic with respect to each other, so the
// durable LSN observed by committers never regresses (see
// TestTruncateDuringGroupFlushNeverRegressesDurable).
func (d *Durable) Truncate(upto LSN) int {
	d.ioMu.Lock()
	defer d.ioMu.Unlock()

	if dur := LSN(d.durable.Load()); upto > dur {
		upto = dur
	}
	// Retention pins: never discard a record a live subscriber (or other
	// pinned reader) still needs.
	upto = d.retentionFloor(upto)

	// Unlink whole segments whose every record precedes upto.
	kept := d.closedSegs[:0]
	for _, s := range d.closedSegs {
		if s.last <= upto {
			_ = os.Remove(s.path)
			continue
		}
		kept = append(kept, s)
	}
	d.closedSegs = kept

	// Drop the in-memory prefix (this is what recovery analysis reads, so
	// it must agree with the Log-interface contract even where the disk
	// still holds a partially-truncatable segment).
	d.mu.Lock()
	i := sort.Search(len(d.mem), func(i int) bool { return d.mem[i].LSN >= upto })
	dropped := i
	if i > 0 {
		d.mem = append([]Record(nil), d.mem[i:]...)
	}
	d.mu.Unlock()

	d.truncated.Add(uint64(dropped))
	return dropped
}

// Stats implements Log.
func (d *Durable) Stats() Stats {
	return Stats{
		Appends:     d.appends.Load(),
		Flushes:     d.flushes.Load(),
		BytesLogged: d.bytes.Load(),
		Truncated:   d.truncated.Load(),
	}
}

// Close flushes the outstanding tail, stops the daemon and closes the
// active segment.  The engine calls it on graceful shutdown so the final
// batch of lazy commits reaches the disk.
func (d *Durable) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()

	if d.opts.SyncEveryCommit {
		d.flushOnce(false)
	} else {
		close(d.stop)
		<-d.done // daemon does the final drain
	}
	// Wake anything still parked in WaitDurable.
	d.mu.Lock()
	d.cond.Broadcast()
	d.mu.Unlock()

	d.ioMu.Lock()
	defer d.ioMu.Unlock()
	if d.seg != nil {
		err := d.seg.Close()
		d.seg = nil
		return err
	}
	return nil
}

// Dir returns the directory holding the log segments.
func (d *Durable) Dir() string { return d.dir }
