package wal

import (
	"sync"
	"testing"

	"plp/internal/cs"
	"plp/internal/page"
)

func testLogs(cstats *cs.Stats) map[string]Log {
	return map[string]Log{
		"consolidated": NewConsolidated(cstats),
		"naive":        NewNaive(cstats),
	}
}

func TestAppendAssignsIncreasingLSNs(t *testing.T) {
	for name, l := range testLogs(&cs.Stats{}) {
		t.Run(name, func(t *testing.T) {
			var prev LSN
			for i := 0; i < 100; i++ {
				rec := &Record{Txn: uint64(i), Type: RecUpdate, Page: page.ID(i), Payload: []byte("p")}
				lsn := l.Append(rec)
				if lsn <= prev {
					t.Fatalf("LSN not increasing: %d after %d", lsn, prev)
				}
				prev = lsn
			}
			if l.CurrentLSN() <= prev {
				t.Fatal("current LSN should exceed the last appended record")
			}
		})
	}
}

func TestFlushAdvancesDurableLSN(t *testing.T) {
	for name, l := range testLogs(&cs.Stats{}) {
		t.Run(name, func(t *testing.T) {
			lsn := l.Append(&Record{Txn: 1, Type: RecCommit})
			if l.DurableLSN() >= lsn+LSN(1) {
				t.Fatal("durable LSN ahead of appends")
			}
			d := l.Flush(lsn + 1)
			if d < lsn {
				t.Fatalf("flush did not reach %d: %d", lsn, d)
			}
			if l.DurableLSN() != d {
				t.Fatal("durable LSN inconsistent")
			}
			// Flushing backwards must not regress.
			if l.Flush(1) < d {
				t.Fatal("durable LSN regressed")
			}
		})
	}
}

func TestRecordsReturnedInOrder(t *testing.T) {
	for name, l := range testLogs(&cs.Stats{}) {
		t.Run(name, func(t *testing.T) {
			const n = 200
			for i := 0; i < n; i++ {
				l.Append(&Record{Txn: uint64(i), Type: RecInsert})
			}
			recs := l.Records()
			if len(recs) != n {
				t.Fatalf("got %d records", len(recs))
			}
			for i := 1; i < len(recs); i++ {
				if recs[i].LSN <= recs[i-1].LSN {
					t.Fatal("records not sorted by LSN")
				}
			}
		})
	}
}

func TestConcurrentAppendsNoLostRecords(t *testing.T) {
	for name, l := range testLogs(&cs.Stats{}) {
		t.Run(name, func(t *testing.T) {
			const goroutines = 8
			const per = 500
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						l.Append(&Record{Txn: uint64(g), Type: RecUpdate, Payload: []byte{byte(i)}})
					}
				}(g)
			}
			wg.Wait()
			if got := l.Stats().Appends; got != goroutines*per {
				t.Fatalf("lost appends: %d", got)
			}
			recs := l.Records()
			if len(recs) != goroutines*per {
				t.Fatalf("records lost: %d", len(recs))
			}
			seen := make(map[LSN]bool, len(recs))
			for _, r := range recs {
				if seen[r.LSN] {
					t.Fatalf("duplicate LSN %d", r.LSN)
				}
				seen[r.LSN] = true
			}
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := Record{LSN: 100, PrevLSN: 50, Txn: 7, Type: RecDelete, Page: 42, Payload: []byte("payload")}
	got, err := UnmarshalRecord(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != r.LSN || got.PrevLSN != r.PrevLSN || got.Txn != r.Txn ||
		got.Type != r.Type || got.Page != r.Page || string(got.Payload) != "payload" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := UnmarshalRecord([]byte{1, 2, 3}); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestLogManagerCriticalSectionClassification(t *testing.T) {
	cstats := &cs.Stats{}
	l := NewConsolidated(cstats)
	for i := 0; i < 50; i++ {
		l.Append(&Record{Txn: 1, Type: RecUpdate})
	}
	snap := cstats.Snapshot()
	if snap.Entered[cs.LogMgr] != 50 {
		t.Fatalf("log manager CS not recorded: %d", snap.Entered[cs.LogMgr])
	}
	if snap.ByClass[cs.Composable] != 50 {
		t.Fatalf("consolidated appends should be composable: %+v", snap.ByClass)
	}

	cstats2 := &cs.Stats{}
	n := NewNaive(cstats2)
	for i := 0; i < 50; i++ {
		n.Append(&Record{Txn: 1, Type: RecUpdate})
	}
	if cstats2.Snapshot().ByClass[cs.Unscalable] != 50 {
		t.Fatal("naive appends should be unscalable")
	}
}

func TestRecordTypeLabels(t *testing.T) {
	for _, ty := range []RecordType{RecInsert, RecDelete, RecUpdate, RecCommit, RecAbort, RecSMO, RecRepartition, RecCheckpoint} {
		if ty.String() == "" {
			t.Fatalf("missing label for %d", ty)
		}
	}
}
