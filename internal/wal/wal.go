// Package wal implements the write-ahead log.
//
// Two log-buffer implementations are provided behind the Log interface:
//
//   - Consolidated: an Aether-style consolidated log buffer [Johnson et al.,
//     PVLDB 2010].  Threads reserve log space with a single atomic
//     fetch-and-add and copy their records into independent buffer slots, so
//     the append path is a composable critical section: adding threads does
//     not add contention.  This is the configuration used by all systems in
//     the paper (Section 4.1 notes every prototype incorporates the logging
//     optimizations of Aether).
//   - Naive: a single mutex around the buffer, provided for the ablation
//     benchmark that shows why a scalable log buffer matters.
//
// The log is kept in memory (the paper's experiments are memory resident);
// a background flusher advances the durable LSN to simulate group commit.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"plp/internal/cs"
	"plp/internal/page"
)

// LSN is a log sequence number: a byte offset into the conceptual log file.
type LSN uint64

// InvalidLSN is the zero LSN, used for "no LSN".
const InvalidLSN LSN = 0

// RecordType identifies the kind of a log record.
type RecordType uint8

// Log record types.
const (
	RecInsert RecordType = iota + 1
	RecDelete
	RecUpdate
	RecCommit
	RecAbort
	RecSMO         // B+Tree structure modification (split/merge)
	RecRepartition // MRBTree slice/meld
	RecCheckpoint
	RecPrepare // txn prepared for a cross-shard commit; payload = gid
	RecDecide  // coordinator's durable commit decision; payload = gid
)

// String returns a short label for the record type.
func (t RecordType) String() string {
	switch t {
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecUpdate:
		return "update"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecSMO:
		return "smo"
	case RecRepartition:
		return "repartition"
	case RecCheckpoint:
		return "checkpoint"
	case RecPrepare:
		return "prepare"
	case RecDecide:
		return "decide"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is a single log record.
type Record struct {
	LSN     LSN
	PrevLSN LSN // previous record of the same transaction
	Txn     uint64
	Type    RecordType
	Page    page.ID
	Payload []byte
}

// encodedSize returns the number of log bytes the record occupies.
func (r *Record) encodedSize() int {
	return 8 + 8 + 8 + 1 + 8 + 4 + len(r.Payload)
}

// EncodedSize returns the number of log bytes the record occupies; a
// record's exclusive end LSN is r.LSN + EncodedSize().  Replication uses
// it to advance stream cursors.
func (r *Record) EncodedSize() int { return r.encodedSize() }

// Marshal encodes the record (without its own LSN, which is implied by its
// position in the log).
func (r *Record) Marshal() []byte {
	buf := make([]byte, r.encodedSize())
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.LSN))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(buf[16:], r.Txn)
	buf[24] = byte(r.Type)
	binary.LittleEndian.PutUint64(buf[25:], uint64(r.Page))
	binary.LittleEndian.PutUint32(buf[33:], uint32(len(r.Payload)))
	copy(buf[37:], r.Payload)
	return buf
}

// UnmarshalRecord decodes a record previously produced by Marshal.
func UnmarshalRecord(buf []byte) (Record, error) {
	if len(buf) < 37 {
		return Record{}, errors.New("wal: short record")
	}
	r := Record{
		LSN:     LSN(binary.LittleEndian.Uint64(buf[0:])),
		PrevLSN: LSN(binary.LittleEndian.Uint64(buf[8:])),
		Txn:     binary.LittleEndian.Uint64(buf[16:]),
		Type:    RecordType(buf[24]),
		Page:    page.ID(binary.LittleEndian.Uint64(buf[25:])),
	}
	n := binary.LittleEndian.Uint32(buf[33:])
	if len(buf) < 37+int(n) {
		return Record{}, errors.New("wal: truncated payload")
	}
	r.Payload = append([]byte(nil), buf[37:37+int(n)]...)
	return r, nil
}

// Log is the interface every log-device implementation satisfies: the two
// in-memory buffers in this file and the disk-backed segmented device in
// durable.go.
type Log interface {
	// Append adds the record to the log and returns its LSN.
	Append(r *Record) LSN
	// Flush makes every record with LSN <= upto durable and returns the new
	// durable LSN.
	Flush(upto LSN) LSN
	// WaitDurable blocks until the record appended at lsn is durable (the
	// durable horizon has advanced past lsn) and returns the durable LSN.
	// On the in-memory devices it is equivalent to Flush; on the
	// disk-backed device concurrent waiters ride the same group fsync,
	// which is what makes group commit group.
	WaitDurable(lsn LSN) LSN
	// DurableLSN returns the highest durable LSN.
	DurableLSN() LSN
	// CurrentLSN returns the LSN that the next appended record will receive.
	CurrentLSN() LSN
	// Records returns a copy of all appended records in LSN order (used by
	// recovery-style consistency checks and tests).
	Records() []Record
	// Truncate discards every record with LSN < upto and returns the number
	// of records dropped.  Checkpointing uses it to reclaim the log prefix
	// that restart recovery no longer needs; upto must not exceed the
	// durable LSN.
	Truncate(upto LSN) int
	// Stats returns append/flush counters.
	Stats() Stats
}

// Stats reports log activity.
type Stats struct {
	Appends     uint64
	Flushes     uint64
	BytesLogged uint64
	// Truncated counts records discarded by Truncate.
	Truncated uint64
}

// shardCount is the number of independent slots in the consolidated buffer.
const shardCount = 64

// shardChunk is the number of records per shard storage chunk.  Chunked
// storage keeps Append O(1): a growing flat slice would re-zero and copy
// the whole shard on every doubling, which dominates CPU once the log holds
// millions of records.
const shardChunk = 1024

// Consolidated is the Aether-style consolidated log buffer.
type Consolidated struct {
	next    atomic.Uint64 // next LSN to hand out (byte offset)
	durable atomic.Uint64

	shards [shardCount]struct {
		mu     sync.Mutex
		chunks [][]Record
	}

	appends   atomic.Uint64
	flushes   atomic.Uint64
	bytes     atomic.Uint64
	truncated atomic.Uint64

	cstats *cs.Stats
}

// NewConsolidated returns a consolidated log buffer reporting critical
// sections into cstats (may be nil).
func NewConsolidated(cstats *cs.Stats) *Consolidated {
	l := &Consolidated{cstats: cstats}
	l.next.Store(1) // LSN 0 is InvalidLSN
	return l
}

// Append implements Log.  Space is reserved with one atomic add (the
// composable part); the copy into the shard is protected by a short mutex
// that only threads hashing to the same shard can contend on.
func (l *Consolidated) Append(r *Record) LSN {
	size := uint64(r.encodedSize())
	off := l.next.Add(size) - size
	r.LSN = LSN(off)

	shard := &l.shards[off%shardCount]
	contended := !shard.mu.TryLock()
	if contended {
		shard.mu.Lock()
	}
	n := len(shard.chunks)
	if n == 0 || len(shard.chunks[n-1]) == shardChunk {
		shard.chunks = append(shard.chunks, make([]Record, 0, shardChunk))
		n++
	}
	shard.chunks[n-1] = append(shard.chunks[n-1], *r)
	shard.mu.Unlock()

	l.cstats.RecordClass(cs.LogMgr, cs.Composable, contended)
	l.appends.Add(1)
	l.bytes.Add(size)
	return r.LSN
}

// Flush implements Log.
func (l *Consolidated) Flush(upto LSN) LSN {
	// In-memory log: flushing is advancing the durable horizon.
	for {
		cur := l.durable.Load()
		target := uint64(upto)
		if next := l.next.Load(); target > next {
			target = next
		}
		if target <= cur {
			break
		}
		if l.durable.CompareAndSwap(cur, target) {
			break
		}
	}
	l.flushes.Add(1)
	return LSN(l.durable.Load())
}

// WaitDurable implements Log.  The in-memory device "flushes" instantly, so
// waiting degenerates to advancing the durable horizon past lsn.
func (l *Consolidated) WaitDurable(lsn LSN) LSN { return l.Flush(LSN(l.next.Load())) }

// DurableLSN implements Log.
func (l *Consolidated) DurableLSN() LSN { return LSN(l.durable.Load()) }

// CurrentLSN implements Log.
func (l *Consolidated) CurrentLSN() LSN { return LSN(l.next.Load()) }

// Records implements Log.
func (l *Consolidated) Records() []Record {
	var all []Record
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		for _, c := range s.chunks {
			all = append(all, c...)
		}
		s.mu.Unlock()
	}
	sortRecords(all)
	return all
}

// Truncate implements Log.  Records beyond the durable horizon are never
// dropped.
func (l *Consolidated) Truncate(upto LSN) int {
	if d := LSN(l.durable.Load()); upto > d {
		upto = d
	}
	dropped := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		var kept [][]Record
		for _, c := range s.chunks {
			for _, r := range c {
				if r.LSN < upto {
					dropped++
					continue
				}
				n := len(kept)
				if n == 0 || len(kept[n-1]) == shardChunk {
					kept = append(kept, make([]Record, 0, shardChunk))
					n++
				}
				kept[n-1] = append(kept[n-1], r)
			}
		}
		s.chunks = kept
		s.mu.Unlock()
	}
	l.truncated.Add(uint64(dropped))
	return dropped
}

// Stats implements Log.
func (l *Consolidated) Stats() Stats {
	return Stats{
		Appends:     l.appends.Load(),
		Flushes:     l.flushes.Load(),
		BytesLogged: l.bytes.Load(),
		Truncated:   l.truncated.Load(),
	}
}

// Naive is a single-mutex log buffer, used only for the ablation benchmark
// that quantifies the benefit of the consolidated buffer.
type Naive struct {
	mu      sync.Mutex
	records []Record
	next    LSN
	durable LSN

	appends   atomic.Uint64
	flushes   atomic.Uint64
	bytes     atomic.Uint64
	truncated atomic.Uint64

	cstats *cs.Stats
}

// NewNaive returns a naive single-mutex log buffer.
func NewNaive(cstats *cs.Stats) *Naive {
	return &Naive{next: 1, cstats: cstats}
}

// Append implements Log.
func (l *Naive) Append(r *Record) LSN {
	size := LSN(r.encodedSize())
	contended := !l.mu.TryLock()
	if contended {
		l.mu.Lock()
	}
	r.LSN = l.next
	l.next += size
	l.records = append(l.records, *r)
	l.mu.Unlock()

	l.cstats.RecordClass(cs.LogMgr, cs.Unscalable, contended)
	l.appends.Add(1)
	l.bytes.Add(uint64(size))
	return r.LSN
}

// Flush implements Log.
func (l *Naive) Flush(upto LSN) LSN {
	l.mu.Lock()
	if upto > l.next {
		upto = l.next
	}
	if upto > l.durable {
		l.durable = upto
	}
	d := l.durable
	l.mu.Unlock()
	l.flushes.Add(1)
	return d
}

// WaitDurable implements Log.
func (l *Naive) WaitDurable(lsn LSN) LSN { return l.Flush(l.CurrentLSN()) }

// DurableLSN implements Log.
func (l *Naive) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// CurrentLSN implements Log.
func (l *Naive) CurrentLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Records implements Log.
func (l *Naive) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]Record(nil), l.records...)
	sortRecords(out)
	return out
}

// Truncate implements Log.
func (l *Naive) Truncate(upto LSN) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upto > l.durable {
		upto = l.durable
	}
	kept := l.records[:0]
	dropped := 0
	for _, r := range l.records {
		if r.LSN < upto {
			dropped++
			continue
		}
		kept = append(kept, r)
	}
	l.records = kept
	l.truncated.Add(uint64(dropped))
	return dropped
}

// Stats implements Log.
func (l *Naive) Stats() Stats {
	return Stats{
		Appends:     l.appends.Load(),
		Flushes:     l.flushes.Load(),
		BytesLogged: l.bytes.Load(),
		Truncated:   l.truncated.Load(),
	}
}

// sortRecords orders records by LSN.
func sortRecords(rs []Record) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].LSN < rs[j].LSN })
}
