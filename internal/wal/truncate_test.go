package wal

import (
	"testing"
)

// fillLog appends n update records and flushes everything.
func fillLog(l Log, n int) []LSN {
	var lsns []LSN
	for i := 0; i < n; i++ {
		lsn := l.Append(&Record{Txn: uint64(i + 1), Type: RecUpdate, Payload: []byte("payload")})
		lsns = append(lsns, lsn)
	}
	l.Flush(l.CurrentLSN())
	return lsns
}

func TestTruncateDropsPrefix(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func() Log
	}{
		{"consolidated", func() Log { return NewConsolidated(nil) }},
		{"naive", func() Log { return NewNaive(nil) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			l := mk.new()
			lsns := fillLog(l, 100)
			cut := lsns[60]
			dropped := l.Truncate(cut)
			if dropped != 60 {
				t.Fatalf("dropped %d records, want 60", dropped)
			}
			recs := l.Records()
			if len(recs) != 40 {
				t.Fatalf("%d records remain, want 40", len(recs))
			}
			for _, r := range recs {
				if r.LSN < cut {
					t.Fatalf("record with LSN %d < cut %d survived truncation", r.LSN, cut)
				}
			}
			if st := l.Stats(); st.Truncated != 60 {
				t.Fatalf("stats report %d truncated, want 60", st.Truncated)
			}
			// Truncating again at the same point is a no-op.
			if l.Truncate(cut) != 0 {
				t.Fatal("second truncation dropped records")
			}
			// Appending after truncation keeps assigning increasing LSNs.
			newLSN := l.Append(&Record{Txn: 999, Type: RecCommit})
			if newLSN <= lsns[len(lsns)-1] {
				t.Fatal("LSNs went backwards after truncation")
			}
		})
	}
}

func TestTruncateNeverPassesDurable(t *testing.T) {
	l := NewConsolidated(nil)
	var last LSN
	for i := 0; i < 10; i++ {
		last = l.Append(&Record{Txn: uint64(i + 1), Type: RecUpdate})
	}
	// Nothing has been flushed: durable is still 0, so truncation must not
	// remove anything even when asked to drop everything.
	if dropped := l.Truncate(last + 1000); dropped != 0 {
		t.Fatalf("truncated %d records beyond the durable horizon", dropped)
	}
	l.Flush(last)
	if dropped := l.Truncate(last + 1000); dropped != 9 {
		// All records strictly below `last` are droppable once durable.
		t.Fatalf("dropped %d records after flush, want 9", dropped)
	}
}
