package wal

import (
	"testing"

	"plp/internal/cs"
)

// BenchmarkAppendConsolidated measures the Aether-style append path under
// full parallelism; adding goroutines should not add contention
// (a composable critical section).
func BenchmarkAppendConsolidated(b *testing.B) {
	l := NewConsolidated(&cs.Stats{})
	payload := make([]byte, 48)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Append(&Record{Txn: 1, Type: RecUpdate, Payload: payload})
		}
	})
}

// BenchmarkAppendNaive measures the single-mutex baseline used by the
// log-buffer ablation.
func BenchmarkAppendNaive(b *testing.B) {
	l := NewNaive(&cs.Stats{})
	payload := make([]byte, 48)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Append(&Record{Txn: 1, Type: RecUpdate, Payload: payload})
		}
	})
}
