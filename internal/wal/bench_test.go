package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"plp/internal/cs"
)

// BenchmarkAppendConsolidated measures the Aether-style append path under
// full parallelism; adding goroutines should not add contention
// (a composable critical section).
func BenchmarkAppendConsolidated(b *testing.B) {
	l := NewConsolidated(&cs.Stats{})
	payload := make([]byte, 48)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Append(&Record{Txn: 1, Type: RecUpdate, Payload: payload})
		}
	})
}

// BenchmarkAppendNaive measures the single-mutex baseline used by the
// log-buffer ablation.
func BenchmarkAppendNaive(b *testing.B) {
	l := NewNaive(&cs.Stats{})
	payload := make([]byte, 48)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Append(&Record{Txn: 1, Type: RecUpdate, Payload: payload})
		}
	})
}

// ----------------------------------------------------------------------
// Group commit vs per-transaction fsync.
//
// The benchmark pair runs the same workload — N concurrent committers,
// each appending an update+commit pair and waiting for durability — on the
// disk-backed device in its two sync modes.  In group mode every waiter
// rides the daemon's shared fsync; in sync-every-commit mode each commit
// pays its own, serialized on the device.  The gap at 16 committers is the
// datapoint TestGroupCommitDatapoint emits for CI.
// ----------------------------------------------------------------------

// commitConcurrency is the committer count of the benchmark pair; the
// acceptance bar for group commit is "beats per-commit fsync at >= 16".
const commitConcurrency = 16

// runCommitters drives total commits through the log from n concurrent
// committers, each waiting for durability.
func runCommitters(l Log, n, total int) {
	var wg sync.WaitGroup
	per := total / n
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte("group-commit-bench-payload")
			for i := 0; i < per; i++ {
				id := uint64(g*total + i + 1)
				l.Append(&Record{Txn: id, Type: RecUpdate, Payload: payload})
				lsn := l.Append(&Record{Txn: id, Type: RecCommit})
				l.WaitDurable(lsn)
			}
		}(g)
	}
	wg.Wait()
}

// benchDurableCommits measures committed transactions with the given sync
// mode at commitConcurrency concurrent committers.
func benchDurableCommits(b *testing.B, syncEvery bool) {
	l, err := OpenDurable(b.TempDir(), DurableOptions{SyncEveryCommit: syncEvery})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ResetTimer()
	runCommitters(l, commitConcurrency, b.N)
}

// BenchmarkGroupCommit16 measures the production configuration: 16
// concurrent committers riding the group-commit daemon's shared fsyncs.
func BenchmarkGroupCommit16(b *testing.B) { benchDurableCommits(b, false) }

// BenchmarkPerCommitFsync16 measures the naive baseline: 16 concurrent
// committers each performing their own fsync.
func BenchmarkPerCommitFsync16(b *testing.B) { benchDurableCommits(b, true) }

// measureCommitThroughput returns committed transactions per second for
// the given sync mode at commitConcurrency committers.
func measureCommitThroughput(tb testing.TB, syncEvery bool, d time.Duration) float64 {
	tb.Helper()
	l, err := OpenDurable(tb.TempDir(), DurableOptions{SyncEveryCommit: syncEvery})
	if err != nil {
		tb.Fatal(err)
	}
	defer l.Close()
	deadline := time.Now().Add(d)
	var done int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < commitConcurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := []byte("group-commit-bench-payload")
			n := int64(0)
			for i := 0; time.Now().Before(deadline); i++ {
				id := uint64(g*1_000_000 + i + 1)
				l.Append(&Record{Txn: id, Type: RecUpdate, Payload: payload})
				lsn := l.Append(&Record{Txn: id, Type: RecCommit})
				l.WaitDurable(lsn)
				n++
			}
			mu.Lock()
			done += n
			mu.Unlock()
		}(g)
	}
	start := time.Now()
	wg.Wait()
	return float64(done) / time.Since(start).Seconds()
}

// TestGroupCommitDatapoint emits the group-commit vs per-transaction-fsync
// throughput at 16 concurrent committers as a BENCH_JSON line for CI's
// perf trajectory, and asserts the durability design's point: sharing the
// fsync must beat paying one per commit.
func TestGroupCommitDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	perCommit := measureCommitThroughput(t, true, 400*time.Millisecond)
	group := measureCommitThroughput(t, false, 400*time.Millisecond)
	speedup := 0.0
	if perCommit > 0 {
		speedup = group / perCommit
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"wal_commit_%dw\",\"per_commit_fsync_txn_per_s\":%.0f,\"group_commit_txn_per_s\":%.0f,\"speedup\":%.2f}\n",
		commitConcurrency, perCommit, group, speedup)
	if group <= perCommit {
		t.Errorf("group commit (%.0f txn/s) did not beat per-commit fsync (%.0f txn/s) at %d committers",
			group, perCommit, commitConcurrency)
	}
}
