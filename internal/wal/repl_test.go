package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func appendN(t *testing.T, d *Durable, n int, payload int) []LSN {
	t.Helper()
	lsns := make([]LSN, 0, n)
	for i := 0; i < n; i++ {
		r := &Record{Txn: uint64(i), Type: RecInsert, Payload: make([]byte, payload)}
		lsns = append(lsns, d.Append(r))
	}
	d.Flush(d.CurrentLSN())
	return lsns
}

func TestReadDurableFromBoundary(t *testing.T) {
	d, err := NewDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	lsns := appendN(t, d, 10, 8)

	// From the beginning: everything durable comes back in order.
	recs, err := d.ReadDurable(lsns[0], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != lsns[i] {
			t.Fatalf("record %d: LSN %d, want %d", i, r.LSN, lsns[i])
		}
	}

	// From a mid-stream boundary.
	recs, err = d.ReadDurable(lsns[4], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 || recs[0].LSN != lsns[4] {
		t.Fatalf("mid-stream read: got %d records starting %d", len(recs), recs[0].LSN)
	}

	// Caught up: durable horizon returns nil, nil.
	recs, err = d.ReadDurable(d.DurableLSN(), 1<<20)
	if err != nil || recs != nil {
		t.Fatalf("caught-up read: recs=%v err=%v", recs, err)
	}

	// Not a boundary.
	if _, err := d.ReadDurable(lsns[4]+1, 1<<20); err == nil {
		t.Fatal("mid-record LSN accepted")
	}
}

func TestReadDurableRespectsMaxBytes(t *testing.T) {
	d, err := NewDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	lsns := appendN(t, d, 10, 100)

	one := (&Record{Payload: make([]byte, 100)}).encodedSize()
	recs, err := d.ReadDurable(lsns[0], 2*one+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records under a 2-record byte cap", len(recs))
	}
	// A cap below one record still returns one record (progress guarantee).
	recs, err = d.ReadDurable(lsns[0], 1)
	if err != nil || len(recs) != 1 {
		t.Fatalf("tiny cap: recs=%d err=%v", len(recs), err)
	}
}

func TestReadDurableAfterTruncation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	lsns := appendN(t, d, 50, 64)
	d.Truncate(lsns[30])

	if _, err := d.ReadDurable(lsns[0], 1<<20); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("read below truncation horizon: err=%v, want ErrLogTruncated", err)
	}
	if oldest := d.OldestLSN(); oldest < lsns[30] {
		t.Fatalf("OldestLSN %d below truncation point %d", oldest, lsns[30])
	}
	if _, err := d.ReadDurable(d.OldestLSN(), 1<<20); err != nil {
		t.Fatalf("read from oldest retained: %v", err)
	}
}

func TestPinBlocksTruncation(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	lsns := appendN(t, d, 50, 64)

	pin := d.Pin(lsns[10])
	d.Truncate(lsns[40])
	if oldest := d.OldestLSN(); oldest > lsns[10] {
		t.Fatalf("pinned records truncated: oldest %d > pin %d", oldest, lsns[10])
	}
	// The pinned reader must still be able to stream from its pin.
	if _, err := d.ReadDurable(lsns[10], 1<<20); err != nil {
		t.Fatalf("read from pin after truncate: %v", err)
	}

	// Advancing the pin lets a later truncation reclaim the prefix.
	d.UpdatePin(pin, lsns[40])
	d.Truncate(lsns[40])
	if _, err := d.ReadDurable(lsns[10], 1<<20); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("truncation after pin advance: err=%v", err)
	}

	d.Unpin(pin)
	d.Truncate(d.DurableLSN())
	if oldest, dur := d.OldestLSN(), d.DurableLSN(); oldest != dur {
		t.Fatalf("unpinned truncate kept records: oldest %d durable %d", oldest, dur)
	}
}

func TestAppendShippedRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := NewDurable(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	appendN(t, src, 20, 32)

	dst, err := NewDurable(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := src.ReadDurable(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.AppendShipped(recs); err != nil {
		t.Fatal(err)
	}
	dst.Flush(dst.CurrentLSN())
	if dst.DurableLSN() != src.DurableLSN() {
		t.Fatalf("durable mismatch: dst %d src %d", dst.DurableLSN(), src.DurableLSN())
	}

	// A gap is refused.
	gap := Record{LSN: dst.CurrentLSN() + 100, Type: RecInsert}
	if err := dst.AppendShipped([]Record{gap}); err == nil {
		t.Fatal("non-contiguous shipped batch accepted")
	}

	// Reopen: the shipped copy survives restart byte for byte.
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewDurable(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Records()
	want := src.Records()
	if len(got) != len(want) {
		t.Fatalf("reopened follower has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].LSN != want[i].LSN || got[i].Txn != want[i].Txn || string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d differs after reopen", i)
		}
	}
	if re.CurrentLSN() != src.CurrentLSN() {
		t.Fatalf("append horizon mismatch: follower %d primary %d", re.CurrentLSN(), src.CurrentLSN())
	}
}

func TestRotateHookFires(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDurable(dir, DurableOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	var mu sync.Mutex
	type rot struct {
		path        string
		first, last LSN
	}
	var rotations []rot
	d.SetRotateHook(func(path string, first, last LSN) {
		mu.Lock()
		rotations = append(rotations, rot{path, first, last})
		mu.Unlock()
	})

	// Flush per append so the segment grows across flush batches (rotation
	// points are only checked against the already-written segment size).
	for i := 0; i < 50; i++ {
		d.Append(&Record{Txn: uint64(i), Type: RecInsert, Payload: make([]byte, 64)})
		d.Flush(d.CurrentLSN())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(rotations) == 0 {
		t.Fatal("no rotations observed with a 256-byte segment threshold")
	}
	for _, r := range rotations {
		if !strings.HasSuffix(r.path, segmentSuffix) {
			t.Fatalf("rotation path %q is not a segment", r.path)
		}
		if r.last <= r.first {
			t.Fatalf("rotation range [%d, %d) is empty", r.first, r.last)
		}
		// The closed segment is on disk at hook time (archival contract).
		if _, err := os.Stat(filepath.Join(r.path)); err != nil {
			t.Fatalf("closed segment missing at hook time: %v", err)
		}
	}
}
