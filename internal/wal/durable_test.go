package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// appendCommitted appends one update+commit pair for txn id and waits for
// durability, returning the commit record's LSN.
func appendCommitted(l Log, id uint64, payload []byte) LSN {
	l.Append(&Record{Txn: id, Type: RecUpdate, Payload: payload})
	lsn := l.Append(&Record{Txn: id, Type: RecCommit})
	l.WaitDurable(lsn)
	return lsn
}

func TestDurableAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		appendCommitted(l, i, []byte(fmt.Sprintf("payload-%03d", i)))
	}
	recs := l.Records()
	next := l.CurrentLSN()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Records()
	if len(got) != len(recs) {
		t.Fatalf("reopened log has %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].LSN != recs[i].LSN || got[i].Txn != recs[i].Txn ||
			got[i].Type != recs[i].Type || !bytes.Equal(got[i].Payload, recs[i].Payload) {
			t.Fatalf("record %d differs after reopen: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if re.CurrentLSN() != next {
		t.Fatalf("next LSN %d after reopen, want %d", re.CurrentLSN(), next)
	}
	if re.DurableLSN() != next {
		t.Fatalf("durable LSN %d after reopen, want %d (disk contents are durable)", re.DurableLSN(), next)
	}
	// Appending keeps working with monotonic LSNs.
	lsn := re.Append(&Record{Txn: 99, Type: RecCommit})
	if lsn != next {
		t.Fatalf("first post-reopen LSN %d, want %d", lsn, next)
	}
}

func TestDurableCrashLosesNothingAcknowledged(t *testing.T) {
	dir := t.TempDir()
	l, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	var acked []LSN
	for i := uint64(1); i <= 20; i++ {
		acked = append(acked, appendCommitted(l, i, []byte("v")))
	}
	// Crash: the device is abandoned without Close — nothing beyond what
	// WaitDurable acknowledged is guaranteed, but everything acknowledged
	// must be on disk already.
	re, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	byLSN := make(map[LSN]Record, len(recs))
	for _, r := range recs {
		byLSN[r.LSN] = r
	}
	for _, lsn := range acked {
		r, ok := byLSN[lsn]
		if !ok || r.Type != RecCommit {
			t.Fatalf("acknowledged commit at LSN %d missing after crash", lsn)
		}
	}
}

func TestDurableTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		appendCommitted(l, i, []byte("intact"))
	}
	intact := len(l.Records())
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-batch-write: garbage bytes at the segment tail.
	segs, err := filepath.Glob(filepath.Join(dir, "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments on disk: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	re, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(re.Records()); got != intact {
		t.Fatalf("%d records after torn-tail reopen, want %d", got, intact)
	}
	// The torn bytes must be gone from disk so new appends don't interleave
	// with garbage.
	appendCommitted(re, 999, []byte("after-torn"))
	next := re.CurrentLSN()
	_ = re.Close()
	re2, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if got := len(re2.Records()); got != intact+2 {
		t.Fatalf("%d records after second reopen, want %d", got, intact+2)
	}
	if re2.CurrentLSN() != next {
		t.Fatalf("next LSN %d, want %d", re2.CurrentLSN(), next)
	}
}

func TestDurableSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, DurableOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64)
	var mid LSN
	for i := uint64(1); i <= 60; i++ {
		lsn := appendCommitted(l, i, payload)
		if i == 30 {
			mid = lsn
		}
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segsBefore) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segsBefore))
	}

	dropped := l.Truncate(mid)
	if dropped == 0 {
		t.Fatal("truncation dropped no records")
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "*.seg"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncation unlinked no segments (%d before, %d after)", len(segsBefore), len(segsAfter))
	}
	for _, r := range l.Records() {
		if r.LSN < mid {
			t.Fatalf("record below the truncation horizon survived: %d < %d", r.LSN, mid)
		}
	}

	// The truncated log must still reopen: the surviving segments cover
	// exactly the records the interface reports.
	want := len(l.Records())
	_ = l.Close()
	re, err := OpenDurable(dir, DurableOptions{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Reopen may see more records than the in-memory view: a partially
	// truncatable segment keeps its early records on disk.  It must never
	// see fewer.
	if got := len(re.Records()); got < want {
		t.Fatalf("%d records after truncated reopen, want >= %d", got, want)
	}
}

func TestDurableSyncEveryCommitMode(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, DurableOptions{SyncEveryCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		lsn := appendCommitted(l, i, []byte("sync"))
		if l.DurableLSN() <= lsn {
			t.Fatalf("sync-every-commit did not make LSN %d durable", lsn)
		}
	}
	st := l.Stats()
	if st.Flushes < 10 {
		t.Fatalf("sync-every-commit performed %d flushes for 10 commits", st.Flushes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := len(re.Records()); got != 20 {
		t.Fatalf("%d records after reopen, want 20", got)
	}
}

func TestDurableGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := NewDurable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const committers = 8
	const per = 50
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				appendCommitted(l, uint64(g*1000+i), []byte("grp"))
			}
		}(g)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != committers*per*2 {
		t.Fatalf("appends %d, want %d", st.Appends, committers*per*2)
	}
	// The whole point of group commit: far fewer fsync batches than
	// commits.  With 8 concurrent committers the daemon batches several
	// commits per flush even on a fast disk; a strict bound would be
	// timing-dependent, so just require *some* sharing.
	if st.Flushes >= committers*per {
		t.Fatalf("group commit shared nothing: %d flushes for %d commits", st.Flushes, committers*per)
	}
}

// TestTruncateDuringGroupFlushNeverRegressesDurable is the regression test
// for the Truncate/Append interleaving: checkpoint-driven truncation racing
// a group flush (and racing committers) must never move the durable horizon
// backwards — a committer that saw WaitDurable return relies on it.
func TestTruncateDuringGroupFlushNeverRegressesDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenDurable(dir, DurableOptions{SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	stop := make(chan struct{})
	var fail atomic.Value // first violation message

	// Monitor: the durable LSN must be monotone under all interleavings.
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		var max LSN
		for {
			select {
			case <-stop:
				return
			default:
			}
			d := l.DurableLSN()
			if d < max {
				fail.CompareAndSwap(nil, fmt.Sprintf("durable LSN regressed: %d after %d", d, max))
				return
			}
			max = d
		}
	}()

	// Committers: append + ride the group flush.
	const committers = 4
	var wg sync.WaitGroup
	for g := 0; g < committers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lsn := appendCommitted(l, uint64(g*10_000+i), []byte("race-payload"))
				if l.DurableLSN() <= lsn {
					fail.CompareAndSwap(nil, fmt.Sprintf("WaitDurable returned before LSN %d was durable", lsn))
					return
				}
			}
		}(g)
	}

	// Truncator: aggressively truncate at the durable horizon, mid-flush.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			l.Truncate(l.DurableLSN())
			time.Sleep(time.Millisecond / 4)
		}
	}()

	wg.Wait()
	close(stop)
	monWG.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
	// The log must still be coherent after the storm: reopenable, with the
	// surviving records in LSN order.
	recs := l.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("records out of order after truncate storm")
		}
	}
}
