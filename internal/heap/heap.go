// Package heap implements heap files: the pages that store non-clustered
// records, referenced from indexes by RID.
//
// The three PLP heap-page policies of Section 3.3 are supported through the
// notion of an owner tag on every heap page:
//
//   - Regular (shared pool, owner 0): any thread may insert into or read any
//     page, so accesses acquire the page latch.  This is the layout used by
//     the Conventional, Logical and PLP-Regular designs.
//   - Partition-owned: each page carries the owning logical partition's ID;
//     records of a partition are only placed on pages it owns
//     (PLP-Partition).  Accesses by the owning worker are latch-free.
//   - Leaf-owned: each page carries the ID of the single MRBTree leaf page
//     that references it (PLP-Leaf).  Accesses are latch-free and a leaf
//     split also splits the heap pages it owns.
//
// The free-space directory (which pages have room) is metadata shared by all
// threads; its mutex is reported under the Metadata critical-section
// category, which is the residual latching the paper observes even for
// PLP-Leaf ("the remaining latches are associated with metadata and free
// space management").
package heap

import (
	"errors"
	"fmt"
	"sync"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/latch"
	"plp/internal/page"
	"plp/internal/txn"
)

// Errors returned by heap file operations.
var (
	ErrNoSuchRecord = errors.New("heap: no such record")
	ErrRecordSize   = errors.New("heap: record too large for a page")
)

// AccessMode selects whether record accesses latch the heap page.
type AccessMode int

// Access modes.
const (
	// Latched acquires the page latch around every record access
	// (conventional shared-everything behaviour).
	Latched AccessMode = iota
	// LatchFree skips page latches; the caller guarantees that only the
	// owning partition worker touches the page (PLP-Partition, PLP-Leaf).
	LatchFree
)

// SharedOwner is the owner tag of pages in the shared pool used by the
// Regular placement policy.
const SharedOwner uint64 = 0

// File is a heap file.
type File struct {
	id   uint32
	bp   *bufferpool.Pool
	mode AccessMode
	cst  *cs.Stats

	mu sync.Mutex
	// freeByOwner maps an owner tag to page IDs that may still have room.
	freeByOwner map[uint64][]page.ID
	// pagesByOwner maps an owner tag to every page it owns, in allocation
	// order (used for scans and fragmentation accounting).
	pagesByOwner map[uint64][]page.ID
	allPages     []page.ID
	nRecords     int
}

// New creates an empty heap file with the given space id.
func New(id uint32, bp *bufferpool.Pool, mode AccessMode, cstats *cs.Stats) *File {
	return &File{
		id:           id,
		bp:           bp,
		mode:         mode,
		cst:          cstats,
		freeByOwner:  make(map[uint64][]page.ID),
		pagesByOwner: make(map[uint64][]page.ID),
	}
}

// ID returns the heap file's space id.
func (f *File) ID() uint32 { return f.id }

// Mode returns the access mode.
func (f *File) Mode() AccessMode { return f.mode }

// SetMode changes the access mode (used when converting a loaded database
// between designs).
func (f *File) SetMode(m AccessMode) { f.mode = m }

// metadataCS records one free-space-directory critical section.
func (f *File) metadataCS(contended bool) {
	f.cst.Record(cs.Metadata, contended)
}

// lockMeta acquires the free-space directory mutex, recording the critical
// section.
func (f *File) lockMeta() {
	contended := !f.mu.TryLock()
	if contended {
		f.mu.Lock()
	}
	f.metadataCS(contended)
}

// pickPage returns a page owned by owner with at least need bytes free,
// allocating a new one if necessary.
func (f *File) pickPage(owner uint64, need int) (page.ID, error) {
	f.lockMeta()
	free := f.freeByOwner[owner]
	for len(free) > 0 {
		pid := free[len(free)-1]
		f.mu.Unlock()
		frame, err := f.bp.Fix(pid)
		if err != nil {
			return page.InvalidID, err
		}
		// The room check is advisory (Insert re-checks under the exclusive
		// latch and retries), but in Latched mode concurrent writers may be
		// mutating the page, so the read itself must be latched.
		f.acquire(nil, frame, latch.Shared)
		ok := frame.Page().HasRoomFor(need)
		f.release(frame, latch.Shared)
		f.bp.Unfix(frame, false)
		if ok {
			return pid, nil
		}
		// Page is full: drop it from the free list and try the next one.
		f.lockMeta()
		free = f.freeByOwner[owner]
		if len(free) > 0 && free[len(free)-1] == pid {
			free = free[:len(free)-1]
			f.freeByOwner[owner] = free
		}
	}
	f.mu.Unlock()

	// Allocate a fresh page for this owner.
	frame, err := f.bp.NewPage(page.KindHeap)
	if err != nil {
		return page.InvalidID, err
	}
	p := frame.Page()
	p.SetOwner(owner)
	pid := p.ID()
	f.bp.Unfix(frame, true)

	f.lockMeta()
	f.freeByOwner[owner] = append(f.freeByOwner[owner], pid)
	f.pagesByOwner[owner] = append(f.pagesByOwner[owner], pid)
	f.allPages = append(f.allPages, pid)
	f.mu.Unlock()
	return pid, nil
}

// acquire latches the frame if the file is in Latched mode and attributes
// the wait to the transaction's heap-latch bucket.
func (f *File) acquire(t *txn.Txn, frame *bufferpool.Frame, mode latch.Mode) {
	if f.mode == LatchFree {
		return
	}
	wait := frame.Latch().Acquire(mode)
	if t != nil {
		t.Breakdown.AddLatch()
		t.Breakdown.AddWait(txn.WaitHeapLatch, wait)
	}
}

// release releases the latch if the file is in Latched mode.
func (f *File) release(frame *bufferpool.Frame, mode latch.Mode) {
	if f.mode == LatchFree {
		return
	}
	frame.Latch().Release(mode)
}

// Insert places rec on a page owned by owner and returns its RID.
func (f *File) Insert(t *txn.Txn, owner uint64, rec []byte) (page.RID, error) {
	if len(rec) > page.MaxRecordSize {
		return page.RID{}, fmt.Errorf("%w: %d bytes", ErrRecordSize, len(rec))
	}
	for attempt := 0; attempt < 16; attempt++ {
		pid, err := f.pickPage(owner, len(rec))
		if err != nil {
			return page.RID{}, err
		}
		frame, err := f.bp.Fix(pid)
		if err != nil {
			return page.RID{}, err
		}
		f.acquire(t, frame, latch.Exclusive)
		slot, err := frame.Page().Add(rec)
		if err == nil {
			f.release(frame, latch.Exclusive)
			f.bp.Unfix(frame, true)
			f.lockMeta()
			f.nRecords++
			f.mu.Unlock()
			return page.RID{Page: pid, Slot: slot}, nil
		}
		f.release(frame, latch.Exclusive)
		f.bp.Unfix(frame, false)
		if !errors.Is(err, page.ErrPageFull) {
			return page.RID{}, err
		}
		// Raced with another inserter that filled the page; retry.
	}
	return page.RID{}, page.ErrPageFull
}

// Get returns a copy of the record at rid.
func (f *File) Get(t *txn.Txn, rid page.RID) ([]byte, error) {
	frame, err := f.bp.Fix(rid.Page)
	if err != nil {
		return nil, err
	}
	f.acquire(t, frame, latch.Shared)
	rec, err := frame.Page().Get(rid.Slot)
	var out []byte
	if err == nil {
		out = append([]byte(nil), rec...)
	}
	f.release(frame, latch.Shared)
	f.bp.Unfix(frame, false)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoSuchRecord, rid)
	}
	return out, nil
}

// Update replaces the record at rid with rec (the record must still fit on
// its page; growth beyond the page is not supported by the workloads used
// here).
func (f *File) Update(t *txn.Txn, rid page.RID, rec []byte) error {
	frame, err := f.bp.Fix(rid.Page)
	if err != nil {
		return err
	}
	f.acquire(t, frame, latch.Exclusive)
	err = frame.Page().Set(rid.Slot, rec)
	f.release(frame, latch.Exclusive)
	f.bp.Unfix(frame, err == nil)
	if err != nil {
		return fmt.Errorf("heap: update %v: %w", rid, err)
	}
	return nil
}

// Delete removes the record at rid.
func (f *File) Delete(t *txn.Txn, rid page.RID) error {
	frame, err := f.bp.Fix(rid.Page)
	if err != nil {
		return err
	}
	f.acquire(t, frame, latch.Exclusive)
	err = frame.Page().Delete(rid.Slot)
	f.release(frame, latch.Exclusive)
	f.bp.Unfix(frame, err == nil)
	if err != nil {
		return fmt.Errorf("heap: delete %v: %w", rid, err)
	}
	// The page now has free space again; make it eligible for reuse.
	owner, _ := f.ownerOf(rid.Page)
	f.lockMeta()
	f.nRecords--
	found := false
	for _, pid := range f.freeByOwner[owner] {
		if pid == rid.Page {
			found = true
			break
		}
	}
	if !found {
		f.freeByOwner[owner] = append(f.freeByOwner[owner], rid.Page)
	}
	f.mu.Unlock()
	return nil
}

// ownerOf returns the owner tag of the given heap page.
func (f *File) ownerOf(pid page.ID) (uint64, error) {
	frame, err := f.bp.Fix(pid)
	if err != nil {
		return 0, err
	}
	owner := frame.Page().Owner()
	f.bp.Unfix(frame, false)
	return owner, nil
}

// ScanFunc is called for every record during a scan.  Returning false stops
// the scan.
type ScanFunc func(rid page.RID, rec []byte) bool

// Scan visits every live record in the file in page order.
func (f *File) Scan(t *txn.Txn, fn ScanFunc) error {
	f.lockMeta()
	pages := append([]page.ID(nil), f.allPages...)
	f.mu.Unlock()
	for _, pid := range pages {
		if err := f.scanPage(t, pid, fn); err != nil {
			return err
		}
	}
	return nil
}

// ScanOwner visits every live record on pages owned by owner.  PLP designs
// use it to parallelize heap scans across partition workers.
func (f *File) ScanOwner(t *txn.Txn, owner uint64, fn ScanFunc) error {
	f.lockMeta()
	pages := append([]page.ID(nil), f.pagesByOwner[owner]...)
	f.mu.Unlock()
	for _, pid := range pages {
		if err := f.scanPage(t, pid, fn); err != nil {
			return err
		}
	}
	return nil
}

func (f *File) scanPage(t *txn.Txn, pid page.ID, fn ScanFunc) error {
	frame, err := f.bp.Fix(pid)
	if err != nil {
		return err
	}
	f.acquire(t, frame, latch.Shared)
	p := frame.Page()
	stop := false
	for _, slot := range p.LiveSlots() {
		rec, err := p.Get(slot)
		if err != nil {
			continue
		}
		if !fn(page.RID{Page: pid, Slot: slot}, rec) {
			stop = true
			break
		}
	}
	f.release(frame, latch.Shared)
	f.bp.Unfix(frame, false)
	if stop {
		return nil
	}
	return nil
}

// Move relocates the records identified by rids onto pages owned by
// newOwner and returns the mapping from old RID to new RID.  It is used by
// PLP-Partition and PLP-Leaf when a repartitioning (or a leaf split in
// PLP-Leaf) requires heap records to change owner; the caller is responsible
// for updating every index entry that references the moved RIDs (the storage
// manager exposes that responsibility as a callback, see Section 3.3).
func (f *File) Move(t *txn.Txn, newOwner uint64, rids []page.RID) (map[page.RID]page.RID, error) {
	moved := make(map[page.RID]page.RID, len(rids))
	for _, rid := range rids {
		rec, err := f.Get(t, rid)
		if err != nil {
			return moved, err
		}
		newRID, err := f.Insert(t, newOwner, rec)
		if err != nil {
			return moved, err
		}
		if err := f.Delete(t, rid); err != nil {
			return moved, err
		}
		moved[rid] = newRID
	}
	return moved, nil
}

// Stats describes heap file occupancy, used by the fragmentation experiment
// (Figure 11).
type Stats struct {
	Pages     int
	Records   int
	Owners    int
	UsedBytes int
}

// Stats returns occupancy statistics.  It fixes every page, so it is meant
// for reporting, not for the hot path.
func (f *File) Stats() Stats {
	f.lockMeta()
	pages := append([]page.ID(nil), f.allPages...)
	owners := len(f.pagesByOwner)
	records := f.nRecords
	f.mu.Unlock()
	st := Stats{Pages: len(pages), Records: records, Owners: owners}
	for _, pid := range pages {
		frame, err := f.bp.Fix(pid)
		if err != nil {
			continue
		}
		f.acquire(nil, frame, latch.Shared)
		st.UsedBytes += frame.Page().UsedBytes()
		f.release(frame, latch.Shared)
		f.bp.Unfix(frame, false)
	}
	return st
}

// NumPages returns the number of heap pages allocated to the file.
func (f *File) NumPages() int {
	f.lockMeta()
	defer f.mu.Unlock()
	return len(f.allPages)
}

// NumRecords returns the number of live records in the file.
func (f *File) NumRecords() int {
	f.lockMeta()
	defer f.mu.Unlock()
	return f.nRecords
}

// PagesOwnedBy returns the page IDs owned by the given owner tag.
func (f *File) PagesOwnedBy(owner uint64) []page.ID {
	f.lockMeta()
	defer f.mu.Unlock()
	return append([]page.ID(nil), f.pagesByOwner[owner]...)
}

// RecordsOwnedBy returns the RIDs of the live records on pages owned by the
// given owner tag (used when a leaf split must relocate the records its
// pages hold).
func (f *File) RecordsOwnedBy(owner uint64) ([]page.RID, error) {
	var out []page.RID
	err := f.ScanOwner(nil, owner, func(rid page.RID, rec []byte) bool {
		out = append(out, rid)
		return true
	})
	return out, err
}
