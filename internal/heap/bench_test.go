package heap

import (
	"fmt"
	"testing"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/latch"
	"plp/internal/page"
)

func benchFile(mode AccessMode) *File {
	bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: &latch.Stats{}, CSStats: &cs.Stats{}})
	return New(1, bp, mode, &cs.Stats{})
}

// BenchmarkInsert measures record insertion with and without heap-page
// latching (the PLP-Partition/Leaf fast path).
func BenchmarkInsert(b *testing.B) {
	for _, mode := range []AccessMode{Latched, LatchFree} {
		name := "latched"
		if mode == LatchFree {
			name = "latchfree"
		}
		b.Run(name, func(b *testing.B) {
			f := benchFile(mode)
			rec := make([]byte, 100)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Insert(nil, 1, rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGet measures record fetch by RID.
func BenchmarkGet(b *testing.B) {
	for _, mode := range []AccessMode{Latched, LatchFree} {
		name := fmt.Sprintf("mode=%d", mode)
		b.Run(name, func(b *testing.B) {
			f := benchFile(mode)
			var rids []page.RID
			rec := make([]byte, 100)
			for i := 0; i < 10000; i++ {
				rid, err := f.Insert(nil, 1, rec)
				if err != nil {
					b.Fatal(err)
				}
				rids = append(rids, rid)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Get(nil, rids[i%len(rids)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
