package heap

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/latch"
	"plp/internal/page"
)

func newFile(mode AccessMode) (*File, *latch.Stats) {
	ls := &latch.Stats{}
	bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: ls, CSStats: &cs.Stats{}})
	return New(1, bp, mode, &cs.Stats{}), ls
}

func TestInsertGetUpdateDelete(t *testing.T) {
	f, _ := newFile(Latched)
	rid, err := f.Insert(nil, SharedOwner, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.Get(nil, rid)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("get: %q %v", rec, err)
	}
	if err := f.Update(nil, rid, []byte("world")); err != nil {
		t.Fatal(err)
	}
	rec, _ = f.Get(nil, rid)
	if string(rec) != "world" {
		t.Fatalf("update lost: %q", rec)
	}
	if err := f.Delete(nil, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(nil, rid); !errors.Is(err, ErrNoSuchRecord) {
		t.Fatalf("deleted record still readable: %v", err)
	}
	if f.NumRecords() != 0 {
		t.Fatal("record count wrong")
	}
}

func TestRIDStability(t *testing.T) {
	f, _ := newFile(Latched)
	var rids []page.RID
	for i := 0; i < 2000; i++ {
		rid, err := f.Insert(nil, SharedOwner, []byte(fmt.Sprintf("rec-%05d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Delete a third of the records; the rest must remain addressable by
	// their original RIDs.
	for i := 0; i < len(rids); i += 3 {
		if err := f.Delete(nil, rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, rid := range rids {
		rec, err := f.Get(nil, rid)
		if i%3 == 0 {
			if err == nil {
				t.Fatalf("deleted record %d readable", i)
			}
			continue
		}
		if err != nil || string(rec) != fmt.Sprintf("rec-%05d", i) {
			t.Fatalf("record %d: %q %v", i, rec, err)
		}
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	f, _ := newFile(Latched)
	if _, err := f.Insert(nil, SharedOwner, make([]byte, page.MaxRecordSize+1)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestOwnerSegregation(t *testing.T) {
	f, _ := newFile(LatchFree)
	const perOwner = 300
	for owner := uint64(1); owner <= 3; owner++ {
		for i := 0; i < perOwner; i++ {
			if _, err := f.Insert(nil, owner, bytes.Repeat([]byte{byte(owner)}, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Pages of different owners must be disjoint.
	seen := map[page.ID]uint64{}
	for owner := uint64(1); owner <= 3; owner++ {
		for _, pid := range f.PagesOwnedBy(owner) {
			if prev, ok := seen[pid]; ok && prev != owner {
				t.Fatalf("page %v owned by %d and %d", pid, prev, owner)
			}
			seen[pid] = owner
		}
	}
	// Per-owner scans see only their records.
	for owner := uint64(1); owner <= 3; owner++ {
		n := 0
		err := f.ScanOwner(nil, owner, func(rid page.RID, rec []byte) bool {
			if rec[0] != byte(owner) {
				t.Fatalf("foreign record on owner %d's page", owner)
			}
			n++
			return true
		})
		if err != nil || n != perOwner {
			t.Fatalf("owner %d scan: n=%d err=%v", owner, n, err)
		}
	}
	// Owner-partitioned placement costs extra pages versus a single shared
	// pool filling pages completely (this is the Figure 11 effect).
	if f.NumPages() < 3 {
		t.Fatal("expected at least one page per owner")
	}
}

func TestScanVisitsEverything(t *testing.T) {
	f, _ := newFile(Latched)
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		rec := fmt.Sprintf("row-%d", i)
		if _, err := f.Insert(nil, SharedOwner, []byte(rec)); err != nil {
			t.Fatal(err)
		}
		want[rec] = true
	}
	got := map[string]bool{}
	if err := f.Scan(nil, func(_ page.RID, rec []byte) bool {
		got[string(rec)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d of %d records", len(got), len(want))
	}
	// Early termination.
	n := 0
	_ = f.Scan(nil, func(_ page.RID, _ []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestMoveRelocatesRecords(t *testing.T) {
	f, _ := newFile(LatchFree)
	var rids []page.RID
	for i := 0; i < 100; i++ {
		rid, err := f.Insert(nil, 1, []byte(fmt.Sprintf("m-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	moved, err := f.Move(nil, 2, rids[:50])
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != 50 {
		t.Fatalf("moved %d", len(moved))
	}
	for old, nu := range moved {
		if _, err := f.Get(nil, old); err == nil {
			t.Fatal("old RID still live after move")
		}
		if _, err := f.Get(nil, nu); err != nil {
			t.Fatalf("new RID unreadable: %v", err)
		}
	}
	if n := len(f.PagesOwnedBy(2)); n == 0 {
		t.Fatal("no pages owned by the destination partition")
	}
}

func TestLatchedModeCountsHeapLatches(t *testing.T) {
	f, ls := newFile(Latched)
	rid, _ := f.Insert(nil, SharedOwner, []byte("x"))
	_, _ = f.Get(nil, rid)
	if ls.Snapshot().Acquired[latch.KindHeap] == 0 {
		t.Fatal("latched heap access acquired no latches")
	}

	f2, ls2 := newFile(LatchFree)
	rid2, _ := f2.Insert(nil, 1, []byte("x"))
	_, _ = f2.Get(nil, rid2)
	if ls2.Snapshot().Acquired[latch.KindHeap] != 0 {
		t.Fatal("latch-free heap access acquired latches")
	}
}

func TestStats(t *testing.T) {
	f, _ := newFile(Latched)
	for i := 0; i < 100; i++ {
		if _, err := f.Insert(nil, SharedOwner, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Records != 100 || st.Pages == 0 || st.UsedBytes < 100*100 {
		t.Fatalf("stats wrong: %+v", st)
	}
	rids, err := f.RecordsOwnedBy(SharedOwner)
	if err != nil || len(rids) != 100 {
		t.Fatalf("RecordsOwnedBy: %d %v", len(rids), err)
	}
}

func TestConcurrentInsertsSharedPool(t *testing.T) {
	f, _ := newFile(Latched)
	var wg sync.WaitGroup
	var mu sync.Mutex
	all := map[page.RID]string{}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				rec := fmt.Sprintf("g%d-%d", g, i)
				rid, err := f.Insert(nil, SharedOwner, []byte(rec))
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mu.Lock()
				all[rid] = rec
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	if len(all) != 8*250 {
		t.Fatalf("duplicate RIDs handed out: %d unique", len(all))
	}
	for rid, want := range all {
		rec, err := f.Get(nil, rid)
		if err != nil || string(rec) != want {
			t.Fatalf("rid %v: %q %v (want %q)", rid, rec, err, want)
		}
	}
}

func TestPropertyHeapAgainstModel(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		hf, _ := newFile(Latched)
		model := map[page.RID][]byte{}
		var live []page.RID
		for i := 0; i < int(n); i++ {
			switch rng.Intn(3) {
			case 0:
				rec := make([]byte, 1+rng.Intn(200))
				rng.Read(rec)
				rid, err := hf.Insert(nil, SharedOwner, rec)
				if err != nil {
					return false
				}
				model[rid] = append([]byte(nil), rec...)
				live = append(live, rid)
			case 1:
				if len(live) == 0 {
					continue
				}
				idx := rng.Intn(len(live))
				rid := live[idx]
				if err := hf.Delete(nil, rid); err != nil {
					return false
				}
				delete(model, rid)
				live = append(live[:idx], live[idx+1:]...)
			case 2:
				if len(live) == 0 {
					continue
				}
				rid := live[rng.Intn(len(live))]
				rec := make([]byte, 1+rng.Intn(200))
				rng.Read(rec)
				if err := hf.Update(nil, rid, rec); err != nil {
					// Updates that outgrow the page are allowed to fail.
					if errors.Is(err, page.ErrPageFull) {
						continue
					}
					return false
				}
				model[rid] = append([]byte(nil), rec...)
			}
		}
		if hf.NumRecords() != len(model) {
			return false
		}
		for rid, want := range model {
			got, err := hf.Get(nil, rid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
