package cs

import (
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	var s Stats
	s.Record(LockMgr, false)
	s.Record(LockMgr, true)
	s.Record(Latching, false)
	s.RecordClass(LogMgr, Composable, false)
	snap := s.Snapshot()
	if snap.Entered[LockMgr] != 2 || snap.Contended[LockMgr] != 1 {
		t.Fatalf("lock mgr counters wrong: %+v", snap)
	}
	if snap.Entered[Latching] != 1 || snap.Entered[LogMgr] != 1 {
		t.Fatalf("counters wrong: %+v", snap)
	}
	if snap.Total() != 4 || snap.TotalContended() != 1 {
		t.Fatalf("totals wrong: %d %d", snap.Total(), snap.TotalContended())
	}
	if snap.ByClass[Composable] != 1 {
		t.Fatalf("class counters wrong: %+v", snap.ByClass)
	}
}

func TestSubAndPerTxn(t *testing.T) {
	var s Stats
	for i := 0; i < 10; i++ {
		s.Record(Bpool, i%2 == 0)
	}
	before := s.Snapshot()
	for i := 0; i < 20; i++ {
		s.Record(Bpool, false)
	}
	delta := s.Snapshot().Sub(before)
	if delta.Entered[Bpool] != 20 || delta.Contended[Bpool] != 0 {
		t.Fatalf("delta wrong: %+v", delta)
	}
	b := delta.PerTxn(10)
	if b.Entered[Bpool] != 2.0 || b.Total != 2.0 {
		t.Fatalf("per-txn wrong: %+v", b)
	}
	if zero := (Snapshot{}).PerTxn(0); zero.Total != 0 {
		t.Fatal("per-txn of zero transactions should be zero")
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.Record(LockMgr, true) // must not panic
	s.RecordN(Latching, 5)
	s.Reset()
	if s.Snapshot().Total() != 0 {
		t.Fatal("nil stats should snapshot to zero")
	}
}

func TestRecordNAndReset(t *testing.T) {
	var s Stats
	s.RecordN(XctMgr, 7)
	if s.Snapshot().Entered[XctMgr] != 7 {
		t.Fatal("RecordN failed")
	}
	s.Reset()
	if s.Snapshot().Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestOutOfRangeCategory(t *testing.T) {
	var s Stats
	s.Record(Category(99), false)
	if s.Snapshot().Entered[Uncategorized] != 1 {
		t.Fatal("out-of-range category not mapped to Uncategorized")
	}
}

func TestDefaultClasses(t *testing.T) {
	if DefaultClass(MessagePassing) != Fixed || DefaultClass(XctMgr) != Fixed {
		t.Fatal("message passing / xct mgr should be fixed")
	}
	if DefaultClass(LogMgr) != Composable {
		t.Fatal("log mgr should be composable")
	}
	if DefaultClass(LockMgr) != Unscalable || DefaultClass(Latching) != Unscalable {
		t.Fatal("lock mgr / latching should be unscalable")
	}
}

func TestLabels(t *testing.T) {
	for _, c := range Categories() {
		if c.String() == "" {
			t.Fatalf("category %d has no label", c)
		}
	}
	for _, cl := range []Class{Unscalable, Fixed, Composable} {
		if cl.String() == "" {
			t.Fatal("class label missing")
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	var s Stats
	var wg sync.WaitGroup
	const goroutines = 16
	const per = 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Record(Latching, i%10 == 0)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Entered[Latching] != goroutines*per {
		t.Fatalf("lost updates: %d", snap.Entered[Latching])
	}
	if snap.Contended[Latching] != goroutines*per/10 {
		t.Fatalf("contended count wrong: %d", snap.Contended[Latching])
	}
}
