// Package cs provides critical-section instrumentation for the storage
// manager and the execution engines.
//
// The PLP paper (Section 2) analyzes the behaviour of a transaction
// processing system by counting every critical section the system enters,
// categorized by the component that owns it (lock manager, page latching,
// buffer pool, log manager, transaction manager, metadata, message passing)
// and by the kind of contention it can generate (unscalable, fixed, or
// composable).  This package implements exactly that accounting: components
// report every critical section entry together with whether the entry was
// contended (i.e. the caller had to wait), and the harness takes snapshots
// before and after a run to compute per-transaction breakdowns
// (Figures 1 and 3 of the paper).
//
// All counters are updated with atomic operations so that the accounting
// itself never becomes a point of contention.
package cs

import (
	"fmt"
	"sync/atomic"
)

// Category identifies the storage-manager component that owns a critical
// section.  The categories match the legend of Figure 1 in the paper.
type Category int

// Component categories, in the order they are reported.
const (
	LockMgr        Category = iota // centralized (or thread-local) lock manager
	Latching                       // page latching
	Bpool                          // buffer pool internal state (hash table, frames)
	Metadata                       // catalog and free-space metadata
	LogMgr                         // write-ahead log buffer and flush path
	XctMgr                         // transaction object / transaction manager state
	MessagePassing                 // DORA/PLP input queues between partition workers
	Uncategorized                  // everything else

	NumCategories int = iota
)

// String returns the human-readable label used in reports.
func (c Category) String() string {
	switch c {
	case LockMgr:
		return "Lock mgr"
	case Latching:
		return "Page Latches"
	case Bpool:
		return "Bpool"
	case Metadata:
		return "Metadata"
	case LogMgr:
		return "Log mgr"
	case XctMgr:
		return "Xct mgr"
	case MessagePassing:
		return "Message passing"
	case Uncategorized:
		return "Uncategorized"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Class describes how a critical section behaves as hardware parallelism
// grows (Section 2.1 of the paper).
type Class int

// Contention classes.
const (
	// Unscalable critical sections can be entered by any thread in the
	// system; contention grows with hardware parallelism.
	Unscalable Class = iota
	// Fixed critical sections are shared by a bounded set of threads
	// (e.g. a producer/consumer pair); contention does not grow with the
	// machine size.
	Fixed
	// Composable critical sections allow waiting threads to combine their
	// requests (e.g. the consolidated log buffer), so queuing is
	// self-regulating.
	Composable

	NumClasses int = iota
)

// String returns the human-readable label of a contention class.
func (c Class) String() string {
	switch c {
	case Unscalable:
		return "unscalable"
	case Fixed:
		return "fixed"
	case Composable:
		return "composable"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// DefaultClass reports the contention class that a category's critical
// sections belong to in a conventional shared-everything design.
// Individual Record calls may override it.
func DefaultClass(c Category) Class {
	switch c {
	case MessagePassing, XctMgr:
		return Fixed
	case LogMgr:
		return Composable
	default:
		return Unscalable
	}
}

// Stats accumulates critical-section counts.  The zero value is ready to
// use.  A single Stats instance is shared by all components of one engine
// instance; the harness snapshots it around measured runs.
type Stats struct {
	entered   [NumCategories]atomic.Uint64
	contended [NumCategories]atomic.Uint64
	byClass   [NumClasses]atomic.Uint64
}

// Record notes one critical-section entry for category cat using the
// category's default contention class.  contended reports whether the
// caller had to wait for another thread to leave the critical section.
// Record is safe for concurrent use and tolerates a nil receiver so that
// components can be used without instrumentation.
func (s *Stats) Record(cat Category, contended bool) {
	s.RecordClass(cat, DefaultClass(cat), contended)
}

// RecordClass notes one critical-section entry with an explicit contention
// class.
func (s *Stats) RecordClass(cat Category, class Class, contended bool) {
	if s == nil {
		return
	}
	if cat < 0 || int(cat) >= NumCategories {
		cat = Uncategorized
	}
	s.entered[cat].Add(1)
	if contended {
		s.contended[cat].Add(1)
	}
	if class >= 0 && int(class) < NumClasses {
		s.byClass[class].Add(1)
	}
}

// RecordN notes n uncontended critical-section entries at once.  It is used
// by batch paths (e.g. group commit) that enter the same critical section
// logically n times but physically once.
func (s *Stats) RecordN(cat Category, n uint64) {
	if s == nil || n == 0 {
		return
	}
	if cat < 0 || int(cat) >= NumCategories {
		cat = Uncategorized
	}
	s.entered[cat].Add(n)
	class := DefaultClass(cat)
	s.byClass[class].Add(n)
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for i := 0; i < NumCategories; i++ {
		s.entered[i].Store(0)
		s.contended[i].Store(0)
	}
	for i := 0; i < NumClasses; i++ {
		s.byClass[i].Store(0)
	}
}

// Snapshot is an immutable copy of the counters at one point in time.
type Snapshot struct {
	Entered   [NumCategories]uint64
	Contended [NumCategories]uint64
	ByClass   [NumClasses]uint64
}

// Snapshot returns a copy of the current counter values.  A nil Stats
// yields a zero Snapshot.
func (s *Stats) Snapshot() Snapshot {
	var snap Snapshot
	if s == nil {
		return snap
	}
	for i := 0; i < NumCategories; i++ {
		snap.Entered[i] = s.entered[i].Load()
		snap.Contended[i] = s.contended[i].Load()
	}
	for i := 0; i < NumClasses; i++ {
		snap.ByClass[i] = s.byClass[i].Load()
	}
	return snap
}

// Sub returns the difference snap - prev, counter by counter.  It is used to
// isolate the critical sections entered during a measured interval.
func (snap Snapshot) Sub(prev Snapshot) Snapshot {
	var d Snapshot
	for i := 0; i < NumCategories; i++ {
		d.Entered[i] = snap.Entered[i] - prev.Entered[i]
		d.Contended[i] = snap.Contended[i] - prev.Contended[i]
	}
	for i := 0; i < NumClasses; i++ {
		d.ByClass[i] = snap.ByClass[i] - prev.ByClass[i]
	}
	return d
}

// Total returns the total number of critical sections entered.
func (snap Snapshot) Total() uint64 {
	var t uint64
	for i := 0; i < NumCategories; i++ {
		t += snap.Entered[i]
	}
	return t
}

// TotalContended returns the total number of contended critical sections.
func (snap Snapshot) TotalContended() uint64 {
	var t uint64
	for i := 0; i < NumCategories; i++ {
		t += snap.Contended[i]
	}
	return t
}

// PerTxn divides every counter by the number of transactions executed,
// producing the per-transaction breakdown reported in Figure 1.
func (snap Snapshot) PerTxn(txns uint64) Breakdown {
	var b Breakdown
	if txns == 0 {
		return b
	}
	for i := 0; i < NumCategories; i++ {
		b.Entered[i] = float64(snap.Entered[i]) / float64(txns)
		b.Contended[i] = float64(snap.Contended[i]) / float64(txns)
	}
	b.Total = float64(snap.Total()) / float64(txns)
	b.TotalContended = float64(snap.TotalContended()) / float64(txns)
	return b
}

// Breakdown is a per-transaction view of a Snapshot.
type Breakdown struct {
	Entered        [NumCategories]float64
	Contended      [NumCategories]float64
	Total          float64
	TotalContended float64
}

// Categories lists all categories in reporting order.
func Categories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}
