package lock

import (
	"testing"

	"plp/internal/cs"
)

// BenchmarkAcquireReleaseDisjoint measures the centralized lock manager on
// non-conflicting keys — the per-transaction overhead even without
// contention that Figure 1's baseline bar is made of.
func BenchmarkAcquireReleaseDisjoint(b *testing.B) {
	m := NewManager(&cs.Stats{})
	b.RunParallel(func(pb *testing.PB) {
		i := uint64(0)
		for pb.Next() {
			i++
			n := KeyName(1, i)
			if _, err := m.Acquire(i, n, X); err != nil {
				b.Fatal(err)
			}
			if err := m.Release(i, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSLICacheHit measures the cost of a lock "acquisition" served
// entirely from the agent-local SLI cache.
func BenchmarkSLICacheHit(b *testing.B) {
	m := NewManager(&cs.Stats{})
	c := NewSLICache(m, 1)
	table := TableName(9)
	if _, _, err := c.Acquire(1, table, IX); err != nil {
		b.Fatal(err)
	}
	if err := c.Inherit(1, table, IX); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, hit, err := c.Acquire(uint64(i+2), table, IX); err != nil || !hit {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkLocalLockTable measures the thread-local lock table used by the
// partitioned designs.
func BenchmarkLocalLockTable(b *testing.B) {
	l := NewLocal()
	for i := 0; i < b.N; i++ {
		n := KeyName(1, uint64(i%1024)+1)
		l.TryAcquire(uint64(i), n, X)
		l.ReleaseTxn(uint64(i))
	}
}
