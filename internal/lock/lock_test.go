package lock

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"plp/internal/cs"
)

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		held, req Mode
		want      bool
	}{
		{None, X, true},
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, X, false},
		{IX, IS, true}, {IX, IX, true}, {IX, S, false}, {IX, X, false},
		{S, IS, true}, {S, IX, false}, {S, S, true}, {S, X, false},
		{X, IS, false}, {X, IX, false}, {X, S, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.held, c.req); got != c.want {
			t.Errorf("Compatible(%v,%v)=%v want %v", c.held, c.req, got, c.want)
		}
	}
}

func TestSupremum(t *testing.T) {
	cases := []struct{ a, b, want Mode }{
		{IS, IX, IX}, {S, X, X}, {S, IX, X}, {IS, S, S}, {None, S, S}, {X, IS, X},
	}
	for _, c := range cases {
		if got := Supremum(c.a, c.b); got != c.want {
			t.Errorf("Supremum(%v,%v)=%v want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAcquireReleaseBasic(t *testing.T) {
	m := NewManager(&cs.Stats{})
	name := KeyName(1, 42)
	if _, err := m.Acquire(1, name, S); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(2, name, S); err != nil {
		t.Fatal(err)
	}
	if modes := m.HeldModes(1, name); len(modes) != 1 || modes[0] != S {
		t.Fatalf("held modes wrong: %v", modes)
	}
	if err := m.Release(1, name); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1, name); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release: %v", err)
	}
	if err := m.Release(2, name); err != nil {
		t.Fatal(err)
	}
	if m.NumLocks() != 0 {
		t.Fatalf("lock heads leaked: %d", m.NumLocks())
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager(&cs.Stats{})
	name := KeyName(1, 7)
	if _, err := m.Acquire(1, name, X); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := m.Acquire(2, name, X)
		got <- err
	}()
	select {
	case <-got:
		t.Fatal("second X granted while first held")
	case <-time.After(20 * time.Millisecond):
	}
	if err := m.Release(1, name); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutReturnsError(t *testing.T) {
	m := NewManager(&cs.Stats{})
	m.SetTimeout(30 * time.Millisecond)
	name := KeyName(1, 9)
	if _, err := m.Acquire(1, name, X); err != nil {
		t.Fatal(err)
	}
	wait, err := m.Acquire(2, name, X)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout, got %v", err)
	}
	if wait < 30*time.Millisecond {
		t.Fatalf("returned early: %v", wait)
	}
	// The waiter must have been removed from the queue: releasing and
	// re-acquiring works.
	if err := m.Release(1, name); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(3, name, X); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeInPlace(t *testing.T) {
	m := NewManager(&cs.Stats{})
	name := KeyName(2, 5)
	if _, err := m.Acquire(1, name, S); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(1, name, X); err != nil {
		t.Fatal(err)
	}
	// Another transaction must now be blocked by the upgraded X.
	m.SetTimeout(30 * time.Millisecond)
	if _, err := m.Acquire(2, name, S); !errors.Is(err, ErrTimeout) {
		t.Fatalf("expected timeout after upgrade, got %v", err)
	}
}

func TestFIFONoStarvation(t *testing.T) {
	m := NewManager(&cs.Stats{})
	name := TableName(3)
	if _, err := m.Acquire(1, name, X); err != nil {
		t.Fatal(err)
	}
	// A waiter queues for X; later S requests must not overtake it forever.
	order := make(chan int, 2)
	go func() {
		m.Acquire(2, name, X)
		order <- 2
		m.Release(2, name)
	}()
	time.Sleep(10 * time.Millisecond)
	go func() {
		m.Acquire(3, name, S)
		order <- 3
		m.Release(3, name)
	}()
	time.Sleep(10 * time.Millisecond)
	m.Release(1, name)
	first := <-order
	if first != 2 {
		t.Fatalf("X waiter starved: %d granted first", first)
	}
	<-order
}

func TestReleaseAll(t *testing.T) {
	m := NewManager(&cs.Stats{})
	names := []Name{KeyName(1, 1), KeyName(1, 2), TableName(1)}
	for _, n := range names {
		if _, err := m.Acquire(9, n, X); err != nil {
			t.Fatal(err)
		}
	}
	if released := m.ReleaseAll(9, names); released != len(names) {
		t.Fatalf("released %d of %d", released, len(names))
	}
	if m.NumLocks() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestConcurrentDisjointLocks(t *testing.T) {
	m := NewManager(&cs.Stats{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := uint64(g + 1)
			for i := 0; i < 500; i++ {
				n := KeyName(uint32(g), uint64(i+1))
				if _, err := m.Acquire(txn, n, X); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if err := m.Release(txn, n); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.NumLocks() != 0 {
		t.Fatalf("locks leaked: %d", m.NumLocks())
	}
}

func TestSLICacheHitSkipsManager(t *testing.T) {
	cstats := &cs.Stats{}
	m := NewManager(cstats)
	c := NewSLICache(m, 1)
	table := TableName(5)

	// Transaction 100 acquires and inherits the table IX lock.
	if _, _, err := c.Acquire(100, table, IX); err != nil {
		t.Fatal(err)
	}
	if err := c.Inherit(100, table, IX); err != nil {
		t.Fatal(err)
	}
	before := cstats.Snapshot().Entered[cs.LockMgr]
	// The next transaction on the same agent hits the cache.
	_, hit, err := c.Acquire(101, table, IX)
	if err != nil || !hit {
		t.Fatalf("expected cache hit, got hit=%v err=%v", hit, err)
	}
	if after := cstats.Snapshot().Entered[cs.LockMgr]; after != before {
		t.Fatalf("cache hit still visited the lock manager (%d -> %d)", before, after)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	// Invalidate releases the parked lock so others can take X.
	c.Invalidate()
	m.SetTimeout(50 * time.Millisecond)
	if _, err := m.Acquire(200, table, X); err != nil {
		t.Fatalf("X after invalidate: %v", err)
	}
}

func TestSLIInheritOnlyIntentionLocks(t *testing.T) {
	m := NewManager(&cs.Stats{})
	m.SetTimeout(50 * time.Millisecond)
	c := NewSLICache(m, 2)
	table := TableName(6)
	if _, err := m.Acquire(100, table, S); err != nil {
		t.Fatal(err)
	}
	if err := c.Inherit(100, table, S); err != nil {
		t.Fatal(err)
	}
	// The S lock must have been released, not parked: another transaction
	// can take X immediately.
	if _, err := m.Acquire(101, table, X); err != nil {
		t.Fatalf("S lock was parked: %v", err)
	}
	if err := c.Inherit(100, KeyName(6, 1), X); err == nil {
		t.Fatal("key locks must not be inheritable")
	}
}

func TestLocalLockTable(t *testing.T) {
	l := NewLocal()
	n := KeyName(1, 1)
	if !l.TryAcquire(1, n, X) {
		t.Fatal("first acquire failed")
	}
	if l.TryAcquire(2, n, X) {
		t.Fatal("conflicting exclusive acquire succeeded")
	}
	if !l.TryAcquire(1, n, S) {
		t.Fatal("re-acquire by holder failed")
	}
	if !l.Holds(1, n) || l.Holds(2, n) {
		t.Fatal("Holds broken")
	}
	l.ReleaseTxn(1)
	if l.Len() != 0 {
		t.Fatal("release did not clear entries")
	}
	if !l.TryAcquire(2, n, X) {
		t.Fatal("acquire after release failed")
	}
}

func TestNamePropertyRoundTrip(t *testing.T) {
	f := func(space uint32, key uint64) bool {
		n := KeyName(space, key)
		if n.IsTable() {
			return key == 0 // KeyName remaps 0 to 1, so never table
		}
		return n.Space == space
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !TableName(3).IsTable() {
		t.Fatal("table name misclassified")
	}
	if TableName(3).String() == "" || KeyName(3, 4).String() == "" {
		t.Fatal("missing labels")
	}
}
