// Package lock implements database locking: the logical concurrency-control
// layer that isolates transactions from one another.
//
// Two implementations are provided:
//
//   - Manager: a centralized hierarchical lock manager in the style of
//     Shore-MT, with intention locks at the table level and key locks below,
//     a hash-partitioned lock table, FIFO wait queues and an optional
//     Speculative Lock Inheritance (SLI) cache per agent thread
//     [Johnson et al., PVLDB 2009].  Every lock-table bucket access is an
//     unscalable critical section and is reported to the cs statistics, which
//     is what makes the lock manager the tallest bar of Figure 1's baseline.
//   - Local: a thread-local lock table used by the logically-partitioned
//     (DORA) and PLP designs.  Because a partition is only ever touched by
//     its owning worker, lock state needs no critical sections at all; the
//     type still tracks conflicts between the actions queued on that worker
//     to preserve transaction isolation.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"plp/internal/cs"
)

// Mode is a lock mode.
type Mode int

// Lock modes (a subset of the standard hierarchy sufficient for the
// workloads in the paper).
const (
	None Mode = iota
	IS        // intention shared
	IX        // intention exclusive
	S         // shared
	X         // exclusive
)

// String returns the usual abbreviation of the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "N"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case X:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// compatible reports whether a lock held in mode h is compatible with a
// request for mode r.
func compatible(h, r Mode) bool {
	switch h {
	case None:
		return true
	case IS:
		return r != X
	case IX:
		return r == IS || r == IX
	case S:
		return r == IS || r == S
	case X:
		return false
	}
	return false
}

// Compatible exposes the compatibility matrix for tests and documentation.
func Compatible(held, requested Mode) bool { return compatible(held, requested) }

// stronger reports whether a is at least as strong as b for the purposes of
// re-requesting a lock already held.
func stronger(a, b Mode) bool {
	rank := func(m Mode) int {
		switch m {
		case None:
			return 0
		case IS:
			return 1
		case IX, S:
			return 2
		case X:
			return 4
		}
		return 0
	}
	if a == b {
		return true
	}
	if a == X {
		return true
	}
	if (a == IX && b == IS) || (a == S && b == IS) {
		return true
	}
	return rank(a) > rank(b) && b != S && b != IX
}

// Supremum returns the weakest mode that is at least as strong as both a
// and b (the lock upgrade target).
func Supremum(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a == None {
		return b
	}
	if b == None {
		return a
	}
	if a == X || b == X {
		return X
	}
	if (a == S && b == IX) || (a == IX && b == S) {
		return X // SIX is not modelled; escalate to X
	}
	if a == S || b == S {
		return S
	}
	if a == IX || b == IX {
		return IX
	}
	return IS
}

// Name identifies a lockable object: a table (Key == 0, Table-level lock) or
// a key within a table.
type Name struct {
	Space uint32 // table / index identifier
	Key   uint64 // 0 for the table-level lock; hash of the key otherwise
}

// TableName returns the table-level lock name for a space.
func TableName(space uint32) Name { return Name{Space: space} }

// KeyName returns the key-level lock name for a key hash within a space.
func KeyName(space uint32, keyHash uint64) Name {
	if keyHash == 0 {
		keyHash = 1 // avoid colliding with the table-level lock
	}
	return Name{Space: space, Key: keyHash}
}

// IsTable reports whether the name is a table-level lock.
func (n Name) IsTable() bool { return n.Key == 0 }

// String formats the lock name.
func (n Name) String() string {
	if n.IsTable() {
		return fmt.Sprintf("table(%d)", n.Space)
	}
	return fmt.Sprintf("key(%d,%d)", n.Space, n.Key)
}

// Errors returned by lock acquisition.
var (
	ErrTimeout  = errors.New("lock: wait timed out (possible deadlock)")
	ErrNotHeld  = errors.New("lock: not held by transaction")
	ErrShutdown = errors.New("lock: manager shut down")
)

// DefaultTimeout bounds lock waits; hitting it is treated as a deadlock and
// aborts the requesting transaction.
const DefaultTimeout = 2 * time.Second

// request is one holder or waiter entry in a lock queue.
type request struct {
	txn     uint64
	mode    Mode
	granted bool
	ready   chan struct{}
}

// head is the per-lock queue.
type head struct {
	queue []*request
}

// grantable reports whether a request for mode by txn can be granted given
// the currently granted entries (ignoring entries of the same transaction).
func (h *head) grantable(txn uint64, mode Mode) bool {
	for _, r := range h.queue {
		if !r.granted || r.txn == txn {
			continue
		}
		if !compatible(r.mode, mode) {
			return false
		}
	}
	return true
}

// bucketCount is the number of hash partitions of the lock table.
const bucketCount = 256

// Manager is the centralized lock manager.
type Manager struct {
	buckets [bucketCount]struct {
		mu    sync.Mutex
		locks map[Name]*head
	}
	cstats  *cs.Stats
	timeout time.Duration
}

// NewManager returns a centralized lock manager reporting critical sections
// into cstats (may be nil).
func NewManager(cstats *cs.Stats) *Manager {
	m := &Manager{cstats: cstats, timeout: DefaultTimeout}
	for i := range m.buckets {
		m.buckets[i].locks = make(map[Name]*head)
	}
	return m
}

// SetTimeout overrides the deadlock-detection timeout (tests use short
// values).
func (m *Manager) SetTimeout(d time.Duration) { m.timeout = d }

func (m *Manager) bucket(n Name) *struct {
	mu    sync.Mutex
	locks map[Name]*head
} {
	h := (uint64(n.Space)*0x9E3779B97F4A7C15 + n.Key) * 0xBF58476D1CE4E5B9
	return &m.buckets[h%bucketCount]
}

// Acquire obtains the named lock in the given mode on behalf of txn.  It
// blocks until the lock is granted or the timeout elapses.  It returns the
// time spent waiting.
func (m *Manager) Acquire(txn uint64, name Name, mode Mode) (time.Duration, error) {
	b := m.bucket(name)
	contended := !b.mu.TryLock()
	if contended {
		b.mu.Lock()
	}
	m.cstats.Record(cs.LockMgr, contended)

	h := b.locks[name]
	if h == nil {
		h = &head{}
		b.locks[name] = h
	}

	// Re-request by the same transaction: upgrade in place if possible.
	for _, r := range h.queue {
		if r.txn == txn && r.granted {
			if stronger(r.mode, mode) {
				b.mu.Unlock()
				return 0, nil
			}
			target := Supremum(r.mode, mode)
			if h.grantable(txn, target) {
				r.mode = target
				b.mu.Unlock()
				return 0, nil
			}
			// Upgrade must wait: fall through to enqueue a new request for
			// the stronger mode; the original remains granted.
			mode = target
			break
		}
	}

	req := &request{txn: txn, mode: mode}
	if h.grantable(txn, mode) && !h.hasWaiters(txn) {
		req.granted = true
		h.queue = append(h.queue, req)
		b.mu.Unlock()
		return 0, nil
	}
	req.ready = make(chan struct{})
	h.queue = append(h.queue, req)
	b.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(m.timeout)
	defer timer.Stop()
	select {
	case <-req.ready:
		return time.Since(start), nil
	case <-timer.C:
		// Timed out: remove the request and report a deadlock-style error.
		b.mu.Lock()
		// The grant may have raced with the timeout.
		select {
		case <-req.ready:
			b.mu.Unlock()
			return time.Since(start), nil
		default:
		}
		for i, r := range h.queue {
			if r == req {
				h.queue = append(h.queue[:i], h.queue[i+1:]...)
				break
			}
		}
		b.mu.Unlock()
		return time.Since(start), ErrTimeout
	}
}

// hasWaiters reports whether any other transaction is queued (ungranted)
// ahead of a new request; granting around waiters would starve them.
func (h *head) hasWaiters(txn uint64) bool {
	for _, r := range h.queue {
		if !r.granted && r.txn != txn {
			return true
		}
	}
	return false
}

// Release releases every lock held by txn on name.
func (m *Manager) Release(txn uint64, name Name) error {
	b := m.bucket(name)
	contended := !b.mu.TryLock()
	if contended {
		b.mu.Lock()
	}
	m.cstats.Record(cs.LockMgr, contended)
	defer b.mu.Unlock()

	h := b.locks[name]
	if h == nil {
		return ErrNotHeld
	}
	found := false
	filtered := h.queue[:0]
	for _, r := range h.queue {
		if r.txn == txn && r.granted {
			found = true
			continue
		}
		filtered = append(filtered, r)
	}
	h.queue = filtered
	if !found {
		return ErrNotHeld
	}
	m.grantWaitersLocked(h)
	if len(h.queue) == 0 {
		delete(b.locks, name)
	}
	return nil
}

// ReleaseAll releases every lock held by txn across all names and returns
// the number released.  Lock names must be supplied by the caller (the
// transaction tracks them) to avoid scanning the whole table.
func (m *Manager) ReleaseAll(txn uint64, names []Name) int {
	released := 0
	for _, n := range names {
		if err := m.Release(txn, n); err == nil {
			released++
		}
	}
	return released
}

// grantWaitersLocked grants as many queued waiters as compatibility allows,
// in FIFO order.
func (m *Manager) grantWaitersLocked(h *head) {
	for _, r := range h.queue {
		if r.granted {
			continue
		}
		if !h.grantable(r.txn, r.mode) {
			break // FIFO: do not overtake an incompatible waiter
		}
		r.granted = true
		if r.ready != nil {
			close(r.ready)
		}
	}
}

// HeldModes returns the modes txn currently holds on name (for tests).
func (m *Manager) HeldModes(txn uint64, name Name) []Mode {
	b := m.bucket(name)
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.locks[name]
	if h == nil {
		return nil
	}
	var out []Mode
	for _, r := range h.queue {
		if r.txn == txn && r.granted {
			out = append(out, r.mode)
		}
	}
	return out
}

// NumLocks returns the number of lock heads currently in the table.
func (m *Manager) NumLocks() int {
	n := 0
	for i := range m.buckets {
		b := &m.buckets[i]
		b.mu.Lock()
		n += len(b.locks)
		b.mu.Unlock()
	}
	return n
}

// SLICache implements Speculative Lock Inheritance.  Each agent thread owns
// one cache.  When a transaction commits, its hot (table-level) locks are
// not released; they are parked in the cache and the next transaction run by
// the same agent can reuse them without visiting the centralized lock
// manager, eliminating the associated critical sections.
type SLICache struct {
	mgr   *Manager
	owner uint64 // the synthetic "agent transaction" that holds parked locks
	held  map[Name]Mode
	hits  uint64
	miss  uint64
}

// NewSLICache returns an SLI cache bound to the given manager.  agentID must
// be unique across agents and distinct from every real transaction ID; the
// transaction ID space is split by using the high bit.
func NewSLICache(mgr *Manager, agentID uint64) *SLICache {
	return &SLICache{
		mgr:   mgr,
		owner: agentID | (1 << 63),
		held:  make(map[Name]Mode),
	}
}

// Acquire obtains name in mode on behalf of txn, reusing an inherited lock
// if the cache already holds a strong-enough one.
func (c *SLICache) Acquire(txn uint64, name Name, mode Mode) (time.Duration, bool, error) {
	if held, ok := c.held[name]; ok && stronger(held, mode) {
		c.hits++
		return 0, true, nil
	}
	c.miss++
	wait, err := c.mgr.Acquire(txn, name, mode)
	return wait, false, err
}

// Inherit parks the given table-level lock in the cache at commit time
// instead of releasing it.  The lock is re-acquired by the cache's own
// synthetic owner so that other agents still observe it as held.
//
// Only intention locks (IS/IX) are inherited: they are compatible with every
// other agent's intention locks, so parking them can never block the rest of
// the system, which is the safety condition speculative lock inheritance
// relies on.  Stronger table locks are simply released.
func (c *SLICache) Inherit(txn uint64, name Name, mode Mode) error {
	if !name.IsTable() {
		return fmt.Errorf("lock: only table-level locks are inheritable, got %v", name)
	}
	if mode != IS && mode != IX {
		return c.mgr.Release(txn, name)
	}
	if held, ok := c.held[name]; ok && stronger(held, mode) {
		// Already parked strongly enough; release the transaction's copy.
		return c.mgr.Release(txn, name)
	}
	if _, err := c.mgr.Acquire(c.owner, name, mode); err != nil {
		return err
	}
	c.held[name] = Supremum(c.held[name], mode)
	return c.mgr.Release(txn, name)
}

// Invalidate drops every parked lock (used when the agent shuts down or when
// a conflicting request must proceed).
func (c *SLICache) Invalidate() {
	for name := range c.held {
		_ = c.mgr.Release(c.owner, name)
		delete(c.held, name)
	}
}

// Stats returns the cache hit/miss counters.
func (c *SLICache) Stats() (hits, misses uint64) { return c.hits, c.miss }

// Local is a thread-local lock table for DORA/PLP partition workers.  The
// owning worker is the only goroutine that touches it, so no mutual
// exclusion is needed; conflicts are still detected so that two actions of
// different transactions queued on the same worker cannot interleave on the
// same key.
type Local struct {
	held map[Name]localEntry
}

type localEntry struct {
	txn  uint64
	mode Mode
}

// NewLocal returns an empty thread-local lock table.
func NewLocal() *Local {
	return &Local{held: make(map[Name]localEntry)}
}

// TryAcquire attempts to obtain name in mode for txn.  It reports false when
// another transaction holds an incompatible lock, in which case the caller
// (the partition worker) defers the action and retries after the holder
// completes.
func (l *Local) TryAcquire(txn uint64, name Name, mode Mode) bool {
	e, ok := l.held[name]
	if !ok {
		l.held[name] = localEntry{txn: txn, mode: mode}
		return true
	}
	if e.txn == txn {
		l.held[name] = localEntry{txn: txn, mode: Supremum(e.mode, mode)}
		return true
	}
	if compatible(e.mode, mode) && mode != X && e.mode != X {
		// Shared access by a different transaction: allow it but keep the
		// strongest holder recorded.  Exclusive requests must wait.
		return true
	}
	return false
}

// ReleaseTxn drops every lock held by txn.
func (l *Local) ReleaseTxn(txn uint64) {
	for name, e := range l.held {
		if e.txn == txn {
			delete(l.held, name)
		}
	}
}

// Holds reports whether txn holds a lock on name.
func (l *Local) Holds(txn uint64, name Name) bool {
	e, ok := l.held[name]
	return ok && e.txn == txn
}

// Len returns the number of held entries (for tests).
func (l *Local) Len() int { return len(l.held) }
