package harness

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/plan"
)

// kvWorkload is a minimal workload used to exercise the harness itself.
type kvWorkload struct {
	rows   int
	failAt int32
}

func (w *kvWorkload) Name() string { return "kv" }

func (w *kvWorkload) Setup(e *engine.Engine) error {
	if _, err := e.CreateTable(catalog.TableDef{
		Name:       "kv",
		Boundaries: [][]byte{keyenc.Uint64Key(uint64(w.rows / 2))},
	}); err != nil {
		return err
	}
	l := e.NewLoader()
	for i := 1; i <= w.rows; i++ {
		if err := l.Insert("kv", keyenc.Uint64Key(uint64(i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			return err
		}
	}
	return nil
}

func (w *kvWorkload) NextRequest(rng *rand.Rand) *engine.Request {
	id := uint64(1 + rng.Intn(w.rows))
	key := keyenc.Uint64Key(id)
	return engine.NewRequest(engine.Action{Table: "kv", Key: key, Exec: func(c *engine.Ctx) error {
		if rng.Intn(10) == 0 {
			return c.Update("kv", key, []byte("u"))
		}
		_, err := c.Read("kv", key)
		return err
	}})
}

func (w *kvWorkload) Verify(e *engine.Engine) error {
	l := e.NewLoader()
	for i := 1; i <= w.rows; i++ {
		if _, err := l.Read("kv", keyenc.Uint64Key(uint64(i))); err != nil {
			return err
		}
	}
	return nil
}

func newEngineAndWorkload(t *testing.T, design engine.Design) (*engine.Engine, *kvWorkload) {
	t.Helper()
	e := engine.New(engine.Options{Design: design, Partitions: 2})
	t.Cleanup(func() { _ = e.Close() })
	w := &kvWorkload{rows: 500}
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	return e, w
}

func TestRunByTransactionCount(t *testing.T) {
	e, w := newEngineAndWorkload(t, engine.PLPRegular)
	res, err := Run(e, w, RunConfig{Clients: 4, TxnsPerClient: 100, WarmupTxnsPerClient: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 400 {
		t.Fatalf("committed=%d want 400", res.Committed)
	}
	if res.ThroughputTPS <= 0 || res.AvgLatency <= 0 {
		t.Fatalf("derived metrics missing: %+v", res)
	}
	if res.Design != engine.PLPRegular.String() || res.Workload != "kv" || res.Clients != 4 {
		t.Fatalf("labels wrong: %+v", res)
	}
	if res.String() == "" {
		t.Fatal("summary missing")
	}
	// The warmup transactions must not be counted in the measured CS delta
	// beyond the measured interval (only sanity: CS/txn is a small number).
	if res.CSPerTxn.Total <= 0 || res.CSPerTxn.Total > 1000 {
		t.Fatalf("implausible cs/txn: %f", res.CSPerTxn.Total)
	}
	if err := w.Verify(e); err != nil {
		t.Fatal(err)
	}
}

func TestRunByDuration(t *testing.T) {
	e, w := newEngineAndWorkload(t, engine.Conventional)
	res, err := Run(e, w, RunConfig{Clients: 2, Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("duration-bounded run committed nothing")
	}
	if res.Elapsed < 100*time.Millisecond {
		t.Fatalf("elapsed %v shorter than requested", res.Elapsed)
	}
}

func TestRunPropagatesWorkloadErrors(t *testing.T) {
	e := engine.New(engine.Options{Design: engine.Logical, Partitions: 2})
	t.Cleanup(func() { _ = e.Close() })
	w := &kvWorkload{rows: 100}
	if err := w.Setup(e); err != nil {
		t.Fatal(err)
	}
	broken := &brokenWorkload{}
	// A request that fails inside its action aborts its transaction; the
	// harness reports those as aborts rather than run errors.
	res, err := Run(e, broken, RunConfig{Clients: 2, TxnsPerClient: 10})
	if err != nil {
		t.Fatalf("aborting workload should not fail the run: %v", err)
	}
	if res.Committed != 0 || res.Aborted != 20 {
		t.Fatalf("expected all transactions aborted, got %+v", res)
	}
}

// brokenWorkload issues requests against a missing table.
type brokenWorkload struct{}

func (*brokenWorkload) Name() string                 { return "broken" }
func (*brokenWorkload) Setup(e *engine.Engine) error { return nil }
func (*brokenWorkload) NextRequest(rng *rand.Rand) *engine.Request {
	key := keyenc.Uint64Key(1)
	return engine.NewRequest(engine.Action{Table: "missing", Key: key, Exec: func(c *engine.Ctx) error {
		_, err := c.Read("missing", key)
		return err
	}})
}

func TestRunTimelineSamplesAndEvent(t *testing.T) {
	e, w := newEngineAndWorkload(t, engine.PLPLeaf)
	fired := false
	points, err := RunTimeline(e, w, RunConfig{Clients: 2},
		300*time.Millisecond, 50*time.Millisecond, 100*time.Millisecond,
		func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("expected 6 samples, got %d", len(points))
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	total := 0.0
	for i, p := range points {
		if p.T != time.Duration(i+1)*50*time.Millisecond {
			t.Fatalf("sample %d at %v", i, p.T)
		}
		total += p.TPS
	}
	if total <= 0 {
		t.Fatal("no throughput recorded")
	}
}

// NextPlan gives kvWorkload a plan path: a read of one random key.
func (w *kvWorkload) NextPlan(rng *rand.Rand) *plan.Plan {
	id := uint64(1 + rng.Intn(w.rows))
	return plan.New().Get("kv", keyenc.Uint64Key(id)).MustBuild()
}

func TestRunUsePlans(t *testing.T) {
	e, w := newEngineAndWorkload(t, engine.PLPLeaf)
	res, err := Run(e, w, RunConfig{Clients: 2, TxnsPerClient: 50, UsePlans: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 100 {
		t.Fatalf("committed=%d want 100", res.Committed)
	}
	if res.AvgLatency <= 0 {
		t.Fatalf("latency accounting missing on the plan path: %+v", res)
	}
}

func TestRunUsePlansRequiresPlanWorkload(t *testing.T) {
	e := engine.New(engine.Options{Design: engine.Logical, Partitions: 2})
	t.Cleanup(func() { _ = e.Close() })
	if _, err := Run(e, &brokenWorkload{}, RunConfig{Clients: 1, TxnsPerClient: 1, UsePlans: true}); err == nil {
		t.Fatal("UsePlans with a plan-less workload must fail the run")
	}
}
