// Package harness drives workloads against engines and collects the
// measurements the paper's figures are built from: throughput, critical
// sections per transaction, page latches per transaction (by page type),
// and per-transaction time breakdowns.
package harness

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/cs"
	"plp/internal/engine"
	"plp/internal/latch"
	"plp/internal/txn"
	"plp/plan"
)

// Workload is implemented by every benchmark workload (TATP, TPC-B, TPC-C
// and the microbenchmarks).
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Setup creates the workload's tables on the engine and loads them.
	Setup(e *engine.Engine) error
	// NextRequest generates the next transaction request.  It is called
	// concurrently from multiple client goroutines, each with its own
	// rand.Rand.
	NextRequest(rng *rand.Rand) *engine.Request
}

// PlanWorkload is implemented by workloads whose transactions can be
// expressed as declarative plans — the closure-free path a client would
// ship over the wire.  Set RunConfig.UsePlans to drive it.
type PlanWorkload interface {
	Workload
	// NextPlan generates the next transaction as a plan.  A nil return
	// means the configured mix has no plan equivalent.
	NextPlan(rng *rand.Rand) *plan.Plan
}

// Verifier is implemented by workloads that can check database consistency
// after a run.
type Verifier interface {
	Verify(e *engine.Engine) error
}

// RunConfig configures a measured run.
type RunConfig struct {
	// Clients is the number of concurrent client goroutines ("hardware
	// contexts utilized" in the paper's figures).
	Clients int
	// Duration bounds the measured interval.  If zero, TxnsPerClient is
	// used instead.
	Duration time.Duration
	// TxnsPerClient bounds the run by transaction count when Duration is
	// zero.
	TxnsPerClient int
	// WarmupTxnsPerClient transactions are executed (and discarded from the
	// statistics) before measurement starts.
	WarmupTxnsPerClient int
	// Seed seeds the per-client random generators.
	Seed int64
	// UsePlans drives the workload through its declarative plan path
	// (NextPlan + CompilePlan) instead of closure requests.  The workload
	// must implement PlanWorkload.
	UsePlans bool
}

func (c *RunConfig) normalize() {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Duration <= 0 && c.TxnsPerClient <= 0 {
		c.TxnsPerClient = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result is the outcome of one measured run.
type Result struct {
	Workload string
	Design   string
	Clients  int

	Committed uint64
	Aborted   uint64
	Elapsed   time.Duration

	// ThroughputTPS is committed transactions per second.
	ThroughputTPS float64
	// AvgLatency is the mean end-to-end transaction latency.
	AvgLatency time.Duration

	// CS is the critical-section delta over the measured interval and
	// CSPerTxn its per-transaction view (Figure 1).
	CS       cs.Snapshot
	CSPerTxn cs.Breakdown

	// Latches is the page-latch delta (Figures 2 and 3).
	Latches latch.Snapshot
	// LatchesPerTxn is the number of latch acquisitions per transaction by
	// page kind.
	LatchesPerTxn [latch.NumKinds]float64

	// WaitPerTxn is the average blocked time per transaction by wait kind
	// (Figures 6, 7 and 10).
	WaitPerTxn [txn.NumWaitKinds]time.Duration
}

// String formats a one-line summary.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s clients=%d tps=%.0f committed=%d aborted=%d cs/txn=%.1f latches/txn=%.1f",
		r.Design, r.Workload, r.Clients, r.ThroughputTPS, r.Committed, r.Aborted,
		r.CSPerTxn.Total, perTxnTotal(r.LatchesPerTxn))
}

func perTxnTotal(v [latch.NumKinds]float64) float64 {
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t
}

// Run executes the workload against the engine.  Setup must already have
// been called; Run only executes requests and gathers statistics.
func Run(e *engine.Engine, w Workload, cfg RunConfig) (Result, error) {
	cfg.normalize()

	// Warmup.
	if cfg.WarmupTxnsPerClient > 0 {
		warm := cfg
		warm.Duration = 0
		warm.TxnsPerClient = cfg.WarmupTxnsPerClient
		warm.WarmupTxnsPerClient = 0
		if _, err := runClients(e, w, warm); err != nil {
			return Result{}, err
		}
	}
	return runClients(e, w, cfg)
}

// runClients performs one measured interval.
func runClients(e *engine.Engine, w Workload, cfg RunConfig) (Result, error) {
	var pw PlanWorkload
	if cfg.UsePlans {
		var ok bool
		if pw, ok = w.(PlanWorkload); !ok {
			return Result{}, fmt.Errorf("harness: UsePlans set but workload %s has no plan path", w.Name())
		}
	}
	csBefore := e.CSStats().Snapshot()
	latchBefore := e.LatchStats().Snapshot()
	txBefore := e.TxnStats()

	var (
		committed  atomic.Uint64
		aborted    atomic.Uint64
		latencySum atomic.Int64
		waitSums   [txn.NumWaitKinds]atomic.Int64
		firstErr   atomic.Value
	)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(clientID)*7919))
			sess := e.NewSession()
			defer sess.Close()
			executed := 0
			for {
				if cfg.Duration > 0 {
					select {
					case <-stop:
						return
					default:
					}
				} else if executed >= cfg.TxnsPerClient {
					return
				}
				var res engine.Result
				var err error
				if pw != nil {
					p := pw.NextPlan(rng)
					if p == nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("harness: %s returned no plan for its mix", w.Name()))
						return
					}
					results := make([]plan.Result, p.NumOps())
					req, finish, cerr := e.CompilePlan(p, results, nil)
					if cerr != nil {
						firstErr.CompareAndSwap(nil, cerr)
						return
					}
					res, err = sess.Execute(req)
					finish()
				} else {
					res, err = sess.Execute(w.NextRequest(rng))
				}
				executed++
				if err != nil {
					if errors.Is(err, engine.ErrAborted) {
						aborted.Add(1)
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				committed.Add(1)
				latencySum.Add(int64(res.Latency))
				for k := 0; k < txn.NumWaitKinds; k++ {
					waitSums[k].Add(int64(res.Breakdown.Waits[k]))
				}
			}
		}(c)
	}
	if cfg.Duration > 0 {
		time.Sleep(cfg.Duration)
		close(stop)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if v := firstErr.Load(); v != nil {
		return Result{}, v.(error)
	}

	csAfter := e.CSStats().Snapshot()
	latchAfter := e.LatchStats().Snapshot()
	txAfter := e.TxnStats()

	res := Result{
		Workload:  w.Name(),
		Design:    e.Design().String(),
		Clients:   cfg.Clients,
		Committed: committed.Load(),
		Aborted:   aborted.Load(),
		Elapsed:   elapsed,
		CS:        csAfter.Sub(csBefore),
		Latches:   latchAfter.Sub(latchBefore),
	}
	_ = txBefore
	_ = txAfter
	if elapsed > 0 {
		res.ThroughputTPS = float64(res.Committed) / elapsed.Seconds()
	}
	if res.Committed > 0 {
		res.AvgLatency = time.Duration(latencySum.Load() / int64(res.Committed))
		res.CSPerTxn = res.CS.PerTxn(res.Committed)
		for k := 0; k < latch.NumKinds; k++ {
			res.LatchesPerTxn[k] = float64(res.Latches.Acquired[k]) / float64(res.Committed)
		}
		for k := 0; k < txn.NumWaitKinds; k++ {
			res.WaitPerTxn[k] = time.Duration(waitSums[k].Load() / int64(res.Committed))
		}
	}
	return res, nil
}

// TimelinePoint is one throughput sample of a timeline run.
type TimelinePoint struct {
	// T is the time since the start of the run at the end of the interval.
	T time.Duration
	// TPS is the committed-transaction throughput during the interval.
	TPS float64
}

// RunTimeline executes the workload for total duration, sampling throughput
// every interval, and fires event once after eventAt (from a separate
// goroutine, as the repartitioning trigger of Figure 8 would).
func RunTimeline(e *engine.Engine, w Workload, cfg RunConfig, total, interval, eventAt time.Duration, event func()) ([]TimelinePoint, error) {
	cfg.normalize()
	var committed atomic.Uint64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(clientID int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(clientID)*104729))
			sess := e.NewSession()
			defer sess.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := w.NextRequest(rng)
				if _, err := sess.Execute(req); err != nil {
					if errors.Is(err, engine.ErrAborted) {
						continue
					}
					firstErr.CompareAndSwap(nil, err)
					return
				}
				committed.Add(1)
			}
		}(c)
	}

	if event != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-time.After(eventAt):
				event()
			case <-stop:
			}
		}()
	}

	var points []TimelinePoint
	start := time.Now()
	prev := uint64(0)
	for elapsed := interval; elapsed <= total; elapsed += interval {
		time.Sleep(time.Until(start.Add(elapsed)))
		cur := committed.Load()
		points = append(points, TimelinePoint{
			T:   elapsed,
			TPS: float64(cur-prev) / interval.Seconds(),
		})
		prev = cur
	}
	close(stop)
	wg.Wait()
	if v := firstErr.Load(); v != nil {
		return points, v.(error)
	}
	return points, nil
}
