package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestExtAutoBalanceShape(t *testing.T) {
	s := tinyScale()
	s.Duration = 150 * time.Millisecond
	r, err := ExtAutoBalance(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("expected 2 series, got %d", len(r.Series))
	}
	static, auto := r.Series[0], r.Series[1]
	if static.Decisions != 0 {
		t.Fatalf("static configuration rebalanced %d times", static.Decisions)
	}
	if auto.Decisions == 0 {
		t.Fatal("auto-balance configuration never rebalanced")
	}
	if len(auto.Points) == 0 || len(static.Points) == 0 {
		t.Fatal("empty timelines")
	}
	// The point of the monitor: after the skew shift the static
	// configuration serves the hot range from one worker, while the
	// auto-balanced one spreads it out.
	if static.HotShare < 0.75 {
		t.Fatalf("static hot-worker share %.2f, expected the skew to concentrate load", static.HotShare)
	}
	if auto.HotShare >= static.HotShare {
		t.Fatalf("auto-balance hot-worker share %.2f did not improve on static %.2f", auto.HotShare, static.HotShare)
	}
	out := r.String()
	if !strings.Contains(out, "EXT-1") || !strings.Contains(out, "auto-balance") {
		t.Fatalf("report text incomplete:\n%s", out)
	}
}

func TestExtRecoveryRoundTrip(t *testing.T) {
	s := tinyScale()
	r, err := ExtRecovery(s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatalf("recovered database failed verification: %+v", r)
	}
	if r.RowsOriginal != r.RowsRecovered {
		t.Fatalf("row counts differ: %d vs %d", r.RowsOriginal, r.RowsRecovered)
	}
	if r.CheckpointEntries < s.TATPSubscribers {
		t.Fatalf("checkpoint captured %d entries, want >= %d subscribers", r.CheckpointEntries, s.TATPSubscribers)
	}
	if r.TxnsExecuted == 0 || r.LogRecords == 0 {
		t.Fatalf("no workload was run before the crash: %+v", r)
	}
	if !strings.Contains(r.String(), "EXT-2") {
		t.Fatal("missing report header")
	}
}
