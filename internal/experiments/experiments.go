// Package experiments reproduces every table and figure of the paper's
// evaluation.  Each experiment builds fresh engines for the systems it
// compares, loads the workload, runs a measured interval through the
// harness and returns structured results that print as ASCII tables close
// to the paper's figures.
//
// Absolute numbers differ from the paper (different hardware, Go instead of
// C++, goroutines instead of bound threads); what is reproduced is the
// shape: which design wins, by roughly what factor, and where the
// crossovers are.  EXPERIMENTS.md records a measured run next to the
// paper's claims.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"plp/internal/cs"
	"plp/internal/engine"
	"plp/internal/harness"
	"plp/internal/latch"
	"plp/internal/txn"
	"plp/internal/workload/tatp"
	"plp/internal/workload/tpcb"
	"plp/internal/workload/tpcc"
)

// Scale controls how large the experiments are.  The defaults are sized so
// that the full suite runs in a few minutes on a laptop; the cmd/plpbench
// flags can raise them.
type Scale struct {
	// TATPSubscribers is the TATP scale factor.
	TATPSubscribers int
	// TPCBBranches is the TPC-B scale factor.
	TPCBBranches int
	// TPCBAccountsPerBranch overrides the accounts per branch.
	TPCBAccountsPerBranch int
	// TPCCWarehouses is the TPC-C scale factor.
	TPCCWarehouses int
	// Partitions is the number of logical partitions / worker threads used
	// by the partitioned designs.
	Partitions int
	// Clients is the default number of client goroutines.
	Clients int
	// Duration is the measured interval of time-bounded runs.
	Duration time.Duration
	// TxnsPerClient is used instead of Duration when it is zero.
	TxnsPerClient int
	// Warmup transactions per client before measuring.
	Warmup int
}

// DefaultScale returns the scale used by the benchmark suite.
func DefaultScale() Scale {
	return Scale{
		TATPSubscribers:       20000,
		TPCBBranches:          2,
		TPCBAccountsPerBranch: 10000,
		TPCCWarehouses:        2,
		Partitions:            8,
		Clients:               8,
		TxnsPerClient:         2000,
		Warmup:                200,
	}
}

// TestScale returns a small scale for unit tests.
func TestScale() Scale {
	return Scale{
		TATPSubscribers:       2000,
		TPCBBranches:          1,
		TPCBAccountsPerBranch: 1000,
		TPCCWarehouses:        1,
		Partitions:            4,
		Clients:               4,
		TxnsPerClient:         200,
		Warmup:                20,
	}
}

func (s Scale) runConfig() harness.RunConfig {
	return harness.RunConfig{
		Clients:             s.Clients,
		Duration:            s.Duration,
		TxnsPerClient:       s.TxnsPerClient,
		WarmupTxnsPerClient: s.Warmup,
		Seed:                1,
	}
}

// systemConfig names an engine configuration under comparison.
type systemConfig struct {
	label string
	opts  engine.Options
}

// baselineSystems returns the configurations of Figure 1: the conventional
// system without and with SLI, the logically-partitioned system, and the
// PLP variants.
func (s Scale) baselineSystems(includeBaselineNoSLI bool) []systemConfig {
	var out []systemConfig
	if includeBaselineNoSLI {
		out = append(out, systemConfig{"Baseline", engine.Options{Design: engine.Conventional, Partitions: s.Partitions}})
	}
	out = append(out,
		systemConfig{"Conventional (SLI)", engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true}},
		systemConfig{"Logical", engine.Options{Design: engine.Logical, Partitions: s.Partitions}},
		systemConfig{"PLP-Regular", engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions}},
		systemConfig{"PLP-Leaf", engine.Options{Design: engine.PLPLeaf, Partitions: s.Partitions}},
	)
	return out
}

// setupTATP builds an engine for cfg and loads a TATP database into it.
func setupTATP(cfg engine.Options, s Scale, mix tatp.Mix) (*engine.Engine, *tatp.Workload, error) {
	e := engine.New(cfg)
	w := tatp.New(tatp.Config{
		Subscribers: s.TATPSubscribers,
		Partitions:  cfg.Partitions,
		Mix:         mix,
	})
	if err := w.Setup(e); err != nil {
		e.Close()
		return nil, nil, fmt.Errorf("tatp setup (%s): %w", cfg.Design, err)
	}
	return e, w, nil
}

// setupTPCB builds an engine for cfg and loads a TPC-B database into it.
func setupTPCB(cfg engine.Options, s Scale) (*engine.Engine, *tpcb.Workload, error) {
	e := engine.New(cfg)
	w := tpcb.New(tpcb.Config{
		Branches:          s.TPCBBranches,
		AccountsPerBranch: s.TPCBAccountsPerBranch,
		Partitions:        cfg.Partitions,
	})
	if err := w.Setup(e); err != nil {
		e.Close()
		return nil, nil, fmt.Errorf("tpcb setup (%s): %w", cfg.Design, err)
	}
	return e, w, nil
}

//
// Figure 1 — critical sections per transaction, by component.
//

// Fig1Row is one bar of Figure 1.
type Fig1Row struct {
	System    string
	PerTxn    cs.Breakdown
	Committed uint64
}

// Fig1Result is the full figure.
type Fig1Result struct {
	Rows []Fig1Row
}

// Fig1 runs the standard TATP mix on the Figure 1 systems and reports the
// number of critical sections entered per transaction, by component.
func Fig1(s Scale) (*Fig1Result, error) {
	res := &Fig1Result{}
	for _, sys := range s.baselineSystems(true) {
		e, w, err := setupTATP(sys.opts, s, tatp.MixStandard)
		if err != nil {
			return nil, err
		}
		r, err := harness.Run(e, w, s.runConfig())
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("fig1 %s: %w", sys.label, err)
		}
		res.Rows = append(res.Rows, Fig1Row{System: sys.label, PerTxn: r.CSPerTxn, Committed: r.Committed})
	}
	return res, nil
}

// String renders the figure as an ASCII table.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: critical sections per transaction (TATP mix)\n")
	fmt.Fprintf(&b, "%-20s", "component")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%20s", row.System)
	}
	b.WriteByte('\n')
	for _, cat := range cs.Categories() {
		fmt.Fprintf(&b, "%-20s", cat.String())
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%20.2f", row.PerTxn.Entered[cat])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-20s", "TOTAL")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%20.2f", row.PerTxn.Total)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-20s", "contended")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%20.2f", row.PerTxn.TotalContended)
	}
	b.WriteByte('\n')
	return b.String()
}

//
// Figure 2 — page-latch breakdown by page type across benchmarks.
//

// Fig2Row is one bar of Figure 2.
type Fig2Row struct {
	Workload      string
	LatchesPerTxn [latch.NumKinds]float64
}

// Fig2Result is the full figure.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 runs TATP, TPC-B and TPC-C on the conventional system and breaks the
// acquired page latches down by page type.
func Fig2(s Scale) (*Fig2Result, error) {
	res := &Fig2Result{}
	convOpts := engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true}

	// TATP.
	{
		e, w, err := setupTATP(convOpts, s, tatp.MixStandard)
		if err != nil {
			return nil, err
		}
		r, err := harness.Run(e, w, s.runConfig())
		e.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig2Row{Workload: "TATP", LatchesPerTxn: r.LatchesPerTxn})
	}
	// TPC-B.
	{
		e, w, err := setupTPCB(convOpts, s)
		if err != nil {
			return nil, err
		}
		r, err := harness.Run(e, w, s.runConfig())
		e.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig2Row{Workload: "TPC-B", LatchesPerTxn: r.LatchesPerTxn})
	}
	// TPC-C.
	{
		e := engine.New(convOpts)
		w := tpcc.New(tpcc.Config{Warehouses: s.TPCCWarehouses, Partitions: convOpts.Partitions})
		if err := w.Setup(e); err != nil {
			e.Close()
			return nil, err
		}
		r, err := harness.Run(e, w, s.runConfig())
		e.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig2Row{Workload: "TPC-C", LatchesPerTxn: r.LatchesPerTxn})
	}
	return res, nil
}

// String renders the figure.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: page latches per transaction by page type (conventional system)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %16s %10s\n", "workload", "INDEX", "HEAP", "CATALOG/SPACE", "index%")
	for _, row := range r.Rows {
		total := 0.0
		for _, v := range row.LatchesPerTxn {
			total += v
		}
		idxPct := 0.0
		if total > 0 {
			idxPct = 100 * row.LatchesPerTxn[latch.KindIndex] / total
		}
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %16.1f %9.0f%%\n", row.Workload,
			row.LatchesPerTxn[latch.KindIndex], row.LatchesPerTxn[latch.KindHeap],
			row.LatchesPerTxn[latch.KindCatalog], idxPct)
	}
	return b.String()
}

//
// Figure 3 — page latches acquired by the different designs (TATP).
//

// Fig3Row is one bar of Figure 3.
type Fig3Row struct {
	System        string
	LatchesPerTxn [latch.NumKinds]float64
	Total         float64
}

// Fig3Result is the full figure.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 runs the same TATP transaction stream on the conventional,
// logically-partitioned, PLP-Regular and PLP-Leaf systems and counts page
// latch acquisitions per transaction.
func Fig3(s Scale) (*Fig3Result, error) {
	systems := []systemConfig{
		{"Conv.", engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true}},
		{"Logical", engine.Options{Design: engine.Logical, Partitions: s.Partitions}},
		{"PLP", engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions}},
		{"PLP-Leaf", engine.Options{Design: engine.PLPLeaf, Partitions: s.Partitions}},
	}
	res := &Fig3Result{}
	for _, sys := range systems {
		e, w, err := setupTATP(sys.opts, s, tatp.MixStandard)
		if err != nil {
			return nil, err
		}
		r, err := harness.Run(e, w, s.runConfig())
		e.Close()
		if err != nil {
			return nil, err
		}
		row := Fig3Row{System: sys.label, LatchesPerTxn: r.LatchesPerTxn}
		for _, v := range r.LatchesPerTxn {
			row.Total += v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the figure.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: page latches acquired per transaction by design (TATP)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s %16s %10s\n", "design", "INDEX", "HEAP", "CATALOG/SPACE", "TOTAL")
	base := 0.0
	for i, row := range r.Rows {
		if i == 0 {
			base = row.Total
		}
		rel := ""
		if base > 0 {
			rel = fmt.Sprintf("(%.0f%% of Conv.)", 100*row.Total/base)
		}
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %16.1f %10.1f %s\n", row.System,
			row.LatchesPerTxn[latch.KindIndex], row.LatchesPerTxn[latch.KindHeap],
			row.LatchesPerTxn[latch.KindCatalog], row.Total, rel)
	}
	return b.String()
}

//
// Figure 5 — throughput scaling of the read-only GetSubscriberData stream.
//

// Fig5Point is one measurement of Figure 5.
type Fig5Point struct {
	System  string
	Clients int
	TPS     float64
}

// Fig5Result is the full figure.
type Fig5Result struct {
	Points []Fig5Point
}

// Fig5 measures GetSubscriberData throughput for the conventional, logical
// and PLP systems as the number of clients grows.
func Fig5(s Scale, clientCounts []int) (*Fig5Result, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{1, 2, 4, 8}
	}
	systems := []systemConfig{
		{"Conv.", engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true}},
		{"Logical", engine.Options{Design: engine.Logical, Partitions: s.Partitions}},
		{"PLP", engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions}},
	}
	res := &Fig5Result{}
	for _, sys := range systems {
		e, w, err := setupTATP(sys.opts, s, tatp.MixGetSubscriberData)
		if err != nil {
			return nil, err
		}
		for _, clients := range clientCounts {
			cfg := s.runConfig()
			cfg.Clients = clients
			r, err := harness.Run(e, w, cfg)
			if err != nil {
				e.Close()
				return nil, err
			}
			res.Points = append(res.Points, Fig5Point{System: sys.label, Clients: clients, TPS: r.ThroughputTPS})
		}
		e.Close()
	}
	return res, nil
}

// String renders the figure.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: GetSubscriberData throughput (tps) vs client count\n")
	byClients := map[int]map[string]float64{}
	var systems []string
	seen := map[string]bool{}
	var clients []int
	seenC := map[int]bool{}
	for _, p := range r.Points {
		if byClients[p.Clients] == nil {
			byClients[p.Clients] = map[string]float64{}
		}
		byClients[p.Clients][p.System] = p.TPS
		if !seen[p.System] {
			seen[p.System] = true
			systems = append(systems, p.System)
		}
		if !seenC[p.Clients] {
			seenC[p.Clients] = true
			clients = append(clients, p.Clients)
		}
	}
	fmt.Fprintf(&b, "%-10s", "clients")
	for _, sys := range systems {
		fmt.Fprintf(&b, "%14s", sys)
	}
	b.WriteByte('\n')
	for _, c := range clients {
		fmt.Fprintf(&b, "%-10d", c)
		for _, sys := range systems {
			fmt.Fprintf(&b, "%14.0f", byClients[c][sys])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// newRand returns a deterministic RNG for experiments that need one outside
// the harness.
func newRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

// waitName is a short alias used by the breakdown formatters.
func waitName(k txn.WaitKind) string { return k.String() }
