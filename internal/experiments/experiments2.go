// The remaining experiments: repartitioning costs (Table 1), time
// breakdowns (Figures 6, 7 and 10), the repartitioning timeline (Figure 8),
// MRBTrees inside conventional systems (Figure 9), heap fragmentation and
// scan overhead (Figures 11 and 12), and the design-choice ablations called
// out in DESIGN.md.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"plp/internal/costmodel"
	"plp/internal/cs"
	"plp/internal/engine"
	"plp/internal/harness"
	"plp/internal/keyenc"
	"plp/internal/latch"
	"plp/internal/page"
	"plp/internal/txn"
	"plp/internal/workload/micro"
	"plp/internal/workload/tatp"
)

//
// Table 1 — repartitioning costs.
//

// Table1Analytical evaluates the Appendix C cost model with the paper's
// Table 1 parameters.
func Table1Analytical() []costmodel.Cost {
	return costmodel.AllCosts(costmodel.Table1Params())
}

// Table1MeasuredRow is one measured repartitioning of a loaded database.
type Table1MeasuredRow struct {
	System       string
	EntriesMoved int
	RecordsMoved int
	Duration     time.Duration
}

// Table1Measured loads the same TATP subscriber table into the PLP designs
// and measures the cost of splitting one partition in half with the MRBTree
// slice machinery (via Engine.Rebalance).
func Table1Measured(s Scale) ([]Table1MeasuredRow, error) {
	designs := []engine.Design{engine.PLPRegular, engine.PLPLeaf, engine.PLPPartition}
	var rows []Table1MeasuredRow
	for _, d := range designs {
		opts := engine.Options{Design: d, Partitions: s.Partitions}
		e, _, err := setupTATP(opts, s, tatp.MixBalanceProbe)
		if err != nil {
			return nil, err
		}
		// Move the boundary of partition 1 to the middle of partition 0,
		// i.e. split the first partition's data in half.
		perPart := uint64(s.TATPSubscribers) / uint64(s.Partitions)
		newBoundary := keyenc.Uint64Key(perPart / 2)
		st, err := e.Rebalance(tatp.TableSubscriber, 1, newBoundary)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("table1 %s: %w", d, err)
		}
		rows = append(rows, Table1MeasuredRow{
			System:       d.String(),
			EntriesMoved: st.EntriesMoved,
			RecordsMoved: st.RecordsMoved,
			Duration:     st.Duration,
		})
		e.Close()
	}
	return rows, nil
}

// FormatTable1 renders the analytical and measured repartitioning costs.
func FormatTable1(analytical []costmodel.Cost, measured []Table1MeasuredRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: repartitioning cost model (split a 466 MB partition in half)\n")
	fmt.Fprintf(&b, "%-28s %16s %16s %12s %12s %14s %14s\n",
		"system", "records moved", "entries moved", "pages read", "ptr updates", "primary", "secondary")
	for _, c := range analytical {
		fmt.Fprintf(&b, "%-28s %11d (%3s) %16d %12d %12d %14s %14s\n",
			c.System.String(), c.RecordsMoved, byteSize(c.RecordBytesMoved),
			c.EntriesMoved, c.PagesRead, c.PointerUpdates, c.Primary.String(), c.Secondary.String())
	}
	if len(measured) > 0 {
		fmt.Fprintf(&b, "\nMeasured on this implementation (TATP subscriber table, split first partition in half):\n")
		fmt.Fprintf(&b, "%-28s %16s %16s %14s\n", "system", "entries moved", "records moved", "duration")
		for _, m := range measured {
			fmt.Fprintf(&b, "%-28s %16d %16d %14s\n", m.System, m.EntriesMoved, m.RecordsMoved, m.Duration)
		}
	}
	return b.String()
}

// byteSize formats a byte count compactly.
func byteSize(n int) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Table2 returns the closed-form cost model formulas (Appendix C, Table 2)
// as text, so the CLI can print them next to the evaluated costs.
func Table2() string {
	return strings.Join([]string{
		"Table 2: repartitioning cost model (h = tree height, n = entries/node, m_k = entries moved at level k, M = records moved)",
		"  PLP-Regular    : records 0                     entries Σ m_k        reads 0        pages 0            ptr 2h+1  primary -            secondary -",
		"  PLP-Leaf       : records m_1                   entries Σ m_k        reads M        pages 1            ptr 2h+1  primary M updates    secondary M updates",
		"  PLP-Partition  : records m_1+Σ n^(h-l-1)(m_..-1) entries Σ m_k      reads M        pages 1+(M-m_1)/n  ptr 2h+1  primary M updates    secondary M updates",
		"  Shared-Nothing : records (as PLP-Partition)    entries -            reads M        pages 1+(M-m_1)/n  ptr -     primary M ins+M del  secondary M ins+M del",
		"  PLP (Clustered): records m_1                   entries Σ_{k>=2} m_k reads -        pages -            ptr 2h+1  primary -            secondary M updates",
		"  SN  (Clustered): records (as PLP-Partition)    entries -            reads -        pages -            ptr -     primary M ins+M del  secondary M ins+M del",
	}, "\n") + "\n"
}

//
// Figures 6, 7, 10 — per-transaction time breakdowns.
//

// BreakdownRow is one bar of a time-breakdown figure.
type BreakdownRow struct {
	System     string
	Clients    int
	TPS        float64
	AvgLatency time.Duration
	WaitPerTxn [txn.NumWaitKinds]time.Duration
}

// Other returns the non-blocked part of the average latency.
func (r BreakdownRow) Other() time.Duration {
	total := r.AvgLatency
	for _, w := range r.WaitPerTxn {
		total -= w
	}
	if total < 0 {
		return 0
	}
	return total
}

// BreakdownResult is a full time-breakdown figure.
type BreakdownResult struct {
	Title string
	Rows  []BreakdownRow
}

// String renders the figure.
func (r *BreakdownResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-22s %8s %10s %12s %14s %14s %12s %12s\n",
		"system", "clients", "tps", "latency", "idx latch", "heap latch", "smo wait", "other")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %8d %10.0f %12s %14s %14s %12s %12s\n",
			row.System, row.Clients, row.TPS, row.AvgLatency.Round(time.Microsecond),
			row.WaitPerTxn[txn.WaitIndexLatch].Round(time.Microsecond),
			row.WaitPerTxn[txn.WaitHeapLatch].Round(time.Microsecond),
			row.WaitPerTxn[txn.WaitSMO].Round(time.Microsecond),
			row.Other().Round(time.Microsecond))
	}
	return b.String()
}

// Fig6 runs the insert/delete-heavy TATP stream (CallForwarding inserts and
// deletes) and reports the per-transaction time breakdown, showing the index
// latch contention that PLP eliminates.
func Fig6(s Scale, clientCounts []int) (*BreakdownResult, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{s.Clients}
	}
	systems := []systemConfig{
		{"Conv.", engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true}},
		{"Logical", engine.Options{Design: engine.Logical, Partitions: s.Partitions}},
		{"PLP", engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions}},
	}
	res := &BreakdownResult{Title: "Figure 6: time breakdown per transaction, insert/delete-heavy workload"}
	for _, sys := range systems {
		e, w, err := setupTATP(sys.opts, s, tatp.MixInsertDeleteCallFwd)
		if err != nil {
			return nil, err
		}
		for _, clients := range clientCounts {
			cfg := s.runConfig()
			cfg.Clients = clients
			r, err := harness.Run(e, w, cfg)
			if err != nil {
				e.Close()
				return nil, err
			}
			res.Rows = append(res.Rows, BreakdownRow{
				System: sys.label, Clients: clients, TPS: r.ThroughputTPS,
				AvgLatency: r.AvgLatency, WaitPerTxn: r.WaitPerTxn,
			})
		}
		e.Close()
	}
	return res, nil
}

// Fig7 runs TPC-B without record padding and reports the per-transaction
// time breakdown, showing heap-page false sharing.
func Fig7(s Scale, clientCounts []int) (*BreakdownResult, error) {
	if len(clientCounts) == 0 {
		clientCounts = []int{s.Clients}
	}
	systems := []systemConfig{
		{"Conv.", engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true}},
		{"Logical", engine.Options{Design: engine.Logical, Partitions: s.Partitions}},
		{"PLP-Reg", engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions}},
		{"PLP-Leaf", engine.Options{Design: engine.PLPLeaf, Partitions: s.Partitions}},
	}
	res := &BreakdownResult{Title: "Figure 7: time breakdown per transaction, TPC-B with heap false sharing"}
	for _, sys := range systems {
		e, w, err := setupTPCB(sys.opts, s)
		if err != nil {
			return nil, err
		}
		for _, clients := range clientCounts {
			cfg := s.runConfig()
			cfg.Clients = clients
			r, err := harness.Run(e, w, cfg)
			if err != nil {
				e.Close()
				return nil, err
			}
			res.Rows = append(res.Rows, BreakdownRow{
				System: sys.label, Clients: clients, TPS: r.ThroughputTPS,
				AvgLatency: r.AvgLatency, WaitPerTxn: r.WaitPerTxn,
			})
		}
		e.Close()
	}
	return res, nil
}

//
// Figure 8 — throughput timeline during repartitioning.
//

// Fig8Series is the throughput timeline of one design.
type Fig8Series struct {
	System string
	Points []harness.TimelinePoint
	// Rebalance describes the repartitioning performed at the skew change.
	Rebalance engine.RebalanceStats
}

// Fig8Result is the full figure.
type Fig8Result struct {
	Series  []Fig8Series
	EventAt time.Duration
}

// Fig8 runs the balance-probe microbenchmark on every design.  Partway
// through the run the request distribution changes from uniform to skewed
// (50% of the requests target the first 10% of the subscribers) and the
// partitioned designs rebalance by moving the first partition boundary.
func Fig8(s Scale) (*Fig8Result, error) {
	const (
		interval = 100 * time.Millisecond
	)
	total := 3 * time.Second
	eventAt := time.Second
	if s.Duration > 0 && s.Duration < time.Second {
		// Scaled-down runs (tests) shrink the timeline too.
		total = 6 * s.Duration
		eventAt = 2 * s.Duration
	}
	systems := []systemConfig{
		{"Conv.", engine.Options{Design: engine.Conventional, Partitions: 2, SLI: true}},
		{"Logical", engine.Options{Design: engine.Logical, Partitions: 2}},
		{"PLP-Reg.", engine.Options{Design: engine.PLPRegular, Partitions: 2}},
		{"PLP-Part", engine.Options{Design: engine.PLPPartition, Partitions: 2}},
		{"PLP-Leaf", engine.Options{Design: engine.PLPLeaf, Partitions: 2}},
	}
	res := &Fig8Result{EventAt: eventAt}
	for _, sys := range systems {
		opts := sys.opts
		e, w, err := setupTATP(opts, s, tatp.MixBalanceProbe)
		if err != nil {
			return nil, err
		}
		series := Fig8Series{System: sys.label}
		hotBoundary := keyenc.Uint64Key(uint64(s.TATPSubscribers/10) + 1)
		event := func() {
			// The workload becomes skewed and the engine rebalances so that
			// the hot 10% of the key space forms its own partition.
			w.SetSkew(0.10, 0.50)
			if opts.Design.Partitioned() || opts.UseMRBTree {
				st, rerr := e.Rebalance(tatp.TableSubscriber, 1, hotBoundary)
				if rerr == nil {
					series.Rebalance = st
				}
			}
		}
		cfg := s.runConfig()
		cfg.Clients = 2 // the paper's experiment uses 2 clients
		points, err := harness.RunTimeline(e, w, cfg, total, interval, eventAt, event)
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("fig8 %s: %w", sys.label, err)
		}
		series.Points = points
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// String renders the timeline as a table of throughput samples.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: throughput (tps) during repartitioning (skew change at %s)\n", r.EventAt)
	fmt.Fprintf(&b, "%-10s", "t")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%12s", s.System)
	}
	b.WriteByte('\n')
	if len(r.Series) == 0 {
		return b.String()
	}
	for i := range r.Series[0].Points {
		fmt.Fprintf(&b, "%-10s", r.Series[0].Points[i].T.Round(time.Millisecond))
		for _, s := range r.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%12.0f", s.Points[i].TPS)
			} else {
				fmt.Fprintf(&b, "%12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		if s.Rebalance.EntriesMoved > 0 || s.Rebalance.RecordsMoved > 0 || s.Rebalance.RoutingOnly {
			fmt.Fprintf(&b, "%s rebalance: routingOnly=%v entries=%d records=%d in %s\n",
				s.System, s.Rebalance.RoutingOnly, s.Rebalance.EntriesMoved, s.Rebalance.RecordsMoved,
				s.Rebalance.Duration.Round(time.Microsecond))
		}
	}
	return b.String()
}

//
// Figure 9 — MRBTrees inside the conventional and logical designs.
//

// Fig9Row is one bar of Figure 9.
type Fig9Row struct {
	System  string
	MRBTree bool
	TPS     float64
	Height  int
}

// Fig9Result is the full figure.
type Fig9Result struct {
	Rows []Fig9Row
}

// Fig9 measures the TATP throughput of the conventional and logical systems
// with single-rooted indexes and with MRBTrees.
func Fig9(s Scale) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, d := range []engine.Design{engine.Conventional, engine.Logical} {
		for _, useMRB := range []bool{false, true} {
			opts := engine.Options{Design: d, Partitions: s.Partitions, SLI: d == engine.Conventional, UseMRBTree: useMRB}
			e, w, err := setupTATP(opts, s, tatp.MixStandard)
			if err != nil {
				return nil, err
			}
			r, err := harness.Run(e, w, s.runConfig())
			if err != nil {
				e.Close()
				return nil, err
			}
			h := 0
			if tbl, terr := e.Table(tatp.TableSubscriber); terr == nil {
				h, _ = tbl.Primary.Height()
			}
			label := d.String()
			res.Rows = append(res.Rows, Fig9Row{System: label, MRBTree: useMRB, TPS: r.ThroughputTPS, Height: h})
			e.Close()
		}
	}
	return res, nil
}

// String renders the figure.
func (r *Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: TATP throughput with and without MRBTree indexes\n")
	fmt.Fprintf(&b, "%-16s %-8s %12s %8s\n", "system", "index", "tps", "height")
	for _, row := range r.Rows {
		idx := "Normal"
		if row.MRBTree {
			idx = "MRBT"
		}
		fmt.Fprintf(&b, "%-16s %-8s %12.0f %8d\n", row.System, idx, row.TPS, row.Height)
	}
	return b.String()
}

//
// Figure 10 — parallel SMOs as the insert ratio grows.
//

// Fig10Row is one group of bars of Figure 10.
type Fig10Row struct {
	InsertPercent int
	MRBTree       bool
	TPS           float64
	AvgLatency    time.Duration
	SMOWait       time.Duration
}

// Fig10Result is the full figure.
type Fig10Result struct {
	Rows []Fig10Row
}

// Fig10 runs the probe/insert microbenchmark on the conventional system
// with and without MRBTrees as the fraction of inserts grows, measuring the
// time spent waiting on structure modification operations.
func Fig10(s Scale, insertPercents []int) (*Fig10Result, error) {
	if len(insertPercents) == 0 {
		insertPercents = []int{0, 20, 40, 60, 80, 100}
	}
	res := &Fig10Result{}
	for _, pct := range insertPercents {
		for _, useMRB := range []bool{false, true} {
			opts := engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: true, UseMRBTree: useMRB}
			e := engine.New(opts)
			w := micro.NewProbeInsert(micro.ProbeInsertConfig{
				InitialRows:   s.TATPSubscribers,
				InsertPercent: pct,
				RecordSize:    100,
				Partitions:    s.Partitions,
			})
			if err := w.Setup(e); err != nil {
				e.Close()
				return nil, err
			}
			r, err := harness.Run(e, w, s.runConfig())
			e.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig10Row{
				InsertPercent: pct, MRBTree: useMRB, TPS: r.ThroughputTPS,
				AvgLatency: r.AvgLatency, SMOWait: r.WaitPerTxn[txn.WaitSMO],
			})
		}
	}
	return res, nil
}

// String renders the figure.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: conventional system with parallel SMOs (probe/insert microbenchmark)\n")
	fmt.Fprintf(&b, "%-10s %-8s %12s %12s %14s\n", "inserts%", "index", "tps", "latency", "smo wait/txn")
	for _, row := range r.Rows {
		idx := "Normal"
		if row.MRBTree {
			idx = "MRBT"
		}
		fmt.Fprintf(&b, "%-10d %-8s %12.0f %12s %14s\n", row.InsertPercent, idx, row.TPS,
			row.AvgLatency.Round(time.Microsecond), row.SMOWait.Round(time.Microsecond))
	}
	return b.String()
}

//
// Figures 11 and 12 — heap fragmentation and scan overhead.
//

// Fig11Row is one bar of Figure 11.
type Fig11Row struct {
	System     string
	RecordSize int
	Records    int
	HeapPages  int
	Normalized float64 // heap pages relative to the conventional system
}

// Fig11Result is the full figure.
type Fig11Result struct {
	Rows []Fig11Row
}

// fragmentationSystems are the designs compared by Figures 11 and 12.
func fragmentationSystems(parts int) []systemConfig {
	return []systemConfig{
		{"Conventional", engine.Options{Design: engine.Conventional, Partitions: parts, SLI: true}},
		{"PLP-Regular", engine.Options{Design: engine.PLPRegular, Partitions: parts}},
		{"PLP-Partition", engine.Options{Design: engine.PLPPartition, Partitions: parts}},
		{"PLP-Leaf", engine.Options{Design: engine.PLPLeaf, Partitions: parts}},
	}
}

// Fig11 loads the same record set into every design and compares the number
// of heap pages used.
func Fig11(s Scale, recordSizes []int) (*Fig11Result, error) {
	if len(recordSizes) == 0 {
		recordSizes = []int{100, 1000}
	}
	res := &Fig11Result{}
	for _, rs := range recordSizes {
		records := s.TATPSubscribers * 4
		if rs >= 1000 {
			records = s.TATPSubscribers
		}
		var basePages int
		for _, sys := range fragmentationSystems(s.Partitions) {
			e := engine.New(sys.opts)
			pages, err := micro.LoadFragmentation(e, micro.FragmentationConfig{
				Records:    records,
				RecordSize: rs,
				Partitions: s.Partitions,
			})
			e.Close()
			if err != nil {
				return nil, err
			}
			if sys.label == "Conventional" {
				basePages = pages
			}
			norm := 0.0
			if basePages > 0 {
				norm = float64(pages) / float64(basePages)
			}
			res.Rows = append(res.Rows, Fig11Row{
				System: sys.label, RecordSize: rs, Records: records,
				HeapPages: pages, Normalized: norm,
			})
		}
	}
	return res, nil
}

// String renders the figure.
func (r *Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: heap space overhead of the PLP variations (pages, normalized to Conventional)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "system", "record size", "records", "heap pages", "normalized")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12d %12d %12d %12.2f\n", row.System, row.RecordSize, row.Records, row.HeapPages, row.Normalized)
	}
	return b.String()
}

// Fig12Row is one bar of Figure 12.
type Fig12Row struct {
	System     string
	Records    int
	ScanTime   time.Duration
	Normalized float64
}

// Fig12Result is the full figure.
type Fig12Result struct {
	Rows []Fig12Row
}

// Fig12 loads the same record set into every design and measures the time
// to scan the heap file.
func Fig12(s Scale) (*Fig12Result, error) {
	records := s.TATPSubscribers * 4
	res := &Fig12Result{}
	var baseTime time.Duration
	for _, sys := range fragmentationSystems(s.Partitions) {
		e := engine.New(sys.opts)
		if _, err := micro.LoadFragmentation(e, micro.FragmentationConfig{
			Records:    records,
			RecordSize: 100,
			Partitions: s.Partitions,
		}); err != nil {
			e.Close()
			return nil, err
		}
		start := time.Now()
		n := 0
		if err := e.ScanHeap(micro.FragmentationTable, func(_ page.RID, _ []byte) bool {
			n++
			return true
		}); err != nil {
			e.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		e.Close()
		if n != records {
			return nil, fmt.Errorf("fig12 %s: scanned %d of %d records", sys.label, n, records)
		}
		if sys.label == "Conventional" {
			baseTime = elapsed
		}
		norm := 0.0
		if baseTime > 0 {
			norm = float64(elapsed) / float64(baseTime)
		}
		res.Rows = append(res.Rows, Fig12Row{System: sys.label, Records: records, ScanTime: elapsed, Normalized: norm})
	}
	return res, nil
}

// String renders the figure.
func (r *Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: heap file scan time (normalized to Conventional)\n")
	fmt.Fprintf(&b, "%-16s %12s %14s %12s\n", "system", "records", "scan time", "normalized")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %12d %14s %12.2f\n", row.System, row.Records, row.ScanTime.Round(time.Microsecond), row.Normalized)
	}
	return b.String()
}

//
// Ablations.
//

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Label         string
	TPS           float64
	CSPerTxn      float64
	LatchesPerTxn float64
}

// AblationResult is one ablation study.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	fmt.Fprintf(&b, "%-36s %12s %14s %16s\n", "configuration", "tps", "cs/txn", "latches/txn")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-36s %12.0f %14.1f %16.1f\n", row.Label, row.TPS, row.CSPerTxn, row.LatchesPerTxn)
	}
	return b.String()
}

// runAblation measures one configuration on the TATP standard mix.
func runAblation(label string, opts engine.Options, s Scale, mix tatp.Mix) (AblationRow, error) {
	e, w, err := setupTATP(opts, s, mix)
	if err != nil {
		return AblationRow{}, err
	}
	defer e.Close()
	r, err := harness.Run(e, w, s.runConfig())
	if err != nil {
		return AblationRow{}, err
	}
	latches := 0.0
	for _, v := range r.LatchesPerTxn {
		latches += v
	}
	return AblationRow{Label: label, TPS: r.ThroughputTPS, CSPerTxn: r.CSPerTxn.Total, LatchesPerTxn: latches}, nil
}

// AblationSLI compares the conventional system with and without speculative
// lock inheritance.
func AblationSLI(s Scale) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: Speculative Lock Inheritance (conventional, TATP)"}
	for _, sli := range []bool{false, true} {
		label := "Conventional, SLI off"
		if sli {
			label = "Conventional, SLI on"
		}
		row, err := runAblation(label, engine.Options{Design: engine.Conventional, Partitions: s.Partitions, SLI: sli}, s, tatp.MixStandard)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationLatchFreeIndex compares PLP-Regular with latch-free sub-trees
// against the same design with latching forced back on.
func AblationLatchFreeIndex(s Scale) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: latch-free index access inside PLP (TATP)"}
	for _, forced := range []bool{true, false} {
		label := "PLP-Regular, latched sub-trees"
		if !forced {
			label = "PLP-Regular, latch-free sub-trees"
		}
		row, err := runAblation(label, engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions, ForceLatchedIndex: forced}, s, tatp.MixStandard)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationLogBuffer compares the Aether-style consolidated log buffer with a
// single-mutex buffer on an update-heavy stream.
func AblationLogBuffer(s Scale) (*AblationResult, error) {
	res := &AblationResult{Title: "Ablation: consolidated vs naive log buffer (PLP-Regular, update-heavy TATP)"}
	for _, naive := range []bool{true, false} {
		label := "Naive single-mutex log buffer"
		if !naive {
			label = "Consolidated (Aether-style) log buffer"
		}
		row, err := runAblation(label, engine.Options{Design: engine.PLPRegular, Partitions: s.Partitions, NaiveLog: naive}, s, tatp.MixUpdateLocation)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationPartitionCount sweeps the number of logical partitions of
// PLP-Regular on the read-only TATP stream.
func AblationPartitionCount(s Scale, counts []int) (*AblationResult, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	res := &AblationResult{Title: "Ablation: MRBTree partition count (PLP-Regular, GetSubscriberData)"}
	for _, n := range counts {
		row, err := runAblation(fmt.Sprintf("%d partitions", n),
			engine.Options{Design: engine.PLPRegular, Partitions: n}, s, tatp.MixGetSubscriberData)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// suppress unused warnings for helpers shared with experiments.go.
var _ = newRand
var _ = waitName
var _ = latch.NumKinds
var _ = cs.NumCategories
