package experiments

import (
	"strings"
	"testing"
	"time"

	"plp/internal/latch"
)

// tinyScale keeps the experiment integration tests fast.
func tinyScale() Scale {
	s := TestScale()
	s.TATPSubscribers = 1000
	s.TPCBAccountsPerBranch = 500
	s.Partitions = 2
	s.Clients = 2
	s.TxnsPerClient = 100
	s.Warmup = 10
	return s
}

func TestFig1ShapePLPEliminatesLatchCS(t *testing.T) {
	r, err := Fig1(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("expected 5 systems, got %d", len(r.Rows))
	}
	baseline := r.Rows[0]
	plpLeaf := r.Rows[len(r.Rows)-1]
	if plpLeaf.PerTxn.Total >= baseline.PerTxn.Total {
		t.Fatalf("PLP-Leaf (%.1f cs/txn) should enter fewer critical sections than the baseline (%.1f)",
			plpLeaf.PerTxn.Total, baseline.PerTxn.Total)
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Fatal("missing report header")
	}
}

func TestFig2IndexLatchesDominate(t *testing.T) {
	r, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("expected TATP, TPC-B and TPC-C rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		total := row.LatchesPerTxn[latch.KindIndex] + row.LatchesPerTxn[latch.KindHeap] + row.LatchesPerTxn[latch.KindCatalog]
		if total == 0 {
			t.Fatalf("%s acquired no latches", row.Workload)
		}
		// Index latches are the largest (or co-largest) component in the
		// paper's Figure 2.  At the tiny test scale our trees are only 1-2
		// levels deep, so accept index latches being marginally below heap
		// latches (within 25%) but never a minor component.
		if row.LatchesPerTxn[latch.KindIndex] < 0.75*row.LatchesPerTxn[latch.KindHeap] {
			t.Fatalf("%s: index latches (%.1f) should be a dominant component vs heap (%.1f)",
				row.Workload, row.LatchesPerTxn[latch.KindIndex], row.LatchesPerTxn[latch.KindHeap])
		}
		if row.LatchesPerTxn[latch.KindIndex] < row.LatchesPerTxn[latch.KindCatalog] {
			t.Fatalf("%s: catalog latches exceed index latches", row.Workload)
		}
	}
}

func TestFig3PLPEliminatesPageLatches(t *testing.T) {
	r, err := Fig3(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig3Row{}
	for _, row := range r.Rows {
		byName[row.System] = row
	}
	conv, plp, leaf := byName["Conv."], byName["PLP"], byName["PLP-Leaf"]
	if conv.Total == 0 {
		t.Fatal("conventional system acquired no latches")
	}
	// The paper: PLP-Regular removes >80% of page latching; PLP-Leaf nearly
	// all of it.
	if plp.Total > 0.5*conv.Total {
		t.Fatalf("PLP latches/txn %.2f not far below conventional %.2f", plp.Total, conv.Total)
	}
	if leaf.Total > plp.Total {
		t.Fatalf("PLP-Leaf (%.2f) should not exceed PLP-Regular (%.2f)", leaf.Total, plp.Total)
	}
	if leaf.LatchesPerTxn[latch.KindHeap] != 0 {
		t.Fatalf("PLP-Leaf acquired heap latches: %.2f", leaf.LatchesPerTxn[latch.KindHeap])
	}
}

func TestTable1PLPMovesAlmostNothing(t *testing.T) {
	analytic := Table1Analytical()
	if len(analytic) != 6 {
		t.Fatalf("expected 6 analytical rows, got %d", len(analytic))
	}
	measured, err := Table1Measured(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table1MeasuredRow{}
	for _, m := range measured {
		byName[m.System] = m
	}
	reg := byName["PLP-Regular"]
	part := byName["PLP-Partition"]
	if reg.RecordsMoved != 0 {
		t.Fatalf("PLP-Regular moved %d heap records", reg.RecordsMoved)
	}
	if part.RecordsMoved == 0 {
		t.Fatal("PLP-Partition should relocate heap records")
	}
	if reg.EntriesMoved == 0 {
		t.Fatal("slice should move a boundary path of index entries")
	}
	out := FormatTable1(analytic, measured)
	if !strings.Contains(out, "Shared-Nothing") || !strings.Contains(out, "Measured") {
		t.Fatal("table formatting incomplete")
	}
	if Table2() == "" {
		t.Fatal("table 2 formulas missing")
	}
}

func TestFig5PLPLeadsAtHighClientCounts(t *testing.T) {
	s := tinyScale()
	r, err := Fig5(s, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	tps := map[string]map[int]float64{}
	for _, p := range r.Points {
		if tps[p.System] == nil {
			tps[p.System] = map[int]float64{}
		}
		tps[p.System][p.Clients] = p.TPS
	}
	for sys, m := range tps {
		if m[1] <= 0 || m[4] <= 0 {
			t.Fatalf("%s has zero throughput", sys)
		}
	}
	if r.String() == "" {
		t.Fatal("report missing")
	}
}

func TestFig6PLPHasNoIndexLatchWait(t *testing.T) {
	s := tinyScale()
	r, err := Fig6(s, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	var plp *BreakdownRow
	for i := range r.Rows {
		if r.Rows[i].System == "PLP" {
			plp = &r.Rows[i]
		}
	}
	if plp == nil {
		t.Fatal("PLP row missing")
	}
	if plp.WaitPerTxn[0] != 0 { // WaitIndexLatch
		t.Fatalf("PLP spent %v waiting on index latches", plp.WaitPerTxn[0])
	}
}

func TestFig7PLPLeafHasNoHeapLatchWait(t *testing.T) {
	s := tinyScale()
	r, err := Fig7(s, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	var leaf *BreakdownRow
	for i := range r.Rows {
		if r.Rows[i].System == "PLP-Leaf" {
			leaf = &r.Rows[i]
		}
	}
	if leaf == nil {
		t.Fatal("PLP-Leaf row missing")
	}
	if leaf.WaitPerTxn[1] != 0 { // WaitHeapLatch
		t.Fatalf("PLP-Leaf spent %v waiting on heap latches", leaf.WaitPerTxn[1])
	}
	if leaf.Other() < 0 {
		t.Fatal("negative residual latency")
	}
}

func TestFig8TimelineAndRebalanceCosts(t *testing.T) {
	s := tinyScale()
	s.Duration = 100 * time.Millisecond // shrink the timeline
	r, err := Fig8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("expected 5 series, got %d", len(r.Series))
	}
	var partMoved, leafMoved int
	for _, series := range r.Series {
		if len(series.Points) == 0 {
			t.Fatalf("%s has no samples", series.System)
		}
		switch series.System {
		case "PLP-Part":
			partMoved = series.Rebalance.RecordsMoved
		case "PLP-Leaf":
			leafMoved = series.Rebalance.RecordsMoved
		case "Logical":
			if !series.Rebalance.RoutingOnly {
				t.Fatal("logical rebalance should be routing-only")
			}
		}
	}
	// PLP-Partition must pay far more than PLP-Leaf during repartitioning
	// (the Figure 8 dip).
	if partMoved <= leafMoved {
		t.Fatalf("PLP-Partition moved %d records, PLP-Leaf %d; expected Partition >> Leaf", partMoved, leafMoved)
	}
	if !strings.Contains(r.String(), "Figure 8") {
		t.Fatal("report missing")
	}
}

func TestFig9MRBTreeNotSlower(t *testing.T) {
	r, err := Fig9(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TPS <= 0 {
			t.Fatalf("%s has no throughput", row.System)
		}
		if row.MRBTree && row.Height == 0 {
			t.Fatal("height not measured")
		}
	}
}

func TestFig10MRBTreeReducesSMOWaitWhenInsertHeavy(t *testing.T) {
	s := tinyScale()
	s.Clients = 4
	r, err := Fig10(s, []int{100})
	if err != nil {
		t.Fatal(err)
	}
	var normal, mrbt Fig10Row
	for _, row := range r.Rows {
		if row.MRBTree {
			mrbt = row
		} else {
			normal = row
		}
	}
	if normal.TPS <= 0 || mrbt.TPS <= 0 {
		t.Fatal("missing throughput")
	}
	// The MRBTree's parallel SMOs must not make things worse.  At the tiny
	// test scale both SMO waits are a few microseconds and noisy, so only
	// compare when the single-rooted wait is large enough to be meaningful.
	if normal.SMOWait > 100*time.Microsecond && mrbt.SMOWait > 2*normal.SMOWait {
		t.Fatalf("MRBTree SMO wait (%v) should not exceed single-rooted (%v) by this much", mrbt.SMOWait, normal.SMOWait)
	}
}

func TestFig11LeafFragmentsMost(t *testing.T) {
	r, err := Fig11(tinyScale(), []int{100})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig11Row{}
	for _, row := range r.Rows {
		byName[row.System] = row
	}
	if byName["PLP-Regular"].Normalized > 1.05 {
		t.Fatalf("PLP-Regular should not fragment: %.2f", byName["PLP-Regular"].Normalized)
	}
	if byName["PLP-Leaf"].Normalized < byName["PLP-Partition"].Normalized {
		t.Fatalf("PLP-Leaf (%.2f) should fragment at least as much as PLP-Partition (%.2f)",
			byName["PLP-Leaf"].Normalized, byName["PLP-Partition"].Normalized)
	}
}

func TestFig12ScanCompletes(t *testing.T) {
	r, err := Fig12(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ScanTime <= 0 || row.Normalized <= 0 {
			t.Fatalf("%s scan not measured: %+v", row.System, row)
		}
	}
}

func TestAblations(t *testing.T) {
	s := tinyScale()
	sli, err := AblationSLI(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sli.Rows) != 2 || sli.String() == "" {
		t.Fatal("SLI ablation incomplete")
	}
	lf, err := AblationLatchFreeIndex(s)
	if err != nil {
		t.Fatal(err)
	}
	if lf.Rows[0].LatchesPerTxn <= lf.Rows[1].LatchesPerTxn {
		t.Fatalf("forcing latches should increase latch count: %+v", lf.Rows)
	}
	logb, err := AblationLogBuffer(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(logb.Rows) != 2 {
		t.Fatal("log buffer ablation incomplete")
	}
	parts, err := AblationPartitionCount(s, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts.Rows) != 2 {
		t.Fatal("partition count ablation incomplete")
	}
}
