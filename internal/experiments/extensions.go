// Extension experiments: features the paper describes but does not evaluate
// directly (automatic load balancing, Appendix E / Section 3.2.1) and the
// restart-recovery story of the shared log (Section 2.3).  They are reported
// as EXT-1 and EXT-2 in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"plp/internal/balance"
	"plp/internal/engine"
	"plp/internal/harness"
	"plp/internal/keyenc"
	"plp/internal/recovery"
	"plp/internal/workload/tatp"
)

//
// EXT-1 — automatic load balancing.
//

// observingWorkload wraps a workload and reports every generated routing key
// to the balance monitor, playing the role of the request-submission layer
// that feeds the partition manager.
type observingWorkload struct {
	harness.Workload
	table   string
	monitor *balance.Monitor
}

// NextRequest implements harness.Workload.
func (o *observingWorkload) NextRequest(rng *rand.Rand) *engine.Request {
	req := o.Workload.NextRequest(rng)
	for _, phase := range req.Phases {
		for i := range phase {
			if phase[i].Table == o.table {
				o.monitor.Observe(phase[i].Key)
			}
		}
	}
	return req
}

// ExtAutoBalanceSeries is the timeline of one configuration.
type ExtAutoBalanceSeries struct {
	// Label identifies the configuration.
	Label string
	// Points is the throughput timeline.
	Points []harness.TimelinePoint
	// Decisions is the number of automatic rebalances performed.
	Decisions int
	// PostSkewTPS is the average throughput after the skew change.
	PostSkewTPS float64
	// PostSkewShares is the fraction of post-skew actions executed by each
	// partition worker; HotShare is the largest of them.  This is the
	// quantity the monitor exists to equalize: a worker stuck near 100%
	// means the skewed range is served by a single thread.
	PostSkewShares []float64
	HotShare       float64
}

// ExtAutoBalanceResult compares PLP-Leaf with and without the automatic
// load-balance monitor under a skew change.
type ExtAutoBalanceResult struct {
	Series  []ExtAutoBalanceSeries
	EventAt time.Duration
}

// ExtAutoBalance reproduces the Figure 8 scenario (uniform load that turns
// skewed mid-run) but instead of the experiment driver calling Rebalance by
// hand, the balance monitor detects the imbalance from the observed keys and
// repartitions on its own.  The expected shape: without the monitor the
// post-skew throughput stays depressed because one partition worker carries
// most of the load; with the monitor it recovers after the automatic split.
func ExtAutoBalance(s Scale) (*ExtAutoBalanceResult, error) {
	const interval = 100 * time.Millisecond
	total := 3 * time.Second
	eventAt := time.Second
	if s.Duration > 0 && s.Duration < time.Second {
		total = 6 * s.Duration
		eventAt = 2 * s.Duration
	}

	res := &ExtAutoBalanceResult{EventAt: eventAt}
	for _, withMonitor := range []bool{false, true} {
		opts := engine.Options{Design: engine.PLPLeaf, Partitions: 2}
		e, w, err := setupTATP(opts, s, tatp.MixBalanceProbe)
		if err != nil {
			return nil, err
		}

		label := "PLP-Leaf (static)"
		var run harness.Workload = w
		var mon *balance.Monitor
		if withMonitor {
			label = "PLP-Leaf (auto-balance)"
			mon, err = balance.NewMonitor(e, balance.Config{
				Table:           tatp.TableSubscriber,
				Threshold:       1.3,
				MinObservations: 500,
				CheckInterval:   50 * time.Millisecond,
			})
			if err != nil {
				e.Close()
				return nil, err
			}
			mon.Start()
			run = &observingWorkload{Workload: w, table: tatp.TableSubscriber, monitor: mon}
		}

		// The skew is stronger than Figure 8's (90% of the requests on 10% of
		// the keys instead of 50%): with only two partitions the hot worker
		// must carry nearly all the work for rebalancing to matter, which is
		// the situation the monitor exists for.
		var atEvent []uint64
		event := func() {
			w.SetSkew(0.10, 0.90)
			for _, ws := range e.PartitionStats() {
				atEvent = append(atEvent, ws.Executed)
			}
		}
		cfg := s.runConfig()
		cfg.Clients = 2 * opts.Partitions
		points, err := harness.RunTimeline(e, run, cfg, total, interval, eventAt, event)
		if mon != nil {
			mon.Stop()
		}
		series := ExtAutoBalanceSeries{Label: label, Points: points}
		if mon != nil {
			series.Decisions = len(mon.Decisions())
		}
		var sum float64
		var n int
		for _, p := range points {
			if p.T > eventAt+interval {
				sum += p.TPS
				n++
			}
		}
		if n > 0 {
			series.PostSkewTPS = sum / float64(n)
		}
		// Post-skew per-worker load shares: executed actions since the event.
		atEnd := e.PartitionStats()
		if len(atEvent) == len(atEnd) && len(atEnd) > 0 {
			var total float64
			deltas := make([]float64, len(atEnd))
			for i := range atEnd {
				deltas[i] = float64(atEnd[i].Executed - atEvent[i])
				total += deltas[i]
			}
			if total > 0 {
				for i := range deltas {
					share := deltas[i] / total
					series.PostSkewShares = append(series.PostSkewShares, share)
					if share > series.HotShare {
						series.HotShare = share
					}
				}
			}
		}
		e.Close()
		if err != nil {
			return nil, fmt.Errorf("ext-autobalance %s: %w", label, err)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// String renders the timelines side by side.
func (r *ExtAutoBalanceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXT-1: automatic load balancing (skew change at %s)\n", r.EventAt)
	fmt.Fprintf(&b, "%-10s", "t")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%26s", s.Label)
	}
	b.WriteByte('\n')
	if len(r.Series) == 0 {
		return b.String()
	}
	for i := range r.Series[0].Points {
		fmt.Fprintf(&b, "%-10s", r.Series[0].Points[i].T.Round(time.Millisecond))
		for _, s := range r.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%26.0f", s.Points[i].TPS)
			} else {
				fmt.Fprintf(&b, "%26s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%s: post-skew avg %.0f tps, %d automatic rebalance(s), post-skew worker shares:", s.Label, s.PostSkewTPS, s.Decisions)
		for _, sh := range s.PostSkewShares {
			fmt.Fprintf(&b, " %.0f%%", 100*sh)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

//
// EXT-2 — checkpointing and logical restart recovery.
//

// ExtRecoveryResult reports one crash/recovery round trip over the TATP
// database.
type ExtRecoveryResult struct {
	// Subscribers is the TATP scale used.
	Subscribers int
	// TxnsExecuted is the number of transactions run before the "crash".
	TxnsExecuted uint64
	// LogRecords is the number of log records at crash time.
	LogRecords int
	// CheckpointEntries and CheckpointDuration describe the checkpoint taken
	// after loading.
	CheckpointEntries  int
	CheckpointDuration time.Duration
	// ReplaySnapshotEntries, ReplayApplied and ReplaySkippedLoser describe
	// the recovery pass.
	ReplaySnapshotEntries int
	ReplayApplied         int
	ReplaySkippedLoser    int
	// RecoveryDuration is the wall-clock time of Analyze+Replay.
	RecoveryDuration time.Duration
	// Verified reports whether the recovered database passed the workload's
	// consistency check and matched the crashed engine's row count.
	Verified bool
	// RowsOriginal and RowsRecovered are the subscriber row counts.
	RowsOriginal  int
	RowsRecovered int
}

// ExtRecovery loads TATP on a PLP-Leaf engine, checkpoints it, runs an
// update-heavy transaction mix, simulates a crash (the engine is discarded
// without flushing) and recovers the log into a fresh engine, verifying that
// the recovered database is consistent and complete.
func ExtRecovery(s Scale) (*ExtRecoveryResult, error) {
	opts := engine.Options{Design: engine.PLPLeaf, Partitions: s.Partitions}
	e, w, err := setupTATP(opts, s, tatp.MixStandard)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	res := &ExtRecoveryResult{Subscribers: s.TATPSubscribers}

	cp, err := recovery.Checkpoint(e, 0)
	if err != nil {
		return nil, fmt.Errorf("ext-recovery checkpoint: %w", err)
	}
	res.CheckpointEntries = cp.Entries
	res.CheckpointDuration = cp.Duration

	cfg := s.runConfig()
	if _, err := harness.Run(e, w, cfg); err != nil {
		return nil, fmt.Errorf("ext-recovery workload: %w", err)
	}
	res.TxnsExecuted = e.TxnStats().Committed
	res.LogRecords = len(e.Log().Records())

	// "Crash": no orderly shutdown, no flush.  Build a fresh engine with the
	// same schema and recover the log into it.
	target := engine.New(opts)
	defer target.Close()
	tw := tatp.New(tatp.Config{Subscribers: s.TATPSubscribers, Partitions: opts.Partitions, Mix: tatp.MixStandard})
	if err := tw.SetupSchema(target); err != nil {
		return nil, fmt.Errorf("ext-recovery target schema: %w", err)
	}

	start := time.Now()
	_, rst, err := recovery.Recover(e.Log(), target.NewLoader())
	if err != nil {
		return nil, fmt.Errorf("ext-recovery recover: %w", err)
	}
	res.RecoveryDuration = time.Since(start)
	res.ReplaySnapshotEntries = rst.SnapshotEntries
	res.ReplayApplied = rst.Applied
	res.ReplaySkippedLoser = rst.SkippedLoser

	count := func(e *engine.Engine) (int, error) {
		n := 0
		err := e.NewLoader().ReadRange(tatp.TableSubscriber, nil, nil, func(_, _ []byte) bool { n++; return true })
		return n, err
	}
	if res.RowsOriginal, err = count(e); err != nil {
		return nil, err
	}
	if res.RowsRecovered, err = count(target); err != nil {
		return nil, err
	}
	res.Verified = res.RowsOriginal == res.RowsRecovered
	if res.Verified {
		if err := tw.Verify(target); err != nil {
			res.Verified = false
		}
	}
	return res, nil
}

// String renders the recovery report.
func (r *ExtRecoveryResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "EXT-2: checkpoint + logical restart recovery (TATP, %d subscribers)\n", r.Subscribers)
	fmt.Fprintf(&b, "  checkpoint:        %d entries in %s\n", r.CheckpointEntries, r.CheckpointDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  workload:          %d committed txns, %d log records at crash\n", r.TxnsExecuted, r.LogRecords)
	fmt.Fprintf(&b, "  recovery:          %s (snapshot %d entries, %d ops replayed, %d loser ops skipped)\n",
		r.RecoveryDuration.Round(time.Millisecond), r.ReplaySnapshotEntries, r.ReplayApplied, r.ReplaySkippedLoser)
	fmt.Fprintf(&b, "  rows:              original=%d recovered=%d\n", r.RowsOriginal, r.RowsRecovered)
	fmt.Fprintf(&b, "  consistency check: %v\n", r.Verified)
	return b.String()
}

// hotBoundaryKey returns the boundary splitting off the first hotFraction of
// the subscriber key space (used by tests that exercise the monitor against
// TATP directly).
func hotBoundaryKey(subscribers int, hotFraction float64) []byte {
	return keyenc.Uint64Key(uint64(float64(subscribers)*hotFraction) + 1)
}
