package costmodel

import (
	"testing"
	"testing/quick"
)

func TestTable1Shape(t *testing.T) {
	costs := AllCosts(Table1Params())
	byName := map[System]Cost{}
	for _, c := range costs {
		byName[c.System] = c
	}

	// PLP-Regular moves no records at all.
	if byName[PLPRegular].RecordsMoved != 0 {
		t.Fatalf("PLP-Regular moves records: %+v", byName[PLPRegular])
	}
	// PLP-Leaf moves only one leaf page's worth of records.
	leaf := byName[PLPLeaf]
	if leaf.RecordsMoved == 0 || leaf.RecordsMoved > 200 {
		t.Fatalf("PLP-Leaf records moved = %d, expected a leaf's worth", leaf.RecordsMoved)
	}
	// PLP-Partition and Shared-Nothing move the whole new partition — orders
	// of magnitude more than PLP-Leaf (Table 1 shows 233 MB vs 8.3 KB).
	part := byName[PLPPartition]
	sn := byName[SharedNothing]
	if part.RecordsMoved < 1000*leaf.RecordsMoved {
		t.Fatalf("PLP-Partition (%d) should move vastly more records than PLP-Leaf (%d)",
			part.RecordsMoved, leaf.RecordsMoved)
	}
	if sn.RecordsMoved != part.RecordsMoved {
		t.Fatalf("Shared-Nothing (%d) and PLP-Partition (%d) should move the same records",
			sn.RecordsMoved, part.RecordsMoved)
	}
	// Shared-nothing pays inserts+deletes on both indexes; PLP pays updates.
	if sn.Primary.Inserts == 0 || sn.Primary.Deletes == 0 || sn.Primary.Updates != 0 {
		t.Fatalf("Shared-Nothing primary changes wrong: %+v", sn.Primary)
	}
	if part.Primary.Updates == 0 || part.Primary.Inserts != 0 {
		t.Fatalf("PLP-Partition primary changes wrong: %+v", part.Primary)
	}
	// Clustered PLP beats clustered shared-nothing on record movement.
	if byName[PLPClustered].RecordsMoved >= byName[SharedNothingClustered].RecordsMoved {
		t.Fatal("clustered PLP should move fewer records than clustered shared-nothing")
	}
	// Pointer updates are 2h+1 for the PLP designs.
	p := Table1Params()
	want := 2*p.Height + 1
	for _, s := range []System{PLPRegular, PLPLeaf, PLPPartition, PLPClustered} {
		if byName[s].PointerUpdates != want {
			t.Fatalf("%v pointer updates = %d want %d", s, byName[s].PointerUpdates, want)
		}
	}
}

func TestRecordBytesScale(t *testing.T) {
	p := Table1Params()
	costs := AllCosts(p)
	for _, c := range costs {
		if c.RecordBytesMoved != c.RecordsMoved*p.RecordSize {
			t.Fatalf("%v byte accounting wrong", c.System)
		}
	}
}

func TestSystemsAndLabels(t *testing.T) {
	if len(Systems()) != 6 {
		t.Fatal("expected 6 cost-model rows")
	}
	for _, s := range Systems() {
		if s.String() == "" {
			t.Fatalf("missing label for %d", s)
		}
	}
	if (IndexChanges{}).String() != "-" {
		t.Fatal("empty changes should print as -")
	}
	if (IndexChanges{Updates: 5}).String() != "5 U" {
		t.Fatal("update changes format wrong")
	}
}

func TestPropertyMonotoneInBoundaryEntries(t *testing.T) {
	// Moving more entries on the boundary path must never decrease any
	// system's cost.
	f := func(m1 uint8, m2 uint8) bool {
		base := Params{
			Height:               3,
			EntriesPerNode:       100,
			EntriesMovedPerLevel: []int{int(m1%100) + 1, int(m2%100) + 1, 1},
			RecordSize:           100,
			EntrySize:            32,
			RecordsInPartition:   1 << 30,
			HasSecondary:         true,
		}
		bigger := base
		bigger.EntriesMovedPerLevel = []int{int(m1%100) + 2, int(m2%100) + 2, 2}
		for _, s := range Systems() {
			if CostOf(s, bigger).RecordsMoved < CostOf(s, base).RecordsMoved {
				return false
			}
			if CostOf(s, bigger).EntriesMoved < CostOf(s, base).EntriesMoved {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRecordsMovedCappedByPartitionSize(t *testing.T) {
	p := Table1Params()
	p.RecordsInPartition = 100
	c := CostOf(PLPPartition, p)
	if c.RecordsMoved > 100 {
		t.Fatalf("records moved %d exceeds partition size", c.RecordsMoved)
	}
}
