// Package costmodel implements the repartitioning cost model of the paper's
// Appendix C (Table 2) and its instantiation for the example split of
// Table 1 (a partition holding 466 MB of 100-byte records split in half,
// with a non-clustered primary index of height 3 holding 170 32-byte
// entries per page).
//
// The model counts, for each system, the number of records and index
// entries that must be moved, the pages that must be read, the pointer
// updates on index and routing pages, and the update/insert/delete
// operations applied to the primary and secondary indexes.
package costmodel

import "fmt"

// System identifies a row of Table 1 / Table 2.
type System int

// The systems compared by the cost model.
const (
	PLPRegular System = iota
	PLPLeaf
	PLPPartition
	SharedNothing
	PLPClustered
	SharedNothingClustered
)

// String returns the row label used in Table 1.
func (s System) String() string {
	switch s {
	case PLPRegular:
		return "PLP-Regular"
	case PLPLeaf:
		return "PLP-Leaf"
	case PLPPartition:
		return "PLP-Partition"
	case SharedNothing:
		return "Shared-Nothing"
	case PLPClustered:
		return "PLP (Clustered)"
	case SharedNothingClustered:
		return "Shared-Nothing (Clustered)"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists the cost-model rows in Table 1 order.
func Systems() []System {
	return []System{PLPRegular, PLPLeaf, PLPPartition, SharedNothing, PLPClustered, SharedNothingClustered}
}

// Params are the cost-model inputs (Appendix C notation).
type Params struct {
	// Height is h, the number of levels of the sub-tree being split.
	Height int
	// EntriesPerNode is n, the number of entries per B+Tree node.
	EntriesPerNode int
	// EntriesMovedPerLevel is m_k for k = 1..h: the number of entries that
	// must move at each level of the boundary path (index 0 is the leaf
	// level, m_1 in the paper's notation).
	EntriesMovedPerLevel []int
	// RecordSize is the size of one data record in bytes.
	RecordSize int
	// EntrySize is the size of one index entry in bytes.
	EntrySize int
	// RecordsInPartition is the number of records that would belong to the
	// new partition (the worst-case M for partition-granularity moves).
	RecordsInPartition int
	// HasSecondary reports whether a secondary index exists.
	HasSecondary bool
}

// IndexChanges counts update/insert/delete operations applied to an index.
type IndexChanges struct {
	Updates int
	Inserts int
	Deletes int
}

// String formats the changes the way Table 1 does.
func (c IndexChanges) String() string {
	switch {
	case c.Updates == 0 && c.Inserts == 0 && c.Deletes == 0:
		return "-"
	case c.Inserts == 0 && c.Deletes == 0:
		return fmt.Sprintf("%d U", c.Updates)
	default:
		return fmt.Sprintf("%d I + %d D", c.Inserts, c.Deletes)
	}
}

// Cost is one row of Table 1.
type Cost struct {
	System System
	// RecordsMoved is the number of data records physically relocated.
	RecordsMoved int
	// RecordBytesMoved is the corresponding volume in bytes.
	RecordBytesMoved int
	// EntriesMoved is the number of primary-index entries copied.
	EntriesMoved int
	// EntryBytesMoved is the corresponding volume in bytes.
	EntryBytesMoved int
	// PagesRead is the number of heap pages read to find the records.
	PagesRead int
	// PointerUpdates is the number of index/routing pointer changes.
	PointerUpdates int
	// Primary and Secondary are the logical index maintenance operations.
	Primary   IndexChanges
	Secondary IndexChanges
}

// sumEntries returns Σ m_k for k = from..to (1-based levels, inclusive).
func (p Params) sumEntries(from, to int) int {
	total := 0
	for k := from; k <= to && k-1 < len(p.EntriesMovedPerLevel); k++ {
		total += p.EntriesMovedPerLevel[k-1]
	}
	return total
}

// m1 returns the number of leaf entries moved.
func (p Params) m1() int {
	if len(p.EntriesMovedPerLevel) == 0 {
		return 0
	}
	return p.EntriesMovedPerLevel[0]
}

// partitionRecordsMoved is the worst-case number of records moved when the
// whole new partition's records relocate:
//
//	m_1 + Σ_{l=0}^{h-2} ( n^{h-l-1} × (m_{h-l} − 1) )
//
// (Table 2, PLP-Partition / Shared-Nothing row).
func (p Params) partitionRecordsMoved() int {
	total := p.m1()
	for l := 0; l <= p.Height-2; l++ {
		level := p.Height - l // m_{h-l}
		if level-1 >= len(p.EntriesMovedPerLevel) || level < 1 {
			continue
		}
		m := p.EntriesMovedPerLevel[level-1]
		if m < 1 {
			continue
		}
		total += pow(p.EntriesPerNode, p.Height-l-1) * (m - 1)
	}
	if p.RecordsInPartition > 0 && total > p.RecordsInPartition {
		total = p.RecordsInPartition
	}
	return total
}

func pow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}

// CostOf evaluates the cost model for one system.
func CostOf(s System, p Params) Cost {
	c := Cost{System: s}
	pointerUpdates := 2*p.Height + 1
	switch s {
	case PLPRegular:
		c.EntriesMoved = p.sumEntries(1, p.Height)
		c.PointerUpdates = pointerUpdates
	case PLPLeaf:
		c.RecordsMoved = p.m1()
		c.EntriesMoved = p.sumEntries(1, p.Height)
		c.PagesRead = 1
		c.PointerUpdates = pointerUpdates
		c.Primary = IndexChanges{Updates: c.RecordsMoved}
		if p.HasSecondary {
			c.Secondary = IndexChanges{Updates: c.RecordsMoved}
		}
	case PLPPartition:
		c.RecordsMoved = p.partitionRecordsMoved()
		c.EntriesMoved = p.sumEntries(1, p.Height)
		c.PagesRead = 1
		if p.EntriesPerNode > 0 {
			c.PagesRead += (c.RecordsMoved - p.m1()) / p.EntriesPerNode
		}
		c.PointerUpdates = pointerUpdates
		c.Primary = IndexChanges{Updates: c.RecordsMoved}
		if p.HasSecondary {
			c.Secondary = IndexChanges{Updates: c.RecordsMoved}
		}
	case SharedNothing:
		c.RecordsMoved = p.partitionRecordsMoved()
		c.PagesRead = 1
		if p.EntriesPerNode > 0 {
			c.PagesRead += (c.RecordsMoved - p.m1()) / p.EntriesPerNode
		}
		c.Primary = IndexChanges{Inserts: c.RecordsMoved, Deletes: c.RecordsMoved}
		if p.HasSecondary {
			c.Secondary = IndexChanges{Inserts: c.RecordsMoved, Deletes: c.RecordsMoved}
		}
	case PLPClustered:
		// The leaf entries are the records, so moving m_1 leaf entries moves
		// the records; only levels >= 2 contribute index-entry movement.
		c.RecordsMoved = p.m1()
		c.EntriesMoved = p.sumEntries(2, p.Height)
		c.PointerUpdates = pointerUpdates
		if p.HasSecondary {
			c.Secondary = IndexChanges{Updates: c.RecordsMoved}
		}
	case SharedNothingClustered:
		c.RecordsMoved = p.partitionRecordsMoved()
		c.Primary = IndexChanges{Inserts: c.RecordsMoved, Deletes: c.RecordsMoved}
		if p.HasSecondary {
			c.Secondary = IndexChanges{Inserts: c.RecordsMoved, Deletes: c.RecordsMoved}
		}
	}
	c.RecordBytesMoved = c.RecordsMoved * p.RecordSize
	c.EntryBytesMoved = c.EntriesMoved * p.EntrySize
	return c
}

// AllCosts evaluates the model for every system.
func AllCosts(p Params) []Cost {
	out := make([]Cost, 0, len(Systems()))
	for _, s := range Systems() {
		out = append(out, CostOf(s, p))
	}
	return out
}

// Table1Params returns the parameters of the paper's Table 1 example: a
// partition holding 466 MB of 100-byte records is split in half; the
// non-clustered primary index has height 3 with 170 32-byte entries per
// node; the boundary path moves half a node's entries at each level.
func Table1Params() Params {
	const (
		height         = 3
		entriesPerNode = 170
		recordSize     = 100
		entrySize      = 32
	)
	records := 466 * 1024 * 1024 / recordSize / 2 // records destined to the new partition
	return Params{
		Height:               height,
		EntriesPerNode:       entriesPerNode,
		EntriesMovedPerLevel: []int{entriesPerNode / 2, entriesPerNode / 2, entriesPerNode / 2},
		RecordSize:           recordSize,
		EntrySize:            entrySize,
		RecordsInPartition:   records,
		HasSecondary:         true,
	}
}
