// Package repartition closes the loop between workload observation and
// physical repartitioning: the paper's online dynamic repartitioning (DRP)
// component.
//
// The paper argues that physiological partitioning only stays latch-free
// under real workloads because repartitioning is cheap enough to run
// *continuously*: a controller watches aging access histograms, detects
// load imbalance, and moves MRBTree partition boundaries while the system
// keeps executing, quiescing only the partition pair a move affects.  This
// package is that controller for this reproduction:
//
//   - Attach registers the controller as the engine's access observer, so
//     every action routed through the DORA partition manager feeds one
//     observation into a per-table aging histogram
//     (advisor.AgingHistogram) — the controller never touches the workers'
//     execution path;
//   - each control period, Step re-buckets the aged key weights through the
//     current routing, and when the hottest partition exceeds its fair
//     share by the trigger ratio it invokes the two-phase optimizer
//     (balance.Optimize) to plan boundary moves;
//   - each planned move is applied through engine.Rebalance, which
//     quiesces only the two workers owning the affected ranges — the rest
//     of the system never stops;
//   - the histograms then age, so a hot spot that migrates stops looking
//     hot where it used to be and the controller follows it.
//
// Start runs Step on a background ticker; tests and the plpctl control verb
// drive Step directly for deterministic control periods.
package repartition

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"plp/internal/advisor"
	"plp/internal/balance"
	"plp/internal/engine"
)

// Errors returned by the controller.
var (
	// ErrNotPartitioned is returned when the engine cannot be rebalanced
	// (fewer than two partitions, or the Conventional design).
	ErrNotPartitioned = errors.New("repartition: engine has fewer than two partitions")
	// ErrUnknownTable is returned by table-scoped queries for tables the
	// controller has never observed.
	ErrUnknownTable = errors.New("repartition: table not observed")
)

// Config tunes a Controller.
type Config struct {
	// Tables restricts the controller to the named tables.  Empty means
	// every table whose actions the engine routes.
	Tables []string
	// Period is the control period of the background loop started by
	// Start.  Default 100ms.
	Period time.Duration
	// Decay is the aging factor applied to the histograms after every
	// control period; each period the previous history keeps Decay of its
	// weight.  Default 0.5.
	Decay float64
	// TriggerRatio is the hottest partition's load over the fair share
	// above which the controller plans moves.  Values <= 1 select the
	// default of 1.5.
	TriggerRatio float64
	// MinObservations is the minimum number of raw observations in the
	// current window before a control period acts; it prevents rebalancing
	// on noise.  Default 512.
	MinObservations uint64
	// MinTransferFraction is forwarded to the optimizer.  Default 0.05.
	MinTransferFraction float64
	// MaxMovesPerPeriod caps how many boundary moves one control period
	// applies per table (0 = no cap).  Each move quiesces one partition
	// pair, so the cap bounds the per-period disturbance.
	MaxMovesPerPeriod int
	// MaxTrackedKeys bounds each table's key histogram.  Default 16384.
	MaxTrackedKeys int
}

// normalize fills in defaults.
func (c *Config) normalize() {
	if c.Period <= 0 {
		c.Period = 100 * time.Millisecond
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	if c.TriggerRatio <= 1 {
		c.TriggerRatio = 1.5
	}
	if c.MinObservations == 0 {
		c.MinObservations = 512
	}
	if c.MinTransferFraction <= 0 {
		c.MinTransferFraction = 0.05
	}
	if c.MaxTrackedKeys <= 0 {
		c.MaxTrackedKeys = 16384
	}
}

// Decision records one boundary move the controller applied.
type Decision struct {
	// When the move was applied.
	When time.Time
	// Table whose boundary moved.
	Table string
	// Move is the optimizer's plan that was applied.
	Move balance.Move
	// Stats is the physical cost reported by engine.Rebalance.
	Stats engine.RebalanceStats
}

// String renders the decision for logs.
func (d Decision) String() string {
	return fmt.Sprintf("%s: boundary %d -> %x (partition %d sheds %.0f to %d; %d entries, %d records moved, %v quiesced)",
		d.Table, d.Move.Boundary, d.Move.NewKey, d.Move.From, d.Move.Transfer, d.Move.To,
		d.Stats.EntriesMoved, d.Stats.RecordsMoved, d.Stats.Duration.Round(time.Microsecond))
}

// TableStatus describes one managed table's current state.
type TableStatus struct {
	// Table name.
	Table string
	// Loads is the aged key weight per partition under the current
	// routing (what the optimizer balances).
	Loads []float64
	// Ratio is the hottest partition's load over the fair share.
	Ratio float64
	// WindowObservations counts raw observations in the current window.
	WindowObservations uint64
	// PartitionEntries is the number of primary-index entries per
	// partition (data volume, as opposed to access volume), when the
	// primary index is multi-rooted.
	PartitionEntries []int
}

// Status is a snapshot of the controller's activity.
type Status struct {
	// Running reports whether the background loop is active.
	Running bool
	// Periods counts Step invocations; Applied counts boundary moves made;
	// Skipped counts control periods that saw no actionable skew.
	Periods, Applied, Skipped uint64
	// Tables holds one entry per managed table, sorted by name.
	Tables []TableStatus
	// Decisions holds the most recent boundary moves, oldest first.
	Decisions []Decision
}

// maxStatusDecisions bounds how many recent decisions Status returns.
const maxStatusDecisions = 32

// Controller is the online dynamic repartitioning controller for one
// engine.
type Controller struct {
	e   *engine.Engine
	cfg Config

	mu     sync.RWMutex
	tables map[string]*advisor.AgingHistogram

	stepMu    sync.Mutex // serializes control periods
	statMu    sync.Mutex
	decisions []Decision
	periods   uint64
	applied   uint64
	skipped   uint64
	lastErr   error

	loopMu sync.Mutex
	stop   chan struct{}
	done   chan struct{}
}

// Attach creates a controller and registers it as the engine's access
// observer, so the DORA routing path starts feeding its histograms
// immediately.  It also registers the controller's state exporter as the
// engine's checkpoint-state provider, and — when the engine's Recover found
// a persisted controller blob in the checkpoint meta record — warm-starts
// the histograms from it, so a restarted controller resumes with the hot
// set its previous incarnation had learned.  The engine must use a
// partitioned design with at least two partitions.  Call Detach (or Stop
// and Detach) to disconnect.
func Attach(e *engine.Engine, cfg Config) (*Controller, error) {
	cfg.normalize()
	if !e.Design().Partitioned() || e.Options().Partitions < 2 {
		return nil, ErrNotPartitioned
	}
	c := &Controller{
		e:      e,
		cfg:    cfg,
		tables: make(map[string]*advisor.AgingHistogram),
	}
	for _, t := range cfg.Tables {
		c.tables[t] = advisor.NewAgingHistogram(e.Options().Partitions, cfg.MaxTrackedKeys)
	}
	if blob := e.RecoveredControllerState(); len(blob) > 0 {
		if err := c.importState(blob); err != nil {
			// A stale or foreign blob must not block startup: a cold
			// controller is always safe.
			c.statMu.Lock()
			c.lastErr = err
			c.statMu.Unlock()
		}
	}
	e.SetAccessObserver(c.Observe)
	e.SetCheckpointStateProvider(c.exportState)
	return c, nil
}

// Detach stops feeding the controller: the engine's observer slot and
// checkpoint-state provider are cleared.  The histograms keep their state;
// Step can still be called.
func (c *Controller) Detach() {
	c.e.SetAccessObserver(nil)
	c.e.SetCheckpointStateProvider(nil)
}

// managed reports whether the controller manages the table, creating the
// histogram on first contact when no table filter was configured.
func (c *Controller) histogram(table string, create bool) *advisor.AgingHistogram {
	c.mu.RLock()
	h := c.tables[table]
	c.mu.RUnlock()
	if h != nil || !create || len(c.cfg.Tables) > 0 {
		return h
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if h = c.tables[table]; h == nil {
		h = advisor.NewAgingHistogram(c.e.Options().Partitions, c.cfg.MaxTrackedKeys)
		c.tables[table] = h
	}
	return h
}

// Observe is the engine's AccessObserver: one callback per routed action.
func (c *Controller) Observe(table string, partition int, key []byte) {
	if h := c.histogram(table, true); h != nil {
		h.Observe(partition, key)
	}
}

// rebucket distributes the aged key weights over the current boundaries.
func rebucket(keys []advisor.KeyWeight, boundaries [][]byte) []float64 {
	loads := make([]float64, len(boundaries)+1)
	for _, kw := range keys {
		p := sort.Search(len(boundaries), func(i int) bool { return bytes.Compare(boundaries[i], kw.Key) > 0 })
		loads[p] += kw.Weight
	}
	return loads
}

// Step runs one control period over every managed table: snapshot the
// histograms, plan moves where the trigger ratio is exceeded, apply them
// through engine.Rebalance, then age the histograms.  It returns the moves
// applied this period.  Step is safe to call concurrently with traffic and
// with the background loop (periods are serialized).
func (c *Controller) Step() []Decision {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	// Each period reports its own errors; a transient failure in an earlier
	// period must not keep surfacing from LastErr (and the trigger verb)
	// after later periods succeed.
	c.statMu.Lock()
	c.lastErr = nil
	c.statMu.Unlock()

	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)

	var made []Decision
	for _, name := range names {
		h := c.histogram(name, false)
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		acted := c.stepTable(name, snap, &made)
		if !acted {
			c.statMu.Lock()
			c.skipped++
			c.statMu.Unlock()
		}
		// Age after the decision so the next period sees a fresh window and
		// an exponentially faded history.
		h.Age(c.cfg.Decay)
	}

	c.statMu.Lock()
	c.periods++
	c.statMu.Unlock()
	return made
}

// stepTable evaluates one table and applies any planned moves, reporting
// whether it acted.
func (c *Controller) stepTable(name string, snap advisor.HistogramSnapshot, made *[]Decision) bool {
	if snap.WindowObservations < c.cfg.MinObservations {
		return false
	}
	boundaries, err := c.e.Boundaries(name)
	if err != nil || len(boundaries) == 0 {
		return false
	}
	loads := rebucket(snap.Keys, boundaries)
	if balance.MaxFairRatio(loads) < c.cfg.TriggerRatio {
		return false
	}
	moves := balance.Optimize(loads, snap.Keys, boundaries,
		balance.OptimizerConfig{MinTransferFraction: c.cfg.MinTransferFraction})
	if c.cfg.MaxMovesPerPeriod > 0 && len(moves) > c.cfg.MaxMovesPerPeriod {
		moves = moves[:c.cfg.MaxMovesPerPeriod]
	}
	acted := false
	for _, m := range moves {
		st, err := c.e.Rebalance(name, m.Boundary, m.NewKey)
		if err != nil {
			c.statMu.Lock()
			c.lastErr = fmt.Errorf("rebalance %s boundary %d: %w", name, m.Boundary, err)
			c.statMu.Unlock()
			break
		}
		d := Decision{When: time.Now(), Table: name, Move: m, Stats: st}
		*made = append(*made, d)
		acted = true
		c.statMu.Lock()
		c.applied++
		c.decisions = append(c.decisions, d)
		if len(c.decisions) > maxStatusDecisions {
			c.decisions = c.decisions[len(c.decisions)-maxStatusDecisions:]
		}
		c.statMu.Unlock()
	}
	return acted
}

// LastErr returns the Rebalance error of the most recent control period, if
// any; it is cleared at the start of every Step.
func (c *Controller) LastErr() error {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.lastErr
}

// Loads returns the table's aged per-partition loads under the current
// routing, or ErrUnknownTable.
func (c *Controller) Loads(table string) ([]float64, error) {
	h := c.histogram(table, false)
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTable, table)
	}
	boundaries, err := c.e.Boundaries(table)
	if err != nil {
		return nil, err
	}
	return rebucket(h.Snapshot().Keys, boundaries), nil
}

// Status returns a snapshot of the controller's state.
func (c *Controller) Status() Status {
	c.loopMu.Lock()
	running := c.stop != nil
	c.loopMu.Unlock()

	c.statMu.Lock()
	s := Status{
		Running:   running,
		Periods:   c.periods,
		Applied:   c.applied,
		Skipped:   c.skipped,
		Decisions: append([]Decision(nil), c.decisions...),
	}
	c.statMu.Unlock()

	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		h := c.histogram(name, false)
		if h == nil {
			continue
		}
		snap := h.Snapshot()
		ts := TableStatus{Table: name, WindowObservations: snap.WindowObservations}
		if boundaries, err := c.e.Boundaries(name); err == nil {
			ts.Loads = rebucket(snap.Keys, boundaries)
			ts.Ratio = balance.MaxFairRatio(ts.Loads)
		}
		if tbl, err := c.e.Table(name); err == nil && tbl.Primary != nil {
			if counts, err := tbl.Primary.PartitionCounts(nil); err == nil {
				ts.PartitionEntries = counts
			}
		}
		s.Tables = append(s.Tables, ts)
	}
	return s
}

// String renders the status as a small text document (the payload of the
// plpctl "drp status" verb).
func (s Status) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drp: running=%v periods=%d moves=%d skipped=%d\n", s.Running, s.Periods, s.Applied, s.Skipped)
	for _, t := range s.Tables {
		fmt.Fprintf(&b, "  table %-16s ratio=%.2f window=%d loads:", t.Table, t.Ratio, t.WindowObservations)
		for _, l := range t.Loads {
			fmt.Fprintf(&b, " %.0f", l)
		}
		if len(t.PartitionEntries) > 0 {
			b.WriteString(" entries:")
			for _, n := range t.PartitionEntries {
				fmt.Fprintf(&b, " %d", n)
			}
		}
		b.WriteByte('\n')
	}
	for _, d := range s.Decisions {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return b.String()
}

// Control implements the server's control verb (see internal/server): it
// executes one textual command and returns a human-readable result.
// Commands: "status" (full status), "trigger" (run one control period now),
// "shares <table>" (per-partition loads of one table).
func (c *Controller) Control(cmd, table string) (string, error) {
	switch cmd {
	case "status":
		return c.Status().String(), nil
	case "trigger":
		made := c.Step()
		if err := c.LastErr(); err != nil {
			return "", err
		}
		if len(made) == 0 {
			return "no moves: load within threshold or too few observations\n", nil
		}
		var b strings.Builder
		for _, d := range made {
			fmt.Fprintf(&b, "%s\n", d.String())
		}
		return b.String(), nil
	case "shares":
		loads, err := c.Loads(table)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "table %s ratio=%.2f loads:", table, balance.MaxFairRatio(loads))
		for _, l := range loads {
			fmt.Fprintf(&b, " %.0f", l)
		}
		b.WriteByte('\n')
		return b.String(), nil
	default:
		return "", fmt.Errorf("repartition: unknown control command %q (want status, trigger or shares)", cmd)
	}
}

// Start launches the background control loop.
func (c *Controller) Start() {
	c.loopMu.Lock()
	if c.stop != nil {
		c.loopMu.Unlock()
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	stop, done := c.stop, c.done
	c.loopMu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(c.cfg.Period)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				c.Step()
			}
		}
	}()
}

// Stop terminates the background loop and waits for it to exit.
func (c *Controller) Stop() {
	c.loopMu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.loopMu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
