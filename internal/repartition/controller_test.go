package repartition

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

const (
	testTable    = "kv"
	testKeyspace = 40_000
	testParts    = 4
)

// newTestEngine builds a loaded engine: testKeyspace rows with a known
// value, uniformly partitioned.
func newTestEngine(t *testing.T, design engine.Design) *engine.Engine {
	t.Helper()
	e := engine.New(engine.Options{Design: design, Partitions: testParts})
	boundaries := make([][]byte, 0, testParts-1)
	for i := 1; i < testParts; i++ {
		boundaries = append(boundaries, keyenc.Uint64Key(uint64(testKeyspace*i/testParts)+1))
	}
	if _, err := e.CreateTable(catalog.TableDef{Name: testTable, Boundaries: boundaries}); err != nil {
		t.Fatal(err)
	}
	l := e.NewLoader()
	for k := uint64(1); k <= testKeyspace; k++ {
		if err := l.Insert(testTable, keyenc.Uint64Key(k), initialValue(k)); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func initialValue(k uint64) []byte { return []byte(fmt.Sprintf("init-%d", k)) }
func updatedValue(k uint64) []byte { return []byte(fmt.Sprintf("upd-%d", k)) }

// hotspot draws keys Zipf-distributed around a moving offset, so rank 1
// lands on offset+1 and the hot set migrates when offset changes.
type hotspot struct {
	zipf   *rand.Zipf
	offset uint64
}

func newHotspot(seed int64, offset uint64) *hotspot {
	rng := rand.New(rand.NewSource(seed))
	return &hotspot{zipf: rand.NewZipf(rng, 1.1, 1, testKeyspace-1), offset: offset}
}

func (h *hotspot) key() uint64 { return (h.zipf.Uint64()+h.offset)%testKeyspace + 1 }

// measureRatio samples the distribution through the engine's routing table
// and returns max/min per-partition access counts.
func measureRatio(e *engine.Engine, seed int64, offset uint64) float64 {
	h := newHotspot(seed, offset)
	counts := make([]float64, testParts)
	for i := 0; i < 50_000; i++ {
		counts[e.PartitionFor(testTable, keyenc.Uint64Key(h.key()))]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		return max
	}
	return max / min
}

// runPeriod pushes one control period of real traffic through the engine
// (reads with a sprinkle of updates) and then runs one controller step.
func runPeriod(t *testing.T, e *engine.Engine, c *Controller, h *hotspot, ops int) {
	t.Helper()
	sess := e.NewSession()
	defer sess.Close()
	for i := 0; i < ops; i++ {
		k := h.key()
		key := keyenc.Uint64Key(k)
		var a engine.Action
		if i%20 == 0 {
			a = engine.Action{Table: testTable, Key: key, Exec: func(ctx *engine.Ctx) error {
				return ctx.Update(testTable, key, updatedValue(k))
			}}
		} else {
			a = engine.Action{Table: testTable, Key: key, Exec: func(ctx *engine.Ctx) error {
				_, err := ctx.Read(testTable, key)
				return err
			}}
		}
		if _, err := sess.Execute(engine.NewRequest(a)); err != nil {
			t.Fatalf("traffic aborted: %v", err)
		}
	}
	c.Step()
	if err := c.LastErr(); err != nil {
		t.Fatalf("controller error: %v", err)
	}
}

// converge runs control periods until the measured max/min ratio falls
// below threshold, failing after maxPeriods.
func converge(t *testing.T, e *engine.Engine, c *Controller, seed int64, offset uint64, threshold float64, maxPeriods int) int {
	t.Helper()
	h := newHotspot(seed, offset)
	for p := 1; p <= maxPeriods; p++ {
		runPeriod(t, e, c, h, 4000)
		if r := measureRatio(e, seed+1, offset); r < threshold {
			return p
		}
	}
	t.Fatalf("controller did not converge within %d periods: ratio %.2f (status:\n%s)",
		maxPeriods, measureRatio(e, seed+1, offset), c.Status().String())
	return 0
}

// verifyState checks the differential invariant: exactly the loaded keys,
// each exactly once, each carrying a value the workload could have written.
func verifyState(t *testing.T, e *engine.Engine) {
	t.Helper()
	l := e.NewLoader()
	next := uint64(1)
	rows := 0
	err := l.ReadRange(testTable, nil, nil, func(key, rec []byte) bool {
		k, derr := keyenc.DecodeUint64(key)
		if derr != nil {
			t.Fatalf("bad key: %v", derr)
		}
		if k != next {
			t.Fatalf("key sequence broken: got %d, want %d (lost or duplicated row)", k, next)
		}
		if !bytes.Equal(rec, initialValue(k)) && !bytes.Equal(rec, updatedValue(k)) {
			t.Fatalf("key %d carries corrupt value %q", k, rec)
		}
		next++
		rows++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != testKeyspace {
		t.Fatalf("row count %d, want %d", rows, testKeyspace)
	}
	if aborts := e.TxnStats().Aborted; aborts != 0 {
		t.Fatalf("%d transactions aborted during the run", aborts)
	}
}

// TestControllerConvergesUnderMigratingZipfHotspot is the acceptance test:
// a Zipfian hot-spot drives a PLP-Leaf engine out of balance, the
// controller converges the max/min per-partition access ratio below the
// threshold within a bounded number of control periods, then the hot-spot
// migrates to the opposite end of the key space mid-run and the controller
// re-converges — with zero correctness violations in the differential
// state check.
func TestControllerConvergesUnderMigratingZipfHotspot(t *testing.T) {
	const (
		threshold  = 2.0
		maxPeriods = 16
	)
	e := newTestEngine(t, engine.PLPLeaf)
	defer e.Close()

	c, err := Attach(e, Config{
		Tables:          []string{testTable},
		TriggerRatio:    1.3,
		MinObservations: 1000,
		Decay:           0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	if r := measureRatio(e, 1, 0); r < threshold {
		t.Fatalf("setup not skewed enough: initial ratio %.2f", r)
	}

	p1 := converge(t, e, c, 1, 0, threshold, maxPeriods)
	t.Logf("phase 1 (hot head at key 1) converged in %d periods; ratio %.2f", p1, measureRatio(e, 2, 0))

	// The hot-spot migrates to the middle of the key space mid-run.
	shift := uint64(testKeyspace / 2)
	if r := measureRatio(e, 3, shift); r < threshold {
		t.Logf("note: shifted distribution starts at ratio %.2f", r)
	}
	p2 := converge(t, e, c, 3, shift, threshold, maxPeriods)
	t.Logf("phase 2 (hot head at key %d) converged in %d periods; ratio %.2f", shift+1, p2, measureRatio(e, 4, shift))

	st := c.Status()
	if st.Applied == 0 {
		t.Fatal("controller never moved a boundary")
	}
	verifyState(t, e)
}

// TestControllerOnLogicalDesignRoutingOnly checks the controller drives the
// Logical design too, where moves are pure routing-table updates.
func TestControllerOnLogicalDesignRoutingOnly(t *testing.T) {
	e := newTestEngine(t, engine.Logical)
	defer e.Close()
	c, err := Attach(e, Config{TriggerRatio: 1.3, MinObservations: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	h := newHotspot(11, 0)
	for p := 0; p < 10 && measureRatio(e, 12, 0) >= 2.0; p++ {
		runPeriod(t, e, c, h, 3000)
	}
	if r := measureRatio(e, 12, 0); r >= 2.0 {
		t.Fatalf("logical design did not converge: ratio %.2f", r)
	}
	for _, d := range c.Status().Decisions {
		if !d.Stats.RoutingOnly {
			t.Fatalf("logical design move touched pages: %+v", d)
		}
	}
	verifyState(t, e)
}

func TestAttachValidation(t *testing.T) {
	conv := engine.New(engine.Options{Design: engine.Conventional})
	defer conv.Close()
	if _, err := Attach(conv, Config{}); err == nil {
		t.Fatal("Attach accepted a Conventional engine")
	}
	one := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 1})
	defer one.Close()
	if _, err := Attach(one, Config{}); err == nil {
		t.Fatal("Attach accepted a single-partition engine")
	}
}

func TestControlVerbs(t *testing.T) {
	e := newTestEngine(t, engine.PLPLeaf)
	defer e.Close()
	c, err := Attach(e, Config{Tables: []string{testTable}, MinObservations: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()

	h := newHotspot(21, 0)
	runPeriod(t, e, c, h, 2000)

	out, err := c.Control("status", "")
	if err != nil || out == "" {
		t.Fatalf("status: %q, %v", out, err)
	}
	out, err = c.Control("shares", testTable)
	if err != nil || out == "" {
		t.Fatalf("shares: %q, %v", out, err)
	}
	if _, err = c.Control("shares", "nope"); err == nil {
		t.Fatal("shares accepted an unknown table")
	}
	if _, err = c.Control("trigger", ""); err != nil {
		t.Fatalf("trigger: %v", err)
	}
	if _, err = c.Control("bogus", ""); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestBackgroundLoopStartStop(t *testing.T) {
	e := newTestEngine(t, engine.PLPLeaf)
	defer e.Close()
	c, err := Attach(e, Config{Period: time.Millisecond, MinObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	c.Start()
	c.Start() // idempotent
	h := newHotspot(31, 0)
	sess := e.NewSession()
	for i := 0; i < 2000; i++ {
		key := keyenc.Uint64Key(h.key())
		if _, err := sess.Execute(engine.NewRequest(engine.Action{Table: testTable, Key: key,
			Exec: func(ctx *engine.Ctx) error { _, err := ctx.Read(testTable, key); return err }})); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.Status().Periods == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
	if c.Status().Periods == 0 {
		t.Fatal("background loop never ran a control period")
	}
	if c.Status().Running {
		t.Fatal("status still reports running after Stop")
	}
}
