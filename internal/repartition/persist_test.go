package repartition

import (
	"fmt"
	"testing"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

// durableEngine opens a disk-backed PLP-Leaf engine with one table.
func durableEngine(t *testing.T, dir string) *engine.Engine {
	t.Helper()
	e, err := engine.Open(engine.Options{Design: engine.PLPLeaf, Partitions: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	boundaries := [][]byte{keyenc.Uint64Key(251), keyenc.Uint64Key(501), keyenc.Uint64Key(751)}
	if _, err := e.CreateTable(catalog.TableDef{Name: "kv", Boundaries: boundaries}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStateBlobRoundTrip(t *testing.T) {
	e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	defer e.Close()
	if _, err := e.CreateTable(catalog.TableDef{Name: "kv",
		Boundaries: [][]byte{keyenc.Uint64Key(251), keyenc.Uint64Key(501), keyenc.Uint64Key(751)}}); err != nil {
		t.Fatal(err)
	}
	c, err := Attach(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Detach()
	for i := 0; i < 500; i++ {
		c.Observe("kv", i%4, keyenc.Uint64Key(uint64(i%40+1)))
	}
	blob := c.exportState()
	if len(blob) == 0 {
		t.Fatal("empty state blob")
	}

	e2 := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	defer e2.Close()
	if _, err := e2.CreateTable(catalog.TableDef{Name: "kv",
		Boundaries: [][]byte{keyenc.Uint64Key(251), keyenc.Uint64Key(501), keyenc.Uint64Key(751)}}); err != nil {
		t.Fatal(err)
	}
	c2, err := Attach(e2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()
	if err := c2.importState(blob); err != nil {
		t.Fatal(err)
	}
	loads, err := c2.Loads("kv")
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if total < 400 {
		t.Fatalf("restored key weights sum to %.0f, want ~500", total)
	}

	// Corrupt blobs must be rejected whole, not half-applied.
	if err := c2.importState(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if err := c2.importState([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestControllerStateSurvivesRestart closes the ROADMAP gap end to end: the
// controller's learned histograms ride the engine checkpoint, and after a
// crash+recover the re-attached controller resumes with them.
func TestControllerStateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir)
	c, err := Attach(e, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// Traffic with a hot spot on partition 0, routed through the real
	// observer path.
	sess := e.NewSession()
	for i := 0; i < 600; i++ {
		key := keyenc.Uint64Key(uint64(i%30 + 1))
		req := engine.NewRequest(engine.Action{Table: "kv", Key: key, Exec: func(c *engine.Ctx) error {
			return c.Upsert("kv", key, []byte(fmt.Sprintf("v%d", i)))
		}})
		if _, err := sess.Execute(req); err != nil {
			t.Fatal(err)
		}
	}
	before, err := c.Loads("kv")
	if err != nil {
		t.Fatal(err)
	}
	if before[0] == 0 {
		t.Fatal("hot partition saw no load before checkpoint")
	}
	// The checkpoint captures the histogram state through the engine's
	// registered provider.
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Crash, reopen, recover, re-attach.
	re := durableEngine(t, dir)
	defer re.Close()
	if _, err := re.Recover(); err != nil {
		t.Fatal(err)
	}
	c2, err := Attach(re, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Detach()
	after, err := c2.Loads("kv")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, l := range after {
		sum += l
	}
	if sum == 0 {
		t.Fatal("restarted controller is cold: no histogram state recovered")
	}
	if after[0] == 0 {
		t.Fatal("restored histogram lost the hot partition")
	}
	c.Detach()
	e.Close()
}
