// Controller state persistence: the histogram snapshots that survive a
// restart.
//
// The ROADMAP's "persistence of controller state across restart" gap:
// without it, a restarted controller starts cold and re-learns the hot set
// from scratch, re-triggering boundary moves the previous incarnation had
// already converged past.  The controller therefore exports its per-table
// aged histograms as an opaque blob that engine checkpoints embed in their
// meta record (recovery.StateSource); after a crash, engine.Recover hands
// the blob back and Attach warm-starts the histograms from it.  Partition
// boundaries themselves are restored by engine.Recover directly — the blob
// carries only the learned access statistics.
package repartition

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"plp/internal/advisor"
)

// stateVersion is bumped whenever the blob encoding changes incompatibly;
// importState ignores blobs from other versions (a cold start is always a
// safe fallback).
const stateVersion = 1

// appendUint32 appends v little-endian.
func appendUint32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// appendFloat64 appends v's IEEE-754 bits little-endian.
func appendFloat64(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

// exportState serializes every managed table's histogram snapshot.  It is
// the engine's checkpoint-state provider, so it runs inside the quiesced
// checkpoint section and must not block on controller work (Snapshot takes
// only the histogram's own short mutex).
func (c *Controller) exportState() []byte {
	c.mu.RLock()
	names := make([]string, 0, len(c.tables))
	for name := range c.tables {
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)

	out := []byte{stateVersion}
	out = appendUint32(out, uint32(len(names)))
	for _, name := range names {
		h := c.histogram(name, false)
		if h == nil {
			out = appendUint32(out, 0) // name skipped: zero-length marker
			continue
		}
		snap := h.Snapshot()
		out = appendUint32(out, uint32(len(name)))
		out = append(out, name...)
		out = appendUint32(out, uint32(len(snap.PartitionLoads)))
		for _, l := range snap.PartitionLoads {
			out = appendFloat64(out, l)
		}
		out = appendUint32(out, uint32(len(snap.Keys)))
		for _, kw := range snap.Keys {
			out = appendUint32(out, uint32(len(kw.Key)))
			out = append(out, kw.Key...)
			out = appendFloat64(out, kw.Weight)
		}
	}
	return out
}

// importState warm-starts the controller's histograms from a blob produced
// by exportState.  Unknown versions and truncated blobs are rejected
// whole; per-table state is applied even when the current partition count
// differs (excess loads are dropped by Restore).
func (c *Controller) importState(blob []byte) error {
	if len(blob) < 5 {
		return fmt.Errorf("repartition: state blob too short")
	}
	if blob[0] != stateVersion {
		return fmt.Errorf("repartition: unknown state version %d", blob[0])
	}
	rest := blob[1:]
	nt := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]

	u32 := func() (uint32, bool) {
		if len(rest) < 4 {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		return v, true
	}
	f64 := func() (float64, bool) {
		if len(rest) < 8 {
			return 0, false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
		return v, true
	}
	short := fmt.Errorf("repartition: truncated state blob")

	for t := uint32(0); t < nt; t++ {
		nameLen, ok := u32()
		if !ok {
			return short
		}
		if nameLen == 0 {
			continue // table had no histogram at export time
		}
		if uint32(len(rest)) < nameLen {
			return short
		}
		name := string(rest[:nameLen])
		rest = rest[nameLen:]

		nLoads, ok := u32()
		if !ok {
			return short
		}
		loads := make([]float64, 0, nLoads)
		for i := uint32(0); i < nLoads; i++ {
			l, ok := f64()
			if !ok {
				return short
			}
			loads = append(loads, l)
		}
		nKeys, ok := u32()
		if !ok {
			return short
		}
		keys := make([]advisor.KeyWeight, 0, nKeys)
		for i := uint32(0); i < nKeys; i++ {
			kl, ok := u32()
			if !ok {
				return short
			}
			if uint32(len(rest)) < kl {
				return short
			}
			key := append([]byte(nil), rest[:kl]...)
			rest = rest[kl:]
			w, ok := f64()
			if !ok {
				return short
			}
			keys = append(keys, advisor.KeyWeight{Key: key, Weight: w})
		}
		if h := c.histogram(name, true); h != nil {
			h.Restore(loads, keys)
		}
	}
	return nil
}
