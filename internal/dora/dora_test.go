package dora

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plp/internal/cs"
	"plp/internal/lock"
)

func TestTasksExecuteOnOwningWorker(t *testing.T) {
	p := NewPool(4, 16, &cs.Stats{})
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	var wrongWorker atomic.Int32
	for i := 0; i < 100; i++ {
		target := i % 4
		wg.Add(1)
		if err := p.Worker(target).Submit(Task{Do: func(w *Worker) {
			if w.ID() != target {
				wrongWorker.Add(1)
			}
			wg.Done()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if wrongWorker.Load() != 0 {
		t.Fatal("tasks executed on the wrong worker")
	}
	if p.TotalStats().Executed != 100 {
		t.Fatalf("executed=%d", p.TotalStats().Executed)
	}
}

func TestWorkerSerializesItsTasks(t *testing.T) {
	p := NewPool(1, 64, &cs.Stats{})
	p.Start()
	defer p.Stop()
	w := p.Worker(0)

	counter := 0 // no synchronization: the worker must serialize access
	var wg sync.WaitGroup
	for i := 0; i < 1000; i++ {
		wg.Add(1)
		if err := w.Submit(Task{Do: func(_ *Worker) {
			counter++
			wg.Done()
		}}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if counter != 1000 {
		t.Fatalf("worker did not serialize its tasks: %d", counter)
	}
}

func TestSystemQueueHasPriority(t *testing.T) {
	p := NewPool(1, 1024, &cs.Stats{})
	w := p.Worker(0)
	// Before starting the worker, enqueue many input tasks and one system
	// task; once started, the system task must run before most of the
	// input backlog.
	var order []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		_ = w.Submit(Task{Do: func(_ *Worker) {
			mu.Lock()
			order = append(order, "input")
			mu.Unlock()
			wg.Done()
		}})
	}
	wg.Add(1)
	_ = w.SubmitSystem(Task{Do: func(_ *Worker) {
		mu.Lock()
		order = append(order, "system")
		mu.Unlock()
		wg.Done()
	}})
	p.Start()
	defer p.Stop()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	pos := -1
	for i, s := range order {
		if s == "system" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("system task ran at position %d, expected immediately", pos)
	}
}

func TestQuiesceStopsAllWorkers(t *testing.T) {
	p := NewPool(4, 64, &cs.Stats{})
	p.Start()
	defer p.Stop()

	var running atomic.Int32
	stop := make(chan struct{})
	// Keep workers busy with a stream of tasks.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				done := make(chan struct{})
				if err := p.Worker(i).Submit(Task{Do: func(_ *Worker) {
					running.Add(1)
					time.Sleep(100 * time.Microsecond)
					running.Add(-1)
					close(done)
				}}); err != nil {
					return
				}
				<-done
			}
		}(i)
	}

	quiesced := false
	if err := p.Quiesce(func() {
		if running.Load() != 0 {
			t.Error("tasks still running during quiesce")
		}
		quiesced = true
	}); err != nil {
		t.Fatal(err)
	}
	if !quiesced {
		t.Fatal("quiesce callback not run")
	}
	close(stop)
	wg.Wait()
}

func TestStopDrainsQueues(t *testing.T) {
	p := NewPool(2, 256, &cs.Stats{})
	p.Start()
	var executed atomic.Int32
	for i := 0; i < 200; i++ {
		if err := p.Worker(i).Submit(Task{Do: func(_ *Worker) { executed.Add(1) }}); err != nil {
			t.Fatal(err)
		}
	}
	p.Stop()
	if executed.Load() != 200 {
		t.Fatalf("stop lost tasks: %d", executed.Load())
	}
	// Submitting after stop fails rather than hanging.
	if err := p.Worker(0).Submit(Task{Do: func(_ *Worker) {}}); err == nil {
		t.Fatal("submit after stop should fail")
	}
	p.Stop() // idempotent
}

func TestWorkerLocalLocks(t *testing.T) {
	p := NewPool(1, 8, &cs.Stats{})
	p.Start()
	defer p.Stop()
	var ok bool
	var wg sync.WaitGroup
	wg.Add(1)
	_ = p.Worker(0).Submit(Task{Do: func(w *Worker) {
		defer wg.Done()
		n := lock.KeyName(1, 5)
		ok = w.Locks().TryAcquire(1, n, lock.X)
		w.Locks().ReleaseTxn(1)
	}})
	wg.Wait()
	if !ok {
		t.Fatal("worker-local lock acquisition failed")
	}
}

func TestMessagePassingCSRecorded(t *testing.T) {
	cstats := &cs.Stats{}
	p := NewPool(2, 8, cstats)
	p.Start()
	defer p.Stop()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		_ = p.Worker(i).Submit(Task{Do: func(_ *Worker) { wg.Done() }})
	}
	wg.Wait()
	snap := cstats.Snapshot()
	if snap.Entered[cs.MessagePassing] != 10 {
		t.Fatalf("message passing CS=%d", snap.Entered[cs.MessagePassing])
	}
	if snap.ByClass[cs.Fixed] < 10 {
		t.Fatal("message passing should be fixed-contention")
	}
}

func TestQueueWaitAccounted(t *testing.T) {
	p := NewPool(1, 64, &cs.Stats{})
	w := p.Worker(0)
	var wg sync.WaitGroup
	wg.Add(1)
	_ = w.Submit(Task{Do: func(_ *Worker) {
		time.Sleep(5 * time.Millisecond)
		wg.Done()
	}})
	wg.Add(1)
	_ = w.Submit(Task{Do: func(_ *Worker) { wg.Done() }})
	p.Start()
	defer p.Stop()
	wg.Wait()
	if w.Stats().QueueWait <= 0 {
		t.Fatal("queue wait not recorded")
	}
	if w.Stats().Busy <= 0 {
		t.Fatal("busy time not recorded")
	}
}

// countingRunner implements Runner; batched hot-path tasks use pooled
// runners like this instead of closures.
type countingRunner struct {
	order  *[]int
	mu     *sync.Mutex
	id     int
	worker int
}

func (r *countingRunner) RunTask(w *Worker) {
	r.mu.Lock()
	*r.order = append(*r.order, r.id)
	r.mu.Unlock()
	r.worker = w.ID()
}

func TestSubmitBatchRunsInOrder(t *testing.T) {
	cstats := &cs.Stats{}
	p := NewPool(2, 16, cstats)
	p.Start()
	defer p.Stop()
	w := p.Worker(1)

	before := cstats.Snapshot().Entered[cs.MessagePassing]
	var mu sync.Mutex
	var order []int
	runners := make([]countingRunner, 8)
	ts := GetTasks()
	if len(*ts) != 0 {
		t.Fatal("GetTasks returned a non-empty slice")
	}
	for i := range runners {
		runners[i] = countingRunner{order: &order, mu: &mu, id: i}
		*ts = append(*ts, Task{Run: &runners[i]})
	}
	var wg sync.WaitGroup
	wg.Add(1)
	*ts = append(*ts, Task{Do: func(_ *Worker) { wg.Done() }})
	if err := w.SubmitBatch(ts); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(runners) {
		t.Fatalf("executed %d of %d batched tasks", len(order), len(runners))
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("batch executed out of order: %v", order)
		}
	}
	for i := range runners {
		if runners[i].worker != 1 {
			t.Fatalf("batched task %d ran on worker %d", i, runners[i].worker)
		}
	}
	// The whole batch is ONE message-passing critical section.
	if got := cstats.Snapshot().Entered[cs.MessagePassing] - before; got != 1 {
		t.Fatalf("batch recorded %d message-passing critical sections, want 1", got)
	}
	if st := w.Stats(); st.Executed != uint64(len(runners)+1) {
		t.Fatalf("executed=%d, want %d (every batched task counted)", st.Executed, len(runners)+1)
	}
}

func TestSubmitBatchAfterStopKeepsOwnership(t *testing.T) {
	p := NewPool(1, 8, &cs.Stats{})
	p.Start()
	p.Stop()
	ts := GetTasks()
	*ts = append(*ts, Task{Do: func(_ *Worker) { t.Error("task ran after stop") }})
	if err := p.Worker(0).SubmitBatch(ts); err == nil {
		t.Fatal("SubmitBatch after stop should fail")
	}
	// Ownership stayed with us: the tasks are still inspectable.
	if len(*ts) != 1 || (*ts)[0].Do == nil {
		t.Fatal("failed SubmitBatch mutated the caller's slice")
	}
	PutTasks(ts)
}

func TestAddExecutedCreditsExtraUnits(t *testing.T) {
	p := NewPool(1, 8, &cs.Stats{})
	p.Start()
	defer p.Stop()
	w := p.Worker(0)
	var wg sync.WaitGroup
	wg.Add(2)
	// A multi-unit task (a whole single-site transaction) credits the
	// actions it ran beyond the one the worker counts per task; a plain
	// task counts 1.
	_ = w.Submit(Task{Do: func(w *Worker) { w.AddExecuted(4); wg.Done() }})
	_ = w.Submit(Task{Do: func(_ *Worker) { wg.Done() }})
	wg.Wait()
	if got := w.Stats().Executed; got != 6 {
		t.Fatalf("Executed=%d, want 6 (1+4 credited, plus 1 plain)", got)
	}
}

func TestSubmitEmptyBatch(t *testing.T) {
	p := NewPool(1, 8, &cs.Stats{})
	p.Start()
	defer p.Stop()
	if err := p.Worker(0).SubmitBatch(GetTasks()); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

func TestQuiesceWorkersPartial(t *testing.T) {
	p := NewPool(4, 64, &cs.Stats{})
	p.Start()
	defer p.Stop()

	// While workers 0 and 1 are parked, workers 2 and 3 must keep running.
	executed := make(chan int, 2)
	err := p.QuiesceWorkers([]int{0, 1, 1, -5, 99}, func() {
		var wg sync.WaitGroup
		for _, id := range []int{2, 3} {
			wg.Add(1)
			if err := p.Worker(id).Submit(Task{Do: func(w *Worker) {
				executed <- w.ID()
				wg.Done()
			}}); err != nil {
				t.Errorf("submit to unquiesced worker %d: %v", id, err)
				wg.Done()
			}
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("tasks on unquiesced workers did not run during the quiesce")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(executed)
	seen := map[int]bool{}
	for id := range executed {
		seen[id] = true
	}
	if !seen[2] || !seen[3] {
		t.Fatalf("workers outside the quiesce set did not execute: %v", seen)
	}
}

func TestConcurrentQuiescesDoNotDeadlock(t *testing.T) {
	p := NewPool(4, 64, &cs.Stats{})
	p.Start()
	defer p.Stop()

	// Overlapping quiesce sets from many goroutines: the pool-level quiesce
	// mutex must serialize them (interleaved barrier submissions would
	// deadlock).
	var wg sync.WaitGroup
	sets := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 1, 2, 3}}
	for round := 0; round < 20; round++ {
		for _, ids := range sets {
			wg.Add(1)
			ids := ids
			go func() {
				defer wg.Done()
				_ = p.QuiesceWorkers(ids, func() {})
			}()
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent quiesces deadlocked")
	}
}
