// Package dora implements the data-oriented execution infrastructure shared
// by the logically-partitioned (Logical/DORA) and PLP designs: partition
// worker threads, their input and system queues, and the quiesce protocol
// used during repartitioning.
//
// Each logical partition is owned by exactly one worker goroutine.  The
// partition manager (package engine) decomposes transactions into actions
// and submits each action to the worker that owns the data it touches; the
// worker executes actions serially, which is what makes thread-local locking
// and (for PLP) latch-free page access safe.  Queue operations are the
// fixed-contention "message passing" critical sections of Figure 1.
//
// The input queue carries batches: Submit enqueues one task per channel
// operation, SubmitBatch enqueues a whole slice of tasks with a single
// channel operation, which is how the partition manager ships one phase's
// per-partition action group (or a whole single-site transaction) at the
// fixed cost of ONE message instead of one per action.
package dora

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/cs"
	"plp/internal/lock"
)

// ErrStopped is returned when work is submitted to a stopped worker pool.
var ErrStopped = errors.New("dora: worker pool is stopped")

// Runner is the allocation-free alternative to Task.Do: a pre-built (and
// typically pooled) object whose RunTask method executes on the worker
// goroutine.  Storing a pointer in an interface field does not allocate,
// whereas building a fresh closure for every task does — hot paths submit
// runners, everything else keeps using closures.
type Runner interface {
	RunTask(w *Worker)
}

// Task is a unit of work executed by a partition worker.  Exactly one of Do
// and Run must be set; Do wins when both are.
type Task struct {
	// Do is the work to perform; it runs on the worker goroutine and
	// receives the worker so it can use the worker-local lock table.
	Do func(w *Worker)
	// Run is executed when Do is nil.  It exists so hot submit paths can
	// reuse pooled runner objects instead of allocating a closure per task.
	Run Runner
}

// batch is one input-queue element: either a single inline task or a slice
// of tasks that rode one channel operation.  enqueuedAt is non-zero only on
// sampled batches (see timingSampleEvery).
type batch struct {
	one        Task
	many       *[]Task
	enqueuedAt time.Time
}

// timingSampleEvery is the queue-wait/busy sampling period: one batch in
// every timingSampleEvery is timestamped at submit and measured on the
// worker, and its durations are scaled back up by the same factor, so
// Stats' QueueWait and Busy stay unbiased estimates while time.Now leaves
// the per-task hot path entirely.
const timingSampleEvery = 64

// taskSlicePool recycles the task slices that SubmitBatch hands to workers.
var taskSlicePool = sync.Pool{New: func() any {
	ts := make([]Task, 0, 8)
	return &ts
}}

// GetTasks returns an empty pooled task slice for SubmitBatch.  Ownership
// passes to the worker on a successful SubmitBatch; on error the caller
// keeps it and should return it with PutTasks.
func GetTasks() *[]Task {
	ts := taskSlicePool.Get().(*[]Task)
	*ts = (*ts)[:0]
	return ts
}

// PutTasks returns a task slice to the pool.  Callers use it only for
// slices a failed (or never attempted) SubmitBatch left in their hands.
func PutTasks(ts *[]Task) {
	clear(*ts)
	*ts = (*ts)[:0]
	taskSlicePool.Put(ts)
}

// Worker is a partition worker goroutine and its queues.
type Worker struct {
	id      int
	input   chan batch
	system  chan Task
	quit    chan struct{}
	stopped atomic.Bool
	done    sync.WaitGroup

	locks *lock.Local
	cst   *cs.Stats

	submitSeq atomic.Uint64 // counts input submissions for timing samples

	executed  atomic.Uint64
	sysTasks  atomic.Uint64
	queueWait atomic.Int64 // sampled-estimate nanoseconds tasks waited in the input queue
	busy      atomic.Int64 // sampled-estimate nanoseconds spent executing tasks
}

// newWorker creates a worker with the given queue depth.
func newWorker(id, queueDepth int, cstats *cs.Stats) *Worker {
	return &Worker{
		id:     id,
		input:  make(chan batch, queueDepth),
		system: make(chan Task, 16),
		quit:   make(chan struct{}),
		locks:  lock.NewLocal(),
		cst:    cstats,
	}
}

// ID returns the worker's partition index.
func (w *Worker) ID() int { return w.id }

// Locks returns the worker-local lock table.  Only code running on the
// worker goroutine may use it.
func (w *Worker) Locks() *lock.Local { return w.locks }

// QueueDepth returns the number of batches waiting in the worker's input
// queue (diagnostics: the plpd -pprof endpoint publishes it via expvar).
func (w *Worker) QueueDepth() int { return len(w.input) }

// AddExecuted credits extra execution units to the worker's Executed
// counter.  A task that stands in for several units of work — the
// single-site fast path's whole-transaction task — calls it from its own
// body with the units it ACTUALLY ran beyond the one the worker counts per
// task, so per-partition load accounting stays in action units and a batch
// that redirects without executing credits (almost) nothing.
func (w *Worker) AddExecuted(units uint64) { w.executed.Add(units) }

// stamp samples the queue-wait clock: one submission in every
// timingSampleEvery gets a timestamp, the rest stay on the zero value.
func (w *Worker) stamp() time.Time {
	if w.submitSeq.Add(1)%timingSampleEvery == 1 {
		return time.Now()
	}
	return time.Time{}
}

// Submit enqueues a task on the worker's input queue.  The channel operation
// is the fixed-contention message-passing critical section of the paper's
// communication taxonomy.
func (w *Worker) Submit(t Task) error {
	if w.stopped.Load() {
		return ErrStopped
	}
	b := batch{one: t, enqueuedAt: w.stamp()}
	w.cst.RecordClass(cs.MessagePassing, cs.Fixed, false)
	select {
	case <-w.quit:
		return ErrStopped
	case w.input <- b:
		return nil
	}
}

// SubmitBatch enqueues every task of ts on the worker's input queue with a
// single channel operation — the whole batch pays the fixed message-passing
// cost once.  The tasks execute in slice order, serially, like any other
// input tasks.  On success, ownership of ts transfers to the worker, which
// recycles it after the last task runs; obtain slices from GetTasks.  On
// error the caller keeps ownership (and can PutTasks it after inspecting
// the tasks).
func (w *Worker) SubmitBatch(ts *[]Task) error {
	if len(*ts) == 0 {
		PutTasks(ts)
		return nil
	}
	if w.stopped.Load() {
		return ErrStopped
	}
	b := batch{many: ts, enqueuedAt: w.stamp()}
	w.cst.RecordClass(cs.MessagePassing, cs.Fixed, false)
	select {
	case <-w.quit:
		return ErrStopped
	case w.input <- b:
		return nil
	}
}

// SubmitSystem enqueues a high-priority system task (page cleaning requests
// and repartitioning barriers use this queue, as described in Appendix A.4).
func (w *Worker) SubmitSystem(t Task) error {
	if w.stopped.Load() {
		return ErrStopped
	}
	w.cst.RecordClass(cs.MessagePassing, cs.Fixed, false)
	select {
	case <-w.quit:
		return ErrStopped
	case w.system <- t:
		return nil
	}
}

// loop is the worker goroutine body.
func (w *Worker) loop() {
	defer w.done.Done()
	for {
		// System tasks have priority over the input queue.
		select {
		case t := <-w.system:
			w.runSystem(t)
			continue
		default:
		}
		// Busy fast path: a non-blocking receive costs a fraction of a full
		// select, and under load the input queue is never empty.
		select {
		case b := <-w.input:
			w.run(b)
			continue
		default:
		}
		select {
		case t := <-w.system:
			w.runSystem(t)
		case b := <-w.input:
			w.run(b)
		case <-w.quit:
			// Drain any remaining input so submitters are not stranded.
			for {
				select {
				case b := <-w.input:
					w.run(b)
				case t := <-w.system:
					w.runSystem(t)
				default:
					return
				}
			}
		}
	}
}

// exec runs one task.
func (w *Worker) exec(t *Task) {
	if t.Do != nil {
		t.Do(w)
	} else if t.Run != nil {
		t.Run.RunTask(w)
	}
}

// run executes one input batch.  Only sampled batches (non-zero
// enqueuedAt) read the clock; their measured durations are scaled by the
// sampling period so the accumulated counters remain estimates of the
// true totals.
func (w *Worker) run(b batch) {
	var start time.Time
	if !b.enqueuedAt.IsZero() {
		start = time.Now()
		w.queueWait.Add(int64(start.Sub(b.enqueuedAt)) * timingSampleEvery)
	}
	if b.many == nil {
		w.exec(&b.one)
		w.executed.Add(1)
	} else {
		ts := *b.many
		for i := range ts {
			w.exec(&ts[i])
		}
		w.executed.Add(uint64(len(ts)))
		PutTasks(b.many)
	}
	if !start.IsZero() {
		w.busy.Add(int64(time.Since(start)) * timingSampleEvery)
	}
}

func (w *Worker) runSystem(t Task) {
	w.exec(&t)
	w.sysTasks.Add(1)
}

// Stats describes a worker's activity.  QueueWait and Busy are sampled
// estimates (one batch in every timingSampleEvery is measured and scaled),
// so time.Now stays off the per-task hot path; Executed (execution units:
// one per task plus whatever multi-action tasks credit via AddExecuted)
// and SystemTasks are exact.
type Stats struct {
	Executed    uint64
	SystemTasks uint64
	QueueWait   time.Duration
	Busy        time.Duration
}

// Stats returns the worker's activity counters.
func (w *Worker) Stats() Stats {
	return Stats{
		Executed:    w.executed.Load(),
		SystemTasks: w.sysTasks.Load(),
		QueueWait:   time.Duration(w.queueWait.Load()),
		Busy:        time.Duration(w.busy.Load()),
	}
}

// Pool is a set of partition workers, one per logical partition.
type Pool struct {
	workers []*Worker
	started atomic.Bool
	stopped atomic.Bool

	// quiesceMu serializes quiesce operations.  Two concurrent quiesces
	// (say, a checkpoint and a repartitioning) that interleave their barrier
	// submissions would each park a subset of the workers and wait forever
	// for the rest; taking the mutex for the whole operation makes that
	// impossible.
	quiesceMu sync.Mutex
}

// NewPool creates n workers with the given input-queue depth.
func NewPool(n, queueDepth int, cstats *cs.Stats) *Pool {
	if n < 1 {
		n = 1
	}
	if queueDepth < 1 {
		queueDepth = 128
	}
	p := &Pool{}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, newWorker(i, queueDepth, cstats))
	}
	return p
}

// Start launches the worker goroutines.
func (p *Pool) Start() {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	for _, w := range p.workers {
		w.done.Add(1)
		go w.loop()
	}
}

// Stop terminates the workers after draining their queues.  Submissions
// after Stop return ErrStopped.
func (p *Pool) Stop() {
	if !p.started.Load() || !p.stopped.CompareAndSwap(false, true) {
		return
	}
	for _, w := range p.workers {
		w.stopped.Store(true)
	}
	for _, w := range p.workers {
		close(w.quit)
	}
	for _, w := range p.workers {
		w.done.Wait()
	}
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Worker returns worker i.
func (p *Pool) Worker(i int) *Worker { return p.workers[i%len(p.workers)] }

// Workers returns all workers.
func (p *Pool) Workers() []*Worker { return p.workers }

// Quiesce pauses every worker at a barrier, runs fn while all partitions are
// idle, and then releases the workers.  The partition manager uses it around
// repartitioning, which therefore needs no latching at all (Section 3.1:
// "the partition manager simply quiesces affected threads until the process
// completes").
func (p *Pool) Quiesce(fn func()) error {
	ids := make([]int, len(p.workers))
	for i := range ids {
		ids[i] = i
	}
	return p.QuiesceWorkers(ids, fn)
}

// QuiesceWorkers parks only the workers with the given ids at a barrier and
// runs fn while exactly those partitions are idle; the remaining workers keep
// executing.  Repartitioning uses it to implement the paper's DRP behaviour
// of quiescing only the partition pair affected by a boundary move instead of
// stopping the world.  Duplicate and out-of-range ids are ignored.
func (p *Pool) QuiesceWorkers(ids []int, fn func()) error {
	p.quiesceMu.Lock()
	defer p.quiesceMu.Unlock()

	seen := make(map[int]bool, len(ids))
	targets := make([]*Worker, 0, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(p.workers) || seen[id] {
			continue
		}
		seen[id] = true
		targets = append(targets, p.workers[id])
	}
	if len(targets) == 0 {
		fn()
		return nil
	}

	var reached, release sync.WaitGroup
	reached.Add(len(targets))
	release.Add(1)
	submitted := 0
	for _, w := range targets {
		err := w.SubmitSystem(Task{Do: func(_ *Worker) {
			reached.Done()
			release.Wait()
		}})
		if err != nil {
			// Unblock any workers already parked at the barrier and account
			// for the barriers that never made it into a queue.
			reached.Add(submitted - len(targets))
			release.Done()
			return err
		}
		submitted++
	}
	reached.Wait()
	fn()
	release.Done()
	return nil
}

// TotalStats sums the workers' activity counters.
func (p *Pool) TotalStats() Stats {
	var out Stats
	for _, w := range p.workers {
		s := w.Stats()
		out.Executed += s.Executed
		out.SystemTasks += s.SystemTasks
		out.QueueWait += s.QueueWait
		out.Busy += s.Busy
	}
	return out
}
