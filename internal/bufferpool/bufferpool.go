// Package bufferpool implements the buffer manager: the layer that caches
// database pages in memory, hands out latched page frames to the access
// methods, and writes dirty pages back to the backing store.
//
// Every page access in the conventional and logically-partitioned designs
// goes through Fix/Unfix and acquires the frame's page latch; the PLP
// designs bypass the latch (but not the fix) for pages owned by a single
// partition worker.  The buffer pool's own internal state (the page table)
// is protected by a striped mutex whose acquisitions are reported to the
// critical-section statistics under the Bpool category, exactly as the
// paper's Figure 1 accounts for them.
//
// The experiments in the paper run with memory-resident databases, so the
// default configuration never evicts.  A simple CLOCK eviction policy is
// available when a capacity limit is configured, which also exercises the
// page-cleaner path.
package bufferpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"plp/internal/cs"
	"plp/internal/latch"
	"plp/internal/page"
)

// Errors returned by the buffer pool.
var (
	ErrNoSuchPage   = errors.New("bufferpool: page does not exist")
	ErrPoolFull     = errors.New("bufferpool: no evictable frame available")
	ErrPagePinned   = errors.New("bufferpool: page still pinned")
	ErrFreedTwice   = errors.New("bufferpool: page freed twice")
	ErrStoreMissing = errors.New("bufferpool: page missing from backing store")
)

// Store is the persistent backing store for pages.  The production
// configuration uses MemStore (the paper's experiments are memory
// resident); tests may supply fault-injecting implementations.
type Store interface {
	// Read returns the serialized contents of the page.
	Read(id page.ID) ([]byte, error)
	// Write persists the serialized contents of the page.
	Write(id page.ID, data []byte) error
	// Allocate reserves a new page ID.
	Allocate() page.ID
	// Free releases a page ID (the page may be reused).
	Free(id page.ID) error
	// NumAllocated returns the number of currently allocated pages.
	NumAllocated() int
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu     sync.Mutex
	pages  map[page.ID][]byte
	nextID uint64
	free   []page.ID
}

// NewMemStore returns an empty in-memory backing store.
func NewMemStore() *MemStore {
	return &MemStore{pages: make(map[page.ID][]byte)}
}

// Read implements Store.
func (m *MemStore) Read(id page.ID) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.pages[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrStoreMissing, id)
	}
	return data, nil
}

// Write implements Store.
func (m *MemStore) Write(id page.ID, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages[id] = data
	return nil
}

// Allocate implements Store.
func (m *MemStore) Allocate() page.ID {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.free); n > 0 {
		id := m.free[n-1]
		m.free = m.free[:n-1]
		return id
	}
	m.nextID++
	return page.ID(m.nextID)
}

// Free implements Store.
func (m *MemStore) Free(id page.ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.pages, id)
	m.free = append(m.free, id)
	return nil
}

// NumAllocated implements Store.
func (m *MemStore) NumAllocated() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.nextID) - len(m.free)
}

// Frame is an in-memory slot holding one page together with its latch and
// pin count.  Access methods receive *Frame from Fix and must Unfix it when
// done.
type Frame struct {
	page  *page.Page
	latch *latch.Latch
	pin   atomic.Int32
	dirty atomic.Bool
	// clock reference bit for eviction
	ref atomic.Bool
}

// Page returns the page cached in the frame.
func (f *Frame) Page() *page.Page { return f.page }

// Latch returns the frame's page latch.
func (f *Frame) Latch() *latch.Latch { return f.latch }

// MarkDirty records that the page has been modified and must be written
// back before eviction.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// Dirty reports whether the page has unflushed modifications.
func (f *Frame) Dirty() bool { return f.dirty.Load() }

// PinCount returns the current pin count (for tests and assertions).
func (f *Frame) PinCount() int { return int(f.pin.Load()) }

// Config configures a buffer pool.
type Config struct {
	// Capacity limits the number of resident frames.  Zero means
	// unbounded (memory-resident database, as in the paper).
	Capacity int
	// LatchStats receives page-latch accounting; may be nil.
	LatchStats *latch.Stats
	// CSStats receives critical-section accounting; may be nil.
	CSStats *cs.Stats
}

// Pool is the buffer manager.
type Pool struct {
	store Store
	cfg   Config

	mu     sync.Mutex
	table  map[page.ID]*Frame
	fifo   []page.ID // allocation order, used by CLOCK eviction
	clock  int
	nFixes atomic.Uint64
	nMiss  atomic.Uint64
}

// New returns a buffer pool over the given store.
func New(store Store, cfg Config) *Pool {
	return &Pool{
		store: store,
		cfg:   cfg,
		table: make(map[page.ID]*Frame),
	}
}

// NewMemory returns a buffer pool over a fresh in-memory store with no
// capacity limit.
func NewMemory(cfg Config) *Pool {
	return New(NewMemStore(), cfg)
}

// Store returns the backing store (used by consistency checks and tests).
func (bp *Pool) Store() Store { return bp.store }

// latchKindFor maps a page kind to the latch accounting bucket.
func latchKindFor(k page.Kind) latch.PageKind {
	switch {
	case k.IsIndex():
		return latch.KindIndex
	case k == page.KindHeap:
		return latch.KindHeap
	default:
		return latch.KindCatalog
	}
}

// recordBpoolCS notes one page-table critical section.
func (bp *Pool) recordBpoolCS(contended bool) {
	bp.cfg.CSStats.Record(cs.Bpool, contended)
}

// NewPage allocates a new page of the given kind, fixes it, and returns the
// frame with pin count 1.  The page starts dirty.
func (bp *Pool) NewPage(kind page.Kind) (*Frame, error) {
	id := bp.store.Allocate()
	p := page.New(id, kind)
	f := &Frame{
		page:  p,
		latch: latch.New(latchKindFor(kind), bp.cfg.LatchStats, bp.cfg.CSStats),
	}
	f.pin.Store(1)
	f.dirty.Store(true)
	f.ref.Store(true)

	contended := !bp.mu.TryLock()
	if contended {
		bp.mu.Lock()
	}
	bp.recordBpoolCS(contended)
	if bp.cfg.Capacity > 0 && len(bp.table) >= bp.cfg.Capacity {
		if err := bp.evictLocked(); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	bp.table[id] = f
	bp.fifo = append(bp.fifo, id)
	bp.mu.Unlock()

	// Persist an initial image so that a later miss can always read it.
	if err := bp.store.Write(id, p.Marshal()); err != nil {
		return nil, err
	}
	return f, nil
}

// Fix pins the page into the pool and returns its frame.  The caller must
// call Unfix exactly once for every successful Fix.
func (bp *Pool) Fix(id page.ID) (*Frame, error) {
	if id == page.InvalidID {
		return nil, ErrNoSuchPage
	}
	bp.nFixes.Add(1)

	contended := !bp.mu.TryLock()
	if contended {
		bp.mu.Lock()
	}
	bp.recordBpoolCS(contended)
	if f, ok := bp.table[id]; ok {
		f.pin.Add(1)
		f.ref.Store(true)
		bp.mu.Unlock()
		return f, nil
	}
	bp.mu.Unlock()

	// Miss: read from the backing store outside the page-table critical
	// section, then install.
	bp.nMiss.Add(1)
	data, err := bp.store.Read(id)
	if err != nil {
		return nil, err
	}
	p, err := page.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	f := &Frame{
		page:  p,
		latch: latch.New(latchKindFor(p.Kind()), bp.cfg.LatchStats, bp.cfg.CSStats),
	}
	f.pin.Store(1)
	f.ref.Store(true)

	contended = !bp.mu.TryLock()
	if contended {
		bp.mu.Lock()
	}
	bp.recordBpoolCS(contended)
	if existing, ok := bp.table[id]; ok {
		// Another thread installed the page while we were reading it.
		existing.pin.Add(1)
		existing.ref.Store(true)
		bp.mu.Unlock()
		return existing, nil
	}
	if bp.cfg.Capacity > 0 && len(bp.table) >= bp.cfg.Capacity {
		if err := bp.evictLocked(); err != nil {
			bp.mu.Unlock()
			return nil, err
		}
	}
	bp.table[id] = f
	bp.fifo = append(bp.fifo, id)
	bp.mu.Unlock()
	return f, nil
}

// Unfix releases one pin on the frame.  If dirty is true the frame is marked
// dirty.
func (bp *Pool) Unfix(f *Frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	if n := f.pin.Add(-1); n < 0 {
		panic("bufferpool: unfix without matching fix")
	}
}

// evictLocked removes one unpinned frame, flushing it if dirty.  Caller
// holds bp.mu.
func (bp *Pool) evictLocked() error {
	if len(bp.fifo) == 0 {
		return ErrPoolFull
	}
	for attempts := 0; attempts < 2*len(bp.fifo); attempts++ {
		bp.clock = (bp.clock + 1) % len(bp.fifo)
		id := bp.fifo[bp.clock]
		f, ok := bp.table[id]
		if !ok {
			// Stale fifo entry; drop it.
			bp.fifo = append(bp.fifo[:bp.clock], bp.fifo[bp.clock+1:]...)
			if bp.clock >= len(bp.fifo) && len(bp.fifo) > 0 {
				bp.clock = 0
			}
			if len(bp.fifo) == 0 {
				return ErrPoolFull
			}
			continue
		}
		if f.pin.Load() > 0 {
			continue
		}
		if f.ref.Swap(false) {
			continue // second chance
		}
		if f.dirty.Load() {
			if err := bp.store.Write(id, f.page.Marshal()); err != nil {
				return err
			}
			f.dirty.Store(false)
		}
		delete(bp.table, id)
		bp.fifo = append(bp.fifo[:bp.clock], bp.fifo[bp.clock+1:]...)
		return nil
	}
	return ErrPoolFull
}

// FreePage removes the page from the pool and the backing store.  The page
// must be unpinned.
func (bp *Pool) FreePage(id page.ID) error {
	contended := !bp.mu.TryLock()
	if contended {
		bp.mu.Lock()
	}
	bp.recordBpoolCS(contended)
	if f, ok := bp.table[id]; ok {
		if f.pin.Load() > 0 {
			bp.mu.Unlock()
			return ErrPagePinned
		}
		delete(bp.table, id)
	}
	bp.mu.Unlock()
	return bp.store.Free(id)
}

// FlushPage writes the page back to the store if it is dirty.
func (bp *Pool) FlushPage(id page.ID) error {
	bp.mu.Lock()
	f, ok := bp.table[id]
	bp.mu.Unlock()
	if !ok {
		return nil
	}
	if !f.dirty.Load() {
		return nil
	}
	// The cleaner latches the page in shared mode so that it captures a
	// consistent image while the owner may keep working (the paper notes
	// page cleaning is read-only for the cleaned partition).
	f.latch.Acquire(latch.Shared)
	data := f.page.Marshal()
	f.dirty.Store(false)
	f.latch.Release(latch.Shared)
	return bp.store.Write(id, data)
}

// FlushAll writes every dirty page back to the store.
func (bp *Pool) FlushAll() error {
	bp.mu.Lock()
	ids := make([]page.ID, 0, len(bp.table))
	for id, f := range bp.table {
		if f.dirty.Load() {
			ids = append(ids, id)
		}
	}
	bp.mu.Unlock()
	for _, id := range ids {
		if err := bp.FlushPage(id); err != nil {
			return err
		}
	}
	return nil
}

// DirtyPageIDs returns the IDs of all dirty resident pages (used by the page
// cleaner and by the PLP per-partition cleaning path).
func (bp *Pool) DirtyPageIDs() []page.ID {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	out := make([]page.ID, 0)
	for id, f := range bp.table {
		if f.dirty.Load() {
			out = append(out, id)
		}
	}
	return out
}

// Stats reports buffer pool activity.
type Stats struct {
	Fixes    uint64
	Misses   uint64
	Resident int
}

// Stats returns a snapshot of buffer pool activity.
func (bp *Pool) Stats() Stats {
	bp.mu.Lock()
	resident := len(bp.table)
	bp.mu.Unlock()
	return Stats{
		Fixes:    bp.nFixes.Load(),
		Misses:   bp.nMiss.Load(),
		Resident: resident,
	}
}

// NumResident returns the number of pages currently cached.
func (bp *Pool) NumResident() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.table)
}
