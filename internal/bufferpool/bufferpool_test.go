package bufferpool

import (
	"fmt"
	"sync"
	"testing"

	"plp/internal/cs"
	"plp/internal/latch"
	"plp/internal/page"
)

func newPool(capacity int) *Pool {
	return NewMemory(Config{Capacity: capacity, LatchStats: &latch.Stats{}, CSStats: &cs.Stats{}})
}

func TestNewPageAndFix(t *testing.T) {
	bp := newPool(0)
	f, err := bp.NewPage(page.KindHeap)
	if err != nil {
		t.Fatal(err)
	}
	id := f.Page().ID()
	if id == page.InvalidID {
		t.Fatal("invalid id allocated")
	}
	if f.PinCount() != 1 {
		t.Fatalf("pin=%d", f.PinCount())
	}
	if _, err := f.Page().Add([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	bp.Unfix(f, true)

	g, err := bp.Fix(id)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := g.Page().Get(0)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("rec=%q err=%v", rec, err)
	}
	bp.Unfix(g, false)
	if _, err := bp.Fix(page.InvalidID); err == nil {
		t.Fatal("fixed the invalid page")
	}
}

func TestFixMissingPage(t *testing.T) {
	bp := newPool(0)
	if _, err := bp.Fix(page.ID(9999)); err == nil {
		t.Fatal("expected error for unknown page")
	}
}

func TestUnfixPanicsWithoutFix(t *testing.T) {
	bp := newPool(0)
	f, _ := bp.NewPage(page.KindHeap)
	bp.Unfix(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on extra unfix")
		}
	}()
	bp.Unfix(f, false)
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	bp := newPool(4)
	var ids []page.ID
	for i := 0; i < 16; i++ {
		f, err := bp.NewPage(page.KindHeap)
		if err != nil {
			t.Fatalf("NewPage %d: %v", i, err)
		}
		if _, err := f.Page().Add([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.Page().ID())
		bp.Unfix(f, true)
	}
	if bp.NumResident() > 4 {
		t.Fatalf("capacity not enforced: %d resident", bp.NumResident())
	}
	// Every page must still be readable (evicted ones come back from the
	// store with their contents).
	for i, id := range ids {
		f, err := bp.Fix(id)
		if err != nil {
			t.Fatalf("Fix %v: %v", id, err)
		}
		rec, err := f.Page().Get(0)
		if err != nil || string(rec) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("page %v content lost: %q %v", id, rec, err)
		}
		bp.Unfix(f, false)
	}
	if bp.Stats().Misses == 0 {
		t.Fatal("expected buffer pool misses with a small capacity")
	}
}

func TestEvictionRefusesWhenAllPinned(t *testing.T) {
	bp := newPool(2)
	f1, _ := bp.NewPage(page.KindHeap)
	f2, _ := bp.NewPage(page.KindHeap)
	if _, err := bp.NewPage(page.KindHeap); err == nil {
		t.Fatal("expected ErrPoolFull with every frame pinned")
	}
	bp.Unfix(f1, false)
	bp.Unfix(f2, false)
	if _, err := bp.NewPage(page.KindHeap); err != nil {
		t.Fatalf("allocation after unpin failed: %v", err)
	}
}

func TestFreePage(t *testing.T) {
	bp := newPool(0)
	f, _ := bp.NewPage(page.KindHeap)
	id := f.Page().ID()
	if err := bp.FreePage(id); err == nil {
		t.Fatal("freed a pinned page")
	}
	bp.Unfix(f, false)
	if err := bp.FreePage(id); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Fix(id); err == nil {
		t.Fatal("fixed a freed page")
	}
}

func TestFlushAllAndDirtyTracking(t *testing.T) {
	bp := newPool(0)
	f, _ := bp.NewPage(page.KindHeap)
	id := f.Page().ID()
	_, _ = f.Page().Add([]byte("x"))
	bp.Unfix(f, true)
	if got := bp.DirtyPageIDs(); len(got) != 1 || got[0] != id {
		t.Fatalf("dirty ids wrong: %v", got)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if got := bp.DirtyPageIDs(); len(got) != 0 {
		t.Fatalf("pages still dirty after flush: %v", got)
	}
	data, err := bp.Store().Read(id)
	if err != nil {
		t.Fatal(err)
	}
	p, err := page.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if rec, err := p.Get(0); err != nil || string(rec) != "x" {
		t.Fatalf("store content wrong: %q %v", rec, err)
	}
}

func TestLatchKindAssignment(t *testing.T) {
	ls := &latch.Stats{}
	bp := NewMemory(Config{LatchStats: ls, CSStats: &cs.Stats{}})
	heapFrame, _ := bp.NewPage(page.KindHeap)
	idxFrame, _ := bp.NewPage(page.KindIndexLeaf)
	catFrame, _ := bp.NewPage(page.KindMetadata)
	heapFrame.Latch().Acquire(latch.Shared)
	heapFrame.Latch().Release(latch.Shared)
	idxFrame.Latch().Acquire(latch.Shared)
	idxFrame.Latch().Release(latch.Shared)
	catFrame.Latch().Acquire(latch.Shared)
	catFrame.Latch().Release(latch.Shared)
	snap := ls.Snapshot()
	if snap.Acquired[latch.KindHeap] != 1 || snap.Acquired[latch.KindIndex] != 1 || snap.Acquired[latch.KindCatalog] != 1 {
		t.Fatalf("latch kinds misassigned: %+v", snap)
	}
	bp.Unfix(heapFrame, false)
	bp.Unfix(idxFrame, false)
	bp.Unfix(catFrame, false)
}

func TestBpoolCriticalSectionsReported(t *testing.T) {
	cstats := &cs.Stats{}
	bp := NewMemory(Config{CSStats: cstats, LatchStats: &latch.Stats{}})
	f, _ := bp.NewPage(page.KindHeap)
	bp.Unfix(f, false)
	for i := 0; i < 10; i++ {
		g, err := bp.Fix(f.Page().ID())
		if err != nil {
			t.Fatal(err)
		}
		bp.Unfix(g, false)
	}
	if cstats.Snapshot().Entered[cs.Bpool] == 0 {
		t.Fatal("buffer pool critical sections not reported")
	}
}

func TestConcurrentFixUnfix(t *testing.T) {
	bp := newPool(0)
	var ids []page.ID
	for i := 0; i < 32; i++ {
		f, err := bp.NewPage(page.KindHeap)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.Page().ID())
		bp.Unfix(f, true)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := ids[(g*31+i)%len(ids)]
				f, err := bp.Fix(id)
				if err != nil {
					t.Errorf("Fix: %v", err)
					return
				}
				f.Latch().Acquire(latch.Shared)
				f.Latch().Release(latch.Shared)
				bp.Unfix(f, false)
			}
		}(g)
	}
	wg.Wait()
	for _, id := range ids {
		f, err := bp.Fix(id)
		if err != nil {
			t.Fatal(err)
		}
		if f.PinCount() != 1 {
			t.Fatalf("pin count leaked on %v: %d", id, f.PinCount())
		}
		bp.Unfix(f, false)
	}
}

func TestMemStoreAllocateFreeReuse(t *testing.T) {
	s := NewMemStore()
	a := s.Allocate()
	b := s.Allocate()
	if a == b {
		t.Fatal("duplicate allocation")
	}
	if err := s.Write(a, make([]byte, page.Size)); err != nil {
		t.Fatal(err)
	}
	if s.NumAllocated() != 2 {
		t.Fatalf("allocated=%d", s.NumAllocated())
	}
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(a); err == nil {
		t.Fatal("read of freed page succeeded")
	}
	c := s.Allocate()
	if c != a {
		t.Fatalf("freed id not reused: got %v want %v", c, a)
	}
}
