// Package logrec defines the payload format of logical log records.
//
// The write-ahead log (package wal) frames records and assigns LSNs but is
// agnostic about payload contents.  The engine logs data modifications
// logically — one record per Insert/Update/Delete naming the table, the key
// and the before/after images — which is what makes logical restart recovery
// (package recovery) possible: the log alone is sufficient to rebuild the
// database contents, in the spirit of the logical logging schemes the paper
// builds on (Aether [Johnson et al., PVLDB 2010] consolidates the buffer;
// the record contents stay logical).
//
// Payloads are encoded with a small length-prefixed binary format; no
// reflection, no allocation beyond the output buffer.
package logrec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Errors returned by payload decoding.
var (
	ErrShort   = errors.New("logrec: truncated payload")
	ErrVersion = errors.New("logrec: unknown payload version")
)

// payloadVersion is bumped whenever the encoding changes incompatibly.
const payloadVersion = 1

// Modification is the logical payload of an insert, update or delete record.
type Modification struct {
	// Table is the table the modification applies to.
	Table string
	// Index is the secondary index the modification applies to; empty for
	// primary-table modifications.
	Index string
	// Key is the primary key of the affected record (or the secondary key,
	// when Index is set).
	Key []byte
	// Before is the record image before the modification (nil for inserts).
	Before []byte
	// After is the record image after the modification (nil for deletes).
	After []byte
}

// appendBytes writes a uint32 length prefix followed by b.
func appendBytes(dst, b []byte) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(b)))
	dst = append(dst, l[:]...)
	return append(dst, b...)
}

// readBytes consumes one length-prefixed field.
func readBytes(src []byte) (field, rest []byte, err error) {
	if len(src) < 4 {
		return nil, nil, ErrShort
	}
	n := binary.LittleEndian.Uint32(src)
	src = src[4:]
	if uint32(len(src)) < n {
		return nil, nil, ErrShort
	}
	if n == 0 {
		return nil, src, nil
	}
	return append([]byte(nil), src[:n]...), src[n:], nil
}

// EncodeModification serializes m into a log payload.
func EncodeModification(m Modification) []byte {
	out := make([]byte, 0, 1+5*4+len(m.Table)+len(m.Index)+len(m.Key)+len(m.Before)+len(m.After))
	out = append(out, payloadVersion)
	out = appendBytes(out, []byte(m.Table))
	out = appendBytes(out, []byte(m.Index))
	out = appendBytes(out, m.Key)
	out = appendBytes(out, m.Before)
	out = appendBytes(out, m.After)
	return out
}

// DecodeModification parses a payload produced by EncodeModification.
func DecodeModification(payload []byte) (Modification, error) {
	var m Modification
	if len(payload) < 1 {
		return m, ErrShort
	}
	if payload[0] != payloadVersion {
		return m, fmt.Errorf("%w: %d", ErrVersion, payload[0])
	}
	rest := payload[1:]
	var field []byte
	var err error
	if field, rest, err = readBytes(rest); err != nil {
		return m, err
	}
	m.Table = string(field)
	if field, rest, err = readBytes(rest); err != nil {
		return m, err
	}
	m.Index = string(field)
	if m.Key, rest, err = readBytes(rest); err != nil {
		return m, err
	}
	if m.Before, rest, err = readBytes(rest); err != nil {
		return m, err
	}
	if m.After, _, err = readBytes(rest); err != nil {
		return m, err
	}
	return m, nil
}

// IsModificationPayload reports whether the payload looks like an encoded
// Modification (as opposed to a legacy bare-key payload).  Recovery uses it
// to skip records produced by components that log only structural events.
func IsModificationPayload(payload []byte) bool {
	_, err := DecodeModification(payload)
	return err == nil
}

// CheckpointChunk is one piece of a checkpoint: a snapshot of a contiguous
// run of records of one table.  A checkpoint is a sequence of chunk records
// followed by an End record; recovery replays the chunks of the most recent
// complete checkpoint and then the log tail after its begin LSN.
type CheckpointChunk struct {
	// Table is the table the chunk belongs to.
	Table string
	// Index is the secondary index the chunk belongs to; empty for the
	// table's primary contents.
	Index string
	// Keys and Values hold the snapshot entries, pairwise.
	Keys   [][]byte
	Values [][]byte
}

// CheckpointEnd marks a complete checkpoint.
type CheckpointEnd struct {
	// BeginLSN is the LSN of the checkpoint's first chunk record.  Replay of
	// the log tail starts after this LSN for records already reflected in the
	// snapshot, and from the snapshot's own chunk records otherwise.
	BeginLSN uint64
	// Chunks is the number of chunk records forming the checkpoint.
	Chunks int
	// Tables is the number of tables captured.
	Tables int
}

// Checkpoint payload type tags.
const (
	checkpointChunkTag byte = 0x10
	checkpointEndTag   byte = 0x11
	checkpointMetaTag  byte = 0x12
)

// TableBoundaries records one table's routing boundaries at checkpoint
// time.
type TableBoundaries struct {
	// Table is the table name.
	Table string
	// Boundaries are the routing boundaries (len = partitions-1), sorted.
	Boundaries [][]byte
}

// CheckpointMeta is the non-data state captured alongside a checkpoint's
// table snapshots: the partition boundaries each table's routing had at the
// moment of the checkpoint (online repartitioning moves them away from the
// schema's initial values, and a restarted engine must resume from the
// moved ones) and an opaque snapshot of the repartitioning controller's
// histogram state, so the controller does not restart cold.
type CheckpointMeta struct {
	// Tables holds the per-table routing boundaries.
	Tables []TableBoundaries
	// Controller is the opaque controller-state blob (see package
	// repartition), or nil when no controller was attached.
	Controller []byte
}

// EncodeCheckpointChunk serializes a checkpoint chunk.
func EncodeCheckpointChunk(c CheckpointChunk) []byte {
	out := []byte{payloadVersion, checkpointChunkTag}
	out = appendBytes(out, []byte(c.Table))
	out = appendBytes(out, []byte(c.Index))
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(c.Keys)))
	out = append(out, n[:]...)
	for i := range c.Keys {
		out = appendBytes(out, c.Keys[i])
		out = appendBytes(out, c.Values[i])
	}
	return out
}

// EncodeCheckpointEnd serializes a checkpoint end marker.
func EncodeCheckpointEnd(e CheckpointEnd) []byte {
	out := make([]byte, 2+8+4+4)
	out[0] = payloadVersion
	out[1] = checkpointEndTag
	binary.LittleEndian.PutUint64(out[2:], e.BeginLSN)
	binary.LittleEndian.PutUint32(out[10:], uint32(e.Chunks))
	binary.LittleEndian.PutUint32(out[14:], uint32(e.Tables))
	return out
}

// DecodeCheckpointChunk parses a chunk payload.  The boolean result is false
// when the payload is not a chunk (for example an end marker).
func DecodeCheckpointChunk(payload []byte) (CheckpointChunk, bool, error) {
	var c CheckpointChunk
	if len(payload) < 2 {
		return c, false, ErrShort
	}
	if payload[0] != payloadVersion {
		return c, false, fmt.Errorf("%w: %d", ErrVersion, payload[0])
	}
	if payload[1] != checkpointChunkTag {
		return c, false, nil
	}
	rest := payload[2:]
	field, rest, err := readBytes(rest)
	if err != nil {
		return c, false, err
	}
	c.Table = string(field)
	if field, rest, err = readBytes(rest); err != nil {
		return c, false, err
	}
	c.Index = string(field)
	if len(rest) < 4 {
		return c, false, ErrShort
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	c.Keys = make([][]byte, 0, n)
	c.Values = make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		var k, v []byte
		if k, rest, err = readBytes(rest); err != nil {
			return c, false, err
		}
		if v, rest, err = readBytes(rest); err != nil {
			return c, false, err
		}
		c.Keys = append(c.Keys, k)
		c.Values = append(c.Values, v)
	}
	return c, true, nil
}

// EncodeCheckpointMeta serializes a checkpoint meta payload.
func EncodeCheckpointMeta(m CheckpointMeta) []byte {
	out := []byte{payloadVersion, checkpointMetaTag}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(m.Tables)))
	out = append(out, n[:]...)
	for _, t := range m.Tables {
		out = appendBytes(out, []byte(t.Table))
		binary.LittleEndian.PutUint32(n[:], uint32(len(t.Boundaries)))
		out = append(out, n[:]...)
		for _, b := range t.Boundaries {
			out = appendBytes(out, b)
		}
	}
	out = appendBytes(out, m.Controller)
	return out
}

// DecodeCheckpointMeta parses a meta payload.  The boolean result is false
// when the payload is not a meta record.
func DecodeCheckpointMeta(payload []byte) (CheckpointMeta, bool, error) {
	var m CheckpointMeta
	if len(payload) < 2 {
		return m, false, ErrShort
	}
	if payload[0] != payloadVersion {
		return m, false, fmt.Errorf("%w: %d", ErrVersion, payload[0])
	}
	if payload[1] != checkpointMetaTag {
		return m, false, nil
	}
	rest := payload[2:]
	if len(rest) < 4 {
		return m, false, ErrShort
	}
	nt := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	var field []byte
	var err error
	for i := uint32(0); i < nt; i++ {
		var t TableBoundaries
		if field, rest, err = readBytes(rest); err != nil {
			return m, false, err
		}
		t.Table = string(field)
		if len(rest) < 4 {
			return m, false, ErrShort
		}
		nb := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		for j := uint32(0); j < nb; j++ {
			var b []byte
			if b, rest, err = readBytes(rest); err != nil {
				return m, false, err
			}
			t.Boundaries = append(t.Boundaries, b)
		}
		m.Tables = append(m.Tables, t)
	}
	if m.Controller, _, err = readBytes(rest); err != nil {
		return m, false, err
	}
	return m, true, nil
}

// DecodeCheckpointEnd parses an end-marker payload.  The boolean result is
// false when the payload is not an end marker.
func DecodeCheckpointEnd(payload []byte) (CheckpointEnd, bool, error) {
	var e CheckpointEnd
	if len(payload) < 2 {
		return e, false, ErrShort
	}
	if payload[0] != payloadVersion {
		return e, false, fmt.Errorf("%w: %d", ErrVersion, payload[0])
	}
	if payload[1] != checkpointEndTag {
		return e, false, nil
	}
	if len(payload) < 2+8+4+4 {
		return e, false, ErrShort
	}
	e.BeginLSN = binary.LittleEndian.Uint64(payload[2:])
	e.Chunks = int(binary.LittleEndian.Uint32(payload[10:]))
	e.Tables = int(binary.LittleEndian.Uint32(payload[14:]))
	return e, true, nil
}
