package logrec

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestModificationRoundTrip(t *testing.T) {
	cases := []Modification{
		{Table: "accounts", Key: []byte("k1"), Before: nil, After: []byte("v1")},
		{Table: "accounts", Key: []byte("k1"), Before: []byte("v1"), After: []byte("v2")},
		{Table: "t", Key: []byte{0}, Before: []byte("old"), After: nil},
		{Table: "", Key: nil, Before: nil, After: nil},
		{Table: "subscriber", Key: bytes.Repeat([]byte{0xff}, 64), Before: bytes.Repeat([]byte{1}, 1000), After: bytes.Repeat([]byte{2}, 1000)},
	}
	for i, m := range cases {
		payload := EncodeModification(m)
		got, err := DecodeModification(payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Table != m.Table ||
			!bytes.Equal(got.Key, m.Key) ||
			!bytes.Equal(got.Before, m.Before) ||
			!bytes.Equal(got.After, m.After) {
			t.Fatalf("case %d: round trip mismatch: %+v != %+v", i, got, m)
		}
	}
}

func TestModificationRoundTripProperty(t *testing.T) {
	f := func(table string, key, before, after []byte) bool {
		m := Modification{Table: table, Key: key, Before: before, After: after}
		got, err := DecodeModification(EncodeModification(m))
		if err != nil {
			return false
		}
		// Encoding normalizes empty slices to nil.
		eq := func(a, b []byte) bool { return bytes.Equal(a, b) }
		return got.Table == table && eq(got.Key, key) && eq(got.Before, before) && eq(got.After, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeModificationErrors(t *testing.T) {
	if _, err := DecodeModification(nil); err == nil {
		t.Fatal("decoding an empty payload should fail")
	}
	if _, err := DecodeModification([]byte{99}); err == nil {
		t.Fatal("decoding an unknown version should fail")
	}
	// Truncate a valid payload at every length and make sure decoding never
	// panics and fails cleanly for prefixes that drop data.
	full := EncodeModification(Modification{Table: "t", Key: []byte("key"), Before: []byte("b"), After: []byte("a")})
	for i := 1; i < len(full); i++ {
		_, err := DecodeModification(full[:i])
		if err == nil && i < len(full) {
			// Some prefixes decode successfully only when all four fields are
			// complete; that can only happen at the full length.
			t.Fatalf("truncated payload of length %d decoded successfully", i)
		}
	}
}

func TestIsModificationPayload(t *testing.T) {
	m := EncodeModification(Modification{Table: "t", Key: []byte("k")})
	if !IsModificationPayload(m) {
		t.Fatal("encoded modification not recognized")
	}
	if IsModificationPayload([]byte("just-a-key")) {
		t.Fatal("bare key payload should not be recognized as a modification")
	}
	if IsModificationPayload(nil) {
		t.Fatal("nil payload should not be recognized")
	}
}

func TestCheckpointChunkRoundTrip(t *testing.T) {
	c := CheckpointChunk{
		Table:  "accounts",
		Keys:   [][]byte{[]byte("a"), []byte("b"), nil},
		Values: [][]byte{[]byte("1"), nil, []byte("3")},
	}
	payload := EncodeCheckpointChunk(c)
	got, ok, err := DecodeCheckpointChunk(payload)
	if err != nil || !ok {
		t.Fatalf("decode chunk: ok=%v err=%v", ok, err)
	}
	if got.Table != c.Table || len(got.Keys) != 3 || len(got.Values) != 3 {
		t.Fatalf("chunk mismatch: %+v", got)
	}
	for i := range c.Keys {
		if !bytes.Equal(got.Keys[i], c.Keys[i]) || !bytes.Equal(got.Values[i], c.Values[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestCheckpointEndRoundTrip(t *testing.T) {
	e := CheckpointEnd{BeginLSN: 123456, Chunks: 7, Tables: 3}
	payload := EncodeCheckpointEnd(e)
	got, ok, err := DecodeCheckpointEnd(payload)
	if err != nil || !ok {
		t.Fatalf("decode end: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("end mismatch: %+v != %+v", got, e)
	}
}

func TestCheckpointTagDiscrimination(t *testing.T) {
	chunk := EncodeCheckpointChunk(CheckpointChunk{Table: "t"})
	end := EncodeCheckpointEnd(CheckpointEnd{BeginLSN: 1})

	if _, ok, _ := DecodeCheckpointEnd(chunk); ok {
		t.Fatal("chunk payload decoded as end marker")
	}
	if _, ok, _ := DecodeCheckpointChunk(end); ok {
		t.Fatal("end payload decoded as chunk")
	}
	// A modification payload is neither.
	mod := EncodeModification(Modification{Table: "t", Key: []byte("k")})
	if _, ok, _ := DecodeCheckpointChunk(mod); ok {
		t.Fatal("modification decoded as chunk")
	}
	if _, ok, _ := DecodeCheckpointEnd(mod); ok {
		t.Fatal("modification decoded as end")
	}
}

func TestCheckpointChunkRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(20)
		c := CheckpointChunk{Table: "tbl"}
		for i := 0; i < n; i++ {
			k := make([]byte, rng.Intn(32))
			v := make([]byte, rng.Intn(128))
			rng.Read(k)
			rng.Read(v)
			c.Keys = append(c.Keys, k)
			c.Values = append(c.Values, v)
		}
		got, ok, err := DecodeCheckpointChunk(EncodeCheckpointChunk(c))
		if err != nil || !ok {
			t.Fatalf("iter %d: decode failed: ok=%v err=%v", iter, ok, err)
		}
		if len(got.Keys) != n {
			t.Fatalf("iter %d: %d entries, want %d", iter, len(got.Keys), n)
		}
		for i := 0; i < n; i++ {
			if !bytes.Equal(got.Keys[i], c.Keys[i]) || !bytes.Equal(got.Values[i], c.Values[i]) {
				t.Fatalf("iter %d entry %d mismatch", iter, i)
			}
		}
	}
}

func TestDecodeCheckpointErrors(t *testing.T) {
	if _, _, err := DecodeCheckpointChunk(nil); err == nil {
		t.Fatal("empty chunk payload should fail")
	}
	if _, _, err := DecodeCheckpointEnd([]byte{payloadVersion, checkpointEndTag, 1}); err == nil {
		t.Fatal("short end payload should fail")
	}
	if _, _, err := DecodeCheckpointChunk([]byte{42, checkpointChunkTag}); err == nil {
		t.Fatal("unknown version should fail")
	}
}

func TestCheckpointMetaRoundTrip(t *testing.T) {
	m := CheckpointMeta{
		Tables: []TableBoundaries{
			{Table: "acct", Boundaries: [][]byte{{0x01, 0x02}, {0x03}, {0x04, 0x05, 0x06}}},
			{Table: "meta", Boundaries: nil},
			{Table: "orders", Boundaries: [][]byte{{0xff}}},
		},
		Controller: []byte("opaque-controller-state"),
	}
	got, ok, err := DecodeCheckpointMeta(EncodeCheckpointMeta(m))
	if err != nil || !ok {
		t.Fatalf("decode failed: ok=%v err=%v", ok, err)
	}
	if len(got.Tables) != len(m.Tables) {
		t.Fatalf("%d tables, want %d", len(got.Tables), len(m.Tables))
	}
	for i, tb := range m.Tables {
		if got.Tables[i].Table != tb.Table || len(got.Tables[i].Boundaries) != len(tb.Boundaries) {
			t.Fatalf("table %d mismatch: %+v vs %+v", i, got.Tables[i], tb)
		}
		for j := range tb.Boundaries {
			if !bytes.Equal(got.Tables[i].Boundaries[j], tb.Boundaries[j]) {
				t.Fatalf("table %d boundary %d mismatch", i, j)
			}
		}
	}
	if !bytes.Equal(got.Controller, m.Controller) {
		t.Fatalf("controller blob %q, want %q", got.Controller, m.Controller)
	}

	// Meta payloads must not be mistaken for chunks or end markers, and
	// vice versa.
	if _, ok, _ := DecodeCheckpointChunk(EncodeCheckpointMeta(m)); ok {
		t.Fatal("meta payload decoded as chunk")
	}
	if _, ok, _ := DecodeCheckpointMeta(EncodeCheckpointEnd(CheckpointEnd{})); ok {
		t.Fatal("end payload decoded as meta")
	}
	if _, _, err := DecodeCheckpointMeta([]byte{payloadVersion, checkpointMetaTag, 1}); err == nil {
		t.Fatal("short meta payload should fail")
	}
}
