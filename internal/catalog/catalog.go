// Package catalog holds table metadata and the storage objects behind each
// table: the primary MRBTree index, the heap file with the non-clustered
// records, and any secondary indexes.
//
// The catalog is deliberately design-agnostic: the same loaded database can
// be served by the conventional, logically-partitioned or PLP engines, which
// differ only in how they route work and whether accesses latch (the storage
// objects expose both behaviours).
package catalog

import (
	"errors"
	"fmt"
	"sync"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/heap"
	"plp/internal/mrbtree"
	"plp/internal/wal"
)

// Errors returned by the catalog.
var (
	ErrTableExists  = errors.New("catalog: table already exists")
	ErrNoSuchTable  = errors.New("catalog: no such table")
	ErrNoSuchIndex  = errors.New("catalog: no such secondary index")
	ErrNilResources = errors.New("catalog: missing storage resources")
)

// SecondaryDef describes a secondary index.
type SecondaryDef struct {
	// Name of the index, unique within the table.
	Name string
	// PartitionAligned reports whether the index key embeds the table's
	// partitioning columns, in which case the index can itself be
	// partitioned and managed by the partition-owning threads.
	// Non-partition-aligned indexes are accessed as in a conventional
	// system (latched, single-rooted) and their leaf entries carry the
	// partitioning fields (Section 3.1 / Appendix E).
	PartitionAligned bool
}

// TableDef describes a table to be created.
type TableDef struct {
	// Name of the table.
	Name string
	// Boundaries are the partition boundaries of the primary index.  An
	// empty slice creates a single partition (conventional behaviour).
	Boundaries [][]byte
	// Clustered stores records directly in the primary index leaves; no
	// heap file is allocated.
	Clustered bool
	// Secondaries lists the table's secondary indexes.
	Secondaries []SecondaryDef
}

// Resources are the storage-manager services a table is built on.
type Resources struct {
	BufferPool *bufferpool.Pool
	Log        wal.Log
	CSStats    *cs.Stats
	// IndexLatched selects the latching protocol of the primary index and
	// of partition-aligned secondary indexes.
	IndexLatched bool
	// HeapMode selects heap-page latching.
	HeapMode heap.AccessMode
	// MaxSlotsPerNode artificially limits index fan-out (tests only).
	MaxSlotsPerNode int
}

// Table is a created table together with its storage objects.
type Table struct {
	ID  uint32
	Def TableDef

	// Primary is the primary index.  Non-clustered tables store RIDs in it;
	// clustered tables store the records themselves.
	Primary *mrbtree.Tree
	// Heap holds the records of non-clustered tables (nil when clustered).
	Heap *heap.File
	// Secondaries maps index name to the secondary index structure.
	Secondaries map[string]*mrbtree.Tree
}

// Secondary returns the named secondary index.
func (t *Table) Secondary(name string) (*mrbtree.Tree, error) {
	idx, ok := t.Secondaries[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchIndex, t.Def.Name, name)
	}
	return idx, nil
}

// Catalog is the table registry.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	nextID uint32
	cst    *cs.Stats
}

// New returns an empty catalog.
func New(cstats *cs.Stats) *Catalog {
	return &Catalog{tables: make(map[string]*Table), cst: cstats}
}

// CreateTable creates the storage objects for def and registers the table.
func (c *Catalog) CreateTable(def TableDef, res Resources) (*Table, error) {
	if res.BufferPool == nil {
		return nil, ErrNilResources
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cst.Record(cs.Metadata, false)
	if _, ok := c.tables[def.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, def.Name)
	}
	c.nextID++
	id := c.nextID * 16 // leave space for per-table index ids

	cfg := mrbtree.Config{
		Latched:         res.IndexLatched,
		MaxSlotsPerNode: res.MaxSlotsPerNode,
		CSStats:         res.CSStats,
		Log:             res.Log,
	}
	primary, err := mrbtree.Create(res.BufferPool, id, cfg, def.Boundaries...)
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:          id,
		Def:         def,
		Primary:     primary,
		Secondaries: make(map[string]*mrbtree.Tree),
	}
	if !def.Clustered {
		tbl.Heap = heap.New(id+1, res.BufferPool, res.HeapMode, res.CSStats)
	}
	for i, sec := range def.Secondaries {
		secCfg := cfg
		var bounds [][]byte
		if sec.PartitionAligned {
			bounds = def.Boundaries
		} else {
			// Non-partition-aligned indexes stay single-rooted and latched
			// regardless of the engine design.
			secCfg.Latched = true
		}
		idx, err := mrbtree.Create(res.BufferPool, id+2+uint32(i), secCfg, bounds...)
		if err != nil {
			return nil, err
		}
		tbl.Secondaries[sec.Name] = idx
	}
	c.tables[def.Name] = tbl
	return tbl, nil
}

// ResetStorage replaces every table's storage objects with freshly created,
// empty ones — same object IDs, same partition boundaries as the live trees
// carry right now (rebalancing may have moved them off the definition), so
// routing tables layered above stay valid without change.  The *Table
// pointers survive; only the structures beneath them are swapped, which
// keeps references held by engines and sessions working.  The old pages
// remain allocated in the buffer pool: one superseded copy per reset, the
// accepted cost of rebuilding in place (snapshot re-seed).  The caller must
// exclude all concurrent access for the duration.
func (c *Catalog) ResetStorage(res Resources) error {
	if res.BufferPool == nil {
		return ErrNilResources
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := mrbtree.Config{
		Latched:         res.IndexLatched,
		MaxSlotsPerNode: res.MaxSlotsPerNode,
		CSStats:         res.CSStats,
		Log:             res.Log,
	}
	for _, tbl := range c.tables {
		primary, err := mrbtree.Create(res.BufferPool, tbl.ID, cfg, tbl.Primary.Boundaries()...)
		if err != nil {
			return fmt.Errorf("catalog: resetting %s primary: %w", tbl.Def.Name, err)
		}
		heapFile := tbl.Heap
		if !tbl.Def.Clustered {
			heapFile = heap.New(tbl.ID+1, res.BufferPool, res.HeapMode, res.CSStats)
		}
		secs := make(map[string]*mrbtree.Tree, len(tbl.Secondaries))
		for i, sec := range tbl.Def.Secondaries {
			secCfg := cfg
			old, ok := tbl.Secondaries[sec.Name]
			if !ok {
				return fmt.Errorf("%w: %s.%s", ErrNoSuchIndex, tbl.Def.Name, sec.Name)
			}
			if !sec.PartitionAligned {
				secCfg.Latched = true
			}
			idx, err := mrbtree.Create(res.BufferPool, tbl.ID+2+uint32(i), secCfg, old.Boundaries()...)
			if err != nil {
				return fmt.Errorf("catalog: resetting %s.%s: %w", tbl.Def.Name, sec.Name, err)
			}
			secs[sec.Name] = idx
		}
		tbl.Primary, tbl.Heap, tbl.Secondaries = primary, heapFile, secs
	}
	return nil
}

// Table returns the named table.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// Tables returns every registered table.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// NumTables returns the number of registered tables.
func (c *Catalog) NumTables() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}
