package catalog

import (
	"errors"
	"testing"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/heap"
	"plp/internal/keyenc"
	"plp/internal/latch"
	"plp/internal/wal"
)

func testResources() Resources {
	cstats := &cs.Stats{}
	return Resources{
		BufferPool:   bufferpool.NewMemory(bufferpool.Config{LatchStats: &latch.Stats{}, CSStats: cstats}),
		Log:          wal.NewConsolidated(cstats),
		CSStats:      cstats,
		IndexLatched: true,
		HeapMode:     heap.Latched,
	}
}

func TestCreateTableAndLookup(t *testing.T) {
	c := New(&cs.Stats{})
	res := testResources()
	def := TableDef{
		Name:       "accounts",
		Boundaries: [][]byte{keyenc.Uint64Key(500)},
		Secondaries: []SecondaryDef{
			{Name: "by_name", PartitionAligned: false},
			{Name: "by_region", PartitionAligned: true},
		},
	}
	tbl, err := c.CreateTable(def, res)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Primary == nil || tbl.Heap == nil {
		t.Fatal("storage objects missing")
	}
	if tbl.Primary.NumPartitions() != 2 {
		t.Fatalf("primary partitions=%d", tbl.Primary.NumPartitions())
	}
	aligned, err := tbl.Secondary("by_region")
	if err != nil {
		t.Fatal(err)
	}
	if aligned.NumPartitions() != 2 {
		t.Fatal("partition-aligned secondary should follow the table's boundaries")
	}
	unaligned, err := tbl.Secondary("by_name")
	if err != nil {
		t.Fatal(err)
	}
	if unaligned.NumPartitions() != 1 {
		t.Fatal("non-aligned secondary should stay single-rooted")
	}
	if _, err := tbl.Secondary("missing"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("missing secondary: %v", err)
	}

	got, err := c.Table("accounts")
	if err != nil || got != tbl {
		t.Fatalf("lookup failed: %v", err)
	}
	if _, err := c.Table("nope"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatal("unknown table lookup should fail")
	}
	if c.NumTables() != 1 || len(c.Tables()) != 1 {
		t.Fatal("table registry wrong")
	}
}

func TestDuplicateTableRejected(t *testing.T) {
	c := New(&cs.Stats{})
	res := testResources()
	if _, err := c.CreateTable(TableDef{Name: "t"}, res); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable(TableDef{Name: "t"}, res); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate accepted: %v", err)
	}
}

func TestClusteredTableHasNoHeap(t *testing.T) {
	c := New(&cs.Stats{})
	tbl, err := c.CreateTable(TableDef{Name: "clustered", Clustered: true}, testResources())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Heap != nil {
		t.Fatal("clustered table should not allocate a heap file")
	}
}

func TestMissingResourcesRejected(t *testing.T) {
	c := New(&cs.Stats{})
	if _, err := c.CreateTable(TableDef{Name: "x"}, Resources{}); !errors.Is(err, ErrNilResources) {
		t.Fatalf("expected ErrNilResources, got %v", err)
	}
}

func TestTableIDsAreDistinct(t *testing.T) {
	c := New(&cs.Stats{})
	res := testResources()
	a, _ := c.CreateTable(TableDef{Name: "a"}, res)
	b, _ := c.CreateTable(TableDef{Name: "b"}, res)
	if a.ID == b.ID {
		t.Fatal("table IDs collide")
	}
}
