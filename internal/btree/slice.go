// Slice and Meld: the sub-tree split and merge operations that the MRBTree
// uses for repartitioning (Appendix A.3 of the paper).
//
// Both operations assume that the affected partitions are quiesced: the
// partition manager stops dispatching work to the owning threads before
// repartitioning, so no latching is needed here.  The operations return
// statistics (entries moved, pages read, pointer updates) that feed the
// repartitioning cost analysis of Table 1.
package btree

import (
	"bytes"
	"fmt"

	"plp/internal/page"
)

// SliceStats reports the cost of a Slice operation.
type SliceStats struct {
	EntriesMoved   int // index entries copied to newly created pages
	PagesAllocated int // new index pages created
	PagesRead      int // existing pages visited
	PointerUpdates int // sibling / routing pointer changes
}

// MeldStats reports the cost of a Meld operation.
type MeldStats struct {
	EntriesMoved   int
	PagesAllocated int
	PagesRead      int
	PointerUpdates int
	PagesFreed     int
}

// SliceAt splits the tree at atKey: every entry with key >= atKey moves to a
// newly created tree which is returned.  Only the entries on the boundary
// path are physically copied ("the pages to the right of the slot's page do
// not need to be moved because the entries on the new pages will have
// pointers to them"), which is what makes MRBTree repartitioning cheap.
//
// The caller must guarantee that no other thread is accessing the tree.
func (t *Tree) SliceAt(atKey []byte) (*Tree, SliceStats, error) {
	var st SliceStats
	if len(atKey) == 0 {
		return nil, st, fmt.Errorf("btree: slice key must not be empty")
	}

	// Walk from the root to the boundary leaf, recording the path.
	type pathNode struct {
		pid  page.ID
		slot int // slot we descended through (interior) — unused for the leaf
	}
	var path []pathNode
	pid := t.root
	for {
		f, err := t.bp.Fix(pid)
		if err != nil {
			return nil, st, err
		}
		st.PagesRead++
		p := f.Page()
		if isLeaf(p) {
			path = append(path, pathNode{pid: pid})
			t.bp.Unfix(f, false)
			break
		}
		idx, err := interiorSearch(p, atKey)
		if err != nil {
			t.bp.Unfix(f, false)
			return nil, st, err
		}
		_, child, err := interiorEntryAt(p, idx)
		if err != nil {
			t.bp.Unfix(f, false)
			return nil, st, err
		}
		path = append(path, pathNode{pid: pid, slot: idx})
		t.bp.Unfix(f, false)
		pid = child
	}

	// Process the path bottom-up, creating one new page per level.
	var lowerNew page.ID // the new page created at the level below
	for i := len(path) - 1; i >= 0; i-- {
		node := path[i]
		f, err := t.bp.Fix(node.pid)
		if err != nil {
			return nil, st, err
		}
		p := f.Page()

		if isLeaf(p) {
			// Boundary leaf: move entries >= atKey to a new leaf.
			pos, _, serr := leafSearch(p, atKey)
			if serr != nil {
				t.bp.Unfix(f, false)
				return nil, st, serr
			}
			nl, nerr := t.bp.NewPage(page.KindIndexLeaf)
			if nerr != nil {
				t.bp.Unfix(f, false)
				return nil, st, nerr
			}
			st.PagesAllocated++
			newLeaf := nl.Page()
			newLeaf.SetOwner(p.Owner())
			setNodeLevel(newLeaf, 0)
			for j := pos; j < p.NumSlots(); j++ {
				buf, gerr := p.GetAt(j)
				if gerr != nil {
					t.bp.Unfix(nl, false)
					t.bp.Unfix(f, false)
					return nil, st, gerr
				}
				if ierr := newLeaf.InsertAt(newLeaf.NumSlots(), buf); ierr != nil {
					t.bp.Unfix(nl, false)
					t.bp.Unfix(f, false)
					return nil, st, ierr
				}
				st.EntriesMoved++
			}
			if err := p.Truncate(pos); err != nil {
				t.bp.Unfix(nl, false)
				t.bp.Unfix(f, false)
				return nil, st, err
			}
			// Split the leaf sibling chain at the boundary.
			oldNext := p.Next()
			newLeaf.SetNext(oldNext)
			newLeaf.SetPrev(page.InvalidID)
			p.SetNext(page.InvalidID)
			st.PointerUpdates += 2
			if oldNext != page.InvalidID {
				if nf, ferr := t.bp.Fix(oldNext); ferr == nil {
					nf.Page().SetPrev(newLeaf.ID())
					t.bp.Unfix(nf, true)
					st.PointerUpdates++
					st.PagesRead++
				}
			}
			lowerNew = newLeaf.ID()
			t.bp.Unfix(nl, true)
			t.bp.Unfix(f, true)
			continue
		}

		// Interior node on the boundary path: entries to the right of the
		// descent slot move to a new interior node whose first entry points
		// to the new page created at the level below.
		ni, nerr := t.bp.NewPage(page.KindIndexInterior)
		if nerr != nil {
			t.bp.Unfix(f, false)
			return nil, st, nerr
		}
		st.PagesAllocated++
		newNode := ni.Page()
		newNode.SetOwner(p.Owner())
		setNodeLevel(newNode, nodeLevel(p))
		if err := newNode.InsertAt(0, encodeInteriorEntry(nil, lowerNew)); err != nil {
			t.bp.Unfix(ni, false)
			t.bp.Unfix(f, false)
			return nil, st, err
		}
		for j := node.slot + 1; j < p.NumSlots(); j++ {
			buf, gerr := p.GetAt(j)
			if gerr != nil {
				t.bp.Unfix(ni, false)
				t.bp.Unfix(f, false)
				return nil, st, gerr
			}
			if ierr := newNode.InsertAt(newNode.NumSlots(), buf); ierr != nil {
				t.bp.Unfix(ni, false)
				t.bp.Unfix(f, false)
				return nil, st, ierr
			}
			st.EntriesMoved++
		}
		if err := p.Truncate(node.slot + 1); err != nil {
			t.bp.Unfix(ni, false)
			t.bp.Unfix(f, false)
			return nil, st, err
		}
		lowerNew = newNode.ID()
		t.bp.Unfix(ni, true)
		t.bp.Unfix(f, true)
	}

	st.PointerUpdates++ // the routing-table entry the caller will add
	newTree := Open(t.bp, t.id, lowerNew, t.cfg)
	return newTree, st, nil
}

// Meld merges right into left.  rightStart is the first key of right's key
// range (the partition boundary being removed).  It returns the tree that
// now holds the union of the two key ranges; its root page is one of the two
// existing roots whenever the cheap in-place merge applies, or a freshly
// allocated root when the roots cannot absorb each other without splitting.
//
// The caller must guarantee that no other thread is accessing either tree.
func Meld(left, right *Tree, rightStart []byte) (*Tree, MeldStats, error) {
	var st MeldStats
	if left.bp != right.bp {
		return nil, st, fmt.Errorf("btree: meld across buffer pools")
	}
	hl, err := left.Height()
	if err != nil {
		return nil, st, err
	}
	hr, err := right.Height()
	if err != nil {
		return nil, st, err
	}
	st.PagesRead += 2

	// Re-link the leaf chain across the boundary.
	if err := linkLeafChains(left, right, &st); err != nil {
		return nil, st, err
	}

	switch {
	case hl == hr:
		return meldEqualHeight(left, right, rightStart, &st)
	case hl > hr:
		return meldIntoTaller(left, right, rightStart, hl, hr, &st)
	default:
		return meldIntoTallerRight(left, right, rightStart, hl, hr, &st)
	}
}

// linkLeafChains connects the rightmost leaf of left with the leftmost leaf
// of right.
func linkLeafChains(left, right *Tree, st *MeldStats) error {
	lr, err := rightmostLeafPID(left)
	if err != nil {
		return err
	}
	rl, err := leftmostLeafPID(right)
	if err != nil {
		return err
	}
	lf, err := left.bp.Fix(lr)
	if err != nil {
		return err
	}
	lf.Page().SetNext(rl)
	left.bp.Unfix(lf, true)
	rf, err := right.bp.Fix(rl)
	if err != nil {
		return err
	}
	rf.Page().SetPrev(lr)
	right.bp.Unfix(rf, true)
	st.PointerUpdates += 2
	st.PagesRead += 2
	return nil
}

// rightmostLeafPID returns the page ID of the rightmost leaf of the tree.
func rightmostLeafPID(t *Tree) (page.ID, error) {
	pid := t.root
	for {
		f, err := t.bp.Fix(pid)
		if err != nil {
			return page.InvalidID, err
		}
		p := f.Page()
		if isLeaf(p) {
			t.bp.Unfix(f, false)
			return pid, nil
		}
		if p.NumSlots() == 0 {
			t.bp.Unfix(f, false)
			return page.InvalidID, fmt.Errorf("btree: empty interior node %v", pid)
		}
		_, child, err := interiorEntryAt(p, p.NumSlots()-1)
		t.bp.Unfix(f, false)
		if err != nil {
			return page.InvalidID, err
		}
		pid = child
	}
}

// leftmostLeafPID returns the page ID of the leftmost leaf of the tree.
func leftmostLeafPID(t *Tree) (page.ID, error) {
	pid := t.root
	for {
		f, err := t.bp.Fix(pid)
		if err != nil {
			return page.InvalidID, err
		}
		p := f.Page()
		if isLeaf(p) {
			t.bp.Unfix(f, false)
			return pid, nil
		}
		if p.NumSlots() == 0 {
			t.bp.Unfix(f, false)
			return page.InvalidID, fmt.Errorf("btree: empty interior node %v", pid)
		}
		_, child, err := interiorEntryAt(p, 0)
		t.bp.Unfix(f, false)
		if err != nil {
			return page.InvalidID, err
		}
		pid = child
	}
}

// meldEqualHeight merges two trees of the same height by appending the right
// root's entries to the left root.  If they do not fit, a new root is
// allocated above both.
func meldEqualHeight(left, right *Tree, rightStart []byte, st *MeldStats) (*Tree, MeldStats, error) {
	lf, err := left.bp.Fix(left.root)
	if err != nil {
		return nil, *st, err
	}
	rf, err := right.bp.Fix(right.root)
	if err != nil {
		left.bp.Unfix(lf, false)
		return nil, *st, err
	}
	lp, rp := lf.Page(), rf.Page()
	st.PagesRead += 2

	// Compute the bytes needed to absorb rp into lp.
	need := rp.UsedBytes() + rp.NumSlots()*4
	fits := lp.FreeSpace() >= need
	if left.cfg.MaxSlotsPerNode > 0 && lp.NumSlots()+rp.NumSlots() > left.cfg.MaxSlotsPerNode {
		fits = false
	}
	if fits {
		for i := 0; i < rp.NumSlots(); i++ {
			buf, gerr := rp.GetAt(i)
			if gerr != nil {
				left.bp.Unfix(lf, false)
				right.bp.Unfix(rf, false)
				return nil, *st, gerrWrap(gerr)
			}
			entry := buf
			if !isLeaf(rp) && i == 0 {
				// The right root's first separator carries the empty key
				// (its lower bound); it must become the partition boundary.
				_, child, derr := decodeInteriorEntry(buf)
				if derr != nil {
					left.bp.Unfix(lf, false)
					right.bp.Unfix(rf, false)
					return nil, *st, derr
				}
				entry = encodeInteriorEntry(rightStart, child)
			}
			if ierr := lp.InsertAt(lp.NumSlots(), entry); ierr != nil {
				left.bp.Unfix(lf, false)
				right.bp.Unfix(rf, false)
				return nil, *st, ierr
			}
			st.EntriesMoved++
		}
		rightRoot := rp.ID()
		if isLeaf(rp) {
			// Both roots are leaves and the right one is about to be freed:
			// splice it out of the leaf chain (linkLeafChains pointed lp at
			// it moments ago), or scans would walk into a freed page.
			rpNext := rp.Next()
			lp.SetNext(rpNext)
			st.PointerUpdates++
			if rpNext != page.InvalidID {
				if nf, ferr := left.bp.Fix(rpNext); ferr == nil {
					nf.Page().SetPrev(lp.ID())
					left.bp.Unfix(nf, true)
					st.PointerUpdates++
					st.PagesRead++
				}
			}
		}
		left.bp.Unfix(lf, true)
		right.bp.Unfix(rf, false)
		if err := left.bp.FreePage(rightRoot); err == nil {
			st.PagesFreed++
		}
		st.PointerUpdates++ // routing-table update by the caller
		return Open(left.bp, left.id, left.root, left.cfg), *st, nil
	}
	left.bp.Unfix(lf, false)
	right.bp.Unfix(rf, false)
	return newRootAbove(left, right, rightStart, st)
}

// gerrWrap exists to keep error wrapping uniform in meldEqualHeight.
func gerrWrap(err error) error { return err }

// newRootAbove allocates a new interior root pointing at the two existing
// roots.  It is the fallback used when the cheap in-place meld would
// overflow a page.
func newRootAbove(left, right *Tree, rightStart []byte, st *MeldStats) (*Tree, MeldStats, error) {
	hl, err := left.Height()
	if err != nil {
		return nil, *st, err
	}
	hr, err := right.Height()
	if err != nil {
		return nil, *st, err
	}
	// Pad the shorter tree with a chain of single-entry interior nodes so
	// both children of the new root sit at the same level.
	leftRoot, rightRoot := left.root, right.root
	for hl < hr {
		pid, perr := wrapInInterior(left, leftRoot, hl)
		if perr != nil {
			return nil, *st, perr
		}
		st.PagesAllocated++
		leftRoot = pid
		hl++
	}
	for hr < hl {
		pid, perr := wrapInInterior(right, rightRoot, hr)
		if perr != nil {
			return nil, *st, perr
		}
		st.PagesAllocated++
		rightRoot = pid
		hr++
	}
	nf, err := left.bp.NewPage(page.KindIndexInterior)
	if err != nil {
		return nil, *st, err
	}
	st.PagesAllocated++
	np := nf.Page()
	np.SetOwner(uint64(left.id))
	setNodeLevel(np, hl)
	if err := np.InsertAt(0, encodeInteriorEntry(nil, leftRoot)); err != nil {
		left.bp.Unfix(nf, false)
		return nil, *st, err
	}
	if err := np.InsertAt(1, encodeInteriorEntry(rightStart, rightRoot)); err != nil {
		left.bp.Unfix(nf, false)
		return nil, *st, err
	}
	rootID := np.ID()
	left.bp.Unfix(nf, true)
	st.PointerUpdates++
	return Open(left.bp, left.id, rootID, left.cfg), *st, nil
}

// wrapInInterior creates an interior node one level above `child` whose only
// entry points at child.
func wrapInInterior(t *Tree, child page.ID, childHeight int) (page.ID, error) {
	nf, err := t.bp.NewPage(page.KindIndexInterior)
	if err != nil {
		return page.InvalidID, err
	}
	np := nf.Page()
	np.SetOwner(uint64(t.id))
	setNodeLevel(np, childHeight) // child height == child level + 1 == this node's level
	if err := np.InsertAt(0, encodeInteriorEntry(nil, child)); err != nil {
		t.bp.Unfix(nf, false)
		return page.InvalidID, err
	}
	pid := np.ID()
	t.bp.Unfix(nf, true)
	return pid, nil
}

// meldIntoTaller merges the shorter right tree into the taller left tree by
// inserting a pointer to right's root into the rightmost node of left at the
// appropriate level.
func meldIntoTaller(left, right *Tree, rightStart []byte, hl, hr int, st *MeldStats) (*Tree, MeldStats, error) {
	// Descend left's rightmost path to the node at level hr (0-based level
	// of the node that should point at right's root, which sits at level
	// hr-1).
	pid := left.root
	for {
		f, err := left.bp.Fix(pid)
		if err != nil {
			return nil, *st, err
		}
		p := f.Page()
		st.PagesRead++
		if nodeLevel(p) == hr {
			entry := encodeInteriorEntry(rightStart, right.root)
			if nodeFull(p, len(entry), left.cfg.MaxSlotsPerNode) {
				left.bp.Unfix(f, false)
				return newRootAbove(left, right, rightStart, st)
			}
			err := p.InsertAt(p.NumSlots(), entry)
			left.bp.Unfix(f, err == nil)
			if err != nil {
				return nil, *st, err
			}
			st.EntriesMoved++
			st.PointerUpdates++
			return Open(left.bp, left.id, left.root, left.cfg), *st, nil
		}
		if p.NumSlots() == 0 {
			left.bp.Unfix(f, false)
			return nil, *st, fmt.Errorf("btree: empty interior node %v during meld", pid)
		}
		_, child, err := interiorEntryAt(p, p.NumSlots()-1)
		left.bp.Unfix(f, false)
		if err != nil {
			return nil, *st, err
		}
		pid = child
	}
}

// meldIntoTallerRight merges the shorter left tree into the taller right
// tree by inserting a pointer to left's root at the leftmost node of right
// at the appropriate level.  The resulting tree keeps right's root.
func meldIntoTallerRight(left, right *Tree, rightStart []byte, hl, hr int, st *MeldStats) (*Tree, MeldStats, error) {
	pid := right.root
	for {
		f, err := right.bp.Fix(pid)
		if err != nil {
			return nil, *st, err
		}
		p := f.Page()
		st.PagesRead++
		if nodeLevel(p) == hl {
			entry := encodeInteriorEntry(nil, left.root)
			if nodeFull(p, len(entry)+len(rightStart), right.cfg.MaxSlotsPerNode) {
				right.bp.Unfix(f, false)
				return newRootAbove(left, right, rightStart, st)
			}
			// The node's current first entry carries the empty key (it was
			// the leftmost node of the right tree); it must now carry the
			// old partition boundary so the new leftmost entry can route
			// keys below it to the left tree.
			if p.NumSlots() > 0 {
				k, child, derr := interiorEntryAt(p, 0)
				if derr != nil {
					right.bp.Unfix(f, false)
					return nil, *st, derr
				}
				if len(k) == 0 {
					if err := p.SetAt(0, encodeInteriorEntry(rightStart, child)); err != nil {
						right.bp.Unfix(f, false)
						return nil, *st, err
					}
					st.PointerUpdates++
				}
			}
			err := p.InsertAt(0, entry)
			right.bp.Unfix(f, err == nil)
			if err != nil {
				return nil, *st, err
			}
			st.EntriesMoved++
			st.PointerUpdates++
			return Open(right.bp, right.id, right.root, right.cfg), *st, nil
		}
		if p.NumSlots() == 0 {
			right.bp.Unfix(f, false)
			return nil, *st, fmt.Errorf("btree: empty interior node %v during meld", pid)
		}
		_, child, err := interiorEntryAt(p, 0)
		right.bp.Unfix(f, false)
		if err != nil {
			return nil, *st, err
		}
		pid = child
	}
}

// BoundaryCheck reports whether every key lies in [lo, hi).  The MRBTree
// uses it in tests to validate that slices and melds preserve partition
// boundaries.
func (t *Tree) BoundaryCheck(lo, hi []byte) (bool, error) {
	ok := true
	err := t.Ascend(nil, func(k, _ []byte) bool {
		if lo != nil && bytes.Compare(k, lo) < 0 {
			ok = false
			return false
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			ok = false
			return false
		}
		return true
	})
	return ok, err
}
