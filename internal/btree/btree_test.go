package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/keyenc"
	"plp/internal/latch"
)

func newTestTree(t testing.TB, cfg Config) *Tree {
	t.Helper()
	bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: &latch.Stats{}, CSStats: &cs.Stats{}})
	tree, err := Create(bp, 1, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return tree
}

func TestInsertSearchSmall(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true})
	for i := 0; i < 100; i++ {
		key := keyenc.Uint64Key(uint64(i))
		val := []byte(fmt.Sprintf("value-%d", i))
		if err := tree.Insert(nil, key, val); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		key := keyenc.Uint64Key(uint64(i))
		val, found, err := tree.Search(nil, key)
		if err != nil || !found {
			t.Fatalf("Search %d: found=%v err=%v", i, found, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(val) != want {
			t.Fatalf("Search %d: got %q want %q", i, val, want)
		}
	}
	if _, found, _ := tree.Search(nil, keyenc.Uint64Key(1000)); found {
		t.Fatal("found a key that was never inserted")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true})
	key := keyenc.Uint64Key(7)
	if err := tree.Insert(nil, key, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(nil, key, []byte("b")); err == nil {
		t.Fatal("expected ErrDuplicateKey")
	}
	if err := tree.Put(nil, key, []byte("b")); err != nil {
		t.Fatalf("Put should overwrite: %v", err)
	}
	v, _, _ := tree.Search(nil, key)
	if string(v) != "b" {
		t.Fatalf("got %q want b", v)
	}
}

func TestInsertWithSplits(t *testing.T) {
	for _, maxSlots := range []int{4, 7, 16} {
		maxSlots := maxSlots
		t.Run(fmt.Sprintf("maxSlots=%d", maxSlots), func(t *testing.T) {
			tree := newTestTree(t, Config{Latched: true, MaxSlotsPerNode: maxSlots})
			const n = 2000
			perm := rand.New(rand.NewSource(42)).Perm(n)
			for _, i := range perm {
				key := keyenc.Uint64Key(uint64(i))
				if err := tree.Insert(nil, key, key); err != nil {
					t.Fatalf("Insert %d: %v", i, err)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			count, err := tree.Count(nil)
			if err != nil || count != n {
				t.Fatalf("Count=%d err=%v want %d", count, err, n)
			}
			h, _ := tree.Height()
			if h < 3 {
				t.Fatalf("expected a deep tree with maxSlots=%d, got height %d", maxSlots, h)
			}
			for i := 0; i < n; i++ {
				_, found, err := tree.Search(nil, keyenc.Uint64Key(uint64(i)))
				if err != nil || !found {
					t.Fatalf("Search %d after splits: found=%v err=%v", i, found, err)
				}
			}
		})
	}
}

func TestDelete(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true, MaxSlotsPerNode: 8})
	const n = 500
	for i := 0; i < n; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		ok, err := tree.Delete(nil, keyenc.Uint64Key(uint64(i)))
		if err != nil || !ok {
			t.Fatalf("Delete %d: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 0; i < n; i++ {
		_, found, _ := tree.Search(nil, keyenc.Uint64Key(uint64(i)))
		want := i%2 == 1
		if found != want {
			t.Fatalf("key %d: found=%v want %v", i, found, want)
		}
	}
	ok, err := tree.Delete(nil, keyenc.Uint64Key(99999))
	if err != nil || ok {
		t.Fatalf("Delete missing key: ok=%v err=%v", ok, err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
}

func TestUpdate(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true})
	key := keyenc.Uint64Key(1)
	if err := tree.Update(nil, key, []byte("x")); err == nil {
		t.Fatal("Update of missing key should fail")
	}
	if err := tree.Insert(nil, key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := tree.Update(nil, key, []byte("yyyy")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := tree.Search(nil, key)
	if string(v) != "yyyy" {
		t.Fatalf("got %q", v)
	}
}

func TestAscendRange(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true, MaxSlotsPerNode: 6})
	const n = 300
	for i := 0; i < n; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i*2)), keyenc.Uint64Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tree.AscendRange(nil, keyenc.Uint64Key(100), keyenc.Uint64Key(200), func(k, v []byte) bool {
		kv, _ := keyenc.DecodeUint64(k)
		got = append(got, kv)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("got %d entries, want 50", len(got))
	}
	for i, kv := range got {
		if kv != uint64(100+2*i) {
			t.Fatalf("entry %d: got %d want %d", i, kv, 100+2*i)
		}
	}
	// Early stop.
	cnt := 0
	_ = tree.Ascend(nil, func(k, v []byte) bool {
		cnt++
		return cnt < 10
	})
	if cnt != 10 {
		t.Fatalf("early stop visited %d", cnt)
	}
}

func TestConcurrentInsertSearch(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true, MaxSlotsPerNode: 16})
	const (
		writers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				key := keyenc.CompositeUint64(uint64(w), uint64(i))
				if err := tree.Insert(nil, key, key); err != nil {
					t.Errorf("writer %d insert %d: %v", w, i, err)
					return
				}
				if _, found, err := tree.Search(nil, key); err != nil || !found {
					t.Errorf("writer %d readback %d: found=%v err=%v", w, i, found, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	count, err := tree.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if count != writers*perW {
		t.Fatalf("count=%d want %d", count, writers*perW)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestLatchFreeMode(t *testing.T) {
	ls := &latch.Stats{}
	bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: ls, CSStats: &cs.Stats{}})
	tree, err := Create(bp, 1, Config{Latched: false, MaxSlotsPerNode: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := ls.Snapshot()
	if snap.Acquired[latch.KindIndex] != 0 {
		t.Fatalf("latch-free tree acquired %d index latches", snap.Acquired[latch.KindIndex])
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLatchedModeCountsLatches(t *testing.T) {
	ls := &latch.Stats{}
	bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: ls, CSStats: &cs.Stats{}})
	tree, err := Create(bp, 1, Config{Latched: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if snap := ls.Snapshot(); snap.Acquired[latch.KindIndex] == 0 {
		t.Fatal("latched tree acquired no index latches")
	}
}

func TestSliceAt(t *testing.T) {
	tree := newTestTree(t, Config{Latched: false, MaxSlotsPerNode: 8})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), keyenc.Uint64Key(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cut := keyenc.Uint64Key(1200)
	right, st, err := tree.SliceAt(cut)
	if err != nil {
		t.Fatalf("SliceAt: %v", err)
	}
	if st.EntriesMoved <= 0 || st.EntriesMoved >= n/2 {
		t.Fatalf("slice moved %d entries; expected a small positive number", st.EntriesMoved)
	}
	leftCount, _ := tree.Count(nil)
	rightCount, _ := right.Count(nil)
	if leftCount != 1200 || rightCount != n-1200 {
		t.Fatalf("counts after slice: left=%d right=%d", leftCount, rightCount)
	}
	if ok, _ := tree.BoundaryCheck(nil, cut); !ok {
		t.Fatal("left tree has keys >= cut")
	}
	if ok, _ := right.BoundaryCheck(cut, nil); !ok {
		t.Fatal("right tree has keys < cut")
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("left invariants: %v", err)
	}
	if err := right.CheckInvariants(); err != nil {
		t.Fatalf("right invariants: %v", err)
	}
	// Both halves remain fully usable.
	if err := tree.Insert(nil, keyenc.Uint64Key(5000+0), []byte("x")); err == nil {
		// key 5000 >= cut belongs to right; inserting into left would violate
		// partitioning, but the tree itself cannot know that — it should
		// still accept it mechanically.  Clean it up.
		if _, err := tree.Delete(nil, keyenc.Uint64Key(5000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := right.Insert(nil, keyenc.Uint64Key(3000), []byte("y")); err != nil {
		t.Fatalf("insert into sliced-off tree: %v", err)
	}
}

func TestMeldEqualAndUnequalHeights(t *testing.T) {
	cases := []struct {
		name         string
		leftN, right int
	}{
		{"similar", 1000, 1000},
		{"leftTaller", 4000, 40},
		{"rightTaller", 40, 4000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: &latch.Stats{}, CSStats: &cs.Stats{}})
			cfg := Config{Latched: false, MaxSlotsPerNode: 8}
			left, err := Create(bp, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			right, err := Create(bp, 1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			boundary := uint64(100000)
			for i := 0; i < tc.leftN; i++ {
				if err := left.Insert(nil, keyenc.Uint64Key(uint64(i)), []byte("l")); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < tc.right; i++ {
				if err := right.Insert(nil, keyenc.Uint64Key(boundary+uint64(i)), []byte("r")); err != nil {
					t.Fatal(err)
				}
			}
			merged, _, err := Meld(left, right, keyenc.Uint64Key(boundary))
			if err != nil {
				t.Fatalf("Meld: %v", err)
			}
			count, err := merged.Count(nil)
			if err != nil {
				t.Fatal(err)
			}
			if count != tc.leftN+tc.right {
				t.Fatalf("merged count=%d want %d", count, tc.leftN+tc.right)
			}
			if err := merged.CheckInvariants(); err != nil {
				t.Fatalf("merged invariants: %v", err)
			}
			// Every key from both sides must be findable.
			for i := 0; i < tc.leftN; i += 17 {
				if _, found, _ := merged.Search(nil, keyenc.Uint64Key(uint64(i))); !found {
					t.Fatalf("left key %d lost after meld", i)
				}
			}
			for i := 0; i < tc.right; i += 7 {
				if _, found, _ := merged.Search(nil, keyenc.Uint64Key(boundary+uint64(i))); !found {
					t.Fatalf("right key %d lost after meld", i)
				}
			}
			// The merged tree keeps working for inserts.
			if err := merged.Insert(nil, keyenc.Uint64Key(boundary-1), []byte("mid")); err != nil {
				t.Fatalf("insert into merged tree: %v", err)
			}
		})
	}
}

func TestPropertyAgainstMapModel(t *testing.T) {
	cfgs := []Config{
		{Latched: true, MaxSlotsPerNode: 6},
		{Latched: false, MaxSlotsPerNode: 10},
		{Latched: true},
	}
	for ci, cfg := range cfgs {
		cfg := cfg
		t.Run(fmt.Sprintf("cfg%d", ci), func(t *testing.T) {
			f := func(ops []uint16, seed int64) bool {
				tree := newTestTree(t, cfg)
				model := make(map[uint64][]byte)
				rng := rand.New(rand.NewSource(seed))
				for _, op := range ops {
					k := uint64(op % 256)
					key := keyenc.Uint64Key(k)
					switch rng.Intn(3) {
					case 0:
						v := []byte(fmt.Sprintf("v%d-%d", k, rng.Intn(1000)))
						if err := tree.Put(nil, key, v); err != nil {
							return false
						}
						model[k] = v
					case 1:
						ok, err := tree.Delete(nil, key)
						if err != nil {
							return false
						}
						_, inModel := model[k]
						if ok != inModel {
							return false
						}
						delete(model, k)
					case 2:
						v, found, err := tree.Search(nil, key)
						if err != nil {
							return false
						}
						mv, inModel := model[k]
						if found != inModel {
							return false
						}
						if found && !bytes.Equal(v, mv) {
							return false
						}
					}
				}
				// Final full comparison via scan.
				scanned := make(map[uint64][]byte)
				if err := tree.Ascend(nil, func(k, v []byte) bool {
					kv, _ := keyenc.DecodeUint64(k)
					scanned[kv] = v
					return true
				}); err != nil {
					return false
				}
				if len(scanned) != len(model) {
					return false
				}
				for k, v := range model {
					if !bytes.Equal(scanned[k], v) {
						return false
					}
				}
				return tree.CheckInvariants() == nil
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestKeyValueSizeLimits(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true})
	bigKey := make([]byte, MaxKeySize+1)
	if err := tree.Insert(nil, bigKey, []byte("v")); err == nil {
		t.Fatal("oversized key accepted")
	}
	bigVal := make([]byte, MaxValueSize+1)
	if err := tree.Insert(nil, keyenc.Uint64Key(1), bigVal); err == nil {
		t.Fatal("oversized value accepted")
	}
	if err := tree.Insert(nil, nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestHeightGrowth(t *testing.T) {
	tree := newTestTree(t, Config{Latched: true, MaxSlotsPerNode: 4})
	h0, _ := tree.Height()
	if h0 != 1 {
		t.Fatalf("empty tree height=%d", h0)
	}
	for i := 0; i < 100; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	h1, _ := tree.Height()
	if h1 <= h0 {
		t.Fatalf("height did not grow: %d", h1)
	}
	st, err := tree.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 100 || st.LeafPages == 0 || st.InteriorPages == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}
