// Range scans, traversal utilities and structural statistics.
package btree

import (
	"bytes"
	"fmt"

	"plp/internal/bufferpool"
	"plp/internal/latch"
	"plp/internal/page"
	"plp/internal/txn"
)

// ScanFunc is called for every key/value pair visited by a scan.  The slices
// passed in are copies owned by the callback.  Returning false stops the
// scan.
type ScanFunc func(key, value []byte) bool

// AscendRange visits, in key order, every entry with lo <= key < hi.  A nil
// lo starts from the smallest key; a nil hi scans to the end.
func (t *Tree) AscendRange(tx *txn.Txn, lo, hi []byte, fn ScanFunc) error {
	var f *bufferpool.Frame
	var err error
	if lo == nil {
		f, err = t.leftmostLeaf(tx)
	} else {
		f, err = t.descendRead(tx, lo)
	}
	if err != nil {
		return err
	}
	for {
		p := f.Page()
		stop := false
		start := 0
		if lo != nil {
			start, _, err = leafSearch(p, lo)
			if err != nil {
				t.releaseNode(f, latch.Shared, false)
				return err
			}
		}
		for i := start; i < p.NumSlots(); i++ {
			k, v, eerr := leafEntryAt(p, i)
			if eerr != nil {
				t.releaseNode(f, latch.Shared, false)
				return eerr
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				stop = true
				break
			}
			kc := append([]byte(nil), k...)
			vc := append([]byte(nil), v...)
			if !fn(kc, vc) {
				stop = true
				break
			}
		}
		if stop {
			t.releaseNode(f, latch.Shared, false)
			return nil
		}
		next := p.Next()
		if next == page.InvalidID {
			t.releaseNode(f, latch.Shared, false)
			return nil
		}
		nf, ferr := t.bp.Fix(next)
		if ferr != nil {
			t.releaseNode(f, latch.Shared, false)
			return ferr
		}
		t.latchNode(tx, nf, latch.Shared)
		t.releaseNode(f, latch.Shared, false)
		f = nf
		lo = nil // subsequent leaves start from their first entry
	}
}

// Ascend visits every entry in key order.
func (t *Tree) Ascend(tx *txn.Txn, fn ScanFunc) error {
	return t.AscendRange(tx, nil, nil, fn)
}

// leftmostLeaf descends the leftmost path with shared latches and returns
// the first leaf latched in shared mode.
func (t *Tree) leftmostLeaf(tx *txn.Txn) (*bufferpool.Frame, error) {
	f, err := t.bp.Fix(t.root)
	if err != nil {
		return nil, err
	}
	t.latchNode(tx, f, latch.Shared)
	for !isLeaf(f.Page()) {
		if f.Page().NumSlots() == 0 {
			t.releaseNode(f, latch.Shared, false)
			return nil, fmt.Errorf("btree: interior node %v has no entries", f.Page().ID())
		}
		_, child, err := interiorEntryAt(f.Page(), 0)
		if err != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, err
		}
		cf, ferr := t.bp.Fix(child)
		if ferr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, ferr
		}
		t.latchNode(tx, cf, latch.Shared)
		t.releaseNode(f, latch.Shared, false)
		f = cf
	}
	return f, nil
}

// LeafPageFor returns the page ID of the leaf that covers key.  PLP-Leaf
// uses the leaf page as the owner tag of the heap pages its records live on.
func (t *Tree) LeafPageFor(tx *txn.Txn, key []byte) (page.ID, error) {
	f, err := t.descendRead(tx, key)
	if err != nil {
		return page.InvalidID, err
	}
	pid := f.Page().ID()
	t.releaseNode(f, latch.Shared, false)
	return pid, nil
}

// Height returns the number of levels in the tree (1 for a single leaf).
func (t *Tree) Height() (int, error) {
	f, err := t.bp.Fix(t.root)
	if err != nil {
		return 0, err
	}
	h := nodeLevel(f.Page()) + 1
	t.bp.Unfix(f, false)
	return h, nil
}

// Count returns the number of entries in the tree.
func (t *Tree) Count(tx *txn.Txn) (int, error) {
	n := 0
	err := t.Ascend(tx, func(_, _ []byte) bool {
		n++
		return true
	})
	return n, err
}

// MinKey returns a copy of the smallest key in the tree, or nil if the tree
// is empty.
func (t *Tree) MinKey(tx *txn.Txn) ([]byte, error) {
	var out []byte
	err := t.Ascend(tx, func(k, _ []byte) bool {
		out = k
		return false
	})
	return out, err
}

// StructStats describes the physical shape of the tree.
type StructStats struct {
	Height        int
	LeafPages     int
	InteriorPages int
	Entries       int
}

// Stats walks the whole tree and reports its shape.  It is intended for
// reporting and tests, not the hot path.
func (t *Tree) Stats() (StructStats, error) {
	var st StructStats
	h, err := t.Height()
	if err != nil {
		return st, err
	}
	st.Height = h
	err = t.walk(t.root, &st)
	return st, err
}

// walk recursively visits every node under pid.
func (t *Tree) walk(pid page.ID, st *StructStats) error {
	f, err := t.bp.Fix(pid)
	if err != nil {
		return err
	}
	p := f.Page()
	if isLeaf(p) {
		st.LeafPages++
		st.Entries += p.NumSlots()
		t.bp.Unfix(f, false)
		return nil
	}
	st.InteriorPages++
	children := make([]page.ID, 0, p.NumSlots())
	for i := 0; i < p.NumSlots(); i++ {
		_, child, eerr := interiorEntryAt(p, i)
		if eerr != nil {
			t.bp.Unfix(f, false)
			return eerr
		}
		children = append(children, child)
	}
	t.bp.Unfix(f, false)
	for _, c := range children {
		if err := t.walk(c, st); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies structural invariants: keys are sorted within
// and across leaves, interior entries route correctly, and levels decrease
// monotonically from root to leaves.  It returns an error describing the
// first violation found.
func (t *Tree) CheckInvariants() error {
	// Keys strictly increasing across a full scan.
	var prev []byte
	var orderErr error
	err := t.Ascend(nil, func(k, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			orderErr = fmt.Errorf("btree: keys out of order: %x then %x", prev, k)
			return false
		}
		prev = k
		return true
	})
	if err != nil {
		return err
	}
	if orderErr != nil {
		return orderErr
	}
	return t.checkNode(t.root, nil, nil, -1)
}

// checkNode verifies that every key under pid lies in [lo, hi) and that the
// node's level is parentLevel-1 (or any level when parentLevel < 0).
func (t *Tree) checkNode(pid page.ID, lo, hi []byte, parentLevel int) error {
	f, err := t.bp.Fix(pid)
	if err != nil {
		return err
	}
	p := f.Page()
	level := nodeLevel(p)
	if parentLevel >= 0 && level != parentLevel-1 {
		t.bp.Unfix(f, false)
		return fmt.Errorf("btree: node %v at level %d under parent level %d", pid, level, parentLevel)
	}
	inRange := func(k []byte) bool {
		if lo != nil && len(k) > 0 && bytes.Compare(k, lo) < 0 {
			return false
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return false
		}
		return true
	}
	if isLeaf(p) {
		for i := 0; i < p.NumSlots(); i++ {
			k, kerr := leafKeyAt(p, i)
			if kerr != nil {
				t.bp.Unfix(f, false)
				return kerr
			}
			if !inRange(k) {
				t.bp.Unfix(f, false)
				return fmt.Errorf("btree: leaf %v key %x outside [%x,%x)", pid, k, lo, hi)
			}
		}
		t.bp.Unfix(f, false)
		return nil
	}
	type childRange struct {
		child  page.ID
		lo, hi []byte
	}
	var children []childRange
	for i := 0; i < p.NumSlots(); i++ {
		k, child, eerr := interiorEntryAt(p, i)
		if eerr != nil {
			t.bp.Unfix(f, false)
			return eerr
		}
		if !inRange(k) && i > 0 {
			t.bp.Unfix(f, false)
			return fmt.Errorf("btree: interior %v separator %x outside [%x,%x)", pid, k, lo, hi)
		}
		cr := childRange{child: child, lo: append([]byte(nil), k...)}
		if i == 0 && len(k) == 0 {
			cr.lo = lo
		}
		if len(children) > 0 {
			children[len(children)-1].hi = cr.lo
		}
		children = append(children, cr)
	}
	if len(children) > 0 {
		children[len(children)-1].hi = hi
	}
	t.bp.Unfix(f, false)
	for _, cr := range children {
		if err := t.checkNode(cr.child, cr.lo, cr.hi, level); err != nil {
			return err
		}
	}
	return nil
}
