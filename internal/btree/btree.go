// Package btree implements a B+Tree whose nodes are slotted database pages
// fixed through the buffer pool, with the latching protocol of a
// conventional shared-everything storage manager:
//
//   - probes latch-crab from the root with shared latches;
//   - updates latch the leaf exclusively;
//   - structure modification operations (SMOs: page splits) are serialized
//     per tree by an SMO mutex, mirroring the ARIES/KVL behaviour the paper
//     describes ("only one SMO is allowed for a B+tree index at a time");
//   - a latch-free mode skips all latching and SMO serialization, which is
//     how PLP accesses the sub-trees owned by a single partition worker.
//
// The same Tree type is used directly by the conventional design and as the
// per-partition sub-tree of the MRBTree (package mrbtree).  Slice and Meld —
// the sub-tree split/merge operations that make MRBTree repartitioning
// cheap — are implemented in slice.go.
package btree

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/latch"
	"plp/internal/page"
	"plp/internal/txn"
	"plp/internal/wal"
)

// Errors returned by tree operations.
var (
	ErrDuplicateKey  = errors.New("btree: duplicate key")
	ErrKeyNotFound   = errors.New("btree: key not found")
	ErrKeyTooLarge   = errors.New("btree: key exceeds MaxKeySize")
	ErrValueTooLarge = errors.New("btree: value exceeds MaxValueSize")
)

// Config configures a Tree.
type Config struct {
	// Latched selects the conventional latching protocol.  When false the
	// tree performs no latching at all (PLP sub-trees owned by a single
	// worker).
	Latched bool
	// MaxSlotsPerNode artificially limits node fan-out so tests can force
	// deep trees and frequent SMOs with little data.  Zero means "page
	// capacity only".  Values below 4 are rounded up to 4.
	MaxSlotsPerNode int
	// CSStats receives critical-section accounting (may be nil).
	CSStats *cs.Stats
	// Log, when non-nil, receives one SMO record per page split.
	Log wal.Log
}

// Tree is a B+Tree over buffer-pool pages.
type Tree struct {
	bp   *bufferpool.Pool
	cfg  Config
	id   uint32
	root page.ID

	// smoMu serializes structure modifications (page splits) within this
	// tree, as ARIES/KVL does.  MRBTrees give every sub-tree its own Tree
	// and therefore its own SMO mutex, which is what enables parallel SMOs.
	smoMu sync.Mutex

	nSplits  uint64
	splitsMu sync.Mutex
}

// Create allocates an empty tree (a single empty leaf that permanently
// serves as the root page).
func Create(bp *bufferpool.Pool, id uint32, cfg Config) (*Tree, error) {
	if cfg.MaxSlotsPerNode > 0 && cfg.MaxSlotsPerNode < 4 {
		cfg.MaxSlotsPerNode = 4
	}
	frame, err := bp.NewPage(page.KindIndexLeaf)
	if err != nil {
		return nil, err
	}
	p := frame.Page()
	p.SetOwner(uint64(id))
	setNodeLevel(p, 0)
	root := p.ID()
	bp.Unfix(frame, true)
	return &Tree{bp: bp, cfg: cfg, id: id, root: root}, nil
}

// Open returns a Tree over an existing root page (used when the MRBTree
// slices a sub-tree or re-opens one after a partition-table change).
func Open(bp *bufferpool.Pool, id uint32, root page.ID, cfg Config) *Tree {
	if cfg.MaxSlotsPerNode > 0 && cfg.MaxSlotsPerNode < 4 {
		cfg.MaxSlotsPerNode = 4
	}
	return &Tree{bp: bp, cfg: cfg, id: id, root: root}
}

// RootPage returns the (immutable) root page ID of the tree.
func (t *Tree) RootPage() page.ID { return t.root }

// ID returns the index space id.
func (t *Tree) ID() uint32 { return t.id }

// Latched reports whether the tree uses the conventional latching protocol.
func (t *Tree) Latched() bool { return t.cfg.Latched }

// SetLatched switches the latching protocol (used when a loaded database is
// handed from the loader to a PLP engine).
func (t *Tree) SetLatched(v bool) { t.cfg.Latched = v }

// NumSplits returns the number of page splits performed so far.
func (t *Tree) NumSplits() uint64 {
	t.splitsMu.Lock()
	defer t.splitsMu.Unlock()
	return t.nSplits
}

func (t *Tree) countSplit() {
	t.splitsMu.Lock()
	t.nSplits++
	t.splitsMu.Unlock()
}

// latchNode acquires the node latch when latching is enabled, attributing
// wait time to the transaction's index-latch bucket.
func (t *Tree) latchNode(tx *txn.Txn, f *bufferpool.Frame, mode latch.Mode) {
	if !t.cfg.Latched {
		return
	}
	wait := f.Latch().Acquire(mode)
	if tx != nil {
		tx.Breakdown.AddLatch()
		tx.Breakdown.AddWait(txn.WaitIndexLatch, wait)
	}
}

// unlatchNode releases the node latch when latching is enabled.
func (t *Tree) unlatchNode(f *bufferpool.Frame, mode latch.Mode) {
	if !t.cfg.Latched {
		return
	}
	f.Latch().Release(mode)
}

// releaseNode unlatches and unfixes a node frame.
func (t *Tree) releaseNode(f *bufferpool.Frame, mode latch.Mode, dirty bool) {
	t.unlatchNode(f, mode)
	t.bp.Unfix(f, dirty)
}

// logSMO appends one SMO log record, if logging is configured.
func (t *Tree) logSMO(tx *txn.Txn, pid page.ID) {
	if t.cfg.Log == nil {
		return
	}
	rec := &wal.Record{Type: wal.RecSMO, Page: pid}
	if tx != nil {
		rec.Txn = tx.ID()
		rec.PrevLSN = tx.LastLSN()
	}
	lsn := t.cfg.Log.Append(rec)
	if tx != nil {
		tx.SetLastLSN(lsn)
	}
}

// validateSizes rejects oversized keys/values up front.
func validateSizes(key, value []byte) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("%w: %d bytes", ErrKeyTooLarge, len(key))
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrValueTooLarge, len(value))
	}
	return nil
}

// Search returns a copy of the value stored under key.
func (t *Tree) Search(tx *txn.Txn, key []byte) ([]byte, bool, error) {
	f, err := t.descendRead(tx, key)
	if err != nil {
		return nil, false, err
	}
	pos, found, err := leafSearch(f.Page(), key)
	var out []byte
	if err == nil && found {
		_, v, verr := leafEntryAt(f.Page(), pos)
		if verr == nil {
			out = append([]byte(nil), v...)
		} else {
			err = verr
		}
	}
	t.releaseNode(f, latch.Shared, false)
	if err != nil {
		return nil, false, err
	}
	return out, found, nil
}

// descendRead walks from the root to the leaf covering key with shared
// latch crabbing and returns the leaf frame latched in shared mode.
func (t *Tree) descendRead(tx *txn.Txn, key []byte) (*bufferpool.Frame, error) {
	f, err := t.bp.Fix(t.root)
	if err != nil {
		return nil, err
	}
	t.latchNode(tx, f, latch.Shared)
	for !isLeaf(f.Page()) {
		idx, serr := interiorSearch(f.Page(), key)
		if serr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, serr
		}
		_, child, eerr := interiorEntryAt(f.Page(), idx)
		if eerr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, eerr
		}
		cf, ferr := t.bp.Fix(child)
		if ferr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, ferr
		}
		t.latchNode(tx, cf, latch.Shared)
		t.releaseNode(f, latch.Shared, false)
		f = cf
	}
	return f, nil
}

// descendWriteLeaf walks to the leaf covering key, holding shared latches on
// interior nodes and an exclusive latch on the leaf.  This is the optimistic
// path used when no split is expected.
func (t *Tree) descendWriteLeaf(tx *txn.Txn, key []byte) (*bufferpool.Frame, error) {
	f, err := t.descendWriteRoot(tx)
	if err != nil || f == nil {
		return f, err
	}
	if isLeaf(f.Page()) {
		// descendWriteRoot returned the root exclusively latched because it
		// is (still) a leaf.
		return f, nil
	}
	for {
		idx, serr := interiorSearch(f.Page(), key)
		if serr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, serr
		}
		_, child, eerr := interiorEntryAt(f.Page(), idx)
		if eerr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, eerr
		}
		cf, ferr := t.bp.Fix(child)
		if ferr != nil {
			t.releaseNode(f, latch.Shared, false)
			return nil, ferr
		}
		if isLeaf(cf.Page()) {
			t.latchNode(tx, cf, latch.Exclusive)
			t.releaseNode(f, latch.Shared, false)
			return cf, nil
		}
		t.latchNode(tx, cf, latch.Shared)
		t.releaseNode(f, latch.Shared, false)
		f = cf
	}
}

// descendWriteRoot latches the root for an optimistic write descent.  The
// root's kind can change underneath us (raiseRoot turns a leaf root into an
// interior root in place), so the kind must be re-checked after the latch is
// held: the root is returned exclusively latched if it is a leaf and
// share-latched if it is an interior node.
func (t *Tree) descendWriteRoot(tx *txn.Txn) (*bufferpool.Frame, error) {
	for {
		f, err := t.bp.Fix(t.root)
		if err != nil {
			return nil, err
		}
		t.latchNode(tx, f, latch.Shared)
		if !isLeaf(f.Page()) {
			return f, nil
		}
		// The root looks like a leaf: we need it exclusively.  RWMutex has
		// no upgrade, so release and re-acquire, then re-check.
		t.unlatchNode(f, latch.Shared)
		t.latchNode(tx, f, latch.Exclusive)
		if isLeaf(f.Page()) {
			return f, nil
		}
		// Lost the race with a root raise; retry as an interior descent.
		t.releaseNode(f, latch.Exclusive, false)
	}
}

// Insert adds key/value.  It returns ErrDuplicateKey if the key is already
// present.
func (t *Tree) Insert(tx *txn.Txn, key, value []byte) error {
	return t.insert(tx, key, value, false)
}

// Put adds key/value, overwriting the existing value if the key is present.
func (t *Tree) Put(tx *txn.Txn, key, value []byte) error {
	return t.insert(tx, key, value, true)
}

func (t *Tree) insert(tx *txn.Txn, key, value []byte, upsert bool) error {
	if err := validateSizes(key, value); err != nil {
		return err
	}
	entry := encodeLeafEntry(key, value)

	// Optimistic attempt: leaf-only exclusive latch.
	f, err := t.descendWriteLeaf(tx, key)
	if err != nil {
		return err
	}
	p := f.Page()
	pos, found, err := leafSearch(p, key)
	if err != nil {
		t.releaseNode(f, latch.Exclusive, false)
		return err
	}
	if found {
		if !upsert {
			t.releaseNode(f, latch.Exclusive, false)
			return fmt.Errorf("%w: %x", ErrDuplicateKey, key)
		}
		err = t.updateLeafEntry(tx, f, pos, key, value)
		if err == nil {
			t.releaseNode(f, latch.Exclusive, true)
			return nil
		}
		if !errors.Is(err, page.ErrPageFull) {
			t.releaseNode(f, latch.Exclusive, false)
			return err
		}
		// Fall through to the pessimistic path: replacing needs a split.
		t.releaseNode(f, latch.Exclusive, false)
		return t.insertPessimistic(tx, key, value, upsert)
	}
	if !nodeFull(p, len(entry), t.cfg.MaxSlotsPerNode) {
		if err := p.InsertAt(pos, entry); err == nil {
			t.releaseNode(f, latch.Exclusive, true)
			return nil
		}
	}
	t.releaseNode(f, latch.Exclusive, false)
	return t.insertPessimistic(tx, key, value, upsert)
}

// updateLeafEntry overwrites the value of an existing leaf entry in place.
func (t *Tree) updateLeafEntry(tx *txn.Txn, f *bufferpool.Frame, pos int, key, value []byte) error {
	return f.Page().SetAt(pos, encodeLeafEntry(key, value))
}

// Update overwrites the value of an existing key.  It returns
// ErrKeyNotFound if the key is absent.
func (t *Tree) Update(tx *txn.Txn, key, value []byte) error {
	if err := validateSizes(key, value); err != nil {
		return err
	}
	f, err := t.descendWriteLeaf(tx, key)
	if err != nil {
		return err
	}
	p := f.Page()
	pos, found, err := leafSearch(p, key)
	if err != nil || !found {
		t.releaseNode(f, latch.Exclusive, false)
		if err != nil {
			return err
		}
		return fmt.Errorf("%w: %x", ErrKeyNotFound, key)
	}
	err = t.updateLeafEntry(tx, f, pos, key, value)
	if err == nil {
		t.releaseNode(f, latch.Exclusive, true)
		return nil
	}
	t.releaseNode(f, latch.Exclusive, false)
	if errors.Is(err, page.ErrPageFull) {
		return t.insertPessimistic(tx, key, value, true)
	}
	return err
}

// Delete removes key.  It reports whether the key was present.  Underflowed
// nodes are not merged (deletes are rare in the paper's workloads and
// ARIES/KVL-style merges would not change which critical sections are
// measured); empty leaves simply remain in place until their sibling splits
// reuse the space.
func (t *Tree) Delete(tx *txn.Txn, key []byte) (bool, error) {
	if len(key) == 0 || len(key) > MaxKeySize {
		return false, ErrKeyTooLarge
	}
	f, err := t.descendWriteLeaf(tx, key)
	if err != nil {
		return false, err
	}
	p := f.Page()
	pos, found, err := leafSearch(p, key)
	if err != nil || !found {
		t.releaseNode(f, latch.Exclusive, false)
		return false, err
	}
	err = p.RemoveAt(pos)
	t.releaseNode(f, latch.Exclusive, err == nil)
	if err != nil {
		return false, err
	}
	return true, nil
}

// insertPessimistic performs the insert while holding the SMO mutex and
// exclusive latches on every node that may be modified by the split chain.
func (t *Tree) insertPessimistic(tx *txn.Txn, key, value []byte, upsert bool) error {
	if t.cfg.Latched {
		if !t.smoMu.TryLock() {
			start := time.Now()
			t.smoMu.Lock()
			if tx != nil {
				tx.Breakdown.AddWait(txn.WaitSMO, time.Since(start))
			}
			t.cfg.CSStats.Record(cs.Latching, true)
		} else {
			t.cfg.CSStats.Record(cs.Latching, false)
		}
		defer t.smoMu.Unlock()
	}

	entry := encodeLeafEntry(key, value)
	path, err := t.descendPessimistic(tx, key, len(entry))
	if err != nil {
		return err
	}
	leafFrame := path[len(path)-1]
	p := leafFrame.Page()
	pos, found, err := leafSearch(p, key)
	if err != nil {
		t.releasePath(path, false)
		return err
	}
	if found {
		if !upsert {
			t.releasePath(path, false)
			return fmt.Errorf("%w: %x", ErrDuplicateKey, key)
		}
		// Remove the old entry, then insert the new one (possibly splitting).
		if err := p.RemoveAt(pos); err != nil {
			t.releasePath(path, false)
			return err
		}
	}
	err = t.insertIntoLeafWithSplit(tx, path, key, value)
	t.releasePath(path, true)
	return err
}

// descendPessimistic walks to the leaf covering key holding exclusive
// latches, releasing ancestors as soon as a child is "safe" (cannot be
// affected by a split below it).  The returned path runs from the shallowest
// retained node to the leaf; every frame is fixed and exclusively latched.
func (t *Tree) descendPessimistic(tx *txn.Txn, key []byte, leafEntrySize int) ([]*bufferpool.Frame, error) {
	var path []*bufferpool.Frame
	f, err := t.bp.Fix(t.root)
	if err != nil {
		return nil, err
	}
	t.latchNode(tx, f, latch.Exclusive)
	path = append(path, f)
	for {
		p := f.Page()
		if isLeaf(p) {
			return path, nil
		}
		idx, serr := interiorSearch(p, key)
		if serr != nil {
			t.releasePath(path, false)
			return nil, serr
		}
		_, child, eerr := interiorEntryAt(p, idx)
		if eerr != nil {
			t.releasePath(path, false)
			return nil, eerr
		}
		cf, ferr := t.bp.Fix(child)
		if ferr != nil {
			t.releasePath(path, false)
			return nil, ferr
		}
		t.latchNode(tx, cf, latch.Exclusive)
		var safe bool
		if isLeaf(cf.Page()) {
			safe = !nodeFull(cf.Page(), leafEntrySize, t.cfg.MaxSlotsPerNode)
		} else {
			safe = interiorSafe(cf.Page(), t.cfg.MaxSlotsPerNode)
		}
		if safe {
			t.releasePath(path, false)
			path = path[:0]
		}
		path = append(path, cf)
		f = cf
	}
}

// releasePath unlatches and unfixes every frame in the path.
func (t *Tree) releasePath(path []*bufferpool.Frame, dirty bool) {
	for i := len(path) - 1; i >= 0; i-- {
		t.releaseNode(path[i], latch.Exclusive, dirty)
	}
}

// insertIntoLeafWithSplit inserts key/value into the leaf at the end of
// path, splitting the leaf (and cascading splits upward along path) as
// needed.  All frames in path are exclusively latched.
func (t *Tree) insertIntoLeafWithSplit(tx *txn.Txn, path []*bufferpool.Frame, key, value []byte) error {
	leafFrame := path[len(path)-1]
	p := leafFrame.Page()
	entry := encodeLeafEntry(key, value)

	if !nodeFull(p, len(entry), t.cfg.MaxSlotsPerNode) {
		pos, _, err := leafSearch(p, key)
		if err != nil {
			return err
		}
		leafFrame.MarkDirty()
		return p.InsertAt(pos, entry)
	}

	// The leaf must split.
	if p.ID() == t.root {
		return t.splitRoot(tx, leafFrame, key, value, page.InvalidID)
	}
	if len(path) < 2 {
		return fmt.Errorf("btree: split of non-root leaf %v without latched parent", p.ID())
	}
	sepKey, rightPID, err := t.splitLeaf(tx, leafFrame, key, value)
	if err != nil {
		return err
	}
	return t.insertSeparator(tx, path, len(path)-2, sepKey, rightPID)
}

// splitLeaf splits the full leaf in leafFrame, moving the upper half of its
// entries to a new right sibling, then inserts key/value into whichever half
// now covers it.  It returns the separator key (the first key of the right
// sibling) and the right sibling's page ID.
func (t *Tree) splitLeaf(tx *txn.Txn, leafFrame *bufferpool.Frame, key, value []byte) ([]byte, page.ID, error) {
	p := leafFrame.Page()
	rightFrame, err := t.bp.NewPage(page.KindIndexLeaf)
	if err != nil {
		return nil, 0, err
	}
	right := rightFrame.Page()
	right.SetOwner(p.Owner())
	setNodeLevel(right, 0)

	mid := p.NumSlots() / 2
	if mid == 0 {
		mid = 1
	}
	// Copy entries [mid, n) to the right node.
	for i := mid; i < p.NumSlots(); i++ {
		buf, gerr := p.GetAt(i)
		if gerr != nil {
			t.bp.Unfix(rightFrame, false)
			return nil, 0, gerr
		}
		if ierr := right.InsertAt(right.NumSlots(), buf); ierr != nil {
			t.bp.Unfix(rightFrame, false)
			return nil, 0, ierr
		}
	}
	if err := p.Truncate(mid); err != nil {
		t.bp.Unfix(rightFrame, false)
		return nil, 0, err
	}

	// Fix the leaf sibling chain: p <-> right <-> oldNext.
	oldNext := p.Next()
	right.SetNext(oldNext)
	right.SetPrev(p.ID())
	p.SetNext(right.ID())
	if oldNext != page.InvalidID {
		if nf, ferr := t.bp.Fix(oldNext); ferr == nil {
			t.latchNode(tx, nf, latch.Exclusive)
			nf.Page().SetPrev(right.ID())
			t.releaseNode(nf, latch.Exclusive, true)
		}
	}

	sepKey, err := leafKeyAt(right, 0)
	if err != nil {
		t.bp.Unfix(rightFrame, false)
		return nil, 0, err
	}
	sepKey = append([]byte(nil), sepKey...)

	// Insert the pending entry into the correct half.
	target := p
	targetFrame := leafFrame
	if bytes.Compare(key, sepKey) >= 0 {
		target = right
		targetFrame = rightFrame
	}
	pos, _, err := leafSearch(target, key)
	if err == nil {
		err = target.InsertAt(pos, encodeLeafEntry(key, value))
	}
	targetFrame.MarkDirty()
	leafFrame.MarkDirty()
	rightPID := right.ID()
	t.bp.Unfix(rightFrame, true)
	if err != nil {
		return nil, 0, err
	}
	t.countSplit()
	t.logSMO(tx, rightPID)
	return sepKey, rightPID, nil
}

// insertSeparator inserts (sepKey -> child) into the interior node at
// path[idx], splitting it (and recursing upward) if necessary.
func (t *Tree) insertSeparator(tx *txn.Txn, path []*bufferpool.Frame, idx int, sepKey []byte, child page.ID) error {
	f := path[idx]
	p := f.Page()
	entry := encodeInteriorEntry(sepKey, child)
	if !nodeFull(p, len(entry), t.cfg.MaxSlotsPerNode) {
		pos, err := interiorInsertPos(p, sepKey)
		if err != nil {
			return err
		}
		f.MarkDirty()
		return p.InsertAt(pos, entry)
	}
	// The interior node must split.
	if p.ID() == t.root {
		return t.splitRootWithSeparator(tx, f, sepKey, child)
	}
	if idx == 0 {
		return fmt.Errorf("btree: interior split of %v without latched parent", p.ID())
	}
	newSep, rightPID, err := t.splitInterior(tx, f, sepKey, child)
	if err != nil {
		return err
	}
	return t.insertSeparator(tx, path, idx-1, newSep, rightPID)
}

// splitInterior splits the full interior node in frame f, moving the upper
// half of its entries to a new right sibling, then inserts the pending
// separator into the correct half.  It returns the separator to push up and
// the new right node's page ID.
func (t *Tree) splitInterior(tx *txn.Txn, f *bufferpool.Frame, sepKey []byte, child page.ID) ([]byte, page.ID, error) {
	p := f.Page()
	rightFrame, err := t.bp.NewPage(page.KindIndexInterior)
	if err != nil {
		return nil, 0, err
	}
	right := rightFrame.Page()
	right.SetOwner(p.Owner())
	setNodeLevel(right, nodeLevel(p))

	mid := p.NumSlots() / 2
	if mid == 0 {
		mid = 1
	}
	for i := mid; i < p.NumSlots(); i++ {
		buf, gerr := p.GetAt(i)
		if gerr != nil {
			t.bp.Unfix(rightFrame, false)
			return nil, 0, gerr
		}
		if ierr := right.InsertAt(right.NumSlots(), buf); ierr != nil {
			t.bp.Unfix(rightFrame, false)
			return nil, 0, ierr
		}
	}
	if err := p.Truncate(mid); err != nil {
		t.bp.Unfix(rightFrame, false)
		return nil, 0, err
	}

	// The separator to push up is the first key of the right node (lower
	// bound convention).
	pushKey, _, err := interiorEntryAt(right, 0)
	if err != nil {
		t.bp.Unfix(rightFrame, false)
		return nil, 0, err
	}
	pushKey = append([]byte(nil), pushKey...)

	// Insert the pending separator into the correct half.
	target := p
	targetFrame := f
	if bytes.Compare(sepKey, pushKey) >= 0 {
		target = right
		targetFrame = rightFrame
	}
	pos, err := interiorInsertPos(target, sepKey)
	if err == nil {
		err = target.InsertAt(pos, encodeInteriorEntry(sepKey, child))
	}
	targetFrame.MarkDirty()
	f.MarkDirty()
	rightPID := right.ID()
	t.bp.Unfix(rightFrame, true)
	if err != nil {
		return nil, 0, err
	}
	t.countSplit()
	t.logSMO(tx, rightPID)
	return pushKey, rightPID, nil
}

// splitRoot handles the split of a root page (leaf or interior) that is the
// target of a pending leaf entry insert.  The root page ID never changes:
// the root's contents move into two freshly allocated children and the root
// becomes (or stays) an interior node one level higher.
func (t *Tree) splitRoot(tx *txn.Txn, rootFrame *bufferpool.Frame, key, value []byte, _ page.ID) error {
	if err := t.raiseRoot(tx, rootFrame); err != nil {
		return err
	}
	// After raising, the root is an interior node with exactly two
	// children, each at most half full; descend one level and insert.
	p := rootFrame.Page()
	idx, err := interiorSearch(p, key)
	if err != nil {
		return err
	}
	_, child, err := interiorEntryAt(p, idx)
	if err != nil {
		return err
	}
	cf, err := t.bp.Fix(child)
	if err != nil {
		return err
	}
	t.latchNode(tx, cf, latch.Exclusive)
	defer t.releaseNode(cf, latch.Exclusive, true)
	if isLeaf(cf.Page()) {
		pos, _, serr := leafSearch(cf.Page(), key)
		if serr != nil {
			return serr
		}
		return cf.Page().InsertAt(pos, encodeLeafEntry(key, value))
	}
	return fmt.Errorf("btree: unexpected interior child right after root raise")
}

// splitRootWithSeparator handles the split of an interior root when a
// separator must be inserted into it.
func (t *Tree) splitRootWithSeparator(tx *txn.Txn, rootFrame *bufferpool.Frame, sepKey []byte, child page.ID) error {
	if err := t.raiseRoot(tx, rootFrame); err != nil {
		return err
	}
	p := rootFrame.Page()
	idx, err := interiorSearch(p, sepKey)
	if err != nil {
		return err
	}
	_, target, err := interiorEntryAt(p, idx)
	if err != nil {
		return err
	}
	cf, err := t.bp.Fix(target)
	if err != nil {
		return err
	}
	t.latchNode(tx, cf, latch.Exclusive)
	defer t.releaseNode(cf, latch.Exclusive, true)
	pos, err := interiorInsertPos(cf.Page(), sepKey)
	if err != nil {
		return err
	}
	return cf.Page().InsertAt(pos, encodeInteriorEntry(sepKey, child))
}

// raiseRoot moves the contents of the (full) root into two new children and
// turns the root into an interior node pointing at them.  The root page ID
// is preserved so that concurrent descents through a stale root pointer stay
// correct.
func (t *Tree) raiseRoot(tx *txn.Txn, rootFrame *bufferpool.Frame) error {
	p := rootFrame.Page()
	level := nodeLevel(p)
	childKind := page.KindIndexInterior
	if isLeaf(p) {
		childKind = page.KindIndexLeaf
	}

	leftFrame, err := t.bp.NewPage(childKind)
	if err != nil {
		return err
	}
	rightFrame, err := t.bp.NewPage(childKind)
	if err != nil {
		t.bp.Unfix(leftFrame, false)
		return err
	}
	left, right := leftFrame.Page(), rightFrame.Page()
	left.SetOwner(p.Owner())
	right.SetOwner(p.Owner())
	setNodeLevel(left, level)
	setNodeLevel(right, level)

	n := p.NumSlots()
	mid := n / 2
	if mid == 0 {
		mid = 1
	}
	copyRange := func(dst *page.Page, from, to int) error {
		for i := from; i < to; i++ {
			buf, gerr := p.GetAt(i)
			if gerr != nil {
				return gerr
			}
			if ierr := dst.InsertAt(dst.NumSlots(), buf); ierr != nil {
				return ierr
			}
		}
		return nil
	}
	if err := copyRange(left, 0, mid); err != nil {
		t.bp.Unfix(leftFrame, false)
		t.bp.Unfix(rightFrame, false)
		return err
	}
	if err := copyRange(right, mid, n); err != nil {
		t.bp.Unfix(leftFrame, false)
		t.bp.Unfix(rightFrame, false)
		return err
	}

	// Separator between the two halves.
	var sepKey []byte
	if childKind == page.KindIndexLeaf {
		k, kerr := leafKeyAt(right, 0)
		if kerr != nil {
			t.bp.Unfix(leftFrame, false)
			t.bp.Unfix(rightFrame, false)
			return kerr
		}
		sepKey = append([]byte(nil), k...)
		left.SetNext(right.ID())
		right.SetPrev(left.ID())
	} else {
		k, _, kerr := interiorEntryAt(right, 0)
		if kerr != nil {
			t.bp.Unfix(leftFrame, false)
			t.bp.Unfix(rightFrame, false)
			return kerr
		}
		sepKey = append([]byte(nil), k...)
	}

	// Rebuild the root as an interior node one level higher.
	owner := p.Owner()
	rootID := p.ID()
	p.Reset(rootID, page.KindIndexInterior)
	p.SetOwner(owner)
	setNodeLevel(p, level+1)
	if err := p.InsertAt(0, encodeInteriorEntry(nil, left.ID())); err != nil {
		t.bp.Unfix(leftFrame, false)
		t.bp.Unfix(rightFrame, false)
		return err
	}
	if err := p.InsertAt(1, encodeInteriorEntry(sepKey, right.ID())); err != nil {
		t.bp.Unfix(leftFrame, false)
		t.bp.Unfix(rightFrame, false)
		return err
	}
	rootFrame.MarkDirty()
	t.bp.Unfix(leftFrame, true)
	t.bp.Unfix(rightFrame, true)
	t.countSplit()
	t.logSMO(tx, rootID)
	return nil
}
