// Node-level helpers: the layout of B+Tree entries inside slotted pages and
// the binary searches over them.
//
// Leaf entries are encoded as
//
//	[2-byte key length][key][2-byte value length][value]
//
// and interior entries as
//
//	[2-byte key length][key][8-byte child page ID]
//
// Interior nodes follow the "entry key is the lower bound of the child's key
// range" convention: entry i's child covers keys in [key_i, key_{i+1}).  The
// leftmost entry of the leftmost node on each level carries the empty key,
// which orders before every real key.
package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"plp/internal/page"
)

// MaxKeySize bounds key length so that interior-node "safety" checks can use
// a conservative entry-size bound during latch crabbing.
const MaxKeySize = 1024

// MaxValueSize bounds leaf values so that a handful of entries always fit on
// a page.
const MaxValueSize = 2000

// maxInteriorEntry is the worst-case encoded size of an interior entry.
const maxInteriorEntry = 2 + MaxKeySize + 8

// encodeLeafEntry builds a leaf entry.
func encodeLeafEntry(key, value []byte) []byte {
	buf := make([]byte, 2+len(key)+2+len(value))
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(key)))
	copy(buf[2:], key)
	binary.LittleEndian.PutUint16(buf[2+len(key):], uint16(len(value)))
	copy(buf[4+len(key):], value)
	return buf
}

// decodeLeafEntry splits a leaf entry into key and value.  The returned
// slices alias the entry buffer.
func decodeLeafEntry(buf []byte) (key, value []byte, err error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("btree: short leaf entry (%d bytes)", len(buf))
	}
	kl := int(binary.LittleEndian.Uint16(buf[0:]))
	if len(buf) < 2+kl+2 {
		return nil, nil, fmt.Errorf("btree: corrupt leaf entry")
	}
	key = buf[2 : 2+kl]
	vl := int(binary.LittleEndian.Uint16(buf[2+kl:]))
	if len(buf) < 4+kl+vl {
		return nil, nil, fmt.Errorf("btree: corrupt leaf entry value")
	}
	value = buf[4+kl : 4+kl+vl]
	return key, value, nil
}

// encodeInteriorEntry builds an interior entry.
func encodeInteriorEntry(key []byte, child page.ID) []byte {
	buf := make([]byte, 2+len(key)+8)
	binary.LittleEndian.PutUint16(buf[0:], uint16(len(key)))
	copy(buf[2:], key)
	binary.LittleEndian.PutUint64(buf[2+len(key):], uint64(child))
	return buf
}

// decodeInteriorEntry splits an interior entry into key and child pointer.
func decodeInteriorEntry(buf []byte) (key []byte, child page.ID, err error) {
	if len(buf) < 10 {
		return nil, 0, fmt.Errorf("btree: short interior entry (%d bytes)", len(buf))
	}
	kl := int(binary.LittleEndian.Uint16(buf[0:]))
	if len(buf) < 2+kl+8 {
		return nil, 0, fmt.Errorf("btree: corrupt interior entry")
	}
	key = buf[2 : 2+kl]
	child = page.ID(binary.LittleEndian.Uint64(buf[2+kl:]))
	return key, child, nil
}

// isLeaf reports whether the node page is a leaf.
func isLeaf(p *page.Page) bool { return p.Kind() == page.KindIndexLeaf }

// nodeLevel returns the node's level (0 for leaves).
func nodeLevel(p *page.Page) int { return int(p.Extra()) }

// setNodeLevel records the node's level in the page header.
func setNodeLevel(p *page.Page, level int) { p.SetExtra(uint64(level)) }

// leafKeyAt returns the key of the leaf entry at position i.
func leafKeyAt(p *page.Page, i int) ([]byte, error) {
	buf, err := p.GetAt(i)
	if err != nil {
		return nil, err
	}
	k, _, err := decodeLeafEntry(buf)
	return k, err
}

// leafEntryAt returns the key and value of the leaf entry at position i.
func leafEntryAt(p *page.Page, i int) (key, value []byte, err error) {
	buf, err := p.GetAt(i)
	if err != nil {
		return nil, nil, err
	}
	return decodeLeafEntry(buf)
}

// interiorEntryAt returns the key and child of the interior entry at
// position i.
func interiorEntryAt(p *page.Page, i int) (key []byte, child page.ID, err error) {
	buf, err := p.GetAt(i)
	if err != nil {
		return nil, 0, err
	}
	return decodeInteriorEntry(buf)
}

// leafSearch finds the position of key in the leaf.  It returns the position
// of the first entry >= key and whether that entry's key equals key.
func leafSearch(p *page.Page, key []byte) (pos int, found bool, err error) {
	lo, hi := 0, p.NumSlots()
	for lo < hi {
		mid := (lo + hi) / 2
		k, kerr := leafKeyAt(p, mid)
		if kerr != nil {
			return 0, false, kerr
		}
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true, nil
		default:
			hi = mid
		}
	}
	return lo, false, nil
}

// interiorSearch returns the position of the entry whose child covers key:
// the largest i with key_i <= key, or 0 when key orders before every entry
// (only possible transiently on the leftmost path).
func interiorSearch(p *page.Page, key []byte) (int, error) {
	n := p.NumSlots()
	lo, hi := 0, n
	// Find the first entry with key_i > key; answer is the one before it.
	for lo < hi {
		mid := (lo + hi) / 2
		k, _, kerr := interiorEntryAt(p, mid)
		if kerr != nil {
			return 0, kerr
		}
		if bytes.Compare(k, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0, nil
	}
	return lo - 1, nil
}

// interiorInsertPos returns the position at which a separator key should be
// inserted to keep entries sorted.
func interiorInsertPos(p *page.Page, key []byte) (int, error) {
	n := p.NumSlots()
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		k, _, kerr := interiorEntryAt(p, mid)
		if kerr != nil {
			return 0, kerr
		}
		if bytes.Compare(k, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// nodeFull reports whether the node cannot take one more entry of the given
// encoded size without splitting, honouring the artificial slot limit used
// by tests to force deep trees.
func nodeFull(p *page.Page, entrySize, maxSlots int) bool {
	if maxSlots > 0 && p.NumSlots() >= maxSlots {
		return true
	}
	return !p.HasRoomFor(entrySize)
}

// interiorSafe reports whether an interior node can absorb one more
// separator without itself splitting (the "safe node" test used to release
// ancestor latches during crabbing).
func interiorSafe(p *page.Page, maxSlots int) bool {
	return !nodeFull(p, maxInteriorEntry, maxSlots)
}
