package btree

import (
	"fmt"
	"testing"

	"plp/internal/bufferpool"
	"plp/internal/cs"
	"plp/internal/keyenc"
	"plp/internal/latch"
)

func benchTree(b *testing.B, latched bool, preload int) *Tree {
	b.Helper()
	bp := bufferpool.NewMemory(bufferpool.Config{LatchStats: &latch.Stats{}, CSStats: &cs.Stats{}})
	tree, err := Create(bp, 1, Config{Latched: latched})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 64)
	for i := 0; i < preload; i++ {
		if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), val); err != nil {
			b.Fatal(err)
		}
	}
	return tree
}

// BenchmarkSearch measures point probes with and without the latching
// protocol — the per-access overhead PLP removes.
func BenchmarkSearch(b *testing.B) {
	for _, latched := range []bool{true, false} {
		b.Run(fmt.Sprintf("latched=%v", latched), func(b *testing.B) {
			tree := benchTree(b, latched, 100000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found, err := tree.Search(nil, keyenc.Uint64Key(uint64(i%100000))); err != nil || !found {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInsert measures sequential-key inserts (splits included).
func BenchmarkInsert(b *testing.B) {
	for _, latched := range []bool{true, false} {
		b.Run(fmt.Sprintf("latched=%v", latched), func(b *testing.B) {
			tree := benchTree(b, latched, 0)
			val := make([]byte, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tree.Insert(nil, keyenc.Uint64Key(uint64(i)), val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentSearch measures probe scalability under the shared
// latch protocol.
func BenchmarkConcurrentSearch(b *testing.B) {
	tree := benchTree(b, true, 100000)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, _, err := tree.Search(nil, keyenc.Uint64Key(uint64(i%100000))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSliceAt measures the MRBTree sub-tree split primitive.
func BenchmarkSliceAt(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tree := benchTree(b, false, 50000)
		b.StartTimer()
		if _, _, err := tree.SliceAt(keyenc.Uint64Key(25000)); err != nil {
			b.Fatal(err)
		}
	}
}
