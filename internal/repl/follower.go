package repl

import (
	"bufio"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/recovery"
	"plp/internal/wal"
	"plp/wire"
)

// Follower-side tunables.
const (
	// DefaultRetryInterval paces reconnect attempts after a dropped stream.
	DefaultRetryInterval = 500 * time.Millisecond
	// refusedRetryInterval paces retries after an explicit subscription
	// refusal (epoch mismatch, truncated start): the condition is unlikely
	// to clear on its own, so back off hard.
	refusedRetryInterval = 5 * time.Second
	// dialTimeout bounds connect + handshake + subscribe.
	dialTimeout = 3 * time.Second
)

// FollowerOptions configures a follower's replication loop.
type FollowerOptions struct {
	// Primary is the primary's listen address.
	Primary string
	// Token authenticates the subscription (the primary's full token:
	// receiving the write stream is a write-privileged operation).
	Token string
	// Dir is the data directory holding repl.state.
	Dir string
	// NodeID is this follower's stable identity, sent with every
	// subscription so the primary's replica-ack quorum counts physical
	// nodes, not connections, and a reconnect evicts the node's half-open
	// previous subscription.  Defaults to Dir.
	NodeID string
	// Log is the follower's local durable log; shipped records are
	// appended to it verbatim.
	Log *wal.Durable
	// Apply commits a replicated transaction's operations into the live
	// engine (engine.ApplyReplicated).
	Apply func(ops []recovery.Op) error
	// Reseed, when set, discards the follower's local state — engine
	// contents and the local log — and restarts the log at start, so an
	// incoming SEED stream rebuilds the replica from scratch
	// (engine.ResetForSeed).  A primary offering a seed to a follower
	// without it is a hard error: the follower cannot follow that lineage.
	Reseed func(start wal.LSN) error
	// TLSConfig, when set, wraps the replication connection in TLS.
	TLSConfig *tls.Config
	// RetryInterval overrides the reconnect pacing (tests).
	RetryInterval time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Follower runs the replication receive loop: subscribe from the local
// durable LSN, persist and apply shipped batches, ack progress, reconnect
// with resubscription on stream loss.
type Follower struct {
	o       FollowerOptions
	applier *Applier
	epoch   atomic.Uint64

	mu   sync.Mutex
	conn net.Conn // live stream connection, for Stop to sever

	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool

	connected   atomic.Bool
	refused     atomic.Bool
	lastErr     atomic.Pointer[string]
	batches     atomic.Uint64
	records     atomic.Uint64
	reseeds     atomic.Uint64
	lastContact atomic.Int64 // unixnano of the last frame from the primary

	// seedTarget is non-zero while a re-seed is incomplete: the local
	// engine was wiped and has not yet re-applied every record below the
	// target, so its state is NOT a consistent replica and must not serve
	// reads.  Persisted (seed.state) so a crash mid-seed resumes refusing.
	seedTarget atomic.Uint64
}

// NewFollower builds a follower over an engine that has already completed
// restart recovery on Log's directory.  It analyzes the local log once to
// seed the applier's in-flight transaction buffers (a transaction whose
// ops landed before the follower's durable horizon but whose commit record
// arrives on the resumed stream must still apply).
func NewFollower(o FollowerOptions) (*Follower, error) {
	if o.Log == nil || o.Apply == nil {
		return nil, errors.New("repl: follower needs a durable log and an apply function")
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = DefaultRetryInterval
	}
	if o.NodeID == "" {
		o.NodeID = o.Dir
	}
	f := &Follower{
		o:       o,
		applier: NewApplier(o.Apply),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if o.Dir != "" {
		epoch, _, err := ReadEpoch(o.Dir)
		if err != nil {
			return nil, err
		}
		f.epoch.Store(epoch)
		target, ok, err := ReadSeedTarget(o.Dir)
		if err != nil {
			return nil, err
		}
		if ok {
			f.seedTarget.Store(target)
		}
	}
	an, err := recovery.Analyze(o.Log)
	if err != nil {
		return nil, fmt.Errorf("repl: bootstrap analysis: %w", err)
	}
	f.applier.Bootstrap(an)
	f.applier.SetAppliedLSN(o.Log.DurableLSN())
	return f, nil
}

// Epoch returns the follower's current replication epoch (0 until it first
// adopts a primary's).
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// PrimaryAddr returns the address currently being followed.
func (f *Follower) PrimaryAddr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.o.Primary
}

// SetPrimary repoints the follower at a new primary address (failover
// chasing a promotion).  Any live stream is severed so the next connect
// attempt goes to the new address.
func (f *Follower) SetPrimary(addr string) {
	f.mu.Lock()
	if f.o.Primary == addr {
		f.mu.Unlock()
		return
	}
	f.o.Primary = addr
	conn := f.conn
	f.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// Seeding reports whether the follower is inside an incomplete re-seed:
// its engine was wiped and has not yet re-applied the seed phase, so its
// state is not a consistent replica.  The serving layer refuses reads
// while this is true, so clients fall through to a healthy member.
func (f *Follower) Seeding() bool {
	target := f.seedTarget.Load()
	return target != 0 && uint64(f.applier.AppliedLSN()) < target
}

// clearSeeding marks the re-seed complete and removes the persisted
// marker.
func (f *Follower) clearSeeding() {
	if f.seedTarget.Swap(0) == 0 {
		return
	}
	if f.o.Dir != "" {
		if err := ClearSeedTarget(f.o.Dir); err != nil {
			f.logf("repl: clearing seed marker: %v", err)
		}
	}
}

// SinceContact returns how long ago the last frame arrived from the
// primary (a very large duration before first contact).  The cluster lease
// monitor reads it: heartbeats refresh it even when no records flow.
func (f *Follower) SinceContact() time.Duration {
	at := f.lastContact.Load()
	if at == 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Since(time.Unix(0, at))
}

// Start launches the replication loop.
func (f *Follower) Start() {
	if f.started.Swap(true) {
		return
	}
	go f.run()
}

// Stop terminates the loop and severs any live stream.  Idempotent; safe
// before Start (the loop just never runs).
func (f *Follower) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.mu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
	if f.started.Load() {
		<-f.done
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.o.Logf != nil {
		f.o.Logf(format, args...)
	}
}

func (f *Follower) setErr(err error) {
	if err == nil {
		f.lastErr.Store(nil)
		return
	}
	msg := err.Error()
	f.lastErr.Store(&msg)
}

func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		refused, err := f.streamOnce()
		f.connected.Store(false)
		if err != nil {
			f.setErr(err)
			f.logf("repl: stream to %s: %v", f.PrimaryAddr(), err)
		}
		f.refused.Store(refused)
		wait := f.o.RetryInterval
		if refused {
			wait = refusedRetryInterval
		}
		select {
		case <-f.stop:
			return
		case <-time.After(wait):
		}
	}
}

// streamOnce runs one connect → subscribe → receive cycle.  refused=true
// means the primary explicitly rejected the subscription (retry slowly).
func (f *Follower) streamOnce() (refused bool, err error) {
	primary := f.PrimaryAddr()
	nc, err := net.DialTimeout("tcp", primary, dialTimeout)
	if err != nil {
		return false, err
	}
	var conn net.Conn = nc
	if f.o.TLSConfig != nil {
		cfg := f.o.TLSConfig
		if cfg.ServerName == "" && !cfg.InsecureSkipVerify {
			// The primary address changes across repoints; derive the
			// verification name from wherever we are dialing now.
			if host, _, herr := net.SplitHostPort(primary); herr == nil {
				cfg = cfg.Clone()
				cfg.ServerName = host
			}
		}
		conn = tls.Client(nc, cfg)
	}
	f.mu.Lock()
	select {
	case <-f.stop:
		f.mu.Unlock()
		_ = conn.Close()
		return false, nil
	default:
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		if f.conn == conn {
			f.conn = nil
		}
		f.mu.Unlock()
		_ = conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))

	// Handshake: full-token V3 session.
	hello := &wire.Hello{MaxVersion: wire.V3, Token: []byte(f.o.Token)}
	if err := wire.WriteFrame(conn, wire.EncodeHello(hello)); err != nil {
		return false, err
	}
	payload, err := wire.ReadFrame(br)
	if err != nil {
		return false, err
	}
	if !wire.IsHelloAck(payload) {
		return false, errors.New("repl: primary is not a v2+ server")
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return false, err
	}
	if ack.Err != "" {
		return true, fmt.Errorf("repl: handshake refused: %s", ack.Err)
	}
	if ack.Version < wire.V3 {
		return true, fmt.Errorf("repl: primary speaks v%d, need v3", ack.Version)
	}

	// Subscribe from the local durable horizon.
	start := f.o.Log.DurableLSN()
	if err := wire.WriteFrame(conn, wire.EncodeReplSubscribe(1, uint64(start), f.epoch.Load(), f.o.NodeID)); err != nil {
		return false, err
	}
	payload, err = wire.ReadFrame(br)
	if err != nil {
		return false, err
	}
	resp, err := wire.DecodeResponseV(payload, wire.V3)
	if err != nil {
		return false, err
	}
	if resp.Err != "" {
		return wire.IsReplRefused(resp.Err), fmt.Errorf("repl: subscribe: %s", resp.Err)
	}
	if len(resp.Results) == 0 {
		return false, errors.New("repl: subscribe ack missing")
	}
	primaryEpoch, _, err := wire.DecodeReplSubscribeAck(resp.Results[0].Value)
	if err != nil {
		return false, fmt.Errorf("repl: subscribe ack: %w", err)
	}
	seeded := wire.ReplSubscribeAckSeeded(resp.Results[0].Value)
	if seeded {
		// The primary is replacing this node's history wholesale; the first
		// stream frame (SEED-BEGIN) carries the new start.  Epoch adoption
		// happens after the local reset succeeds.
		if f.o.Reseed == nil {
			return true, errors.New("repl: primary requires a re-seed but no reseed hook is configured")
		}
		// Never accept a seed from an older lineage: a fenced ex-primary
		// that still thinks it leads would wipe this node's newer committed
		// history.  (The primary-side epoch check refuses this too; this is
		// the follower's own fence.)
		if cur := f.epoch.Load(); primaryEpoch < cur {
			return true, fmt.Errorf("repl: refusing seed from stale primary (its epoch %d < local %d)", primaryEpoch, cur)
		}
	} else if cur := f.epoch.Load(); cur == 0 {
		f.epoch.Store(primaryEpoch)
		if f.o.Dir != "" {
			if werr := WriteEpoch(f.o.Dir, primaryEpoch); werr != nil {
				return false, fmt.Errorf("repl: persisting epoch: %w", werr)
			}
		}
	} else if cur != primaryEpoch {
		return true, fmt.Errorf("repl: primary epoch changed mid-lineage: have %d, got %d", cur, primaryEpoch)
	}

	if seeded {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return false, err
		}
		fr, err := wire.DecodeFrameV3(payload)
		if err != nil {
			return false, err
		}
		if fr.Kind != wire.FrameReplSeedBegin {
			return false, fmt.Errorf("repl: expected SEED-BEGIN, got frame kind %d", fr.Kind)
		}
		seedStart := wal.LSN(fr.SeedStart)
		f.logf("repl: re-seeding from %s: restart at LSN %d, seed target %d (epoch %d)", primary, fr.SeedStart, fr.SeedTarget, primaryEpoch)
		// Mark the seed incomplete BEFORE wiping anything: from the first
		// destroyed byte until the seed phase has fully re-applied, this
		// node's state is not a replica and reads must be refused — across
		// stream reconnects and process restarts (hence the on-disk marker).
		if f.o.Dir != "" {
			if werr := WriteSeedTarget(f.o.Dir, fr.SeedTarget); werr != nil {
				return false, fmt.Errorf("repl: persisting seed marker: %w", werr)
			}
		}
		f.seedTarget.Store(fr.SeedTarget)
		if err := f.o.Reseed(seedStart); err != nil {
			return false, fmt.Errorf("repl: local reset for seed: %w", err)
		}
		f.applier.Discard()
		f.applier.SetAppliedLSN(seedStart)
		f.epoch.Store(primaryEpoch)
		if f.o.Dir != "" {
			if werr := WriteEpoch(f.o.Dir, primaryEpoch); werr != nil {
				return false, fmt.Errorf("repl: persisting seeded epoch: %w", werr)
			}
		}
		f.reseeds.Add(1)
		start = seedStart
	}

	_ = conn.SetDeadline(time.Time{})
	f.connected.Store(true)
	f.setErr(nil)
	f.lastContact.Store(time.Now().UnixNano())
	f.logf("repl: following %s from LSN %d (epoch %d)", primary, start, f.epoch.Load())

	// Receive loop: persist, apply, ack.  Heartbeats and SEED-END markers
	// are acked too — the ack doubles as the lease refresh on the primary's
	// side of the connection.
	var ackSeq uint64
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return false, err
		}
		fr, err := wire.DecodeFrameV3(payload)
		if err != nil {
			return false, err
		}
		f.lastContact.Store(time.Now().UnixNano())
		switch fr.Kind {
		case wire.FrameReplRecords:
			recs := make([]wal.Record, 0, len(fr.ReplRecords))
			for _, blob := range fr.ReplRecords {
				rec, err := wal.UnmarshalRecord(blob)
				if err != nil {
					return false, fmt.Errorf("repl: corrupt shipped record: %w", err)
				}
				recs = append(recs, rec)
			}
			if err := f.o.Log.AppendShipped(recs); err != nil {
				return false, err
			}
			f.o.Log.Flush(f.o.Log.CurrentLSN())
			if err := f.applier.Feed(recs); err != nil {
				return false, err
			}
			f.batches.Add(1)
			f.records.Add(uint64(len(recs)))
			// A seed interrupted mid-stream resumes as an ordinary
			// subscription (no second SEED-END), so completion is also
			// detected by the applied horizon crossing the recorded target.
			if t := f.seedTarget.Load(); t != 0 && uint64(f.applier.AppliedLSN()) >= t {
				f.clearSeeding()
				f.logf("repl: seed from %s complete at LSN %d", primary, f.o.Log.DurableLSN())
			}
		case wire.FrameReplHeartbeat:
			// Nothing to persist; fall through to the ack, which refreshes
			// the primary's view of this follower.
		case wire.FrameReplSeedEnd:
			f.clearSeeding()
			f.logf("repl: seed from %s complete at LSN %d", primary, f.o.Log.DurableLSN())
		default:
			return false, fmt.Errorf("repl: unexpected frame kind %d on stream", fr.Kind)
		}
		ackSeq++
		ackPayload := wire.EncodeReplAck(ackSeq, uint64(f.applier.AppliedLSN()), uint64(f.o.Log.DurableLSN()))
		if err := wire.WriteFrame(conn, ackPayload); err != nil {
			return false, err
		}
	}
}

// Promote turns the follower into a primary lineage: stop the stream, drop
// in-flight (uncommitted) transaction buffers, bump and persist the
// replication epoch.  The caller flips the serving layer (accept writes,
// install a Primary hub at the returned epoch, bump shard incarnation).
func (f *Follower) Promote() (uint64, error) {
	f.Stop()
	f.applier.Discard()
	newEpoch := f.epoch.Load() + 1
	if f.o.Dir != "" {
		if err := WriteEpoch(f.o.Dir, newEpoch); err != nil {
			return 0, fmt.Errorf("repl: persisting promoted epoch: %w", err)
		}
	}
	f.epoch.Store(newEpoch)
	return newEpoch, nil
}

// FollowerNodeStatus is the follower snapshot feeding expvar and `plpctl
// repl status`.
type FollowerNodeStatus struct {
	Primary    string
	Epoch      uint64
	Connected  bool
	Refused    bool
	LastError  string
	DurableLSN uint64
	Batches    uint64
	Records    uint64
	Reseeds    uint64
	// Seeding reports an incomplete re-seed: the local state is not a
	// consistent replica and reads are being refused.
	Seeding bool
	// SinceContactMS is the time since the last frame from the primary, in
	// milliseconds (-1 before first contact).
	SinceContactMS int64
	Applier        ApplierStatus
}

// Status returns a snapshot of follower progress.
func (f *Follower) Status() FollowerNodeStatus {
	st := FollowerNodeStatus{
		Primary:        f.PrimaryAddr(),
		Epoch:          f.epoch.Load(),
		Connected:      f.connected.Load(),
		Refused:        f.refused.Load(),
		DurableLSN:     uint64(f.o.Log.DurableLSN()),
		Batches:        f.batches.Load(),
		Records:        f.records.Load(),
		Reseeds:        f.reseeds.Load(),
		Seeding:        f.Seeding(),
		SinceContactMS: -1,
		Applier:        f.applier.Status(),
	}
	if f.lastContact.Load() != 0 {
		st.SinceContactMS = f.SinceContact().Milliseconds()
	}
	if msg := f.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}
