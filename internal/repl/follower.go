package repl

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/recovery"
	"plp/internal/wal"
	"plp/wire"
)

// Follower-side tunables.
const (
	// DefaultRetryInterval paces reconnect attempts after a dropped stream.
	DefaultRetryInterval = 500 * time.Millisecond
	// refusedRetryInterval paces retries after an explicit subscription
	// refusal (epoch mismatch, truncated start): the condition is unlikely
	// to clear on its own, so back off hard.
	refusedRetryInterval = 5 * time.Second
	// dialTimeout bounds connect + handshake + subscribe.
	dialTimeout = 3 * time.Second
)

// FollowerOptions configures a follower's replication loop.
type FollowerOptions struct {
	// Primary is the primary's listen address.
	Primary string
	// Token authenticates the subscription (the primary's full token:
	// receiving the write stream is a write-privileged operation).
	Token string
	// Dir is the data directory holding repl.state.
	Dir string
	// Log is the follower's local durable log; shipped records are
	// appended to it verbatim.
	Log *wal.Durable
	// Apply commits a replicated transaction's operations into the live
	// engine (engine.ApplyReplicated).
	Apply func(ops []recovery.Op) error
	// RetryInterval overrides the reconnect pacing (tests).
	RetryInterval time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Follower runs the replication receive loop: subscribe from the local
// durable LSN, persist and apply shipped batches, ack progress, reconnect
// with resubscription on stream loss.
type Follower struct {
	o       FollowerOptions
	applier *Applier
	epoch   atomic.Uint64

	mu   sync.Mutex
	conn net.Conn // live stream connection, for Stop to sever

	stop    chan struct{}
	done    chan struct{}
	started atomic.Bool

	connected atomic.Bool
	refused   atomic.Bool
	lastErr   atomic.Pointer[string]
	batches   atomic.Uint64
	records   atomic.Uint64
}

// NewFollower builds a follower over an engine that has already completed
// restart recovery on Log's directory.  It analyzes the local log once to
// seed the applier's in-flight transaction buffers (a transaction whose
// ops landed before the follower's durable horizon but whose commit record
// arrives on the resumed stream must still apply).
func NewFollower(o FollowerOptions) (*Follower, error) {
	if o.Log == nil || o.Apply == nil {
		return nil, errors.New("repl: follower needs a durable log and an apply function")
	}
	if o.RetryInterval <= 0 {
		o.RetryInterval = DefaultRetryInterval
	}
	f := &Follower{
		o:       o,
		applier: NewApplier(o.Apply),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if o.Dir != "" {
		epoch, _, err := ReadEpoch(o.Dir)
		if err != nil {
			return nil, err
		}
		f.epoch.Store(epoch)
	}
	an, err := recovery.Analyze(o.Log)
	if err != nil {
		return nil, fmt.Errorf("repl: bootstrap analysis: %w", err)
	}
	f.applier.Bootstrap(an)
	f.applier.SetAppliedLSN(o.Log.DurableLSN())
	return f, nil
}

// Epoch returns the follower's current replication epoch (0 until it first
// adopts a primary's).
func (f *Follower) Epoch() uint64 { return f.epoch.Load() }

// Start launches the replication loop.
func (f *Follower) Start() {
	if f.started.Swap(true) {
		return
	}
	go f.run()
}

// Stop terminates the loop and severs any live stream.  Idempotent; safe
// before Start (the loop just never runs).
func (f *Follower) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.mu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
	if f.started.Load() {
		<-f.done
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.o.Logf != nil {
		f.o.Logf(format, args...)
	}
}

func (f *Follower) setErr(err error) {
	if err == nil {
		f.lastErr.Store(nil)
		return
	}
	msg := err.Error()
	f.lastErr.Store(&msg)
}

func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		refused, err := f.streamOnce()
		f.connected.Store(false)
		if err != nil {
			f.setErr(err)
			f.logf("repl: stream to %s: %v", f.o.Primary, err)
		}
		f.refused.Store(refused)
		wait := f.o.RetryInterval
		if refused {
			wait = refusedRetryInterval
		}
		select {
		case <-f.stop:
			return
		case <-time.After(wait):
		}
	}
}

// streamOnce runs one connect → subscribe → receive cycle.  refused=true
// means the primary explicitly rejected the subscription (retry slowly).
func (f *Follower) streamOnce() (refused bool, err error) {
	conn, err := net.DialTimeout("tcp", f.o.Primary, dialTimeout)
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	select {
	case <-f.stop:
		f.mu.Unlock()
		_ = conn.Close()
		return false, nil
	default:
	}
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.mu.Lock()
		if f.conn == conn {
			f.conn = nil
		}
		f.mu.Unlock()
		_ = conn.Close()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))

	// Handshake: full-token V3 session.
	hello := &wire.Hello{MaxVersion: wire.V3, Token: []byte(f.o.Token)}
	if err := wire.WriteFrame(conn, wire.EncodeHello(hello)); err != nil {
		return false, err
	}
	payload, err := wire.ReadFrame(br)
	if err != nil {
		return false, err
	}
	if !wire.IsHelloAck(payload) {
		return false, errors.New("repl: primary is not a v2+ server")
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		return false, err
	}
	if ack.Err != "" {
		return true, fmt.Errorf("repl: handshake refused: %s", ack.Err)
	}
	if ack.Version < wire.V3 {
		return true, fmt.Errorf("repl: primary speaks v%d, need v3", ack.Version)
	}

	// Subscribe from the local durable horizon.
	start := f.o.Log.DurableLSN()
	if err := wire.WriteFrame(conn, wire.EncodeReplSubscribe(1, uint64(start), f.epoch.Load())); err != nil {
		return false, err
	}
	payload, err = wire.ReadFrame(br)
	if err != nil {
		return false, err
	}
	resp, err := wire.DecodeResponseV(payload, wire.V3)
	if err != nil {
		return false, err
	}
	if resp.Err != "" {
		return wire.IsReplRefused(resp.Err), fmt.Errorf("repl: subscribe: %s", resp.Err)
	}
	if len(resp.Results) == 0 {
		return false, errors.New("repl: subscribe ack missing")
	}
	primaryEpoch, _, err := wire.DecodeReplSubscribeAck(resp.Results[0].Value)
	if err != nil {
		return false, fmt.Errorf("repl: subscribe ack: %w", err)
	}
	if cur := f.epoch.Load(); cur == 0 {
		f.epoch.Store(primaryEpoch)
		if f.o.Dir != "" {
			if werr := WriteEpoch(f.o.Dir, primaryEpoch); werr != nil {
				return false, fmt.Errorf("repl: persisting epoch: %w", werr)
			}
		}
	} else if cur != primaryEpoch {
		return true, fmt.Errorf("repl: primary epoch changed mid-lineage: have %d, got %d", cur, primaryEpoch)
	}

	_ = conn.SetDeadline(time.Time{})
	f.connected.Store(true)
	f.setErr(nil)
	f.logf("repl: following %s from LSN %d (epoch %d)", f.o.Primary, start, primaryEpoch)

	// Receive loop: persist, apply, ack.
	var ackSeq uint64
	for {
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return false, err
		}
		fr, err := wire.DecodeFrameV3(payload)
		if err != nil {
			return false, err
		}
		if fr.Kind != wire.FrameReplRecords {
			return false, fmt.Errorf("repl: unexpected frame kind %d on stream", fr.Kind)
		}
		recs := make([]wal.Record, 0, len(fr.ReplRecords))
		for _, blob := range fr.ReplRecords {
			rec, err := wal.UnmarshalRecord(blob)
			if err != nil {
				return false, fmt.Errorf("repl: corrupt shipped record: %w", err)
			}
			recs = append(recs, rec)
		}
		if err := f.o.Log.AppendShipped(recs); err != nil {
			return false, err
		}
		f.o.Log.Flush(f.o.Log.CurrentLSN())
		if err := f.applier.Feed(recs); err != nil {
			return false, err
		}
		f.batches.Add(1)
		f.records.Add(uint64(len(recs)))
		ackSeq++
		ackPayload := wire.EncodeReplAck(ackSeq, uint64(f.applier.AppliedLSN()), uint64(f.o.Log.DurableLSN()))
		if err := wire.WriteFrame(conn, ackPayload); err != nil {
			return false, err
		}
	}
}

// Promote turns the follower into a primary lineage: stop the stream, drop
// in-flight (uncommitted) transaction buffers, bump and persist the
// replication epoch.  The caller flips the serving layer (accept writes,
// install a Primary hub at the returned epoch, bump shard incarnation).
func (f *Follower) Promote() (uint64, error) {
	f.Stop()
	f.applier.Discard()
	newEpoch := f.epoch.Load() + 1
	if f.o.Dir != "" {
		if err := WriteEpoch(f.o.Dir, newEpoch); err != nil {
			return 0, fmt.Errorf("repl: persisting promoted epoch: %w", err)
		}
	}
	f.epoch.Store(newEpoch)
	return newEpoch, nil
}

// FollowerNodeStatus is the follower snapshot feeding expvar and `plpctl
// repl status`.
type FollowerNodeStatus struct {
	Primary    string
	Epoch      uint64
	Connected  bool
	Refused    bool
	LastError  string
	DurableLSN uint64
	Batches    uint64
	Records    uint64
	Applier    ApplierStatus
}

// Status returns a snapshot of follower progress.
func (f *Follower) Status() FollowerNodeStatus {
	st := FollowerNodeStatus{
		Primary:    f.o.Primary,
		Epoch:      f.epoch.Load(),
		Connected:  f.connected.Load(),
		Refused:    f.refused.Load(),
		DurableLSN: uint64(f.o.Log.DurableLSN()),
		Batches:    f.batches.Load(),
		Records:    f.records.Load(),
		Applier:    f.applier.Status(),
	}
	if msg := f.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}
