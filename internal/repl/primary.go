package repl

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/wal"
	"plp/wire"
)

// Primary-side tunables.
const (
	// DefaultBatchBytes bounds the encoded record bytes per REPL-RECORDS
	// frame — well under wire.MaxFrameSize with room for framing.
	DefaultBatchBytes = 1 << 20
	// DefaultAckTimeout bounds how long a replica-acked commit waits for a
	// follower before reporting the commit's replication as uncertain.
	DefaultAckTimeout = 5 * time.Second
	// ackHistBuckets is the number of log2-microsecond latency buckets.
	ackHistBuckets = 32
	// ackSampleEvery is the 1-in-N sampling rate for ack-wait latencies,
	// matching the executor's 1-in-64 accounting.
	ackSampleEvery = 64
)

// ErrSubscriptionClosed is returned by Subscription.Next after Close.
var ErrSubscriptionClosed = fmt.Errorf("repl: subscription closed")

// ErrNoFollower is wrapped by WaitReplicated timeouts.  The commit it
// reports on IS durable locally — only its replication is unconfirmed.
var ErrNoFollower = fmt.Errorf("repl: commit not acknowledged by enough followers")

// Primary is the primary-side replication hub: it tracks subscribed
// followers, hands each one a cursor over the durable log, and implements
// the replica-acked commit wait.
type Primary struct {
	log        *wal.Durable
	epoch      uint64
	batchBytes int
	ackTimeout time.Duration

	mu     sync.Mutex
	cond   *sync.Cond // broadcast whenever any follower's ack advances
	subs   map[int]*Subscription
	seq    int
	quorum int // k in k-of-n replica acks (distinct subscribers)
	// maxAcked is the highest durable LSN acked by any follower;
	// quorumAcked is the highest LSN acked by ≥ quorum distinct
	// subscribers.  Both are monotonic: a departing follower never takes
	// back an acknowledgement it already gave, so guarantees reported to
	// committers cannot regress when the population shrinks.
	maxAcked    uint64
	quorumAcked uint64

	ackWaits    atomic.Uint64
	ackTimeouts atomic.Uint64
	waitSeq     atomic.Uint64
	ackHist     [ackHistBuckets]atomic.Uint64 // sampled wait latency, log2(µs)
}

// NewPrimary builds the replication hub over the durable log at the given
// replication epoch.
func NewPrimary(log *wal.Durable, epoch uint64) *Primary {
	p := &Primary{
		log:        log,
		epoch:      epoch,
		batchBytes: DefaultBatchBytes,
		ackTimeout: DefaultAckTimeout,
		quorum:     1,
		subs:       make(map[int]*Subscription),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Epoch returns the primary's replication epoch.
func (p *Primary) Epoch() uint64 { return p.epoch }

// DurableLSN returns the primary log's durable horizon.
func (p *Primary) DurableLSN() wal.LSN { return p.log.DurableLSN() }

// SetAckTimeout overrides the replica-ack wait bound (testing and tuning).
func (p *Primary) SetAckTimeout(d time.Duration) { p.ackTimeout = d }

// SetAckQuorum sets k for k-of-n replica-acked commit: WaitReplicated
// returns once k distinct subscribers have a commit durable.  k < 1 is
// clamped to 1 (the PR 7 any-one-follower behaviour).
func (p *Primary) SetAckQuorum(k int) {
	if k < 1 {
		k = 1
	}
	p.mu.Lock()
	p.quorum = k
	p.cond.Broadcast()
	p.mu.Unlock()
}

// AckQuorum returns the configured k.
func (p *Primary) AckQuorum() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quorum
}

// Subscription is one follower's stream state: a cursor over the primary's
// log, a retention pin that trails the follower's acks, and the follower's
// reported progress.
type Subscription struct {
	p      *Primary
	id     int
	node   string // stable follower identity ("" from pre-node subscribers)
	remote string
	since  time.Time
	start  wal.LSN
	cursor wal.LSN // next LSN to ship (streamer goroutine only)
	pin    int

	// seed marks a subscription accepted via re-seed: the stream restarts
	// at seedStart (the oldest retained LSN) and every record below
	// seedTarget belongs to the seed phase.
	seed       bool
	seedStart  wal.LSN
	seedTarget wal.LSN

	acked   atomic.Uint64 // follower's durable LSN
	applied atomic.Uint64 // follower's applied LSN
	closed  atomic.Bool
}

// Seeding reports whether this subscription re-seeds the follower, and the
// seed phase bounds when it does.
func (s *Subscription) Seeding() (start, target wal.LSN, ok bool) {
	return s.seedStart, s.seedTarget, s.seed
}

// Subscribe validates and registers a follower.  start is the LSN the
// stream must begin at (the follower's durable horizon); followerEpoch is
// the epoch the follower last followed (0 = fresh, adopts ours); node is
// the follower's stable identity ("" from pre-node subscribers).  Refusals
// carry the wire.ReplRefusedPrefix so they travel as-is in a response Err.
func (p *Primary) Subscribe(start wal.LSN, followerEpoch uint64, node, remote string) (*Subscription, error) {
	if followerEpoch != 0 && followerEpoch != p.epoch {
		return nil, fmt.Errorf("%s: replication epoch mismatch: subscriber at %d, primary at %d (stale lineage; re-seed required)",
			wire.ReplRefusedPrefix, followerEpoch, p.epoch)
	}
	if durable := p.log.DurableLSN(); start > durable {
		return nil, fmt.Errorf("%s: subscriber log ahead of primary (start %d > durable %d); diverged lineage",
			wire.ReplRefusedPrefix, start, durable)
	}
	if oldest := p.log.OldestLSN(); start < oldest {
		return nil, fmt.Errorf("%s: start LSN %d precedes oldest retained %d; re-seed required",
			wire.ReplRefusedPrefix, start, oldest)
	}
	return p.register(start, node, remote, false), nil
}

// SubscribeOrSeed registers a follower like Subscribe, but converts the
// refusals that mean the subscriber is BEHIND this lineage — a stale
// (lower) epoch, a diverged (ahead-of-durable) same-epoch log, or a start
// LSN older than the retained prefix — into a seed subscription: the
// stream restarts at the oldest retained LSN, the records up to the
// durable horizon captured here form the seed phase, and the follower is
// expected to discard its local state before applying them.  Sequential
// replay of the retained prefix always reconstructs a faithful replica
// because truncation only ever advances to a checkpoint's BeginLSN: the
// prefix starts with a complete checkpoint image, and the log records
// after it replay in causal order.
//
// A subscriber reporting a NEWER epoch is still refused outright: it
// followed a lineage that fenced this primary, so this node is the stale
// one — seeding (wiping) the up-to-date follower would destroy the newer
// lineage's committed data.  The refusal tells this node to demote, not
// the follower to reset.
func (p *Primary) SubscribeOrSeed(start wal.LSN, followerEpoch uint64, node, remote string) (*Subscription, error) {
	if followerEpoch > p.epoch {
		return nil, fmt.Errorf("%s: subscriber epoch %d is newer than this primary's %d; this node is the fenced lineage and must not seed",
			wire.ReplRefusedPrefix, followerEpoch, p.epoch)
	}
	if s, err := p.Subscribe(start, followerEpoch, node, remote); err == nil {
		return s, nil
	}
	return p.register(p.log.OldestLSN(), node, remote, true), nil
}

// register builds and registers a subscription starting (and pinned) at
// start.  Seed subscriptions capture the durable horizon as the seed
// target; a target at or below start (empty retained log) means the seed
// phase is empty and SEED-END follows SEED-BEGIN immediately.  A
// resubscription from an already-subscribed node evicts the node's
// previous subscription (a crash or partition can leave it half-open for
// a TCP timeout), so one physical node never holds two live entries.
func (p *Primary) register(start wal.LSN, node, remote string, seed bool) *Subscription {
	s := &Subscription{p: p, node: node, remote: remote, since: time.Now(), start: start, cursor: start}
	if seed {
		s.seed = true
		s.seedStart = start
		s.seedTarget = p.log.DurableLSN()
	}
	s.acked.Store(uint64(start))
	s.applied.Store(uint64(start))
	s.pin = p.log.Pin(start)
	var evicted *Subscription
	p.mu.Lock()
	if node != "" {
		for _, old := range p.subs {
			if old.node == node {
				evicted = old
				break
			}
		}
	}
	p.seq++
	s.id = p.seq
	p.subs[s.id] = s
	p.mu.Unlock()
	if evicted != nil {
		// Close outside p.mu (Close re-locks it).  The evicted streamer's
		// next cursor read fails with ErrSubscriptionClosed, severing the
		// stale connection.
		evicted.Close()
	}
	return s
}

// Next blocks until at least one durable record past the cursor exists,
// then returns the next batch (bounded by the primary's batch size) and
// advances the cursor.  stop aborts the wait at the next durability
// wake-up or within one poll interval.
func (s *Subscription) Next(stop <-chan struct{}) ([]wal.Record, error) {
	for {
		if s.closed.Load() {
			return nil, ErrSubscriptionClosed
		}
		select {
		case <-stop:
			return nil, ErrSubscriptionClosed
		default:
		}
		recs, err := s.p.log.ReadDurable(s.cursor, s.p.batchBytes)
		if err != nil {
			return nil, err
		}
		if len(recs) > 0 {
			last := recs[len(recs)-1]
			s.cursor = last.LSN + wal.LSN(last.EncodedSize())
			return recs, nil
		}
		// Caught up: sleep on the group-commit wake-up, abortable by stop.
		// The helper goroutine parks in WaitDurable so Next itself can
		// return promptly on stop; at most one lingers per subscription
		// until the next append or log close wakes it.
		cursor := s.cursor
		woke := make(chan struct{})
		go func() {
			s.p.log.WaitDurable(cursor)
			close(woke)
		}()
		select {
		case <-stop:
			return nil, ErrSubscriptionClosed
		case <-woke:
			if s.p.log.DurableLSN() <= cursor {
				// WaitDurable returns without progress only when the log is
				// closing; the short pause keeps that case from spinning.
				select {
				case <-stop:
					return nil, ErrSubscriptionClosed
				case <-time.After(10 * time.Millisecond):
				}
			}
		}
	}
}

// UpdateAck records the follower's progress report, advances its retention
// pin, recomputes the quorum watermark, and wakes replica-acked
// committers.
func (s *Subscription) UpdateAck(applied, durable uint64) {
	s.applied.Store(applied)
	s.acked.Store(durable)
	s.p.log.UpdatePin(s.pin, wal.LSN(durable))
	p := s.p
	p.mu.Lock()
	if durable > p.maxAcked {
		p.maxAcked = durable
	}
	// Quorum watermark: the k-th highest durable LSN among live
	// subscribers.  Only ever raised — a follower that later disappears
	// does not retract the stable copies it reported, so commits already
	// acknowledged at quorum stay acknowledged.
	if q := p.kthAckedLocked(); q > p.quorumAcked {
		p.quorumAcked = q
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// kthAckedLocked returns the quorum-th highest acked LSN among the live
// follower NODES (0 when fewer than quorum nodes exist).  Subscriptions
// sharing a node identity collapse to that node's best ack — registration
// evicts same-node duplicates, but until the eviction lands two live subs
// for one node must not count as two stable copies.  Pre-node subscribers
// (empty identity) each count as their own node.  Caller holds p.mu.
func (p *Primary) kthAckedLocked() uint64 {
	acked := make([]uint64, 0, len(p.subs))
	byNode := make(map[string]int, len(p.subs))
	for _, s := range p.subs {
		a := s.acked.Load()
		if s.node != "" {
			if i, ok := byNode[s.node]; ok {
				if a > acked[i] {
					acked[i] = a
				}
				continue
			}
			byNode[s.node] = len(acked)
		}
		acked = append(acked, a)
	}
	if len(acked) < p.quorum {
		return 0
	}
	// Selection by repeated max is fine: follower counts are single-digit.
	var kth uint64
	for i := 0; i < p.quorum; i++ {
		hi, at := uint64(0), 0
		for j, a := range acked {
			if a >= hi {
				hi, at = a, j
			}
		}
		kth = hi
		acked = append(acked[:at], acked[at+1:]...)
	}
	return kth
}

// Close deregisters the subscription and releases its retention pin.  Safe
// to call more than once.
func (s *Subscription) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.p.log.Unpin(s.pin)
	s.p.mu.Lock()
	delete(s.p.subs, s.id)
	// Wake committers so they re-observe the follower population.
	s.p.cond.Broadcast()
	s.p.mu.Unlock()
}

// WaitReplicated blocks until the configured quorum of distinct followers
// have the record appended at lsn on stable storage, or the ack timeout
// elapses.  It is the replica-acked commit hook installed on txn.Manager:
// a nil return means the commit record is durable on ≥ quorum followers.
func (p *Primary) WaitReplicated(lsn wal.LSN) error {
	p.ackWaits.Add(1)
	begin := time.Now()
	deadline := begin.Add(p.ackTimeout)
	timer := time.AfterFunc(p.ackTimeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()

	p.mu.Lock()
	for p.quorumAcked <= uint64(lsn) {
		if time.Now().After(deadline) {
			quorum := p.quorum
			p.mu.Unlock()
			p.ackTimeouts.Add(1)
			return fmt.Errorf("%w: quorum %d not reached within %v (commit IS durable locally; replication unconfirmed)", ErrNoFollower, quorum, p.ackTimeout)
		}
		p.cond.Wait()
	}
	p.mu.Unlock()

	if p.waitSeq.Add(1)%ackSampleEvery == 0 {
		us := time.Since(begin).Microseconds()
		b := bits.Len64(uint64(us)) // log2 bucket; 0µs → bucket 0
		if b >= ackHistBuckets {
			b = ackHistBuckets - 1
		}
		p.ackHist[b].Add(1)
	}
	return nil
}

// FollowerStatus is one follower's progress snapshot.
type FollowerStatus struct {
	ID         int
	Node       string `json:",omitempty"`
	Remote     string
	Since      time.Time
	StartLSN   uint64
	AppliedLSN uint64
	AckedLSN   uint64
	LagBytes   uint64
	LagRecords int
	// Seeding reports a subscriber still inside its snapshot re-seed phase.
	Seeding bool
}

// PrimaryStatus is the hub snapshot feeding expvar and `plpctl repl
// status`.
type PrimaryStatus struct {
	Epoch       uint64
	DurableLSN  uint64
	OldestLSN   uint64
	AckQuorum   int
	QuorumAcked uint64
	Followers   []FollowerStatus
	AckWaits    uint64
	AckTimeouts uint64
	// AckWaitHistUS maps log2-microsecond bucket upper bounds to sampled
	// replica-ack wait counts (1-in-64 sampling; non-empty buckets only).
	AckWaitHistUS map[string]uint64
}

// Status returns a consistent snapshot of the hub.
func (p *Primary) Status() PrimaryStatus {
	durable := uint64(p.log.DurableLSN())
	st := PrimaryStatus{
		Epoch:       p.epoch,
		DurableLSN:  durable,
		OldestLSN:   uint64(p.log.OldestLSN()),
		AckWaits:    p.ackWaits.Load(),
		AckTimeouts: p.ackTimeouts.Load(),
	}
	p.mu.Lock()
	st.AckQuorum = p.quorum
	st.QuorumAcked = p.quorumAcked
	for _, s := range p.subs {
		acked := s.acked.Load()
		f := FollowerStatus{
			ID:         s.id,
			Node:       s.node,
			Remote:     s.remote,
			Since:      s.since,
			StartLSN:   uint64(s.start),
			AppliedLSN: s.applied.Load(),
			AckedLSN:   acked,
			Seeding:    s.seed && wal.LSN(s.applied.Load()) < s.seedTarget,
		}
		if durable > acked {
			f.LagBytes = durable - acked
			f.LagRecords = p.log.RecordsBetween(wal.LSN(acked), wal.LSN(durable))
		}
		st.Followers = append(st.Followers, f)
	}
	p.mu.Unlock()
	hist := make(map[string]uint64)
	for i := range p.ackHist {
		if n := p.ackHist[i].Load(); n > 0 {
			hist[fmt.Sprintf("le_%dus", uint64(1)<<i)] = n
		}
	}
	st.AckWaitHistUS = hist
	return st
}

// NumFollowers returns the live subscriber count.
func (p *Primary) NumFollowers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.subs)
}
