// Package repl implements WAL-shipping replication: a primary streams its
// durable log to followers, followers apply committed transactions into a
// live read-only engine, and a follower can be promoted to primary when
// the old primary dies.
//
// The design leans on two earlier decisions.  First, the durable WAL (PR 3)
// is already a byte-addressed, CRC-framed, torn-tail-truncating stream, so
// a follower's log is simply a byte-identical prefix of the primary's:
// LSNs agree on both sides, "subscribe from my durable LSN" is the whole
// resubscription protocol, and a promoted follower recovers with the same
// code path as a restarted primary.  Second, the logical recovery path
// (Analyze/ApplyOps) already turns log records into idempotent operations
// against a loading-mode engine, so the follower's live applier is a
// streaming incremental form of restart recovery.
//
// Epochs fence lineages: every data directory records the replication
// epoch it last followed (repl.state).  A primary only accepts subscribers
// at its own epoch (or fresh ones at epoch 0, which adopt it); promotion
// bumps the epoch, so a stale primary that comes back and tries to follow
// the new one is refused — its log may contain commits that were never
// shipped, i.e. a divergent tail.
package repl

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// StateFile is the name of the per-data-dir replication state record.
const StateFile = "repl.state"

// ReadEpoch loads the replication epoch recorded in dir.  Returns ok=false
// (no error) when the directory has never participated in replication.
func ReadEpoch(dir string) (uint64, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, StateFile))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "epoch" {
			epoch, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return 0, false, fmt.Errorf("repl: corrupt state file: %v", err)
			}
			return epoch, true, nil
		}
	}
	return 0, false, fmt.Errorf("repl: corrupt state file: no epoch line")
}

// WriteEpoch persists the replication epoch into dir atomically (write
// temp + rename), mirroring shard.WriteState.
func WriteEpoch(dir string, epoch uint64) error {
	body := fmt.Sprintf("epoch %d\n", epoch)
	tmp := filepath.Join(dir, StateFile+".tmp")
	if err := os.WriteFile(tmp, []byte(body), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, StateFile))
}

// SeedFile marks an in-progress snapshot re-seed: it records the LSN the
// seed phase must reach before the local state is a consistent replica
// again.  It is written before the local wipe and removed only once the
// seed completes, so a follower that crashes mid-seed keeps refusing
// reads after restart.
const SeedFile = "seed.state"

// ReadSeedTarget loads the in-progress seed target recorded in dir.
// Returns ok=false (no error) when no seed is in progress.
func ReadSeedTarget(dir string) (uint64, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, SeedFile))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	target, err := strconv.ParseUint(strings.TrimSpace(string(data)), 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("repl: corrupt seed marker: %v", err)
	}
	return target, true, nil
}

// WriteSeedTarget persists the seed-in-progress marker atomically.
func WriteSeedTarget(dir string, target uint64) error {
	tmp := filepath.Join(dir, SeedFile+".tmp")
	if err := os.WriteFile(tmp, []byte(fmt.Sprintf("%d\n", target)), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, SeedFile))
}

// ClearSeedTarget removes the seed-in-progress marker; clearing an absent
// marker is not an error.
func ClearSeedTarget(dir string) error {
	err := os.Remove(filepath.Join(dir, SeedFile))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
