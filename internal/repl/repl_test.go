package repl

import (
	"errors"
	"sync"
	"testing"
	"time"

	"plp/internal/logrec"
	"plp/internal/recovery"
	"plp/internal/wal"
	"plp/wire"
)

func newLog(t *testing.T) *wal.Durable {
	t.Helper()
	d, err := wal.NewDurable(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = d.Close() })
	return d
}

func appendTxn(t *testing.T, log *wal.Durable, txnID uint64, key, value string) wal.LSN {
	t.Helper()
	mod := logrec.Modification{Table: "kv", Key: []byte(key), After: []byte(value)}
	log.Append(&wal.Record{Txn: txnID, Type: wal.RecInsert, Payload: logrec.EncodeModification(mod)})
	lsn := log.Append(&wal.Record{Txn: txnID, Type: wal.RecCommit})
	log.Flush(log.CurrentLSN())
	return lsn
}

func TestSubscribeEpochRules(t *testing.T) {
	log := newLog(t)
	appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 7)

	// Fresh follower (epoch 0) accepted.
	s, err := p.Subscribe(1, 0, "n1", "f1")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Same-epoch follower accepted.
	s, err = p.Subscribe(1, 7, "n2", "f2")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Stale lineage (any other epoch) refused — this is the promoted
	// primary refusing a reconnecting stale primary.
	if _, err := p.Subscribe(1, 6, "n3", "stale"); err == nil || !wire.IsReplRefused(err.Error()) {
		t.Fatalf("stale epoch subscribe: err=%v", err)
	}
	if _, err := p.Subscribe(1, 8, "n4", "future"); err == nil || !wire.IsReplRefused(err.Error()) {
		t.Fatalf("future epoch subscribe: err=%v", err)
	}

	// A subscriber claiming a log longer than ours has diverged.
	if _, err := p.Subscribe(log.DurableLSN()+1000, 7, "n5", "ahead"); err == nil || !wire.IsReplRefused(err.Error()) {
		t.Fatalf("ahead-of-primary subscribe: err=%v", err)
	}
}

func TestSubscribeBelowRetentionRefused(t *testing.T) {
	log := newLog(t)
	for i := uint64(1); i <= 20; i++ {
		appendTxn(t, log, i, "k", "v")
	}
	log.Truncate(log.DurableLSN())
	p := NewPrimary(log, 1)
	if _, err := p.Subscribe(1, 0, "n1", "lagging"); err == nil || !wire.IsReplRefused(err.Error()) {
		t.Fatalf("truncated-away subscribe: err=%v", err)
	}
	// From the oldest retained LSN it works.
	s, err := p.Subscribe(log.OldestLSN(), 0, "n2", "ok")
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}

func TestSubscriptionStreamsAndPins(t *testing.T) {
	log := newLog(t)
	appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 1)
	s, err := p.Subscribe(1, 0, "n1", "f")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	stop := make(chan struct{})
	recs, err := s.Next(stop)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].LSN != 1 {
		t.Fatalf("first batch: %d records starting %d", len(recs), recs[0].LSN)
	}

	// The un-acked subscriber pins the log: truncation keeps its records.
	log.Truncate(log.DurableLSN())
	if oldest := log.OldestLSN(); oldest != 1 {
		t.Fatalf("truncate ignored subscriber pin: oldest %d", oldest)
	}

	// Ack at the durable horizon: truncation may now reclaim the prefix.
	s.UpdateAck(uint64(log.DurableLSN()), uint64(log.DurableLSN()))
	log.Truncate(log.DurableLSN())
	if oldest, dur := log.OldestLSN(), log.DurableLSN(); oldest != dur {
		t.Fatalf("acked prefix not reclaimed: oldest %d durable %d", oldest, dur)
	}

	// Next blocks while caught up, wakes on new appends.
	got := make(chan int, 1)
	go func() {
		recs, err := s.Next(stop)
		if err != nil {
			got <- -1
			return
		}
		got <- len(recs)
	}()
	select {
	case n := <-got:
		t.Fatalf("Next returned %d records while caught up", n)
	case <-time.After(50 * time.Millisecond):
	}
	appendTxn(t, log, 2, "b", "2")
	select {
	case n := <-got:
		if n != 2 {
			t.Fatalf("wake-up batch had %d records", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not wake on new durable records")
	}
}

func TestWaitReplicated(t *testing.T) {
	log := newLog(t)
	lsn := appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 1)
	p.SetAckTimeout(50 * time.Millisecond)

	// No follower: the wait times out with the commit-durable caveat.
	if err := p.WaitReplicated(lsn); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("no-follower wait: err=%v", err)
	}

	s, err := p.Subscribe(1, 0, "n1", "f")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p.SetAckTimeout(2 * time.Second)

	var wg sync.WaitGroup
	wg.Add(1)
	var waitErr error
	go func() {
		defer wg.Done()
		waitErr = p.WaitReplicated(lsn)
	}()
	time.Sleep(10 * time.Millisecond)
	s.UpdateAck(uint64(log.DurableLSN()), uint64(log.DurableLSN()))
	wg.Wait()
	if waitErr != nil {
		t.Fatalf("acked wait failed: %v", waitErr)
	}
	st := p.Status()
	if st.AckWaits != 2 || st.AckTimeouts != 1 || len(st.Followers) != 1 {
		t.Fatalf("status: %+v", st)
	}
}

func TestWaitReplicatedQuorum(t *testing.T) {
	log := newLog(t)
	lsn := appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 1)
	p.SetAckQuorum(2)
	p.SetAckTimeout(100 * time.Millisecond)

	s1, err := p.Subscribe(1, 0, "n1", "f1")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s1.UpdateAck(uint64(log.DurableLSN()), uint64(log.DurableLSN()))

	// One fully-acked follower cannot satisfy k=2.
	if err := p.WaitReplicated(lsn); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("k=2 wait with one follower: err=%v", err)
	}

	// A second subscriber that has not acked past the commit still leaves
	// the quorum watermark below it.
	s2, err := p.Subscribe(1, 0, "n2", "f2")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitReplicated(lsn); !errors.Is(err, ErrNoFollower) {
		t.Fatalf("k=2 wait with one lagging follower: err=%v", err)
	}

	p.SetAckTimeout(2 * time.Second)
	var wg sync.WaitGroup
	wg.Add(1)
	var waitErr error
	go func() {
		defer wg.Done()
		waitErr = p.WaitReplicated(lsn)
	}()
	time.Sleep(10 * time.Millisecond)
	s2.UpdateAck(uint64(log.DurableLSN()), uint64(log.DurableLSN()))
	wg.Wait()
	if waitErr != nil {
		t.Fatalf("k=2 wait with both acked: %v", waitErr)
	}

	st := p.Status()
	if st.AckQuorum != 2 || st.QuorumAcked <= uint64(lsn) {
		t.Fatalf("status after quorum ack: %+v", st)
	}

	// The watermark is monotonic: a departing follower never retracts an
	// acknowledgement already given.
	s2.Close()
	if err := p.WaitReplicated(lsn); err != nil {
		t.Fatalf("wait after acked follower left: %v", err)
	}
}

func TestSubscribeOrSeedEpochDirection(t *testing.T) {
	log := newLog(t)
	appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 3)

	// A behind-lineage subscriber (lower epoch) is seed-accepted.
	s, err := p.SubscribeOrSeed(1, 2, "behind", "r1")
	if err != nil {
		t.Fatalf("lower-epoch subscriber not seed-accepted: %v", err)
	}
	if _, _, seeding := s.Seeding(); !seeding {
		t.Fatal("lower-epoch subscriber accepted without the seed phase")
	}
	s.Close()

	// A NEWER-epoch subscriber means this primary is the fenced lineage:
	// seeding would wipe the up-to-date node, so it must be refused.
	if _, err := p.SubscribeOrSeed(1, 4, "newer", "r2"); err == nil || !wire.IsReplRefused(err.Error()) {
		t.Fatalf("newer-epoch subscriber was not refused: err=%v", err)
	}
	if n := p.NumFollowers(); n != 0 {
		t.Fatalf("refused subscriber left %d registrations", n)
	}
}

func TestSameNodeResubscriptionEvicts(t *testing.T) {
	log := newLog(t)
	appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 1)

	s1, err := p.Subscribe(1, 0, "n1", "old-conn")
	if err != nil {
		t.Fatal(err)
	}
	// The node reconnects (half-open TCP left s1 dangling): the new
	// registration evicts the old one.
	s2, err := p.Subscribe(1, 0, "n1", "new-conn")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if n := p.NumFollowers(); n != 1 {
		t.Fatalf("same-node resubscription left %d live subscriptions", n)
	}
	if _, err := s1.Next(nil); !errors.Is(err, ErrSubscriptionClosed) {
		t.Fatalf("evicted subscription still streams: err=%v", err)
	}
}

func TestKthAckedGroupsByNode(t *testing.T) {
	log := newLog(t)
	appendTxn(t, log, 1, "a", "1")
	p := NewPrimary(log, 1)
	p.quorum = 2

	// Two subscriptions sharing one node identity — the transient window
	// before a same-node eviction lands — must count as ONE stable copy.
	a := &Subscription{p: p, node: "n1"}
	a.acked.Store(100)
	b := &Subscription{p: p, node: "n1"}
	b.acked.Store(90)
	p.subs[1], p.subs[2] = a, b
	if got := p.kthAckedLocked(); got != 0 {
		t.Fatalf("duplicate-node subs counted toward quorum: kth=%d", got)
	}

	// A second distinct node completes the quorum at ITS ack, not the
	// duplicate's.
	c := &Subscription{p: p, node: "n2"}
	c.acked.Store(80)
	p.subs[3] = c
	if got := p.kthAckedLocked(); got != 80 {
		t.Fatalf("quorum watermark with nodes n1@100,n2@80: kth=%d, want 80", got)
	}

	// Pre-node subscribers (empty identity) still count individually.
	d := &Subscription{p: p}
	d.acked.Store(95)
	p.subs[4] = d
	if got := p.kthAckedLocked(); got != 95 {
		t.Fatalf("quorum watermark with n1@100,n2@80,anon@95: kth=%d, want 95", got)
	}
}

func TestSeedMarkerPersistence(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadSeedTarget(dir); ok || err != nil {
		t.Fatalf("fresh dir has a seed marker: ok=%v err=%v", ok, err)
	}
	if err := WriteSeedTarget(dir, 777); err != nil {
		t.Fatal(err)
	}
	target, ok, err := ReadSeedTarget(dir)
	if err != nil || !ok || target != 777 {
		t.Fatalf("seed marker round-trip: target=%d ok=%v err=%v", target, ok, err)
	}

	// A follower constructed over a dir carrying the marker — a crash mid
	// re-seed — starts out refusing reads.
	f, err := NewFollower(FollowerOptions{
		Dir:   dir,
		Log:   newLog(t),
		Apply: func(ops []recovery.Op) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Seeding() {
		t.Fatal("restarted mid-seed follower does not report Seeding")
	}
	f.clearSeeding()
	if f.Seeding() {
		t.Fatal("still Seeding after clear")
	}
	if _, ok, _ := ReadSeedTarget(dir); ok {
		t.Fatal("seed marker survived clearSeeding")
	}
}

func mod(key, value string) logrec.Modification {
	return logrec.Modification{Table: "kv", Key: []byte(key), After: []byte(value)}
}

func feedRecords(t *testing.T, a *Applier, log *wal.Durable, recs ...wal.Record) {
	t.Helper()
	// Assign LSNs by appending to a scratch log so the stream is shaped
	// exactly like a shipped one.
	for i := range recs {
		log.Append(&recs[i])
	}
	log.Flush(log.CurrentLSN())
	if err := a.Feed(recs); err != nil {
		t.Fatal(err)
	}
}

func TestApplierCommitAbortPrepare(t *testing.T) {
	log := newLog(t)
	var applied [][]recovery.Op
	a := NewApplier(func(ops []recovery.Op) error {
		applied = append(applied, append([]recovery.Op(nil), ops...))
		return nil
	})

	// Committed txn applies with its ops in order.
	feedRecords(t, a, log,
		wal.Record{Txn: 1, Type: wal.RecInsert, Payload: logrec.EncodeModification(mod("a", "1"))},
		wal.Record{Txn: 1, Type: wal.RecUpdate, Payload: logrec.EncodeModification(mod("a", "2"))},
		wal.Record{Txn: 1, Type: wal.RecCommit},
	)
	if len(applied) != 1 || len(applied[0]) != 2 || string(applied[0][1].Mod.After) != "2" {
		t.Fatalf("applied: %+v", applied)
	}

	// Aborted txn never applies.
	feedRecords(t, a, log,
		wal.Record{Txn: 2, Type: wal.RecInsert, Payload: logrec.EncodeModification(mod("b", "1"))},
		wal.Record{Txn: 2, Type: wal.RecAbort},
	)
	if len(applied) != 1 {
		t.Fatalf("aborted txn applied: %+v", applied)
	}

	// Prepared branch stays buffered until its commit record.
	feedRecords(t, a, log,
		wal.Record{Txn: 3, Type: wal.RecInsert, Payload: logrec.EncodeModification(mod("c", "1"))},
		wal.Record{Txn: 3, Type: wal.RecPrepare, Payload: []byte("s0-1-1")},
	)
	if len(applied) != 1 || a.Status().PendingTxns != 1 {
		t.Fatalf("prepared branch applied early or dropped: %+v", a.Status())
	}
	feedRecords(t, a, log, wal.Record{Txn: 3, Type: wal.RecCommit})
	if len(applied) != 2 || string(applied[1][0].Mod.Key) != "c" {
		t.Fatalf("decided branch not applied: %+v", applied)
	}
	if a.AppliedLSN() != log.CurrentLSN() {
		t.Fatalf("applied horizon %d, log horizon %d", a.AppliedLSN(), log.CurrentLSN())
	}
}

func TestApplierBootstrapCarriesInFlight(t *testing.T) {
	log := newLog(t)
	// Txn 1 commits; txn 2's ops land but its commit record will only
	// arrive on the resumed stream.
	log.Append(&wal.Record{Txn: 1, Type: wal.RecInsert, Payload: logrec.EncodeModification(mod("a", "1"))})
	log.Append(&wal.Record{Txn: 1, Type: wal.RecCommit})
	log.Append(&wal.Record{Txn: 2, Type: wal.RecInsert, Payload: logrec.EncodeModification(mod("b", "1"))})
	log.Flush(log.CurrentLSN())

	an, err := recovery.Analyze(log)
	if err != nil {
		t.Fatal(err)
	}
	var applied [][]recovery.Op
	a := NewApplier(func(ops []recovery.Op) error {
		applied = append(applied, ops)
		return nil
	})
	a.Bootstrap(an)
	if a.Status().PendingTxns != 1 {
		t.Fatalf("bootstrap pending: %+v", a.Status())
	}
	// The resumed stream delivers txn 2's commit: the buffered op applies.
	feedRecords(t, a, log, wal.Record{Txn: 2, Type: wal.RecCommit})
	if len(applied) != 1 || string(applied[0][0].Mod.Key) != "b" {
		t.Fatalf("carried-over txn not applied: %+v", applied)
	}
}

func TestEpochStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadEpoch(dir); ok || err != nil {
		t.Fatalf("fresh dir: ok=%v err=%v", ok, err)
	}
	if err := WriteEpoch(dir, 42); err != nil {
		t.Fatal(err)
	}
	epoch, ok, err := ReadEpoch(dir)
	if !ok || err != nil || epoch != 42 {
		t.Fatalf("epoch=%d ok=%v err=%v", epoch, ok, err)
	}
}
