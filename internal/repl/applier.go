package repl

import (
	"fmt"
	"sync"

	"plp/internal/logrec"
	"plp/internal/recovery"
	"plp/internal/wal"
)

// Applier is the follower's streaming form of restart recovery: it buffers
// each transaction's modification records as they arrive on the stream and
// applies the whole transaction — through the same idempotent
// recovery.ApplyOps path a restart uses — the moment its commit record
// arrives.  Uncommitted transactions are never applied, so follower reads
// only ever see transaction-consistent state.
//
// Checkpoint chunk records apply as idempotent upserts at their log
// position: a no-op for an in-sync follower (its state already equals the
// quiesced snapshot) and the snapshot itself for a follower being
// re-seeded from the retained log prefix.  Other non-modification records
// (SMO, repartition markers, coordinator decide records) are skipped: they
// describe the primary's physical organization, and the follower rebuilds
// its own from the logical operations.  A prepared branch (2PC participant
// on the primary) stays buffered until its own commit or abort record
// arrives — the participant's decide outcome always reaches the log as one
// of the two.
type Applier struct {
	apply func(ops []recovery.Op) error

	mu       sync.Mutex
	pending  map[uint64][]recovery.Op // txn → buffered ops, arrival order
	prepared map[uint64]string        // txn → gid, for status only
	applied  wal.LSN                  // horizon: every record below is processed

	appliedTxns uint64
	appliedOps  uint64
	skipped     uint64
}

// NewApplier builds an applier that commits transactions through apply
// (normally engine.ApplyReplicated).
func NewApplier(apply func(ops []recovery.Op) error) *Applier {
	return &Applier{
		apply:    apply,
		pending:  make(map[uint64][]recovery.Op),
		prepared: make(map[uint64]string),
	}
}

// Bootstrap seeds the pending buffers from a restart-recovery analysis of
// the local log: transactions that were still in flight at the follower's
// durable horizon have their ops buffered so a commit record arriving on
// the resumed stream finds them.  (Restart recovery itself never applied
// them — they had no outcome.)
func (a *Applier) Bootstrap(an *recovery.Analysis) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, op := range an.Ops {
		if an.Outcomes[op.Txn] != recovery.OutcomeInFlight {
			continue
		}
		if an.Snapshot != nil && op.LSN <= an.Snapshot.EndLSN {
			continue
		}
		a.pending[op.Txn] = append(a.pending[op.Txn], op)
	}
	for id, gid := range an.Prepared {
		if an.Outcomes[id] == recovery.OutcomeInFlight {
			a.prepared[id] = gid
		}
	}
}

// Feed processes one shipped batch in stream order.  The records must
// already be durable locally (AppendShipped + flush) so an acked applied
// LSN can never run ahead of an acked durable LSN.
//
// Every transaction whose commit record lands in this batch is applied in
// ONE engine pass (commit order preserved inside it): the quiesce that
// makes each apply atomic for concurrent readers is paid per shipped batch,
// not per transaction, which is what lets a lagging follower chew through a
// backlog at streaming speed.  Readers see the batch's transactions appear
// together — still transaction-consistent, never a torn transaction.
func (a *Applier) Feed(recs []wal.Record) error {
	var (
		batch []recovery.Op
		txns  uint64
	)
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			mod, err := logrec.DecodeModification(r.Payload)
			if err != nil {
				return fmt.Errorf("repl: record %d (txn %d): %w", r.LSN, r.Txn, err)
			}
			a.mu.Lock()
			a.pending[r.Txn] = append(a.pending[r.Txn], recovery.Op{LSN: r.LSN, Txn: r.Txn, Type: r.Type, Mod: mod})
			a.mu.Unlock()
		case wal.RecCommit:
			a.mu.Lock()
			ops := a.pending[r.Txn]
			delete(a.pending, r.Txn)
			delete(a.prepared, r.Txn)
			a.mu.Unlock()
			batch = append(batch, ops...)
			txns++
		case wal.RecAbort:
			a.mu.Lock()
			delete(a.pending, r.Txn)
			delete(a.prepared, r.Txn)
			a.mu.Unlock()
		case wal.RecPrepare:
			a.mu.Lock()
			a.prepared[r.Txn] = string(r.Payload)
			a.mu.Unlock()
		case wal.RecCheckpoint:
			// A checkpoint chunk is a snapshot of committed rows captured
			// under quiesce at this log position — on an in-sync follower the
			// follower's state already equals it, so the upserts are no-ops;
			// on a (re-)seeding follower the chunks ARE the snapshot it is
			// rebuilding from.  Applying them unconditionally at their log
			// position keeps both cases on one code path and makes a
			// restart in the middle of a re-seed resume correctly from the
			// local durable horizon.  Meta/end markers carry no row data.
			chunk, ok, err := logrec.DecodeCheckpointChunk(r.Payload)
			if err != nil {
				return fmt.Errorf("repl: checkpoint chunk at %d: %w", r.LSN, err)
			}
			if !ok {
				a.mu.Lock()
				a.skipped++
				a.mu.Unlock()
				continue
			}
			for i := range chunk.Keys {
				batch = append(batch, recovery.Op{
					LSN:  r.LSN,
					Type: wal.RecInsert,
					Mod: logrec.Modification{
						Table: chunk.Table,
						Index: chunk.Index,
						Key:   chunk.Keys[i],
						After: chunk.Values[i],
					},
				})
			}
		default:
			// SMO, repartition, decide: physical or coordinator-side
			// records; nothing to apply.
			a.mu.Lock()
			a.skipped++
			a.mu.Unlock()
		}
	}
	if len(batch) > 0 {
		if err := a.apply(batch); err != nil {
			return fmt.Errorf("repl: applying batch of %d txns: %w", txns, err)
		}
	}
	if len(recs) > 0 {
		last := &recs[len(recs)-1]
		a.mu.Lock()
		a.appliedTxns += txns
		a.appliedOps += uint64(len(batch))
		a.applied = last.LSN + wal.LSN(last.EncodedSize())
		a.mu.Unlock()
	}
	return nil
}

// AppliedLSN returns the applied horizon: every record below it has been
// processed (its transaction applied, buffered, or skipped).
func (a *Applier) AppliedLSN() wal.LSN {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// SetAppliedLSN initializes the applied horizon (follower bootstrap: the
// local durable LSN, which restart recovery has fully processed).
func (a *Applier) SetAppliedLSN(lsn wal.LSN) {
	a.mu.Lock()
	a.applied = lsn
	a.mu.Unlock()
}


// Discard drops every pending (uncommitted) transaction buffer.  Promotion
// calls it: an uncommitted transaction's fate now belongs to ordinary
// restart recovery semantics — its records are in the log, it has no
// commit record, it never happened.
func (a *Applier) Discard() {
	a.mu.Lock()
	a.pending = make(map[uint64][]recovery.Op)
	a.prepared = make(map[uint64]string)
	a.mu.Unlock()
}

// ApplierStatus is the applier's progress snapshot.
type ApplierStatus struct {
	AppliedLSN  uint64
	AppliedTxns uint64
	AppliedOps  uint64
	PendingTxns int
	Skipped     uint64
}

// Status returns a snapshot of applier progress.
func (a *Applier) Status() ApplierStatus {
	a.mu.Lock()
	defer a.mu.Unlock()
	return ApplierStatus{
		AppliedLSN:  uint64(a.applied),
		AppliedTxns: a.appliedTxns,
		AppliedOps:  a.appliedOps,
		PendingTxns: len(a.pending),
		Skipped:     a.skipped,
	}
}
