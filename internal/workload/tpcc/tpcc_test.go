package tpcc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"plp/internal/engine"
)

func setup(t *testing.T, design engine.Design) (*engine.Engine, *Workload) {
	t.Helper()
	e := engine.New(engine.Options{Design: design, Partitions: 2, SLI: design == engine.Conventional})
	t.Cleanup(func() { _ = e.Close() })
	w := New(Config{Warehouses: 1, Partitions: 2})
	if err := w.Setup(e); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return e, w
}

func TestLoadPopulatesSchema(t *testing.T) {
	e, w := setup(t, engine.Conventional)
	l := e.NewLoader()
	if _, err := l.Read(TableWarehouse, warehouseKey(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(TableDistrict, districtKey(1, DistrictsPerWarehouse)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(TableCustomer, customerKey(1, 1, CustomersPerDistrict)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(TableItem, itemKey(Items)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(TableStock, stockKey(1, Items)); err != nil {
		t.Fatal(err)
	}
	if err := w.Verify(e); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderAndPayment(t *testing.T) {
	e, w := setup(t, engine.Conventional)
	sess := e.NewSession()
	defer sess.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		if _, err := sess.Execute(w.NewOrder(rng)); err != nil && !errors.Is(err, engine.ErrAborted) {
			t.Fatalf("new order %d: %v", i, err)
		}
		if _, err := sess.Execute(w.Payment(rng)); err != nil && !errors.Is(err, engine.ErrAborted) {
			t.Fatalf("payment %d: %v", i, err)
		}
	}
	if e.TxnStats().Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := w.Verify(e); err != nil {
		t.Fatal(err)
	}
	// Orders and order lines were created.
	count := 0
	if err := e.NewLoader().ReadRange(TableOrders, nil, nil, func(_, _ []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("no orders inserted")
	}
}

func TestMixedWorkloadConcurrent(t *testing.T) {
	for _, design := range []engine.Design{engine.Conventional, engine.Logical, engine.PLPLeaf} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			e, w := setup(t, design)
			var wg sync.WaitGroup
			for c := 0; c < 4; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					sess := e.NewSession()
					defer sess.Close()
					rng := rand.New(rand.NewSource(int64(c)))
					for i := 0; i < 60; i++ {
						if _, err := sess.Execute(w.NextRequest(rng)); err != nil && !errors.Is(err, engine.ErrAborted) {
							t.Errorf("client %d: %v", c, err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if err := w.Verify(e); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRecordRoundTrip(t *testing.T) {
	r := balanceRecord{A: 1, B: 2, C: 3, Amount: -77}
	got, err := unmarshalRec(marshalRec(r))
	if err != nil || got.A != 1 || got.B != 2 || got.C != 3 || got.Amount != -77 {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := unmarshalRec([]byte{1}); err == nil {
		t.Fatal("short record accepted")
	}
}
