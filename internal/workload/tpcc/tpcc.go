// Package tpcc implements a reduced-schema TPC-C workload (warehouse,
// district, customer, item, stock, orders and order-line tables with the
// NewOrder and Payment transactions).
//
// The paper only uses TPC-C for the page-latch breakdown of Figure 2 — its
// baseline systems "did not encounter any of the issues we try to address in
// TPC-C" — so this implementation aims for the right mix of index and heap
// page accesses rather than full TPC-C compliance (no think times, no
// delivery/stock-level/order-status transactions).
package tpcc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

// Table names.
const (
	TableWarehouse = "tpcc_warehouse"
	TableDistrict  = "tpcc_district"
	TableCustomer  = "tpcc_customer"
	TableItem      = "tpcc_item"
	TableStock     = "tpcc_stock"
	TableOrders    = "tpcc_orders"
	TableOrderLine = "tpcc_order_line"
)

// Scale constants (reduced from the TPC-C defaults to keep in-memory runs
// small; the page-access mix is preserved).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 300
	Items                 = 1000
	StockPerWarehouse     = Items
)

// Config configures the workload.
type Config struct {
	// Warehouses is the scale factor.
	Warehouses int
	// Partitions must match the engine's partition count.
	Partitions int
}

// Workload is a configured TPC-C workload.
type Workload struct {
	cfg Config
}

// New returns a TPC-C workload.
func New(cfg Config) *Workload {
	if cfg.Warehouses <= 0 {
		cfg.Warehouses = 1
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	return &Workload{cfg: cfg}
}

// Name implements the harness workload interface.
func (w *Workload) Name() string { return "tpcc" }

// balanceRecord is the generic fixed-size row used for all reduced TPC-C
// tables: id fields plus a balance/quantity and a textual filler.
type balanceRecord struct {
	A, B, C uint64
	Amount  int64
	Filler  [120]byte
}

func marshalRec(r balanceRecord) []byte {
	buf := make([]byte, 32+len(r.Filler))
	binary.BigEndian.PutUint64(buf[0:], r.A)
	binary.BigEndian.PutUint64(buf[8:], r.B)
	binary.BigEndian.PutUint64(buf[16:], r.C)
	binary.BigEndian.PutUint64(buf[24:], uint64(r.Amount))
	copy(buf[32:], r.Filler[:])
	return buf
}

func unmarshalRec(buf []byte) (balanceRecord, error) {
	var r balanceRecord
	if len(buf) < 32 {
		return r, fmt.Errorf("tpcc: short record")
	}
	r.A = binary.BigEndian.Uint64(buf[0:])
	r.B = binary.BigEndian.Uint64(buf[8:])
	r.C = binary.BigEndian.Uint64(buf[16:])
	r.Amount = int64(binary.BigEndian.Uint64(buf[24:]))
	copy(r.Filler[:], buf[32:])
	return r, nil
}

// Keys.  All warehouse-rooted tables are partitioned by warehouse id, which
// is the leading key component.
func warehouseKey(w uint64) []byte          { return keyenc.Uint64Key(w) }
func districtKey(w, d uint64) []byte        { return keyenc.CompositeUint64(w, d) }
func customerKey(w, d, c uint64) []byte     { return keyenc.CompositeUint64(w, d, c) }
func itemKey(i uint64) []byte               { return keyenc.Uint64Key(i) }
func stockKey(w, i uint64) []byte           { return keyenc.CompositeUint64(w, i) }
func orderKey(w, d, o uint64) []byte        { return keyenc.CompositeUint64(w, d, o) }
func orderLineKey(w, d, o, l uint64) []byte { return keyenc.CompositeUint64(w, d, o, l) }

// Setup creates and loads the tables.
func (w *Workload) Setup(e *engine.Engine) error {
	nWH := uint64(w.cfg.Warehouses)
	whBounds := warehouseBoundaries(nWH, w.cfg.Partitions)
	defs := []catalog.TableDef{
		{Name: TableWarehouse, Boundaries: whBounds},
		{Name: TableDistrict, Boundaries: whBounds},
		{Name: TableCustomer, Boundaries: whBounds},
		{Name: TableItem, Boundaries: uniformBoundaries(Items, w.cfg.Partitions)},
		{Name: TableStock, Boundaries: whBounds},
		{Name: TableOrders, Boundaries: whBounds},
		{Name: TableOrderLine, Boundaries: whBounds},
	}
	for _, def := range defs {
		if _, err := e.CreateTable(def); err != nil {
			return err
		}
	}
	return w.Load(e)
}

// warehouseBoundaries splits the warehouse id space; because all
// warehouse-rooted keys lead with the warehouse id, the same boundaries
// partition every warehouse-rooted table consistently.
func warehouseBoundaries(warehouses uint64, parts int) [][]byte {
	return uniformBoundaries(warehouses, parts)
}

// uniformBoundaries splits [1, max] into at most n ranges, dropping
// duplicate boundaries when the key space is smaller than the partition
// count (e.g. one warehouse spread across many workers).
func uniformBoundaries(max uint64, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	out := make([][]byte, 0, n-1)
	var prev uint64
	for i := 1; i < n; i++ {
		b := max*uint64(i)/uint64(n) + 1
		if b <= 1 || b == prev || b > max {
			continue
		}
		prev = b
		out = append(out, keyenc.Uint64Key(b))
	}
	return out
}

// Load populates the tables.
func (w *Workload) Load(e *engine.Engine) error {
	l := e.NewLoader()
	for i := uint64(1); i <= Items; i++ {
		if err := l.Insert(TableItem, itemKey(i), marshalRec(balanceRecord{A: i, Amount: int64(i % 100)})); err != nil {
			return err
		}
	}
	for wh := uint64(1); wh <= uint64(w.cfg.Warehouses); wh++ {
		if err := l.Insert(TableWarehouse, warehouseKey(wh), marshalRec(balanceRecord{A: wh})); err != nil {
			return err
		}
		for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
			// District.Amount doubles as the next-order-id counter.
			if err := l.Insert(TableDistrict, districtKey(wh, d), marshalRec(balanceRecord{A: wh, B: d, Amount: 1})); err != nil {
				return err
			}
			for c := uint64(1); c <= CustomersPerDistrict; c++ {
				if err := l.Insert(TableCustomer, customerKey(wh, d, c), marshalRec(balanceRecord{A: wh, B: d, C: c})); err != nil {
					return err
				}
			}
		}
		for i := uint64(1); i <= StockPerWarehouse; i++ {
			if err := l.Insert(TableStock, stockKey(wh, i), marshalRec(balanceRecord{A: wh, B: i, Amount: 100})); err != nil {
				return err
			}
		}
	}
	return nil
}

// NextRequest draws from the NewOrder/Payment mix (roughly the TPC-C ratio
// between the two).
func (w *Workload) NextRequest(rng *rand.Rand) *engine.Request {
	if rng.Intn(100) < 52 {
		return w.NewOrder(rng)
	}
	return w.Payment(rng)
}

// NewOrder reads the district's next order id, inserts an order and 5-15
// order lines, and updates the stock rows of the ordered items.
func (w *Workload) NewOrder(rng *rand.Rand) *engine.Request {
	wh := 1 + uint64(rng.Intn(w.cfg.Warehouses))
	d := 1 + uint64(rng.Intn(DistrictsPerWarehouse))
	c := 1 + uint64(rng.Intn(CustomersPerDistrict))
	nLines := 5 + rng.Intn(11)
	items := make([]uint64, nLines)
	qtys := make([]int64, nLines)
	for i := range items {
		items[i] = 1 + uint64(rng.Intn(Items))
		qtys[i] = int64(1 + rng.Intn(10))
	}
	orderID := uint64(rng.Int63())>>16 | 1

	req := &engine.Request{}
	// Phase 1: read customer, bump the district order counter, insert the
	// order row.
	req.AddPhase(engine.Action{
		Table: TableDistrict,
		Key:   districtKey(wh, d),
		Exec: func(ctx *engine.Ctx) error {
			if _, err := ctx.Read(TableCustomer, customerKey(wh, d, c)); err != nil {
				return err
			}
			rec, err := ctx.ReadForUpdate(TableDistrict, districtKey(wh, d))
			if err != nil {
				return err
			}
			dist, err := unmarshalRec(rec)
			if err != nil {
				return err
			}
			dist.Amount++
			if err := ctx.Update(TableDistrict, districtKey(wh, d), marshalRec(dist)); err != nil {
				return err
			}
			return ctx.Insert(TableOrders, orderKey(wh, d, orderID),
				marshalRec(balanceRecord{A: wh, B: d, C: c, Amount: int64(nLines)}))
		},
	})
	// Phase 2: insert order lines and update stock.
	lineActions := make([]engine.Action, 0, nLines)
	for i := 0; i < nLines; i++ {
		line := uint64(i + 1)
		item := items[i]
		qty := qtys[i]
		lineActions = append(lineActions, engine.Action{
			Table: TableOrderLine,
			Key:   orderLineKey(wh, d, orderID, line),
			Exec: func(ctx *engine.Ctx) error {
				if _, err := ctx.Read(TableItem, itemKey(item)); err != nil {
					return err
				}
				stockRec, err := ctx.ReadForUpdate(TableStock, stockKey(wh, item))
				if err != nil {
					return err
				}
				stock, err := unmarshalRec(stockRec)
				if err != nil {
					return err
				}
				stock.Amount -= qty
				if stock.Amount < 10 {
					stock.Amount += 91
				}
				if err := ctx.Update(TableStock, stockKey(wh, item), marshalRec(stock)); err != nil {
					return err
				}
				err = ctx.Insert(TableOrderLine, orderLineKey(wh, d, orderID, line),
					marshalRec(balanceRecord{A: wh, B: d, C: orderID, Amount: qty}))
				if errors.Is(err, engine.ErrDuplicate) {
					return nil
				}
				return err
			},
		})
	}
	req.AddPhase(lineActions...)
	return req
}

// Payment updates the warehouse, district and customer balances.
func (w *Workload) Payment(rng *rand.Rand) *engine.Request {
	wh := 1 + uint64(rng.Intn(w.cfg.Warehouses))
	d := 1 + uint64(rng.Intn(DistrictsPerWarehouse))
	c := 1 + uint64(rng.Intn(CustomersPerDistrict))
	amount := int64(1 + rng.Intn(5000))
	bump := func(table string, key []byte) func(*engine.Ctx) error {
		return func(ctx *engine.Ctx) error {
			rec, err := ctx.ReadForUpdate(table, key)
			if err != nil {
				return err
			}
			r, err := unmarshalRec(rec)
			if err != nil {
				return err
			}
			r.Amount += amount
			return ctx.Update(table, key, marshalRec(r))
		}
	}
	return engine.NewRequest(
		engine.Action{Table: TableWarehouse, Key: warehouseKey(wh), Exec: bump(TableWarehouse, warehouseKey(wh))},
		engine.Action{Table: TableDistrict, Key: districtKey(wh, d), Exec: bump(TableDistrict, districtKey(wh, d))},
		engine.Action{Table: TableCustomer, Key: customerKey(wh, d, c), Exec: bump(TableCustomer, customerKey(wh, d, c))},
	)
}

// Verify checks that warehouse and district loading survived the run and
// that districts' order counters only grew.
func (w *Workload) Verify(e *engine.Engine) error {
	l := e.NewLoader()
	for wh := uint64(1); wh <= uint64(w.cfg.Warehouses); wh++ {
		if _, err := l.Read(TableWarehouse, warehouseKey(wh)); err != nil {
			return fmt.Errorf("tpcc verify: warehouse %d missing: %w", wh, err)
		}
		for d := uint64(1); d <= DistrictsPerWarehouse; d++ {
			rec, err := l.Read(TableDistrict, districtKey(wh, d))
			if err != nil {
				return fmt.Errorf("tpcc verify: district %d/%d missing: %w", wh, d, err)
			}
			dist, err := unmarshalRec(rec)
			if err != nil {
				return err
			}
			if dist.Amount < 1 {
				return fmt.Errorf("tpcc verify: district %d/%d counter went backwards: %d", wh, d, dist.Amount)
			}
		}
	}
	return nil
}
