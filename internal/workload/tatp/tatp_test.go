package tatp

import (
	"errors"
	"math/rand"
	"testing"

	"plp/internal/engine"
	"plp/internal/keyenc"
)

func setupEngine(t *testing.T, design engine.Design, subscribers int) (*engine.Engine, *Workload) {
	t.Helper()
	e := engine.New(engine.Options{Design: design, Partitions: 4, SLI: design == engine.Conventional})
	t.Cleanup(func() { _ = e.Close() })
	w := New(Config{Subscribers: subscribers, Partitions: 4, Mix: MixStandard})
	if err := w.Setup(e); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return e, w
}

func TestSubscriberMarshalRoundTrip(t *testing.T) {
	s := Subscriber{SID: 42, SubNbr: SubNbrOf(42), MSCLocation: 7, VLRLocation: 9}
	s.BitFields[3] = true
	s.HexFields[5] = 0xA
	s.ByteFields[9] = 0xFF
	got, err := UnmarshalSubscriber(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SID != 42 || got.SubNbr != SubNbrOf(42) || !got.BitFields[3] ||
		got.HexFields[5] != 0xA || got.ByteFields[9] != 0xFF || got.VLRLocation != 9 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if _, err := UnmarshalSubscriber([]byte{1, 2}); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestKeyOrderingMatchesIDOrder(t *testing.T) {
	if keyenc.Compare(SubscriberKey(5), SubscriberKey(6)) >= 0 {
		t.Fatal("subscriber key order broken")
	}
	if keyenc.Compare(CallForwardingKey(5, 1, 0), CallForwardingKey(5, 1, 8)) >= 0 {
		t.Fatal("call forwarding key order broken")
	}
	if keyenc.Compare(CallForwardingKey(5, 1, 16), CallForwardingKey(5, 2, 0)) >= 0 {
		t.Fatal("sf_type must dominate start_time")
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	e, w := setupEngine(t, engine.PLPLeaf, 200)
	l := e.NewLoader()
	// Every subscriber is present and resolvable via the secondary index.
	for sid := uint64(1); sid <= 200; sid += 13 {
		rec, err := l.Read(TableSubscriber, SubscriberKey(sid))
		if err != nil {
			t.Fatalf("subscriber %d: %v", sid, err)
		}
		sub, err := UnmarshalSubscriber(rec)
		if err != nil || sub.SID != sid {
			t.Fatalf("subscriber %d decode: %+v %v", sid, sub, err)
		}
	}
	if err := w.Verify(e); err != nil {
		t.Fatal(err)
	}
	// Access-info rows exist for every subscriber (at least ai_type 1).
	if _, err := l.Read(TableAccessInfo, AccessInfoKey(1, 1)); err != nil {
		t.Fatalf("access info missing: %v", err)
	}
}

func TestStandardMixRunsOnAllDesigns(t *testing.T) {
	for _, design := range engine.AllDesigns() {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			e, w := setupEngine(t, design, 300)
			sess := e.NewSession()
			defer sess.Close()
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 300; i++ {
				req := w.NextRequest(rng)
				if _, err := sess.Execute(req); err != nil && !errors.Is(err, engine.ErrAborted) {
					t.Fatalf("request %d: %v", i, err)
				}
			}
			if e.TxnStats().Committed == 0 {
				t.Fatal("nothing committed")
			}
			if err := w.Verify(e); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestAllMixesGenerateValidRequests(t *testing.T) {
	e, _ := setupEngine(t, engine.Logical, 200)
	sess := e.NewSession()
	defer sess.Close()
	rng := rand.New(rand.NewSource(3))
	for _, mix := range []Mix{MixStandard, MixGetSubscriberData, MixInsertDeleteCallFwd, MixBalanceProbe, MixUpdateLocation} {
		w := New(Config{Subscribers: 200, Partitions: 4, Mix: mix})
		if w.Name() == "" {
			t.Fatal("mix has no name")
		}
		for i := 0; i < 50; i++ {
			req := w.NextRequest(rng)
			if req.NumActions() == 0 {
				t.Fatalf("mix %v generated an empty request", mix)
			}
			if _, err := sess.Execute(req); err != nil && !errors.Is(err, engine.ErrAborted) {
				t.Fatalf("mix %v: %v", mix, err)
			}
		}
	}
}

func TestUpdateLocationChangesVLR(t *testing.T) {
	e, w := setupEngine(t, engine.PLPRegular, 100)
	sess := e.NewSession()
	defer sess.Close()
	rng := rand.New(rand.NewSource(5))
	before, _ := e.NewLoader().Read(TableSubscriber, SubscriberKey(10))
	subBefore, _ := UnmarshalSubscriber(before)
	var changed bool
	for i := 0; i < 20 && !changed; i++ {
		if _, err := sess.Execute(w.UpdateLocation(rng, 10)); err != nil {
			t.Fatal(err)
		}
		after, _ := e.NewLoader().Read(TableSubscriber, SubscriberKey(10))
		subAfter, _ := UnmarshalSubscriber(after)
		changed = subAfter.VLRLocation != subBefore.VLRLocation
	}
	if !changed {
		t.Fatal("UpdateLocation never changed the VLR location")
	}
}

func TestInsertDeleteCallForwardingRoundTrip(t *testing.T) {
	e, w := setupEngine(t, engine.PLPLeaf, 100)
	sess := e.NewSession()
	defer sess.Close()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		var req *engine.Request
		if i%2 == 0 {
			req = w.InsertCallForwarding(rng, uint64(1+i%100))
		} else {
			req = w.DeleteCallForwarding(rng, uint64(1+i%100))
		}
		if _, err := sess.Execute(req); err != nil && !errors.Is(err, engine.ErrAborted) {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := w.Verify(e); err != nil {
		t.Fatal(err)
	}
}

func TestSkewBiasesSubscriberChoice(t *testing.T) {
	w := New(Config{Subscribers: 10000, Partitions: 1})
	w.SetSkew(0.10, 0.50)
	rng := rand.New(rand.NewSource(1))
	hot := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if w.randomSID(rng) <= 1000 {
			hot++
		}
	}
	// Expect roughly 50% + 10%*50% = 55% of draws in the hot range.
	if hot < draws*45/100 || hot > draws*65/100 {
		t.Fatalf("hot fraction %d/%d outside expected band", hot, draws)
	}
}

func TestBoundariesCoverKeySpace(t *testing.T) {
	w := New(Config{Subscribers: 1000, Partitions: 4})
	b := w.Boundaries()
	if len(b) != 3 {
		t.Fatalf("expected 3 boundaries, got %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if keyenc.Compare(b[i-1], b[i]) >= 0 {
			t.Fatal("boundaries not increasing")
		}
	}
	if UniformBoundaries(100, 1) != nil {
		t.Fatal("single partition should have no boundaries")
	}
}

func TestUpdateLocationPlanPatchesOnlyVLR(t *testing.T) {
	e, w := setupEngine(t, engine.PLPLeaf, 50)
	sess := e.NewSession()
	defer sess.Close()
	l := e.NewLoader()
	before, err := l.Read(TableSubscriber, SubscriberKey(7))
	if err != nil {
		t.Fatal(err)
	}
	subBefore, _ := UnmarshalSubscriber(before)
	want := subBefore.VLRLocation + 12345
	if _, err := sess.ExecutePlan(w.UpdateLocationPlan(7, want)); err != nil {
		t.Fatalf("plan: %v", err)
	}
	after, err := l.Read(TableSubscriber, SubscriberKey(7))
	if err != nil {
		t.Fatal(err)
	}
	subAfter, _ := UnmarshalSubscriber(after)
	if subAfter.VLRLocation != want {
		t.Fatalf("VLR location = %d, want %d", subAfter.VLRLocation, want)
	}
	// Everything except the 4-byte VLR field must be untouched.
	subAfter.VLRLocation = subBefore.VLRLocation
	if string(subAfter.Marshal()) != string(before) {
		t.Fatal("plan modified bytes outside the VLR location field")
	}
}

func TestGetSubscriberDataPlanFindsRow(t *testing.T) {
	e, w := setupEngine(t, engine.Conventional, 50)
	sess := e.NewSession()
	defer sess.Close()
	results, err := sess.ExecutePlan(w.GetSubscriberDataPlan(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Found {
		t.Fatalf("expected one found result, got %+v", results)
	}
	sub, err := UnmarshalSubscriber(results[0].Value)
	if err != nil || sub.SID != 9 {
		t.Fatalf("wrong row back: %+v %v", sub, err)
	}
}

func TestNextPlanCoversPlanMixes(t *testing.T) {
	e, _ := setupEngine(t, engine.PLPRegular, 50)
	rng := rand.New(rand.NewSource(5))
	for _, mix := range []Mix{MixGetSubscriberData, MixBalanceProbe, MixUpdateLocation} {
		w := New(Config{Subscribers: 50, Partitions: 4, Mix: mix})
		sess := e.NewSession()
		for i := 0; i < 20; i++ {
			p := w.NextPlan(rng)
			if p == nil {
				t.Fatalf("mix %v: nil plan", mix)
			}
			if _, err := sess.ExecutePlan(p); err != nil && !errors.Is(err, engine.ErrAborted) {
				t.Fatalf("mix %v: %v", mix, err)
			}
		}
		sess.Close()
	}
	if w := New(Config{Subscribers: 50, Partitions: 4, Mix: MixStandard}); w.NextPlan(rng) != nil {
		t.Fatal("standard mix should have no plan path yet")
	}
}
