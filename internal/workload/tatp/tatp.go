// Package tatp implements the TATP (Telecom Application Transaction
// Processing) benchmark used throughout the paper's evaluation: the standard
// seven-transaction mix, plus the specialized request generators the paper
// uses for individual experiments (the read-only GetSubscriberData stream of
// Figure 5, the CallForwarding insert/delete stream of Figure 6, and the
// skewed balance probes of Figure 8).
package tatp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/plan"
)

// Table names.
const (
	TableSubscriber      = "tatp_subscriber"
	TableAccessInfo      = "tatp_access_info"
	TableSpecialFacility = "tatp_special_facility"
	TableCallForwarding  = "tatp_call_forwarding"

	// IndexSubNbr is the non-partition-aligned secondary index mapping
	// sub_nbr to s_id.
	IndexSubNbr = "idx_sub_nbr"
)

// Config configures the workload.
type Config struct {
	// Subscribers is the scale factor (number of subscriber rows).
	Subscribers int
	// Partitions is the number of logical partitions the subscriber id
	// space is split into; it must match the engine's partition count.
	Partitions int
	// Mix selects the request mix.
	Mix Mix
	// HotFraction and HotProbability configure skewed access: a request
	// picks a subscriber from the first HotFraction of the id space with
	// probability HotProbability.  Zero values mean uniform access.
	HotFraction    float64
	HotProbability float64
}

// Mix selects which transactions NextRequest generates.
type Mix int

// Request mixes.
const (
	// MixStandard is the standard TATP 7-transaction mix.
	MixStandard Mix = iota
	// MixGetSubscriberData issues only the read-only GetSubscriberData
	// transaction (Figure 5).
	MixGetSubscriberData
	// MixInsertDeleteCallFwd alternates InsertCallForwarding and
	// DeleteCallForwarding (Figure 6).
	MixInsertDeleteCallFwd
	// MixBalanceProbe issues only the balance probe used by the
	// repartitioning experiment (Figure 8).
	MixBalanceProbe
	// MixUpdateLocation issues only UpdateLocation (write-heavy stress).
	MixUpdateLocation
)

// String returns the mix label.
func (m Mix) String() string {
	switch m {
	case MixStandard:
		return "tatp-standard"
	case MixGetSubscriberData:
		return "tatp-get-subscriber-data"
	case MixInsertDeleteCallFwd:
		return "tatp-insert-delete-callfwd"
	case MixBalanceProbe:
		return "tatp-balance-probe"
	case MixUpdateLocation:
		return "tatp-update-location"
	default:
		return fmt.Sprintf("tatp-mix-%d", int(m))
	}
}

// skew is the mutable access-skew pair, swapped atomically so SetSkew can
// reconfigure a running workload while worker goroutines draw keys.
type skew struct {
	fraction    float64
	probability float64
}

// Workload is a configured TATP workload bound to an engine.
type Workload struct {
	cfg  Config
	skew atomic.Pointer[skew]
}

// New returns a TATP workload.
func New(cfg Config) *Workload {
	if cfg.Subscribers <= 0 {
		cfg.Subscribers = 10000
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	w := &Workload{cfg: cfg}
	w.skew.Store(&skew{fraction: cfg.HotFraction, probability: cfg.HotProbability})
	return w
}

// Name implements the harness workload interface.
func (w *Workload) Name() string { return w.cfg.Mix.String() }

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// Subscriber is the SUBSCRIBER row.
type Subscriber struct {
	SID         uint64
	SubNbr      string // 15-digit string
	BitFields   [10]bool
	HexFields   [10]uint8
	ByteFields  [10]uint8
	MSCLocation uint32
	VLRLocation uint32
}

// SubNbrOf returns the canonical 15-digit sub_nbr for a subscriber id.
func SubNbrOf(sid uint64) string { return fmt.Sprintf("%015d", sid) }

// Marshal encodes the subscriber row (fixed 54-byte layout plus the
// sub_nbr).
func (s *Subscriber) Marshal() []byte {
	buf := make([]byte, 0, 64)
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], s.SID)
	buf = append(buf, b8[:]...)
	for _, bit := range s.BitFields {
		if bit {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	buf = append(buf, s.HexFields[:]...)
	buf = append(buf, s.ByteFields[:]...)
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], s.MSCLocation)
	buf = append(buf, b4[:]...)
	binary.BigEndian.PutUint32(b4[:], s.VLRLocation)
	buf = append(buf, b4[:]...)
	buf = append(buf, []byte(s.SubNbr)...)
	return buf
}

// UnmarshalSubscriber decodes a subscriber row.
func UnmarshalSubscriber(buf []byte) (Subscriber, error) {
	var s Subscriber
	if len(buf) < 46 {
		return s, fmt.Errorf("tatp: short subscriber record (%d bytes)", len(buf))
	}
	s.SID = binary.BigEndian.Uint64(buf[0:8])
	off := 8
	for i := range s.BitFields {
		s.BitFields[i] = buf[off+i] == 1
	}
	off += 10
	copy(s.HexFields[:], buf[off:off+10])
	off += 10
	copy(s.ByteFields[:], buf[off:off+10])
	off += 10
	s.MSCLocation = binary.BigEndian.Uint32(buf[off:])
	s.VLRLocation = binary.BigEndian.Uint32(buf[off+4:])
	s.SubNbr = string(buf[off+8:])
	return s, nil
}

// AccessInfo is the ACCESS_INFO row.
type AccessInfo struct {
	SID    uint64
	AIType uint8 // 1..4
	Data1  uint8
	Data2  uint8
	Data3  [3]byte
	Data4  [5]byte
}

// Marshal encodes the access-info row.
func (a *AccessInfo) Marshal() []byte {
	buf := make([]byte, 19)
	binary.BigEndian.PutUint64(buf[0:], a.SID)
	buf[8] = a.AIType
	buf[9] = a.Data1
	buf[10] = a.Data2
	copy(buf[11:14], a.Data3[:])
	copy(buf[14:19], a.Data4[:])
	return buf
}

// SpecialFacility is the SPECIAL_FACILITY row.
type SpecialFacility struct {
	SID        uint64
	SFType     uint8 // 1..4
	IsActive   bool
	ErrorCntrl uint8
	DataA      uint8
	DataB      [5]byte
}

// Marshal encodes the special-facility row.
func (s *SpecialFacility) Marshal() []byte {
	buf := make([]byte, 17)
	binary.BigEndian.PutUint64(buf[0:], s.SID)
	buf[8] = s.SFType
	if s.IsActive {
		buf[9] = 1
	}
	buf[10] = s.ErrorCntrl
	buf[11] = s.DataA
	copy(buf[12:17], s.DataB[:])
	return buf
}

// CallForwarding is the CALL_FORWARDING row.
type CallForwarding struct {
	SID       uint64
	SFType    uint8
	StartTime uint8 // 0, 8, 16
	EndTime   uint8
	NumberX   [15]byte
}

// Marshal encodes the call-forwarding row.
func (c *CallForwarding) Marshal() []byte {
	buf := make([]byte, 26)
	binary.BigEndian.PutUint64(buf[0:], c.SID)
	buf[8] = c.SFType
	buf[9] = c.StartTime
	buf[10] = c.EndTime
	copy(buf[11:26], c.NumberX[:])
	return buf
}

// SubscriberKey returns the primary key of a subscriber.
func SubscriberKey(sid uint64) []byte { return keyenc.Uint64Key(sid) }

// AccessInfoKey returns the primary key of an access-info row.
func AccessInfoKey(sid uint64, aiType uint8) []byte {
	return keyenc.NewEncoder(9).Uint64(sid).Uint8(aiType).Bytes()
}

// SpecialFacilityKey returns the primary key of a special-facility row.
func SpecialFacilityKey(sid uint64, sfType uint8) []byte {
	return keyenc.NewEncoder(9).Uint64(sid).Uint8(sfType).Bytes()
}

// CallForwardingKey returns the primary key of a call-forwarding row.
func CallForwardingKey(sid uint64, sfType, startTime uint8) []byte {
	return keyenc.NewEncoder(10).Uint64(sid).Uint8(sfType).Uint8(startTime).Bytes()
}

// SubNbrKey returns the secondary-index key for a sub_nbr.
func SubNbrKey(subNbr string) []byte {
	e := keyenc.NewEncoder(len(subNbr) + 1)
	e.String(subNbr)
	return append([]byte(nil), e.Bytes()...)
}

// Boundaries returns the partition boundaries for the subscriber id space
// split into n partitions.
func (w *Workload) Boundaries() [][]byte {
	return UniformBoundaries(uint64(w.cfg.Subscribers), w.cfg.Partitions)
}

// UniformBoundaries splits [1, max] into n equal key ranges, returning the
// n-1 internal boundaries.
func UniformBoundaries(max uint64, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	out := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		b := max*uint64(i)/uint64(n) + 1
		out = append(out, keyenc.Uint64Key(b))
	}
	return out
}

// Setup creates the TATP tables on the engine and loads them.
func (w *Workload) Setup(e *engine.Engine) error {
	if err := w.SetupSchema(e); err != nil {
		return err
	}
	return w.Load(e)
}

// SetupSchema creates the TATP tables without loading any data.  Recovery
// targets use it: restart recovery rebuilds the contents from the log and a
// checkpoint, but the schema (like the partitioning metadata of Section 3.1)
// is re-created from the definition.
func (w *Workload) SetupSchema(e *engine.Engine) error {
	bounds := w.Boundaries()
	tables := []catalog.TableDef{
		{
			Name:       TableSubscriber,
			Boundaries: bounds,
			Secondaries: []catalog.SecondaryDef{
				{Name: IndexSubNbr, PartitionAligned: false},
			},
		},
		{Name: TableAccessInfo, Boundaries: bounds},
		{Name: TableSpecialFacility, Boundaries: bounds},
		{Name: TableCallForwarding, Boundaries: bounds},
	}
	for _, def := range tables {
		if _, err := e.CreateTable(def); err != nil {
			return err
		}
	}
	return nil
}

// Load populates the tables with Subscribers rows and their children.
func (w *Workload) Load(e *engine.Engine) error {
	rng := rand.New(rand.NewSource(1))
	l := e.NewLoader()
	for sid := uint64(1); sid <= uint64(w.cfg.Subscribers); sid++ {
		sub := Subscriber{
			SID:         sid,
			SubNbr:      SubNbrOf(sid),
			MSCLocation: rng.Uint32(),
			VLRLocation: rng.Uint32(),
		}
		for i := range sub.BitFields {
			sub.BitFields[i] = rng.Intn(2) == 1
		}
		for i := range sub.HexFields {
			sub.HexFields[i] = uint8(rng.Intn(16))
			sub.ByteFields[i] = uint8(rng.Intn(256))
		}
		if err := l.Insert(TableSubscriber, SubscriberKey(sid), sub.Marshal()); err != nil {
			return fmt.Errorf("load subscriber %d: %w", sid, err)
		}
		if err := l.InsertSecondary(TableSubscriber, IndexSubNbr, SubNbrKey(sub.SubNbr), SubscriberKey(sid)); err != nil {
			return fmt.Errorf("load sub_nbr index %d: %w", sid, err)
		}

		// 1..4 access-info rows.
		nAI := 1 + rng.Intn(4)
		for t := 1; t <= nAI; t++ {
			ai := AccessInfo{SID: sid, AIType: uint8(t), Data1: uint8(rng.Intn(256)), Data2: uint8(rng.Intn(256))}
			if err := l.Insert(TableAccessInfo, AccessInfoKey(sid, uint8(t)), ai.Marshal()); err != nil {
				return err
			}
		}
		// 1..4 special-facility rows, each with 0..3 call-forwarding rows.
		nSF := 1 + rng.Intn(4)
		for t := 1; t <= nSF; t++ {
			sf := SpecialFacility{SID: sid, SFType: uint8(t), IsActive: rng.Intn(100) < 85, DataA: uint8(rng.Intn(256))}
			if err := l.Insert(TableSpecialFacility, SpecialFacilityKey(sid, uint8(t)), sf.Marshal()); err != nil {
				return err
			}
			nCF := rng.Intn(4)
			for c := 0; c < nCF; c++ {
				cf := CallForwarding{SID: sid, SFType: uint8(t), StartTime: uint8(8 * c), EndTime: uint8(8*c + 8)}
				if err := l.Insert(TableCallForwarding, CallForwardingKey(sid, uint8(t), cf.StartTime), cf.Marshal()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// randomSID picks a subscriber id, honouring the configured skew.
func (w *Workload) randomSID(rng *rand.Rand) uint64 {
	n := uint64(w.cfg.Subscribers)
	s := w.skew.Load()
	if s.probability > 0 && s.fraction > 0 && rng.Float64() < s.probability {
		hot := uint64(float64(n) * s.fraction)
		if hot == 0 {
			hot = 1
		}
		return 1 + uint64(rng.Int63n(int64(hot)))
	}
	return 1 + uint64(rng.Int63n(int64(n)))
}

// SetSkew reconfigures the access skew (used by the Figure 8 experiment to
// switch from uniform to skewed requests mid-run).  Safe to call while
// worker goroutines are drawing keys.
func (w *Workload) SetSkew(hotFraction, hotProbability float64) {
	w.skew.Store(&skew{fraction: hotFraction, probability: hotProbability})
}

// NextRequest generates the next transaction request.
func (w *Workload) NextRequest(rng *rand.Rand) *engine.Request {
	switch w.cfg.Mix {
	case MixGetSubscriberData:
		return w.GetSubscriberData(w.randomSID(rng))
	case MixInsertDeleteCallFwd:
		if rng.Intn(2) == 0 {
			return w.InsertCallForwarding(rng, w.randomSID(rng))
		}
		return w.DeleteCallForwarding(rng, w.randomSID(rng))
	case MixBalanceProbe:
		return w.BalanceProbe(w.randomSID(rng))
	case MixUpdateLocation:
		return w.UpdateLocation(rng, w.randomSID(rng))
	default:
		return w.standardMix(rng)
	}
}

// standardMix draws from the standard TATP transaction mix.
func (w *Workload) standardMix(rng *rand.Rand) *engine.Request {
	p := rng.Intn(100)
	sid := w.randomSID(rng)
	switch {
	case p < 35:
		return w.GetSubscriberData(sid)
	case p < 45:
		return w.GetNewDestination(rng, sid)
	case p < 80:
		return w.GetAccessData(rng, sid)
	case p < 82:
		return w.UpdateSubscriberData(rng, sid)
	case p < 96:
		return w.UpdateLocation(rng, sid)
	case p < 98:
		return w.InsertCallForwarding(rng, sid)
	default:
		return w.DeleteCallForwarding(rng, sid)
	}
}

// GetSubscriberData reads one subscriber row (read-only, the Figure 5
// transaction).
func (w *Workload) GetSubscriberData(sid uint64) *engine.Request {
	key := SubscriberKey(sid)
	return engine.NewRequest(engine.Action{
		Table: TableSubscriber,
		Key:   key,
		Exec: func(c *engine.Ctx) error {
			rec, err := c.Read(TableSubscriber, key)
			if err != nil {
				return err
			}
			_, err = UnmarshalSubscriber(rec)
			return err
		},
	})
}

// BalanceProbe reads a subscriber's location fields (the microbenchmark
// probe of the Figure 8 repartitioning experiment).
func (w *Workload) BalanceProbe(sid uint64) *engine.Request {
	key := SubscriberKey(sid)
	return engine.NewRequest(engine.Action{
		Table: TableSubscriber,
		Key:   key,
		Exec: func(c *engine.Ctx) error {
			_, err := c.Read(TableSubscriber, key)
			return err
		},
	})
}

// GetNewDestination reads a special-facility row and scans its
// call-forwarding rows.
func (w *Workload) GetNewDestination(rng *rand.Rand, sid uint64) *engine.Request {
	sfType := uint8(1 + rng.Intn(4))
	sfKey := SpecialFacilityKey(sid, sfType)
	lo := CallForwardingKey(sid, sfType, 0)
	hi := CallForwardingKey(sid, sfType, 24)
	return engine.NewRequest(engine.Action{
		Table: TableSpecialFacility,
		Key:   SubscriberKey(sid),
		Exec: func(c *engine.Ctx) error {
			if _, err := c.Read(TableSpecialFacility, sfKey); err != nil {
				if isNotFound(err) {
					return nil // valid TATP outcome: facility absent
				}
				return err
			}
			return c.ReadRange(TableCallForwarding, lo, hi, func(_, _ []byte) bool { return true })
		},
	})
}

// GetAccessData reads one access-info row.
func (w *Workload) GetAccessData(rng *rand.Rand, sid uint64) *engine.Request {
	aiType := uint8(1 + rng.Intn(4))
	key := AccessInfoKey(sid, aiType)
	return engine.NewRequest(engine.Action{
		Table: TableAccessInfo,
		Key:   SubscriberKey(sid),
		Exec: func(c *engine.Ctx) error {
			_, err := c.Read(TableAccessInfo, key)
			if isNotFound(err) {
				return nil
			}
			return err
		},
	})
}

// UpdateSubscriberData updates a subscriber bit field and a
// special-facility data field.
func (w *Workload) UpdateSubscriberData(rng *rand.Rand, sid uint64) *engine.Request {
	subKey := SubscriberKey(sid)
	sfType := uint8(1 + rng.Intn(4))
	sfKey := SpecialFacilityKey(sid, sfType)
	bit := rng.Intn(2) == 1
	dataA := uint8(rng.Intn(256))
	return engine.NewRequest(engine.Action{
		Table: TableSubscriber,
		Key:   subKey,
		Exec: func(c *engine.Ctx) error {
			rec, err := c.Read(TableSubscriber, subKey)
			if err != nil {
				return err
			}
			sub, err := UnmarshalSubscriber(rec)
			if err != nil {
				return err
			}
			sub.BitFields[0] = bit
			return c.Update(TableSubscriber, subKey, sub.Marshal())
		},
	}, engine.Action{
		Table: TableSpecialFacility,
		Key:   subKey,
		Exec: func(c *engine.Ctx) error {
			rec, err := c.Read(TableSpecialFacility, sfKey)
			if err != nil {
				if isNotFound(err) {
					return nil
				}
				return err
			}
			rec = append([]byte(nil), rec...)
			rec[11] = dataA
			return c.Update(TableSpecialFacility, sfKey, rec)
		},
	})
}

// VLRLocationOffset is where the 4-byte big-endian VLR location sits in
// the fixed subscriber row layout: sid (8) + bit fields (10) + hex fields
// (10) + byte fields (10) + MSC location (4).
const VLRLocationOffset = 42

// GetSubscriberDataPlan is GetSubscriberData as a declarative plan: a
// single closure-free Get, shippable over the wire with a cacheable shape.
func (w *Workload) GetSubscriberDataPlan(sid uint64) *plan.Plan {
	return plan.New().Get(TableSubscriber, SubscriberKey(sid)).MustBuild()
}

// UpdateLocationPlan is UpdateLocation as a declarative plan: phase 1
// resolves the sub_nbr through the secondary index, phase 2 overwrites the
// 4-byte VLR location field in place — no closures and no whole-row
// shipping.
func (w *Workload) UpdateLocationPlan(sid uint64, newLoc uint32) *plan.Plan {
	var loc [4]byte
	binary.BigEndian.PutUint32(loc[:], newLoc)
	b := plan.New()
	b.LookupSecondary(TableSubscriber, IndexSubNbr, SubNbrKey(SubNbrOf(sid)))
	b.Then().SetField(TableSubscriber, SubscriberKey(sid), VLRLocationOffset, loc[:])
	return b.MustBuild()
}

// NextPlan generates the mix's next transaction as a declarative plan.
// Only the single-table mixes have plan equivalents so far; the others
// return nil and the caller falls back to NextRequest.
func (w *Workload) NextPlan(rng *rand.Rand) *plan.Plan {
	switch w.cfg.Mix {
	case MixGetSubscriberData:
		return w.GetSubscriberDataPlan(w.randomSID(rng))
	case MixBalanceProbe:
		return w.GetSubscriberDataPlan(w.randomSID(rng))
	case MixUpdateLocation:
		sid := w.randomSID(rng)
		return w.UpdateLocationPlan(sid, rng.Uint32())
	default:
		return nil
	}
}

// UpdateLocation looks a subscriber up by sub_nbr through the secondary
// index and updates its VLR location.  UpdateLocationPlan is the
// closure-free equivalent.
func (w *Workload) UpdateLocation(rng *rand.Rand, sid uint64) *engine.Request {
	subNbr := SubNbrOf(sid)
	newLoc := rng.Uint32()
	subKey := SubscriberKey(sid)
	req := &engine.Request{}
	// Phase 1: resolve the sub_nbr through the (non-partition-aligned)
	// secondary index; phase 2: the owning partition applies the update.
	req.AddPhase(engine.Action{
		Table: TableSubscriber,
		Key:   subKey,
		Exec: func(c *engine.Ctx) error {
			_, err := c.LookupSecondary(TableSubscriber, IndexSubNbr, SubNbrKey(subNbr))
			return err
		},
	})
	req.AddPhase(engine.Action{
		Table: TableSubscriber,
		Key:   subKey,
		Exec: func(c *engine.Ctx) error {
			rec, err := c.Read(TableSubscriber, subKey)
			if err != nil {
				return err
			}
			sub, err := UnmarshalSubscriber(rec)
			if err != nil {
				return err
			}
			sub.VLRLocation = newLoc
			return c.Update(TableSubscriber, subKey, sub.Marshal())
		},
	})
	return req
}

// InsertCallForwarding inserts a call-forwarding row (half of the Figure 6
// insert/delete-heavy stream).
func (w *Workload) InsertCallForwarding(rng *rand.Rand, sid uint64) *engine.Request {
	sfType := uint8(1 + rng.Intn(4))
	startTime := uint8(8 * rng.Intn(3))
	cf := CallForwarding{SID: sid, SFType: sfType, StartTime: startTime, EndTime: startTime + 8}
	key := CallForwardingKey(sid, sfType, startTime)
	return engine.NewRequest(engine.Action{
		Table: TableCallForwarding,
		Key:   SubscriberKey(sid),
		Exec: func(c *engine.Ctx) error {
			err := c.Insert(TableCallForwarding, key, cf.Marshal())
			if isDuplicate(err) {
				return nil // valid TATP outcome: row already exists
			}
			return err
		},
	})
}

// DeleteCallForwarding deletes a call-forwarding row.
func (w *Workload) DeleteCallForwarding(rng *rand.Rand, sid uint64) *engine.Request {
	sfType := uint8(1 + rng.Intn(4))
	startTime := uint8(8 * rng.Intn(3))
	key := CallForwardingKey(sid, sfType, startTime)
	return engine.NewRequest(engine.Action{
		Table: TableCallForwarding,
		Key:   SubscriberKey(sid),
		Exec: func(c *engine.Ctx) error {
			err := c.Delete(TableCallForwarding, key)
			if isNotFound(err) {
				return nil // valid TATP outcome: row absent
			}
			return err
		},
	})
}

// Verify checks database-level invariants after a run: every subscriber is
// still present and resolvable through the secondary index.
func (w *Workload) Verify(e *engine.Engine) error {
	l := e.NewLoader()
	step := w.cfg.Subscribers / 100
	if step == 0 {
		step = 1
	}
	for sid := 1; sid <= w.cfg.Subscribers; sid += step {
		key := SubscriberKey(uint64(sid))
		rec, err := l.Read(TableSubscriber, key)
		if err != nil {
			return fmt.Errorf("tatp verify: subscriber %d missing: %w", sid, err)
		}
		sub, err := UnmarshalSubscriber(rec)
		if err != nil {
			return err
		}
		if sub.SID != uint64(sid) {
			return fmt.Errorf("tatp verify: subscriber %d has SID %d", sid, sub.SID)
		}
	}
	return nil
}

// isNotFound reports whether err wraps engine.ErrNotFound.
func isNotFound(err error) bool { return err != nil && errors.Is(err, engine.ErrNotFound) }

// isDuplicate reports whether err wraps engine.ErrDuplicate.
func isDuplicate(err error) bool { return err != nil && errors.Is(err, engine.ErrDuplicate) }
