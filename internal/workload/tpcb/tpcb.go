// Package tpcb implements the TPC-B benchmark used by the paper's
// false-sharing experiment (Figure 7): the account records are small and
// deliberately not padded, so in the conventional, logically-partitioned and
// PLP-Regular designs unrelated hot records share heap pages and their
// updates contend on heap-page latches, while PLP-Leaf splits them across
// partition-private pages automatically.
package tpcb

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/plan"
)

// Table names.
const (
	TableBranch  = "tpcb_branch"
	TableTeller  = "tpcb_teller"
	TableAccount = "tpcb_account"
	TableHistory = "tpcb_history"
)

// Scale constants (tellers/accounts per branch as in TPC-B).
const (
	TellersPerBranch  = 10
	AccountsPerBranch = 10000
)

// Config configures the workload.
type Config struct {
	// Branches is the scale factor.
	Branches int
	// AccountsPerBranch overrides the standard 100k accounts per branch
	// (the default used here is 10k to keep in-memory runs small; the
	// relative behaviour of the designs does not depend on it).
	AccountsPerBranch int
	// Partitions must match the engine's partition count.
	Partitions int
}

// Workload is a configured TPC-B workload.
type Workload struct {
	cfg     Config
	history uint64
}

// New returns a TPC-B workload.
func New(cfg Config) *Workload {
	if cfg.Branches <= 0 {
		cfg.Branches = 1
	}
	if cfg.AccountsPerBranch <= 0 {
		cfg.AccountsPerBranch = AccountsPerBranch
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	return &Workload{cfg: cfg}
}

// Name implements the harness workload interface.
func (w *Workload) Name() string { return "tpcb" }

// Config returns the workload configuration.
func (w *Workload) Config() Config { return w.cfg }

// Account, Teller and Branch rows share a compact fixed layout:
// id (8) | balance (8) | filler — with no padding to a full page, which is
// precisely what triggers heap-page false sharing.
type row struct {
	ID      uint64
	Balance int64
	Filler  [84]byte
}

func marshalRow(r row) []byte {
	buf := make([]byte, 100)
	binary.BigEndian.PutUint64(buf[0:], r.ID)
	binary.BigEndian.PutUint64(buf[8:], uint64(r.Balance))
	copy(buf[16:], r.Filler[:])
	return buf
}

func unmarshalRow(buf []byte) (row, error) {
	var r row
	if len(buf) < 16 {
		return r, fmt.Errorf("tpcb: short row (%d bytes)", len(buf))
	}
	r.ID = binary.BigEndian.Uint64(buf[0:])
	r.Balance = int64(binary.BigEndian.Uint64(buf[8:]))
	copy(r.Filler[:], buf[16:])
	return r, nil
}

// Keys.
func branchKey(id uint64) []byte  { return keyenc.Uint64Key(id) }
func tellerKey(id uint64) []byte  { return keyenc.Uint64Key(id) }
func accountKey(id uint64) []byte { return keyenc.Uint64Key(id) }
func historyKey(id uint64) []byte { return keyenc.Uint64Key(id) }

// NumAccounts returns the total number of accounts.
func (w *Workload) NumAccounts() int { return w.cfg.Branches * w.cfg.AccountsPerBranch }

// Setup creates and loads the TPC-B tables.
func (w *Workload) Setup(e *engine.Engine) error {
	nAcc := uint64(w.NumAccounts())
	nTel := uint64(w.cfg.Branches * TellersPerBranch)
	nBr := uint64(w.cfg.Branches)
	defs := []catalog.TableDef{
		{Name: TableAccount, Boundaries: uniformBoundaries(nAcc, w.cfg.Partitions)},
		{Name: TableTeller, Boundaries: uniformBoundaries(nTel, w.cfg.Partitions)},
		{Name: TableBranch, Boundaries: uniformBoundaries(nBr, w.cfg.Partitions)},
		{Name: TableHistory, Boundaries: uniformBoundaries(1<<40, w.cfg.Partitions)},
	}
	for _, def := range defs {
		if _, err := e.CreateTable(def); err != nil {
			return err
		}
	}
	return w.Load(e)
}

// uniformBoundaries splits [1, max] into at most n ranges.  When the key
// space is smaller than the partition count (e.g. a single branch split
// across many workers) duplicate boundaries are dropped, yielding fewer
// partitions for that table; routing still spreads the other tables across
// all workers.
func uniformBoundaries(max uint64, n int) [][]byte {
	if n <= 1 {
		return nil
	}
	out := make([][]byte, 0, n-1)
	var prev uint64
	for i := 1; i < n; i++ {
		b := max*uint64(i)/uint64(n) + 1
		if b <= 1 || b == prev || b > max {
			continue
		}
		prev = b
		out = append(out, keyenc.Uint64Key(b))
	}
	return out
}

// Load populates branches, tellers and accounts with zero balances.
func (w *Workload) Load(e *engine.Engine) error {
	l := e.NewLoader()
	for b := uint64(1); b <= uint64(w.cfg.Branches); b++ {
		if err := l.Insert(TableBranch, branchKey(b), marshalRow(row{ID: b})); err != nil {
			return err
		}
	}
	for t := uint64(1); t <= uint64(w.cfg.Branches*TellersPerBranch); t++ {
		if err := l.Insert(TableTeller, tellerKey(t), marshalRow(row{ID: t})); err != nil {
			return err
		}
	}
	for a := uint64(1); a <= uint64(w.NumAccounts()); a++ {
		if err := l.Insert(TableAccount, accountKey(a), marshalRow(row{ID: a})); err != nil {
			return err
		}
	}
	return nil
}

// nextArgs draws one AccountUpdate's parameters.
func (w *Workload) nextArgs(rng *rand.Rand) (accountID, tellerID, branchID, histID uint64, delta int64) {
	accountID = 1 + uint64(rng.Int63n(int64(w.NumAccounts())))
	branchID = 1 + (accountID-1)/uint64(w.cfg.AccountsPerBranch)
	tellerID = (branchID-1)*TellersPerBranch + 1 + uint64(rng.Intn(TellersPerBranch))
	delta = int64(rng.Intn(1999999) - 999999)
	histID = uint64(rng.Int63())<<20 | uint64(rng.Int63n(1<<20))
	return
}

// NextRequest generates one AccountUpdate transaction.
func (w *Workload) NextRequest(rng *rand.Rand) *engine.Request {
	accountID, tellerID, branchID, histID, delta := w.nextArgs(rng)
	return w.AccountUpdate(accountID, tellerID, branchID, histID, delta)
}

// NextPlan generates one AccountUpdate as a declarative plan.
func (w *Workload) NextPlan(rng *rand.Rand) *plan.Plan {
	accountID, tellerID, branchID, histID, delta := w.nextArgs(rng)
	return w.AccountUpdatePlan(accountID, tellerID, branchID, histID, delta)
}

// AccountUpdate is the TPC-B transaction: update the balances of one
// account, its teller and its branch, and insert a history row.  The three
// updates touch different tables and partitions, so the partitioned designs
// run them as parallel actions of one transaction.
func (w *Workload) AccountUpdate(accountID, tellerID, branchID, histID uint64, delta int64) *engine.Request {
	updateBalance := func(table string, key []byte) func(*engine.Ctx) error {
		return func(c *engine.Ctx) error {
			// The branch (and teller) rows are hot: take the exclusive lock
			// up front to avoid upgrade deadlocks in the conventional design.
			rec, err := c.ReadForUpdate(table, key)
			if err != nil {
				return err
			}
			r, err := unmarshalRow(rec)
			if err != nil {
				return err
			}
			r.Balance += delta
			return c.Update(table, key, marshalRow(r))
		}
	}
	hist := row{ID: histID, Balance: delta}
	return engine.NewRequest(
		engine.Action{Table: TableAccount, Key: accountKey(accountID), Exec: updateBalance(TableAccount, accountKey(accountID))},
		engine.Action{Table: TableTeller, Key: tellerKey(tellerID), Exec: updateBalance(TableTeller, tellerKey(tellerID))},
		engine.Action{Table: TableBranch, Key: branchKey(branchID), Exec: updateBalance(TableBranch, branchKey(branchID))},
		engine.Action{Table: TableHistory, Key: historyKey(histID), Exec: func(c *engine.Ctx) error {
			return c.Insert(TableHistory, historyKey(histID), marshalRow(hist))
		}},
	)
}

// balanceOffset is where the big-endian int64 balance sits in the fixed
// row layout (after the 8-byte id).
const balanceOffset = 8

// AccountUpdatePlan is AccountUpdate as a declarative plan: three in-place
// balance increments and the history insert, with no closures — the plan
// can be shipped over the wire and its compiled shape cached server-side.
// All four ops are one phase; they touch distinct keys, so the partitioned
// designs still run them as parallel actions of one transaction.
func (w *Workload) AccountUpdatePlan(accountID, tellerID, branchID, histID uint64, delta int64) *plan.Plan {
	hist := row{ID: histID, Balance: delta}
	return plan.New().
		AddFieldInt64(TableAccount, accountKey(accountID), balanceOffset, delta).
		AddFieldInt64(TableTeller, tellerKey(tellerID), balanceOffset, delta).
		AddFieldInt64(TableBranch, branchKey(branchID), balanceOffset, delta).
		Insert(TableHistory, historyKey(histID), marshalRow(hist)).
		MustBuild()
}

// Verify checks the TPC-B consistency condition: the sum of account
// balances equals the sum of branch balances equals the sum of teller
// balances (every committed transaction applies the same delta to all
// three).
func (w *Workload) Verify(e *engine.Engine) error {
	l := e.NewLoader()
	sum := func(table string) (int64, error) {
		var total int64
		err := l.ReadRange(table, nil, nil, func(_, rec []byte) bool {
			r, err := unmarshalRow(rec)
			if err != nil {
				return false
			}
			total += r.Balance
			return true
		})
		return total, err
	}
	accounts, err := sum(TableAccount)
	if err != nil {
		return err
	}
	tellers, err := sum(TableTeller)
	if err != nil {
		return err
	}
	branches, err := sum(TableBranch)
	if err != nil {
		return err
	}
	if accounts != tellers || tellers != branches {
		return fmt.Errorf("tpcb verify: balance sums diverge: accounts=%d tellers=%d branches=%d",
			accounts, tellers, branches)
	}
	history, err := sum(TableHistory)
	if err != nil {
		return err
	}
	if history != accounts {
		return fmt.Errorf("tpcb verify: history sum %d != account sum %d", history, accounts)
	}
	return nil
}
