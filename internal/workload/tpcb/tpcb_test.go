package tpcb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"plp/internal/engine"
)

func setup(t *testing.T, design engine.Design) (*engine.Engine, *Workload) {
	t.Helper()
	e := engine.New(engine.Options{Design: design, Partitions: 4, SLI: design == engine.Conventional})
	t.Cleanup(func() { _ = e.Close() })
	w := New(Config{Branches: 1, AccountsPerBranch: 500, Partitions: 4})
	if err := w.Setup(e); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return e, w
}

func TestLoadAndInitialConsistency(t *testing.T) {
	e, w := setup(t, engine.Conventional)
	if err := w.Verify(e); err != nil {
		t.Fatalf("freshly loaded database inconsistent: %v", err)
	}
	l := e.NewLoader()
	if _, err := l.Read(TableAccount, accountKey(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(TableBranch, branchKey(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Read(TableTeller, tellerKey(TellersPerBranch)); err != nil {
		t.Fatal(err)
	}
}

func TestRowRoundTrip(t *testing.T) {
	r := row{ID: 9, Balance: -1234}
	got, err := unmarshalRow(marshalRow(r))
	if err != nil || got.ID != 9 || got.Balance != -1234 {
		t.Fatalf("round trip: %+v %v", got, err)
	}
	if _, err := unmarshalRow([]byte{1}); err == nil {
		t.Fatal("short row accepted")
	}
}

func TestBalanceConservationAllDesigns(t *testing.T) {
	for _, design := range engine.AllDesigns() {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			e, w := setup(t, design)
			const clients = 4
			const perClient = 150
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					sess := e.NewSession()
					defer sess.Close()
					rng := rand.New(rand.NewSource(int64(c + 1)))
					for i := 0; i < perClient; i++ {
						if _, err := sess.Execute(w.NextRequest(rng)); err != nil && !errors.Is(err, engine.ErrAborted) {
							t.Errorf("client %d: %v", c, err)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			if t.Failed() {
				return
			}
			if e.TxnStats().Committed == 0 {
				t.Fatal("nothing committed")
			}
			// The TPC-B invariant: account, teller, branch and history sums
			// all match, even though each transaction's updates ran as
			// parallel actions on different partition workers.
			if err := w.Verify(e); err != nil {
				t.Fatalf("consistency violated: %v", err)
			}
		})
	}
}

func TestAccountUpdateIsAtomicUnderAbort(t *testing.T) {
	e, w := setup(t, engine.PLPLeaf)
	sess := e.NewSession()
	defer sess.Close()
	// A request against a nonexistent account aborts; the teller/branch
	// updates that may already have run must be rolled back.
	req := w.AccountUpdate(99999999, 1, 1, 12345, 100)
	if _, err := sess.Execute(req); err == nil {
		t.Fatal("expected abort for missing account")
	}
	if err := w.Verify(e); err != nil {
		t.Fatalf("abort left the database inconsistent: %v", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	w := New(Config{})
	if w.cfg.Branches != 1 || w.cfg.AccountsPerBranch != AccountsPerBranch || w.cfg.Partitions != 1 {
		t.Fatalf("defaults wrong: %+v", w.cfg)
	}
	if w.Name() != "tpcb" {
		t.Fatal("name wrong")
	}
	if w.NumAccounts() != AccountsPerBranch {
		t.Fatal("NumAccounts wrong")
	}
}

func TestAccountUpdatePlanMatchesClosure(t *testing.T) {
	e, w := setup(t, engine.PLPLeaf)
	sess := e.NewSession()
	defer sess.Close()
	// Apply the same transaction once through the closure path and once
	// through the plan path; every touched balance must move by delta both
	// times.
	const delta = 777
	if _, err := sess.Execute(w.AccountUpdate(3, 2, 1, 100, delta)); err != nil {
		t.Fatalf("closure path: %v", err)
	}
	if _, err := sess.ExecutePlan(w.AccountUpdatePlan(3, 2, 1, 101, delta)); err != nil {
		t.Fatalf("plan path: %v", err)
	}
	l := e.NewLoader()
	for _, tc := range []struct {
		table string
		key   []byte
	}{
		{TableAccount, accountKey(3)},
		{TableTeller, tellerKey(2)},
		{TableBranch, branchKey(1)},
	} {
		rec, err := l.Read(tc.table, tc.key)
		if err != nil {
			t.Fatal(err)
		}
		r, err := unmarshalRow(rec)
		if err != nil {
			t.Fatal(err)
		}
		if r.Balance != 2*delta {
			t.Fatalf("%s balance = %d, want %d", tc.table, r.Balance, 2*delta)
		}
	}
	if err := w.Verify(e); err != nil {
		t.Fatalf("consistency: %v", err)
	}
}

func TestPlanBalanceConservationAllDesigns(t *testing.T) {
	for _, design := range engine.AllDesigns() {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			e, w := setup(t, design)
			sess := e.NewSession()
			defer sess.Close()
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 200; i++ {
				if _, err := sess.ExecutePlan(w.NextPlan(rng)); err != nil && !errors.Is(err, engine.ErrAborted) {
					t.Fatalf("txn %d: %v", i, err)
				}
			}
			if err := w.Verify(e); err != nil {
				t.Fatalf("consistency violated: %v", err)
			}
		})
	}
}

func TestAccountUpdatePlanAbortsOnMissingAccount(t *testing.T) {
	e, w := setup(t, engine.PLPLeaf)
	sess := e.NewSession()
	defer sess.Close()
	if _, err := sess.ExecutePlan(w.AccountUpdatePlan(99999999, 1, 1, 12345, 100)); err == nil {
		t.Fatal("expected abort for missing account")
	}
	if err := w.Verify(e); err != nil {
		t.Fatalf("abort left the database inconsistent: %v", err)
	}
}
