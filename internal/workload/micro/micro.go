// Package micro implements the microbenchmarks of the paper's evaluation:
//
//   - ProbeInsert: a single-table workload that mixes index probes with
//     record inserts at a configurable ratio, used by the Appendix B
//     experiment on parallel structure-modification operations (Figure 10).
//   - Fragmentation: a bulk loader of fixed-size records used by the heap
//     space-overhead and scan-time experiments (Figures 11 and 12).
package micro

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

// ProbeInsertTable is the table used by the probe/insert microbenchmark.
const ProbeInsertTable = "micro_probe_insert"

// ProbeInsertConfig configures the probe/insert microbenchmark.
type ProbeInsertConfig struct {
	// InitialRows is the number of rows loaded before the run.
	InitialRows int
	// InsertPercent is the fraction (0-100) of requests that insert a new
	// row; the rest probe existing rows.
	InsertPercent int
	// RecordSize is the record payload size in bytes.
	RecordSize int
	// Partitions must match the engine's partition count.
	Partitions int
}

// ProbeInsert is the probe/insert microbenchmark.
type ProbeInsert struct {
	cfg    ProbeInsertConfig
	nextID atomic.Uint64
}

// NewProbeInsert returns a probe/insert workload.
func NewProbeInsert(cfg ProbeInsertConfig) *ProbeInsert {
	if cfg.InitialRows <= 0 {
		cfg.InitialRows = 10000
	}
	if cfg.RecordSize <= 0 {
		cfg.RecordSize = 100
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	w := &ProbeInsert{cfg: cfg}
	w.nextID.Store(uint64(cfg.InitialRows))
	return w
}

// Name implements the harness workload interface.
func (w *ProbeInsert) Name() string {
	return fmt.Sprintf("micro-probe-insert-%d%%", w.cfg.InsertPercent)
}

// Boundaries returns the partition boundaries.  New rows get ever-larger
// ids, so the key space is sized generously ahead of the initial rows.
func (w *ProbeInsert) Boundaries() [][]byte {
	max := uint64(w.cfg.InitialRows) * 16
	if w.cfg.Partitions <= 1 {
		return nil
	}
	out := make([][]byte, 0, w.cfg.Partitions-1)
	for i := 1; i < w.cfg.Partitions; i++ {
		out = append(out, keyenc.Uint64Key(max*uint64(i)/uint64(w.cfg.Partitions)+1))
	}
	return out
}

// Setup creates and loads the table.
func (w *ProbeInsert) Setup(e *engine.Engine) error {
	if _, err := e.CreateTable(catalog.TableDef{
		Name:       ProbeInsertTable,
		Boundaries: w.Boundaries(),
	}); err != nil {
		return err
	}
	l := e.NewLoader()
	rec := make([]byte, w.cfg.RecordSize)
	for i := 1; i <= w.cfg.InitialRows; i++ {
		if err := l.Insert(ProbeInsertTable, keyenc.Uint64Key(uint64(i)), rec); err != nil {
			return err
		}
	}
	return nil
}

// NextRequest issues a probe or an insert according to the configured mix.
// Inserts spread across the whole key space so that every partition (and
// every sub-tree of an MRBTree) takes splits.
func (w *ProbeInsert) NextRequest(rng *rand.Rand) *engine.Request {
	if rng.Intn(100) < w.cfg.InsertPercent {
		// Insert a fresh key: interleave new ids across the key space by
		// salting the sequential id with a partition-spreading stride.
		seq := w.nextID.Add(1)
		max := uint64(w.cfg.InitialRows) * 16
		key := keyenc.Uint64Key((seq*2654435761)%max + 1)
		rec := make([]byte, w.cfg.RecordSize)
		return engine.NewRequest(engine.Action{
			Table: ProbeInsertTable,
			Key:   key,
			Exec: func(c *engine.Ctx) error {
				err := c.Insert(ProbeInsertTable, key, rec)
				if err != nil && isDuplicate(err) {
					return nil
				}
				return err
			},
		})
	}
	key := keyenc.Uint64Key(1 + uint64(rng.Int63n(int64(w.cfg.InitialRows))))
	return engine.NewRequest(engine.Action{
		Table: ProbeInsertTable,
		Key:   key,
		Exec: func(c *engine.Ctx) error {
			_, err := c.Read(ProbeInsertTable, key)
			if err != nil && isNotFound(err) {
				return nil
			}
			return err
		},
	})
}

// Verify checks that the initially loaded rows are still present.
func (w *ProbeInsert) Verify(e *engine.Engine) error {
	l := e.NewLoader()
	step := w.cfg.InitialRows / 50
	if step == 0 {
		step = 1
	}
	for i := 1; i <= w.cfg.InitialRows; i += step {
		if _, err := l.Read(ProbeInsertTable, keyenc.Uint64Key(uint64(i))); err != nil {
			return fmt.Errorf("micro verify: row %d missing: %w", i, err)
		}
	}
	return nil
}

// FragmentationTable is the table used by the heap-fragmentation experiment.
const FragmentationTable = "micro_fragmentation"

// FragmentationConfig configures the Figure 11/12 loader.
type FragmentationConfig struct {
	// Records is the number of records to load.
	Records int
	// RecordSize is the record size in bytes (the paper uses 100 and 1000).
	RecordSize int
	// Partitions must match the engine's partition count.
	Partitions int
}

// LoadFragmentation creates the table and loads Records records of
// RecordSize bytes, returning the resulting number of heap pages.  Running
// it against engines of different designs reproduces the space-overhead
// comparison of Figure 11.
func LoadFragmentation(e *engine.Engine, cfg FragmentationConfig) (heapPages int, err error) {
	if cfg.Records <= 0 || cfg.RecordSize <= 0 {
		return 0, fmt.Errorf("micro: bad fragmentation config %+v", cfg)
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 1
	}
	max := uint64(cfg.Records) + 1
	var bounds [][]byte
	for i := 1; i < cfg.Partitions; i++ {
		bounds = append(bounds, keyenc.Uint64Key(max*uint64(i)/uint64(cfg.Partitions)+1))
	}
	tbl, err := e.CreateTable(catalog.TableDef{Name: FragmentationTable, Boundaries: bounds})
	if err != nil {
		return 0, err
	}
	l := e.NewLoader()
	rec := make([]byte, cfg.RecordSize)
	for i := 1; i <= cfg.Records; i++ {
		if err := l.Insert(FragmentationTable, keyenc.Uint64Key(uint64(i)), rec); err != nil {
			return 0, err
		}
	}
	if tbl.Heap == nil {
		return 0, nil
	}
	return tbl.Heap.NumPages(), nil
}

func isDuplicate(err error) bool { return err != nil && errors.Is(err, engine.ErrDuplicate) }
func isNotFound(err error) bool  { return err != nil && errors.Is(err, engine.ErrNotFound) }
