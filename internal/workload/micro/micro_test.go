package micro

import (
	"errors"
	"math/rand"
	"testing"

	"plp/internal/engine"
)

func TestProbeInsertSetupAndRun(t *testing.T) {
	for _, pct := range []int{0, 50, 100} {
		pct := pct
		t.Run(w(pct), func(t *testing.T) {
			e := engine.New(engine.Options{Design: engine.PLPRegular, Partitions: 4})
			defer e.Close()
			wl := NewProbeInsert(ProbeInsertConfig{InitialRows: 500, InsertPercent: pct, RecordSize: 64, Partitions: 4})
			if err := wl.Setup(e); err != nil {
				t.Fatal(err)
			}
			sess := e.NewSession()
			defer sess.Close()
			rng := rand.New(rand.NewSource(1))
			inserts := 0
			for i := 0; i < 200; i++ {
				req := wl.NextRequest(rng)
				if _, err := sess.Execute(req); err != nil && !errors.Is(err, engine.ErrAborted) {
					t.Fatalf("request %d: %v", i, err)
				}
			}
			if err := wl.Verify(e); err != nil {
				t.Fatal(err)
			}
			_ = inserts
			// At 100% inserts the table must have grown.
			if pct == 100 {
				tbl, err := e.Table(ProbeInsertTable)
				if err != nil {
					t.Fatal(err)
				}
				n, err := tbl.Primary.Count(nil)
				if err != nil {
					t.Fatal(err)
				}
				if n <= 500 {
					t.Fatalf("insert-only run did not grow the table: %d rows", n)
				}
			}
		})
	}
}

func w(pct int) string { return NewProbeInsert(ProbeInsertConfig{InsertPercent: pct}).Name() }

func TestProbeInsertDefaults(t *testing.T) {
	wl := NewProbeInsert(ProbeInsertConfig{})
	if wl.cfg.InitialRows != 10000 || wl.cfg.RecordSize != 100 || wl.cfg.Partitions != 1 {
		t.Fatalf("defaults wrong: %+v", wl.cfg)
	}
	if wl.Boundaries() != nil {
		t.Fatal("single partition should have no boundaries")
	}
}

func TestLoadFragmentationCountsPages(t *testing.T) {
	badCfg := FragmentationConfig{Records: 0, RecordSize: 100}
	e := engine.New(engine.Options{Design: engine.Conventional, Partitions: 1})
	if _, err := LoadFragmentation(e, badCfg); err == nil {
		t.Fatal("bad config accepted")
	}
	e.Close()

	pagesFor := func(design engine.Design) int {
		e := engine.New(engine.Options{Design: design, Partitions: 4})
		defer e.Close()
		pages, err := LoadFragmentation(e, FragmentationConfig{Records: 3000, RecordSize: 100, Partitions: 4})
		if err != nil {
			t.Fatal(err)
		}
		return pages
	}
	conv := pagesFor(engine.Conventional)
	leaf := pagesFor(engine.PLPLeaf)
	if conv == 0 || leaf == 0 {
		t.Fatal("no pages counted")
	}
	// PLP-Leaf scatters records across leaf-owned pages and must use at
	// least as many pages as the shared pool (the Figure 11 effect).
	if leaf < conv {
		t.Fatalf("PLP-Leaf used fewer pages (%d) than Conventional (%d)", leaf, conv)
	}
}
