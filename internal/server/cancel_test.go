package server

// Regression tests for the cancel-registration race: a cancel frame arriving
// immediately behind its request must find the request's flag already
// registered (the reader registers before dispatching), and a completed
// request must delete exactly its own flag — a client reusing a request ID
// must not have the older request's completion reap the newer one's flag.

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/wire"
)

// dialRawV3 opens a raw connection and completes a v3 handshake.
func dialRawV3(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	if err := wire.WriteFrame(conn, wire.EncodeHello(&wire.Hello{MaxVersion: wire.V3})); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Err != "" || ack.Version < wire.V3 {
		t.Fatalf("handshake: %+v", ack)
	}
	return conn
}

// TestCancelImmediatelyAfterSend hammers the tightest cancellation race the
// wire allows: each request frame and its cancel frame leave in ONE TCP
// write, so the reader sees the cancel as early as physically possible.
// Every request must still get exactly one response, and the response's
// verdict must match the engine's state — a cancelled-and-aborted upsert
// must have no effect, a committed one must be readable.
func TestCancelImmediatelyAfterSend(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	conn := dialRawV3(t, addr)

	const n = 300
	committed := make(map[uint64]bool, n)
	for i := uint64(1); i <= n; i++ {
		var buf bytes.Buffer
		req := &wire.Request{ID: i, Statements: []wire.Statement{{
			Op: wire.OpUpsert, Table: "accounts", Key: keyenc.Uint64Key(i), Value: []byte(fmt.Sprintf("c-%d", i)),
		}}}
		if err := wire.WriteFrame(&buf, wire.EncodeRequestV(req, wire.V3)); err != nil {
			t.Fatal(err)
		}
		if err := wire.WriteFrame(&buf, wire.EncodeCancelRequest(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp, err := wire.DecodeResponseV(payload, wire.V3)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.ID != i {
			t.Fatalf("response %d for request %d: the cancel desynchronized the stream", resp.ID, i)
		}
		committed[i] = resp.Committed
	}

	// The connection survived the hammering and every verdict matches the
	// engine's state.
	c := dial(t, addr)
	seen := 0
	for i := uint64(1); i <= n; i++ {
		_, err := c.Get("accounts", keyenc.Uint64Key(i))
		if committed[i] && err != nil {
			t.Fatalf("request %d acknowledged committed but its key is missing: %v", i, err)
		}
		if !committed[i] && err == nil {
			t.Fatalf("request %d was cancelled/aborted but its upsert is visible", i)
		}
		if committed[i] {
			seen++
		}
	}
	t.Logf("cancel hammer: %d/%d requests outran their cancel", seen, n)
}

// TestCancelWithReusedRequestID reuses one request ID for a pipelined pair
// of requests with a cancel wedged between them.  With a plain delete in the
// executor, the first request's completion could reap the flag the reader
// registered for the second, dropping the cancel on the floor silently; the
// compare-and-delete keeps each completion scoped to its own flag.  The
// observable contract: two responses, stream stays ordered and usable.
func TestCancelWithReusedRequestID(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	conn := dialRawV3(t, addr)

	mkReq := func(key uint64) []byte {
		return wire.EncodeRequestV(&wire.Request{ID: 42, Statements: []wire.Statement{{
			Op: wire.OpUpsert, Table: "accounts", Key: keyenc.Uint64Key(key), Value: []byte("dup"),
		}}}, wire.V3)
	}
	for round := 0; round < 100; round++ {
		var buf bytes.Buffer
		for _, payload := range [][]byte{mkReq(1000), wire.EncodeCancelRequest(42), mkReq(2000)} {
			if err := wire.WriteFrame(&buf, payload); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := conn.Write(buf.Bytes()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			payload, err := wire.ReadFrame(conn)
			if err != nil {
				t.Fatalf("round %d response %d: %v", round, i, err)
			}
			resp, err := wire.DecodeResponseV(payload, wire.V3)
			if err != nil {
				t.Fatal(err)
			}
			if resp.ID != 42 {
				t.Fatalf("round %d: response for unknown ID %d", round, resp.ID)
			}
		}
	}

	// Still alive and well-ordered.
	c := dial(t, addr)
	if err := c.Ping([]byte("post-reuse")); err != nil {
		t.Fatal(err)
	}
}
