package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plp/client"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/wire"
)

// TestHandshakeNegotiation checks a default client negotiates the newest
// protocol version on an open server and may issue control commands.
func TestHandshakeNegotiation(t *testing.T) {
	_, srv, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)
	if c.Version() != wire.MaxVersion {
		t.Fatalf("negotiated version %d, want %d", c.Version(), wire.MaxVersion)
	}
	if !c.Authenticated() {
		t.Fatal("open server should authenticate every session")
	}
	if srv.Stats().Handshakes == 0 {
		t.Fatal("server did not count the handshake")
	}
}

// TestHandshakeNegotiatesDownFromFutureVersion checks a client offering a
// version the server does not speak is negotiated down to the server's
// maximum.
func TestHandshakeNegotiatesDownFromFutureVersion(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.EncodeHello(&wire.Hello{MaxVersion: 7})); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := wire.DecodeHelloAck(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version != wire.MaxVersion || ack.Err != "" {
		t.Fatalf("ack %+v, want negotiated version %d", ack, wire.MaxVersion)
	}
}

// TestV1ClientAgainstV2Server checks a legacy client (no HELLO) still
// completes transactions — the backwards-compatibility acceptance bar.
func TestV1ClientAgainstV2Server(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	c, err := client.DialContext(context.Background(), addr, &client.DialOptions{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	if c.Version() != wire.V1 {
		t.Fatalf("version %d, want 1", c.Version())
	}
	key := client.Uint64Key(4711)
	if err := c.Insert("accounts", key, []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	val, err := c.Get("accounts", key)
	if err != nil || string(val) != "legacy" {
		t.Fatalf("get: %q, %v", val, err)
	}
	txn := client.NewTxn().
		Upsert("accounts", client.Uint64Key(1), []byte("a")).
		Upsert("accounts", client.Uint64Key(2), []byte("b"))
	if _, err := c.Do(txn); err != nil {
		t.Fatal(err)
	}
	// v2-only operations must fail client-side on the v1 session.
	if _, err := c.Scan("accounts", nil, nil, 10); !errors.Is(err, client.ErrVersion) {
		t.Fatalf("scan on v1 session: %v, want ErrVersion", err)
	}
}

// TestAuthToken covers the three token outcomes: matching token
// authenticated, wrong token refused, no token unauthenticated (data ops
// only).
func TestAuthToken(t *testing.T) {
	_, srv, addr := startServer(t, engine.PLPLeaf)
	srv.SetAuthToken("s3cret")
	srv.SetControlHandler(stubControl{})

	// Wrong token: the session is refused outright.
	_, err := client.DialContext(context.Background(), addr, &client.DialOptions{Token: "wrong"})
	if !errors.Is(err, client.ErrAuth) {
		t.Fatalf("wrong token: %v, want ErrAuth", err)
	}
	if srv.Stats().AuthFailures == 0 {
		t.Fatal("server did not count the auth failure")
	}

	// No token: data transactions work, control is refused.
	anon, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = anon.Close() })
	if anon.Authenticated() {
		t.Fatal("tokenless session reported authenticated")
	}
	if err := anon.Upsert("accounts", client.Uint64Key(10), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.Control("status", ""); err == nil || !strings.Contains(err.Error(), "authenticated") {
		t.Fatalf("unauthenticated control: %v, want refusal", err)
	}

	// Legacy v1 sessions are likewise unauthenticated on a token server.
	v1, err := client.DialContext(context.Background(), addr, &client.DialOptions{Version: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = v1.Close() })
	if err := v1.Upsert("accounts", client.Uint64Key(11), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := v1.Control("status", ""); err == nil {
		t.Fatal("v1 control on a token server should be refused")
	}

	// The right token authenticates and control works.
	authed, err := client.DialContext(context.Background(), addr, &client.DialOptions{Token: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = authed.Close() })
	if !authed.Authenticated() {
		t.Fatal("matching token did not authenticate")
	}
	out, err := authed.Control("status", "")
	if err != nil || out != "stub-ok" {
		t.Fatalf("authed control: %q, %v", out, err)
	}
}

// stubControl is a trivial control handler for auth tests.
type stubControl struct{}

func (stubControl) Control(cmd, table string) (string, error) { return "stub-ok", nil }

// blockingControl parks "block" commands on a gate so tests can hold one
// request in flight while others complete.
type blockingControl struct {
	entered chan struct{}
	gate    chan struct{}
}

func (b *blockingControl) Control(cmd, table string) (string, error) {
	if cmd == "block" {
		b.entered <- struct{}{}
		<-b.gate
		return "unblocked", nil
	}
	return "", fmt.Errorf("unknown command %q", cmd)
}

// TestPipelinedOutOfOrderCompletion holds one request of a connection
// blocked inside the server while a later request of the same connection
// completes — the out-of-order property the v1 serial loop cannot provide.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	_, srv, addr := startServer(t, engine.PLPLeaf)
	bc := &blockingControl{entered: make(chan struct{}), gate: make(chan struct{})}
	srv.SetControlHandler(bc)
	c := dial(t, addr)

	type ctl struct {
		out string
		err error
	}
	first := make(chan ctl, 1)
	go func() {
		out, err := c.Control("block", "")
		first <- ctl{out, err}
	}()
	select {
	case <-bc.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked control never reached the handler")
	}

	// A later request on the same connection completes while the first is
	// still parked inside the server.
	if err := c.Upsert("accounts", client.Uint64Key(500), []byte("overtakes")); err != nil {
		t.Fatal(err)
	}
	val, err := c.Get("accounts", client.Uint64Key(500))
	if err != nil || string(val) != "overtakes" {
		t.Fatalf("overtaking get: %q, %v", val, err)
	}
	select {
	case r := <-first:
		t.Fatalf("blocked request completed early: %+v", r)
	default:
	}

	close(bc.gate)
	r := <-first
	if r.err != nil || r.out != "unblocked" {
		t.Fatalf("unblocked control: %q, %v", r.out, r.err)
	}
}

// TestContextCancellationMidFlight cancels a request while the server is
// still executing it: the call returns the context error, the eventual
// response is discarded, and the connection stays usable.
func TestContextCancellationMidFlight(t *testing.T) {
	_, srv, addr := startServer(t, engine.PLPLeaf)
	bc := &blockingControl{entered: make(chan struct{}), gate: make(chan struct{})}
	srv.SetControlHandler(bc)
	c := dial(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-bc.entered
		cancel()
	}()
	_, err := c.ControlContext(ctx, "block", "")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled control: %v, want context.Canceled", err)
	}

	close(bc.gate) // the server finishes; the client discards the response
	if err := c.Ping([]byte("still alive")); err != nil {
		t.Fatalf("connection unusable after cancellation: %v", err)
	}
	if err := c.Upsert("accounts", client.Uint64Key(600), []byte("v")); err != nil {
		t.Fatalf("write after cancellation: %v", err)
	}
	st := srv.Stats()
	if st.Requests == 0 {
		t.Fatal("no requests counted")
	}
}

// TestScanOverWire loads a keyspace and drives OpScan round trips through
// every scan shape: bounded, limited, open-ended and empty.
func TestScanOverWire(t *testing.T) {
	for _, design := range []engine.Design{engine.Conventional, engine.PLPLeaf} {
		design := design
		t.Run(design.String(), func(t *testing.T) {
			_, _, addr := startServer(t, design)
			c := dial(t, addr)
			for k := uint64(1); k <= 200; k++ {
				if err := c.Upsert("accounts", client.Uint64Key(k), []byte(fmt.Sprintf("v%d", k))); err != nil {
					t.Fatal(err)
				}
			}

			// Bounded scan spanning partition boundaries (they sit at 2500,
			// 5000, 7500 — all keys are in partition 0 here, so also scan
			// wide to cross them below).
			entries, err := c.Scan("accounts", client.Uint64Key(50), client.Uint64Key(150), 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 100 {
				t.Fatalf("bounded scan returned %d entries, want 100", len(entries))
			}
			for i, e := range entries {
				wantKey := client.Uint64Key(uint64(50 + i))
				if !bytes.Equal(e.Key, wantKey) {
					t.Fatalf("entry %d key %x, want %x (results not in key order)", i, e.Key, wantKey)
				}
				if string(e.Value) != fmt.Sprintf("v%d", 50+i) {
					t.Fatalf("entry %d value %q", i, e.Value)
				}
			}

			// Limit returns the smallest keys of the range.
			entries, err = c.Scan("accounts", client.Uint64Key(50), client.Uint64Key(150), 10)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 10 || !bytes.Equal(entries[9].Key, client.Uint64Key(59)) {
				t.Fatalf("limited scan: %d entries, last %x", len(entries), entries[len(entries)-1].Key)
			}

			// Open upper bound scans to the end of the table.
			entries, err = c.Scan("accounts", client.Uint64Key(190), nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 11 {
				t.Fatalf("open scan returned %d entries, want 11", len(entries))
			}

			// An empty range is not an error.
			entries, err = c.Scan("accounts", client.Uint64Key(5_000_000), nil, 0)
			if err != nil || len(entries) != 0 {
				t.Fatalf("empty scan: %d entries, %v", len(entries), err)
			}
		})
	}
}

// TestScanCrossesPartitions spreads keys over all four partitions and
// checks one scan stitches their results back together in key order.
func TestScanCrossesPartitions(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)
	// Partition boundaries are 2500/5000/7500: one key in each partition.
	want := []uint64{100, 3000, 6000, 9000}
	for _, k := range want {
		if err := c.Upsert("accounts", client.Uint64Key(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := c.Scan("accounts", nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("scan returned %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if !bytes.Equal(e.Key, client.Uint64Key(want[i])) {
			t.Fatalf("entry %d key %x, want key %d", i, e.Key, want[i])
		}
	}
	// A limit smaller than the partition count must still return the
	// globally smallest keys, not whichever partitions finished first.
	limited, err := c.Scan("accounts", nil, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 2 || !bytes.Equal(limited[0].Key, client.Uint64Key(100)) ||
		!bytes.Equal(limited[1].Key, client.Uint64Key(3000)) {
		t.Fatalf("limited cross-partition scan returned wrong keys: %+v", limited)
	}
}

// TestScanMustBeAlone checks a scan bundled with other statements aborts.
func TestScanMustBeAlone(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)
	txn := client.NewTxn().
		Scan("accounts", nil, nil, 10).
		Upsert("accounts", client.Uint64Key(1), []byte("v"))
	if _, err := c.Do(txn); !errors.Is(err, client.ErrAborted) {
		t.Fatalf("scan inside a transaction: %v, want ErrAborted", err)
	}
}

// TestDeleteSecondaryOverWire closes the wire's secondary-index symmetry
// gap: entries inserted over the wire can be removed over the wire.
func TestDeleteSecondaryOverWire(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)
	key := client.Uint64Key(77)
	if _, err := c.Do(client.NewTxn().
		Insert("accounts", key, []byte("rec")).
		InsertSecondary("accounts", "by_name", []byte("alice"), key)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBySecondary("accounts", "by_name", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteSecondary("accounts", "by_name", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GetBySecondary("accounts", "by_name", []byte("alice")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("after delete: %v, want ErrNotFound", err)
	}
	// Deleting a missing entry is idempotent.
	if err := c.DeleteSecondary("accounts", "by_name", []byte("alice")); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestDecodeErrorEchoesRequestID checks a corrupt request still gets its ID
// echoed back, so ID-matching clients do not desynchronize.
func TestDecodeErrorEchoesRequestID(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A payload with a valid ID prefix and a hostile statement count.
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint64(payload[:8], 7777)
	binary.LittleEndian.PutUint32(payload[8:12], 0xFFFFFFFF)
	if err := wire.WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	respPayload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.DecodeResponse(respPayload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7777 {
		t.Fatalf("decode-error response ID %d, want 7777", resp.ID)
	}
	if resp.Committed || resp.Err == "" {
		t.Fatalf("expected a decode error response, got %+v", resp)
	}
}

// TestPipelinedManyInFlight floods one connection with concurrent
// transactions from many goroutines and verifies every response matches its
// request — the multiplexing correctness check.
func TestPipelinedManyInFlight(t *testing.T) {
	e, _, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)
	const n = 400
	ctx := context.Background()
	futures := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futures[i] = c.DoAsync(ctx, client.NewTxn().
			Upsert("accounts", client.Uint64Key(uint64(i+1)), []byte(fmt.Sprintf("w%d", i+1))))
	}
	for i, f := range futures {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	// Every write landed, none was lost or cross-matched.
	for i := 0; i < n; i++ {
		val, err := c.Get("accounts", client.Uint64Key(uint64(i+1)))
		if err != nil || string(val) != fmt.Sprintf("w%d", i+1) {
			t.Fatalf("key %d: %q, %v", i+1, val, err)
		}
	}
	l := e.NewLoader()
	count := 0
	if err := l.ReadRange("accounts", nil, nil, func(_, _ []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("engine holds %d records, want %d", count, n)
	}
}

// TestEngineScanRangeLimit exercises the engine-level bounded scan
// directly: the limit is enforced (modulo concurrent overshoot the server
// truncates) and clipping skips partitions outside the range.
func TestEngineScanRangeLimit(t *testing.T) {
	_, srv, _ := startServer(t, engine.PLPLeaf)
	e := srv.e
	l := e.NewLoader()
	for k := uint64(1); k <= 9000; k += 100 {
		if err := l.Insert("accounts", keyenc.Uint64Key(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var visited atomic.Int64
	st, err := e.ScanRange("accounts", keyenc.Uint64Key(2000), keyenc.Uint64Key(2600), 0, func(_ int, _, _ []byte) {
		visited.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keys 2001..2501 step 100 → 6 records, spanning the 2500 boundary.
	if st.Records != 6 || visited.Load() != 6 {
		t.Fatalf("clipped scan visited %d records (stats %d), want 6", visited.Load(), st.Records)
	}
	if st.Partitions != 2 {
		t.Fatalf("clipped scan used %d partitions, want 2", st.Partitions)
	}
	st, err = e.ScanRange("accounts", nil, nil, 7, func(_ int, _, _ []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records < 7 {
		t.Fatalf("limited scan visited %d records, want >= 7", st.Records)
	}
}
