//go:build !race

package server

// raceEnabled reports whether this binary was built with the race detector.
const raceEnabled = false
