// Package server exposes a PLP engine over TCP using the wire protocol.
//
// Each accepted connection is served by one goroutine that reads framed
// requests, executes each as one transaction through an engine Session, and
// writes the framed response.  The partition manager inside the engine does
// the actual work distribution: the server only translates wire statements
// into routable actions, exactly the role the "partition manager" layer of
// Section 3.1 plays for incoming transactions.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/engine"
	"plp/wire"
)

// ErrClosed is returned by Serve after Close has been called.
var ErrClosed = errors.New("server: closed")

// ControlHandler serves the wire protocol's OpControl statements — the
// administrative verbs of plpctl.  The online repartitioning controller
// (package repartition) implements it; a server without a handler rejects
// control statements.
type ControlHandler interface {
	// Control executes one command ("status", "trigger", "shares", ...)
	// with an optional table argument and returns its text output.
	Control(cmd, table string) (string, error)
}

// Stats reports server activity.
type Stats struct {
	// Connections is the number of connections accepted so far.
	Connections uint64
	// Requests is the number of transactions processed.
	Requests uint64
	// Committed and Aborted split Requests by outcome.
	Committed uint64
	Aborted   uint64
}

// Server serves one engine over a listener.
type Server struct {
	e *engine.Engine

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	connections atomic.Uint64
	requests    atomic.Uint64
	committed   atomic.Uint64
	aborted     atomic.Uint64

	control atomic.Pointer[ControlHandler]
}

// New returns a server for the engine.
func New(e *engine.Engine) *Server {
	return &Server{e: e, conns: make(map[net.Conn]struct{})}
}

// SetControlHandler installs (or, with nil, removes) the handler behind the
// wire protocol's control statements.
func (s *Server) SetControlHandler(h ControlHandler) {
	if h == nil {
		s.control.Store(nil)
		return
	}
	s.control.Store(&h)
}

// Stats returns a snapshot of server activity.
func (s *Server) Stats() Stats {
	return Stats{
		Connections: s.connections.Load(),
		Requests:    s.requests.Load(),
		Committed:   s.committed.Load(),
		Aborted:     s.aborted.Load(),
	}
}

// Listen starts listening on addr ("host:port"; ":0" picks a free port) and
// returns the bound address.  Serve must be called to accept connections.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called.  It returns ErrClosed on
// orderly shutdown.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve called before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			// Transient accept errors: back off briefly and keep serving.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connections.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe combines Listen and Serve; the bound address is sent on
// ready (if non-nil) before accepting starts.
func (s *Server) ListenAndServe(addr string, ready chan<- string) error {
	bound, err := s.Listen(addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- bound
	}
	return s.Serve()
}

// Close stops accepting, closes every active connection and waits for the
// per-connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// serveConn is the per-connection loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	sess := s.e.NewSession()
	defer sess.Close()

	for {
		payload, err := wire.ReadFrame(conn)
		if err != nil {
			return // connection closed or corrupt framing: drop the connection
		}
		req, err := wire.DecodeRequest(payload)
		var resp *wire.Response
		if err != nil {
			resp = &wire.Response{Err: fmt.Sprintf("decode: %v", err)}
		} else {
			resp = s.execute(sess, req)
		}
		if err := wire.WriteFrame(conn, wire.EncodeResponse(resp)); err != nil {
			return
		}
	}
}

// execute runs one wire request as a transaction.
func (s *Server) execute(sess *engine.Session, req *wire.Request) *wire.Response {
	s.requests.Add(1)
	resp := &wire.Response{ID: req.ID, Results: make([]wire.StatementResult, len(req.Statements))}
	if len(req.Statements) == 0 {
		resp.Committed = true
		s.committed.Add(1)
		return resp
	}

	// Pings and control statements never run as transactions; a request
	// made only of them is answered directly.
	allAdmin := true
	hasControl := false
	for _, st := range req.Statements {
		switch st.Op {
		case wire.OpPing:
		case wire.OpControl:
			hasControl = true
		default:
			allAdmin = false
		}
	}
	if hasControl && !allAdmin {
		resp.Err = "control statements must be sent alone, not inside a transaction"
		s.aborted.Add(1)
		return resp
	}
	if allAdmin {
		for i, st := range req.Statements {
			if st.Op == wire.OpPing {
				resp.Results[i] = wire.StatementResult{Found: true, Value: append([]byte(nil), st.Value...)}
				continue
			}
			resp.Results[i] = s.executeControl(st)
		}
		resp.Committed = true
		s.committed.Add(1)
		return resp
	}

	ereq, err := s.buildRequest(req, resp.Results)
	if err != nil {
		resp.Err = err.Error()
		s.aborted.Add(1)
		return resp
	}
	if _, err := sess.Execute(ereq); err != nil {
		resp.Err = err.Error()
		s.aborted.Add(1)
		return resp
	}
	resp.Committed = true
	s.committed.Add(1)
	return resp
}

// executeControl runs one control statement through the attached handler.
func (s *Server) executeControl(st wire.Statement) wire.StatementResult {
	p := s.control.Load()
	if p == nil {
		return wire.StatementResult{Err: "server has no control handler (start plpd with -drp)"}
	}
	out, err := (*p).Control(string(st.Key), st.Table)
	if err != nil {
		return wire.StatementResult{Err: err.Error()}
	}
	return wire.StatementResult{Found: true, Value: []byte(out)}
}

// buildRequest translates wire statements into a routable engine request.
// Statements are packed into phases greedily; a statement that touches a key
// already written in the current phase starts a new phase, preserving the
// client-visible ordering guarantees while still letting independent
// statements execute in parallel on different partitions.
func (s *Server) buildRequest(req *wire.Request, results []wire.StatementResult) (*engine.Request, error) {
	out := &engine.Request{}
	var phase []engine.Action
	touched := make(map[string]struct{})

	flush := func() {
		if len(phase) > 0 {
			out.Phases = append(out.Phases, phase)
			phase = nil
			touched = make(map[string]struct{})
		}
	}

	for i, st := range req.Statements {
		if st.Op == wire.OpPing {
			results[i] = wire.StatementResult{Found: true, Value: append([]byte(nil), st.Value...)}
			continue
		}
		if st.Table == "" {
			return nil, fmt.Errorf("statement %d: missing table", i)
		}
		if _, err := s.e.Table(st.Table); err != nil {
			return nil, fmt.Errorf("statement %d: %v", i, err)
		}

		if st.Op == wire.OpGetBySecondary {
			// The paper's pattern for non-partition-aligned indexes: probe
			// the (latched, conventional) secondary index first, then route
			// the record access to the partition that owns the primary key
			// it returned.
			flush()
			idx := i
			stmt := st
			var primaryKey []byte
			out.Phases = append(out.Phases, []engine.Action{{
				Table: stmt.Table,
				Key:   stmt.Key,
				Exec: func(c *engine.Ctx) error {
					pk, err := c.LookupSecondary(stmt.Table, stmt.Index, stmt.Key)
					if errors.Is(err, engine.ErrNotFound) {
						results[idx] = wire.StatementResult{Found: false}
						return nil
					}
					if err != nil {
						results[idx] = wire.StatementResult{Err: err.Error()}
						return err
					}
					primaryKey = pk
					return nil
				},
			}})
			out.Phases = append(out.Phases, []engine.Action{{
				Table: stmt.Table,
				Key:   stmt.Key,
				KeyFn: func() []byte {
					if primaryKey != nil {
						return primaryKey
					}
					return stmt.Key
				},
				Exec: func(c *engine.Ctx) error {
					if primaryKey == nil {
						return nil // the probe missed; result already set
					}
					val, err := c.Read(stmt.Table, primaryKey)
					if err != nil {
						results[idx] = wire.StatementResult{Err: err.Error()}
						return err
					}
					results[idx] = wire.StatementResult{Found: true, Value: val}
					return nil
				},
			}})
			continue
		}

		key := string(st.Key)
		if _, dup := touched[st.Table+"\x00"+key]; dup {
			flush()
		}
		touched[st.Table+"\x00"+key] = struct{}{}

		idx := i
		stmt := st
		phase = append(phase, engine.Action{
			Table: stmt.Table,
			Key:   stmt.Key,
			Exec: func(c *engine.Ctx) error {
				res, err := execStatement(c, stmt)
				if err != nil {
					results[idx] = wire.StatementResult{Err: err.Error()}
					return err
				}
				results[idx] = res
				return nil
			},
		})
	}
	flush()
	return out, nil
}

// execStatement performs one statement through the data-access layer.
func execStatement(c *engine.Ctx, st wire.Statement) (wire.StatementResult, error) {
	switch st.Op {
	case wire.OpGet:
		val, err := c.Read(st.Table, st.Key)
		if errors.Is(err, engine.ErrNotFound) {
			return wire.StatementResult{Found: false}, nil
		}
		if err != nil {
			return wire.StatementResult{}, err
		}
		return wire.StatementResult{Found: true, Value: val}, nil
	case wire.OpInsert:
		return wire.StatementResult{Found: true}, c.Insert(st.Table, st.Key, st.Value)
	case wire.OpUpdate:
		return wire.StatementResult{Found: true}, c.Update(st.Table, st.Key, st.Value)
	case wire.OpUpsert:
		exists, err := c.Exists(st.Table, st.Key)
		if err != nil {
			return wire.StatementResult{}, err
		}
		if exists {
			return wire.StatementResult{Found: true}, c.Update(st.Table, st.Key, st.Value)
		}
		return wire.StatementResult{Found: true}, c.Insert(st.Table, st.Key, st.Value)
	case wire.OpDelete:
		return wire.StatementResult{Found: true}, c.Delete(st.Table, st.Key)
	case wire.OpInsertSecondary:
		return wire.StatementResult{Found: true}, c.InsertSecondary(st.Table, st.Index, st.Key, st.Value)
	default:
		return wire.StatementResult{}, fmt.Errorf("unsupported op %v", st.Op)
	}
}
