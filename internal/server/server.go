// Package server exposes a PLP engine over TCP using the wire protocol.
//
// The server speaks both wire-protocol versions.  A connection whose first
// frame is a HELLO is a v2 session: the handshake negotiates the protocol
// version and authenticates the optional token, and from then on the
// connection is *pipelined* — one reader goroutine decodes frames, a
// bounded per-connection pool of executor goroutines runs each request as
// its own transaction on its own engine Session, and one writer goroutine
// sends responses back in completion order, matched to requests by ID.
// That keeps every partition worker of the engine busy from a single
// connection, instead of serializing the connection on one request at a
// time.  A connection that opens with a plain request is a legacy v1
// session and keeps the old serial read-execute-write loop and its
// in-order replies.
//
// The partition manager inside the engine does the actual work
// distribution: the server only translates wire statements into routable
// actions, exactly the role the "partition manager" layer of Section 3.1
// plays for incoming transactions.
package server

import (
	"bufio"
	"bytes"
	"crypto/subtle"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"plp/internal/engine"
	"plp/internal/repl"
	"plp/plan"
	"plp/wire"
)

// ErrClosed is returned by Serve after Close has been called.
var ErrClosed = errors.New("server: closed")

// Pipelining and scan bounds.
const (
	// DefaultConnWorkers is the per-connection executor pool size for v2
	// sessions: the number of requests of one connection that can execute
	// concurrently inside the engine.
	DefaultConnWorkers = 16
	// DefaultConnQueue is the per-connection bound on decoded requests
	// waiting for an executor; together with the pool it caps a
	// connection's in-flight requests (backpressure is the TCP window).
	DefaultConnQueue = 64
	// DefaultScanLimit is applied when an OpScan asks for no limit.
	DefaultScanLimit = 1024
	// MaxScanLimit caps any OpScan, protecting the server from a scan that
	// would materialize an entire table into one response frame.
	MaxScanLimit = 65536
)

// ControlHandler serves the wire protocol's OpControl statements — the
// administrative verbs of plpctl.  The online repartitioning controller
// (package repartition) implements it; a server without a handler rejects
// control statements.
type ControlHandler interface {
	// Control executes one command ("status", "trigger", "shares", ...)
	// with an optional table argument and returns its text output.
	Control(cmd, table string) (string, error)
}

// CheckpointFunc serves the "checkpoint" control verb: take one checkpoint
// now and return a human-readable summary.  It is separate from
// ControlHandler because checkpointing belongs to the durability stack
// (engine.Checkpoint), not to the repartitioning controller, and a durable
// server wants the verb even when -drp is off.
type CheckpointFunc func() (string, error)

// Stats reports server activity.
type Stats struct {
	// Connections is the number of connections accepted so far.
	Connections uint64
	// Handshakes is the number of v2 sessions negotiated.
	Handshakes uint64
	// AuthFailures is the number of sessions refused for a bad token.
	AuthFailures uint64
	// Requests is the number of transactions processed.
	Requests uint64
	// Committed and Aborted split Requests by outcome.
	Committed uint64
	Aborted   uint64
}

// Server serves one engine over a listener.
type Server struct {
	e *engine.Engine

	// ConnWorkers and ConnQueue override the per-connection executor pool
	// size and pending-request bound for v2 sessions (0 selects the
	// defaults).  Set them before Serve.
	ConnWorkers int
	ConnQueue   int

	// TLSConfig, when set, wraps the listener in TLS.  Set before Listen.
	TLSConfig *tls.Config

	// PeerTLSConfig, when set, wraps the peer connections this server dials
	// (shard prepares, decides, janitor queries) in TLS — the client-side
	// counterpart of the peers' TLSConfig.  Set before SetShardConfig.
	PeerTLSConfig *tls.Config

	// PeerCallTimeout and JanitorPeriod override the shard-peer call
	// deadline (default 3s) and the 2PC janitor's resolution interval
	// (default 250ms); chaos tests tighten them, high-latency links loosen
	// them.  Set before SetShardConfig.
	PeerCallTimeout time.Duration
	JanitorPeriod   time.Duration

	// ReplHeartbeat overrides the idle-stream heartbeat interval on
	// replication connections (default 1s): followers lease the primary's
	// liveness off frame arrival.  Set before Serve.
	ReplHeartbeat time.Duration

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	connections  atomic.Uint64
	handshakes   atomic.Uint64
	authFailures atomic.Uint64
	requests     atomic.Uint64
	committed    atomic.Uint64
	aborted      atomic.Uint64

	control    atomic.Pointer[ControlHandler]
	checkpoint atomic.Pointer[CheckpointFunc]
	token      atomic.Pointer[string]
	roToken    atomic.Pointer[string]
	sharding   atomic.Pointer[shardState]

	replPrimary  atomic.Pointer[repl.Primary]
	followerMode atomic.Bool
	promote      atomic.Pointer[PromoteFunc]
	replStatus   atomic.Pointer[ReplStatusFunc]
	seedingFn    atomic.Pointer[func() bool]

	// replConns tracks the live replication-subscriber connections so a
	// role transition (promote/demote) can sever them: a follower left
	// subscribed to a demoted ex-primary would otherwise have its lease
	// refreshed forever by heartbeats from a frozen log.
	replConnsMu sync.Mutex
	replConns   map[net.Conn]struct{}
}

// New returns a server for the engine.
func New(e *engine.Engine) *Server {
	return &Server{e: e, conns: make(map[net.Conn]struct{}), replConns: make(map[net.Conn]struct{})}
}

// SetControlHandler installs (or, with nil, removes) the handler behind the
// wire protocol's control statements.
func (s *Server) SetControlHandler(h ControlHandler) {
	if h == nil {
		s.control.Store(nil)
		return
	}
	s.control.Store(&h)
}

// SetCheckpointHandler installs (or, with nil, removes) the function behind
// the "checkpoint" control verb.  Like every control verb it is gated by
// the authentication token when one is set.
func (s *Server) SetCheckpointHandler(fn CheckpointFunc) {
	if fn == nil {
		s.checkpoint.Store(nil)
		return
	}
	s.checkpoint.Store(&fn)
}

// SetAuthToken installs (or, with "", removes) the authentication token.
// With a token set, only sessions whose HELLO presented the matching token
// are authenticated: a wrong token is refused outright, and sessions
// without a token — including every legacy v1 session — may run data
// transactions but are refused OpControl.  Without a token every session is
// authenticated.  The token is snapshotted per connection at handshake
// time.
func (s *Server) SetAuthToken(token string) {
	if token == "" {
		s.token.Store(nil)
		return
	}
	s.token.Store(&token)
}

// SetReadOnlyToken installs (or, with "", removes) the read-only
// authorization token.  A session whose HELLO presents it is scoped
// read-only: data reads (gets, secondary lookups, scans, read-only plans)
// are served, while write ops and control verbs are refused.  The read-only
// token is an additional credential — it does not change what the main
// token or token-less sessions may do.
func (s *Server) SetReadOnlyToken(token string) {
	if token == "" {
		s.roToken.Store(nil)
		return
	}
	s.roToken.Store(&token)
}

// Stats returns a snapshot of server activity.
func (s *Server) Stats() Stats {
	return Stats{
		Connections:  s.connections.Load(),
		Handshakes:   s.handshakes.Load(),
		AuthFailures: s.authFailures.Load(),
		Requests:     s.requests.Load(),
		Committed:    s.committed.Load(),
		Aborted:      s.aborted.Load(),
	}
}

// Listen starts listening on addr ("host:port"; ":0" picks a free port) and
// returns the bound address.  Serve must be called to accept connections.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if s.TLSConfig != nil {
		ln = tls.NewListener(ln, s.TLSConfig)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return "", ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called.  It returns ErrClosed on
// orderly shutdown.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.listener
	s.mu.Unlock()
	if ln == nil {
		return errors.New("server: Serve called before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			// Transient accept errors: back off briefly and keep serving.
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connections.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// ListenAndServe combines Listen and Serve; the bound address is sent on
// ready (if non-nil) before accepting starts.
func (s *Server) ListenAndServe(addr string, ready chan<- string) error {
	bound, err := s.Listen(addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- bound
	}
	return s.Serve()
}

// Close stops accepting, closes every active connection and waits for the
// per-connection goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if ss := s.sharding.Load(); ss != nil {
		ss.stop()
	}
	s.wg.Wait()
	return err
}

// session is the per-connection protocol state fixed by the handshake.
type session struct {
	version  uint32
	authed   bool
	readOnly bool
}

// serveConn sniffs the first frame for a handshake and dispatches the
// connection to the serial (v1) or pipelined (v2) loop.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	// All frame reads go through one buffered reader: under pipelining many
	// frames arrive per TCP segment and the buffer turns them into one
	// syscall.
	br := bufio.NewReaderSize(conn, 64<<10)
	first, err := wire.ReadFrame(br)
	if err != nil {
		return
	}
	tok := s.token.Load()
	ro := s.roToken.Load()
	cs := session{version: wire.V1, authed: tok == nil}
	if wire.IsHello(first) {
		hello, err := wire.DecodeHello(first)
		if err != nil {
			_ = wire.WriteFrame(conn, wire.EncodeHelloAck(&wire.HelloAck{
				Version: wire.MaxVersion, Err: fmt.Sprintf("handshake: %v", err)}))
			return
		}
		cs.version = hello.MaxVersion
		if cs.version > wire.MaxVersion {
			cs.version = wire.MaxVersion
		}
		if cs.version < wire.V1 {
			cs.version = wire.V1
		}
		if (tok != nil || ro != nil) && len(hello.Token) > 0 {
			switch {
			case tok != nil && subtle.ConstantTimeCompare([]byte(*tok), hello.Token) == 1:
				cs.authed = true
			case ro != nil && subtle.ConstantTimeCompare([]byte(*ro), hello.Token) == 1:
				// Read-only scope: data reads only, never control — even on
				// a server whose control verbs are otherwise open.
				cs.readOnly = true
				cs.authed = false
			default:
				s.authFailures.Add(1)
				_ = wire.WriteFrame(conn, wire.EncodeHelloAck(&wire.HelloAck{
					Version: cs.version, Err: "authentication failed"}))
				return
			}
		}
		if err := wire.WriteFrame(conn, wire.EncodeHelloAck(&wire.HelloAck{
			Version: cs.version, Authenticated: cs.authed, ReadOnly: cs.readOnly})); err != nil {
			return
		}
		s.handshakes.Add(1)
		first = nil
	}
	if cs.version >= wire.V3 {
		// A replication subscription announces itself as the first
		// post-handshake frame; everything else enters the pipelined loop
		// with the frame it already read.
		payload, err := wire.ReadFrame(br)
		if err != nil {
			return
		}
		if len(payload) > 8 && wire.FrameKind(payload[8]) == wire.FrameReplSubscribe {
			s.serveReplication(conn, br, payload, cs)
			return
		}
		s.servePipelined(conn, br, payload, cs)
		return
	}
	if cs.version >= wire.V2 {
		s.servePipelined(conn, br, nil, cs)
		return
	}
	s.serveSerial(conn, br, first, cs)
}

// serveSerial is the legacy v1 loop: one request at a time, responses in
// request order.  first is a request frame already read by the handshake
// sniff (nil when the session started with a HELLO that negotiated v1).
func (s *Server) serveSerial(conn net.Conn, br *bufio.Reader, first []byte, cs session) {
	sess := s.e.NewSession()
	defer sess.Close()

	payload := first
	var encBuf []byte // reused response encode buffer for the session
	for {
		if payload == nil {
			var err error
			payload, err = wire.ReadFrame(br)
			if err != nil {
				return // connection closed or corrupt framing: drop the connection
			}
		}
		resp := s.handleFrame(sess, payload, cs, nil)
		payload = nil
		encBuf = wire.AppendResponseV(encBuf[:0], resp, cs.version)
		if err := wire.WriteFrame(conn, encBuf); err != nil {
			return
		}
	}
}

// workItem is one queued request frame plus its cancellation flag, set by
// the reader when a later cancel frame names the request's ID.
type workItem struct {
	payload  []byte
	canceled *atomic.Bool
}

// outMsg is one frame bound for the writer goroutine: either a response to
// encode, or a pre-encoded raw frame (streaming-scan chunks).  A raw frame
// must be freshly allocated by the sender — the writer owns it after
// hand-off.
type outMsg struct {
	resp *wire.Response
	raw  []byte
}

// servePipelined is the v2+ loop: this goroutine reads and decodes frames, a
// bounded executor pool runs each request on its own engine session, and a
// writer goroutine sends responses in completion order.  On v3 sessions the
// reader also intercepts cancel frames — they must not queue behind the very
// requests they cancel — and flips the named request's flag, which the
// executing transaction polls before every op.
func (s *Server) servePipelined(conn net.Conn, br *bufio.Reader, first []byte, cs session) {
	workers := s.ConnWorkers
	if workers <= 0 {
		workers = DefaultConnWorkers
	}
	queue := s.ConnQueue
	if queue <= 0 {
		queue = DefaultConnQueue
	}

	work := make(chan workItem, queue)
	out := make(chan outMsg, queue)
	writerDone := make(chan struct{})
	connDone := make(chan struct{}) // closed when the reader loop exits
	var inflight sync.Map           // request ID -> *atomic.Bool (cancel flag)
	var scanFlows sync.Map          // request ID -> *scanFlow (open streams)

	go func() {
		defer close(writerDone)
		// Responses are buffered and flushed only when the outbox drains:
		// under load many responses leave in one syscall, while an idle
		// connection still gets every response immediately.
		bw := bufio.NewWriterSize(conn, 64<<10)
		broken := false
		fail := func() {
			broken = true
			_ = conn.Close() // unblocks the reader, which winds the pipeline down
		}
		// One encode buffer serves every response of the connection:
		// WriteFrame copies it into the buffered writer before the next
		// reply is encoded, so reuse is safe and steady-state encoding
		// stops allocating per reply.
		var encBuf []byte
		for m := range out {
			if broken {
				continue // keep draining so executors never block on out
			}
			payload := m.raw
			if payload == nil {
				encBuf = wire.AppendResponseV(encBuf[:0], m.resp, cs.version)
				payload = encBuf
			}
			if err := wire.WriteFrame(bw, payload); err != nil {
				fail()
				continue
			}
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					fail()
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.e.NewSession()
			defer sess.Close()
			for item := range work {
				if cs.version >= wire.V3 && len(item.payload) > 8 && wire.FrameKind(item.payload[8]) == wire.FrameScan {
					// A streaming scan emits its chunks itself and holds
					// this executor slot until the stream ends.
					s.streamScan(item.payload, item.canceled, out, &scanFlows, connDone)
				} else {
					out <- outMsg{resp: s.handleFrame(sess, item.payload, cs, item.canceled)}
				}
				if id, ok := wire.RequestID(item.payload); ok {
					// Delete exactly this request's flag.  A client reusing a
					// request ID makes a plain Delete racy: the older
					// request's completion could reap the flag the reader
					// just registered for the newer one, silently dropping a
					// cancel aimed at it.
					inflight.CompareAndDelete(id, item.canceled)
				}
			}
		}()
	}

	payload := first
	for {
		if payload == nil {
			var err error
			payload, err = wire.ReadFrame(br)
			if err != nil {
				break
			}
		}
		if cs.version >= wire.V3 && wire.IsScanAckFrame(payload) {
			// Scan credits are intercepted like cancels: they regulate
			// executors already running, so they must never queue behind
			// the very streams they pace.
			creditScan(&scanFlows, payload)
			payload = nil
			continue
		}
		if cs.version >= wire.V3 && len(payload) > 8 && wire.FrameKind(payload[8]) == wire.FrameCancel {
			// A cancel names an in-flight request by ID.  One for a request
			// already completed (or never seen) is stale and ignored; one
			// for a request still queued or executing flips its flag, and
			// the transaction aborts at the next op boundary.  A canceled
			// stream is also woken so a credit-stalled producer notices.
			if id, ok := wire.RequestID(payload); ok {
				if flag, ok := inflight.Load(id); ok {
					flag.(*atomic.Bool).Store(true)
				}
				if fl, ok := scanFlows.Load(id); ok {
					fl.(*scanFlow).wake()
				}
			}
			payload = nil
			continue
		}
		item := workItem{payload: payload, canceled: &atomic.Bool{}}
		if id, ok := wire.RequestID(payload); ok {
			inflight.Store(id, item.canceled)
		}
		work <- item
		payload = nil
	}
	close(connDone) // unblock credit-stalled streams: their client is gone
	close(work)
	wg.Wait()
	close(out)
	<-writerDone
}

// handleFrame decodes one request frame and executes it.  A decode failure
// still echoes the best-effort request ID so ID-matching clients stay in
// sync.
func (s *Server) handleFrame(sess *engine.Session, payload []byte, cs session, canceled *atomic.Bool) *wire.Response {
	if cs.version >= wire.V3 {
		f, err := wire.DecodeFrameV3(payload)
		if err != nil {
			id, _ := wire.RequestID(payload)
			return &wire.Response{ID: id, Err: fmt.Sprintf("decode: %v", err)}
		}
		switch f.Kind {
		case wire.FramePlan:
			return s.executePlan(sess, f.ID, f.Plan, cs, canceled)
		case wire.FrameCancel, wire.FrameScan, wire.FrameScanAck:
			// Cancels, streaming scans and their acks are intercepted before
			// handleFrame; one reaching here came over a transport that
			// should not produce it (the serial v1 loop, a shard peer call).
			return &wire.Response{ID: f.ID, Err: fmt.Sprintf("unexpected frame kind %d", f.Kind), Retry: wire.RetryPermanent}
		case wire.FrameShardMap:
			return s.executeShardMap(f.ID)
		case wire.FramePrepare:
			if s.followerMode.Load() {
				return &wire.Response{ID: f.ID, Err: wire.FollowerPrefix + ": prepare refused — follower nodes take no transaction branches"}
			}
			return s.executePrepare(sess, f, cs)
		case wire.FrameDecide:
			if s.followerMode.Load() {
				return &wire.Response{ID: f.ID, Err: wire.FollowerPrefix + ": decide refused — follower nodes take no transaction branches"}
			}
			return s.executeDecide(f, cs)
		default:
			return s.execute(sess, f.Req, cs, canceled)
		}
	}
	req, err := wire.DecodeRequestV(payload, cs.version)
	if err != nil {
		id, _ := wire.RequestID(payload)
		return &wire.Response{ID: id, Err: fmt.Sprintf("decode: %v", err)}
	}
	return s.execute(sess, req, cs, canceled)
}

// followerRefusal fills resp with a follower-mode write refusal.  When the
// node knows a shard map it rides along in the results — after a failover
// the ex-primary's refusals carry the post-promotion replica sets, so a
// routing client adopts the new primary from the refusal itself instead of
// hunting for a member that will answer a refresh.
func (s *Server) followerRefusal(resp *wire.Response, msg string) *wire.Response {
	resp.Err = msg
	if m := s.ShardMap(); m != nil {
		resp.Results = []wire.StatementResult{{Value: m.Encode()}}
	}
	s.aborted.Add(1)
	return resp
}

// writesOp reports whether a flat statement op modifies the database.
func writesOp(op wire.OpType) bool {
	switch op {
	case wire.OpInsert, wire.OpUpdate, wire.OpUpsert, wire.OpDelete,
		wire.OpInsertSecondary, wire.OpDeleteSecondary:
		return true
	default:
		return false
	}
}

// classifyAbort translates an execution error into the V3 retry hint: lock
// timeouts (deadlock-avoidance aborts) are transient, everything else —
// cancels, validation, data errors — reproduces on retry.
func classifyAbort(err error) wire.RetryHint {
	if err == nil {
		return wire.RetryUnknown
	}
	if engine.IsTransientAbort(err) {
		return wire.RetryTransient
	}
	return wire.RetryPermanent
}

// executePlan runs one declarative plan frame as a single transaction.
func (s *Server) executePlan(sess *engine.Session, id uint64, p *plan.Plan, cs session, canceled *atomic.Bool) *wire.Response {
	s.requests.Add(1)
	start := latPlan.sampleStart()
	defer func() { latPlan.observe(start) }()
	resp := &wire.Response{ID: id}
	if cs.readOnly && p.Writes() {
		resp.Err = "read-only session: plan contains write ops"
		resp.Retry = wire.RetryPermanent
		s.aborted.Add(1)
		return resp
	}
	if s.followerMode.Load() && p.Writes() {
		resp.Retry = wire.RetryPermanent
		return s.followerRefusal(resp, wire.FollowerPrefix+": plan contains write ops — this node replicates a primary (write there, or promote this node)")
	}
	if s.followerMode.Load() && s.seeding() {
		resp.Retry = wire.RetryPermanent
		return s.followerRefusal(resp, wire.FollowerPrefix+": plan refused — this follower is mid re-seed and not yet a consistent replica (read another member)")
	}
	if canceled != nil && canceled.Load() {
		resp.Err = engine.ErrPlanCanceled.Error()
		resp.Retry = wire.RetryPermanent
		s.aborted.Add(1)
		return resp
	}
	results := make([]plan.Result, p.NumOps())
	var hook func() bool
	if canceled != nil {
		hook = canceled.Load
	}
	ereq, finish, err := s.e.CompilePlan(p, results, hook)
	if err != nil {
		resp.Err = err.Error()
		resp.Retry = wire.RetryPermanent
		s.aborted.Add(1)
		return resp
	}
	_, execErr := sess.Execute(ereq)
	finish()
	resp.Results = planResultsToWire(results)
	if execErr != nil {
		resp.Err = execErr.Error()
		resp.Retry = classifyAbort(execErr)
		s.aborted.Add(1)
		return resp
	}
	resp.Committed = true
	s.committed.Add(1)
	return resp
}

// planResultsToWire converts per-op plan results to wire statement results,
// one per op in flat phase order.
func planResultsToWire(rs []plan.Result) []wire.StatementResult {
	out := make([]wire.StatementResult, len(rs))
	for i, r := range rs {
		sr := wire.StatementResult{Found: r.Found, Value: r.Value, Err: r.Err}
		if len(r.Entries) > 0 {
			sr.Entries = make([]wire.ScanEntry, len(r.Entries))
			for j, e := range r.Entries {
				sr.Entries[j] = wire.ScanEntry{Key: e.Key, Value: e.Value}
			}
		}
		out[i] = sr
	}
	return out
}

// execute runs one wire request as a transaction.
func (s *Server) execute(sess *engine.Session, req *wire.Request, cs session, canceled *atomic.Bool) *wire.Response {
	s.requests.Add(1)
	start := latStatements.sampleStart()
	defer func() { latStatements.observe(start) }()
	resp := &wire.Response{ID: req.ID, Results: make([]wire.StatementResult, len(req.Statements))}
	if len(req.Statements) == 0 {
		resp.Committed = true
		s.committed.Add(1)
		return resp
	}
	if cs.readOnly {
		for _, st := range req.Statements {
			if writesOp(st.Op) {
				resp.Err = fmt.Sprintf("read-only session: %v refused", st.Op)
				s.aborted.Add(1)
				return resp
			}
		}
	}
	if s.followerMode.Load() {
		for _, st := range req.Statements {
			if writesOp(st.Op) {
				return s.followerRefusal(resp, fmt.Sprintf("%s: %v refused — this node replicates a primary (write there, or promote this node)", wire.FollowerPrefix, st.Op))
			}
		}
		if s.seeding() {
			// Mid re-seed the engine was wiped and only partially rebuilt:
			// a read here could report "not found" for committed rows.
			// Pings and control verbs (probes, "repl status", "promote")
			// must keep working so the cluster can manage the node.
			for _, st := range req.Statements {
				if st.Op != wire.OpPing && st.Op != wire.OpControl {
					return s.followerRefusal(resp, fmt.Sprintf("%s: %v refused — this follower is mid re-seed and not yet a consistent replica (read another member)", wire.FollowerPrefix, st.Op))
				}
			}
		}
	}
	if canceled != nil && canceled.Load() {
		resp.Err = engine.ErrPlanCanceled.Error()
		s.aborted.Add(1)
		return resp
	}

	// Pings, control statements and scans never run as transactions; a
	// request made only of pings/controls is answered directly, and a scan
	// must be a request of its own (it executes on every partition worker
	// at once, outside the phase machinery).
	allAdmin := true
	hasControl := false
	hasScan := false
	for _, st := range req.Statements {
		switch st.Op {
		case wire.OpPing:
		case wire.OpControl:
			hasControl = true
		case wire.OpScan:
			hasScan = true
			allAdmin = false
		default:
			allAdmin = false
		}
	}
	if hasScan && len(req.Statements) != 1 {
		resp.Err = "scan statements must be sent alone, not inside a transaction"
		s.aborted.Add(1)
		return resp
	}
	if hasControl && !allAdmin {
		resp.Err = "control statements must be sent alone, not inside a transaction"
		s.aborted.Add(1)
		return resp
	}
	if hasScan {
		resp.Results[0] = s.executeScan(req.Statements[0])
		if resp.Results[0].Err != "" {
			resp.Err = resp.Results[0].Err
			s.aborted.Add(1)
			return resp
		}
		resp.Committed = true
		s.committed.Add(1)
		return resp
	}
	if allAdmin {
		for i, st := range req.Statements {
			if st.Op == wire.OpPing {
				resp.Results[i] = wire.StatementResult{Found: true, Value: append([]byte(nil), st.Value...)}
				continue
			}
			resp.Results[i] = s.executeControl(st, cs)
		}
		resp.Committed = true
		s.committed.Add(1)
		return resp
	}

	// Shard routing: when this process serves one shard of a cluster, a
	// request whose keys are owned elsewhere is either refused (wrong
	// shard, map attached) or — when its keys span shards — executed here
	// as a coordinated two-phase commit.  All-local requests fall through
	// to the unchanged fast path below.
	if ss := s.sharding.Load(); ss != nil {
		if handled, sresp := s.routeShards(sess, ss, req, resp, canceled); handled {
			return sresp
		}
	}

	ereq, err := s.buildRequest(req, resp.Results, canceled)
	if err != nil {
		resp.Err = err.Error()
		resp.Retry = wire.RetryPermanent
		s.aborted.Add(1)
		return resp
	}
	if _, err := sess.Execute(ereq); err != nil {
		resp.Err = err.Error()
		resp.Retry = classifyAbort(err)
		s.aborted.Add(1)
		return resp
	}
	resp.Committed = true
	s.committed.Add(1)
	return resp
}

// executeControl runs one control statement: the "checkpoint" verb through
// the checkpoint handler, everything else through the attached control
// handler.
func (s *Server) executeControl(st wire.Statement, cs session) wire.StatementResult {
	if cs.readOnly {
		return wire.StatementResult{Err: "read-only session: control refused"}
	}
	if !cs.authed {
		return wire.StatementResult{Err: "control requires an authenticated session (connect with the server's -token)"}
	}
	switch string(st.Key) {
	case "promote":
		return s.executePromote()
	case "repl status":
		return s.executeReplStatus()
	}
	if s.followerMode.Load() {
		// A follower's log must stay a byte-identical prefix of the
		// primary's, so every verb that could append locally (checkpoint,
		// repartition triggers) is refused until promotion.
		return wire.StatementResult{Err: fmt.Sprintf("%s: control verb %q refused — only \"promote\" and \"repl status\" run on a follower", wire.FollowerPrefix, st.Key)}
	}
	if string(st.Key) == "checkpoint" {
		cp := s.checkpoint.Load()
		if cp == nil {
			return wire.StatementResult{Err: "server has no checkpoint handler (start plpd with -data-dir or -checkpoint-ms)"}
		}
		out, err := (*cp)()
		if err != nil {
			return wire.StatementResult{Err: err.Error()}
		}
		return wire.StatementResult{Found: true, Value: []byte(out)}
	}
	p := s.control.Load()
	if p == nil {
		return wire.StatementResult{Err: "server has no control handler (start plpd with -drp)"}
	}
	out, err := (*p).Control(string(st.Key), st.Table)
	if err != nil {
		return wire.StatementResult{Err: err.Error()}
	}
	return wire.StatementResult{Found: true, Value: []byte(out)}
}

// executeScan runs one OpScan as a distributed partition scan (Section 3.3)
// and returns the smallest `limit` records of [Key, KeyEnd) in key order.
func (s *Server) executeScan(st wire.Statement) wire.StatementResult {
	start := latScan.sampleStart()
	defer func() { latScan.observe(start) }()
	if st.Table == "" {
		return wire.StatementResult{Err: "scan: missing table"}
	}
	limit := int(st.Limit)
	if limit <= 0 || limit > MaxScanLimit {
		if st.Limit > MaxScanLimit {
			limit = MaxScanLimit
		} else {
			limit = DefaultScanLimit
		}
	}
	var mu sync.Mutex
	var entries []wire.ScanEntry
	_, err := s.e.ScanRange(st.Table, st.Key, st.KeyEnd, limit, func(_ int, k, rec []byte) {
		e := wire.ScanEntry{
			Key:   append([]byte(nil), k...),
			Value: append([]byte(nil), rec...),
		}
		mu.Lock()
		entries = append(entries, e)
		mu.Unlock()
	})
	if err != nil {
		return wire.StatementResult{Err: fmt.Sprintf("scan: %v", err)}
	}
	// Each partition returned the smallest `limit` keys of its own
	// sub-range, concurrently; sort their union and truncate to the
	// globally smallest `limit` keys, in order.
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i].Key, entries[j].Key) < 0 })
	if len(entries) > limit {
		entries = entries[:limit]
	}
	return wire.StatementResult{Found: len(entries) > 0, Entries: entries}
}

// buildRequest translates wire statements into a routable engine request.
// Statements are packed into phases greedily; a statement that touches a key
// already written in the current phase starts a new phase, preserving the
// client-visible ordering guarantees while still letting independent
// statements execute in parallel on different partitions.  canceled, when
// non-nil, is polled before every statement: a cancel frame aborts the
// transaction at the next statement boundary.
func (s *Server) buildRequest(req *wire.Request, results []wire.StatementResult, canceled *atomic.Bool) (*engine.Request, error) {
	out := &engine.Request{}
	checkCancel := func() error {
		if canceled != nil && canceled.Load() {
			return engine.ErrPlanCanceled
		}
		return nil
	}

	// Fast path for the dominant OLTP shape — one data statement per
	// request: a single action, no phase bookkeeping.
	if len(req.Statements) == 1 {
		if st := req.Statements[0]; st.Op != wire.OpPing && st.Op != wire.OpGetBySecondary {
			if st.Table == "" {
				return nil, fmt.Errorf("statement 0: missing table")
			}
			if _, err := s.e.Table(st.Table); err != nil {
				return nil, fmt.Errorf("statement 0: %v", err)
			}
			out.Phases = [][]engine.Action{{{
				Table: st.Table,
				Key:   st.Key,
				Exec: func(c *engine.Ctx) error {
					if err := checkCancel(); err != nil {
						return err
					}
					res, err := execStatement(c, st)
					if err != nil {
						results[0] = wire.StatementResult{Err: err.Error()}
						return err
					}
					results[0] = res
					return nil
				},
			}}}
			return out, nil
		}
	}

	var phase []engine.Action
	touched := make(map[string]struct{})

	flush := func() {
		if len(phase) > 0 {
			out.Phases = append(out.Phases, phase)
			phase = nil
			touched = make(map[string]struct{})
		}
	}

	for i, st := range req.Statements {
		if st.Op == wire.OpPing {
			results[i] = wire.StatementResult{Found: true, Value: append([]byte(nil), st.Value...)}
			continue
		}
		if st.Table == "" {
			return nil, fmt.Errorf("statement %d: missing table", i)
		}
		if _, err := s.e.Table(st.Table); err != nil {
			return nil, fmt.Errorf("statement %d: %v", i, err)
		}

		if st.Op == wire.OpGetBySecondary {
			// The paper's pattern for non-partition-aligned indexes: probe
			// the (latched, conventional) secondary index first, then route
			// the record access to the partition that owns the primary key
			// it returned.
			flush()
			idx := i
			stmt := st
			var primaryKey []byte
			out.Phases = append(out.Phases, []engine.Action{{
				Table: stmt.Table,
				Key:   stmt.Key,
				Exec: func(c *engine.Ctx) error {
					if err := checkCancel(); err != nil {
						return err
					}
					pk, err := c.LookupSecondary(stmt.Table, stmt.Index, stmt.Key)
					if errors.Is(err, engine.ErrNotFound) {
						results[idx] = wire.StatementResult{Found: false}
						return nil
					}
					if err != nil {
						results[idx] = wire.StatementResult{Err: err.Error()}
						return err
					}
					primaryKey = pk
					return nil
				},
			}})
			out.Phases = append(out.Phases, []engine.Action{{
				Table: stmt.Table,
				Key:   stmt.Key,
				KeyFn: func() []byte {
					if primaryKey != nil {
						return primaryKey
					}
					return stmt.Key
				},
				Exec: func(c *engine.Ctx) error {
					if primaryKey == nil {
						return nil // the probe missed; result already set
					}
					val, err := c.Read(stmt.Table, primaryKey)
					if err != nil {
						results[idx] = wire.StatementResult{Err: err.Error()}
						return err
					}
					results[idx] = wire.StatementResult{Found: true, Value: val}
					return nil
				},
			}})
			continue
		}

		key := string(st.Key)
		if _, dup := touched[st.Table+"\x00"+key]; dup {
			flush()
		}
		touched[st.Table+"\x00"+key] = struct{}{}

		idx := i
		stmt := st
		phase = append(phase, engine.Action{
			Table: stmt.Table,
			Key:   stmt.Key,
			Exec: func(c *engine.Ctx) error {
				if err := checkCancel(); err != nil {
					return err
				}
				res, err := execStatement(c, stmt)
				if err != nil {
					results[idx] = wire.StatementResult{Err: err.Error()}
					return err
				}
				results[idx] = res
				return nil
			},
		})
	}
	flush()
	return out, nil
}

// execStatement performs one statement through the data-access layer.
func execStatement(c *engine.Ctx, st wire.Statement) (wire.StatementResult, error) {
	switch st.Op {
	case wire.OpGet:
		val, err := c.Read(st.Table, st.Key)
		if errors.Is(err, engine.ErrNotFound) {
			return wire.StatementResult{Found: false}, nil
		}
		if err != nil {
			return wire.StatementResult{}, err
		}
		return wire.StatementResult{Found: true, Value: val}, nil
	case wire.OpInsert:
		return wire.StatementResult{Found: true}, c.Insert(st.Table, st.Key, st.Value)
	case wire.OpUpdate:
		return wire.StatementResult{Found: true}, c.Update(st.Table, st.Key, st.Value)
	case wire.OpUpsert:
		return wire.StatementResult{Found: true}, c.Upsert(st.Table, st.Key, st.Value)
	case wire.OpDelete:
		return wire.StatementResult{Found: true}, c.Delete(st.Table, st.Key)
	case wire.OpInsertSecondary:
		return wire.StatementResult{Found: true}, c.InsertSecondary(st.Table, st.Index, st.Key, st.Value)
	case wire.OpDeleteSecondary:
		return wire.StatementResult{Found: true}, c.DeleteSecondary(st.Table, st.Index, st.Key)
	default:
		return wire.StatementResult{}, fmt.Errorf("unsupported op %v", st.Op)
	}
}
