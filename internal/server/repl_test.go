package server

// In-process replication lifecycle tests: a durable primary server, a real
// repl.Follower applying into a second durable engine, and the follower
// server's read-only stance.  The kill-the-primary failover test lives in
// crash_test.go (it needs real processes); these cover the lifecycle the
// stream goes through while everything stays up: initial catch-up from a
// lagging start LSN, live streaming, reconnect-with-resubscribe after the
// primary's listener bounces, and the follower's refusal surface.

import (
	"strings"
	"testing"
	"time"

	"plp/client"
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/internal/repl"
)

// startReplServer builds a durable engine on dir (table "kv"), recovers it,
// and serves it.  The caller wires replication roles onto the returned
// server.
func startReplServer(t *testing.T, dir string) (*engine.Engine, *Server, string) {
	t.Helper()
	e, err := engine.Open(engine.Options{Design: engine.PLPLeaf, Partitions: 4, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	boundaries := [][]byte{keyenc.Uint64Key(250_000), keyenc.Uint64Key(500_000), keyenc.Uint64Key(750_000)}
	if _, err := e.CreateTable(catalog.TableDef{Name: "kv", Boundaries: boundaries}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})
	return e, srv, addr
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startFollower attaches a follower loop for the engine on dir to a primary
// address.
func startFollower(t *testing.T, dir, primaryAddr string, fe *engine.Engine) *repl.Follower {
	t.Helper()
	f, err := repl.NewFollower(repl.FollowerOptions{
		Primary:       primaryAddr,
		Dir:           dir,
		Log:           fe.DurableLog(),
		Apply:         fe.ApplyReplicated,
		RetryInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Stop)
	return f
}

// caughtUp reports whether the follower's durable and applied horizons have
// reached the primary's durable horizon.
func caughtUp(pe *engine.Engine, f *repl.Follower) bool {
	target := uint64(pe.DurableLog().DurableLSN())
	st := f.Status()
	return st.DurableLSN >= target && st.Applier.AppliedLSN >= target
}

func TestFollowerCatchUpLiveStreamAndResubscribe(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	psrv.SetReplPrimary(repl.NewPrimary(pe.DurableLog(), 1))

	pc := dial(t, paddr)
	for i := uint64(1); i <= 50; i++ {
		if err := pc.Upsert("kv", client.Uint64Key(i), []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}

	// The follower starts 50 transactions behind: initial catch-up streams
	// the backlog before any live record.
	fe, fsrv, faddr := startReplServer(t, fdir)
	fsrv.SetFollowerMode(true)
	f := startFollower(t, fdir, paddr, fe)
	waitFor(t, "initial catch-up", func() bool { return caughtUp(pe, f) })

	fc := dial(t, faddr)
	got, err := fc.Get("kv", client.Uint64Key(7))
	if err != nil || string(got) != "seed" {
		t.Fatalf("replicated read: %q, %v", got, err)
	}

	// A fresh follower adopts and persists the primary's epoch.
	if f.Epoch() != 1 {
		t.Fatalf("follower epoch %d, want 1", f.Epoch())
	}
	if epoch, ok, err := repl.ReadEpoch(fdir); !ok || err != nil || epoch != 1 {
		t.Fatalf("persisted epoch: %d ok=%v err=%v", epoch, ok, err)
	}

	// Live streaming: a write on the primary becomes readable on the
	// follower without any reconnect.
	if err := pc.Upsert("kv", client.Uint64Key(51), []byte("live")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "live record", func() bool {
		v, err := fc.Get("kv", client.Uint64Key(51))
		return err == nil && string(v) == "live"
	})

	// Bounce the primary's listener: the stream drops, the follower retries
	// and resubscribes from its durable (mid-stream) LSN, and new writes
	// flow again.
	if err := psrv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stream drop", func() bool { return !f.Status().Connected })
	psrv2 := New(pe)
	psrv2.SetReplPrimary(repl.NewPrimary(pe.DurableLog(), 1))
	if _, err := psrv2.Listen(paddr); err != nil {
		t.Fatalf("rebinding %s: %v", paddr, err)
	}
	go func() { _ = psrv2.Serve() }()
	t.Cleanup(func() { _ = psrv2.Close() })

	pc2 := dial(t, paddr)
	if err := pc2.Upsert("kv", client.Uint64Key(52), []byte("after-bounce")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "resubscribed record", func() bool {
		v, err := fc.Get("kv", client.Uint64Key(52))
		return err == nil && string(v) == "after-bounce"
	})
	if st := f.Status(); st.Batches == 0 || st.Records == 0 {
		t.Fatalf("follower counters never moved: %+v", st)
	}
}

func TestFollowerRefusesWritesServesReads(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	psrv.SetReplPrimary(repl.NewPrimary(pe.DurableLog(), 1))
	pc := dial(t, paddr)
	for i := uint64(1); i <= 10; i++ {
		if err := pc.Upsert("kv", client.Uint64Key(i), []byte("row")); err != nil {
			t.Fatal(err)
		}
	}

	fe, fsrv, faddr := startReplServer(t, fdir)
	fsrv.SetFollowerMode(true)
	f := startFollower(t, fdir, paddr, fe)
	waitFor(t, "catch-up", func() bool { return caughtUp(pe, f) })

	fc := dial(t, faddr)

	// Reads and scans are served from replicated state.
	if v, err := fc.Get("kv", client.Uint64Key(3)); err != nil || string(v) != "row" {
		t.Fatalf("follower read: %q, %v", v, err)
	}
	entries, err := fc.Scan("kv", nil, nil, 0)
	if err != nil || len(entries) != 10 {
		t.Fatalf("follower scan: %d entries, %v", len(entries), err)
	}

	// Every write shape is refused with the follower marker.
	if err := fc.Upsert("kv", client.Uint64Key(99), []byte("x")); !client.IsFollowerRefusal(err) {
		t.Fatalf("follower upsert: %v", err)
	}
	if err := fc.Delete("kv", client.Uint64Key(3)); !client.IsFollowerRefusal(err) {
		t.Fatalf("follower delete: %v", err)
	}
	if _, err := fc.DoPlan(client.NewPlan().Add("kv", client.Uint64Key(3), 1).MustBuild()); !client.IsFollowerRefusal(err) {
		t.Fatalf("follower write plan: %v", err)
	}

	// Log-appending control verbs are refused; promote/repl status are the
	// only verbs a follower runs.
	if _, err := fc.Control("checkpoint", ""); !client.IsFollowerRefusal(err) {
		t.Fatalf("follower checkpoint: %v", err)
	}
	if _, err := fc.Control("promote", ""); err == nil || !strings.Contains(err.Error(), "promote") {
		// No promote handler installed on this bare test server: the verb
		// must still route (not be refused as unknown-on-follower).
		t.Fatalf("promote routing: %v", err)
	}
}

func TestReplicaAckedCommitGate(t *testing.T) {
	pdir := t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	prim := repl.NewPrimary(pe.DurableLog(), 1)
	prim.SetAckTimeout(150 * time.Millisecond)
	psrv.SetReplPrimary(prim)
	pe.SetCommitAckWaiter(prim.WaitReplicated)

	pc := dial(t, paddr)

	// No follower: the commit is refused as unreplicated — but the error
	// spells out that it IS durable locally.
	err := pc.Upsert("kv", client.Uint64Key(1), []byte("lonely"))
	if err == nil || !strings.Contains(err.Error(), "durable locally") {
		t.Fatalf("replica-acked commit without a follower: %v", err)
	}

	// With a follower attached the same write commits, and the ack
	// guarantees the commit record is on the follower's disk.
	fdir := t.TempDir()
	fe, _, _ := startReplServer(t, fdir)
	startFollower(t, fdir, paddr, fe)
	waitFor(t, "subscription", func() bool { return prim.NumFollowers() == 1 })

	if err := pc.Upsert("kv", client.Uint64Key(2), []byte("replicated")); err != nil {
		t.Fatalf("replica-acked commit with a follower: %v", err)
	}
	if got := uint64(fe.DurableLog().DurableLSN()); got < uint64(pe.DurableLog().DurableLSN()) {
		t.Fatalf("acked commit not on follower disk: follower durable %d, primary durable %d",
			got, pe.DurableLog().DurableLSN())
	}
	st := prim.Status()
	if st.AckWaits < 2 || st.AckTimeouts < 1 || len(st.Followers) != 1 {
		t.Fatalf("primary status after gated commits: %+v", st)
	}
}
