// Streaming scans: server side of the V3 SCAN / SCAN-CHUNK / SCAN-ACK
// exchange.  A FrameScan occupies one executor slot of its connection for
// the stream's lifetime and produces chunks by repeatedly asking the engine
// for the next cursor-bounded slice, so each chunk runs on the partition
// worker owning the cursor and the scan never holds a worker for longer
// than one chunk.  Production is credit-paced: the connection reader
// intercepts SCAN-ACK frames (like cancels, they must not queue behind the
// work they regulate) and tops up the stream's credits, so a client that
// stops consuming stalls only its own stream.
package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"plp/internal/engine"
	"plp/plan"
	"plp/wire"
)

// DefaultStreamScanLimit caps a streaming scan that asked for no limit.
// Streams exist to move bulk data, so the default is far above the
// one-reply scan's — but still finite, as a backstop against a stream
// nobody ends.
const DefaultStreamScanLimit = 1 << 22

// scanFlow is one open stream's flow-control state, shared between the
// producing executor and the connection reader that credits it.
type scanFlow struct {
	credits atomic.Int64
	notify  chan struct{}
}

func newScanFlow(window int64) *scanFlow {
	fl := &scanFlow{notify: make(chan struct{}, 1)}
	fl.credits.Store(window)
	return fl
}

// wake nudges the producer; called by the reader after crediting the flow
// or flipping the stream's cancel flag.
func (fl *scanFlow) wake() {
	select {
	case fl.notify <- struct{}{}:
	default:
	}
}

// creditScan handles an intercepted SCAN-ACK: it adds the returned credits
// to the named stream's flow, if it is still open.
func creditScan(flows *sync.Map, payload []byte) {
	f, err := wire.DecodeFrameV3(payload)
	if err != nil {
		return // a malformed ack regulates nothing
	}
	if v, ok := flows.Load(f.ID); ok {
		fl := v.(*scanFlow)
		fl.credits.Add(int64(f.Credit))
		fl.wake()
	}
}

// streamScan runs one streaming scan on an executor goroutine, emitting
// chunks through the connection's outbox until the range is exhausted, the
// limit is met, the client cancels, or the connection dies.
func (s *Server) streamScan(payload []byte, canceled *atomic.Bool, out chan<- outMsg, flows *sync.Map, connDone <-chan struct{}) {
	s.requests.Add(1)
	emitFinal := func(errMsg string) {
		out <- outMsg{raw: wire.AppendScanChunk(nil, &wire.ScanChunk{
			ID: mustRequestID(payload), Final: true, Err: errMsg})}
	}
	f, err := wire.DecodeFrameV3(payload)
	if err != nil || f.Scan == nil {
		s.aborted.Add(1)
		emitFinal(fmt.Sprintf("scan: bad frame: %v", err))
		return
	}
	sc := f.Scan
	if sc.Table == "" {
		s.aborted.Add(1)
		emitFinal("scan: missing table")
		return
	}
	if s.followerMode.Load() && s.seeding() {
		s.aborted.Add(1)
		emitFinal(wire.FollowerPrefix + ": scan refused — this follower is mid re-seed and not yet a consistent replica (read another member)")
		return
	}
	var flt *plan.Filter
	if sc.Filter != nil {
		if flt, err = sc.Filter.Compile(); err != nil {
			s.aborted.Add(1)
			emitFinal(fmt.Sprintf("scan: %v", err))
			return
		}
	}
	limit := int(sc.Limit)
	if limit <= 0 || limit > DefaultStreamScanLimit {
		limit = DefaultStreamScanLimit
	}
	chunkEntries := int(sc.ChunkEntries)
	if chunkEntries <= 0 {
		chunkEntries = wire.DefaultScanChunkEntries
	} else if chunkEntries > wire.MaxScanChunkEntries {
		chunkEntries = wire.MaxScanChunkEntries
	}
	window := int64(sc.Window)
	if window <= 0 {
		window = wire.DefaultScanWindow
	} else if window > wire.MaxScanWindow {
		window = wire.MaxScanWindow
	}
	isCanceled := func() bool { return canceled != nil && canceled.Load() }

	fl := newScanFlow(window)
	flows.Store(f.ID, fl)
	defer flows.Delete(f.ID)

	cursor := sc.Lo
	sent := 0
	for {
		for fl.credits.Load() <= 0 {
			if isCanceled() {
				s.aborted.Add(1)
				emitFinal(engine.ErrPlanCanceled.Error())
				return
			}
			select {
			case <-fl.notify:
			case <-connDone:
				return // connection gone; there is nobody to send to
			}
		}
		if isCanceled() {
			s.aborted.Add(1)
			emitFinal(engine.ErrPlanCanceled.Error())
			return
		}
		start := latScanChunk.sampleStart()
		maxEntries := chunkEntries
		if rem := limit - sent; rem < maxEntries {
			maxEntries = rem
		}
		res, err := s.e.ScanChunk(sc.Table, cursor, sc.Hi, flt, maxEntries, isCanceled)
		if err != nil {
			s.aborted.Add(1)
			emitFinal(fmt.Sprintf("scan: %v", err))
			return
		}
		sent += len(res.Entries)
		chunk := &wire.ScanChunk{ID: f.ID, Final: res.Done || sent >= limit}
		if n := len(res.Entries); n > 0 {
			chunk.Entries = make([]wire.ScanEntry, n)
			for i, ent := range res.Entries {
				chunk.Entries[i] = wire.ScanEntry{Key: ent.Key, Value: ent.Value}
			}
		}
		fl.credits.Add(-1)
		out <- outMsg{raw: wire.AppendScanChunk(nil, chunk)}
		latScanChunk.observe(start)
		if chunk.Final {
			s.committed.Add(1)
			return
		}
		cursor = res.Next
	}
}

// mustRequestID extracts the best-effort request ID from a frame payload.
func mustRequestID(payload []byte) uint64 {
	id, _ := wire.RequestID(payload)
	return id
}
