package server

// Streaming-scan tests: the SCAN / SCAN-CHUNK / SCAN-ACK exchange end to
// end over real connections — round trips, limits, pushdown filtering,
// cancellation mid-stream, cross-shard merging, retry hints, and the query
// layer's two CI datapoints (scan_pushdown, plan_cache).

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"plp/client"
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/internal/lock"
	"plp/plan"
	"plp/wire"
)

// startScanServer starts a server over a "sub" table preloaded with rows
// keys 1..rows, each value an int64 balance (i % 100) followed by pad
// padding bytes.
func startScanServer(t *testing.T, design engine.Design, rows, pad int) (*engine.Engine, *Server, string) {
	t.Helper()
	e := engine.New(engine.Options{Design: design, Partitions: 4, SLI: design == engine.Conventional})
	q := uint64(rows) / 4
	if q == 0 {
		q = 1
	}
	boundaries := [][]byte{keyenc.Uint64Key(q), keyenc.Uint64Key(2 * q), keyenc.Uint64Key(3 * q)}
	if _, err := e.CreateTable(catalog.TableDef{Name: "sub", Boundaries: boundaries}); err != nil {
		t.Fatal(err)
	}
	l := e.NewLoader()
	padding := make([]byte, pad)
	for i := 1; i <= rows; i++ {
		val := append(plan.Int64(int64(i%100)), padding...)
		if err := l.Insert("sub", keyenc.Uint64Key(uint64(i)), val); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})
	return e, srv, addr
}

// TestScanStreamRoundTrip streams a full table in small chunks and checks
// exact coverage in key order, on a partitioned and a conventional engine.
func TestScanStreamRoundTrip(t *testing.T) {
	for _, design := range []engine.Design{engine.Conventional, engine.PLPLeaf} {
		t.Run(design.String(), func(t *testing.T) {
			const rows = 1000
			_, _, addr := startScanServer(t, design, rows, 0)
			c := dial(t, addr)

			st, err := c.ScanStream(context.Background(), "sub", nil, nil,
				&client.ScanStreamOptions{ChunkEntries: 64, Window: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			want := uint64(1)
			for st.Next() {
				ent := st.Entry()
				if got := binary.BigEndian.Uint64(ent.Key); got != want {
					t.Fatalf("entry key %d, want %d", got, want)
				}
				if v, _ := plan.DecodeInt64(ent.Value); v != int64(want%100) {
					t.Fatalf("key %d value %d, want %d", want, v, want%100)
				}
				want++
			}
			if err := st.Err(); err != nil {
				t.Fatal(err)
			}
			if want != rows+1 {
				t.Fatalf("stream yielded %d entries, want %d", want-1, rows)
			}
		})
	}
}

// TestScanStreamFilterAndLimit pushes a predicate down and caps the stream:
// only matching rows cross the wire and the limit counts matches.
func TestScanStreamFilterAndLimit(t *testing.T) {
	const rows = 1000
	_, _, addr := startScanServer(t, engine.PLPRegular, rows, 0)
	c := dial(t, addr)

	flt := plan.Int64Cmp(0, plan.CmpEq, 13) // keys 13, 113, ..., 913
	st, err := c.ScanStream(context.Background(), "sub", nil, nil,
		&client.ScanStreamOptions{Filter: flt, Limit: 4, ChunkEntries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got []uint64
	for st.Next() {
		got = append(got, binary.BigEndian.Uint64(st.Entry().Key))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{13, 113, 213, 313}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestScanStreamCancelMidStream is the cancellation regression: a client
// that cancels its context mid-stream must stop the server's chunk
// production — even when the stream is stalled waiting for credits —
// rather than leave it producing for nobody.
func TestScanStreamCancelMidStream(t *testing.T) {
	const rows = 20000
	_, srv, addr := startScanServer(t, engine.PLPLeaf, rows, 0)
	c := dial(t, addr)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// A tiny window and chunk size guarantee the server exhausts its
	// credits long before the scan completes; the client consumes one
	// entry, never acks beyond the first chunk, and then cancels.
	st, err := c.ScanStream(ctx, "sub", nil, nil,
		&client.ScanStreamOptions{ChunkEntries: 16, Window: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Next() {
		t.Fatalf("no first entry: %v", st.Err())
	}
	cancel()
	for st.Next() {
		// Drain whatever was already in flight; the stream must still end.
	}
	if err := st.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("stream error %v, want context.Canceled", err)
	}

	// The server must abort the stream: its producer goroutine exits and
	// counts the scan as aborted.  Poll briefly — the cancel frame races
	// with the producer's credit wait.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Aborted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never aborted the cancelled stream")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The connection must remain usable for ordinary requests.
	if _, err := c.Get("sub", keyenc.Uint64Key(1)); err != nil {
		t.Fatalf("connection unusable after stream cancel: %v", err)
	}
}

// TestShardedScanStream merges per-shard streams in key order under a
// global limit and proves laziness: when the first shard satisfies the
// limit, the second shard is never contacted.
func TestShardedScanStream(t *testing.T) {
	nodes, _ := startShardCluster(t, 500_000)
	// Shard 0 owns keys < 500_000, shard 1 the rest.
	const perShard = 400
	for i := 1; i <= perShard; i++ {
		if err := nodes[0].e.NewLoader().Insert("kv", keyenc.Uint64Key(uint64(i)), plan.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := nodes[1].e.NewLoader().Insert("kv", keyenc.Uint64Key(600_000+uint64(i)), plan.Int64(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	sc, err := client.DialSharded(ctx, []string{nodes[0].addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sc.Close() })

	// Limited merge first: the limit is satisfied entirely by shard 0, so
	// the lazy iterator must never open a connection to shard 1.
	shard1Conns := nodes[1].srv.Stats().Connections
	st, err := sc.ScanStream(ctx, "kv", nil, nil,
		&client.ScanStreamOptions{Limit: 10, ChunkEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for st.Next() {
		n++
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
	if n != 10 {
		t.Fatalf("limited merge yielded %d entries, want 10", n)
	}
	if got := nodes[1].srv.Stats().Connections; got != shard1Conns {
		t.Fatalf("limit met on shard 0 but shard 1 was contacted (%d new connections)", got-shard1Conns)
	}

	// Full merge: both shards, global key order, every row exactly once.
	st, err = sc.ScanStream(ctx, "kv", nil, nil, &client.ScanStreamOptions{ChunkEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	var keysSeen []uint64
	for st.Next() {
		keysSeen = append(keysSeen, binary.BigEndian.Uint64(st.Entry().Key))
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()
	if len(keysSeen) != 2*perShard {
		t.Fatalf("merged %d entries, want %d", len(keysSeen), 2*perShard)
	}
	for i, k := range keysSeen {
		want := uint64(i + 1)
		if i >= perShard {
			want = 600_000 + uint64(i-perShard+1)
		}
		if k != want {
			t.Fatalf("merged key[%d] = %d, want %d", i, k, want)
		}
	}
}

// TestTransientAbortHint checks the retry hint end to end: a prepared
// transaction holds an X lock on a key (a prepared branch keeps its locks
// until the coordinator decides), so a wire transaction touching that key
// waits out the deadlock-avoidance timeout and aborts — and the abort must
// arrive tagged transient, where an ordinary data error stays permanent.
func TestTransientAbortHint(t *testing.T) {
	e := engine.New(engine.Options{Design: engine.Conventional, Partitions: 1, SLI: true,
		LockTimeout: 25 * time.Millisecond})
	if _, err := e.CreateTable(catalog.TableDef{Name: "sub"}); err != nil {
		t.Fatal(err)
	}
	if err := e.NewLoader().Insert("sub", keyenc.Uint64Key(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})

	// Pin the X lock on key 1 with a prepared branch.
	key := keyenc.Uint64Key(1)
	sess := e.NewSession()
	defer sess.Close()
	hold := &engine.Request{Phases: [][]engine.Action{{{
		Table: "sub", Key: key,
		Exec: func(c *engine.Ctx) error { return c.Update("sub", key, []byte("held")) },
	}}}}
	if _, err := sess.ExecutePrepare(hold, "hint-test-gid"); err != nil {
		t.Fatal(err)
	}
	released := false
	release := func() {
		if !released {
			released = true
			if err := e.DecidePrepared("hint-test-gid", false); err != nil {
				t.Fatal(err)
			}
		}
	}
	defer release()

	c := dial(t, addr)
	_, err = c.Do(client.NewTxn().Update("sub", key, []byte("w")))
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("blocked update: %v, want ErrAborted", err)
	}
	if !client.IsTransient(err) {
		t.Fatalf("lock-timeout abort not tagged transient: %v", err)
	}

	// A data error — updating a key that does not exist — is not worth
	// retrying and must stay permanent.
	release()
	_, err = c.Do(client.NewTxn().Update("sub", keyenc.Uint64Key(404), []byte("w")))
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("missing-key update: %v, want ErrAborted", err)
	}
	if client.IsTransient(err) {
		t.Fatalf("data-error abort wrongly tagged transient: %v", err)
	}
}

// TestClassifyAbort pins the abort-to-hint mapping deterministically: only
// the lock manager's deadlock-avoidance timeout is transient; everything
// else is permanent, and a missing error carries no hint.
func TestClassifyAbort(t *testing.T) {
	if got := classifyAbort(nil); got != wire.RetryUnknown {
		t.Fatalf("classifyAbort(nil) = %d, want RetryUnknown", got)
	}
	wrapped := fmt.Errorf("txn: %w", lock.ErrTimeout)
	if got := classifyAbort(wrapped); got != wire.RetryTransient {
		t.Fatalf("classifyAbort(lock timeout) = %d, want RetryTransient", got)
	}
	if got := classifyAbort(errors.New("validation failed")); got != wire.RetryPermanent {
		t.Fatalf("classifyAbort(other) = %d, want RetryPermanent", got)
	}
}

// TestLatencyHistogramOverWire checks the sampled latency histograms move
// when requests flow: enough statements and scan chunks to guarantee
// samples at the 1-in-N stride.
func TestLatencyHistogramOverWire(t *testing.T) {
	_, _, addr := startScanServer(t, engine.PLPLeaf, 2000, 0)
	c := dial(t, addr)

	before := LatencySnapshot()
	for i := 0; i < 2*latencySampleEvery; i++ {
		if _, err := c.Get("sub", keyenc.Uint64Key(1)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.ScanStream(context.Background(), "sub", nil, nil,
		&client.ScanStreamOptions{ChunkEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	for st.Next() {
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	_ = st.Close()

	after := LatencySnapshot()
	if d := after["statements"].Seen - before["statements"].Seen; d < 2*latencySampleEvery {
		t.Fatalf("statements seen moved by %d, want >= %d", d, 2*latencySampleEvery)
	}
	if after["statements"].Sampled <= before["statements"].Sampled {
		t.Fatal("no statement latency samples at the sampling stride")
	}
	// 2000 rows / 16-entry chunks = 125 chunk productions, over a stride.
	if d := after["scan_chunk"].Seen - before["scan_chunk"].Seen; d < 64 {
		t.Fatalf("scan_chunk seen moved by %d, want >= 64", d)
	}
}

// TestScanPushdownDatapoint emits the scan_pushdown BENCH_JSON line: a 1%
// selectivity scan over padded rows, pushed down versus filtered
// client-side, with wall time and bytes on the wire for both.  Pushdown
// must win by at least 1.5× — only 1% of rows are encoded, shipped, and
// decoded, so the margin is structural, not a timing accident.
func TestScanPushdownDatapoint(t *testing.T) {
	const (
		rows = 20000
		pad  = 120 // 128-byte records: padding makes shipped bytes visible
	)
	_, _, addr := startScanServer(t, engine.PLPLeaf, rows, pad)
	proxy := newCountingProxy(t, addr)
	c := dial(t, proxy.addr)

	flt := plan.Int64Cmp(0, plan.CmpEq, 7) // 1 in 100 rows
	match := func(v []byte) bool {
		i, err := plan.DecodeInt64(v[:8])
		return err == nil && i == 7
	}

	run := func(pushdown bool) (time.Duration, int64, int) {
		var best time.Duration
		var bytesOnWire int64
		kept := 0
		for iter := 0; iter < 3; iter++ {
			startBytes := proxy.toClientBytes.Load()
			opts := &client.ScanStreamOptions{ChunkEntries: 256}
			if pushdown {
				opts.Filter = flt
			}
			kept = 0
			start := time.Now()
			st, err := c.ScanStream(context.Background(), "sub", nil, nil, opts)
			if err != nil {
				t.Fatal(err)
			}
			for st.Next() {
				if pushdown || match(st.Entry().Value) {
					kept++
				}
			}
			if err := st.Err(); err != nil {
				t.Fatal(err)
			}
			_ = st.Close()
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
			bytesOnWire = proxy.toClientBytes.Load() - startBytes
		}
		return best, bytesOnWire, kept
	}

	clientDur, clientBytes, clientKept := run(false)
	pushDur, pushBytes, pushKept := run(true)
	if clientKept != rows/100 || pushKept != rows/100 {
		t.Fatalf("kept %d/%d rows, want %d", clientKept, pushKept, rows/100)
	}
	speedup := float64(clientDur) / float64(pushDur)
	fmt.Printf("BENCH_JSON {\"benchmark\":\"scan_pushdown\",\"rows\":%d,\"selectivity_pct\":1,\"client_filter_ms\":%.2f,\"pushdown_ms\":%.2f,\"speedup\":%.2f,\"client_filter_bytes\":%d,\"pushdown_bytes\":%d}\n",
		rows, float64(clientDur.Microseconds())/1000, float64(pushDur.Microseconds())/1000,
		speedup, clientBytes, pushBytes)
	if speedup < 1.5 {
		t.Fatalf("pushdown speedup %.2f, want >= 1.5", speedup)
	}
	if pushBytes*10 > clientBytes {
		t.Fatalf("pushdown shipped %d bytes vs %d client-side; expected ~1%% of the traffic",
			pushBytes, clientBytes)
	}
}

// TestPlanCacheDatapoint asserts the plan-shape cache's contract over the
// wire — repeated executions of one shape compile exactly once — and emits
// the plan_cache BENCH_JSON line comparing a cold compile (validate +
// predicate compilation) against the cached hit path (template rebind).
func TestPlanCacheDatapoint(t *testing.T) {
	_, _, addr := startScanServer(t, engine.PLPLeaf, 1000, 0)
	c := dial(t, addr)

	mk := func(balance int64) *plan.Plan {
		b := client.NewPlan()
		b.Scan("sub", keyenc.Uint64Key(1), nil, 16).
			Where(plan.And(plan.Int64Cmp(0, plan.CmpGe, balance), plan.Int64Cmp(0, plan.CmpLt, balance+3)))
		b.Get("sub", keyenc.Uint64Key(500))
		return b.MustBuild()
	}

	_, _, compiles0 := engine.PlanCacheCounters()
	if _, err := c.DoPlan(mk(10)); err != nil {
		t.Fatal(err)
	}
	_, _, compilesCold := engine.PlanCacheCounters()
	if compilesCold-compiles0 != 1 {
		t.Fatalf("cold execution compiled %d times, want 1", compilesCold-compiles0)
	}

	const reps = 50
	hits0, _, _ := engine.PlanCacheCounters()
	start := time.Now()
	for i := 0; i < reps; i++ {
		res, err := c.DoPlan(mk(int64(i % 90)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res[0].Entries) == 0 {
			t.Fatalf("rebound filter returned nothing for balance %d", i%90)
		}
	}
	warmDur := time.Since(start)
	hits1, _, compilesWarm := engine.PlanCacheCounters()
	if compilesWarm != compilesCold {
		t.Fatalf("hit path compiled %d times on repeated shapes, want 0", compilesWarm-compilesCold)
	}
	if hits1-hits0 < reps {
		t.Fatalf("cache hits moved by %d, want >= %d", hits1-hits0, reps)
	}

	// Isolate what the cache saves: full validate+compile versus rebinding
	// the cached template with fresh parameters.
	p := mk(10)
	var tmpl *plan.Filter
	const n = 5000
	coldStart := time.Now()
	for i := 0; i < n; i++ {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		f, err := p.Phases[0][0].Filter.Compile()
		if err != nil {
			t.Fatal(err)
		}
		tmpl = f.Template()
	}
	coldCompile := time.Since(coldStart)
	rebindStart := time.Now()
	for i := 0; i < n; i++ {
		if _, err := tmpl.Rebind(p.Phases[0][0].Filter); err != nil {
			t.Fatal(err)
		}
	}
	rebind := time.Since(rebindStart)

	fmt.Printf("BENCH_JSON {\"benchmark\":\"plan_cache\",\"cold_compile_ns\":%d,\"cached_rebind_ns\":%d,\"compile_over_rebind\":%.2f,\"wire_hits\":%d,\"wire_compiles\":%d,\"warm_plan_us\":%.1f}\n",
		coldCompile.Nanoseconds()/n, rebind.Nanoseconds()/n,
		float64(coldCompile)/float64(rebind), hits1-hits0, compilesWarm-compilesCold,
		float64(warmDur.Microseconds())/reps)
}
