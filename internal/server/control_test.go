package server

import (
	"fmt"
	"net"
	"strings"
	"testing"

	"plp/client"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/internal/repartition"
	"plp/wire"
)

// TestControlWithoutHandlerRejected checks the control verb fails cleanly
// on a server with no controller attached.
func TestControlWithoutHandlerRejected(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)
	if _, err := c.Control("status", ""); err == nil {
		t.Fatal("control verb succeeded without a handler")
	}
}

// TestCheckpointVerb checks the "checkpoint" control verb routes to the
// checkpoint handler and stays token-gated like every other control verb.
func TestCheckpointVerb(t *testing.T) {
	e, srv, addr := startServer(t, engine.PLPLeaf)

	c := dial(t, addr)
	if _, err := c.Control("checkpoint", ""); err == nil {
		t.Fatal("checkpoint verb succeeded without a handler")
	}
	srv.SetCheckpointHandler(func() (string, error) {
		st, err := e.Checkpoint()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("entries=%d\n", st.Entries), nil
	})
	if err := c.Upsert("accounts", keyenc.Uint64Key(1), []byte("v")); err != nil {
		t.Fatal(err)
	}
	out, err := c.Control("checkpoint", "")
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if !strings.Contains(out, "entries=") {
		t.Fatalf("unexpected checkpoint output %q", out)
	}

	// With a token set, an unauthenticated session must be refused.
	srv.SetAuthToken("secret")
	c2 := dial(t, addr)
	if _, err := c2.Control("checkpoint", ""); err == nil {
		t.Fatal("checkpoint verb succeeded without authentication")
	}
}

// TestControlVerbsEndToEnd drives the full loop: skewed traffic over the
// wire, a controller attached to the server, and the plpctl-style status /
// trigger / shares verbs — asserting that triggering actually moves a
// boundary on the running server.
func TestControlVerbsEndToEnd(t *testing.T) {
	e, srv, addr := startServer(t, engine.PLPLeaf)

	ctrl, err := repartition.Attach(e, repartition.Config{
		Tables:          []string{"accounts"},
		MinObservations: 500,
		TriggerRatio:    1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ctrl.Detach()
	srv.SetControlHandler(ctrl)

	c := dial(t, addr)
	// Load rows, then hammer the first partition's range so it goes hot.
	for k := uint64(1); k <= 10_000; k += 10 {
		if err := c.Upsert("accounts", keyenc.Uint64Key(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		k := uint64(i%250)*10 + 1 // keys 1..2491: all in partition 0
		if _, err := c.Get("accounts", keyenc.Uint64Key(k)); err != nil {
			t.Fatal(err)
		}
	}

	out, err := c.Control("shares", "accounts")
	if err != nil {
		t.Fatalf("shares: %v", err)
	}
	if !strings.Contains(out, "accounts") {
		t.Fatalf("shares output %q", out)
	}

	out, err = c.Control("trigger", "")
	if err != nil {
		t.Fatalf("trigger: %v", err)
	}
	if !strings.Contains(out, "boundary") {
		t.Fatalf("trigger reported no boundary move under heavy skew: %q", out)
	}

	out, err = c.Control("status", "")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(out, "moves=") || strings.Contains(out, "moves=0 ") {
		t.Fatalf("status does not report the applied move: %q", out)
	}

	// Unknown commands surface as statement errors.
	if _, err := c.Control("bogus", ""); err == nil {
		t.Fatal("unknown control command accepted")
	}
}

// TestControlInsideTransactionRejected checks a control statement mixed
// with data statements aborts the request.
func TestControlInsideTransactionRejected(t *testing.T) {
	_, _, addr := startServer(t, engine.PLPLeaf)
	c := dial(t, addr)

	tx := client.NewTxn().Upsert("accounts", keyenc.Uint64Key(1), []byte("v"))
	// Smuggle a control statement into the same request via the wire layer.
	resp, err := c.Do(tx)
	if err != nil {
		t.Fatalf("plain txn failed: %v", err)
	}
	if !resp.Committed {
		t.Fatal("plain txn did not commit")
	}

	raw := &wire.Request{ID: 99, Statements: []wire.Statement{
		{Op: wire.OpControl, Key: []byte("status")},
		{Op: wire.OpUpsert, Table: "accounts", Key: keyenc.Uint64Key(2), Value: []byte("v")},
	}}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.EncodeRequest(raw)); err != nil {
		t.Fatal(err)
	}
	payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Committed || resp2.Err == "" {
		t.Fatalf("mixed control+data request was not rejected: %+v", resp2)
	}
}
