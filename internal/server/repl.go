// Replication endpoint: a follower's connection is an ordinary wire-v3
// session whose first post-handshake frame is a REPL-SUBSCRIBE.  The
// connection then leaves the request/response pipeline for a dedicated
// full-duplex loop — a streamer goroutine pushes durable log batches, the
// connection goroutine consumes progress acks — until either side drops.
package server

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"plp/internal/repl"
	"plp/internal/wal"
	"plp/wire"
)

// DefaultReplHeartbeat is the idle-stream heartbeat interval (see
// Server.ReplHeartbeat).
const DefaultReplHeartbeat = time.Second

// replHeartbeat returns the configured heartbeat interval.
func (s *Server) replHeartbeat() time.Duration {
	if s.ReplHeartbeat > 0 {
		return s.ReplHeartbeat
	}
	return DefaultReplHeartbeat
}

// PromoteFunc serves the "promote" control verb on a follower: sever the
// stream, fence the old primary's lineage, start accepting writes, and
// return a human-readable summary.
type PromoteFunc func() (string, error)

// ReplStatusFunc serves the "repl status" control verb: a human-readable
// (JSON) snapshot of this node's replication role and progress.
type ReplStatusFunc func() (string, error)

// SetReplPrimary installs (or, with nil, removes) the replication hub that
// accepts follower subscriptions on this server.  Changing the hub is a
// role transition, so every live subscriber stream is severed: the
// followers reconnect, resubscribe, and discover the node's new role
// instead of leasing liveness off heartbeats from a frozen log.
func (s *Server) SetReplPrimary(p *repl.Primary) {
	s.replPrimary.Store(p)
	s.replConnsMu.Lock()
	for c := range s.replConns {
		_ = c.Close()
	}
	s.replConnsMu.Unlock()
}

// ReplPrimary returns the installed replication hub, or nil.
func (s *Server) ReplPrimary() *repl.Primary { return s.replPrimary.Load() }

// SetFollowerMode flips the server's follower stance.  A follower serves
// reads (gets, secondary lookups, scans, read-only plans) from its
// replicated state but refuses every write op, transaction branch and
// log-appending control verb: its log must remain a byte-identical prefix
// of the primary's.
func (s *Server) SetFollowerMode(on bool) {
	s.followerMode.Store(on)
}

// FollowerMode reports the server's follower stance.
func (s *Server) FollowerMode() bool { return s.followerMode.Load() }

// SetSeedingFunc installs (or, with nil, removes) the callback reporting
// whether this follower is inside an incomplete snapshot re-seed.  While
// it reports true the server refuses data reads too — the engine was
// wiped and only partially rebuilt, so serving from it would return "not
// found" for committed rows — and routing clients fall through to the
// primary or a healthy replica.
func (s *Server) SetSeedingFunc(fn func() bool) {
	if fn == nil {
		s.seedingFn.Store(nil)
		return
	}
	s.seedingFn.Store(&fn)
}

// seeding reports whether an incomplete re-seed makes local reads unsafe.
func (s *Server) seeding() bool {
	fn := s.seedingFn.Load()
	return fn != nil && (*fn)()
}

// SetPromoteHandler installs (or, with nil, removes) the function behind
// the "promote" control verb.
func (s *Server) SetPromoteHandler(fn PromoteFunc) {
	if fn == nil {
		s.promote.Store(nil)
		return
	}
	s.promote.Store(&fn)
}

// SetReplStatusHandler installs (or, with nil, removes) the function behind
// the "repl status" control verb.
func (s *Server) SetReplStatusHandler(fn ReplStatusFunc) {
	if fn == nil {
		s.replStatus.Store(nil)
		return
	}
	s.replStatus.Store(&fn)
}

// executePromote runs the "promote" control verb.
func (s *Server) executePromote() wire.StatementResult {
	fn := s.promote.Load()
	if fn == nil {
		return wire.StatementResult{Err: "this node is not a follower (nothing to promote)"}
	}
	out, err := (*fn)()
	if err != nil {
		return wire.StatementResult{Err: err.Error()}
	}
	return wire.StatementResult{Found: true, Value: []byte(out)}
}

// executeReplStatus runs the "repl status" control verb.
func (s *Server) executeReplStatus() wire.StatementResult {
	fn := s.replStatus.Load()
	if fn == nil {
		return wire.StatementResult{Err: "this node has no replication role (start plpd with -data-dir, or -follow)"}
	}
	out, err := (*fn)()
	if err != nil {
		return wire.StatementResult{Err: err.Error()}
	}
	return wire.StatementResult{Found: true, Value: []byte(out)}
}

// serveReplication owns a follower's connection after its REPL-SUBSCRIBE
// frame.  The subscribe response carries either a refusal in Err or the
// primary's epoch and durable horizon; on acceptance the connection splits
// into the record streamer (its own goroutine) and the ack reader (this
// goroutine), and closes when either direction fails.
func (s *Server) serveReplication(conn net.Conn, br *bufio.Reader, payload []byte, cs session) {
	id, _ := wire.RequestID(payload)
	refuse := func(msg string) {
		resp := &wire.Response{ID: id, Err: msg}
		_ = wire.WriteFrame(conn, wire.AppendResponseV(nil, resp, cs.version))
	}
	f, err := wire.DecodeFrameV3(payload)
	if err != nil {
		refuse(fmt.Sprintf("decode: %v", err))
		return
	}
	// Receiving the write stream reveals every row of the database:
	// subscription is write-privileged, like control verbs.
	if !cs.authed {
		refuse(wire.ReplRefusedPrefix + ": subscription requires an authenticated session (connect with the primary's -token)")
		return
	}
	p := s.replPrimary.Load()
	if p == nil {
		refuse(wire.ReplRefusedPrefix + ": this server does not accept replication subscriptions (no durable log, or follower not yet promoted)")
		return
	}
	sub, err := p.SubscribeOrSeed(wal.LSN(f.StartLSN), f.ReplEpoch, f.ReplNode, conn.RemoteAddr().String())
	if err != nil {
		refuse(err.Error())
		return
	}
	defer sub.Close()

	// Track the stream so a promote/demote transition can sever it (see
	// SetReplPrimary).
	s.replConnsMu.Lock()
	s.replConns[conn] = struct{}{}
	s.replConnsMu.Unlock()
	defer func() {
		s.replConnsMu.Lock()
		delete(s.replConns, conn)
		s.replConnsMu.Unlock()
	}()
	if s.replPrimary.Load() != p {
		// The role flipped between subscribing and registering the conn;
		// the sweep in SetReplPrimary may have missed this stream.
		return
	}

	seedStart, seedTarget, seeding := sub.Seeding()
	ackBlob := wire.EncodeReplSubscribeAck(p.Epoch(), uint64(p.DurableLSN()))
	if seeding {
		ackBlob = wire.EncodeReplSubscribeAckSeed(p.Epoch(), uint64(p.DurableLSN()))
	}
	accept := &wire.Response{ID: id, Committed: true, Results: []wire.StatementResult{{
		Found: true, Value: ackBlob,
	}}}
	if err := wire.WriteFrame(conn, wire.AppendResponseV(nil, accept, cs.version)); err != nil {
		return
	}

	stop := make(chan struct{})
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		var seq uint64
		send := func(payload []byte) bool {
			if err := wire.WriteFrame(bw, payload); err != nil {
				_ = conn.Close() // unblock the ack reader
				return false
			}
			if err := bw.Flush(); err != nil {
				_ = conn.Close()
				return false
			}
			return true
		}
		if seeding {
			seq++
			if !send(wire.EncodeReplSeedBegin(seq, uint64(seedStart), uint64(seedTarget))) {
				return
			}
			if seedTarget <= seedStart {
				// Empty retained log: nothing to seed, the follower just
				// adopts the primary's lineage and streams from here.
				seeding = false
				seq++
				if !send(wire.EncodeReplSeedEnd(seq)) {
					return
				}
			}
		}
		// Next blocks until durable records exist, so it runs in its own
		// pump goroutine: the select below keeps heartbeats flowing while
		// the log is idle.  At most one pump lingers in WaitDurable after
		// stop, like Next's own helper.
		type batch struct {
			recs []wal.Record
			err  error
		}
		batches := make(chan batch)
		go func() {
			for {
				recs, err := sub.Next(stop)
				select {
				case batches <- batch{recs, err}:
					if err != nil {
						return
					}
				case <-stop:
					return
				}
			}
		}()
		hb := time.NewTicker(s.replHeartbeat())
		defer hb.Stop()
		for {
			select {
			case <-stop:
				return
			case <-hb.C:
				seq++
				if !send(wire.EncodeReplHeartbeat(seq)) {
					return
				}
			case b := <-batches:
				if b.err != nil {
					// A cursor error (e.g. the retained prefix truncated out
					// from under a parked subscription) must sever the
					// connection, or the ack reader — and the follower —
					// would block on a silently dead stream.
					_ = conn.Close()
					return
				}
				blobs := make([][]byte, len(b.recs))
				for i := range b.recs {
					blobs[i] = b.recs[i].Marshal()
				}
				seq++
				if !send(wire.EncodeReplRecords(seq, blobs)) {
					return
				}
				if seeding && len(b.recs) > 0 {
					last := b.recs[len(b.recs)-1]
					if last.LSN+wal.LSN(last.EncodedSize()) >= seedTarget {
						seeding = false
						seq++
						if !send(wire.EncodeReplSeedEnd(seq)) {
							return
						}
					}
				}
			}
		}
	}()

	for {
		ackPayload, err := wire.ReadFrame(br)
		if err != nil {
			break
		}
		af, err := wire.DecodeFrameV3(ackPayload)
		if err != nil || af.Kind != wire.FrameReplAck {
			break
		}
		sub.UpdateAck(af.AppliedLSN, af.DurableLSN)
	}
	sub.Close() // release the retention pin before the streamer drains
	close(stop)
	_ = conn.Close()
	<-streamDone
}
