package server

// Two-shard cluster tests: wrong-shard refusals, client routing, cross-shard
// two-phase commits, and forwarding across a shard-map bump.  Both shards
// run in-process over loopback so the tests can also inspect each engine
// directly and assert exactly-once placement of every key.

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"plp/client"
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
	"plp/internal/txn"
	"plp/keys"
	"plp/shard"
	"plp/wire"
)

// shardNode is one in-process member of a test cluster.
type shardNode struct {
	e    *engine.Engine
	srv  *Server
	addr string
}

// startShardCluster starts two shard servers splitting the keyspace at
// boundary and returns them with their version-1 map.
func startShardCluster(t *testing.T, boundary uint64) ([]*shardNode, *shard.Map) {
	t.Helper()
	nodes := make([]*shardNode, 2)
	for i := range nodes {
		e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
		parts := [][]byte{keyenc.Uint64Key(250_000), keyenc.Uint64Key(500_000), keyenc.Uint64Key(750_000)}
		if _, err := e.CreateTable(catalog.TableDef{Name: "kv", Boundaries: parts}); err != nil {
			t.Fatal(err)
		}
		srv := New(e)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = &shardNode{e: e, srv: srv, addr: addr}
	}
	m := &shard.Map{Version: 1, Shards: []shard.Shard{
		{ID: 0, Addr: nodes[0].addr, End: keys.Uint64(boundary)},
		{ID: 1, Addr: nodes[1].addr},
	}}
	for i, n := range nodes {
		if err := n.srv.SetShardConfig(m, i, "", 0); err != nil {
			t.Fatal(err)
		}
		srv, e := n.srv, n.e
		go func() { _ = srv.Serve() }()
		t.Cleanup(func() {
			_ = srv.Close()
			_ = e.Close()
		})
	}
	return nodes, m
}

// engineHasKey reports whether the node's engine holds the key locally.
func engineHasKey(t *testing.T, n *shardNode, key uint64) bool {
	t.Helper()
	k := keyenc.Uint64Key(key)
	hi := append(append([]byte(nil), k...), 0)
	found := false
	if err := n.e.NewLoader().ReadRange("kv", k, hi, func(_, _ []byte) bool {
		found = true
		return false
	}); err != nil {
		t.Fatal(err)
	}
	return found
}

func TestWrongShardRefusalCarriesMap(t *testing.T) {
	nodes, _ := startShardCluster(t, 500_000)
	c := dial(t, nodes[0].addr)

	// All keys of the request live on shard 1: shard 0 must refuse rather
	// than execute, and the refusal must carry a parseable current map.
	resp, err := c.Do(client.NewTxn().Upsert("kv", client.Uint64Key(600_000), []byte("x")))
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("misrouted write: %v, want ErrAborted", err)
	}
	if !wire.IsWrongShard(resp.Err) {
		t.Fatalf("refusal message %q lacks the wrong-shard prefix", resp.Err)
	}
	got, perr := shard.Parse(resp.Results[0].Value)
	if perr != nil {
		t.Fatalf("refusal carries an unparseable map: %v", perr)
	}
	if got.Version != 1 || len(got.Shards) != 2 || got.Owner(client.Uint64Key(600_000)) != 1 {
		t.Fatalf("refusal map: %+v", got)
	}
	if engineHasKey(t, nodes[0], 600_000) || engineHasKey(t, nodes[1], 600_000) {
		t.Fatal("refused write left effects behind")
	}
}

func TestCrossShardCommitAtomicity(t *testing.T) {
	nodes, _ := startShardCluster(t, 500_000)
	c := dial(t, nodes[0].addr) // shard 0 coordinates

	// A cross-shard transaction whose remote branch fails must leave no
	// effects on either shard.
	bad := client.NewTxn().
		Insert("kv", client.Uint64Key(100), []byte("roll-me-back")).
		Update("kv", client.Uint64Key(700_000), []byte("missing"))
	if _, err := c.Do(bad); !errors.Is(err, client.ErrAborted) {
		t.Fatalf("failing cross-shard txn: %v, want ErrAborted", err)
	}
	if engineHasKey(t, nodes[0], 100) {
		t.Fatal("aborted cross-shard txn left its local branch applied")
	}

	// A clean one commits on both, each key exactly once on its owner.
	good := client.NewTxn().
		Upsert("kv", client.Uint64Key(100), []byte("a")).
		Upsert("kv", client.Uint64Key(700_000), []byte("b"))
	resp, err := c.Do(good)
	if err != nil || !resp.Committed {
		t.Fatalf("cross-shard commit: %v (%+v)", err, resp)
	}
	if !engineHasKey(t, nodes[0], 100) || engineHasKey(t, nodes[1], 100) {
		t.Fatal("key 100 not exactly-once on shard 0")
	}
	if !engineHasKey(t, nodes[1], 700_000) || engineHasKey(t, nodes[0], 700_000) {
		t.Fatal("key 700000 not exactly-once on shard 1")
	}

	// A cross-shard read sees both branches' values in statement order.
	reads, err := c.Do(client.NewTxn().
		Get("kv", client.Uint64Key(100)).
		Get("kv", client.Uint64Key(700_000)))
	if err != nil {
		t.Fatal(err)
	}
	if string(reads.Results[0].Value) != "a" || string(reads.Results[1].Value) != "b" {
		t.Fatalf("cross-shard read: %+v", reads.Results)
	}
}

// TestShardedClientDifferential runs one deterministic mixed workload
// through the routing client against the two-shard cluster AND through a
// plain client against a single unsharded server, then compares the full
// table contents — the sharded cluster must be observationally identical.
func TestShardedClientDifferential(t *testing.T) {
	nodes, _ := startShardCluster(t, 500_000)

	single := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	if _, err := single.CreateTable(catalog.TableDef{Name: "kv", Boundaries: [][]byte{keyenc.Uint64Key(500_000)}}); err != nil {
		t.Fatal(err)
	}
	ssrv := New(single)
	saddr, err := ssrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ssrv.Serve() }()
	t.Cleanup(func() {
		_ = ssrv.Close()
		_ = single.Close()
	})

	ctx := context.Background()
	sc, err := client.DialSharded(ctx, []string{nodes[0].addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	pc := dial(t, saddr)

	// Deterministic workload: scattered upserts, deletes of known keys, and
	// cross-shard two-key transactions.
	rng := rand.New(rand.NewSource(7))
	used := make([]uint64, 0, 512)
	apply := func(txn *client.Txn) {
		ra, ea := sc.Do(txn)
		rb, eb := pc.Do(txn)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("divergent outcome: sharded=%v single=%v", ea, eb)
		}
		if ea == nil && ra.Committed != rb.Committed {
			t.Fatalf("divergent commit: sharded=%v single=%v", ra.Committed, rb.Committed)
		}
	}
	for i := 0; i < 300; i++ {
		switch {
		case i%7 == 3 && len(used) > 0:
			k := used[rng.Intn(len(used))]
			apply(client.NewTxn().Delete("kv", client.Uint64Key(k)))
		case i%5 == 0:
			kA := uint64(rng.Intn(400_000) + 1)
			kB := uint64(rng.Intn(300_000) + 600_000)
			v := []byte{byte(i), byte(i >> 8)}
			apply(client.NewTxn().
				Upsert("kv", client.Uint64Key(kA), v).
				Upsert("kv", client.Uint64Key(kB), v))
			used = append(used, kA, kB)
		default:
			k := uint64(rng.Intn(1_000_000) + 1)
			apply(client.NewTxn().Upsert("kv", client.Uint64Key(k), []byte{byte(i)}))
			used = append(used, k)
		}
	}

	// The cross-shard scan and the single-server scan agree record for
	// record (the sharded scan concatenates shard ranges in key order).
	want, err := pc.Scan("kv", nil, nil, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.Scan("kv", nil, nil, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan lengths diverge: sharded=%d single=%d", len(got), len(want))
	}
	for i := range want {
		if string(got[i].Key) != string(want[i].Key) || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("scan diverges at %d: %x=%q vs %x=%q", i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
	t.Logf("differential: %d records identical across sharded and single", len(want))
}

// TestStaleShardMapForwarding races a map bump against in-flight cross-shard
// transactions, then drives writes through the now-stale client cache: the
// wrong-shard refusal must refresh the client, and every acknowledged write
// must land exactly once on its current owner.
func TestStaleShardMapForwarding(t *testing.T) {
	nodes, _ := startShardCluster(t, 500_000)
	ctx := context.Background()
	sc, err := client.DialSharded(ctx, []string{nodes[0].addr, nodes[1].addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	v2 := &shard.Map{Version: 2, Shards: []shard.Shard{
		{ID: 0, Addr: nodes[0].addr, End: keys.Uint64(300_000)},
		{ID: 1, Addr: nodes[1].addr},
	}}

	// Phase A: cross-shard transactions in flight while the bump lands.
	// Their keys do not change owner between the maps, so every one must
	// commit exactly once regardless of which version it raced.
	const pairs = 150
	done := make(chan error, 1)
	go func() {
		for i := uint64(0); i < pairs; i++ {
			v := []byte{byte(i)}
			_, err := sc.Do(client.NewTxn().
				Upsert("kv", client.Uint64Key(100_000+i), v).
				Upsert("kv", client.Uint64Key(800_000+i), v))
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	time.Sleep(2 * time.Millisecond)
	if err := nodes[0].srv.UpdateShardMap(v2); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].srv.UpdateShardMap(v2); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("cross-shard txn racing the map bump: %v", err)
	}
	for i := uint64(0); i < pairs; i++ {
		if !engineHasKey(t, nodes[0], 100_000+i) || engineHasKey(t, nodes[1], 100_000+i) {
			t.Fatalf("pair %d: low key not exactly-once on shard 0", i)
		}
		if !engineHasKey(t, nodes[1], 800_000+i) || engineHasKey(t, nodes[0], 800_000+i) {
			t.Fatalf("pair %d: high key not exactly-once on shard 1", i)
		}
	}

	// Phase B: fresh keys in the moved range [300000, 500000).  The client
	// may still route them to shard 0 under its cached map; the refusal
	// must refresh it and forward, landing each key once on shard 1.
	for i := uint64(0); i < 20; i++ {
		k := 350_000 + i
		if err := sc.Upsert("kv", client.Uint64Key(k), []byte("moved")); err != nil {
			t.Fatalf("write to moved range: %v", err)
		}
		if !engineHasKey(t, nodes[1], k) {
			t.Fatalf("key %d missing from its current owner", k)
		}
		if engineHasKey(t, nodes[0], k) {
			t.Fatalf("key %d duplicated onto the old owner", k)
		}
	}
	if v := sc.Map().Version; v != 2 {
		t.Fatalf("client map version %d after forwarding, want 2", v)
	}
	// Routed reads see the moved keys.
	if val, err := sc.Get("kv", client.Uint64Key(350_000)); err != nil || string(val) != "moved" {
		t.Fatalf("read of moved key: %q, %v", val, err)
	}
}

// TestGidEpochUniqueAcrossIncarnations pins the gid format against the
// coordinator-restart hazard: a restarted coordinator's sequence restarts at
// zero, so only the per-incarnation epoch keeps it from minting a gid whose
// durable fate from a previous life would leak onto a new transaction.
func TestGidEpochUniqueAcrossIncarnations(t *testing.T) {
	a := &shardState{self: 3, epoch: 1}
	b := &shardState{self: 3, epoch: 2}
	ga, gb := a.gidFor(), b.gidFor()
	if ga == gb {
		t.Fatalf("gid %q reused across incarnations", ga)
	}
	for _, g := range []string{ga, gb} {
		if coord, ok := coordinatorOf(g); !ok || coord != 3 {
			t.Fatalf("coordinatorOf(%q) = %d, %v", g, coord, ok)
		}
	}

	// Epoch 0 asks SetShardConfig to derive one: two configurations of the
	// same shard (a restart with no persisted state) get distinct epochs.
	e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 2})
	defer e.Close()
	m := &shard.Map{Version: 1, Shards: []shard.Shard{{ID: 0, Addr: "127.0.0.1:1"}}}
	var epochs [2]uint64
	for i := range epochs {
		srv := New(e)
		if err := srv.SetShardConfig(m, 0, "", 0); err != nil {
			t.Fatal(err)
		}
		ss := srv.sharding.Load()
		epochs[i] = ss.epoch
		ss.stop()
	}
	if epochs[0] == 0 || epochs[0] == epochs[1] {
		t.Fatalf("derived epochs %d and %d, want distinct non-zero", epochs[0], epochs[1])
	}

	// An explicit epoch (plpd's persisted incarnation) is used verbatim.
	srv := New(e)
	if err := srv.SetShardConfig(m, 0, "", 42); err != nil {
		t.Fatal(err)
	}
	ss := srv.sharding.Load()
	defer ss.stop()
	if ss.epoch != 42 {
		t.Fatalf("explicit epoch = %d, want 42", ss.epoch)
	}
}

// TestDecisionFlushFailureLeavesInDoubt injects a decide-record flush
// failure at the commit point.  The decide record was appended and may yet
// become durable, so the coordinator must NOT send aborts (a participant
// whose abort frame is lost could later learn "commit" from the recovered
// record): every branch stays prepared, decide queries answer "decision
// pending", and the janitor must not resolve the transaction either way.
func TestDecisionFlushFailureLeavesInDoubt(t *testing.T) {
	nodes, _ := startShardCluster(t, 500_000)
	orig := logDecision
	logDecision = func(*engine.Engine, string) error { return txn.ErrNotDurable }
	t.Cleanup(func() { logDecision = orig })

	c := dial(t, nodes[0].addr)
	resp, err := c.Do(client.NewTxn().
		Upsert("kv", client.Uint64Key(100), []byte("a")).
		Upsert("kv", client.Uint64Key(700_000), []byte("b")))
	if !errors.Is(err, client.ErrAborted) {
		t.Fatalf("decision-flush failure returned %v, want ErrAborted", err)
	}
	if !strings.Contains(resp.Err, "outcome unknown") {
		t.Fatalf("error %q does not flag the unknown outcome", resp.Err)
	}

	// The participant's branch stays prepared — no abort was sent.
	gids := nodes[1].e.PreparedGIDs(0)
	if len(gids) != 1 {
		t.Fatalf("participant prepared gids = %v, want exactly one", gids)
	}
	gid := gids[0]

	// The coordinator answers decide queries "decision pending" rather than
	// presumed abort: the decide record may still surface at recovery.
	pc := &peerConn{addr: nodes[0].addr}
	defer pc.close()
	qresp, err := pc.call(wire.EncodeDecideRequest(0, gid, wire.DecideQuery))
	if err != nil {
		t.Fatal(err)
	}
	if qresp.Err != "decision pending" || qresp.Committed {
		t.Fatalf("decide query after flush failure: %+v", qresp)
	}

	// Even once the branch is older than the janitor's patience, chasing
	// the coordinator keeps it prepared instead of aborting it.
	time.Sleep(inDoubtPatience + 3*defaultJanitorPeriod)
	if gids := nodes[1].e.PreparedGIDs(0); len(gids) != 1 || gids[0] != gid {
		t.Fatalf("janitor resolved the undecidable branch: %v", gids)
	}
}

// TestPeerCallTimesOutOnHungPeer pins the per-call deadline: a peer that
// completes the handshake and then never answers must fail the call within
// peerCallTimeout (not block forever behind the serialized connection) and
// leave the dead connection retired so the next call redials.
func TestPeerCallTimesOutOnHungPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := wire.ReadFrame(br); err != nil { // HELLO
			return
		}
		_ = wire.WriteFrame(conn, wire.EncodeHelloAck(&wire.HelloAck{Version: wire.V3}))
		// Swallow frames and never answer; the read unblocks (and the
		// goroutine exits) once the timed-out caller resets its end.
		for {
			if _, err := wire.ReadFrame(br); err != nil {
				return
			}
		}
	}()

	pc := &peerConn{addr: ln.Addr().String()}
	defer pc.close()
	start := time.Now()
	if _, err := pc.call(wire.EncodeDecideRequest(0, "s0-1-1", wire.DecideQuery)); err == nil {
		t.Fatal("call to a hung peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > defaultPeerCallTimeout+2*time.Second {
		t.Fatalf("call took %v, deadline %v never fired", elapsed, defaultPeerCallTimeout)
	}
	if pc.conn != nil {
		t.Fatal("timed-out call left the dead connection cached")
	}
}
