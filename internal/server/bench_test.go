package server

import (
	"fmt"
	"testing"

	"plp/client"
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

// benchServer starts a PLP-Leaf server over loopback and returns its
// address.
func benchServer(b *testing.B) string {
	b.Helper()
	e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	boundaries := [][]byte{keyenc.Uint64Key(250_000), keyenc.Uint64Key(500_000), keyenc.Uint64Key(750_000)}
	if _, err := e.CreateTable(catalog.TableDef{Name: "accounts", Boundaries: boundaries}); err != nil {
		b.Fatal(err)
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	b.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})
	return addr
}

// BenchmarkServerUpsertGet measures single-connection round trips over
// loopback: one upsert plus one read per iteration.
func BenchmarkServerUpsertGet(b *testing.B) {
	addr := benchServer(b)
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := []byte("balance=100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := client.Uint64Key(uint64(i%100_000 + 1))
		if err := c.Upsert("accounts", key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Get("accounts", key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerParallelClients measures throughput with one connection per
// benchmark goroutine.
func BenchmarkServerParallelClients(b *testing.B) {
	addr := benchServer(b)
	var nextClient int64
	b.RunParallel(func(pb *testing.PB) {
		c, err := client.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		nextClient++
		base := uint64(nextClient) * 1_000_000 % 900_000
		i := 0
		for pb.Next() {
			i++
			key := client.Uint64Key(base + uint64(i%50_000) + 1)
			if err := c.Upsert("accounts", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
