package server

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sync/atomic"

	"plp/client"
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

// benchServer starts a PLP-Leaf server over loopback and returns its
// address.  With preload set, keys 1, 11, 21, ... covering the whole
// keyspace are bulk-loaded so read workloads hit existing records on every
// partition.
func benchServer(tb testing.TB, preload bool) string {
	tb.Helper()
	e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	boundaries := [][]byte{keyenc.Uint64Key(250_000), keyenc.Uint64Key(500_000), keyenc.Uint64Key(750_000)}
	if _, err := e.CreateTable(catalog.TableDef{Name: "accounts", Boundaries: boundaries}); err != nil {
		tb.Fatal(err)
	}
	if preload {
		l := e.NewLoader()
		for i := uint64(0); i < 100_000; i++ {
			if err := l.Insert("accounts", keyenc.Uint64Key(i*10+1), []byte("balance=100")); err != nil {
				tb.Fatal(err)
			}
		}
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	tb.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})
	return addr
}

// benchTxn builds the i-th transaction of a benchmark workload: "upsert"
// writes across the whole keyspace, "get" reads the preloaded records.
func benchTxn(workload string, i int) *client.Txn {
	if workload == "get" {
		return client.NewTxn().Get("accounts", client.Uint64Key(uint64(i%100_000)*10+1))
	}
	return client.NewTxn().Upsert("accounts", client.Uint64Key(uint64(i%1_000_000+1)), []byte("balance=100"))
}

// BenchmarkServerUpsertGet measures single-connection round trips over
// loopback: one upsert plus one read per iteration.
func BenchmarkServerUpsertGet(b *testing.B) {
	addr := benchServer(b, false)
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	val := []byte("balance=100")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := client.Uint64Key(uint64(i%100_000 + 1))
		if err := c.Upsert("accounts", key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Get("accounts", key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerSerialized1Conn measures the legacy execution model: a v1
// session issuing one synchronous transaction at a time, so every operation
// pays a full network round trip and the connection can keep at most one
// partition worker busy.
func BenchmarkServerSerialized1Conn(b *testing.B) {
	for _, workload := range []string{"upsert", "get"} {
		b.Run(workload, func(b *testing.B) {
			addr := benchServer(b, workload == "get")
			c, err := client.DialContext(context.Background(), addr, &client.DialOptions{Version: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Do(benchTxn(workload, i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerPipelined1Conn64 measures the v2 execution model on the
// same workloads: one connection keeping 64 transactions in flight, with
// the server's per-connection executor pool spreading them over the
// partition workers and completing them out of order.
func BenchmarkServerPipelined1Conn64(b *testing.B) {
	for _, workload := range []string{"upsert", "get"} {
		b.Run(workload, func(b *testing.B) {
			addr := benchServer(b, workload == "get")
			c, err := client.Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			window := make(chan *client.Future, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for len(window) == cap(window) {
					if _, err := (<-window).Wait(ctx); err != nil {
						b.Fatal(err)
					}
				}
				window <- c.DoAsync(ctx, benchTxn(workload, i))
			}
			for len(window) > 0 {
				if _, err := (<-window).Wait(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// measureNetThroughput drives one connection for the given duration and
// returns committed transactions per second — serialized (v1, one in
// flight) or pipelined (v2, 64 in flight).
func measureNetThroughput(tb testing.TB, addr, workload string, pipelined bool, d time.Duration) float64 {
	tb.Helper()
	opts := &client.DialOptions{Version: 1}
	if pipelined {
		opts = nil
	}
	c, err := client.DialContext(context.Background(), addr, opts)
	if err != nil {
		tb.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	deadline := time.Now().Add(d)
	start := time.Now()
	done := 0
	if !pipelined {
		for time.Now().Before(deadline) {
			if _, err := c.Do(benchTxn(workload, done)); err != nil {
				tb.Fatal(err)
			}
			done++
		}
		return float64(done) / time.Since(start).Seconds()
	}
	window := make(chan *client.Future, 64)
	submitted := 0
	for time.Now().Before(deadline) {
		for len(window) == cap(window) {
			if _, err := (<-window).Wait(ctx); err != nil {
				tb.Fatal(err)
			}
			done++
		}
		window <- c.DoAsync(ctx, benchTxn(workload, submitted))
		submitted++
	}
	for len(window) > 0 {
		if _, err := (<-window).Wait(ctx); err != nil {
			tb.Fatal(err)
		}
		done++
	}
	return float64(done) / time.Since(start).Seconds()
}

// TestNetworkThroughputDatapoint emits the pipelined-vs-serialized
// single-connection throughput of both workloads as JSON lines (BENCH_JSON)
// so the CI log carries network datapoints for the perf trajectory.  It
// makes no timing assertion — CI machines are too noisy — but the dedicated
// benchmark pair above reproduces the comparison precisely.
func TestNetworkThroughputDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	for _, workload := range []string{"upsert", "get"} {
		addr := benchServer(t, workload == "get")
		serialized := measureNetThroughput(t, addr, workload, false, 400*time.Millisecond)
		pipelined := measureNetThroughput(t, addr, workload, true, 400*time.Millisecond)
		speedup := 0.0
		if serialized > 0 {
			speedup = pipelined / serialized
		}
		fmt.Printf("BENCH_JSON {\"benchmark\":\"net_%s_1conn\",\"serialized_ops_per_s\":%.0f,\"pipelined64_ops_per_s\":%.0f,\"speedup\":%.2f}\n",
			workload, serialized, pipelined, speedup)
	}
}

// benchPlanServer starts a PLP-Leaf server whose "sub" table has a
// non-partition-aligned secondary index.  Each preloaded record begins with
// its own 8-byte primary key, so the per-statement flow can derive the
// second round trip's routing key from the probe's result — exactly what a
// networked client without plans has to do.
func benchPlanServer(tb testing.TB, subscribers int) string {
	tb.Helper()
	e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	boundaries := [][]byte{keyenc.Uint64Key(250_000), keyenc.Uint64Key(500_000), keyenc.Uint64Key(750_000)}
	if _, err := e.CreateTable(catalog.TableDef{
		Name:        "sub",
		Boundaries:  boundaries,
		Secondaries: []catalog.SecondaryDef{{Name: "nbr"}},
	}); err != nil {
		tb.Fatal(err)
	}
	l := e.NewLoader()
	for i := 0; i < subscribers; i++ {
		pk := keyenc.Uint64Key(uint64(i)*10 + 1)
		rec := append(append([]byte(nil), pk...), []byte("loc=000")...)
		if err := l.Insert("sub", pk, rec); err != nil {
			tb.Fatal(err)
		}
		if err := l.InsertSecondary("sub", "nbr", benchNbr(i), pk); err != nil {
			tb.Fatal(err)
		}
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	tb.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})
	return addr
}

// benchNbr is the i-th subscriber's secondary key.
func benchNbr(i int) []byte { return []byte(fmt.Sprintf("nbr-%08d", i)) }

// planProbeUpdate runs the i-th dependent transaction as ONE round trip:
// the plan's phase 1 probes the secondary index, phase 2 routes the update
// by the primary key the probe produced.
func planProbeUpdate(c *client.Client, i, subscribers int) error {
	b := client.NewPlan()
	probe := b.LookupSecondary("sub", "nbr", benchNbr(i%subscribers)).Ref()
	b.Then().AppendBytes("sub", nil, []byte("+")).KeyFrom(probe)
	p, err := b.Build()
	if err != nil {
		return err
	}
	_, err = c.DoPlan(p)
	return err
}

// stmtProbeUpdate runs the same dependent transaction as per-statement
// round trips: fetch the record through the secondary index, parse the
// primary key out of it, send the update — two network round trips and two
// server-side transactions.
func stmtProbeUpdate(c *client.Client, i, subscribers int) error {
	rec, err := c.GetBySecondary("sub", "nbr", benchNbr(i%subscribers))
	if err != nil {
		return err
	}
	newRec := append(append([]byte(nil), rec...), '+')
	return c.Update("sub", rec[:8], newRec)
}

// BenchmarkPlanProbeUpdate1RT measures the dependent secondary-probe →
// routed-update transaction as a single-round-trip declarative plan.
func BenchmarkPlanProbeUpdate1RT(b *testing.B) {
	addr := benchPlanServer(b, 100_000)
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := planProbeUpdate(c, i, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerStatementProbeUpdate measures the identical logical
// transaction as per-statement round trips (the pre-v3 surface).
func BenchmarkPerStatementProbeUpdate(b *testing.B) {
	addr := benchPlanServer(b, 100_000)
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := stmtProbeUpdate(c, i, 100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPlanRoundTripDatapoint emits the one-round-trip-plan vs
// per-statement throughput of the dependent probe→update transaction as a
// BENCH_JSON line, and asserts the plan's ≥1.5× advantage — the plan does
// the same engine work in half the round trips and one transaction instead
// of two, so the margin holds even on a noisy 1-core CI box.
func TestPlanRoundTripDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	if raceEnabled {
		t.Skip("skipping throughput measurement under the race detector")
	}
	const subscribers = 20_000
	addr := benchPlanServer(t, subscribers)
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	measure := func(step func(i int) error, d time.Duration) float64 {
		deadline := time.Now().Add(d)
		start := time.Now()
		done := 0
		for time.Now().Before(deadline) {
			if err := step(done); err != nil {
				t.Fatal(err)
			}
			done++
		}
		return float64(done) / time.Since(start).Seconds()
	}
	// Warm up both paths, then measure interleaved rounds and keep the
	// best: a background hiccup on a shared CI box should not turn a ~2×
	// structural advantage (half the round trips, one transaction instead
	// of two) into a spurious failure.
	for i := 0; i < 100; i++ {
		_ = planProbeUpdate(c, i, subscribers)
		_ = stmtProbeUpdate(c, i, subscribers)
	}
	var perStatement, onePlan, speedup float64
	for round := 0; round < 3 && speedup < 1.5; round++ {
		perStatement = measure(func(i int) error { return stmtProbeUpdate(c, i, subscribers) }, 400*time.Millisecond)
		onePlan = measure(func(i int) error { return planProbeUpdate(c, i, subscribers) }, 400*time.Millisecond)
		if perStatement > 0 && onePlan/perStatement > speedup {
			speedup = onePlan / perStatement
		}
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"plan_probe_update_1conn\",\"per_statement_txn_per_s\":%.0f,\"one_plan_txn_per_s\":%.0f,\"speedup\":%.2f}\n",
		perStatement, onePlan, speedup)
	if speedup < 1.5 {
		t.Errorf("one-round-trip plan speedup %.2f, want >= 1.5", speedup)
	}
}

// BenchmarkServerParallelClients measures throughput with one connection per
// benchmark goroutine.
func BenchmarkServerParallelClients(b *testing.B) {
	addr := benchServer(b, false)
	var nextClient atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		c, err := client.Dial(addr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		base := uint64(nextClient.Add(1)) * 1_000_000 % 900_000
		i := 0
		for pb.Next() {
			i++
			key := client.Uint64Key(base + uint64(i%50_000) + 1)
			if err := c.Upsert("accounts", key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
