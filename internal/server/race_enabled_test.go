//go:build race

package server

// raceEnabled reports that this binary was built with the race detector;
// throughput datapoints skip themselves there — the detector multiplies
// CPU-bound engine work, so the numbers describe the instrumentation, not
// the server.
const raceEnabled = true
