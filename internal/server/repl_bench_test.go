package server

// Replication throughput datapoints.  Like TestNetworkThroughputDatapoint
// these emit BENCH_JSON lines for the CI log and make no timing assertion —
// the interesting quantities are the cost of gating commits on a replica
// ack versus local fsync, and whether follower-served reads add capacity
// without slowing the primary's write path.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"plp/client"
	"plp/internal/repl"
)

// measureReplThroughput drives one pipelined connection (64 in flight) with
// transactions from txnFor until the duration elapses and returns committed
// transactions per second.  Errors are reported with t.Errorf so the helper
// is safe to call from a secondary goroutine.
func measureReplThroughput(t *testing.T, addr string, d time.Duration, txnFor func(i int) *client.Txn) float64 {
	c, err := client.Dial(addr)
	if err != nil {
		t.Errorf("dial %s: %v", addr, err)
		return 0
	}
	defer c.Close()
	ctx := context.Background()
	window := make(chan *client.Future, 64)
	deadline := time.Now().Add(d)
	start := time.Now()
	done, submitted := 0, 0
	for time.Now().Before(deadline) {
		for len(window) == cap(window) {
			if _, err := (<-window).Wait(ctx); err != nil {
				t.Errorf("measured txn: %v", err)
				return 0
			}
			done++
		}
		window <- c.DoAsync(ctx, txnFor(submitted))
		submitted++
	}
	for len(window) > 0 {
		if _, err := (<-window).Wait(ctx); err != nil {
			t.Errorf("measured txn: %v", err)
			return 0
		}
		done++
	}
	return float64(done) / time.Since(start).Seconds()
}

// benchUpsert cycles writes over a bounded key range so both ack modes see
// the same working set.
func benchUpsert(i int) *client.Txn {
	return client.NewTxn().Upsert("kv", client.Uint64Key(uint64(i%20_000+1)), []byte("repl-bench"))
}

// TestReplAckModesDatapoint measures pipelined write throughput on a durable
// primary with a live follower, first with local-fsync commits and then with
// the replica-acked gate installed, and emits the pair as a BENCH_JSON line.
func TestReplAckModesDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	pdir, fdir := t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	prim := repl.NewPrimary(pe.DurableLog(), 1)
	prim.SetAckTimeout(20 * time.Second)
	psrv.SetReplPrimary(prim)

	fe, fsrv, _ := startReplServer(t, fdir)
	fsrv.SetFollowerMode(true)
	f := startFollower(t, fdir, paddr, fe)
	waitFor(t, "subscription", func() bool { return prim.NumFollowers() == 1 })

	local := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)
	waitFor(t, "follower catch-up before acked run", func() bool { return caughtUp(pe, f) })

	pe.SetCommitAckWaiter(prim.WaitReplicated)
	acked := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)

	ratio := 0.0
	if local > 0 {
		ratio = acked / local
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"repl_ack_modes\",\"local_fsync_txn_per_s\":%.0f,\"replica_acked_txn_per_s\":%.0f,\"acked_over_local\":%.2f}\n",
		local, acked, ratio)
}

// TestReplQuorumAcksDatapoint measures replica-acked write throughput on a
// primary with two followers at ack quorum k=1 and again at k=2, and emits
// the pair.  The k-of-n gate waits for the k-th highest follower ack, so
// k=2 tracks the SLOWER of the two replicas — the datapoint shows what the
// extra fault tolerance costs on the commit path.
func TestReplQuorumAcksDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	pdir, f1dir, f2dir := t.TempDir(), t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	prim := repl.NewPrimary(pe.DurableLog(), 1)
	prim.SetAckTimeout(20 * time.Second)
	psrv.SetReplPrimary(prim)

	f1e, f1srv, _ := startReplServer(t, f1dir)
	f1srv.SetFollowerMode(true)
	f1 := startFollower(t, f1dir, paddr, f1e)
	f2e, f2srv, _ := startReplServer(t, f2dir)
	f2srv.SetFollowerMode(true)
	f2 := startFollower(t, f2dir, paddr, f2e)
	waitFor(t, "both subscriptions", func() bool { return prim.NumFollowers() == 2 })

	pe.SetCommitAckWaiter(prim.WaitReplicated)
	k1 := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)
	waitFor(t, "follower catch-up before k=2 run", func() bool {
		return caughtUp(pe, f1) && caughtUp(pe, f2)
	})

	prim.SetAckQuorum(2)
	k2 := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)

	ratio := 0.0
	if k1 > 0 {
		ratio = k2 / k1
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"repl_quorum_acks\",\"k1_txn_per_s\":%.0f,\"k2_txn_per_s\":%.0f,\"k2_over_k1\":%.2f}\n",
		k1, k2, ratio)
}

// TestReplReadScaleDatapoint measures the primary's write throughput alone
// and then concurrently with a reader hammering the follower, and emits all
// three rates.  The follower serving reads from replicated state should add
// read capacity without slowing the primary's write path.
func TestReplReadScaleDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	pdir, fdir := t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	prim := repl.NewPrimary(pe.DurableLog(), 1)
	psrv.SetReplPrimary(prim)

	fe, fsrv, faddr := startReplServer(t, fdir)
	fsrv.SetFollowerMode(true)
	f := startFollower(t, fdir, paddr, fe)
	waitFor(t, "subscription", func() bool { return prim.NumFollowers() == 1 })

	// Preload the read working set through the primary so the follower's
	// reads all hit replicated records.
	pc := dial(t, paddr)
	ctx := context.Background()
	window := make(chan *client.Future, 64)
	for i := 0; i < 20_000; i++ {
		for len(window) == cap(window) {
			if _, err := (<-window).Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
		window <- pc.DoAsync(ctx, benchUpsert(i))
	}
	for len(window) > 0 {
		if _, err := (<-window).Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "preload catch-up", func() bool { return caughtUp(pe, f) })

	writesAlone := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)

	var wg sync.WaitGroup
	var followerReads float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerReads = measureReplThroughput(t, faddr, 400*time.Millisecond, func(i int) *client.Txn {
			return client.NewTxn().Get("kv", client.Uint64Key(uint64(i%20_000+1)))
		})
	}()
	writesWithReads := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)
	wg.Wait()

	slowdown := 0.0
	if writesAlone > 0 {
		slowdown = writesWithReads / writesAlone
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"repl_read_scale\",\"primary_writes_alone_per_s\":%.0f,\"primary_writes_with_follower_reads_per_s\":%.0f,\"follower_reads_per_s\":%.0f,\"writes_with_over_alone\":%.2f}\n",
		writesAlone, writesWithReads, followerReads, slowdown)
}
