package server

// Replication throughput datapoints.  Like TestNetworkThroughputDatapoint
// these emit BENCH_JSON lines for the CI log and make no timing assertion —
// the interesting quantities are the cost of gating commits on a replica
// ack versus local fsync, and whether follower-served reads add capacity
// without slowing the primary's write path.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"plp/client"
	"plp/internal/repl"
)

// measureReplThroughput drives one pipelined connection (64 in flight) with
// transactions from txnFor until the duration elapses and returns committed
// transactions per second.  Errors are reported with t.Errorf so the helper
// is safe to call from a secondary goroutine.
func measureReplThroughput(t *testing.T, addr string, d time.Duration, txnFor func(i int) *client.Txn) float64 {
	c, err := client.Dial(addr)
	if err != nil {
		t.Errorf("dial %s: %v", addr, err)
		return 0
	}
	defer c.Close()
	ctx := context.Background()
	window := make(chan *client.Future, 64)
	deadline := time.Now().Add(d)
	start := time.Now()
	done, submitted := 0, 0
	for time.Now().Before(deadline) {
		for len(window) == cap(window) {
			if _, err := (<-window).Wait(ctx); err != nil {
				t.Errorf("measured txn: %v", err)
				return 0
			}
			done++
		}
		window <- c.DoAsync(ctx, txnFor(submitted))
		submitted++
	}
	for len(window) > 0 {
		if _, err := (<-window).Wait(ctx); err != nil {
			t.Errorf("measured txn: %v", err)
			return 0
		}
		done++
	}
	return float64(done) / time.Since(start).Seconds()
}

// benchUpsert cycles writes over a bounded key range so both ack modes see
// the same working set.
func benchUpsert(i int) *client.Txn {
	return client.NewTxn().Upsert("kv", client.Uint64Key(uint64(i%20_000+1)), []byte("repl-bench"))
}

// TestReplAckModesDatapoint measures pipelined write throughput on a durable
// primary with a live follower, first with local-fsync commits and then with
// the replica-acked gate installed, and emits the pair as a BENCH_JSON line.
func TestReplAckModesDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	pdir, fdir := t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	prim := repl.NewPrimary(pe.DurableLog(), 1)
	prim.SetAckTimeout(20 * time.Second)
	psrv.SetReplPrimary(prim)

	fe, fsrv, _ := startReplServer(t, fdir)
	fsrv.SetFollowerMode(true)
	f := startFollower(t, fdir, paddr, fe)
	waitFor(t, "subscription", func() bool { return prim.NumFollowers() == 1 })

	local := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)
	waitFor(t, "follower catch-up before acked run", func() bool { return caughtUp(pe, f) })

	pe.SetCommitAckWaiter(prim.WaitReplicated)
	acked := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)

	ratio := 0.0
	if local > 0 {
		ratio = acked / local
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"repl_ack_modes\",\"local_fsync_txn_per_s\":%.0f,\"replica_acked_txn_per_s\":%.0f,\"acked_over_local\":%.2f}\n",
		local, acked, ratio)
}

// TestReplReadScaleDatapoint measures the primary's write throughput alone
// and then concurrently with a reader hammering the follower, and emits all
// three rates.  The follower serving reads from replicated state should add
// read capacity without slowing the primary's write path.
func TestReplReadScaleDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	pdir, fdir := t.TempDir(), t.TempDir()
	pe, psrv, paddr := startReplServer(t, pdir)
	prim := repl.NewPrimary(pe.DurableLog(), 1)
	psrv.SetReplPrimary(prim)

	fe, fsrv, faddr := startReplServer(t, fdir)
	fsrv.SetFollowerMode(true)
	f := startFollower(t, fdir, paddr, fe)
	waitFor(t, "subscription", func() bool { return prim.NumFollowers() == 1 })

	// Preload the read working set through the primary so the follower's
	// reads all hit replicated records.
	pc := dial(t, paddr)
	ctx := context.Background()
	window := make(chan *client.Future, 64)
	for i := 0; i < 20_000; i++ {
		for len(window) == cap(window) {
			if _, err := (<-window).Wait(ctx); err != nil {
				t.Fatal(err)
			}
		}
		window <- pc.DoAsync(ctx, benchUpsert(i))
	}
	for len(window) > 0 {
		if _, err := (<-window).Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "preload catch-up", func() bool { return caughtUp(pe, f) })

	writesAlone := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)

	var wg sync.WaitGroup
	var followerReads float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		followerReads = measureReplThroughput(t, faddr, 400*time.Millisecond, func(i int) *client.Txn {
			return client.NewTxn().Get("kv", client.Uint64Key(uint64(i%20_000+1)))
		})
	}()
	writesWithReads := measureReplThroughput(t, paddr, 400*time.Millisecond, benchUpsert)
	wg.Wait()

	slowdown := 0.0
	if writesAlone > 0 {
		slowdown = writesWithReads / writesAlone
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"repl_read_scale\",\"primary_writes_alone_per_s\":%.0f,\"primary_writes_with_follower_reads_per_s\":%.0f,\"follower_reads_per_s\":%.0f,\"writes_with_over_alone\":%.2f}\n",
		writesAlone, writesWithReads, followerReads, slowdown)
}
