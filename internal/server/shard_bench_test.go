package server

// Sharding overhead datapoint: the same single-key upsert workload driven
// against one unsharded server and against a two-shard cluster through the
// routing client, plus the cross-shard two-phase-commit rate.  Emitted as a
// BENCH_JSON line so CI tracks the cost of the shard layer from day one.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"plp/client"
	"plp/internal/catalog"
	"plp/internal/engine"
	"plp/internal/keyenc"
)

// startUnshardedNode starts one server with the same table layout as the
// shard-cluster nodes, so the single-server baseline differs only in the
// shard layer being absent.
func startUnshardedNode(t *testing.T) string {
	t.Helper()
	e := engine.New(engine.Options{Design: engine.PLPLeaf, Partitions: 4})
	parts := [][]byte{keyenc.Uint64Key(250_000), keyenc.Uint64Key(500_000), keyenc.Uint64Key(750_000)}
	if _, err := e.CreateTable(catalog.TableDef{Name: "kv", Boundaries: parts}); err != nil {
		t.Fatal(err)
	}
	srv := New(e)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = e.Close()
	})
	return addr
}

// measureTxnRate drives do in a synchronous loop for d and returns committed
// transactions per second — a per-transaction latency measure, which is
// exactly where routing hops and two-phase commit show up.
func measureTxnRate(t *testing.T, d time.Duration, do func(i int) error) float64 {
	t.Helper()
	deadline := time.Now().Add(d)
	start := time.Now()
	done := 0
	for time.Now().Before(deadline) {
		if err := do(done); err != nil {
			t.Fatal(err)
		}
		done++
	}
	return float64(done) / time.Since(start).Seconds()
}

// TestTwoShardDatapoint emits the two_shard_vs_single BENCH_JSON line:
// single-shard transactions through the routing client vs the same workload
// on an unsharded server (the overhead of the shard layer on the fast
// path), and the cross-shard 2PC commit rate.  No timing assertion — CI
// machines are too noisy — the numbers are for the perf trajectory.
func TestTwoShardDatapoint(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in short mode")
	}
	ctx := context.Background()
	const d = 300 * time.Millisecond

	// Baseline: one unsharded server, plain client.
	single := func() float64 {
		addr := startUnshardedNode(t)
		c := dial(t, addr)
		return measureTxnRate(t, d, func(i int) error {
			k := client.Uint64Key(uint64(i) % 400_000)
			_, err := c.DoContext(ctx, client.NewTxn().Upsert("kv", k, []byte("v")))
			return err
		})
	}()

	nodes, _ := startShardCluster(t, 500_000)
	sc, err := client.DialSharded(ctx, []string{nodes[0].addr}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	// The same workload through the routing client: every transaction is
	// single-shard, so the servers take the unsharded fast path and the
	// difference is routing plus the shard-ownership check.
	routed := measureTxnRate(t, d, func(i int) error {
		k := client.Uint64Key(uint64(i) % 400_000)
		_, err := sc.DoContext(ctx, client.NewTxn().Upsert("kv", k, []byte("v")))
		return err
	})

	// Cross-shard: one upsert on each side of the split, committed with the
	// coordinator-logged two-phase protocol.
	crossShard := measureTxnRate(t, d, func(i int) error {
		lo := client.Uint64Key(uint64(i) % 400_000)
		hi := client.Uint64Key(600_000 + uint64(i)%400_000)
		_, err := sc.DoContext(ctx, client.NewTxn().
			Upsert("kv", lo, []byte("a")).
			Upsert("kv", hi, []byte("b")))
		return err
	})

	overhead := 0.0
	if routed > 0 {
		overhead = single / routed
	}
	fmt.Printf("BENCH_JSON {\"benchmark\":\"two_shard_vs_single\",\"single_server_txn_per_s\":%.0f,\"two_shard_routed_txn_per_s\":%.0f,\"cross_shard_2pc_txn_per_s\":%.0f,\"routing_overhead\":%.2f}\n",
		single, routed, crossShard, overhead)
}
